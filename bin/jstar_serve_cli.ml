(* jstar-serve: a long-lived server multiplexing many concurrent named
   engine sessions over the binary serve protocol, with branch/merge
   and admission control (DESIGN.md §15).  The client subcommands drive
   the shared sensor demo program against a running server — enough to
   walk the README's serving example end to end. *)

open Cmdliner

let tune_runtime () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

(* -- shared options ---------------------------------------------------- *)

let port_arg =
  let doc = "Server TCP port (serve: 0 asks the OS for an ephemeral port)." in
  Arg.(value & opt int 7479 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let addr_arg =
  let doc = "Bind/connect address." in
  Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"ADDR" ~doc)

let session_arg =
  let doc = "Session name, branch-style: $(b,proj/main)." in
  Arg.(value & opt string "proj/main" & info [ "s"; "session" ] ~docv:"NAME" ~doc)

let fsync_conv =
  let parse s =
    match s with
    | "always" -> Ok Jstar_persist.Wal.Always
    | "never" -> Ok Jstar_persist.Wal.Never
    | s when Filename.check_suffix s "ms" -> (
        match int_of_string_opt (Filename.chop_suffix s "ms") with
        | Some n when n > 0 -> Ok (Jstar_persist.Wal.Every_ms n)
        | _ -> Error (`Msg "expected a positive window like 5ms"))
    | s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok (Jstar_persist.Wal.Every n)
        | _ ->
            Error
              (`Msg
                 "expected always, never, a positive record count, or a \
                  window like 5ms"))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Jstar_persist.Wal.Always -> "always"
      | Jstar_persist.Wal.Never -> "never"
      | Jstar_persist.Wal.Every n -> string_of_int n
      | Jstar_persist.Wal.Every_ms n -> Printf.sprintf "%dms" n)
  in
  Arg.conv (parse, print)

(* -- serve ------------------------------------------------------------- *)

let serve_cmd =
  let root =
    let doc = "Directory for session state (created if missing)." in
    Arg.(value & opt string "./serve-root" & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let max_sessions =
    let doc = "Maximum concurrently open sessions." in
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let max_conns =
    let doc = "Maximum concurrent client connections." in
    Arg.(value & opt int 128 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let feed_quota =
    let doc =
      "Per-session queued-tuple quota; feeds past it get a Flow pause \
       until the session's worker catches up."
    in
    Arg.(value & opt int 32768 & info [ "feed-quota" ] ~docv:"TUPLES" ~doc)
  in
  let idle_timeout =
    let doc =
      "Evict (checkpoint + close) sessions idle this many seconds with \
       no attached connections; 0 disables."
    in
    Arg.(value & opt float 300.0 & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let checkpoint_every =
    let doc = "Auto-checkpoint a session after every N drains; 0 = never." in
    Arg.(value & opt int 256 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let fsync =
    let doc =
      "WAL fsync policy: $(b,always), $(b,never), every $(b,N) records, \
       or a group-commit window like $(b,5ms)."
    in
    Arg.(
      value
      & opt fsync_conv (Jstar_persist.Wal.Every_ms 5)
      & info [ "fsync" ] ~docv:"POLICY" ~doc)
  in
  let threads =
    let doc = "Engine fork/join pool size per session." in
    Arg.(value & opt int 1 & info [ "t"; "threads" ] ~docv:"N" ~doc)
  in
  let ops_port =
    let doc =
      "Serve the HTTP ops plane (/metrics /health /sessions /dump) on \
       this port."
    in
    Arg.(value & opt (some int) None & info [ "ops-port" ] ~docv:"PORT" ~doc)
  in
  let flight_dir =
    let doc = "Arm the flight recorder; bundles go under this directory." in
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR" ~doc)
  in
  let run root addr port max_sessions max_connections feed_quota idle_timeout
      checkpoint_every fsync threads ops_port flight_dir =
    tune_runtime ();
    let frozen = Jstar_serve.Demo.sensor_program () in
    let cfg =
      {
        (Jstar_serve.Server.default_config ~root) with
        addr;
        port;
        max_sessions;
        max_connections;
        feed_quota;
        idle_timeout;
        checkpoint_every;
        fsync;
        engine = { Jstar_core.Config.default with threads };
        ops_port;
        flight_dir;
      }
    in
    let t = Jstar_serve.Server.start cfg frozen in
    Fmt.pr "jstar-serve: listening on %s:%d (root %s)@." addr
      (Jstar_serve.Server.port t) root;
    (match Jstar_serve.Server.ops_port t with
    | Some p ->
        Fmt.pr "ops: serving http://127.0.0.1:%d (/metrics /health /sessions \
                /dump)@."
          p
    | None -> ());
    Format.pp_print_flush Fmt.stdout ();
    let on_signal _ = Jstar_serve.Server.request_shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    Jstar_serve.Server.wait t;
    Fmt.pr "jstar-serve: drained and stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve many concurrent durable sessions of the sensor demo \
          program; SIGTERM drains, checkpoints and exits.")
    Term.(
      const run $ root $ addr_arg $ port_arg $ max_sessions $ max_conns
      $ feed_quota $ idle_timeout $ checkpoint_every $ fsync $ threads
      $ ops_port $ flight_dir)

(* -- client subcommands ------------------------------------------------ *)

let with_client addr port session f =
  let frozen = Jstar_serve.Demo.sensor_program () in
  let c = Jstar_serve.Client.connect ~addr ~port frozen in
  Fun.protect
    ~finally:(fun () -> Jstar_serve.Client.close c)
    (fun () ->
      Fmt.pr "open: %s@." (Jstar_serve.Client.open_session c session);
      f frozen c)

let print_digest (d : Jstar_serve.Protocol.digest_info) =
  Fmt.pr "gamma %s@.outputs %d@.seq-lanes %x:%x@.out-lanes %x:%x@."
    d.Jstar_serve.Protocol.d_gamma d.d_outputs (fst d.d_seq_lanes)
    (snd d.d_seq_lanes) (fst d.d_out_lanes) (snd d.d_out_lanes)

let feed_cmd =
  let ticks =
    let doc = "Timesteps to feed (one Tick + one Reading per sensor each)." in
    Arg.(value & opt int 100 & info [ "ticks" ] ~docv:"N" ~doc)
  in
  let sensors =
    let doc = "Sensors per timestep." in
    Arg.(value & opt int 16 & info [ "sensors" ] ~docv:"N" ~doc)
  in
  let from_tick =
    let doc = "First timestep (continue a stream where it left off)." in
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"T" ~doc)
  in
  let drain_every =
    let doc = "Drain after every N ticks." in
    Arg.(value & opt int 10 & info [ "drain-every" ] ~docv:"N" ~doc)
  in
  let show_output =
    let doc = "Print drained output lines." in
    Arg.(value & flag & info [ "show-output" ] ~doc)
  in
  let run addr port session ticks sensors from_tick drain_every show_output =
    with_client addr port session (fun frozen c ->
        let outputs = ref 0 in
        for t = from_tick to from_tick + ticks - 1 do
          ignore
            (Jstar_serve.Client.feed c
               (Jstar_serve.Demo.batch frozen ~sensors ~t));
          if (t - from_tick + 1) mod drain_every = 0 then begin
            let lines, _ = Jstar_serve.Client.drain c in
            outputs := !outputs + List.length lines;
            if show_output then List.iter (Fmt.pr "%s@.") lines
          end
        done;
        let lines, mark = Jstar_serve.Client.drain c in
        outputs := !outputs + List.length lines;
        if show_output then List.iter (Fmt.pr "%s@.") lines;
        Fmt.pr "fed %d ticks x %d sensors: %d outputs this run, %d total, \
                %d flow pauses@."
          ticks sensors !outputs mark.Jstar_serve.Protocol.w_outputs
          (Jstar_serve.Client.pauses c);
        print_digest (Jstar_serve.Client.digest c))
  in
  Cmd.v
    (Cmd.info "feed"
       ~doc:"Feed the sensor stream into a session and print its digests.")
    Term.(
      const run $ addr_arg $ port_arg $ session_arg $ ticks $ sensors
      $ from_tick $ drain_every $ show_output)

let digest_cmd =
  let run addr port session =
    with_client addr port session (fun _ c ->
        print_digest (Jstar_serve.Client.digest c))
  in
  Cmd.v
    (Cmd.info "digest" ~doc:"Print a session's determinism digests.")
    Term.(const run $ addr_arg $ port_arg $ session_arg)

let branch_cmd =
  let to_arg =
    let doc = "Name for the new branch." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let run addr port session name =
    with_client addr port session (fun _ c ->
        Fmt.pr "%s@." (Jstar_serve.Client.branch c name))
  in
  Cmd.v
    (Cmd.info "branch"
       ~doc:
         "Fork a session's durable state under a new name without \
          copying segments.")
    Term.(const run $ addr_arg $ port_arg $ session_arg $ to_arg)

let merge_cmd =
  let from_arg =
    let doc = "Session whose divergence to replay into this one." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FROM" ~doc)
  in
  let run addr port session from =
    with_client addr port session (fun _ c ->
        Fmt.pr "%s@." (Jstar_serve.Client.merge c ~from);
        print_digest (Jstar_serve.Client.digest c))
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Replay another session's digest-verified divergence into this \
          session.")
    Term.(const run $ addr_arg $ port_arg $ session_arg $ from_arg)

(* -- main -------------------------------------------------------------- *)

let main =
  Cmd.group
    (Cmd.info "jstar-serve" ~version:"dev"
       ~doc:
         "Multi-tenant session server for the JStar runtime: branchable, \
          mergeable, durable sessions over a binary protocol.")
    [ serve_cmd; feed_cmd; digest_cmd; branch_cmd; merge_cmd ]

let () = exit (Cmd.eval main)
