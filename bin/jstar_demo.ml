(* jstar-demo: command-line driver for the case-study programs.

   This binary is the runtime analogue of the JStar compiler's flag
   interface: the same declarative programs run under different
   parallelisation strategies and data-structure choices selected purely
   by options ("-sequential", "--threads=N", "-noDelta T", store
   overrides), demonstrating the paper's central claim that none of
   these choices require touching program text. *)

open Cmdliner
open Jstar_core

let tune_runtime () =
  (* The paper ran the JVM with a large heap (§6.2); the OCaml 5
     analogue is a large per-domain minor heap.  Must precede any
     domain spawn. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

(* -- shared options -------------------------------------------------- *)

let threads =
  let doc = "Fork/join pool size; 1 runs sequentially on the caller." in
  Arg.(value & opt int 2 & info [ "t"; "threads" ] ~docv:"N" ~doc)

let tracing =
  let doc =
    "Runtime observability level: $(b,off) (zero overhead), \
     $(b,counters) (metrics registry), or $(b,spans) (metrics plus \
     per-domain event rings for Chrome-trace export)."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("off", Jstar_obs.Level.Off);
             ("counters", Jstar_obs.Level.Counters);
             ("spans", Jstar_obs.Level.Spans) ])
        Jstar_obs.Level.Off
    & info [ "tracing" ] ~docv:"LEVEL" ~doc)

let trace_out =
  let doc =
    "Write a Chrome trace-event JSON file (open in Perfetto or \
     chrome://tracing).  Implies $(b,--tracing spans)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write the metrics registry snapshot as CSV.  Implies at least \
     $(b,--tracing counters)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let causality_check =
  let doc = "Assert the law of causality dynamically at every put." in
  Arg.(value & flag & info [ "check-causality" ] ~doc)

let audit =
  let doc =
    "Audit the law of causality dynamically: besides the put-side check, \
     every firing's queries must visit only tuples the law allows \
     (positive at or before the trigger, negative/aggregate strictly \
     before)."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

let digest =
  let doc =
    "Compute order-independent 128-bit determinism digests of the final \
     database and of the per-step class sequence, printed after the run \
     (equal digests across $(b,--threads) values certify a deterministic \
     run)."
  in
  Arg.(value & flag & info [ "digest" ] ~doc)

let trace_sample =
  let doc =
    "With $(b,--tracing spans), record only every $(docv)-th event per \
     kind and domain (1 = record everything)."
  in
  Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N" ~doc)

let task_per_rule =
  let doc = "One task per (tuple, rule) pair instead of per tuple (§5.2)." in
  Arg.(value & flag & info [ "task-per-rule" ] ~doc)

let show_stats =
  let doc = "Print per-table usage statistics after the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let profile_flag =
  let doc =
    "Enable the continuous profiler: per-rule self time and fire counts, \
     per-table put/query attribution, scheduler utilization and GC deltas, \
     folded at each step barrier (already on for configs built with \
     $(b,Config.parallel)).  Timing lanes are non-deterministic; digests \
     are unaffected."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let metrics_every =
  let doc =
    "With $(b,--metrics-out), rewrite the CSV snapshot atomically (temp \
     file + rename) every $(docv) engine steps instead of only at the \
     end, so a live run can be watched from the filesystem.  Implies at \
     least $(b,--tracing counters)."
  in
  Arg.(value & opt int 0 & info [ "metrics-every" ] ~docv:"N" ~doc)

let shards_opt =
  let doc =
    "Shared-nothing sharded execution: partition Gamma and Delta by tuple \
     hash into $(docv) single-owner shards with cross-shard mailbox message \
     passing (0 = unsharded).  Digests, outputs and lineage are \
     bit-identical to unsharded runs at any thread count; per-shard \
     occupancy and message-rate lanes appear in $(b,/metrics) and \
     $(b,/health)."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

(* [--trace-out] / [--metrics-out] / [--metrics-every] imply the level
   they need, so "--trace-out t.json" alone produces a useful trace. *)
let effective_tracing tracing ~trace_out ~metrics_out ~metrics_every =
  match tracing with
  | Jstar_obs.Level.Spans -> tracing
  | _ when trace_out <> None -> Jstar_obs.Level.Spans
  | Jstar_obs.Level.Counters -> tracing
  | Jstar_obs.Level.Off when metrics_out <> None || metrics_every > 0 ->
      Jstar_obs.Level.Counters
  | _ -> tracing

(* Temp + rename so a concurrent reader never sees a half-written
   snapshot. *)
let flush_metrics_csv path metrics =
  let tmp = path ^ ".tmp" in
  Jstar_obs.Export.write_metrics_csv tmp metrics;
  Sys.rename tmp path

let apply_common ?(shards = 0) ?alert_hook config ~tracing ~trace_out
    ~metrics_out ~causality_check ~task_per_rule ~audit ~digest ~trace_sample
    ~profile ~metrics_every =
  let metrics_hook =
    match (metrics_out, metrics_every) with
    | Some path, n when n > 0 ->
        Some
          (fun step metrics ->
            if step > 0 && step mod n = 0 then flush_metrics_csv path metrics)
    | _ -> None
  in
  (* Compose the per-step-barrier hooks: alert evaluation first (cheap
     named reads), then the CSV rewrite. *)
  let step_hook =
    match (alert_hook, metrics_hook) with
    | None, None -> None
    | Some h, None | None, Some h -> Some h
    | Some a, Some m ->
        Some
          (fun step metrics ->
            a step metrics;
            m step metrics)
  in
  {
    config with
    Config.tracing =
      effective_tracing tracing ~trace_out ~metrics_out ~metrics_every;
    runtime_causality_check = causality_check;
    task_per_rule;
    audit_causality = audit;
    digest;
    trace_sample;
    profile = config.Config.profile || profile;
    step_hook;
    shards;
  }

let report ?(max_lines = 20) ?trace_out ?metrics_out result show_stats =
  let outputs = result.Engine.outputs in
  let n = List.length outputs in
  List.iteri
    (fun i line -> if i < max_lines then Fmt.pr "%s@." line)
    outputs;
  if n > max_lines then Fmt.pr "... (%d more lines)@." (n - max_lines);
  Fmt.pr "-- %.3fs, %d steps, %d tuples processed, %d delta inserts (%d dups)@."
    result.Engine.elapsed result.Engine.steps result.Engine.tuples_processed
    result.Engine.delta_inserted result.Engine.delta_deduped;
  if show_stats then
    Fmt.pr "%a" Table_stats.pp_snapshot (Table_stats.snapshot result.Engine.stats);
  (match result.Engine.digest with
  | Some d ->
      Fmt.pr "digest: gamma=%s@." d.Engine.d_gamma;
      Fmt.pr "digest: classes=%s@." d.Engine.d_classes;
      Fmt.pr "digest: outputs=%s@." d.Engine.d_outputs;
      List.iter
        (fun (table, h) -> Fmt.pr "digest: %s=%s@." table h)
        d.Engine.d_tables
  | None -> ());
  let tracer = result.Engine.tracer in
  if Jstar_obs.Tracer.counters_on tracer then
    Jstar_obs.Export.console Fmt.stdout ~metrics:result.Engine.metrics tracer;
  (match trace_out with
  | Some path ->
      Jstar_obs.Export.write_chrome_trace path tracer;
      Fmt.pr "trace -> %s (%d events, %d dropped)@." path
        (List.fold_left
           (fun acc r -> acc + Jstar_obs.Ring.length r)
           0 (Jstar_obs.Tracer.rings tracer))
        (Jstar_obs.Tracer.dropped tracer)
  | None -> ());
  match metrics_out with
  | Some path ->
      Jstar_obs.Export.write_metrics_csv path result.Engine.metrics;
      Fmt.pr "metrics -> %s@." path
  | None -> ()

(* -- explain ----------------------------------------------------------- *)

(* [--explain Table:v1,v2,...] selects tuples by a leading-field prefix;
   the values are parsed against the table's column types. *)
let parse_explain_spec program spec =
  let fail msg = `Error (Printf.sprintf "--explain %s: %s" spec msg) in
  match String.index_opt spec ':' with
  | None -> fail "expected TABLE:v1,v2,..."
  | Some i -> (
      let tname = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match Program.find_table program tname with
      | exception Schema.Schema_error msg -> fail msg
      | schema -> (
          let raw =
            if rest = "" then [] else String.split_on_char ',' rest
          in
          if List.length raw > Schema.arity schema then
            fail
              (Printf.sprintf "%d values but %s has arity %d"
                 (List.length raw) tname (Schema.arity schema))
          else
            try
              let prefix =
                List.mapi
                  (fun j s ->
                    match Schema.field_ty schema j with
                    | Value.TInt -> Value.Int (int_of_string (String.trim s))
                    | Value.TFloat ->
                        Value.Float (float_of_string (String.trim s))
                    | Value.TBool ->
                        Value.Bool (bool_of_string (String.trim s))
                    | Value.TStr -> Value.Str s)
                  raw
              in
              `Ok (schema, Array.of_list prefix)
            with Failure _ -> fail "value does not parse at its column type"))

let explain_run ~spec ~json_out ~dot_out ~depth ~width ~frozen ~gamma result =
  match parse_explain_spec frozen.Program.program spec with
  | `Error msg ->
      Fmt.epr "jstar-demo: %s@." msg;
      exit 2
  | `Ok (schema, prefix) ->
      let lineage =
        match result.Engine.lineage with
        | Some l -> l
        | None -> (* --explain implies provenance *) assert false
      in
      let matches = ref [] in
      (gamma schema).Store.iter_prefix prefix (fun t ->
          matches := t :: !matches);
      let matches = List.sort Tuple.compare !matches in
      let max_shown = 10 in
      (match matches with
      | [] -> Fmt.pr "explain: no stored tuple matches %s@." spec
      | _ ->
          List.iteri
            (fun i t ->
              if i < max_shown then
                match
                  Jstar_prov.Explain.derive ~lineage ~frozen ~max_depth:depth
                    ~max_width:width t
                with
                | Some node -> Fmt.pr "@.%a" Jstar_prov.Explain.pp node
                | None ->
                    Fmt.pr "@.%a: stored but not tracked by lineage@."
                      Tuple.pp t)
            matches;
          if List.length matches > max_shown then
            Fmt.pr "... (%d more matching tuples)@."
              (List.length matches - max_shown));
      let first_tree =
        match matches with
        | t :: _ ->
            Jstar_prov.Explain.derive ~lineage ~frozen ~max_depth:depth
              ~max_width:width t
        | [] -> None
      in
      let write path contents what =
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Fmt.pr "%s -> %s@." what path
      in
      (match (json_out, first_tree) with
      | Some path, Some node ->
          write path (Jstar_prov.Explain.json_string node) "explain json"
      | Some _, None -> Fmt.epr "jstar-demo: no tree to write as JSON@."
      | None, _ -> ());
      match (dot_out, first_tree) with
      | Some path, Some node ->
          write path (Jstar_prov.Explain.to_dot node) "explain dot"
      | Some _, None -> Fmt.epr "jstar-demo: no tree to write as DOT@."
      | None, _ -> ()

(* -- pvwatts ---------------------------------------------------------- *)

let pvwatts_cmd =
  let installations =
    Arg.(value & opt int 10 & info [ "installations" ] ~docv:"N"
           ~doc:"Installations in the synthetic dataset (paper: 1000).")
  in
  let naive =
    Arg.(value & flag & info [ "naive" ]
           ~doc:"Disable -noDelta: route every PvWatts tuple through Delta.")
  in
  let store =
    Arg.(value & opt (enum [ ("skiplist", Jstar_apps.Pvwatts.Default_store);
                             ("hash", Jstar_apps.Pvwatts.Hash_store);
                             ("month-array", Jstar_apps.Pvwatts.Month_array_store) ])
           Jstar_apps.Pvwatts.Month_array_store
         & info [ "store" ] ~docv:"KIND"
             ~doc:"Gamma store for the PvWatts table: $(b,skiplist), $(b,hash) or $(b,month-array).")
  in
  let sorted =
    Arg.(value & flag & info [ "sorted" ]
           ~doc:"Round-robin input ordering (the paper's best case) instead of month-major.")
  in
  let chunks =
    Arg.(value & opt int 0 & info [ "chunks" ] ~docv:"N"
           ~doc:"Parallel CSV reader chunks (default 2x threads).  Chunking \
                 shapes the seed tuples, so hold it fixed when comparing \
                 $(b,--digest) or $(b,--explain) output across thread counts.")
  in
  let disruptor =
    Arg.(value & flag & info [ "disruptor" ]
           ~doc:"Run the Disruptor redesign (§6.3) instead of the engine version.")
  in
  let consumers =
    Arg.(value & opt int 12 & info [ "consumers" ] ~docv:"N"
           ~doc:"Disruptor consumer count (Table 1 uses 12).")
  in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write the program's dependency graph in Graphviz format.")
  in
  let explain =
    Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"TABLE:V1,V2,..."
           ~doc:"Print the derivation tree of every stored tuple of \
                 $(b,TABLE) whose leading fields equal the given values \
                 (implies provenance capture): why does this tuple exist?")
  in
  let explain_json =
    Arg.(value & opt (some string) None & info [ "explain-json" ] ~docv:"FILE"
           ~doc:"Also write the first explained tuple's tree as JSON.")
  in
  let explain_dot =
    Arg.(value & opt (some string) None & info [ "explain-dot" ] ~docv:"FILE"
           ~doc:"Also write the first explained tuple's tree as a Graphviz digraph.")
  in
  let explain_depth =
    Arg.(value & opt int 12 & info [ "explain-depth" ] ~docv:"N"
           ~doc:"Derivation-tree depth limit.")
  in
  let explain_width =
    Arg.(value & opt int 16 & info [ "explain-width" ] ~docv:"N"
           ~doc:"Inputs shown per derivation node.")
  in
  let run installations threads naive store sorted chunks disruptor consumers
      dot explain explain_json explain_dot explain_depth explain_width tracing
      trace_out metrics_out causality_check task_per_rule audit digest
      trace_sample profile metrics_every shards show_stats =
    tune_runtime ();
    let ordering =
      if sorted then Jstar_csv.Pvwatts_data.Round_robin
      else Jstar_csv.Pvwatts_data.Month_major
    in
    Fmt.pr "generating %d records...@."
      (Jstar_csv.Pvwatts_data.record_count ~installations);
    let data = Jstar_csv.Pvwatts_data.to_bytes ~installations ~ordering in
    if disruptor then begin
      let r =
        Jstar_apps.Pvwatts_disruptor.run
          ~options:
            { Jstar_disruptor.Disruptor.pvwatts_options with num_consumers = consumers }
          ~data ()
      in
      List.iter (Fmt.pr "%s@.") r.Jstar_apps.Pvwatts_disruptor.outputs;
      Fmt.pr "-- producer %.3fs, total %.3fs, %d events@."
        r.Jstar_apps.Pvwatts_disruptor.stats.Jstar_disruptor.Disruptor.elapsed_producer
        r.Jstar_apps.Pvwatts_disruptor.stats.Jstar_disruptor.Disruptor.elapsed_total
        r.Jstar_apps.Pvwatts_disruptor.stats.Jstar_disruptor.Disruptor.published
    end
    else begin
      let chunks = if chunks > 0 then chunks else max 2 (2 * threads) in
      let app = Jstar_apps.Pvwatts.make ~data ~chunks () in
      (match dot with
      | Some path ->
          Jstar_stats.Depgraph.write_dot
            (Jstar_stats.Depgraph.of_program app.Jstar_apps.Pvwatts.program)
            path;
          Fmt.pr "dependency graph -> %s@." path
      | None -> ());
      let config =
        apply_common ~shards ~tracing ~trace_out ~metrics_out ~causality_check
          ~task_per_rule ~audit ~digest ~trace_sample ~profile ~metrics_every
          (Jstar_apps.Pvwatts.config ~threads ~no_delta:(not naive) ~store ())
      in
      let config =
        if explain <> None then { config with Config.provenance = true }
        else config
      in
      let frozen = Program.freeze app.Jstar_apps.Pvwatts.program in
      let result, gamma =
        Engine.run_with_gamma ~init:app.Jstar_apps.Pvwatts.init frozen config
      in
      report ?trace_out ?metrics_out result show_stats;
      match explain with
      | Some spec ->
          explain_run ~spec ~json_out:explain_json ~dot_out:explain_dot
            ~depth:explain_depth ~width:explain_width ~frozen ~gamma result
      | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "pvwatts" ~doc:"Monthly solar-power averages (§6.2-6.3).")
    Term.(
      const run $ installations $ threads $ naive $ store $ sorted $ chunks
      $ disruptor $ consumers $ dot $ explain $ explain_json $ explain_dot
      $ explain_depth $ explain_width $ tracing $ trace_out $ metrics_out
      $ causality_check $ task_per_rule $ audit $ digest $ trace_sample
      $ profile_flag $ metrics_every $ shards_opt $ show_stats)

(* -- matmul ----------------------------------------------------------- *)

let matmul_cmd =
  let n =
    Arg.(value & opt int 400 & info [ "n" ] ~docv:"N"
           ~doc:"Matrix dimension (paper: 1000).")
  in
  let boxed =
    Arg.(value & flag & info [ "boxed" ]
           ~doc:"Write results as boxed tuples through put (the slow XText path, §6.1).")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Check against the naive baseline.")
  in
  let run n threads boxed verify tracing causality_check task_per_rule
      show_stats =
    tune_runtime ();
    (* Matmul builds its config internally; observability options don't
       apply here. *)
    ignore (tracing, causality_check, task_per_rule);
    let variant = if boxed then Jstar_apps.Matmul.Boxed else Jstar_apps.Matmul.Unboxed in
    let t0 = Unix.gettimeofday () in
    let result, get = Jstar_apps.Matmul.run ~n ~variant ~threads () in
    Fmt.pr "C[0][0]=%d C[%d][%d]=%d@." (get 0 0) (n - 1) (n - 1)
      (get (n - 1) (n - 1));
    Fmt.pr "-- %.3fs (%s, %d threads)@."
      (Unix.gettimeofday () -. t0)
      (if boxed then "boxed" else "unboxed")
      threads;
    if verify then begin
      let a = Jstar_apps.Matmul.generate_matrix 1 n
      and b = Jstar_apps.Matmul.generate_matrix 2 n in
      let want = Jstar_apps.Matmul.baseline_naive a b in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if get i j <> want.(i).(j) then ok := false
        done
      done;
      Fmt.pr "verification: %s@." (if !ok then "ok" else "FAILED")
    end;
    if show_stats then
      Fmt.pr "%a" Table_stats.pp_snapshot (Table_stats.snapshot result.Engine.stats)
  in
  Cmd.v
    (Cmd.info "matmul" ~doc:"Naive matrix multiplication (§6.4).")
    Term.(
      const run $ n $ threads $ boxed $ verify $ tracing $ causality_check
      $ task_per_rule $ show_stats)

(* -- dijkstra ---------------------------------------------------------- *)

let dijkstra_cmd =
  let vertices =
    Arg.(value & opt int 100_000 & info [ "vertices" ] ~docv:"N"
           ~doc:"Graph size; edges are ~2x this (paper: 1,000,000).")
  in
  let tasks =
    Arg.(value & opt int 24 & info [ "gen-tasks" ] ~docv:"N"
           ~doc:"Parallel graph-generation tasks (the paper split a serial rule into 24).")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Check against the binary-heap baseline.")
  in
  let run vertices threads tasks verify tracing causality_check task_per_rule
      show_stats =
    tune_runtime ();
    ignore (tracing, causality_check, task_per_rule);
    let result, app = Jstar_apps.Shortest_path.run ~tasks ~vertices ~threads () in
    Fmt.pr "reached %d of %d vertices@."
      (app.Jstar_apps.Shortest_path.reached_count ())
      vertices;
    List.iter
      (fun v ->
        match app.Jstar_apps.Shortest_path.distance_of v with
        | Some d -> Fmt.pr "shortest path to %d is %d@." v d
        | None -> Fmt.pr "vertex %d unreachable@." v)
      [ 1; vertices / 2; vertices - 1 ];
    Fmt.pr "-- %.3fs, %d steps@." result.Engine.elapsed result.Engine.steps;
    if verify then begin
      let want = Jstar_apps.Shortest_path.baseline ~tasks ~vertices () in
      let ok = ref true in
      for v = 0 to vertices - 1 do
        if app.Jstar_apps.Shortest_path.distance_of v <> Some want.(v) then
          ok := false
      done;
      Fmt.pr "verification: %s@." (if !ok then "ok" else "FAILED")
    end;
    if show_stats then
      Fmt.pr "%a" Table_stats.pp_snapshot (Table_stats.snapshot result.Engine.stats)
  in
  Cmd.v
    (Cmd.info "dijkstra" ~doc:"Single-source shortest paths (§6.5, Fig 5).")
    Term.(
      const run $ vertices $ threads $ tasks $ verify $ tracing
      $ causality_check $ task_per_rule $ show_stats)

(* -- median ------------------------------------------------------------ *)

let median_cmd =
  let n =
    Arg.(value & opt int 4_000_000 & info [ "n" ] ~docv:"N"
           ~doc:"Array size (paper: 100,000,000).")
  in
  let regions =
    Arg.(value & opt int 8 & info [ "regions" ] ~docv:"N"
           ~doc:"Parallel partition regions per round.")
  in
  let run n threads regions tracing causality_check task_per_rule show_stats =
    tune_runtime ();
    ignore (tracing, causality_check, task_per_rule);
    let result = Jstar_apps.Median.run ~regions ~n ~threads () in
    report result show_stats
  in
  Cmd.v
    (Cmd.info "median" ~doc:"Median of N random doubles (§6.6).")
    Term.(
      const run $ n $ threads $ regions $ tracing $ causality_check
      $ task_per_rule $ show_stats)

(* -- ship -------------------------------------------------------------- *)

let ship_cmd =
  let run threads tracing trace_out metrics_out causality_check task_per_rule
      audit digest trace_sample profile metrics_every show_stats =
    tune_runtime ();
    let app = Jstar_apps.Spaceinvaders.make () in
    let config =
      apply_common ~tracing ~trace_out ~metrics_out ~causality_check
        ~task_per_rule ~audit ~digest ~trace_sample ~profile ~metrics_every
        { Config.default with threads }
    in
    report ?trace_out ?metrics_out
      (Engine.run_program ~init:app.Jstar_apps.Spaceinvaders.init
         app.Jstar_apps.Spaceinvaders.program config)
      show_stats
  in
  Cmd.v
    (Cmd.info "ship" ~doc:"The Space Invaders Ship example of §3 (Fig 2).")
    Term.(
      const run $ threads $ tracing $ trace_out $ metrics_out
      $ causality_check $ task_per_rule $ audit $ digest $ trace_sample
      $ profile_flag $ metrics_every $ show_stats)

(* -- stream ------------------------------------------------------------ *)

(* A long-lived event-driven session with optional durability: one tick
   = one feed + one drain.  With --persist the session writes a WAL and
   (optionally) snapshot checkpoints, restores automatically on
   restart, and --crash-after can SIGKILL the process mid-run to
   demonstrate recovery. *)

let fsync_conv =
  let parse s =
    match s with
    | "always" -> Ok Jstar_persist.Wal.Always
    | "never" -> Ok Jstar_persist.Wal.Never
    | s when Filename.check_suffix s "ms" -> (
        match int_of_string_opt (Filename.chop_suffix s "ms") with
        | Some n when n > 0 -> Ok (Jstar_persist.Wal.Every_ms n)
        | _ -> Error (`Msg "expected a positive window like 5ms"))
    | s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok (Jstar_persist.Wal.Every n)
        | _ ->
            Error
              (`Msg
                 "expected always, never, a positive record count, or a \
                  window like 5ms"))
  in
  let print ppf = function
    | Jstar_persist.Wal.Always -> Fmt.string ppf "always"
    | Jstar_persist.Wal.Never -> Fmt.string ppf "never"
    | Jstar_persist.Wal.Every n -> Fmt.pf ppf "%d" n
    | Jstar_persist.Wal.Every_ms n -> Fmt.pf ppf "%dms" n
  in
  Arg.conv (parse, print)

let stream_cmd =
  let ticks =
    Arg.(value & opt int 200 & info [ "ticks" ] ~docv:"N"
           ~doc:"Input ticks to feed (one drain per tick).")
  in
  let sensors =
    Arg.(value & opt int 8 & info [ "sensors" ] ~docv:"N"
           ~doc:"Synthetic sensor readings per tick.")
  in
  let persist =
    Arg.(value & opt (some string) None & info [ "persist" ] ~docv:"DIR"
           ~doc:"Make the session durable: write-ahead log + snapshots \
                 in $(docv), restoring automatically when the directory \
                 already holds a session.")
  in
  let checkpoint_every =
    Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"With $(b,--persist), take a snapshot checkpoint every \
                 $(docv) drains (0 = never; the WAL then holds the whole \
                 history).")
  in
  let fsync =
    Arg.(value & opt fsync_conv Jstar_persist.Wal.Always
         & info [ "fsync" ] ~docv:"POLICY"
             ~doc:"WAL durability: $(b,always) (fsync every commit), \
                   $(b,never), or a number N (fsync once per N records).")
  in
  let crash_after =
    Arg.(value & opt (some int) None & info [ "crash-after" ] ~docv:"K"
           ~doc:"SIGKILL this process after $(docv) drains — rerun with \
                 the same $(b,--persist) directory to watch recovery.")
  in
  let ops_port =
    Arg.(value & opt (some int) None & info [ "ops-port" ] ~docv:"PORT"
           ~doc:"Serve the live introspection endpoints ($(b,/metrics), \
                 $(b,/health), $(b,/profile), $(b,/explain), $(b,/alerts), \
                 $(b,/dump)) on 127.0.0.1:$(docv) while the session runs \
                 (0 picks an ephemeral port, printed at startup).  Implies \
                 $(b,--profile) and provenance capture; the server shuts \
                 down when the last drain completes.")
  in
  let flight_dir =
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Arm the flight recorder: on an uncaught engine exception \
                 (including a causality violation), on SIGUSR1, or on the \
                 ops plane's $(b,/dump), write one atomic diagnostic \
                 bundle (journal tail, metrics, profiler top-K, per-shard \
                 backlog, WAL lag, explain trees for tuples a violation \
                 named) into $(docv).")
  in
  let alert_specs =
    Arg.(value & opt_all string [] & info [ "alert" ] ~docv:"SPEC"
           ~doc:"Declare a threshold alert over the metrics registry, \
                 evaluated at every step barrier with ok/pending/firing \
                 hysteresis.  Forms: $(b,NAME:METRIC>VAL), \
                 $(b,NAME:METRIC<VAL), $(b,NAME:rate(METRIC)>VAL) (EMA \
                 units/step), $(b,NAME:absent(METRIC)); optional \
                 $(b,:for=N) (consecutive evals before firing) and \
                 $(b,:clear=M) suffixes.  Repeatable.  Served at \
                 $(b,/alerts) and exported in the Prometheus ALERTS \
                 convention.")
  in
  let run ticks sensors persist checkpoint_every fsync crash_after ops_port
      flight_dir alert_specs threads tracing trace_out metrics_out
      causality_check task_per_rule audit digest trace_sample profile
      metrics_every shards show_stats =
    tune_runtime ();
    let alerts =
      match alert_specs with
      | [] -> None
      | specs ->
          let rules =
            List.map
              (fun s ->
                match Jstar_obs.Alerts.parse_spec s with
                | Ok r -> r
                | Error msg ->
                    Fmt.epr "jstar-demo: --alert %s: %s@." s msg;
                    exit 2)
              specs
          in
          Some (Jstar_obs.Alerts.create rules)
    in
    let alert_hook =
      Option.map
        (fun a step metrics -> Jstar_obs.Alerts.eval a ~step metrics)
        alerts
    in
    let p = Program.create () in
    let tick_t =
      Program.table p "Tick" ~columns:Schema.[ int_col "t" ]
        ~orderby:Schema.[ Lit "Tick"; Seq "t" ]
        ()
    in
    let reading =
      Program.table p "Reading"
        ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
        ~orderby:Schema.[ Lit "Reading"; Seq "t" ]
        ()
    in
    let alarm =
      Program.table p "Alarm"
        ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
        ~orderby:Schema.[ Lit "Alarm"; Seq "t" ]
        ()
    in
    Program.order p [ "Tick"; "Reading"; "Alarm" ];
    Program.rule p "alarm" ~trigger:reading (fun ctx r ->
        if Tuple.int r "value" >= 90 then
          ctx.Rule.put
            (Tuple.make alarm [| Tuple.get r 0; Tuple.get r 1; Tuple.get r 2 |]));
    Program.output p alarm (fun t ->
        Printf.sprintf "alarm t=%d sensor=%d value=%d" (Tuple.int t "t")
          (Tuple.int t "sensor") (Tuple.int t "value"));
    let frozen = Program.freeze p in
    let config =
      apply_common ~shards ?alert_hook ~tracing ~trace_out ~metrics_out
        ~causality_check ~task_per_rule ~audit ~digest ~trace_sample
        ~profile:(profile || ops_port <> None)
        ~metrics_every
        { Config.default with Config.threads }
    in
    (* /explain needs lineage, so a live ops session captures it. *)
    let config =
      if ops_port <> None then { config with Config.provenance = true }
      else config
    in
    (* Arm the flight recorder over a live session: SIGUSR1 and the
       uncaught-exception wrap below; /dump when the ops plane is up. *)
    let make_recorder session ~wal_section =
      match flight_dir with
      | None -> None
      | Some dir ->
          let r = Jstar_ops.Ops.make_recorder ~dir session in
          (match wal_section with
          | Some f -> Jstar_obs.Recorder.add_section r "wal" f
          | None -> ());
          Jstar_obs.Recorder.on_signal r;
          Fmt.pr "flight recorder: armed (SIGUSR1, /dump, exceptions) -> %s@."
            dir;
          Format.pp_print_flush Fmt.stdout ();
          Some r
    in
    let guard recorder f =
      match recorder with
      | None -> f ()
      | Some r -> (
          try f ()
          with exn ->
            let path =
              Jstar_obs.Recorder.dump r ~reason:"exception"
                ~detail:
                  [ ("exception", Jstar_obs.Json.Str (Printexc.to_string exn)) ]
            in
            Fmt.epr "flight recorder: bundle -> %s@." path;
            raise exn)
    in
    let start_ops session ~extra ~recorder =
      (match alerts with
      | Some a ->
          Jstar_obs.Alerts.set_journal a (Engine.session_journal session)
      | None -> ());
      match ops_port with
      | None -> None
      | Some p ->
          let o =
            Jstar_ops.Ops.attach ~port:p ~extra_health:extra ?alerts ?recorder
              session
          in
          Fmt.pr
            "ops: serving http://127.0.0.1:%d (/metrics /health /profile \
             /explain /alerts /dump)@."
            (Jstar_ops.Ops.port o);
          Format.pp_print_flush Fmt.stdout ();
          Some o
    in
    let batch t =
      Tuple.make tick_t [| Value.Int t |]
      :: List.init sensors (fun s ->
             Tuple.make reading
               [| Value.Int t; Value.Int s;
                  Value.Int (((t * 31) + (s * 17)) mod 100) |])
    in
    let maybe_crash drains =
      match crash_after with
      | Some k when drains >= k ->
          Fmt.pr "persist: simulating crash (SIGKILL) after %d drains@." k;
          Format.pp_print_flush Fmt.stdout ();
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ()
    in
    match persist with
    | None ->
        let s = Engine.start frozen config in
        let recorder = make_recorder s ~wal_section:None in
        let ops = start_ops s ~extra:(fun () -> []) ~recorder in
        guard recorder (fun () ->
            for t = 0 to ticks - 1 do
              Engine.feed s (batch t);
              ignore (Engine.drain s);
              maybe_crash (t + 1)
            done);
        Option.iter Jstar_ops.Ops.stop ops;
        report ?trace_out ?metrics_out (Engine.finish s) show_stats
    | Some dir ->
        let d, status =
          Jstar_persist.Durable.open_ ~checkpoint_every ~fsync ~dir frozen
            config
        in
        let wal_json () =
          let lag = Jstar_persist.Durable.wal_lag d in
          Jstar_obs.Json.Obj
            [
              ( "fsync",
                Jstar_obs.Json.Str (Jstar_persist.Durable.fsync_policy_name d)
              );
              ( "generation",
                Jstar_obs.Json.Num
                  (float_of_int (Jstar_persist.Durable.generation d)) );
              ( "lag_records",
                Jstar_obs.Json.Num
                  (float_of_int lag.Jstar_persist.Wal.lag_records) );
              ( "lag_seconds",
                Jstar_obs.Json.Num lag.Jstar_persist.Wal.lag_seconds );
            ]
        in
        let wal_extras () = [ ("wal", wal_json ()) ] in
        let recorder =
          make_recorder
            (Jstar_persist.Durable.session d)
            ~wal_section:(Some wal_json)
        in
        let ops =
          start_ops
            (Jstar_persist.Durable.session d)
            ~extra:wal_extras ~recorder
        in
        let start =
          match status with
          | Jstar_persist.Durable.Fresh ->
              Fmt.pr "persist: fresh session in %s@." dir;
              0
          | Jstar_persist.Durable.Restored r ->
              (* resume after the last tick whose drain reached Gamma *)
              let next = ref 0 in
              (Engine.session_gamma (Jstar_persist.Durable.session d) tick_t)
                .Store.iter (fun t -> next := max !next (Tuple.int t "t" + 1));
              Fmt.pr
                "persist: restored generation %d from %s (replayed %d \
                 feeds, %d verified drains, %d pending tuples); resuming \
                 at tick %d@."
                r.Jstar_persist.Durable.r_gen dir
                r.Jstar_persist.Durable.r_feeds r.Jstar_persist.Durable.r_drains
                r.Jstar_persist.Durable.r_pending !next;
              !next
        in
        let drains = ref 0 in
        guard recorder (fun () ->
            for t = start to ticks - 1 do
              Jstar_persist.Durable.feed d (batch t);
              ignore (Jstar_persist.Durable.drain d);
              incr drains;
              maybe_crash !drains
            done);
        Option.iter Jstar_ops.Ops.stop ops;
        let gen = Jstar_persist.Durable.generation d in
        report ?trace_out ?metrics_out (Jstar_persist.Durable.finish d)
          show_stats;
        Fmt.pr "persisted -> %s (generation %d)@." dir gen
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Event-driven sensor session; with --persist, a durable one \
             (WAL + snapshot checkpoints + automatic restore).")
    Term.(
      const run $ ticks $ sensors $ persist $ checkpoint_every $ fsync
      $ crash_after $ ops_port $ flight_dir $ alert_specs $ threads $ tracing
      $ trace_out $ metrics_out
      $ causality_check $ task_per_rule $ audit $ digest $ trace_sample
      $ profile_flag $ metrics_every $ shards_opt $ show_stats)

(* -- check ------------------------------------------------------------- *)

let check_cmd =
  let run () =
    (* Run the causality checker over every case-study program. *)
    let check name program =
      let report = Jstar_causality.Check.check_program program in
      Fmt.pr "@.%s:@.  %a" name Jstar_causality.Check.pp_report report;
      let strata = Jstar_causality.Strata.analyse program in
      if not (Jstar_causality.Strata.globally_stratified strata) then
        Fmt.pr "  %a" Jstar_causality.Strata.pp strata
    in
    check "ship" (Jstar_apps.Spaceinvaders.make ()).Jstar_apps.Spaceinvaders.program;
    let data = Jstar_csv.Pvwatts_data.to_bytes ~installations:1
        ~ordering:Jstar_csv.Pvwatts_data.Month_major in
    check "pvwatts" (Jstar_apps.Pvwatts.make ~data ~chunks:2 ()).Jstar_apps.Pvwatts.program;
    let mm, _ = Jstar_apps.Matmul.make ~n:4 ~variant:Jstar_apps.Matmul.Unboxed () in
    check "matmul" mm.Jstar_apps.Matmul.program;
    let sp, _, _ = Jstar_apps.Shortest_path.make ~vertices:4 () in
    check "dijkstra" sp.Jstar_apps.Shortest_path.program;
    let md, _ = Jstar_apps.Median.make ~n:16 () in
    check "median" md.Jstar_apps.Median.program
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Discharge the causality proof obligations of every case-study program (§4).")
    Term.(const run $ const ())

let main =
  let doc = "JStar case-study programs under configurable parallelisation" in
  Cmd.group
    (Cmd.info "jstar-demo" ~version:"1.0.0" ~doc)
    [
      pvwatts_cmd; matmul_cmd; dijkstra_cmd; median_cmd; ship_cmd; stream_cmd;
      check_cmd;
    ]

let () = exit (Cmd.eval main)
