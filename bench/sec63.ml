(* §6.3 phase breakdown: where single-threaded PvWatts time goes.

   Paper (optimised program, parallel mode, 1 thread):
     16.9%  reading and parsing the input file
     63.7%  creating the PvWatts tuples and inserting them into Gamma
      3.8%  creating SumMonth tuples and inserting into the Delta tree
     15.6%  running the Statistics reducer per month
   and the Amdahl bound with a serial reader and 12 consumers:
     1 / (0.169 + (1 - 0.169) / 12) = 4.2x.

   We measure the same decomposition on the same substrate operations:
   a parse-only pass, then the tuple-creation + Gamma-insert work, then
   SumMonth Delta traffic, then the reduction. *)

open Jstar_core

let run () =
  let installations = Util.pvwatts_installations () in
  let data =
    Jstar_csv.Pvwatts_data.to_bytes ~installations
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  let timer = Jstar_obs.Phase_timer.create () in
  (* The same decomposition doubles as a trace artifact: each phase
     becomes a named span, exported Perfetto-ready via --trace-out. *)
  let tracer = Jstar_obs.Tracer.create ~level:Jstar_obs.Level.Spans () in
  let phase name f =
    let kind = Jstar_obs.Tracer.register_kind tracer name in
    Jstar_obs.Tracer.span tracer kind (fun () ->
        Jstar_obs.Phase_timer.time timer name f)
  in
  let p = Program.create () in
  let pv =
    Program.table p "PvWatts"
      ~columns:
        Schema.
          [
            int_col "year"; int_col "month"; int_col "day"; int_col "hour";
            int_col "site"; int_col "power";
          ]
      ~orderby:Schema.[ Lit "PvWatts" ]
      ()
  in
  let store = Jstar_apps.Pvwatts.month_array_store pv in
  let fields = Array.make 6 0 in
  (* 1. reading and parsing *)
  let checksum = ref 0 in
  phase "read+parse" (fun () ->
      Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
          ignore (Jstar_csv.Parse.int_fields_into data s e fields);
          checksum := !checksum + fields.(5)));
  (* 2. creating tuples and inserting into Gamma *)
  phase "create+insert Gamma" (fun () ->
      Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
          ignore (Jstar_csv.Parse.int_fields_into data s e fields);
          let t =
            Tuple.make pv
              [|
                Value.Int fields.(0); Value.Int fields.(1); Value.Int fields.(2);
                Value.Int fields.(3); Value.Int fields.(4); Value.Int fields.(5);
              |]
          in
          ignore (store.Store.insert t)));
  (* 3. SumMonth tuples through the Delta tree (with dedup) *)
  let sum_month =
    Program.table p "SumMonth"
      ~columns:Schema.[ int_col "year"; int_col "month" ]
      ~key:2
      ~orderby:Schema.[ Lit "SumMonth" ]
      ()
  in
  Program.order p [ "PvWatts"; "SumMonth" ];
  let order = Program.order_rel p in
  ignore (Order_rel.rank order "SumMonth");
  let delta = Delta.create ~mode:Delta.Concurrent ~nlits:4 () in
  phase "SumMonth Delta insert" (fun () ->
      Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
          ignore (Jstar_csv.Parse.int_fields_into data s e fields);
          let t =
            Tuple.make sum_month [| Value.Int fields.(0); Value.Int fields.(1) |]
          in
          ignore (Delta.insert delta t (Timestamp.of_tuple order t))));
  (* 4. the Statistics reducer per month *)
  phase "Statistics reduce" (fun () ->
      for month = 1 to 12 do
        let stats = ref Reducer.Statistics.empty in
        store.Store.iter_prefix
          [| Value.Int Jstar_csv.Pvwatts_data.year; Value.Int month |]
          (fun t ->
            stats :=
              Reducer.Statistics.add !stats (float_of_int (Tuple.int t "power")));
        ignore (Reducer.Statistics.mean !stats)
      done);
  Util.heading "Sec 6.3: PvWatts single-thread phase breakdown";
  Fmt.pr "%a" Jstar_obs.Phase_timer.pp timer;
  Util.note
    "paper: read 16.9%% | Gamma insert 63.7%% | Delta insert 3.8%% | reduce \
     15.6%%";
  let bound =
    Jstar_obs.Phase_timer.amdahl_bound timer ~serial:[ "read+parse" ]
      ~workers:12
  in
  Util.note
    "Amdahl bound with a serial reader and 12 consumers: %.2fx (paper: 4.2x)"
    bound;
  match !Util.trace_out with
  | Some path ->
      Jstar_obs.Export.write_chrome_trace path tracer;
      Util.note "phase trace -> %s (open in Perfetto)" path
  | None -> ()
