(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6) plus ablations and micro-benchmarks.

   Usage:
     dune exec bench/main.exe                    # everything, default scale
     dune exec bench/main.exe -- fig8 fig12      # selected targets
     dune exec bench/main.exe -- --scale quick all
     dune exec bench/main.exe -- --scale paper fig6   # publication sizes

   Absolute numbers will differ from the paper (different language,
   machine and era); the *shapes* — who wins, by what factor, which
   programs scale — are the reproduction target.  See EXPERIMENTS.md. *)

(* A bounded all-up check: the two headline figures plus the hot-path
   ablation at smoke scale — `dune build @bench-smoke`. *)
let smoke () =
  Util.scale := Util.Quick;
  Fig8.run ();
  Fig12.run ();
  Hotpath.run ()

let targets : (string * string * (unit -> unit)) list =
  [
    ("fig6", "absolute sequential speed, JStar vs hand-coded", Fig6.run);
    ("sec62", "the -noDelta optimisation (23.0s -> 8.44s)", Sec62.run);
    ("fig8", "PvWatts speedup vs pool size x Gamma store", Fig8.run);
    ("sec63", "PvWatts phase breakdown + Amdahl bound", Sec63.run);
    ("table1", "Disruptor options and tuning alternatives", Table1.run);
    ("fig10", "Disruptor PvWatts vs sequential, two input orders", Fig10.run);
    ("fig11", "MatrixMult speedup vs pool size", Fig11.run);
    ("fig12", "Dijkstra speedup vs pool size", Fig12.run);
    ("fig13", "Median speedup vs pool size", Fig13.run);
    ("ablate", "design-choice ablations beyond the paper", Ablate.run);
    ("micro", "Bechamel micro-benchmarks of the substrates", Micro.run);
    ("hotpath", "hot-path knob ablation (batching/grain) + JSON", Hotpath.run);
    ("joins", "batched vs per-tuple rule firing on transitive closure + JSON", Joins.run);
    ("shards", "sharded vs unsharded execution on put-heavy scatter waves + JSON", Shards.run);
    ("query", "query acceleration: indexes + agg cache vs scan + JSON", Query.run);
    ("provcost", "provenance/audit/digest overhead + JSON", Provcost.run);
    ("persist", "WAL append overhead + recovery time + JSON", Persist.run);
    ( "serve",
      "jstar-serve saturation grid + branch/merge + backpressure + JSON",
      Serve.run );
    ("smoke", "quick-scale fig8 + fig12 + hotpath, bounded runtime", smoke);
  ]

let usage () =
  Fmt.pr "targets:@.";
  List.iter (fun (n, d, _) -> Fmt.pr "  %-8s %s@." n d) targets;
  Fmt.pr "  %-8s %s@." "all" "run every target (default)";
  Fmt.pr "options: --scale quick|default|paper  --trace-out FILE@."

let () =
  Util.tune_runtime ();
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | "--scale" :: s :: rest ->
        Util.scale := Util.parse_scale s;
        parse acc rest
    | "--trace-out" :: path :: rest ->
        Util.trace_out := Some path;
        parse acc rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | t :: rest -> parse (t :: acc) rest
    | [] -> List.rev acc
  in
  let chosen = parse [] args in
  let chosen = if chosen = [] || chosen = [ "all" ] then List.map (fun (n, _, _) -> n) targets else chosen in
  let t0 = Unix.gettimeofday () in
  Fmt.pr "jstar benchmark harness — %d core(s), scale=%s@." Util.cores
    (match !Util.scale with
    | Util.Quick -> "quick"
    | Util.Default -> "default"
    | Util.Paper -> "paper");
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) targets with
      | Some (_, _, run) -> run ()
      | None ->
          Fmt.pr "unknown target %s@." name;
          usage ();
          exit 1)
    chosen;
  Fmt.pr "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
