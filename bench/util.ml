(* Shared benchmark machinery: wall-clock measurement with warmup
   (mirroring the paper's protocol of discarding JIT-warmup runs and
   averaging the rest), speedup tables, and the workload scale knob. *)

type scale = Quick | Default | Paper

let scale = ref Default

(* --trace-out FILE: targets that support it (sec63) write a Chrome
   trace-event JSON of their phase structure here. *)
let trace_out : string option ref = ref None

let parse_scale = function
  | "quick" -> Quick
  | "default" -> Default
  | "paper" -> Paper
  | s -> failwith ("unknown scale: " ^ s ^ " (quick|default|paper)")

(* Workload sizes per scale.  Paper scale matches the publication
   (8.76M records, 1000x1000 matrices, 1M vertices, 100M doubles) and
   takes many minutes; default keeps every figure under ~a minute on a
   small container; quick is for smoke runs. *)
let pvwatts_installations () =
  match !scale with Quick -> 5 | Default -> 30 | Paper -> 1000

let matmul_n () = match !scale with Quick -> 120 | Default -> 400 | Paper -> 1000

let dijkstra_vertices () =
  match !scale with Quick -> 10_000 | Default -> 100_000 | Paper -> 1_000_000

let median_n () =
  match !scale with Quick -> 500_000 | Default -> 4_000_000 | Paper -> 100_000_000

(* The paper sweeps pool sizes up to the machine's core count (8 and 32
   in its testbeds); we sweep to 2x ours so the saturation point shows. *)
let cores = Domain.recommended_domain_count ()

let thread_counts = [ 1; 2; 2 * cores ]

(* The paper runs the JVM "with a large heap (8Gb)" (§6.2); the OCaml 5
   analogue is a large per-domain minor heap, which reduces how often
   allocation-heavy rule firings force stop-the-world minor collections
   across domains.  Must run before any domain is spawned. *)
let tune_runtime () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

(* Measure wall-clock seconds: [warmup] discarded runs, then the *best*
   of [repeats] timed runs.  The paper discards JIT warm-up runs and
   averages the rest on a quiet testbed; on a small shared container the
   minimum is the robust estimator (the mean is polluted by neighbour
   noise, which only ever adds time). *)
let time ?(warmup = 1) ?(repeats = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* Shared run metadata stamped into every BENCH_*.json so a committed
   number can be traced to the tree, toolchain and machine shape that
   produced it. *)

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown")

let scale_name () =
  match !scale with Quick -> "quick" | Default -> "default" | Paper -> "paper"

let meta_json () =
  Printf.sprintf
    "{\"git_rev\": \"%s\", \"ocaml\": \"%s\", \"cores\": %d, \
     \"thread_grid\": [%s], \"scale\": \"%s\"}"
    (git_rev ()) Sys.ocaml_version cores
    (String.concat ", " (List.map string_of_int thread_counts))
    (scale_name ())

let heading title =
  Fmt.pr "@.=== %s ===@." title

let note fmt = Fmt.pr ("    " ^^ fmt ^^ "@.")

(* A speedup table over thread counts: rows of (label, time per thread
   count); speedups are relative to the 1-thread entry of each row. *)
let speedup_table ~title ~paper_note rows =
  heading title;
  Fmt.pr "%-24s" "configuration";
  List.iter (fun t -> Fmt.pr "  %8s" (Printf.sprintf "T=%d" t)) thread_counts;
  List.iter (fun t -> Fmt.pr "  %8s" (Printf.sprintf "S(%d)" t)) thread_counts;
  Fmt.pr "@.";
  List.iter
    (fun (label, times) ->
      Fmt.pr "%-24s" label;
      List.iter (fun t -> Fmt.pr "  %7.3fs" t) times;
      let base = List.hd times in
      List.iter (fun t -> Fmt.pr "  %7.2fx" (base /. t)) times;
      Fmt.pr "@.")
    rows;
  note "machine has %d core(s): expect speedup to saturate at ~%d" cores cores;
  note "%s" paper_note

let bar_chart ~title ~unit rows =
  heading title;
  let widest =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let max_v = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows in
  List.iter
    (fun (label, v) ->
      let bar_len =
        if max_v > 0.0 then int_of_float (40.0 *. v /. max_v) else 0
      in
      Fmt.pr "  %-*s %8.3f %s %s@." widest label v unit (String.make bar_len '#'))
    rows
