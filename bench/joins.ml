(* Batched rule firing on a join-heavy workload: transitive closure
   over a layered-cluster graph, the relational-algebra shape
   [Config.batch_fire] vectorizes.

   Graph: C disjoint clusters, each d layers of m nodes with complete
   bipartite edges between adjacent layers — m^2 * (d-1) edges per
   cluster, ~10^6 edges at default scale.  Closure runs in BFS waves
   (all Path tuples share one literal timestamp, so each wave is one
   wide class): wave k joins every Path(x, y) against Edge(y, z) via a
   hash-indexed prefix probe on y.  The fan-in of the cluster shape
   makes most derived puts duplicates, so the workload prices exactly
   what batching touches: probe locality (the sorted chunk turns runs
   of equal-y probes into one cursor hit), Gamma dedup prechecks, and
   scratch-arena put sinking.

   Reports per-tuple vs batched wall time at 4 threads, asserts the
   determinism digests are byte-identical between the two modes, and
   writes BENCH_joins.json. *)

open Jstar_core

let layers = 4
let width = 32

(* clusters scaled so edge count lands near the target *)
let clusters () =
  let edges_per_cluster = width * width * (layers - 1) in
  let target =
    match !Util.scale with
    | Util.Quick -> 20_000
    | Util.Default | Util.Paper -> 1_000_000
  in
  target / edges_per_cluster

let threads =
  match Sys.getenv_opt "JOINS_THREADS" with
  | Some s -> int_of_string s
  | None -> 4

let build () =
  let c = clusters () in
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  Program.order p [ "Edge"; "Path" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "step" ~trigger:path
    ~reads:[ Spec.read ~prefix:[ Spec.Field "b" ] "Edge" ]
    (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| Value.Int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  (* node id: cluster * (layers * width) + layer * width + slot *)
  let node cl l s = Value.Int ((((cl * layers) + l) * width) + s) in
  let init = ref [] in
  for cl = c - 1 downto 0 do
    for l = layers - 2 downto 0 do
      for a = width - 1 downto 0 do
        for b = width - 1 downto 0 do
          init := Tuple.make edge [| node cl l a; node cl (l + 1) b |] :: !init
        done
      done
    done
  done;
  (p, edge, path, !init)

let config_of ~batched =
  {
    (Config.parallel ~threads ()) with
    Config.stores =
      [ ("Edge", Store.Hash_index 1); ("Path", Store.Hash_index 2) ];
    batch_fire = batched;
    put_batching = batched;
    (* acceleration knobs that are orthogonal to the comparison *)
    agg_cache = false;
    advisor = None;
    digest = true;
  }

(* The warmup/digest pass already runs both modes once, so one timed
   round per mode keeps the default scale inside CI-friendly minutes;
   the quick scale is cheap enough for best-of-2. *)
let rounds () = match !Util.scale with Util.Quick -> 2 | _ -> 1

let run () =
  let c = clusters () in
  let n_edges = c * width * width * (layers - 1) in
  Util.heading
    (Printf.sprintf
       "Batched joins: transitive closure, %d edges (%d clusters), %d threads"
       n_edges c threads);
  let run_once ~batched =
    let p, _edge, _path, init = build () in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_program ~init p (config_of ~batched) in
    let t = Unix.gettimeofday () -. t0 in
    (match Sys.getenv_opt "JOINS_DEBUG" with
    | Some _ ->
        Printf.printf
          "DEBUG batched=%b: tuples=%d steps=%d dins=%d ddup=%d \
           extract=%.3f gamma=%.3f rules=%.3f t=%.3f\n%!"
          batched r.Engine.tuples_processed r.Engine.steps
          r.Engine.delta_inserted r.Engine.delta_deduped
          r.Engine.phases.Engine.t_extract r.Engine.phases.Engine.t_gamma
          r.Engine.phases.Engine.t_rules t
    | None -> ());
    (r, t)
  in
  (* Warmup pass + the acceptance check: both modes must produce
     byte-identical determinism digests. *)
  let digest3 r =
    match r.Engine.digest with
    | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_tables)
    | None -> failwith "joins: digest missing"
  in
  let r_ref, t_ref = run_once ~batched:false in
  let r_batched, t_b = run_once ~batched:true in
  if digest3 r_ref <> digest3 r_batched then
    failwith "joins: batched and per-tuple digests diverge";
  Util.note "digests identical across modes (%d tuples, %d steps)"
    r_ref.Engine.tuples_processed r_ref.Engine.steps;
  (* Interleaved best-of-N rounds; the digest pass above is a full
     identical run of each mode, so its times join the pool. *)
  let best_per_tuple = ref t_ref and best_batched = ref t_b in
  for _ = 1 to rounds () do
    let _, t = run_once ~batched:false in
    if t < !best_per_tuple then best_per_tuple := t;
    let _, t = run_once ~batched:true in
    if t < !best_batched then best_batched := t
  done;
  let ratio = !best_per_tuple /. !best_batched in
  Util.bar_chart ~title:"wall time per firing mode" ~unit:"s"
    [ ("per-tuple", !best_per_tuple); ("batched", !best_batched) ];
  Util.note "batched vs per-tuple: %.2fx" ratio;
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"bench\": \"joins\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"meta\": %s,\n" (Util.meta_json ()));
    Buffer.add_string b
      (Printf.sprintf
         "  \"edges\": %d,\n  \"clusters\": %d,\n  \"layers\": %d,\n\
         \  \"width\": %d,\n  \"threads\": %d,\n"
         n_edges c layers width threads);
    Buffer.add_string b
      (Printf.sprintf "  \"tuples_processed\": %d,\n"
         r_ref.Engine.tuples_processed);
    Buffer.add_string b
      (Printf.sprintf "  \"digests_identical\": true,\n");
    Buffer.add_string b
      (Printf.sprintf "  \"per_tuple_seconds\": %.6f,\n" !best_per_tuple);
    Buffer.add_string b
      (Printf.sprintf "  \"batched_seconds\": %.6f,\n" !best_batched);
    Buffer.add_string b
      (Printf.sprintf "  \"speedup_batched_vs_per_tuple\": %.4f\n" ratio);
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_joins.json" in
  output_string oc json;
  close_out oc;
  Util.note "JSON written to BENCH_joins.json"
