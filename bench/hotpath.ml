(* Hot-path ablation: batched Delta/Gamma inserts
   ([Config.put_batching]) and adaptive all-minimums granularity
   ([Config.grain = Auto_grain]) — measured on a synthetic PvWatts-shaped
   pipeline that is all puts, dedup probes and store inserts, i.e. the
   paths those knobs touch.  (The specialized-comparator knob this bench
   once priced is retired: schema-compiled comparators are now the only
   path, so its win is baked into every row below.)

   Shape (one table per lifecycle stage, §3 / Fig 3):
     Req(r)            one class of R requests; each generator puts its
                       slice of rows TWICE, so half the route_puts are
                       Delta dedup probes;
     Row(g, i, v, ...) one par-class of N wide rows (8 columns, like a
                       PvWatts weather row) through Delta into a
                       hash-indexed Gamma (the PvWatts(year,month)
                       store); each row then re-puts itself twice — pure
                       Gamma dedup probes, where a cached hash computed
                       back at Delta-insert time is reused — and puts a
                       coarse summary key, 64 rows per key, so Phase-B
                       puts are dedup-dominated (the SumMonth recompute
                       of §6.2);
     Sum(g, b)         skiplist Gamma + output table: the emitted lines
                       double as a cross-configuration determinism check.

   Reports per-configuration wall time and throughput, the all-on vs
   all-off ratio, and writes the same numbers as machine-readable JSON
   (stdout + BENCH_hotpath.json). *)

open Jstar_core

let groups = 256
let rows_per_sum = 64

(* Shared atoms for the string column — rows point at one of twelve
   strings, as a real PvWatts month column would. *)
let months =
  [|
    "jan"; "feb"; "mar"; "apr"; "may"; "jun"; "jul"; "aug"; "sep"; "oct";
    "nov"; "dec";
  |]
  |> Array.map (fun m -> Value.Str m)

let rows_n () =
  match !Util.scale with
  | Util.Quick -> 40_000
  | Util.Default -> 200_000
  | Util.Paper -> 1_000_000

let requests = 16

let build ?(prov_optout = false) () =
  let n = rows_n () in
  let p = Program.create () in
  let req =
    Program.table p "Req"
      ~columns:Schema.[ int_col "r" ]
      ~orderby:Schema.[ Lit "Req" ]
      ()
  in
  let row =
    Program.table p "Row"
      ~columns:
        Schema.
          [
            int_col "g"; int_col "i"; int_col "v"; string_col "month";
            int_col "dni"; int_col "dhi"; int_col "temp"; int_col "wind";
            int_col "hour";
          ]
      ~orderby:Schema.[ Lit "Row"; Par "g" ]
      ()
  in
  let sum =
    Program.table p "Sum"
      ~columns:Schema.[ int_col "g"; int_col "b" ]
      ~orderby:Schema.[ Lit "Sum"; Par "g" ]
      ()
  in
  Program.order p [ "Req"; "Row"; "Sum" ];
  let per_req = n / requests in
  (* With [prov_optout] the two hot rules opt out of lineage capture
     ([Rule.make ~provenance:false]) — provcost's "prov-optout" row
     prices exactly that escape hatch. *)
  let provenance = not prov_optout in
  Program.rule p "generate" ~provenance ~trigger:req (fun ctx tup ->
      let r = Tuple.int tup "r" in
      for k = r * per_req to ((r + 1) * per_req) - 1 do
        let t =
          Tuple.make row
            [|
              Value.Int (k mod groups); Value.Int k; Value.Int (k land 1023);
              months.(k mod 12);
              Value.Int (k * 7 land 255); Value.Int (k * 13 land 511);
              Value.Int (k * 31 land 127); Value.Int (k * 3 land 63);
              Value.Int (k lsr 8);
            |]
        in
        (* Twice: the second put is a pure Delta dedup probe. *)
        ctx.Rule.put t;
        ctx.Rule.put t
      done);
  Program.rule p "summarize" ~provenance ~trigger:row (fun ctx tup ->
      let g = Tuple.int tup "g" and i = Tuple.int tup "i" in
      (* The triggering row is already in Gamma (Phase A of this step),
         so these re-puts are pure [Store.mem] probes of the wide row —
         the cached-hash path. *)
      ctx.Rule.put tup;
      ctx.Rule.put tup;
      (* Rows of group [g] are i = g, g+groups, g+2*groups, ...: dividing
         the within-group position by [rows_per_sum] sends 64 rows to the
         same summary key, so most of these puts are dedup probes. *)
      ctx.Rule.put
        (Tuple.make sum
           [| Value.Int g; Value.Int (i / groups / rows_per_sum) |]));
  Program.output p sum (fun t ->
      Printf.sprintf "sum %d %d" (Tuple.int t "g") (Tuple.int t "b"));
  let init =
    List.init requests (fun r -> Tuple.make req [| Value.Int r |])
  in
  (p, init)

type knobs = {
  label : string;
  batching : bool;
  auto_grain : bool;
  batch : bool; (* Config.batch_fire: vectorized Phase B *)
  profile : bool; (* continuous profiler (on by default in parallel configs) *)
  diag : bool; (* threshold alerts evaluated at every step barrier *)
}

let config_of k =
  let base =
    {
      (Config.parallel ~threads:2 ()) with
      Config.stores = [ ("Row", Store.Hash_index 1) ];
      put_batching = k.batching;
      batch_fire = k.batch;
      (* The query-acceleration knobs are off: this workload never
         queries, so they'd only add barrier noise to the ablation.  The
         profiler is priced by its own row, so the knob rows switch it
         off explicitly (Config.parallel defaults it on). *)
      agg_cache = false;
      advisor = None;
      profile = k.profile;
      grain = (if k.auto_grain then Config.Auto_grain else Config.Fixed 1);
    }
  in
  if not k.diag then base
  else begin
    (* The diagnostics plane at bench prices: three alert rules (one
       threshold, one EMA rate, one absence) read the registry at every
       step barrier.  The always-on journal is in every row already,
       and an armed flight recorder is free until something dumps — the
       hook evaluation is the only recurring cost to measure. *)
    let alerts =
      Jstar_obs.Alerts.create
        [
          Jstar_obs.Alerts.rule ~for_:4 ~name:"puts"
            (Jstar_obs.Alerts.Threshold
               {
                 metric = "table.Row.puts";
                 cmp = Jstar_obs.Alerts.Gt;
                 value = 1e12;
               });
          Jstar_obs.Alerts.rule ~name:"delta"
            (Jstar_obs.Alerts.Rate
               {
                 metric = "delta.size";
                 cmp = Jstar_obs.Alerts.Gt;
                 value = 1e12;
               });
          Jstar_obs.Alerts.rule ~name:"gone"
            (Jstar_obs.Alerts.Absent { metric = "table.Row.puts" });
        ]
    in
    {
      base with
      Config.step_hook =
        Some (fun step m -> Jstar_obs.Alerts.eval alerts ~step m);
    }
  end

let configurations =
  [
    { label = "all-off"; batching = false; auto_grain = false; batch = false;
      profile = false; diag = false };
    { label = "put-batching"; batching = true; auto_grain = false;
      batch = false; profile = false; diag = false };
    { label = "auto-grain"; batching = false; auto_grain = true;
      batch = false; profile = false; diag = false };
    { label = "batch-fire"; batching = false; auto_grain = false;
      batch = true; profile = false; diag = false };
    { label = "all-on"; batching = true; auto_grain = true; batch = true;
      profile = false; diag = false };
    (* all-on plus the continuous profiler: the overhead row backing the
       "profiling is cheap enough to leave on" claim. *)
    { label = "profiler"; batching = true; auto_grain = true; batch = true;
      profile = true; diag = false };
    (* profiler plus per-barrier alert evaluation and an armed flight
       recorder: the "black box costs nothing you can measure" row. *)
    { label = "diagnostics"; batching = true; auto_grain = true; batch = true;
      profile = true; diag = true };
  ]

let rounds = 4

let run () =
  let reference = ref None in
  let tuples = ref 0 in
  let run_once k =
    let p, init = build () in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_program ~init p (config_of k) in
    let t = Unix.gettimeofday () -. t0 in
    (r, t)
  in
  (* Warmup pass, doubling as the cross-configuration determinism
     check: every knob combination must print the same lines — the
     whole point of keeping the wins Config-side. *)
  List.iter
    (fun k ->
      let r, _ = run_once k in
      tuples := r.Engine.tuples_processed;
      match !reference with
      | None -> reference := Some r.Engine.outputs
      | Some ref_out ->
          if ref_out <> r.Engine.outputs then
            failwith ("hotpath: outputs diverge under " ^ k.label))
    configurations;
  (* Timed rounds are interleaved across configurations (round-robin,
     best-of-N per configuration) so background load drift hits every
     configuration equally instead of whichever ran last. *)
  let best = Hashtbl.create 8 in
  for _ = 1 to rounds do
    List.iter
      (fun k ->
        let r, t = run_once k in
        (match Sys.getenv_opt "HOTPATH_DEBUG" with
        | Some _ ->
            Printf.printf
              "DEBUG %s: tuples=%d steps=%d dins=%d ddup=%d extract=%.3f \
               gamma=%.3f rules=%.3f t=%.3f\n%!"
              k.label r.Engine.tuples_processed r.Engine.steps
              r.Engine.delta_inserted r.Engine.delta_deduped
              r.Engine.phases.Engine.t_extract r.Engine.phases.Engine.t_gamma
              r.Engine.phases.Engine.t_rules t
        | None -> ());
        match Hashtbl.find_opt best k.label with
        | Some t' when t' <= t -> ()
        | _ -> Hashtbl.replace best k.label t)
      configurations
  done;
  let rows =
    List.map
      (fun k ->
        let t = Hashtbl.find best k.label in
        (k, t, float_of_int !tuples /. t))
      configurations
  in
  let t_of label =
    let _, t, _ = List.find (fun (k, _, _) -> k.label = label) rows in
    t
  in
  let ratio = t_of "all-off" /. t_of "all-on" in
  let profiler_overhead = (t_of "profiler" /. t_of "all-on") -. 1.0 in
  let diag_overhead = (t_of "diagnostics" /. t_of "profiler") -. 1.0 in
  Util.heading
    (Printf.sprintf "Hot-path ablation (%d rows, %d groups, 2 threads)"
       (rows_n ()) groups);
  Util.bar_chart
    ~title:"wall time per knob combination" ~unit:"s"
    (List.map (fun (k, t, _) -> (k.label, t)) rows);
  Util.note "all-on vs all-off: %.2fx throughput" ratio;
  Util.note "continuous profiler overhead vs all-on: %+.1f%%"
    (100.0 *. profiler_overhead);
  Util.note "alerts + recorder overhead vs profiler: %+.1f%%"
    (100.0 *. diag_overhead);
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf "  \"bench\": \"hotpath\",\n  \"meta\": %s,\n  \
                       \"rows\": %d,\n"
         (Util.meta_json ()) (rows_n ()));
    Buffer.add_string b
      (Printf.sprintf "  \"groups\": %d,\n  \"threads\": 2,\n" groups);
    Buffer.add_string b
      (Printf.sprintf "  \"speedup_all_on_vs_all_off\": %.4f,\n" ratio);
    Buffer.add_string b
      (Printf.sprintf "  \"profiler_overhead_vs_all_on\": %.4f,\n"
         profiler_overhead);
    Buffer.add_string b
      (Printf.sprintf "  \"diagnostics_overhead_vs_profiler\": %.4f,\n"
         diag_overhead);
    Buffer.add_string b "  \"configurations\": [\n";
    List.iteri
      (fun i (k, t, thr) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"label\": \"%s\", \"put_batching\": %b, \
              \"auto_grain\": %b, \"batch_fire\": %b, \"profile\": %b, \
              \"diagnostics\": %b, \"seconds\": %.6f, \
              \"tuples_per_second\": %.1f}%s\n"
             k.label k.batching k.auto_grain k.batch k.profile k.diag t thr
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_hotpath.json" in
  output_string oc json;
  close_out oc;
  Util.note "JSON written to BENCH_hotpath.json"
