(* Query acceleration: secondary indexes + memoized monoid aggregates
   ([Config.indexes] / [Config.agg_cache]) against the scan baseline,
   plus the advisor promoting the same index mid-run on its own.

   Shape: Data(g, i) sits in a Hash_index-2 Gamma — the store a put-
   heavy phase would pick, and one that cannot answer a length-1 prefix
   query without a full scan.  A chain of Probe(k) classes then hammers
   exactly those queries: each probe lists group [k mod G], counts it,
   and takes its memoized sum.  The baseline pays three O(N) scans per
   probe; with a declared length-1 index + aggregate cache the same
   probe costs one O(N/G) bucket walk and two O(1) lookups; the advisor
   configuration starts like the baseline and converges to the indexed
   cost after its warm-up review.

   Every configuration must print identical lines — acceleration may
   change only *how* queries iterate, never their results.  Reports
   wall time per configuration plus the indexed-vs-scan ratio, and
   writes BENCH_query.json (the `@query-smoke` alias runs this at quick
   scale inside `dune runtest`). *)

open Jstar_core

let groups = 64

let rows_n () =
  match !Util.scale with
  | Util.Quick -> 8_000
  | Util.Default -> 60_000
  | Util.Paper -> 240_000

let probes_n () =
  match !Util.scale with
  | Util.Quick -> 96
  | Util.Default -> 256
  | Util.Paper -> 512

let build () =
  let n = rows_n () and probes = probes_n () in
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "g"; int_col "i" ]
      ~orderby:Schema.[ Lit "Data" ]
      ()
  in
  let probe =
    Program.table p "Probe"
      ~columns:Schema.[ int_col "k" ]
      ~orderby:Schema.[ Lit "Probe"; Seq "k" ]
      ()
  in
  Program.order p [ "Data"; "Probe" ];
  let sum_memo =
    Query.memo data ~prefix_len:1 ~monoid:Reducer.int_sum ~f:(fun t ->
        Tuple.int t "i")
  in
  Program.rule p "probe" ~trigger:probe (fun ctx t ->
      let k = Tuple.int t "k" in
      let g = k mod groups in
      let prefix = [| Value.Int g |] in
      (* The three query shapes of a reporting rule: enumerate a group,
         count it, aggregate over it. *)
      let listed =
        Query.fold ctx data ~prefix ~init:0 ~f:(fun acc t ->
            acc lxor Tuple.int t "i")
          ()
      in
      let count = Query.count ctx data ~prefix () in
      let sum = Query.memo_reduce ctx sum_memo ~prefix () in
      ctx.Rule.println
        (Printf.sprintf "probe %d group %d xor %d count %d sum %d" k g listed
           count sum));
  let init =
    List.init n (fun i -> Tuple.make data [| Value.Int (i mod groups); Value.Int i |])
    @ List.init probes (fun k -> Tuple.make probe [| Value.Int k |])
  in
  (p, init)

type knobs = {
  label : string;
  declared : bool; (* Config.indexes = [("Data", [1])] *)
  cache : bool; (* Config.agg_cache *)
  adaptive : bool; (* Config.advisor, aggressive thresholds *)
}

let config_of k =
  {
    Config.default with
    Config.stores = [ ("Data", Store.Hash_index 2) ];
    indexes = (if k.declared then [ ("Data", [ 1 ]) ] else []);
    agg_cache = k.cache;
    advisor =
      (if k.adaptive then
         Some
           {
             Config.adv_warmup = 64;
             adv_min_queries = 32;
             adv_min_size = 256;
             adv_demote_windows = 4;
           }
       else None);
  }

let configurations =
  [
    { label = "scan"; declared = false; cache = false; adaptive = false };
    { label = "indexed"; declared = true; cache = false; adaptive = false };
    { label = "agg-cache"; declared = false; cache = true; adaptive = false };
    { label = "indexed+cache"; declared = true; cache = true; adaptive = false };
    { label = "advisor+cache"; declared = false; cache = true; adaptive = true };
  ]

let rounds = 3

let run () =
  let reference = ref None in
  let run_once k =
    let p, init = build () in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_program ~init p (config_of k) in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Warmup pass doubling as the same-outputs check across every
     acceleration combination. *)
  List.iter
    (fun k ->
      let r, _ = run_once k in
      match !reference with
      | None -> reference := Some r.Engine.outputs
      | Some ref_out ->
          if ref_out <> r.Engine.outputs then
            failwith ("query bench: outputs diverge under " ^ k.label))
    configurations;
  (* Interleaved best-of-N so load drift hits every configuration
     equally. *)
  let best = Hashtbl.create 8 in
  for _ = 1 to rounds do
    List.iter
      (fun k ->
        let _, t = run_once k in
        match Hashtbl.find_opt best k.label with
        | Some t' when t' <= t -> ()
        | _ -> Hashtbl.replace best k.label t)
      configurations
  done;
  let rows =
    List.map
      (fun k ->
        let t = Hashtbl.find best k.label in
        (k, t, float_of_int (probes_n ()) /. t))
      configurations
  in
  let t_of label =
    let _, t, _ = List.find (fun (k, _, _) -> k.label = label) rows in
    t
  in
  let speedup = t_of "scan" /. t_of "indexed+cache" in
  let adv_speedup = t_of "scan" /. t_of "advisor+cache" in
  Util.heading
    (Printf.sprintf "Query acceleration (%d rows, %d groups, %d probes)"
       (rows_n ()) groups (probes_n ()));
  Util.bar_chart ~title:"wall time per configuration" ~unit:"s"
    (List.map (fun (k, t, _) -> (k.label, t)) rows);
  Util.note "indexed+cache vs scan: %.2fx" speedup;
  Util.note "advisor+cache vs scan: %.2fx (index promoted mid-run)"
    adv_speedup;
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"bench\": \"query\",\n  \"meta\": %s,\n  \"rows\": %d,\n\
         \  \"groups\": %d,\n  \"probes\": %d,\n"
         (Util.meta_json ()) (rows_n ()) groups (probes_n ()));
    Buffer.add_string b
      (Printf.sprintf "  \"speedup_indexed_cache_vs_scan\": %.4f,\n" speedup);
    Buffer.add_string b
      (Printf.sprintf "  \"speedup_advisor_cache_vs_scan\": %.4f,\n"
         adv_speedup);
    Buffer.add_string b "  \"configurations\": [\n";
    List.iteri
      (fun i (k, t, qps) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"label\": \"%s\", \"declared_index\": %b, \
              \"agg_cache\": %b, \"advisor\": %b, \"seconds\": %.6f, \
              \"probes_per_second\": %.1f}%s\n"
             k.label k.declared k.cache k.adaptive t qps
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_query.json" in
  output_string oc json;
  close_out oc;
  Util.note "JSON written to BENCH_query.json"
