(* Durability cost: what the write-ahead log adds to a feed/drain
   session under each fsync policy, and how long recovery takes from
   (a) pure WAL replay and (b) a snapshot plus a short WAL suffix.

   The workload is the CLI's sensor-stream shape — small feed batches,
   one drain per tick, a cheap per-tuple rule — so the timings isolate
   the persistence layer (codec + CRC + write + fsync) rather than rule
   work.  Writes BENCH_persist.json. *)

open Jstar_core
open Jstar_persist

let ticks () =
  match !Util.scale with
  | Util.Quick -> 300
  | Util.Default -> 1_500
  | Util.Paper -> 8_000

let sensors = 16
let config = { Config.default with Config.digest = true }

let build () =
  let p = Program.create () in
  let reading =
    Program.table p "Reading"
      ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Reading"; Seq "t" ]
      ()
  in
  let alarm =
    Program.table p "Alarm"
      ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Alarm"; Seq "t" ]
      ()
  in
  Program.order p [ "Reading"; "Alarm" ];
  Program.rule p "alarm" ~trigger:reading (fun ctx r ->
      if Tuple.int r "value" >= 90 then
        ctx.Rule.put
          (Tuple.make alarm [| Tuple.get r 0; Tuple.get r 1; Tuple.get r 2 |]));
  Program.output p alarm (fun t ->
      Printf.sprintf "alarm %d %d %d" (Tuple.int t "t") (Tuple.int t "sensor")
        (Tuple.int t "value"));
  (p, reading)

let batch reading t =
  List.init sensors (fun s ->
      Tuple.make reading
        [| Value.Int t; Value.Int s; Value.Int (((t * 31) + (s * 17)) mod 100) |])

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* One full session through the plain engine: the baseline. *)
let run_plain n =
  let p, reading = build () in
  let t0 = Unix.gettimeofday () in
  let s = Engine.start (Program.freeze p) config in
  for t = 0 to n - 1 do
    Engine.feed s (batch reading t);
    ignore (Engine.drain s)
  done;
  let r = Engine.finish s in
  (r, Unix.gettimeofday () -. t0)

(* The same schedule through Durable; the directory is left behind so
   recovery can be timed against it. *)
let run_durable ?(checkpoint_every = 0) ~fsync n dir =
  rm_rf dir;
  let p, reading = build () in
  let t0 = Unix.gettimeofday () in
  let d, _ = Durable.open_ ~checkpoint_every ~fsync ~dir (Program.freeze p) config in
  for t = 0 to n - 1 do
    Durable.feed d (batch reading t);
    ignore (Durable.drain d)
  done;
  let r = Durable.finish d in
  (r, Unix.gettimeofday () -. t0)

let time_recovery dir =
  let p, _ = build () in
  let t0 = Unix.gettimeofday () in
  let d, status = Durable.open_ ~dir (Program.freeze p) config in
  let dt = Unix.gettimeofday () -. t0 in
  let feeds, drains =
    match status with
    | Durable.Restored r -> (r.Durable.r_feeds, r.Durable.r_drains)
    | Durable.Fresh -> failwith "persist bench: nothing to recover"
  in
  ignore (Durable.finish d);
  (dt, feeds, drains)

type policy = { label : string; fsync : Wal.fsync_policy }

let policies =
  [
    { label = "fsync-never"; fsync = Wal.Never };
    { label = "fsync-every-64"; fsync = Wal.Every 64 };
    { label = "fsync-always"; fsync = Wal.Always };
  ]

let rounds = 3

let run () =
  let n = ticks () in
  let tuples = n * sensors in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jstar-bench-persist-%d" (Unix.getpid ()))
  in
  rm_rf root;
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let digest3 r =
    match r.Engine.digest with
    | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_outputs)
    | None -> failwith "persist bench: digest missing"
  in
  (* Warmup doubling as the invariance check: the WAL must not change
     what the program computes or prints. *)
  let base_r, _ = run_plain n in
  List.iter
    (fun pol ->
      let r, _ =
        run_durable ~fsync:pol.fsync n (Filename.concat root pol.label)
      in
      if digest3 r <> digest3 base_r then
        failwith ("persist bench: digests diverge under " ^ pol.label))
    policies;
  (* Interleaved rounds, best-of-N (as in Hotpath). *)
  let best = Hashtbl.create 8 in
  let note label t =
    match Hashtbl.find_opt best label with
    | Some t' when t' <= t -> ()
    | _ -> Hashtbl.replace best label t
  in
  for _ = 1 to rounds do
    let _, t = run_plain n in
    note "baseline" t;
    List.iter
      (fun pol ->
        let _, t =
          run_durable ~fsync:pol.fsync n (Filename.concat root pol.label)
        in
        note pol.label t)
      policies
  done;
  let t_base = Hashtbl.find best "baseline" in
  let rows =
    List.map
      (fun pol ->
        let t = Hashtbl.find best pol.label in
        let over = (t -. t_base) /. float_of_int tuples *. 1e6 in
        (pol, t, over))
      policies
  in
  (* Recovery: replay the fsync-every-64 directory (whole history in
     the WAL), then a checkpointed directory (snapshot + short WAL
     suffix — the last tenth of the schedule). *)
  let wal_dir = Filename.concat root "fsync-every-64" in
  let rec_wal, wal_feeds, wal_drains = time_recovery wal_dir in
  let ck_dir = Filename.concat root "checkpointed" in
  (* +1 keeps the interval off n's divisors, so a genuine WAL suffix
     survives past the last checkpoint. *)
  let every = max 2 ((n / 10) + 1) in
  ignore (run_durable ~checkpoint_every:every ~fsync:(Wal.Every 64) n ck_dir);
  let rec_ck, ck_feeds, ck_drains = time_recovery ck_dir in
  Util.heading
    (Printf.sprintf "Durability cost (%d ticks x %d readings = %d tuples)" n
       sensors tuples);
  Util.bar_chart ~title:"session wall time per fsync policy" ~unit:"s"
    (("baseline", t_base)
    :: List.map (fun (pol, t, _) -> (pol.label, t)) rows);
  List.iter
    (fun (pol, t, over) ->
      Util.note "%s: %+.1f%% vs baseline, %.2f us/tuple WAL overhead"
        pol.label
        ((t /. t_base -. 1.0) *. 100.0)
        over)
    rows;
  Util.note "recovery, WAL replay: %.3fs (%d feeds, %d drains)" rec_wal
    wal_feeds wal_drains;
  Util.note
    "recovery, snapshot + suffix (checkpoint every %d drains): %.3fs (%d \
     feeds, %d drains replayed)"
    every rec_ck ck_feeds ck_drains;
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"bench\": \"persist\",\n  \"meta\": %s,\n  \"ticks\": %d,\n\
         \  \"batch\": %d,\n  \"tuples\": %d,\n\
         \  \"baseline_seconds\": %.6f,\n"
         (Util.meta_json ()) n sensors tuples t_base);
    Buffer.add_string b "  \"policies\": [\n";
    List.iteri
      (fun i (pol, t, over) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"label\": \"%s\", \"seconds\": %.6f, \"overhead_pct\": \
              %.2f, \"wal_us_per_tuple\": %.3f}%s\n"
             pol.label t
             ((t /. t_base -. 1.0) *. 100.0)
             over
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ],\n  \"recovery\": [\n";
    Buffer.add_string b
      (Printf.sprintf
         "    {\"label\": \"wal-replay\", \"seconds\": %.6f, \"feeds\": %d, \
          \"drains\": %d},\n"
         rec_wal wal_feeds wal_drains);
    Buffer.add_string b
      (Printf.sprintf
         "    {\"label\": \"snapshot\", \"checkpoint_every\": %d, \
          \"seconds\": %.6f, \"feeds\": %d, \"drains\": %d}\n"
         every rec_ck ck_feeds ck_drains);
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_persist.json" in
  output_string oc json;
  close_out oc;
  rm_rf root;
  Util.note "JSON written to BENCH_persist.json"
