(* jstar-serve saturation: a real server on a loopback socket, a grid
   of concurrent sessions and connections feeding the sensor stream
   through the binary protocol, measured as end-to-end tuples/s — the
   price of serving (framing, CRC, socket hops, mailbox handoff, WAL)
   over the engine alone.

   Three honesty checks ride along:
   - digest parity: every single-writer session must finish with
     exactly the digests of a standalone durable session fed the same
     schedule — the server adds transport, never semantics;
   - branch + merge: a forked session fed a suffix and merged back
     must land on the standalone oracle's digest for the whole stream;
   - backpressure: a deliberately slow consumer must cap its backlog
     at the feed quota (asserted from the server's metrics registry,
     peak_backlog <= quota and flow_pauses >= 1) rather than buffer
     without bound.

   Writes BENCH_serve.json. *)

open Jstar_core
module Serve = Jstar_serve

let ticks () =
  match !Util.scale with
  | Util.Quick -> 150
  | Util.Default -> 600
  | Util.Paper -> 2_000

let sensors = 16
let drain_every = 10

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

type fingerprint = { gamma : string; outputs : int; out_lanes : int * int }

let fingerprint_of (d : Serve.Protocol.digest_info) =
  {
    gamma = d.Serve.Protocol.d_gamma;
    outputs = d.d_outputs;
    out_lanes = d.d_out_lanes;
  }

(* The standalone oracle: one durable session on this process's heap,
   no server, fed the same schedule. *)
let oracle frozen root ~from ~ticks =
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let dir = Filename.concat root "oracle" in
  rm_rf dir;
  let d, _ =
    Jstar_persist.Durable.open_ ~fsync:Jstar_persist.Wal.Never ~dir frozen
      Config.default
  in
  for t = from to from + ticks - 1 do
    Jstar_persist.Durable.feed d (Serve.Demo.batch frozen ~sensors ~t);
    if (t - from + 1) mod drain_every = 0 then
      ignore (Jstar_persist.Durable.drain d)
  done;
  ignore (Jstar_persist.Durable.drain d);
  let session = Jstar_persist.Durable.session d in
  let st = Engine.session_state ~with_outputs:false session in
  let fp =
    {
      gamma = Engine.gamma_digest session;
      outputs = st.Engine.ss_outputs_count;
      out_lanes = Jstar_persist.Durable.output_lanes d;
    }
  in
  ignore (Jstar_persist.Durable.finish d);
  rm_rf dir;
  fp

(* One client thread: feed [ticks] timesteps into [session], draining
   on the oracle's rhythm; returns the final digest fingerprint. *)
let client_run frozen ~port ~session ~from ~ticks =
  let c = Serve.Client.connect ~port frozen in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      ignore (Serve.Client.open_session c session);
      for t = from to from + ticks - 1 do
        ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors ~t));
        if (t - from + 1) mod drain_every = 0 then
          ignore (Serve.Client.drain c)
      done;
      ignore (Serve.Client.drain c);
      fingerprint_of (Serve.Client.digest c))

let start_server ?(feed_quota = 32768) frozen root =
  rm_rf root;
  Serve.Server.start
    {
      (Serve.Server.default_config ~root) with
      Serve.Server.feed_quota;
      idle_timeout = 0.0;
      fsync = Jstar_persist.Wal.Never;
    }
    frozen

(* -- the saturation grid ------------------------------------------------ *)

type cell = {
  c_sessions : int;
  c_conns : int;  (** connections per session *)
  c_tuples : int;
  c_seconds : float;
  c_rate : float;  (** tuples/s end to end *)
  c_parity : bool;  (** digests checked against the standalone oracle *)
}

(* Run every job on its own thread; collect results in order. *)
let concurrently jobs =
  let results = Array.make (List.length jobs) None in
  let threads =
    List.mapi
      (fun i job -> Thread.create (fun () -> results.(i) <- Some (job ())) ())
      jobs
  in
  List.iter Thread.join threads;
  Array.to_list results |> List.map Option.get

(* [sessions] single-writer sessions fed concurrently, or one session
   fed by [conns] connections on disjoint tick ranges (throughput only
   — interleaving across connections is scheduler-chosen, so there is
   no single-session oracle to compare against). *)
let run_cell frozen root ~sessions ~conns ~oracle_fp =
  let n = ticks () in
  let server = start_server frozen root in
  let port = Serve.Server.port server in
  let t0 = Unix.gettimeofday () in
  let results =
    if conns = 1 then
      concurrently
        (List.init sessions (fun i () ->
             client_run frozen ~port
               ~session:(Printf.sprintf "bench/s%d" i)
               ~from:0 ~ticks:n))
    else
      let per = n / conns in
      concurrently
        (List.init conns (fun i () ->
             client_run frozen ~port ~session:"bench/shared" ~from:(i * per)
               ~ticks:per))
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let parity =
    conns = 1 && List.for_all (fun fp -> fp = oracle_fp) results
  in
  if conns = 1 && not parity then
    failwith "serve bench: session digest diverged from the standalone oracle";
  Serve.Server.stop server;
  rm_rf root;
  let tuples = sessions * (conns * (n / conns)) * (sensors + 1) in
  {
    c_sessions = sessions;
    c_conns = conns;
    c_tuples = tuples;
    c_seconds = seconds;
    c_rate = float_of_int tuples /. seconds;
    c_parity = parity;
  }

(* -- branch + merge vs oracle ------------------------------------------- *)

let run_branch_merge frozen root =
  let n = ticks () in
  let half = n / 2 in
  let server = start_server frozen root in
  let port = Serve.Server.port server in
  let c = Serve.Client.connect ~port frozen in
  ignore (Serve.Client.open_session c "bm/main");
  for t = 0 to half - 1 do
    ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors ~t));
    if (t + 1) mod drain_every = 0 then ignore (Serve.Client.drain c)
  done;
  ignore (Serve.Client.drain c);
  ignore (Serve.Client.branch c "bm/side");
  (* feed the suffix into the branch, then merge it back *)
  let c2 = Serve.Client.connect ~port frozen in
  ignore (Serve.Client.open_session c2 "bm/side");
  for t = half to n - 1 do
    ignore (Serve.Client.feed c2 (Serve.Demo.batch frozen ~sensors ~t));
    if (t - half + 1) mod drain_every = 0 then ignore (Serve.Client.drain c2)
  done;
  ignore (Serve.Client.drain c2);
  Serve.Client.close c2;
  ignore (Serve.Client.merge c ~from:"bm/side");
  let merged = fingerprint_of (Serve.Client.digest c) in
  Serve.Client.close c;
  Serve.Server.stop server;
  let want = oracle frozen root ~from:0 ~ticks:n in
  rm_rf root;
  if merged <> want then
    failwith "serve bench: branch+merge diverged from the standalone oracle";
  true

(* -- backpressure -------------------------------------------------------- *)

(* A program whose rule is deliberately slow (0.5 ms per reading), so
   the session worker provably lags a loopback feeder and the quota
   must engage.  The assertions read the server's own metrics registry
   — the same lanes /metrics exports. *)
let slow_program () =
  let p = Program.create () in
  let reading =
    Program.table p "Reading"
      ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Reading"; Seq "t" ]
      ()
  in
  Program.order p [ "Reading" ];
  Program.rule p "slow" ~trigger:reading (fun _ _ -> Unix.sleepf 0.0005);
  Program.freeze p

let run_backpressure root =
  let frozen = slow_program () in
  let quota = 64 in
  let server = start_server ~feed_quota:quota frozen root in
  let port = Serve.Server.port server in
  let reading = frozen.Program.tables.(0) in
  let batch t =
    List.init 16 (fun s ->
        Tuple.make reading [| Value.Int t; Value.Int s; Value.Int 0 |])
  in
  (* Connection A loads 800 slow tuples and drains them: the session
     worker is now provably busy for ~0.4 s (0.5 ms x 800). *)
  let c = Serve.Client.connect ~port frozen in
  ignore (Serve.Client.open_session c "bp/main");
  for t = 0 to 49 do
    ignore (Serve.Client.feed c (batch t))
  done;
  let drainer = Thread.create (fun () -> ignore (Serve.Client.drain c)) () in
  Thread.delay 0.05;
  (* Connection B feeds the same session behind the running drain; its
     batches queue against a stalled worker, so the quota must engage
     within a few round trips. *)
  let c2 = Serve.Client.connect ~port frozen in
  ignore (Serve.Client.open_session c2 "bp/main");
  let fed = ref 0 in
  (try
     for t = 50 to 149 do
       ignore (Serve.Client.feed c2 (batch t));
       incr fed;
       if Serve.Client.pauses c2 > 0 then raise Exit
     done
   with Exit -> ());
  Thread.join drainer;
  ignore (Serve.Client.drain c2);
  let metrics = Serve.Server.metrics server in
  let read name =
    match Jstar_obs.Metrics.read metrics name with
    | Some v -> int_of_float v
    | None -> failwith ("serve bench: metric missing: " ^ name)
  in
  let peak = read "serve.peak_backlog" in
  let pauses = read "serve.flow_pauses" in
  let client_pauses = Serve.Client.pauses c2 in
  Serve.Client.close c2;
  Serve.Client.close c;
  Serve.Server.stop server;
  rm_rf root;
  if peak > quota then
    failwith
      (Printf.sprintf
         "serve bench: backlog exceeded the quota (peak %d > %d)" peak quota);
  if pauses < 1 then
    failwith "serve bench: slow consumer never triggered a Flow pause";
  (quota, peak, pauses, client_pauses)

(* -- driver -------------------------------------------------------------- *)

let grid () =
  match !Util.scale with
  | Util.Quick -> [ (1, 1); (2, 1); (4, 1); (1, 2) ]
  | Util.Default | Util.Paper ->
      [ (1, 1); (2, 1); (4, 1); (8, 1); (1, 2); (1, 4) ]

let run () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jstar-bench-serve-%d" (Unix.getpid ()))
  in
  let frozen = Serve.Demo.sensor_program () in
  let n = ticks () in
  let oracle_fp = oracle frozen root ~from:0 ~ticks:n in
  let cells =
    List.map
      (fun (sessions, conns) ->
        run_cell frozen root ~sessions ~conns ~oracle_fp)
      (grid ())
  in
  let bm_ok = run_branch_merge frozen root in
  let bp_quota, bp_peak, bp_pauses, bp_client_pauses = run_backpressure root in
  Util.heading
    (Printf.sprintf
       "jstar-serve saturation (%d ticks x %d readings per session, drain \
        every %d)"
       n sensors drain_every);
  List.iter
    (fun c ->
      Util.note
        "%d session(s) x %d conn(s): %d tuples in %.3fs = %.0f tuples/s%s"
        c.c_sessions c.c_conns c.c_tuples c.c_seconds c.c_rate
        (if c.c_parity then " [digests = oracle]" else ""))
    cells;
  Util.note "branch + merge reproduces the standalone oracle digest: %b" bm_ok;
  Util.note
    "backpressure: peak backlog %d <= quota %d, %d server pauses (%d seen by \
     client)"
    bp_peak bp_quota bp_pauses bp_client_pauses;
  let json =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\n  \"bench\": \"serve\",\n  \"meta\": %s,\n  \"ticks\": %d,\n\
         \  \"sensors\": %d,\n  \"drain_every\": %d,\n  \"grid\": [\n"
         (Util.meta_json ()) n sensors drain_every);
    List.iteri
      (fun i c ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"sessions\": %d, \"connections\": %d, \"tuples\": %d, \
              \"seconds\": %.6f, \"tuples_per_s\": %.0f, \"oracle_parity\": \
              %s}%s\n"
             c.c_sessions c.c_conns c.c_tuples c.c_seconds c.c_rate
             (* multi-connection cells have no single-session oracle:
                null, not false *)
             (if c.c_conns = 1 then string_of_bool c.c_parity else "null")
             (if i = List.length cells - 1 then "" else ",")))
      cells;
    let best_rate =
      List.fold_left (fun acc c -> Float.max acc c.c_rate) 0.0 cells
    in
    Buffer.add_string b
      (Printf.sprintf
         "  ],\n  \"tuples_per_s_best\": %.0f,\n\
         \  \"branch_merge_oracle_parity\": %b,\n\
         \  \"backpressure\": {\"quota\": %d, \"peak_backlog\": %d, \
          \"flow_pauses\": %d}\n}\n"
         best_rate bm_ok bp_quota bp_peak bp_pauses);
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Util.note "JSON written to BENCH_serve.json"
