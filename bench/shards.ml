(* Shared-nothing sharded execution on a put-heavy scatter workload:
   breadth-first waves where every firing puts [fanout] tuples whose
   mixed hashes land on arbitrary shards — the contention shape
   sharding targets.  There are no joins and no aggregates, so the
   run prices exactly what the mode changes: put routing, mailbox
   post/drain, and the per-shard Delta against the striped shared
   Delta.

   Graph: [seeds] roots, each firing derives [fanout] children by a
   multiplicative hash into a [universe]-sized id space for [rounds]
   waves; collisions make later waves duplicate-heavy, pricing the
   dedup path on both sides.  All tuples share one literal timestamp,
   so each wave is one wide class.

   Runs the full shards x threads grid, asserts the determinism
   digests are byte-identical on every point (the acceptance gate for
   the mode), reports wall times and the cross-shard message counters
   from /metrics, and writes BENCH_shards.json. *)

open Jstar_core

let rounds = 6

let params () =
  match !Util.scale with
  | Util.Quick -> (64, 4, 20_000) (* seeds, fanout, universe *)
  | Util.Default | Util.Paper -> (128, 8, 100_000)

let shard_counts = [ 0; 1; 2; 4; 8 ]

let build () =
  let seeds, fanout, universe = params () in
  let p = Program.create () in
  let node =
    Program.table p "Node"
      ~columns:Schema.[ int_col "x"; int_col "r" ]
      ~orderby:Schema.[ Lit "Node" ]
      ()
  in
  Program.order p [ "Node" ];
  Program.rule p "scatter" ~trigger:node (fun ctx t ->
      let x = Tuple.get t 0 |> Value.to_int
      and r = Tuple.get t 1 |> Value.to_int in
      if r < rounds then
        for j = 0 to fanout - 1 do
          (* multiplicative mix: children of one trigger spread across
             the id space (and therefore across shard owners) *)
          let y = abs ((x * 1103515245) + (j * 2654435761) + 12345) mod universe in
          ctx.Rule.put (Tuple.make node [| Value.Int y; Value.Int (r + 1) |])
        done);
  let init =
    List.init seeds (fun i ->
        Tuple.make node [| Value.Int (i * (universe / seeds)); Value.Int 0 |])
  in
  (p, init)

let config_of ~shards ~threads =
  let base =
    if threads = 1 then Config.default else Config.parallel ~threads ()
  in
  {
    base with
    Config.shards;
    batch_fire = true;
    put_batching = true;
    agg_cache = false;
    advisor = None;
    digest = true;
  }

let counter_of metrics name =
  List.fold_left
    (fun acc row ->
      if row.Jstar_obs.Metrics.name = name then
        List.fold_left
          (fun a (_, v) ->
            match v with
            | Jstar_obs.Metrics.Int n -> a + n
            | Jstar_obs.Metrics.Float f -> a + int_of_float f)
          acc row.Jstar_obs.Metrics.fields
      else acc)
    0
    (Jstar_obs.Metrics.snapshot metrics)

type point = {
  pt_shards : int;
  pt_threads : int;
  pt_seconds : float;
  pt_tuples : int;
  pt_msgs_posted : int;
  pt_msgs_cross : int;
  pt_tuples_shipped : int;
  pt_tuples_cross : int;
}

let digest3 r =
  match r.Engine.digest with
  | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_tables)
  | None -> failwith "shards: digest missing"

let run () =
  let seeds, fanout, universe = params () in
  Util.heading
    (Printf.sprintf
       "Sharded execution: scatter waves, %d seeds x %d fanout x %d rounds \
        (universe %d)"
       seeds fanout rounds universe);
  let reference = ref None in
  let run_point ~shards ~threads =
    let p, init = build () in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_program ~init p (config_of ~shards ~threads) in
    let t = Unix.gettimeofday () -. t0 in
    (* the acceptance gate: every grid point must reproduce the
       unsharded single-thread digests bit-for-bit *)
    (match !reference with
    | None -> reference := Some (digest3 r)
    | Some d ->
        if digest3 r <> d then
          failwith
            (Printf.sprintf
               "shards: digests diverge at shards=%d threads=%d" shards
               threads));
    {
      pt_shards = shards;
      pt_threads = threads;
      pt_seconds = t;
      pt_tuples = r.Engine.tuples_processed;
      pt_msgs_posted = counter_of r.Engine.metrics "shard.msgs_posted";
      pt_msgs_cross = counter_of r.Engine.metrics "shard.msgs_cross";
      pt_tuples_shipped = counter_of r.Engine.metrics "shard.tuples_shipped";
      pt_tuples_cross = counter_of r.Engine.metrics "shard.tuples_cross";
    }
  in
  let grid =
    List.concat_map
      (fun threads ->
        List.map (fun shards -> run_point ~shards ~threads) shard_counts)
      Util.thread_counts
  in
  Util.note "digests identical across all %d grid points"
    (List.length grid);
  List.iter
    (fun pt ->
      Util.note
        "shards=%d threads=%d: %.3fs (%d tuples, %d msgs posted, %d cross, \
         %d tuples shipped, %d cross)"
        pt.pt_shards pt.pt_threads pt.pt_seconds pt.pt_tuples
        pt.pt_msgs_posted pt.pt_msgs_cross pt.pt_tuples_shipped
        pt.pt_tuples_cross)
    grid;
  (* headline: best sharded vs unsharded at the widest thread count *)
  let widest = List.fold_left max 1 Util.thread_counts in
  let at_widest = List.filter (fun pt -> pt.pt_threads = widest) grid in
  let unsharded =
    List.find (fun pt -> pt.pt_shards = 0) at_widest
  in
  let best_sharded =
    List.fold_left
      (fun acc pt ->
        if pt.pt_shards > 0 && pt.pt_seconds < acc.pt_seconds then pt else acc)
      (List.find (fun pt -> pt.pt_shards > 0) at_widest)
      at_widest
  in
  let ratio = unsharded.pt_seconds /. best_sharded.pt_seconds in
  Util.bar_chart ~title:"wall time at widest thread count" ~unit:"s"
    [
      ("unsharded", unsharded.pt_seconds);
      ( Printf.sprintf "%d shards" best_sharded.pt_shards,
        best_sharded.pt_seconds );
    ];
  Util.note "best sharded vs unsharded at %d threads: %.2fx" widest ratio;
  let json =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"bench\": \"shards\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"meta\": %s,\n" (Util.meta_json ()));
    Buffer.add_string b
      (Printf.sprintf
         "  \"seeds\": %d,\n  \"fanout\": %d,\n  \"rounds\": %d,\n\
         \  \"universe\": %d,\n"
         seeds fanout rounds universe);
    Buffer.add_string b "  \"digests_identical\": true,\n";
    Buffer.add_string b "  \"grid\": [\n";
    List.iteri
      (fun i pt ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"shards\": %d, \"threads\": %d, \"seconds\": %.6f, \
              \"tuples\": %d, \"msgs_posted\": %d, \"msgs_cross\": %d, \
              \"tuples_shipped\": %d, \"tuples_cross\": %d}%s\n"
             pt.pt_shards pt.pt_threads pt.pt_seconds pt.pt_tuples
             pt.pt_msgs_posted pt.pt_msgs_cross pt.pt_tuples_shipped
             pt.pt_tuples_cross
             (if i = List.length grid - 1 then "" else ",")))
      grid;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      (Printf.sprintf "  \"widest_threads\": %d,\n" widest);
    Buffer.add_string b
      (Printf.sprintf "  \"unsharded_seconds\": %.6f,\n"
         unsharded.pt_seconds);
    Buffer.add_string b
      (Printf.sprintf "  \"best_sharded_shards\": %d,\n"
         best_sharded.pt_shards);
    Buffer.add_string b
      (Printf.sprintf "  \"best_sharded_seconds\": %.6f,\n"
         best_sharded.pt_seconds);
    Buffer.add_string b
      (Printf.sprintf "  \"speedup_sharded_vs_unsharded\": %.4f\n" ratio);
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_shards.json" in
  output_string oc json;
  close_out oc;
  Util.note "JSON written to BENCH_shards.json"
