(* Provenance-cost ablation: what lineage capture
   ([Config.provenance]), the causality-law auditor
   ([Config.audit_causality]) and the determinism digests
   ([Config.digest]) cost on the put-dominated synthetic pipeline of
   {!Hotpath} — the workload where their per-put/per-visit hooks are
   the largest fraction of total work, so these numbers are upper
   bounds for the example programs.

   Reports wall time per knob combination plus the lineage volume
   (tuples tracked, candidate records merged), and writes
   BENCH_provcost.json. *)

open Jstar_core

type knobs = {
  label : string;
  provenance : bool;
  optout : bool;  (* hot rules built with [Rule.make ~provenance:false] *)
  audit : bool;
  digest : bool;
}

let configurations =
  [
    { label = "all-off"; provenance = false; optout = false; audit = false;
      digest = false };
    { label = "provenance"; provenance = true; optout = false; audit = false;
      digest = false };
    (* Global capture on, but the two hot rules opt out per-rule: what
       the escape hatch buys back on a workload where they produce
       everything. *)
    { label = "prov-optout"; provenance = true; optout = true; audit = false;
      digest = false };
    { label = "audit"; provenance = false; optout = false; audit = true;
      digest = false };
    { label = "digest"; provenance = false; optout = false; audit = false;
      digest = true };
    { label = "all-on"; provenance = true; optout = false; audit = true;
      digest = true };
  ]

let config_of k =
  {
    (Config.parallel ~threads:2 ()) with
    Config.stores = [ ("Row", Store.Hash_index 1) ];
    provenance = k.provenance;
    audit_causality = k.audit;
    digest = k.digest;
  }

let rounds = 4

let run () =
  let volume = Hashtbl.create 8 in
  let run_once k =
    let p, init = Hotpath.build ~prov_optout:k.optout () in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_program ~init p (config_of k) in
    let t = Unix.gettimeofday () -. t0 in
    (match r.Engine.lineage with
    | Some l ->
        Hashtbl.replace volume k.label
          (Lineage.tuples_tracked l, Lineage.records_merged l)
    | None -> ());
    (r, t)
  in
  (* Warmup doubling as the invariance check: observability knobs must
     not change what the program prints. *)
  let reference = ref None in
  List.iter
    (fun k ->
      let r, _ = run_once k in
      match !reference with
      | None -> reference := Some r.Engine.outputs
      | Some ref_out ->
          if ref_out <> r.Engine.outputs then
            failwith ("provcost: outputs diverge under " ^ k.label))
    configurations;
  (* Interleaved rounds, best-of-N per configuration (as in Hotpath). *)
  let best = Hashtbl.create 8 in
  for _ = 1 to rounds do
    List.iter
      (fun k ->
        let _, t = run_once k in
        match Hashtbl.find_opt best k.label with
        | Some t' when t' <= t -> ()
        | _ -> Hashtbl.replace best k.label t)
      configurations
  done;
  let rows =
    List.map (fun k -> (k, Hashtbl.find best k.label)) configurations
  in
  let t_of label = List.assoc label (List.map (fun (k, t) -> (k.label, t)) rows) in
  let overhead label = (t_of label /. t_of "all-off" -. 1.0) *. 100.0 in
  Util.heading
    (Printf.sprintf "Provenance/audit/digest cost (%d rows, 2 threads)"
       (Hotpath.rows_n ()));
  Util.bar_chart ~title:"wall time per knob combination" ~unit:"s"
    (List.map (fun (k, t) -> (k.label, t)) rows);
  Util.note
    "overheads vs all-off: provenance %+.1f%%, prov-optout %+.1f%%, audit \
     %+.1f%%, digest %+.1f%%, all-on %+.1f%%"
    (overhead "provenance") (overhead "prov-optout") (overhead "audit")
    (overhead "digest") (overhead "all-on");
  let vol label =
    match Hashtbl.find_opt volume label with Some v -> v | None -> (0, 0)
  in
  let tracked, merged = vol "provenance" in
  let ot, om = vol "prov-optout" in
  Util.note
    "lineage volume: %d tuples tracked, %d candidate records merged \
     (prov-optout: %d tracked, %d merged)"
    tracked merged ot om;
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"bench\": \"provcost\",\n  \"meta\": %s,\n  \"rows\": %d,\n\
         \  \"threads\": 2,\n"
         (Util.meta_json ()) (Hotpath.rows_n ()));
    Buffer.add_string b
      (Printf.sprintf
         "  \"lineage_tuples\": %d,\n  \"lineage_records\": %d,\n\
         \  \"lineage_tuples_optout\": %d,\n  \"lineage_records_optout\": %d,\n"
         tracked merged ot om);
    Buffer.add_string b "  \"configurations\": [\n";
    List.iteri
      (fun i (k, t) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"label\": \"%s\", \"provenance\": %b, \
              \"prov_optout\": %b, \"audit\": %b, \"digest\": %b, \
              \"seconds\": %.6f, \"overhead_pct\": %.2f}%s\n"
             k.label k.provenance k.optout k.audit k.digest t
             (overhead k.label)
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  print_string json;
  let oc = open_out "BENCH_provcost.json" in
  output_string oc json;
  close_out oc
