(* Tests for the Disruptor substrate: sequences, the ring buffer
   claim/publish protocol, wait strategies, and the single-producer /
   multi-consumer harness (every consumer sees every event; sentinel
   shutdown; gating prevents overwrites). *)

module Sequence = Jstar_disruptor.Sequence
module Wait_strategy = Jstar_disruptor.Wait_strategy
module Ring_buffer = Jstar_disruptor.Ring_buffer
module Disruptor = Jstar_disruptor.Disruptor

type event = { mutable value : int; mutable sentinel : bool }

let fresh_event () = { value = 0; sentinel = false }

(* ------------------------------------------------------------------ *)
(* Sequence *)

let test_sequence_basics () =
  let s = Sequence.create () in
  Alcotest.(check int) "initial" (-1) (Sequence.get s);
  Sequence.set s 5;
  Alcotest.(check int) "set" 5 (Sequence.get s);
  Alcotest.(check int) "incr" 6 (Sequence.incr s)

let test_sequence_minimum () =
  let a = Sequence.create ~value:3 () and bq = Sequence.create ~value:7 () in
  Alcotest.(check int) "min" 3 (Sequence.minimum [ a; bq ]);
  Alcotest.(check int) "empty" max_int (Sequence.minimum [])

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let test_ring_requires_pow2 () =
  match Ring_buffer.create ~size:100 ~init:fresh_event () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two size accepted"

let test_ring_claim_publish () =
  let ring = Ring_buffer.create ~size:8 ~init:fresh_event () in
  let consumer = Sequence.create () in
  Ring_buffer.add_gating_sequence ring consumer;
  let hi = Ring_buffer.next ring 3 in
  Alcotest.(check int) "claims 0..2" 2 hi;
  for s = 0 to hi do
    (Ring_buffer.get ring s).value <- s * 10
  done;
  Alcotest.(check int) "unpublished" (-1) (Ring_buffer.cursor_value ring);
  Ring_buffer.publish ring hi;
  Alcotest.(check int) "published" 2 (Ring_buffer.cursor_value ring);
  Alcotest.(check int) "slot readback" 20 (Ring_buffer.get ring 2).value

let test_ring_single_consumer_fifo () =
  let ring =
    Ring_buffer.create ~wait:Wait_strategy.Yielding ~size:16 ~init:fresh_event ()
  in
  let own = Sequence.create () in
  Ring_buffer.add_gating_sequence ring own;
  let n = 10_000 in
  let seen = ref [] in
  let consumer =
    Domain.spawn (fun () ->
        Ring_buffer.consume ring own (fun ev _ _ ->
            if ev.sentinel then false
            else begin
              seen := ev.value :: !seen;
              true
            end))
  in
  for i = 0 to n - 1 do
    let hi = Ring_buffer.next ring 1 in
    (Ring_buffer.get ring hi).value <- i;
    (Ring_buffer.get ring hi).sentinel <- false;
    Ring_buffer.publish ring hi
  done;
  let hi = Ring_buffer.next ring 1 in
  (Ring_buffer.get ring hi).sentinel <- true;
  Ring_buffer.publish ring hi;
  Domain.join consumer;
  Alcotest.(check int) "all consumed" n (List.length !seen);
  Alcotest.(check bool) "in order" true (List.rev !seen = List.init n Fun.id)

let test_ring_gating_blocks_overwrite () =
  (* With a tiny ring and a slow consumer, the producer must not lap it:
     verified by checking every value arrives intact. *)
  let ring =
    Ring_buffer.create ~wait:Wait_strategy.Busy_spin ~size:4 ~init:fresh_event ()
  in
  let own = Sequence.create () in
  Ring_buffer.add_gating_sequence ring own;
  let n = 2_000 in
  let sum = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        Ring_buffer.consume ring own (fun ev _ _ ->
            if ev.sentinel then false
            else begin
              sum := !sum + ev.value;
              (* artificially slow consumer *)
              if ev.value mod 64 = 0 then Unix.sleepf 1e-4;
              true
            end))
  in
  for i = 1 to n do
    let hi = Ring_buffer.next ring 1 in
    (Ring_buffer.get ring hi).value <- i;
    Ring_buffer.publish ring hi
  done;
  let hi = Ring_buffer.next ring 1 in
  (Ring_buffer.get ring hi).sentinel <- true;
  (Ring_buffer.get ring hi).value <- 0;
  Ring_buffer.publish ring hi;
  Domain.join consumer;
  Alcotest.(check int) "no event lost to overwrite" (n * (n + 1) / 2) !sum

let run_harness_with wait =
  let num_consumers = 3 in
  let n = 5_000 in
  let sums = Array.init num_consumers (fun _ -> ref 0) in
  let counts = Array.init num_consumers (fun _ -> ref 0) in
  let stats =
    Disruptor.run
      ~options:
        { Disruptor.ring_size = 64; batch = 16; wait; num_consumers }
      ~init:fresh_event
      ~producer:(fun ~emit ->
        for i = 1 to n do
          emit (fun ev ->
              ev.value <- i;
              ev.sentinel <- false)
        done;
        emit (fun ev -> ev.sentinel <- true))
      ~consumer:(fun me ev ->
        if ev.sentinel then false
        else begin
          (* broadcast: each consumer sees all events, handles its share *)
          if ev.value mod num_consumers = me then begin
            sums.(me) := !(sums.(me)) + ev.value;
            incr counts.(me)
          end;
          true
        end)
      ()
  in
  Alcotest.(check int) "published" (n + 1) stats.Disruptor.published;
  let total = Array.fold_left (fun acc r -> acc + !r) 0 sums in
  let count = Array.fold_left (fun acc r -> acc + !r) 0 counts in
  Alcotest.(check int) "each event handled exactly once" n count;
  Alcotest.(check int) "sum" (n * (n + 1) / 2) total

let test_harness_blocking () = run_harness_with Wait_strategy.Blocking
let test_harness_yielding () = run_harness_with Wait_strategy.Yielding
let test_harness_sleeping () = run_harness_with Wait_strategy.Sleeping
let test_harness_busy_spin () = run_harness_with Wait_strategy.Busy_spin

let test_harness_batch_sizes () =
  (* partial final batches must be flushed *)
  List.iter
    (fun n ->
      let seen = ref 0 in
      let stats =
        Disruptor.run
          ~options:
            {
              Disruptor.ring_size = 32;
              batch = 8;
              wait = Wait_strategy.Yielding;
              num_consumers = 1;
            }
          ~init:fresh_event
          ~producer:(fun ~emit ->
            for i = 1 to n do
              emit (fun ev ->
                  ev.value <- i;
                  ev.sentinel <- false)
            done;
            emit (fun ev -> ev.sentinel <- true))
          ~consumer:(fun _ ev ->
            if ev.sentinel then false
            else begin
              incr seen;
              true
            end)
          ()
      in
      Alcotest.(check int) (Printf.sprintf "n=%d seen" n) n !seen;
      Alcotest.(check int) (Printf.sprintf "n=%d published" n) (n + 1)
        stats.Disruptor.published)
    [ 0; 1; 7; 8; 9; 31; 100 ]

let test_wait_strategy_names () =
  List.iter
    (fun (kind, want) ->
      Alcotest.(check string) want want
        (Wait_strategy.name (Wait_strategy.create kind)))
    [
      (Wait_strategy.Blocking, "BlockingWaitStrategy");
      (Wait_strategy.Yielding, "YieldingWaitStrategy");
      (Wait_strategy.Sleeping, "SleepingWaitStrategy");
      (Wait_strategy.Busy_spin, "BusySpinWaitStrategy");
    ]

let test_pvwatts_options_match_table1 () =
  let o = Disruptor.pvwatts_options in
  Alcotest.(check int) "ring 1024" 1024 o.Disruptor.ring_size;
  Alcotest.(check int) "batch 256" 256 o.Disruptor.batch;
  Alcotest.(check int) "12 consumers" 12 o.Disruptor.num_consumers;
  Alcotest.(check bool) "blocking wait" true
    (o.Disruptor.wait = Wait_strategy.Blocking)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "disruptor.sequence",
      [
        tc "basics" `Quick test_sequence_basics;
        tc "minimum" `Quick test_sequence_minimum;
      ] );
    ( "disruptor.ring",
      [
        tc "power-of-two size" `Quick test_ring_requires_pow2;
        tc "claim/publish" `Quick test_ring_claim_publish;
        tc "single consumer FIFO" `Slow test_ring_single_consumer_fifo;
        tc "gating prevents overwrite" `Slow test_ring_gating_blocks_overwrite;
      ] );
    ( "disruptor.harness",
      [
        tc "blocking strategy" `Slow test_harness_blocking;
        tc "yielding strategy" `Slow test_harness_yielding;
        tc "sleeping strategy" `Slow test_harness_sleeping;
        tc "busy-spin strategy" `Slow test_harness_busy_spin;
        tc "batch flush" `Quick test_harness_batch_sizes;
        tc "wait strategy names" `Quick test_wait_strategy_names;
        tc "Table 1 options" `Quick test_pvwatts_options_match_table1;
      ] );
  ]
