(* Tests for the fork/join scheduler substrate: Chase-Lev deque
   (sequential semantics and concurrent owner/thief interleavings),
   pool lifecycle, futures, and the parallel iteration combinators. *)

module Chase_lev = Jstar_sched.Chase_lev
module Pool = Jstar_sched.Pool
module Forkjoin = Jstar_sched.Forkjoin
module Bits = Jstar_sched.Bits

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect (fun () -> f pool) ~finally:(fun () -> Pool.shutdown pool)

(* ------------------------------------------------------------------ *)
(* Bits *)

let test_next_pow2 () =
  List.iter
    (fun (n, want) -> Alcotest.(check int) (string_of_int n) want (Bits.next_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1000, 1024); (1024, 1024) ]

let test_is_pow2 () =
  Alcotest.(check bool) "1" true (Bits.is_pow2 1);
  Alcotest.(check bool) "2" true (Bits.is_pow2 2);
  Alcotest.(check bool) "3" false (Bits.is_pow2 3);
  Alcotest.(check bool) "0" false (Bits.is_pow2 0);
  Alcotest.(check bool) "-4" false (Bits.is_pow2 (-4));
  Alcotest.(check bool) "4096" true (Bits.is_pow2 4096)

let test_clz () =
  Alcotest.(check int) "clz 1" 63 (Bits.count_leading_zeros 1);
  Alcotest.(check int) "clz 256" 55 (Bits.count_leading_zeros 256);
  Alcotest.check_raises "clz 0" (Invalid_argument "count_leading_zeros")
    (fun () -> ignore (Bits.count_leading_zeros 0))

(* ------------------------------------------------------------------ *)
(* Chase-Lev deque, owner-only semantics *)

let test_deque_lifo () =
  let d = Chase_lev.create () in
  Alcotest.(check bool) "fresh empty" true (Chase_lev.is_empty d);
  Chase_lev.push d 1;
  Chase_lev.push d 2;
  Chase_lev.push d 3;
  Alcotest.(check int) "size" 3 (Chase_lev.size d);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Chase_lev.pop d);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Chase_lev.pop d);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Chase_lev.pop d);
  Alcotest.(check (option int)) "pop empty" None (Chase_lev.pop d)

let test_deque_steal_fifo () =
  let d = Chase_lev.create () in
  Chase_lev.push d 1;
  Chase_lev.push d 2;
  Chase_lev.push d 3;
  Alcotest.(check (option int)) "steal 1" (Some 1) (Chase_lev.steal_blocking d);
  Alcotest.(check (option int)) "steal 2" (Some 2) (Chase_lev.steal_blocking d);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Chase_lev.pop d);
  Alcotest.(check (option int)) "steal empty" None (Chase_lev.steal_blocking d)

let test_deque_growth () =
  let d = Chase_lev.create ~log_size:1 () in
  let n = 10_000 in
  for i = 1 to n do
    Chase_lev.push d i
  done;
  Alcotest.(check int) "size after pushes" n (Chase_lev.size d);
  for i = n downto 1 do
    Alcotest.(check (option int)) "pop" (Some i) (Chase_lev.pop d)
  done

let test_deque_interleaved () =
  (* Alternating push/pop/steal from the owner side only. *)
  let d = Chase_lev.create ~log_size:2 () in
  for round = 0 to 99 do
    Chase_lev.push d (2 * round);
    Chase_lev.push d ((2 * round) + 1);
    (* steal takes the oldest, pop the newest *)
    match (Chase_lev.steal_blocking d, Chase_lev.pop d) with
    | Some s, Some p ->
        Alcotest.(check bool) "steal older than pop" true (s < p)
    | _ -> Alcotest.fail "expected two elements"
  done;
  Alcotest.(check bool) "drained" true (Chase_lev.is_empty d)

(* Concurrent correctness: one owner pushing/popping, several thieves
   stealing; every element must be seen exactly once. *)
let test_deque_concurrent () =
  let d = Chase_lev.create ~log_size:4 () in
  let n = 50_000 in
  let num_thieves = 3 in
  let stolen = Array.init num_thieves (fun _ -> ref []) in
  let stop = Atomic.make false in
  let thieves =
    List.init num_thieves (fun t ->
        Domain.spawn (fun () ->
            let rec go () =
              match Chase_lev.steal d with
              | Chase_lev.Stolen v ->
                  stolen.(t) := v :: !(stolen.(t));
                  go ()
              | Chase_lev.Retry -> go ()
              | Chase_lev.Empty -> if Atomic.get stop then () else go ()
            in
            go ()))
  in
  let popped = ref [] in
  for i = 1 to n do
    Chase_lev.push d i;
    if i mod 3 = 0 then
      match Chase_lev.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Chase_lev.pop d with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let all =
    !popped @ List.concat_map (fun r -> !r) (Array.to_list stolen)
  in
  Alcotest.(check int) "every element seen exactly once" n (List.length all);
  let sorted = List.sort compare all in
  Alcotest.(check bool) "no duplicates, no losses" true
    (List.for_all2 (fun a b -> a = b) sorted (List.init n (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Pool and futures *)

let test_pool_create_invalid () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.create: num_workers < 1") (fun () ->
      ignore (Pool.create ~num_workers:0 ()))

let test_pool_fork_join () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let f = Pool.fork pool (fun () -> 6 * 7) in
          Alcotest.(check int) "future result" 42 (Pool.join pool f)))

let test_pool_single_worker () =
  (* num_workers = 1: no domain spawned, everything on the caller. *)
  with_pool 1 (fun pool ->
      let total =
        Forkjoin.parallel_reduce pool ~lo:0 ~hi:100 ~init:0 ~combine:( + )
          Fun.id
      in
      Alcotest.(check int) "sum" 4950 total)

let test_pool_exception_propagation () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let f = Pool.fork pool (fun () -> failwith "boom") in
          Alcotest.check_raises "join re-raises" (Failure "boom") (fun () ->
              ignore (Pool.join pool f))))

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~num_workers:2 () in
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown" Pool.Shutdown (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~num_workers:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check pass) "no deadlock or exception" () ()

let test_pool_many_futures () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let futs = List.init 1000 (fun i -> Pool.fork pool (fun () -> i)) in
          let total = List.fold_left (fun acc f -> acc + Pool.join pool f) 0 futs in
          Alcotest.(check int) "sum of 0..999" 499500 total))

let test_pool_nested_forks () =
  with_pool 2 (fun pool ->
      let rec fib n =
        if n < 10 then
          let rec seq n = if n < 2 then n else seq (n - 1) + seq (n - 2) in
          seq n
        else
          let a = Pool.fork pool (fun () -> fib (n - 1)) in
          let b = fib (n - 2) in
          Pool.join pool a + b
      in
      let v = Pool.run pool (fun () -> fib 20) in
      Alcotest.(check int) "fib 20" 6765 v)

let test_peek () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let f = Pool.fork pool (fun () -> 5) in
          let v = Pool.join pool f in
          Alcotest.(check int) "join" 5 v;
          match Pool.peek f with
          | Some (Ok 5) -> ()
          | _ -> Alcotest.fail "peek after join should be Ok 5"))

(* ------------------------------------------------------------------ *)
(* Forkjoin combinators *)

let test_parallel_for_covers_range () =
  with_pool 2 (fun pool ->
      let n = 10_000 in
      let hits = Array.make n (Atomic.make 0) in
      for i = 0 to n - 1 do
        hits.(i) <- Atomic.make 0
      done;
      Forkjoin.parallel_for pool ~lo:0 ~hi:n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "index %d visited %d times" i (Atomic.get c))
        hits)

let test_parallel_for_empty () =
  with_pool 2 (fun pool ->
      let touched = ref false in
      Forkjoin.parallel_for pool ~lo:5 ~hi:5 (fun _ -> touched := true);
      Forkjoin.parallel_for pool ~lo:5 ~hi:3 (fun _ -> touched := true);
      Alcotest.(check bool) "no iteration" false !touched)

let test_parallel_for_grain_one () =
  with_pool 2 (fun pool ->
      let count = Atomic.make 0 in
      Forkjoin.parallel_for pool ~grain:1 ~lo:0 ~hi:100 (fun _ ->
          Atomic.incr count);
      Alcotest.(check int) "100 iterations" 100 (Atomic.get count))

let test_parallel_reduce_sum () =
  with_pool 2 (fun pool ->
      let n = 1_000_000 in
      let got =
        Forkjoin.parallel_reduce pool ~lo:0 ~hi:n ~init:0 ~combine:( + ) Fun.id
      in
      Alcotest.(check int) "triangular number" (n * (n - 1) / 2) got)

let test_parallel_reduce_empty () =
  with_pool 2 (fun pool ->
      let got =
        Forkjoin.parallel_reduce pool ~lo:3 ~hi:3 ~init:42 ~combine:( + )
          (fun _ -> Alcotest.fail "must not be called")
      in
      Alcotest.(check int) "init returned" 42 got)

let test_parallel_map () =
  with_pool 2 (fun pool ->
      let arr = Array.init 1000 Fun.id in
      let got = Forkjoin.parallel_map pool (fun x -> x * x) arr in
      Alcotest.(check bool) "squares" true
        (Array.for_all2 (fun a b -> a = b) got (Array.map (fun x -> x * x) arr)))

let test_parallel_init () =
  with_pool 2 (fun pool ->
      let got = Forkjoin.parallel_init pool 257 (fun i -> i * 3) in
      Alcotest.(check int) "length" 257 (Array.length got);
      Array.iteri
        (fun i v -> if v <> i * 3 then Alcotest.failf "wrong value at %d" i)
        got)

let test_invoke_all () =
  with_pool 2 (fun pool ->
      let a = Atomic.make 0 in
      Forkjoin.invoke_all pool
        (List.init 16 (fun _ () -> Atomic.incr a));
      Alcotest.(check int) "all ran" 16 (Atomic.get a))

let test_invoke_all_failure () =
  with_pool 2 (fun pool ->
      let a = Atomic.make 0 in
      Alcotest.check_raises "first failure re-raised" (Failure "task2")
        (fun () ->
          Forkjoin.invoke_all pool
            [
              (fun () -> Atomic.incr a);
              (fun () -> failwith "task2");
              (fun () -> Atomic.incr a);
            ]);
      Alcotest.(check int) "others still ran" 2 (Atomic.get a))

let test_fork_join2 () =
  with_pool 2 (fun pool ->
      let a, b = Forkjoin.fork_join2 pool (fun () -> "left") (fun () -> 99) in
      Alcotest.(check string) "left" "left" a;
      Alcotest.(check int) "right" 99 b)

(* Determinism: a parallel tree reduction with an associative operator
   must equal the sequential fold, for arbitrary data (qcheck). *)
let prop_reduce_matches_sequential =
  QCheck.Test.make ~name:"parallel_reduce = sequential fold" ~count:30
    QCheck.(list small_int)
    (fun xs ->
      let arr = Array.of_list xs in
      with_pool 2 (fun pool ->
          let par =
            Forkjoin.parallel_reduce pool ~lo:0 ~hi:(Array.length arr) ~init:0
              ~combine:( + )
              (fun i -> arr.(i))
          in
          par = Array.fold_left ( + ) 0 arr))

let prop_parallel_map_matches =
  QCheck.Test.make ~name:"parallel_map = Array.map" ~count:30
    QCheck.(array small_int)
    (fun arr ->
      with_pool 2 (fun pool ->
          let f x = (x * 31) + 7 in
          Forkjoin.parallel_map pool f arr = Array.map f arr))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sched.bits",
      [
        tc "next_pow2" `Quick test_next_pow2;
        tc "is_pow2" `Quick test_is_pow2;
        tc "count_leading_zeros" `Quick test_clz;
      ] );
    ( "sched.deque",
      [
        tc "owner LIFO" `Quick test_deque_lifo;
        tc "thief FIFO" `Quick test_deque_steal_fifo;
        tc "buffer growth" `Quick test_deque_growth;
        tc "interleaved push/pop/steal" `Quick test_deque_interleaved;
        tc "concurrent owner + 3 thieves" `Slow test_deque_concurrent;
      ] );
    ( "sched.pool",
      [
        tc "invalid size" `Quick test_pool_create_invalid;
        tc "fork/join" `Quick test_pool_fork_join;
        tc "single worker" `Quick test_pool_single_worker;
        tc "exception propagation" `Quick test_pool_exception_propagation;
        tc "submit after shutdown" `Quick test_pool_submit_after_shutdown;
        tc "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
        tc "many futures" `Quick test_pool_many_futures;
        tc "nested forks (fib)" `Quick test_pool_nested_forks;
        tc "peek" `Quick test_peek;
      ] );
    ( "sched.forkjoin",
      [
        tc "parallel_for covers range" `Quick test_parallel_for_covers_range;
        tc "parallel_for empty range" `Quick test_parallel_for_empty;
        tc "parallel_for grain=1" `Quick test_parallel_for_grain_one;
        tc "parallel_reduce sum" `Quick test_parallel_reduce_sum;
        tc "parallel_reduce empty" `Quick test_parallel_reduce_empty;
        tc "parallel_map" `Quick test_parallel_map;
        tc "parallel_init" `Quick test_parallel_init;
        tc "invoke_all" `Quick test_invoke_all;
        tc "invoke_all failure" `Quick test_invoke_all_failure;
        tc "fork_join2" `Quick test_fork_join2;
        QCheck_alcotest.to_alcotest prop_reduce_matches_sequential;
        QCheck_alcotest.to_alcotest prop_parallel_map_matches;
      ] );
  ]
