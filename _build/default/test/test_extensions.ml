(* Tests for the paper's optional/extension features:
   - event-driven sessions (§3: external input tuples over time);
   - task-per-rule firing and intra-rule parallel loops (§5.2);
   - windowed stores (manual lifetime hints, Fig 3 step 4). *)

open Jstar_core

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Sessions *)

let event_program () =
  let p = Program.create () in
  let reading =
    Program.table p "Reading"
      ~columns:Schema.[ int_col "time"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Int"; Seq "time" ]
      ()
  in
  let alert =
    Program.table p "Alert"
      ~columns:Schema.[ int_col "time"; int_col "sensor" ]
      ~key:2
      ~orderby:Schema.[ Lit "Int"; Seq "time"; Lit "Alert" ]
      ()
  in
  Program.rule p "threshold" ~trigger:reading
    ~puts:[ Spec.put "Alert" ~ts:[ Spec.bind "time" (Spec.Field "time") ] ]
    (fun ctx r ->
      if Tuple.int r "value" > 100 then
        ctx.Rule.put (Tuple.make alert [| Tuple.get r 0; Tuple.get r 1 |]));
  Program.output p alert (fun a ->
      Printf.sprintf "ALERT t=%d sensor=%d" (Tuple.int a "time")
        (Tuple.int a "sensor"));
  (p, reading, alert)

let test_session_incremental () =
  let p, reading, _ = event_program () in
  let session = Engine.start (Program.freeze p) Config.default in
  Engine.feed session
    [
      Tuple.make reading [| v_int 1; v_int 7; v_int 50 |];
      Tuple.make reading [| v_int 2; v_int 7; v_int 150 |];
    ];
  Alcotest.(check (list string)) "first drain"
    [ "ALERT t=2 sensor=7" ] (Engine.drain session);
  (* a second batch arrives later *)
  Engine.feed session [ Tuple.make reading [| v_int 3; v_int 9; v_int 200 |] ];
  Alcotest.(check (list string)) "second drain sees only new outputs"
    [ "ALERT t=3 sensor=9" ] (Engine.drain session);
  let result = Engine.finish session in
  Alcotest.(check int) "total outputs" 2 (List.length result.Engine.outputs);
  Alcotest.(check int) "tuples processed" 5 result.Engine.tuples_processed

let test_session_gamma_between_drains () =
  let p, reading, _ = event_program () in
  let session = Engine.start (Program.freeze p) Config.default in
  Engine.feed session [ Tuple.make reading [| v_int 1; v_int 1; v_int 10 |] ];
  ignore (Engine.drain session);
  Alcotest.(check int) "reading stored" 1
    ((Engine.session_gamma session reading).Store.size ());
  ignore (Engine.finish session)

let test_session_finished_rejects () =
  let p, reading, _ = event_program () in
  let session = Engine.start (Program.freeze p) Config.default in
  ignore (Engine.finish session);
  (match Engine.feed session [ Tuple.make reading [| v_int 1; v_int 1; v_int 1 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "feed after finish must be rejected");
  (* finish is idempotent *)
  ignore (Engine.finish session)

let test_session_parallel_matches_sequential () =
  let run threads =
    let p, reading, _ = event_program () in
    let session =
      Engine.start (Program.freeze p) { Config.default with threads }
    in
    Engine.feed session
      (List.init 50 (fun i ->
           Tuple.make reading [| v_int i; v_int (i mod 5); v_int (i * 7) |]));
    let out = Engine.drain session in
    ignore (Engine.finish session);
    out
  in
  Alcotest.(check (list string)) "session deterministic" (run 1) (run 2)

(* ------------------------------------------------------------------ *)
(* Task-per-rule strategy (§5.2) *)

let multi_rule_program () =
  let p = Program.create () in
  let src =
    Program.table p "Src" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Src" ] ()
  in
  let out_a =
    Program.table p "OutA" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Out" ] ()
  in
  let out_b =
    Program.table p "OutB" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Out" ] ()
  in
  Program.order p [ "Src"; "Out" ];
  Program.rule p "double" ~trigger:src (fun ctx s ->
      ctx.Rule.put (Tuple.make out_a [| v_int (2 * Tuple.int s "x") |]));
  Program.rule p "square" ~trigger:src (fun ctx s ->
      ctx.Rule.put (Tuple.make out_b [| v_int (Tuple.int s "x" * Tuple.int s "x") |]));
  Program.output p out_a (fun t -> Printf.sprintf "a%d" (Tuple.int t "x"));
  Program.output p out_b (fun t -> Printf.sprintf "b%d" (Tuple.int t "x"));
  (p, src)

let test_task_per_rule_equivalent () =
  let p, src = multi_rule_program () in
  let init = List.init 20 (fun i -> Tuple.make src [| v_int i |]) in
  let frozen = Program.freeze p in
  let base = Engine.run ~init frozen (Config.parallel ~threads:2 ()) in
  let per_rule =
    Engine.run ~init frozen
      { (Config.parallel ~threads:2 ()) with Config.task_per_rule = true }
  in
  Alcotest.(check (list string)) "same outputs" base.Engine.outputs
    per_rule.Engine.outputs;
  Alcotest.(check bool) "something was produced" true
    (List.length base.Engine.outputs > 0)

let test_task_per_rule_counts_triggers () =
  let p, src = multi_rule_program () in
  let init = List.init 10 (fun i -> Tuple.make src [| v_int i |]) in
  let r =
    Engine.run ~init (Program.freeze p)
      { Config.default with Config.task_per_rule = true }
  in
  match Table_stats.get r.Engine.stats "Src" with
  | Some c ->
      Alcotest.(check int) "two rule firings per Src tuple" 20
        (Table_stats.read c.Table_stats.triggers)
  | None -> Alcotest.fail "no stats"

(* ------------------------------------------------------------------ *)
(* Intra-rule parallel loops (§5.2) *)

let test_par_iter_inside_rule () =
  let p = Program.create () in
  let req =
    Program.table p "Req" ~columns:Schema.[ int_col "n" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let hits = Array.init 1000 (fun _ -> Atomic.make 0) in
  Program.rule p "wide_loop" ~trigger:req (fun ctx r ->
      let n = Tuple.int r "n" in
      ctx.Rule.par_iter 0 n (fun i -> Atomic.incr hits.(i)));
  let init = [ Tuple.make req [| v_int 1000 |] ] in
  let frozen = Program.freeze p in
  List.iter
    (fun threads ->
      Array.iter (fun a -> Atomic.set a 0) hits;
      ignore (Engine.run ~init frozen { Config.default with threads });
      Array.iteri
        (fun i a ->
          if Atomic.get a <> 1 then
            Alcotest.failf "threads=%d: index %d hit %d times" threads i
              (Atomic.get a))
        hits)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Windowed store *)

let windowed_fixture () =
  let p = Program.create () in
  Program.table p "W"
    ~columns:Schema.[ int_col "iter"; int_col "x" ]
    ~orderby:Schema.[ Lit "Int"; Seq "iter" ]
    ()

let mk_w schema iter x = Tuple.make schema [| v_int iter; v_int x |]

let test_windowed_basic () =
  let schema = windowed_fixture () in
  let store = Store.windowed ~field:"iter" ~width:2 Store.tree schema in
  Alcotest.(check bool) "insert iter 0" true (store.Store.insert (mk_w schema 0 1));
  Alcotest.(check bool) "insert iter 1" true (store.Store.insert (mk_w schema 1 2));
  Alcotest.(check int) "both live" 2 (store.Store.size ());
  (* moving to iter 2 evicts iter 0 (window = {1, 2}) *)
  Alcotest.(check bool) "insert iter 2" true (store.Store.insert (mk_w schema 2 3));
  Alcotest.(check int) "iter 0 evicted" 2 (store.Store.size ());
  Alcotest.(check bool) "old tuple gone" false (store.Store.mem (mk_w schema 0 1));
  Alcotest.(check bool) "current kept" true (store.Store.mem (mk_w schema 2 3))

let test_windowed_rejects_stale () =
  let schema = windowed_fixture () in
  let store = Store.windowed ~field:"iter" ~width:2 Store.tree schema in
  ignore (store.Store.insert (mk_w schema 5 0));
  Alcotest.(check bool) "stale insert refused" false
    (store.Store.insert (mk_w schema 1 0));
  Alcotest.(check bool) "in-window insert ok" true
    (store.Store.insert (mk_w schema 4 0))

let test_windowed_dedup_within_window () =
  let schema = windowed_fixture () in
  let store = Store.windowed ~field:"iter" ~width:3 Store.tree schema in
  Alcotest.(check bool) "first" true (store.Store.insert (mk_w schema 1 7));
  Alcotest.(check bool) "dup" false (store.Store.insert (mk_w schema 1 7))

let test_windowed_queries () =
  let schema = windowed_fixture () in
  let store = Store.windowed ~field:"iter" ~width:2 Store.tree schema in
  List.iter
    (fun (it, x) -> ignore (store.Store.insert (mk_w schema it x)))
    [ (0, 1); (1, 2); (1, 3); (2, 4) ];
  let seen = ref [] in
  store.Store.iter_prefix [| v_int 1 |] (fun t ->
      seen := Tuple.int t "x" :: !seen);
  Alcotest.(check (list int)) "window query" [ 2; 3 ] (List.sort compare !seen);
  let all = ref 0 in
  store.Store.iter (fun _ -> incr all);
  Alcotest.(check int) "live tuples" 3 !all

let test_windowed_invalid_width () =
  let schema = windowed_fixture () in
  match Store.windowed ~field:"iter" ~width:0 Store.tree schema with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 0 accepted"

(* Engine integration: a sliding-window aggregation over a stream. *)
let test_windowed_in_engine () =
  let p = Program.create () in
  let reading =
    Program.table p "Reading"
      ~columns:Schema.[ int_col "time"; int_col "value" ]
      ~orderby:Schema.[ Lit "Int"; Seq "time" ]
      ()
  in
  let probe =
    Program.table p "Probe" ~columns:Schema.[ int_col "time" ] ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "time"; Lit "Probe" ]
      ()
  in
  Program.rule p "ask" ~trigger:reading
    ~puts:[ Spec.put "Probe" ~ts:[ Spec.bind "time" (Spec.Field "time") ] ]
    (fun ctx r -> ctx.Rule.put (Tuple.make probe [| Tuple.get r 0 |]));
  Program.rule p "window_sum" ~trigger:probe
    ~reads:[ Spec.read ~kind:Spec.Aggregate "Reading" ]
    (fun ctx pr ->
      (* sum over whatever the windowed Gamma still retains *)
      let sum =
        Query.fold ctx reading ~init:0
          ~f:(fun acc t -> acc + Tuple.int t "value")
          ()
      in
      ctx.Rule.println (Printf.sprintf "t=%d sum=%d" (Tuple.int pr "time") sum));
  let init =
    List.init 5 (fun i -> Tuple.make reading [| v_int i; v_int (10 * (i + 1)) |])
  in
  let config =
    {
      Config.default with
      Config.stores =
        [ ("Reading", Store.Custom (Store.windowed ~field:"time" ~width:2 Store.tree)) ];
    }
  in
  let r = Engine.run_program ~init p config in
  (* at each probe time t, only readings t-1 and t are retained *)
  Alcotest.(check (list string)) "sliding sums"
    [ "t=0 sum=10"; "t=1 sum=30"; "t=2 sum=50"; "t=3 sum=70"; "t=4 sum=90" ]
    r.Engine.outputs

(* ------------------------------------------------------------------ *)
(* Same-timestamp recursion: transitive closure as a fixpoint *)

let test_fixpoint_recursion () =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "src"; int_col "dst" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let reach =
    Program.table p "Reach" ~columns:Schema.[ int_col "node" ] ~key:1
      ~orderby:Schema.[ Lit "Reach" ]
      ()
  in
  Program.order p [ "Edge"; "Reach" ];
  Program.rule p "step" ~trigger:reach
    ~reads:[ Spec.read "Edge" ]
    ~puts:[ Spec.put "Reach" ]
    (fun ctx r ->
      Query.iter ctx edge
        ~prefix:[| Tuple.get r 0 |]
        (fun e -> ctx.Rule.put (Tuple.make reach [| Tuple.get e 1 |])));
  Program.output p reach (fun t -> string_of_int (Tuple.int t "node"));
  (* a cycle 0 -> 1 -> 2 -> 0 plus an unreachable 3 -> 4 *)
  let edges = [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  let init =
    List.map (fun (s, d) -> Tuple.make edge [| v_int s; v_int d |]) edges
    @ [ Tuple.make reach [| v_int 0 |] ]
  in
  let frozen = Program.freeze p in
  let seq = Engine.run ~init frozen Config.default in
  Alcotest.(check (list string)) "cycle closed, 3-4 excluded"
    [ "0"; "1"; "2" ]
    (List.sort compare seq.Engine.outputs);
  let par = Engine.run ~init frozen (Config.parallel ~threads:2 ()) in
  Alcotest.(check (list string)) "parallel fixpoint identical"
    seq.Engine.outputs par.Engine.outputs

(* ------------------------------------------------------------------ *)
(* Native float store *)

let test_native_float_store () =
  let p = Program.create () in
  let d =
    Program.table p "D"
      ~columns:Schema.[ int_col "iter"; int_col "i"; float_col "v" ]
      ~key:2 ~orderby:[] ()
  in
  let store, handle = Store.native_float_array ~dims:[| 2; 4 |] d in
  let mk iter i v = Tuple.make d [| v_int iter; v_int i; Value.Float v |] in
  Alcotest.(check bool) "insert" true (store.Store.insert (mk 0 1 3.5));
  Alcotest.(check bool) "dup key" false (store.Store.insert (mk 0 1 9.9));
  Alcotest.(check (float 1e-12)) "typed get" 3.5 (handle.Store.fa_get [| 0; 1 |]);
  handle.Store.fa_set_raw [| 1; 2 |] 7.25;
  Alcotest.(check (float 1e-12)) "raw set" 7.25 (handle.Store.fa_get [| 1; 2 |]);
  Alcotest.(check bool) "present" true (handle.Store.fa_present [| 1; 2 |]);
  Alcotest.(check bool) "absent" false (handle.Store.fa_present [| 1; 3 |]);
  Alcotest.(check int) "size" 2 (store.Store.size ());
  let seen = ref [] in
  store.Store.iter (fun t -> seen := Tuple.show t :: !seen);
  Alcotest.(check int) "iter count" 2 (List.length !seen)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "ext.session",
      [
        tc "incremental feed/drain" `Quick test_session_incremental;
        tc "gamma between drains" `Quick test_session_gamma_between_drains;
        tc "finished session rejects" `Quick test_session_finished_rejects;
        tc "parallel session deterministic" `Quick
          test_session_parallel_matches_sequential;
      ] );
    ( "ext.task_per_rule",
      [
        tc "equivalent outputs" `Quick test_task_per_rule_equivalent;
        tc "trigger accounting" `Quick test_task_per_rule_counts_triggers;
      ] );
    ("ext.par_iter", [ tc "intra-rule loop covers range" `Quick test_par_iter_inside_rule ]);
    ( "ext.semantics",
      [
        tc "transitive-closure fixpoint" `Quick test_fixpoint_recursion;
        tc "native float store" `Quick test_native_float_store;
      ] );
    ( "ext.windowed_store",
      [
        tc "eviction" `Quick test_windowed_basic;
        tc "stale insert refused" `Quick test_windowed_rejects_stale;
        tc "dedup within window" `Quick test_windowed_dedup_within_window;
        tc "queries" `Quick test_windowed_queries;
        tc "invalid width" `Quick test_windowed_invalid_width;
        tc "sliding-window aggregation" `Quick test_windowed_in_engine;
      ] );
  ]
