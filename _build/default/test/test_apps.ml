(* End-to-end tests for the four case-study programs: each JStar version
   must agree with its hand-coded baseline (and with ground truth), under
   both sequential and parallel configurations and under every
   store/flag variant the paper studies. *)

open Jstar_core
module Pvwatts = Jstar_apps.Pvwatts
module Pvwatts_disruptor = Jstar_apps.Pvwatts_disruptor
module Matmul = Jstar_apps.Matmul
module Shortest_path = Jstar_apps.Shortest_path
module Median = Jstar_apps.Median
module Spaceinvaders = Jstar_apps.Spaceinvaders
module Pvwatts_data = Jstar_csv.Pvwatts_data

(* ------------------------------------------------------------------ *)
(* Space invaders (§3) *)

let test_ship_trajectory () =
  let app = Spaceinvaders.make () in
  let r =
    Engine.run_program ~init:app.Spaceinvaders.init app.Spaceinvaders.program
      Config.default
  in
  Alcotest.(check (list string)) "Fig 2 trajectory"
    Spaceinvaders.expected_outputs r.Engine.outputs

(* ------------------------------------------------------------------ *)
(* PvWatts *)

let small_data =
  lazy (Pvwatts_data.to_bytes ~installations:2 ~ordering:Pvwatts_data.Month_major)

let reference_outputs data =
  (* ground truth, computed without any of our CSV/engine machinery *)
  ignore data;
  Pvwatts_data.reference_monthly_stats ~installations:2
  |> List.map (fun (m, _, _, mean) -> Pvwatts.format_mean Pvwatts_data.year m mean)
  |> List.sort String.compare

let test_pvwatts_baseline_matches_reference () =
  let data = Lazy.force small_data in
  Alcotest.(check (list string)) "baseline = ground truth"
    (reference_outputs data) (Pvwatts.baseline data)

let check_pvwatts_config name config =
  let data = Lazy.force small_data in
  let r = Pvwatts.run ~data config in
  Alcotest.(check (list string)) name (reference_outputs data) r.Engine.outputs

let test_pvwatts_naive () =
  (* everything through the Delta tree, default stores *)
  check_pvwatts_config "naive sequential"
    (Pvwatts.config ~threads:1 ~no_delta:false ~store:Pvwatts.Default_store ())

let test_pvwatts_nodelta () =
  check_pvwatts_config "noDelta sequential"
    (Pvwatts.config ~threads:1 ~no_delta:true ~store:Pvwatts.Default_store ())

let test_pvwatts_hash_store () =
  check_pvwatts_config "hash store"
    (Pvwatts.config ~threads:1 ~store:Pvwatts.Hash_store ())

let test_pvwatts_month_array_store () =
  check_pvwatts_config "month-array store"
    (Pvwatts.config ~threads:1 ~store:Pvwatts.Month_array_store ())

let test_pvwatts_parallel () =
  check_pvwatts_config "2 threads, month-array"
    (Pvwatts.config ~threads:2 ~store:Pvwatts.Month_array_store ());
  check_pvwatts_config "2 threads, naive"
    (Pvwatts.config ~threads:2 ~no_delta:false ~store:Pvwatts.Default_store ())

let test_pvwatts_nodelta_skips_delta () =
  let data = Lazy.force small_data in
  let run no_delta =
    let app = Pvwatts.make ~data ~chunks:4 () in
    let r =
      Engine.run_program ~init:app.Pvwatts.init app.Pvwatts.program
        (Pvwatts.config ~threads:1 ~no_delta ())
    in
    match Table_stats.get r.Engine.stats "PvWatts" with
    | Some c -> Table_stats.read c.Table_stats.delta_inserts
    | None -> Alcotest.fail "no PvWatts stats"
  in
  Alcotest.(check bool) "naive routes PvWatts through Delta" true (run false > 0);
  Alcotest.(check int) "-noDelta bypasses" 0 (run true)

let test_pvwatts_disruptor () =
  let data = Lazy.force small_data in
  let r = Pvwatts_disruptor.run ~data () in
  Alcotest.(check (list string)) "disruptor = ground truth"
    (reference_outputs data) r.Pvwatts_disruptor.outputs;
  Alcotest.(check int) "published = records + sentinel"
    (Pvwatts_data.record_count ~installations:2 + 1)
    r.Pvwatts_disruptor.stats.Jstar_disruptor.Disruptor.published

let test_pvwatts_disruptor_sorted_input () =
  let data =
    Pvwatts_data.to_bytes ~installations:2 ~ordering:Pvwatts_data.Round_robin
  in
  let r =
    Pvwatts_disruptor.run
      ~options:
        {
          Jstar_disruptor.Disruptor.pvwatts_options with
          num_consumers = 3;
          ring_size = 256;
        }
      ~data ()
  in
  Alcotest.(check (list string)) "round-robin input, 3 consumers"
    (reference_outputs data) r.Pvwatts_disruptor.outputs

(* ------------------------------------------------------------------ *)
(* MatrixMult *)

let check_matmul ~n ~variant ~threads () =
  let a = Matmul.generate_matrix 1 n and b = Matmul.generate_matrix 2 n in
  let expected = Matmul.baseline_naive a b in
  let transposed = Matmul.baseline_transposed a b in
  Alcotest.(check bool) "baselines agree" true (expected = transposed);
  let _, get = Matmul.run ~n ~variant ~threads () in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if get i j <> expected.(i).(j) then
        Alcotest.failf "C[%d][%d] = %d, want %d" i j (get i j) expected.(i).(j)
    done
  done

let test_matmul_unboxed_seq () = check_matmul ~n:24 ~variant:Matmul.Unboxed ~threads:1 ()
let test_matmul_unboxed_par () = check_matmul ~n:24 ~variant:Matmul.Unboxed ~threads:2 ()
let test_matmul_boxed_seq () = check_matmul ~n:16 ~variant:Matmul.Boxed ~threads:1 ()
let test_matmul_boxed_par () = check_matmul ~n:16 ~variant:Matmul.Boxed ~threads:2 ()

let test_matmul_one_tuple_per_row () =
  (* "only one tuple per row of the output matrix needs to go through
     the delta set" *)
  let n = 8 in
  let app, store = Matmul.make ~n ~variant:Matmul.Unboxed () in
  let r =
    Engine.run_program ~init:app.Matmul.init app.Matmul.program
      (Matmul.config ~threads:1 store)
  in
  Alcotest.(check int) "delta traffic = rows + request" (n + 1)
    r.Engine.delta_inserted

(* ------------------------------------------------------------------ *)
(* ShortestPath *)

let check_shortest_path ~vertices ~threads () =
  let dist_baseline = Shortest_path.baseline ~vertices () in
  let r, app = Shortest_path.run ~vertices ~threads () in
  Alcotest.(check int) "all vertices reached" vertices
    (app.Shortest_path.reached_count ());
  for v = 0 to vertices - 1 do
    match app.Shortest_path.distance_of v with
    | Some d ->
        if d <> dist_baseline.(v) then
          Alcotest.failf "vertex %d: JStar %d, baseline %d" v d dist_baseline.(v)
    | None -> Alcotest.failf "vertex %d unreached" v
  done;
  Alcotest.(check bool) "many steps (Delta as priority queue)" true
    (r.Engine.steps > 3)

let test_shortest_path_seq () = check_shortest_path ~vertices:2000 ~threads:1 ()
let test_shortest_path_par () = check_shortest_path ~vertices:2000 ~threads:2 ()

let test_shortest_path_origin () =
  let _, app = Shortest_path.run ~vertices:50 ~threads:1 () in
  Alcotest.(check (option int)) "distance to origin" (Some 0)
    (app.Shortest_path.distance_of 0)

let test_shortest_path_deterministic_graph () =
  (* same seed -> same graph -> same distances across runs and tasks *)
  let d1 = Shortest_path.baseline ~vertices:500 ~tasks:24 () in
  let d2 = Shortest_path.baseline ~vertices:500 ~tasks:24 () in
  Alcotest.(check bool) "deterministic" true (d1 = d2)

(* ------------------------------------------------------------------ *)
(* Median *)

let median_output x = Printf.sprintf "median = %.9f" x

let check_median ~n ~threads () =
  let arr = Median.generate n in
  let expected = Median.baseline_sort arr in
  Alcotest.(check (float 1e-12)) "quickselect = sort"
    expected (Median.baseline_quickselect arr);
  let r = Median.run ~n ~threads () in
  Alcotest.(check (list string)) "jstar = sort baseline"
    [ median_output expected ]
    r.Engine.outputs

let test_median_small () = check_median ~n:1000 ~threads:1 ()
(* crosses the cutoff: needs at least one parallel partition round *)
let test_median_medium_seq () = check_median ~n:50_000 ~threads:1 ()
let test_median_medium_par () = check_median ~n:50_000 ~threads:2 ()
let test_median_large_par () = check_median ~n:300_000 ~threads:2 ()

let test_median_odd_sizes () =
  List.iter
    (fun n -> check_median ~n ~threads:1 ())
    [ 1; 2; 3; 4097; 5000; 12_345 ]

let test_median_duplicates () =
  (* all-equal data must terminate via the equal band *)
  let n = 20_000 in
  let arr = Array.make n 0.5 in
  let expected = Median.baseline_sort arr in
  Alcotest.(check (float 1e-12)) "quickselect handles duplicates"
    expected (Median.baseline_quickselect arr);
  Alcotest.(check (float 1e-12)) "constant array" 0.5 expected

(* ------------------------------------------------------------------ *)
(* Game of Life (extension app) *)

module Life = Jstar_apps.Life

let coords = Alcotest.(list (pair int int))

let test_life_block_still () =
  let _, final = Life.run ~generations:5 ~alive:Life.block () in
  Alcotest.check coords "block is a still life" (List.sort compare Life.block) final

let test_life_blinker_period_two () =
  let _, g1 = Life.run ~generations:1 ~alive:Life.blinker () in
  let _, g2 = Life.run ~generations:2 ~alive:Life.blinker () in
  Alcotest.(check bool) "oscillates" true (g1 <> List.sort compare Life.blinker);
  Alcotest.check coords "period 2" (List.sort compare Life.blinker) g2

let test_life_glider_translates () =
  let _, g4 = Life.run ~generations:4 ~alive:Life.glider () in
  let expected =
    List.sort compare (List.map (fun (x, y) -> (x + 1, y + 1)) Life.glider)
  in
  Alcotest.check coords "glider moves (1,1) per 4 generations" expected g4

let test_life_matches_reference () =
  let alive = Life.glider @ [ (10, 10); (10, 11); (11, 10); (11, 11) ] in
  let _, got = Life.run ~generations:6 ~alive () in
  Alcotest.check coords "engine = synchronous reference"
    (Life.reference ~generations:6 alive) got

let test_life_parallel_deterministic () =
  let _, seq = Life.run ~threads:1 ~generations:6 ~alive:Life.glider () in
  let _, par = Life.run ~threads:2 ~generations:6 ~alive:Life.glider () in
  Alcotest.check coords "parallel = sequential" seq par

let test_life_windowed_gc () =
  let generations = 5 in
  (* windowed config: generation 0 is evicted by the end *)
  let app = Life.make ~generations ~alive:Life.glider () in
  let _, gamma_of =
    Jstar_core.Engine.run_with_gamma ~init:app.Life.init
      (Jstar_core.Program.freeze app.Life.program)
      (Life.config ())
  in
  Alcotest.check coords "generation 0 evicted" [] (app.Life.alive_at gamma_of 0);
  Alcotest.(check bool) "final generation retained" true
    (app.Life.alive_at gamma_of generations <> []);
  (* retain_all keeps history *)
  let app2 = Life.make ~generations ~alive:Life.glider () in
  let _, gamma2 =
    Jstar_core.Engine.run_with_gamma ~init:app2.Life.init
      (Jstar_core.Program.freeze app2.Life.program)
      (Life.config ~retain_all:true ())
  in
  Alcotest.check coords "history retained" (List.sort compare Life.glider)
    (app2.Life.alive_at gamma2 0)

let test_life_empty_board () =
  let _, final = Life.run ~generations:3 ~alive:[] () in
  Alcotest.check coords "empty stays empty" [] final

let suite =
  let tc = Alcotest.test_case in
  [
    ("apps.spaceinvaders", [ tc "Fig 2 trajectory" `Quick test_ship_trajectory ]);
    ( "apps.pvwatts",
      [
        tc "baseline = ground truth" `Quick test_pvwatts_baseline_matches_reference;
        tc "naive config" `Slow test_pvwatts_naive;
        tc "-noDelta config" `Quick test_pvwatts_nodelta;
        tc "hash store" `Quick test_pvwatts_hash_store;
        tc "month-array store" `Quick test_pvwatts_month_array_store;
        tc "parallel configs" `Slow test_pvwatts_parallel;
        tc "-noDelta skips Delta" `Slow test_pvwatts_nodelta_skips_delta;
        tc "disruptor version" `Slow test_pvwatts_disruptor;
        tc "disruptor sorted input" `Slow test_pvwatts_disruptor_sorted_input;
      ] );
    ( "apps.matmul",
      [
        tc "unboxed sequential" `Quick test_matmul_unboxed_seq;
        tc "unboxed parallel" `Quick test_matmul_unboxed_par;
        tc "boxed sequential" `Quick test_matmul_boxed_seq;
        tc "boxed parallel" `Quick test_matmul_boxed_par;
        tc "one tuple per row through Delta" `Quick test_matmul_one_tuple_per_row;
      ] );
    ( "apps.shortest_path",
      [
        tc "2000 vertices sequential" `Slow test_shortest_path_seq;
        tc "2000 vertices parallel" `Slow test_shortest_path_par;
        tc "origin at distance 0" `Quick test_shortest_path_origin;
        tc "deterministic graph" `Quick test_shortest_path_deterministic_graph;
      ] );
    ( "apps.life",
      [
        tc "block still life" `Quick test_life_block_still;
        tc "blinker period 2" `Quick test_life_blinker_period_two;
        tc "glider translation" `Quick test_life_glider_translates;
        tc "matches reference" `Quick test_life_matches_reference;
        tc "parallel deterministic" `Quick test_life_parallel_deterministic;
        tc "windowed generation GC" `Quick test_life_windowed_gc;
        tc "empty board" `Quick test_life_empty_board;
      ] );
    ( "apps.median",
      [
        tc "below cutoff" `Quick test_median_small;
        tc "one round sequential" `Quick test_median_medium_seq;
        tc "one round parallel" `Quick test_median_medium_par;
        tc "multi-round parallel" `Slow test_median_large_par;
        tc "odd sizes" `Slow test_median_odd_sizes;
        tc "duplicate values" `Quick test_median_duplicates;
      ] );
  ]
