test/test_obs.ml: Alcotest Array Buffer Config Engine Export Gc Json Jstar_core Jstar_obs Kind Level List Metrics Program Ring Rule Schema String Sys Trace_check Tracer Tuple Value
