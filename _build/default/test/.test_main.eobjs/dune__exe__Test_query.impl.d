test/test_query.ml: Alcotest Array Config Engine Gc Gen Jstar_core Jstar_obs List Printf Program QCheck QCheck_alcotest Query Reducer Rule Schema Store Sys Tuple Value
