test/test_causality.ml: Alcotest Jstar_causality Jstar_core List Program QCheck QCheck_alcotest Schema Spec String
