test/test_extensions.ml: Alcotest Array Atomic Config Engine Jstar_core List Printf Program Query Rule Schema Spec Store Table_stats Tuple Value
