test/test_stats.ml: Alcotest Config Engine Filename Fun Jstar_core Jstar_stats List Program Rule Schema Spec String Sys Tuple Value
