test/test_disruptor.ml: Alcotest Array Domain Fun Jstar_disruptor List Printf Unix
