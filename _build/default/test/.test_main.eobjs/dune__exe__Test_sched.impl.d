test/test_sched.ml: Alcotest Array Atomic Domain Fun Jstar_sched List QCheck QCheck_alcotest
