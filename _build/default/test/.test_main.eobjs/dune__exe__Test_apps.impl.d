test/test_apps.ml: Alcotest Array Config Engine Jstar_apps Jstar_core Jstar_csv Jstar_disruptor Lazy List Printf String Table_stats
