test/test_csv.ml: Alcotest Array Atomic Bytes Filename Fun Jstar_csv Jstar_sched List Printf String Sys
