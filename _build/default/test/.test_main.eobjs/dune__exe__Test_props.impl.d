test/test_props.ml: Array Delta Fun Jstar_causality Jstar_core Jstar_sched Lazy List Order_rel Program QCheck QCheck_alcotest Reducer Schema Spec Store Timestamp Tuple Value
