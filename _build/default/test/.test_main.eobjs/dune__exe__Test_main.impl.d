test/test_main.ml: Alcotest List Test_apps Test_causality Test_cds Test_core Test_csv Test_disruptor Test_extensions Test_obs Test_props Test_query Test_sched Test_stats
