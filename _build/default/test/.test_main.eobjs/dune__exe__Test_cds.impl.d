test/test_cds.ml: Alcotest Array Atomic Domain Fun Jstar_cds List QCheck QCheck_alcotest
