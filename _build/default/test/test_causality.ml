(* Tests for the causality checker: the difference-logic solver, symbolic
   timestamp comparison, the §4 proof-obligation example, the PvWatts
   stratification error (§6.2), and the global stratification analysis
   (Dijkstra's locally-stratified recursion). *)

open Jstar_core
module Dlsolver = Jstar_causality.Dlsolver
module Obligation = Jstar_causality.Obligation
module Check = Jstar_causality.Check
module Strata = Jstar_causality.Strata

(* ------------------------------------------------------------------ *)
(* Difference-logic solver *)

let atom x y c = { Dlsolver.x; y; c }

let test_dl_satisfiable () =
  (* x - y <= 1, y - x <= 1: fine *)
  Alcotest.(check bool) "slack" true
    (Dlsolver.satisfiable [ atom "x" "y" 1; atom "y" "x" 1 ]);
  (* x - y <= -1, y - x <= -1: negative cycle *)
  Alcotest.(check bool) "negative cycle" false
    (Dlsolver.satisfiable [ atom "x" "y" (-1); atom "y" "x" (-1) ]);
  Alcotest.(check bool) "empty" true (Dlsolver.satisfiable [])

let test_dl_entails () =
  (* from x <= y and y <= z conclude x <= z *)
  let assumptions = [ atom "x" "y" 0; atom "y" "z" 0 ] in
  Alcotest.(check bool) "transitivity" true
    (Dlsolver.entails assumptions (atom "x" "z" 0));
  Alcotest.(check bool) "not the reverse" false
    (Dlsolver.entails assumptions (atom "z" "x" 0));
  Alcotest.(check bool) "strict needs slack" false
    (Dlsolver.entails assumptions (atom "x" "z" (-1)))

let test_dl_proves_exprs () =
  let open Spec in
  (* frame <= frame + 1, always *)
  Alcotest.(check bool) "f < f+1" true
    (Dlsolver.proves_lt [] (Field "frame") (Add (Field "frame", 1)));
  Alcotest.(check bool) "f <= f" true
    (Dlsolver.proves_le [] (Field "frame") (Field "frame"));
  Alcotest.(check bool) "f < f fails" false
    (Dlsolver.proves_lt [] (Field "frame") (Field "frame"));
  (* unknown is never provable *)
  Alcotest.(check bool) "unknown" false
    (Dlsolver.proves_le [] (Field "x") Unknown);
  (* constants *)
  Alcotest.(check bool) "0 < 1" true (Dlsolver.proves_lt [] (Const 0) (Const 1));
  Alcotest.(check bool) "1 < 0 fails" false
    (Dlsolver.proves_lt [] (Const 1) (Const 0))

let test_dl_proves_under_assumptions () =
  let open Spec in
  (* given distance >= 0 (0 <= distance), prove distance + value > 0
     requires value >= 1 *)
  let nonneg = Le (Const 0, Field "distance") in
  let pos_edge = Le (Const 1, Field "value") in
  Alcotest.(check bool) "d < d + v given v >= 1" true
    (Dlsolver.proves_lt
       [ nonneg; pos_edge ]
       (Field "distance")
       (Add (Add (Field "distance", 0), 0) |> fun _ ->
        (* distance + value is not expressible in pure difference form
           with two fields; instead check distance <= distance + 1 *)
        Add (Field "distance", 1)));
  Alcotest.(check bool) "eq via both directions" true
    (Dlsolver.proves_eq [ Eq (Field "a", Field "b") ] (Field "a") (Field "b"))

(* ------------------------------------------------------------------ *)
(* Symbolic obligations: the Ship rule *)

let ship_fixture () =
  let p = Program.create () in
  let ship =
    Program.table p "Ship"
      ~columns:Schema.[ int_col "frame"; int_col "x" ]
      ~orderby:Schema.[ Lit "Int"; Seq "frame" ]
      ()
  in
  (p, ship)

let test_obligation_ship_ok () =
  let p, ship = ship_fixture () in
  let order = Program.order_rel p in
  let trigger = Obligation.of_trigger ship in
  let put =
    Obligation.of_bindings ship
      [ Spec.bind "frame" (Spec.Add (Spec.Field "frame", 1)) ]
  in
  (match Obligation.prove_leq order [] ~strict:false trigger put with
  | Obligation.Proved -> ()
  | Obligation.Failed why -> Alcotest.failf "expected proof, got: %s" why)

let test_obligation_ship_same_frame () =
  (* putting into the same frame is allowed (present, not past) *)
  let p, ship = ship_fixture () in
  let order = Program.order_rel p in
  let trigger = Obligation.of_trigger ship in
  let put = Obligation.of_bindings ship [ Spec.bind "frame" (Spec.Field "frame") ] in
  (match Obligation.prove_leq order [] ~strict:false trigger put with
  | Obligation.Proved -> ()
  | Obligation.Failed why -> Alcotest.failf "expected proof, got: %s" why);
  (* but it is NOT strictly in the future *)
  (match Obligation.prove_leq order [] ~strict:true trigger put with
  | Obligation.Failed _ -> ()
  | Obligation.Proved -> Alcotest.fail "strict proof must fail")

let test_obligation_ship_past () =
  let p, ship = ship_fixture () in
  let order = Program.order_rel p in
  let trigger = Obligation.of_trigger ship in
  let put =
    Obligation.of_bindings ship
      [ Spec.bind "frame" (Spec.Add (Spec.Field "frame", -1)) ]
  in
  (match Obligation.prove_leq order [] ~strict:false trigger put with
  | Obligation.Failed _ -> ()
  | Obligation.Proved -> Alcotest.fail "putting into the past must fail")

let test_obligation_unknown_binding () =
  let p, ship = ship_fixture () in
  let order = Program.order_rel p in
  let trigger = Obligation.of_trigger ship in
  let put = Obligation.of_bindings ship [] in
  (* no binding for frame *)
  (match Obligation.prove_leq order [] ~strict:false trigger put with
  | Obligation.Failed _ -> ()
  | Obligation.Proved -> Alcotest.fail "unknown binding must not be provable")

let test_obligation_literal_levels () =
  let p = Program.create () in
  let a =
    Program.table p "A" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let b =
    Program.table p "B" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "SumMonth" ] ()
  in
  Program.order p [ "Req"; "SumMonth" ];
  let order = Program.order_rel p in
  let ta = Obligation.of_trigger a and tb = Obligation.of_bindings b [] in
  (match Obligation.prove_leq order [] ~strict:true ta tb with
  | Obligation.Proved -> ()
  | Obligation.Failed why -> Alcotest.failf "Req < SumMonth: %s" why);
  (match Obligation.prove_leq order [] ~strict:false tb ta with
  | Obligation.Failed _ -> ()
  | Obligation.Proved -> Alcotest.fail "SumMonth <= Req must fail")

let test_obligation_par_levels_equivalent () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "step"; int_col "region" ]
      ~orderby:Schema.[ Lit "T"; Seq "step"; Par "region" ]
      ()
  in
  let order = Program.order_rel p in
  let trigger = Obligation.of_trigger t in
  (* same step, any region: non-strictly ordered (same class), never strict *)
  let put =
    Obligation.of_bindings t
      [ Spec.bind "step" (Spec.Field "step"); Spec.bind "region" Spec.Unknown ]
  in
  (match Obligation.prove_leq order [] ~strict:false trigger put with
  | Obligation.Proved -> ()
  | Obligation.Failed why -> Alcotest.failf "par equivalence: %s" why);
  match Obligation.prove_leq order [] ~strict:true trigger put with
  | Obligation.Failed _ -> ()
  | Obligation.Proved -> Alcotest.fail "same class is not strictly after"

(* ------------------------------------------------------------------ *)
(* The §4 example: trigger/Tuple1/Tuple2 with a min query *)

let section4_fixture () =
  let p = Program.create () in
  let trig =
    Program.table p "Trigger" ~columns:Schema.[ int_col "t" ]
      ~orderby:Schema.[ Lit "Int"; Seq "t" ] ()
  in
  let tuple1 =
    Program.table p "Tuple1" ~columns:Schema.[ int_col "t" ]
      ~orderby:Schema.[ Lit "Int"; Seq "t" ] ()
  in
  let tuple2 =
    Program.table p "Tuple2" ~columns:Schema.[ int_col "t" ]
      ~orderby:Schema.[ Lit "Int"; Seq "t" ] ()
  in
  ignore (tuple1, tuple2);
  (p, trig, tuple1, tuple2)

let test_section4_rule_passes () =
  let p, trig, _, _ = section4_fixture () in
  (* then-branch puts Tuple1 at t+1; else-branch runs [get min Tuple1]
     over the strict past (t-1) and puts Tuple2 at t+1. *)
  Program.rule p "section4" ~trigger:trig
    ~reads:
      [
        Spec.read ~kind:Spec.Aggregate "Tuple1"
          ~ts:[ Spec.bind "t" (Spec.Add (Spec.Field "t", -1)) ];
      ]
    ~puts:
      [
        Spec.put "Tuple1"
          ~ts:[ Spec.bind "t" (Spec.Add (Spec.Field "t", 1)) ]
          ~when_:"Cond";
        Spec.put "Tuple2"
          ~ts:[ Spec.bind "t" (Spec.Add (Spec.Field "t", 1)) ]
          ~when_:"not Cond";
      ]
    (fun _ _ -> ());
  let report = Check.check_program p in
  Alcotest.(check bool) "all proved" true (Check.ok report);
  Alcotest.(check int) "three obligations" 3 report.Check.obligations;
  Alcotest.(check int) "three proved" 3 report.Check.proved

let test_section4_unprovable_min_query () =
  let p, trig, _, _ = section4_fixture () in
  (* the min query at the trigger's own time: not strictly in the past *)
  Program.rule p "bad_min" ~trigger:trig
    ~reads:
      [
        Spec.read ~kind:Spec.Aggregate "Tuple1"
          ~ts:[ Spec.bind "t" (Spec.Field "t") ];
      ]
    ~puts:[ Spec.put "Tuple2" ~ts:[ Spec.bind "t" (Spec.Add (Spec.Field "t", 1)) ] ]
    (fun _ _ -> ());
  let report = Check.check_program p in
  Alcotest.(check bool) "not ok" false (Check.ok report);
  match Check.errors report with
  | [ e ] ->
      Alcotest.(check string) "rule name" "bad_min" e.Check.rule;
      Alcotest.(check string) "subject" "aggregate read Tuple1" e.Check.subject
  | es -> Alcotest.failf "expected 1 stratification error, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* PvWatts: the missing order declaration (§6.2) *)

let pvwatts_program ~with_order () =
  let p = Program.create () in
  let req =
    Program.table p "PvWattsRequest" ~columns:Schema.[ string_col "filename" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let pv =
    Program.table p "PvWatts"
      ~columns:
        Schema.
          [
            int_col "year"; int_col "month"; int_col "day"; int_col "hour";
            int_col "power";
          ]
      ~orderby:Schema.[ Lit "PvWatts" ]
      ()
  in
  let sum =
    Program.table p "SumMonth"
      ~columns:Schema.[ int_col "year"; int_col "month" ]
      ~orderby:Schema.[ Lit "SumMonth" ]
      ()
  in
  if with_order then Program.order p [ "Req"; "PvWatts"; "SumMonth" ];
  Program.rule p "read_csv" ~trigger:req
    ~puts:[ Spec.put "PvWatts" ]
    (fun _ _ -> ());
  Program.rule p "request_month" ~trigger:pv
    ~puts:[ Spec.put "SumMonth" ]
    (fun _ _ -> ());
  Program.rule p "reduce_month" ~trigger:sum
    ~reads:[ Spec.read ~kind:Spec.Aggregate "PvWatts" ]
    (fun _ _ -> ());
  p

let test_pvwatts_with_order_ok () =
  let report = Check.check_program (pvwatts_program ~with_order:true ()) in
  Alcotest.(check bool) "stratified" true (Check.ok report);
  Alcotest.(check int) "obligations" 3 report.Check.obligations

let test_pvwatts_without_order_stratification_error () =
  (* "if this order declaration was omitted then the SMT solvers would
     not be able to prove that that rule was stratified, so a
     Stratification error would be displayed" *)
  let report = Check.check_program (pvwatts_program ~with_order:false ()) in
  Alcotest.(check bool) "not stratified" false (Check.ok report);
  match Check.errors report with
  | [ e ] ->
      Alcotest.(check string) "failing rule" "reduce_month" e.Check.rule;
      Alcotest.(check bool) "mentions unrelated literals" true
        (String.length e.Check.message > 0)
  | es -> Alcotest.failf "expected exactly 1 error, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* Global stratification analysis *)

let test_strata_pvwatts_acyclic () =
  let g = Strata.analyse (pvwatts_program ~with_order:true ()) in
  Alcotest.(check bool) "globally stratified" true (Strata.globally_stratified g);
  Alcotest.(check int) "no recursive components" 0 (List.length g.Strata.sccs)

let test_strata_dijkstra_needs_local () =
  (* Estimate -> Estimate recursion through a negative Done check. *)
  let p = Program.create () in
  let est =
    Program.table p "Estimate"
      ~columns:Schema.[ int_col "vertex"; int_col "distance" ]
      ~orderby:Schema.[ Lit "Int"; Seq "distance"; Lit "Estimate" ]
      ()
  in
  let _done_ =
    Program.table p "Done"
      ~columns:Schema.[ int_col "vertex"; int_col "distance" ]
      ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "distance"; Lit "Done" ]
      ()
  in
  Program.order p [ "Estimate"; "Done" ];
  Program.rule p "dijkstra" ~trigger:est
    ~reads:
      [
        Spec.read ~kind:Spec.Negative "Done"
          ~ts:[ Spec.bind "distance" (Spec.Add (Spec.Field "distance", -1)) ];
      ]
    ~puts:
      [
        Spec.put "Done" ~ts:[ Spec.bind "distance" (Spec.Field "distance") ];
        Spec.put "Estimate"
          ~ts:[ Spec.bind "distance" (Spec.Add (Spec.Field "distance", 1)) ]
          ~when_:"edge relaxation";
      ]
    ~assumes:[ Spec.Le (Spec.Const 0, Spec.Field "distance") ]
    (fun _ _ -> ());
  let g = Strata.analyse p in
  Alcotest.(check bool) "not globally stratified" false
    (Strata.globally_stratified g);
  Alcotest.(check bool) "Estimate in a recursive component" true
    (List.exists (fun c -> List.mem "Estimate" c) g.Strata.sccs);
  (* ... but locally stratified: causality obligations all prove *)
  let report = Check.check_program p in
  Alcotest.(check (list string)) "no stratification errors" []
    (List.map (fun e -> e.Check.rule) (Check.errors report))

let test_check_reports_unchecked_rules () =
  let p, ship = ship_fixture () in
  Program.rule p "no_metadata" ~trigger:ship (fun _ _ -> ());
  let report = Check.check_program p in
  Alcotest.(check bool) "ok (only unchecked)" true (Check.ok report);
  match report.Check.findings with
  | [ f ] ->
      Alcotest.(check bool) "flagged unchecked" true
        (f.Check.severity = Check.Unchecked_rule)
  | _ -> Alcotest.fail "expected a single unchecked finding"

(* Soundness property: for random frame offsets, the symbolic checker
   accepts exactly the non-negative ones (future/present puts). *)
let prop_offset_soundness =
  QCheck.Test.make ~name:"put offset provable iff non-negative" ~count:50
    QCheck.(int_range (-10) 10)
    (fun off ->
      let p, ship = ship_fixture () in
      let order = Program.order_rel p in
      let trigger = Obligation.of_trigger ship in
      let put =
        Obligation.of_bindings ship
          [ Spec.bind "frame" (Spec.Add (Spec.Field "frame", off)) ]
      in
      let verdict = Obligation.prove_leq order [] ~strict:false trigger put in
      if off >= 0 then verdict = Obligation.Proved
      else match verdict with Obligation.Failed _ -> true | _ -> false)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "causality.dlsolver",
      [
        tc "satisfiability" `Quick test_dl_satisfiable;
        tc "entailment" `Quick test_dl_entails;
        tc "expression proofs" `Quick test_dl_proves_exprs;
        tc "assumption use" `Quick test_dl_proves_under_assumptions;
      ] );
    ( "causality.obligation",
      [
        tc "Ship frame+1 proved" `Quick test_obligation_ship_ok;
        tc "same frame = present" `Quick test_obligation_ship_same_frame;
        tc "frame-1 rejected" `Quick test_obligation_ship_past;
        tc "unknown binding rejected" `Quick test_obligation_unknown_binding;
        tc "literal levels" `Quick test_obligation_literal_levels;
        tc "par levels equivalent" `Quick test_obligation_par_levels_equivalent;
        QCheck_alcotest.to_alcotest prop_offset_soundness;
      ] );
    ( "causality.check",
      [
        tc "section 4 example proves" `Quick test_section4_rule_passes;
        tc "min query at own time fails" `Quick test_section4_unprovable_min_query;
        tc "PvWatts with order ok" `Quick test_pvwatts_with_order_ok;
        tc "PvWatts without order: stratification error" `Quick
          test_pvwatts_without_order_stratification_error;
        tc "unchecked rules reported" `Quick test_check_reports_unchecked_rules;
      ] );
    ( "causality.strata",
      [
        tc "PvWatts acyclic" `Quick test_strata_pvwatts_acyclic;
        tc "Dijkstra locally stratified" `Quick test_strata_dijkstra_needs_local;
      ] );
  ]
