(* Tests for the core runtime: values, order relation, schemas, tuples,
   timestamps, the Delta tree, Gamma stores, reducers, and the engine
   (Ship example, set semantics, determinism across thread counts,
   -noDelta / -noGamma, runtime causality checking). *)

open Jstar_core

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "float order" true
    (Value.compare (Value.Float 1.5) (Value.Float 1.25) > 0);
  Alcotest.(check bool) "string order" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "bool order" true
    (Value.compare (Value.Bool false) (Value.Bool true) < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.Int 3) (Value.Int 3))

let test_value_conversions () =
  Alcotest.(check int) "to_int" 7 (Value.to_int (Value.Int 7));
  Alcotest.(check (float 0.0)) "int widens" 7.0 (Value.to_float (Value.Int 7));
  Alcotest.check_raises "wrong type" (Value.Type_error "expected int, got String")
    (fun () -> ignore (Value.to_int (Value.Str "x")))

let test_value_arrays () =
  let a = [| v_int 1; v_int 2 |] and b = [| v_int 1; v_int 3 |] in
  Alcotest.(check bool) "lex" true (Value.compare_arrays a b < 0);
  Alcotest.(check bool) "prefix smaller" true
    (Value.compare_arrays [| v_int 1 |] a < 0);
  Alcotest.(check bool) "equal" true (Value.equal_arrays a a)

(* ------------------------------------------------------------------ *)
(* Order relation *)

let test_order_chain () =
  let o = Order_rel.create () in
  Order_rel.declare_chain o [ "Req"; "PvWatts"; "SumMonth" ];
  Alcotest.(check bool) "Req < PvWatts rank" true
    (Order_rel.rank o "Req" < Order_rel.rank o "PvWatts");
  Alcotest.(check bool) "PvWatts < SumMonth rank" true
    (Order_rel.rank o "PvWatts" < Order_rel.rank o "SumMonth");
  Alcotest.(check bool) "provable" true (Order_rel.provably_less o "Req" "SumMonth");
  Alcotest.(check bool) "not provable reverse" false
    (Order_rel.provably_less o "SumMonth" "Req")

let test_order_incomparable () =
  let o = Order_rel.create () in
  Order_rel.declare o "A";
  Order_rel.declare o "B";
  Alcotest.(check bool) "incomparable" false (Order_rel.comparable o "A" "B");
  (* still totally ranked, deterministically by registration order *)
  Alcotest.(check bool) "deterministic extension" true
    (Order_rel.rank o "A" < Order_rel.rank o "B")

let test_order_cycle () =
  let o = Order_rel.create () in
  Order_rel.declare_less o "A" "B";
  Order_rel.declare_less o "B" "A";
  (match Order_rel.rank o "A" with
  | exception Order_rel.Cycle stuck ->
      Alcotest.(check bool) "both stuck" true
        (List.mem "A" stuck && List.mem "B" stuck)
  | _ -> Alcotest.fail "expected Cycle")

let test_order_diamond () =
  let o = Order_rel.create () in
  Order_rel.declare_less o "A" "B";
  Order_rel.declare_less o "A" "C";
  Order_rel.declare_less o "B" "D";
  Order_rel.declare_less o "C" "D";
  Alcotest.(check bool) "A<D" true (Order_rel.provably_less o "A" "D");
  Alcotest.(check bool) "B vs C incomparable" false (Order_rel.comparable o "B" "C");
  Alcotest.(check bool) "ranks respect order" true
    (Order_rel.rank o "A" < Order_rel.rank o "B"
    && Order_rel.rank o "B" < Order_rel.rank o "D"
    && Order_rel.rank o "C" < Order_rel.rank o "D")

(* ------------------------------------------------------------------ *)
(* Schema & tuple *)

let ship_program () =
  let p = Program.create () in
  let ship =
    Program.table p "Ship"
      ~columns:
        Schema.
          [ int_col "frame"; int_col "x"; int_col "y"; int_col "dx"; int_col "dy" ]
      ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "frame" ]
      ()
  in
  (p, ship)

let test_schema_validation () =
  let p = Program.create () in
  Alcotest.check_raises "duplicate column"
    (Schema.Schema_error "T: duplicate column a") (fun () ->
      ignore
        (Program.table p "T" ~columns:Schema.[ int_col "a"; int_col "a" ]
           ~orderby:[] ()));
  Alcotest.check_raises "unknown orderby field"
    (Schema.Schema_error "U: orderby refers to unknown field nope") (fun () ->
      ignore
        (Program.table p "U" ~columns:Schema.[ int_col "a" ]
           ~orderby:Schema.[ Seq "nope" ] ()))

let test_tuple_construction () =
  let _, ship = ship_program () in
  let by_pos =
    Tuple.make ship [| v_int 0; v_int 10; v_int 10; v_int 150; v_int 0 |]
  in
  let by_name =
    Tuple.build ship
      [ ("frame", v_int 0); ("x", v_int 10); ("dx", v_int 150); ("y", v_int 10) ]
  in
  (* dy omitted -> defaults to 0, matching the paper's example *)
  Alcotest.(check bool) "equal construction" true (Tuple.equal by_pos by_name);
  Alcotest.(check int) "field access" 150 (Tuple.int by_pos "dx");
  let moved = Tuple.with_fields by_pos [ ("x", v_int 160) ] in
  Alcotest.(check int) "builder copy" 160 (Tuple.int moved "x");
  Alcotest.(check int) "original untouched" 10 (Tuple.int by_pos "x")

let test_tuple_arity_and_types () =
  let _, ship = ship_program () in
  Alcotest.check_raises "arity"
    (Tuple.Tuple_error "Ship: expected 5 fields, got 2") (fun () ->
      ignore (Tuple.make ship [| v_int 0; v_int 1 |]));
  Alcotest.check_raises "type"
    (Tuple.Tuple_error "Ship.x: expected int, got String") (fun () ->
      ignore
        (Tuple.make ship
           [| v_int 0; Value.Str "oops"; v_int 0; v_int 0; v_int 0 |]))

let test_tuple_key () =
  let _, ship = ship_program () in
  let t = Tuple.make ship [| v_int 3; v_int 1; v_int 2; v_int 0; v_int 0 |] in
  Alcotest.(check bool) "key = frame" true
    (Value.equal_arrays (Tuple.key t) [| v_int 3 |])

let test_tuple_prefix () =
  let _, ship = ship_program () in
  let t = Tuple.make ship [| v_int 3; v_int 1; v_int 2; v_int 0; v_int 0 |] in
  Alcotest.(check bool) "empty prefix" true (Tuple.matches_prefix t [||]);
  Alcotest.(check bool) "good prefix" true
    (Tuple.matches_prefix t [| v_int 3; v_int 1 |]);
  Alcotest.(check bool) "bad prefix" false (Tuple.matches_prefix t [| v_int 4 |])

(* ------------------------------------------------------------------ *)
(* Timestamps *)

let test_timestamp_ordering () =
  let p, ship = ship_program () in
  let order = Program.order_rel p in
  let at frame =
    Timestamp.of_tuple order
      (Tuple.make ship [| v_int frame; v_int 0; v_int 0; v_int 0; v_int 0 |])
  in
  Alcotest.(check bool) "frame order" true (Timestamp.lt (at 1) (at 2));
  Alcotest.(check bool) "equal frames" true (Timestamp.equal (at 5) (at 5))

let test_timestamp_par_equivalence () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "step"; int_col "region" ]
      ~orderby:Schema.[ Lit "T"; Seq "step"; Par "region" ]
      ()
  in
  let order = Program.order_rel p in
  let ts step region =
    Timestamp.of_tuple order (Tuple.make t [| v_int step; v_int region |])
  in
  Alcotest.(check bool) "same step, diff region: equal class" true
    (Timestamp.equal (ts 1 0) (ts 1 9));
  Alcotest.(check bool) "step dominates" true (Timestamp.lt (ts 1 9) (ts 2 0))

let test_timestamp_literal_ranks () =
  let p = Program.create () in
  let a =
    Program.table p "A" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let b =
    Program.table p "B" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "SumMonth" ] ()
  in
  Program.order p [ "Req"; "PvWatts"; "SumMonth" ];
  let order = Program.order_rel p in
  let ts schema = Timestamp.of_tuple order (Tuple.make schema [| v_int 0 |]) in
  Alcotest.(check bool) "Req before SumMonth" true (Timestamp.lt (ts a) (ts b))

let test_timestamp_prefix_shorter_first () =
  let p = Program.create () in
  let short =
    Program.table p "Short" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Int" ] ()
  in
  let long =
    Program.table p "Long" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Int"; Seq "x" ] ()
  in
  let order = Program.order_rel p in
  let ts schema = Timestamp.of_tuple order (Tuple.make schema [| v_int 5 |]) in
  Alcotest.(check bool) "exhausted orderby comes first" true
    (Timestamp.lt (ts short) (ts long))

(* ------------------------------------------------------------------ *)
(* Delta tree *)

let delta_fixture mode =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "step"; int_col "payload" ]
      ~orderby:Schema.[ Lit "Int"; Seq "step" ]
      ()
  in
  let order = Program.order_rel p in
  let delta = Delta.create ~mode ~nlits:4 () in
  let mk step payload = Tuple.make t [| v_int step; v_int payload |] in
  let insert step payload =
    let tuple = mk step payload in
    Delta.insert delta tuple (Timestamp.of_tuple order tuple)
  in
  (delta, insert)

let run_delta_basics mode () =
  let delta, insert = delta_fixture mode in
  Alcotest.(check bool) "empty" true (Delta.is_empty delta);
  Alcotest.(check bool) "insert" true (insert 2 0);
  Alcotest.(check bool) "insert earlier" true (insert 1 0);
  Alcotest.(check bool) "dup rejected" false (insert 1 0);
  Alcotest.(check int) "size" 2 (Delta.size delta);
  Alcotest.(check int) "dedup count" 1 (Delta.deduped_total delta);
  let klass = Delta.extract_min_class delta in
  Alcotest.(check int) "min class size" 1 (List.length klass);
  Alcotest.(check int) "min first" 1 (Tuple.int (List.hd klass) "step");
  let klass2 = Delta.extract_min_class delta in
  Alcotest.(check int) "next class" 2 (Tuple.int (List.hd klass2) "step");
  Alcotest.(check (list string)) "drained" []
    (List.map Tuple.show (Delta.extract_min_class delta))

let run_delta_class_grouping mode () =
  let delta, insert = delta_fixture mode in
  ignore (insert 5 1);
  ignore (insert 5 2);
  ignore (insert 5 3);
  ignore (insert 7 1);
  let klass = Delta.extract_min_class delta in
  Alcotest.(check int) "all step-5 together" 3 (List.length klass);
  List.iter
    (fun t -> Alcotest.(check int) "step" 5 (Tuple.int t "step"))
    klass

let test_delta_par_level () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "region"; int_col "step" ]
      ~orderby:Schema.[ Lit "Int"; Par "region"; Seq "step" ]
      ()
  in
  let order = Program.order_rel p in
  let delta = Delta.create ~mode:Delta.Sequential ~nlits:2 () in
  let insert region step =
    let tuple = Tuple.make t [| v_int region; v_int step |] in
    ignore (Delta.insert delta tuple (Timestamp.of_tuple order tuple))
  in
  (* two regions, two steps each: minimal class = min step of EVERY region *)
  insert 0 1;
  insert 0 2;
  insert 1 1;
  insert 1 2;
  let klass = Delta.extract_min_class delta in
  Alcotest.(check int) "one min per region" 2 (List.length klass);
  List.iter (fun t -> Alcotest.(check int) "step 1" 1 (Tuple.int t "step")) klass;
  let klass2 = Delta.extract_min_class delta in
  Alcotest.(check int) "second wave" 2 (List.length klass2);
  List.iter (fun t -> Alcotest.(check int) "step 2" 2 (Tuple.int t "step")) klass2

let test_delta_literal_levels () =
  let p = Program.create () in
  let a =
    Program.table p "A" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Late" ] ()
  in
  let b =
    Program.table p "B" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Early" ] ()
  in
  Program.order p [ "Early"; "Late" ];
  let order = Program.order_rel p in
  (* freeze the ranks *)
  ignore (Order_rel.rank order "Late");
  let delta = Delta.create ~mode:Delta.Concurrent ~nlits:(Order_rel.count order) () in
  let put schema x =
    let t = Tuple.make schema [| v_int x |] in
    ignore (Delta.insert delta t (Timestamp.of_tuple order t))
  in
  put a 1;
  put b 2;
  let first = Delta.extract_min_class delta in
  Alcotest.(check (list string)) "Early drains first" [ "B(2)" ]
    (List.map Tuple.show first);
  let second = Delta.extract_min_class delta in
  Alcotest.(check (list string)) "Late second" [ "A(1)" ]
    (List.map Tuple.show second)

let test_delta_concurrent_inserts () =
  let delta, _ = delta_fixture Delta.Concurrent in
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "step"; int_col "payload" ]
      ~orderby:Schema.[ Lit "Int"; Seq "step" ]
      ()
  in
  let order = Program.order_rel p in
  let domains = 4 and per_domain = 2_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let tuple = Tuple.make t [| v_int (i mod 50); v_int ((d * per_domain) + i) |] in
              ignore (Delta.insert delta tuple (Timestamp.of_tuple order tuple))
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "all inserted" (domains * per_domain) (Delta.size delta);
  (* drain and verify step-monotone classes partition the set *)
  let total = ref 0 and last_step = ref (-1) in
  let rec drain () =
    match Delta.extract_min_class delta with
    | [] -> ()
    | klass ->
        let step = Tuple.int (List.hd klass) "step" in
        Alcotest.(check bool) "monotone steps" true (step > !last_step);
        last_step := step;
        List.iter
          (fun t -> Alcotest.(check int) "class homogeneous" step (Tuple.int t "step"))
          klass;
        total := !total + List.length klass;
        drain ()
  in
  drain ();
  Alcotest.(check int) "drained all" (domains * per_domain) !total

(* Batched insertion must agree with element-wise insertion on set
   semantics: of equal tuples in one batch the first wins, tuples
   already pending are duplicates, and an empty batch is a no-op. *)
let run_delta_insert_batch mode () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "region"; int_col "v" ]
      ~orderby:Schema.[ Lit "T"; Par "region" ]
      ()
  in
  let order = Program.order_rel p in
  let delta = Delta.create ~mode ~nlits:1 () in
  let mk r v = Tuple.make t [| v_int r; v_int v |] in
  let ts tup = Timestamp.of_tuple order tup in
  let pre = mk 0 7 in
  Alcotest.(check bool) "pre insert" true (Delta.insert delta pre (ts pre));
  let items = [| mk 0 1; mk 1 2; mk 0 1; mk 0 7; mk 1 3 |] in
  let tss = Array.map ts items in
  let res = Delta.insert_batch delta items tss (Array.length items) in
  Alcotest.(check (array bool)) "first occurrence wins"
    [| true; true; false; false; true |]
    res;
  Alcotest.(check int) "size" 4 (Delta.size delta);
  Alcotest.(check int) "dedup total" 2 (Delta.deduped_total delta);
  Alcotest.(check int) "inserted total" 4 (Delta.inserted_total delta);
  let res0 = Delta.insert_batch delta [||] [||] 0 in
  Alcotest.(check int) "empty batch result" 0 (Array.length res0);
  Alcotest.(check int) "empty batch is no-op" 4 (Delta.size delta);
  (* the two par subtrees are one equivalence class *)
  let klass = Delta.extract_min_class delta in
  Alcotest.(check int) "whole class extracted" 4 (List.length klass);
  Alcotest.(check bool) "drained" true (Delta.is_empty delta)

(* ------------------------------------------------------------------ *)
(* Stores *)

let pv_schema () =
  let p = Program.create () in
  ( p,
    Program.table p "PvWatts"
      ~columns:
        Schema.
          [
            int_col "year";
            int_col "month";
            int_col "day";
            int_col "hour";
            int_col "power";
          ]
      ~orderby:Schema.[ Lit "PvWatts" ]
      () )

let store_contract store schema =
  let mk y m d h pw =
    Tuple.make schema [| v_int y; v_int m; v_int d; v_int h; v_int pw |]
  in
  Alcotest.(check bool) "insert" true (store.Store.insert (mk 2012 1 1 0 5));
  Alcotest.(check bool) "dup" false (store.Store.insert (mk 2012 1 1 0 5));
  Alcotest.(check bool) "insert2" true (store.Store.insert (mk 2012 1 2 0 7));
  Alcotest.(check bool) "insert3" true (store.Store.insert (mk 2012 2 1 0 9));
  Alcotest.(check bool) "mem" true (store.Store.mem (mk 2012 1 1 0 5));
  Alcotest.(check bool) "not mem" false (store.Store.mem (mk 2012 3 1 0 5));
  Alcotest.(check int) "size" 3 (store.Store.size ());
  let count prefix =
    let n = ref 0 in
    store.Store.iter_prefix prefix (fun _ -> incr n);
    !n
  in
  Alcotest.(check int) "prefix jan" 2 (count [| v_int 2012; v_int 1 |]);
  Alcotest.(check int) "prefix feb" 1 (count [| v_int 2012; v_int 2 |]);
  Alcotest.(check int) "prefix year" 3 (count [| v_int 2012 |]);
  Alcotest.(check int) "prefix nothing" 0 (count [| v_int 2013 |]);
  let all = ref 0 in
  store.Store.iter (fun _ -> incr all);
  Alcotest.(check int) "iter all" 3 !all

let test_store_tree () =
  let _, s = pv_schema () in
  store_contract (Store.tree s) s

let test_store_skiplist () =
  let _, s = pv_schema () in
  store_contract (Store.skiplist s) s

let test_store_hash_index () =
  let _, s = pv_schema () in
  store_contract (Store.hash_index ~prefix_len:2 s) s

let test_store_tree_ordered_iteration () =
  let _, s = pv_schema () in
  let store = Store.tree s in
  let mk d = Tuple.make s [| v_int 2012; v_int 1; v_int d; v_int 0; v_int 0 |] in
  List.iter (fun d -> ignore (store.Store.insert (mk d))) [ 3; 1; 2 ];
  let days = ref [] in
  store.Store.iter_prefix [| v_int 2012; v_int 1 |] (fun t ->
      days := Tuple.int t "day" :: !days);
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] (List.rev !days)

(* Store.insert_batch must match element-wise insert on set semantics
   and respect the [lo, hi) window, for every family and both
   comparator/table variants. *)
let test_store_insert_batch () =
  let p = Program.create () in
  let s =
    Program.table p "S"
      ~columns:Schema.[ int_col "k"; int_col "v" ]
      ~orderby:Schema.[ Lit "S" ]
      ()
  in
  let mk k v = Tuple.make s [| v_int k; v_int v |] in
  let check_store name store =
    Alcotest.(check bool) (name ^ ": pre insert") true
      (store.Store.insert (mk 0 0));
    (* arr.(0) sits below [lo] and must be ignored; inside the window:
       a fresh tuple, an in-batch duplicate, a duplicate of the
       pre-inserted tuple, another fresh tuple *)
    let arr = [| mk 9 9; mk 1 1; mk 1 1; mk 0 0; mk 2 2 |] in
    let res = store.Store.insert_batch arr 1 5 in
    Alcotest.(check (array bool)) (name ^ ": dedup flags")
      [| true; false; false; true |]
      res;
    Alcotest.(check int) (name ^ ": size") 3 (store.Store.size ());
    Alcotest.(check bool) (name ^ ": inserted visible") true
      (store.Store.mem (mk 2 2));
    Alcotest.(check bool) (name ^ ": below-lo skipped") false
      (store.Store.mem (mk 9 9));
    let empty = store.Store.insert_batch arr 2 2 in
    Alcotest.(check int) (name ^ ": empty window") 0 (Array.length empty)
  in
  check_store "tree" (Store.tree s);
  check_store "skiplist" (Store.skiplist s);
  check_store "hash" (Store.hash_index ~prefix_len:1 s);
  check_store "indexed"
    (fst (Store.indexed ~prefix_lens:[ 1 ] s (Store.tree s)))

let test_store_native_int () =
  let p = Program.create () in
  let m =
    Program.table p "Matrix"
      ~columns:Schema.[ int_col "row"; int_col "col"; int_col "value" ]
      ~key:2 ~orderby:[] ()
  in
  let store, handle = Store.native_int_array ~dims:[| 3; 4 |] m in
  let mk r c v = Tuple.make m [| v_int r; v_int c; v_int v |] in
  Alcotest.(check bool) "insert" true (store.Store.insert (mk 1 2 42));
  Alcotest.(check bool) "dup key" false (store.Store.insert (mk 1 2 99));
  Alcotest.(check int) "typed get" 42 (handle.Store.ia_get [| 1; 2 |]);
  Alcotest.(check bool) "present" true (handle.Store.ia_present [| 1; 2 |]);
  Alcotest.(check bool) "absent" false (handle.Store.ia_present [| 0; 0 |]);
  handle.Store.ia_set_raw [| 2; 3 |] 7;
  Alcotest.(check int) "raw set" 7 (handle.Store.ia_get [| 2; 3 |]);
  Alcotest.(check int) "size" 2 (store.Store.size ());
  let seen = ref [] in
  store.Store.iter (fun t -> seen := Tuple.show t :: !seen);
  Alcotest.(check (list string)) "iter reconstructs tuples"
    [ "Matrix(1, 2, 42)"; "Matrix(2, 3, 7)" ]
    (List.sort compare !seen);
  Alcotest.check_raises "out of range"
    (Invalid_argument "native store: key 5 out of range [0,3)") (fun () ->
      ignore (handle.Store.ia_get [| 5; 0 |]))

(* ------------------------------------------------------------------ *)
(* Reducers *)

let test_statistics () =
  let open Reducer.Statistics in
  let s = List.fold_left add empty [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "sum" 10.0 s.sum;
  Alcotest.(check (float 1e-9)) "mean" 2.5 (mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max;
  Alcotest.(check (float 1e-9)) "variance" 1.25 (variance s)

let test_statistics_combine () =
  let open Reducer.Statistics in
  let xs = List.init 100 (fun i -> float_of_int i *. 0.7) in
  let whole = List.fold_left add empty xs in
  let left = List.fold_left add empty (List.filteri (fun i _ -> i < 37) xs) in
  let right = List.fold_left add empty (List.filteri (fun i _ -> i >= 37) xs) in
  let combined = combine left right in
  Alcotest.(check int) "count" whole.count combined.count;
  Alcotest.(check (float 1e-9)) "mean" (mean whole) (mean combined);
  Alcotest.(check (float 1e-6)) "variance" (variance whole) (variance combined)

let prop_statistics_combine_associative =
  QCheck.Test.make ~name:"Statistics.combine order-insensitive" ~count:100
    QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      let open Reducer.Statistics in
      let sx = List.fold_left add empty xs in
      let sy = List.fold_left add empty ys in
      let ab = combine sx sy and ba = combine sy sx in
      ab.count = ba.count
      && Float.abs (ab.sum -. ba.sum) < 1e-6
      && (ab.count = 0 || Float.abs (mean ab -. mean ba) < 1e-6))

let test_scan_sequential () =
  let got = Reducer.scan_array Reducer.int_sum [| 1; 2; 3; 4 |] in
  Alcotest.(check (array int)) "inclusive prefix sums" [| 1; 3; 6; 10 |] got

let test_scan_parallel () =
  let pool = Jstar_sched.Pool.create ~num_workers:2 () in
  Fun.protect
    ~finally:(fun () -> Jstar_sched.Pool.shutdown pool)
    (fun () ->
      let n = 100_000 in
      let arr = Array.init n (fun i -> (i mod 7) - 3) in
      let seq = Reducer.scan_array Reducer.int_sum arr in
      let par = Reducer.parallel_scan_array pool Reducer.int_sum arr in
      Alcotest.(check bool) "parallel scan = sequential scan" true (seq = par))

let test_parallel_reduce_array () =
  let pool = Jstar_sched.Pool.create ~num_workers:2 () in
  Fun.protect
    ~finally:(fun () -> Jstar_sched.Pool.shutdown pool)
    (fun () ->
      let arr = Array.init 10_000 float_of_int in
      let s =
        Reducer.parallel_reduce_array pool Reducer.Statistics.monoid
          (fun x -> Reducer.Statistics.add Reducer.Statistics.empty x)
          arr
      in
      Alcotest.(check int) "count" 10_000 s.Reducer.Statistics.count;
      Alcotest.(check (float 1e-6)) "mean" 4999.5 (Reducer.Statistics.mean s))

(* ------------------------------------------------------------------ *)
(* Engine: the Ship example of §3 *)

let ship_moving_program () =
  let p, ship = ship_program () in
  Program.rule p "move_right" ~trigger:ship
    ~puts:
      [
        Spec.put "Ship"
          ~ts:[ Spec.bind "frame" (Spec.Add (Spec.Field "frame", 1)) ]
          ~when_:"x < 400";
      ]
    (fun ctx s ->
      if Tuple.int s "x" < 400 then
        ctx.Rule.put
          (Tuple.make ship
             [|
               v_int (Tuple.int s "frame" + 1);
               v_int (Tuple.int s "x" + 150);
               v_int (Tuple.int s "y");
               v_int (Tuple.int s "dx");
               v_int (Tuple.int s "dy");
             |]));
  Program.output p ship (fun t ->
      Printf.sprintf "frame=%d x=%d" (Tuple.int t "frame") (Tuple.int t "x"));
  let init = [ Tuple.make ship [| v_int 0; v_int 10; v_int 10; v_int 150; v_int 0 |] ] in
  (p, init)

let expected_ship_outputs =
  [ "frame=0 x=10"; "frame=1 x=160"; "frame=2 x=310"; "frame=3 x=460" ]

let test_engine_ship_sequential () =
  let p, init = ship_moving_program () in
  let r = Engine.run_program ~init p Config.default in
  Alcotest.(check (list string)) "trajectory" expected_ship_outputs r.Engine.outputs;
  Alcotest.(check int) "steps = frames" 4 r.Engine.steps;
  Alcotest.(check int) "tuples" 4 r.Engine.tuples_processed

let test_engine_ship_parallel_matches () =
  let p, init = ship_moving_program () in
  let frozen = Program.freeze p in
  let seq = Engine.run ~init frozen Config.default in
  let par = Engine.run ~init frozen (Config.parallel ~threads:2 ()) in
  Alcotest.(check (list string)) "deterministic across threads"
    seq.Engine.outputs par.Engine.outputs

let test_engine_unconditional_rule_diverges () =
  (* The paper's first Ship rule loops forever; max_steps catches it. *)
  let p, ship = ship_program () in
  Program.rule p "move_forever" ~trigger:ship (fun ctx s ->
      ctx.Rule.put (Tuple.with_fields s [ ("frame", v_int (Tuple.int s "frame" + 1)) ]));
  let init = [ Tuple.make ship [| v_int 0; v_int 0; v_int 0; v_int 0; v_int 0 |] ] in
  Alcotest.check_raises "step limit" (Engine.Step_limit_exceeded 50) (fun () ->
      ignore
        (Engine.run_program ~init p { Config.default with max_steps = Some 50 }))

let test_engine_set_semantics () =
  (* Two rules put the same tuple; it must be processed once. *)
  let p = Program.create () in
  let src =
    Program.table p "Src" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Src" ] ()
  in
  let dst =
    Program.table p "Dst" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Dst" ] ()
  in
  Program.order p [ "Src"; "Dst" ];
  let fired = Atomic.make 0 in
  Program.rule p "dup_a" ~trigger:src (fun ctx s ->
      ctx.Rule.put (Tuple.make dst [| Tuple.get s 0 |]));
  Program.rule p "dup_b" ~trigger:src (fun ctx s ->
      ctx.Rule.put (Tuple.make dst [| Tuple.get s 0 |]));
  Program.rule p "count" ~trigger:dst (fun _ _ -> Atomic.incr fired);
  let init = [ Tuple.make src [| v_int 7 |] ] in
  let r = Engine.run_program ~init p Config.default in
  Alcotest.(check int) "Dst fired once" 1 (Atomic.get fired);
  Alcotest.(check int) "one dedup recorded" 1 r.Engine.delta_deduped

let test_engine_query_past () =
  (* SumMonth-style: a later-ordered tuple aggregates earlier tuples. *)
  let p = Program.create () in
  let item =
    Program.table p "Item"
      ~columns:Schema.[ int_col "group"; int_col "v" ]
      ~orderby:Schema.[ Lit "Item" ] ()
  in
  let total =
    Program.table p "Total" ~columns:Schema.[ int_col "group" ]
      ~orderby:Schema.[ Lit "Total" ] ()
  in
  Program.order p [ "Item"; "Total" ];
  Program.rule p "request_total" ~trigger:item
    ~puts:[ Spec.put "Total" ]
    (fun ctx i -> ctx.Rule.put (Tuple.make total [| Tuple.get i 0 |]));
  Program.rule p "sum_group" ~trigger:total
    ~reads:[ Spec.read ~kind:Spec.Aggregate "Item" ]
    (fun ctx t ->
      let g = Tuple.int t "group" in
      let sum =
        Query.fold ctx item ~prefix:[| v_int g |] ~init:0
          ~f:(fun acc it -> acc + Tuple.int it "v")
          ()
      in
      ctx.Rule.println (Printf.sprintf "group %d: %d" g sum));
  let init =
    [
      Tuple.make item [| v_int 1; v_int 10 |];
      Tuple.make item [| v_int 1; v_int 20 |];
      Tuple.make item [| v_int 2; v_int 5 |];
    ]
  in
  let frozen = Program.freeze p in
  let check config =
    let r = Engine.run ~init frozen config in
    Alcotest.(check (list string)) "aggregates" [ "group 1: 30"; "group 2: 5" ]
      r.Engine.outputs
  in
  check Config.default;
  check (Config.parallel ~threads:2 ())

let test_engine_no_delta () =
  (* -noDelta on a non-trigger table must preserve results and skip the
     Delta tree entirely. *)
  let p = Program.create () in
  let item =
    Program.table p "Item"
      ~columns:Schema.[ int_col "group"; int_col "v" ]
      ~orderby:Schema.[ Lit "Item" ] ()
  in
  let probe =
    Program.table p "Probe" ~columns:Schema.[ int_col "group" ]
      ~orderby:Schema.[ Lit "Probe" ] ()
  in
  Program.order p [ "Item"; "Probe" ];
  Program.rule p "sum" ~trigger:probe (fun ctx t ->
      let g = Tuple.int t "group" in
      let n = Query.count ctx item ~prefix:[| v_int g |] () in
      ctx.Rule.println (Printf.sprintf "count %d: %d" g n));
  let init =
    [
      Tuple.make item [| v_int 1; v_int 10 |];
      Tuple.make item [| v_int 1; v_int 20 |];
      Tuple.make probe [| v_int 1 |];
    ]
  in
  let frozen = Program.freeze p in
  let base = Engine.run ~init frozen Config.default in
  let nodelta =
    Engine.run ~init frozen { Config.default with no_delta = [ "Item" ] }
  in
  Alcotest.(check (list string)) "same outputs" base.Engine.outputs
    nodelta.Engine.outputs;
  let delta_items r =
    match Table_stats.get r.Engine.stats "Item" with
    | Some c -> Table_stats.read c.Table_stats.delta_inserts
    | None -> Alcotest.fail "no Item stats"
  in
  Alcotest.(check int) "baseline goes through Delta" 2 (delta_items base);
  Alcotest.(check int) "-noDelta bypasses Delta" 0 (delta_items nodelta)

let test_engine_no_gamma () =
  (* -noGamma on a trigger-only table: rules still fire, nothing stored. *)
  let p = Program.create () in
  let evt =
    Program.table p "Evt" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Evt" ] ()
  in
  let count = Atomic.make 0 in
  Program.rule p "consume" ~trigger:evt (fun _ _ -> Atomic.incr count);
  let init = List.init 5 (fun i -> Tuple.make evt [| v_int i |]) in
  let r, gamma_of =
    Engine.run_with_gamma ~init (Program.freeze p)
      { Config.default with no_gamma = [ "Evt" ] }
  in
  Alcotest.(check int) "all fired" 5 (Atomic.get count);
  Alcotest.(check int) "nothing stored" 0 ((gamma_of evt).Store.size ());
  Alcotest.(check int) "tuples processed" 5 r.Engine.tuples_processed

let test_engine_runtime_causality () =
  let p = Program.create () in
  let t =
    Program.table p "T" ~columns:Schema.[ int_col "step" ]
      ~orderby:Schema.[ Lit "Int"; Seq "step" ] ()
  in
  Program.rule p "back_in_time" ~trigger:t (fun ctx s ->
      let step = Tuple.int s "step" in
      if step = 1 then ctx.Rule.put (Tuple.make t [| v_int 0 |]));
  let init = [ Tuple.make t [| v_int 1 |] ] in
  (match
     Engine.run_program ~init p
       { Config.default with runtime_causality_check = true }
   with
  | exception Engine.Causality_violation _ -> ()
  | _ -> Alcotest.fail "expected Causality_violation")

let test_engine_custom_store_override () =
  (* Swap the Gamma store of a table via config only — no program change. *)
  let p = Program.create () in
  let item =
    Program.table p "Item"
      ~columns:Schema.[ int_col "k"; int_col "v" ]
      ~orderby:Schema.[ Lit "Item" ] ()
  in
  let probe =
    Program.table p "Probe" ~columns:Schema.[ int_col "k" ]
      ~orderby:Schema.[ Lit "Probe" ] ()
  in
  Program.order p [ "Item"; "Probe" ];
  Program.rule p "lookup" ~trigger:probe (fun ctx t ->
      let k = Tuple.int t "k" in
      let n = Query.count ctx item ~prefix:[| v_int k |] () in
      ctx.Rule.println (Printf.sprintf "%d->%d" k n));
  let init =
    [
      Tuple.make item [| v_int 1; v_int 5 |];
      Tuple.make item [| v_int 1; v_int 6 |];
      Tuple.make probe [| v_int 1 |];
    ]
  in
  let frozen = Program.freeze p in
  let outputs config = (Engine.run ~init frozen config).Engine.outputs in
  let base = outputs Config.default in
  Alcotest.(check (list string)) "hash index store" base
    (outputs
       { Config.default with stores = [ ("Item", Store.Hash_index 1) ] });
  Alcotest.(check (list string)) "skiplist store" base
    (outputs { Config.default with stores = [ ("Item", Store.Skiplist) ] })

let test_engine_action_handler () =
  (* External-action tuples: handler runs when the tuple leaves Delta. *)
  let p = Program.create () in
  let req =
    Program.table p "WriteReq" ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let log = ref [] in
  Program.action p req (fun _ t -> log := Tuple.int t "x" :: !log);
  let init = [ Tuple.make req [| v_int 3 |]; Tuple.make req [| v_int 1 |] ] in
  ignore (Engine.run_program ~init p Config.default);
  Alcotest.(check (list int)) "deterministic order" [ 1; 3 ] (List.rev !log)

let test_engine_frozen_program_rejects_additions () =
  let p, _ = ship_program () in
  ignore (Program.freeze p);
  (match Program.table p "New" ~columns:Schema.[ int_col "x" ] ~orderby:[] () with
  | exception Program.Frozen _ -> ()
  | _ -> Alcotest.fail "expected Frozen")

(* Determinism property: random micro-programs produce identical output
   under 1 and 2 threads. *)
let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine deterministic across thread counts" ~count:20
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (pair (int_range 0 9) (int_range 0 99)))
    (fun seeds ->
      let p = Program.create () in
      let src =
        Program.table p "Src"
          ~columns:Schema.[ int_col "g"; int_col "v" ]
          ~orderby:Schema.[ Lit "Src" ] ()
      in
      let agg =
        Program.table p "Agg" ~columns:Schema.[ int_col "g" ]
          ~orderby:Schema.[ Lit "Agg" ] ()
      in
      Program.order p [ "Src"; "Agg" ];
      Program.rule p "req" ~trigger:src (fun ctx s ->
          ctx.Rule.put (Tuple.make agg [| Tuple.get s 0 |]));
      Program.rule p "sum" ~trigger:agg (fun ctx a ->
          let g = Tuple.int a "g" in
          let s =
            Query.fold ctx src ~prefix:[| v_int g |] ~init:0
              ~f:(fun acc t -> acc + Tuple.int t "v")
              ()
          in
          ctx.Rule.println (Printf.sprintf "%d:%d" g s));
      let init = List.map (fun (g, v) -> Tuple.make src [| v_int g; v_int v |]) seeds in
      let frozen = Program.freeze p in
      let r1 = Engine.run ~init frozen Config.default in
      let r2 = Engine.run ~init frozen (Config.parallel ~threads:2 ()) in
      r1.Engine.outputs = r2.Engine.outputs)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "core.value",
      [
        tc "compare" `Quick test_value_compare;
        tc "conversions" `Quick test_value_conversions;
        tc "array ops" `Quick test_value_arrays;
      ] );
    ( "core.order",
      [
        tc "chain" `Quick test_order_chain;
        tc "incomparable" `Quick test_order_incomparable;
        tc "cycle detection" `Quick test_order_cycle;
        tc "diamond" `Quick test_order_diamond;
      ] );
    ( "core.schema_tuple",
      [
        tc "schema validation" `Quick test_schema_validation;
        tc "construction forms" `Quick test_tuple_construction;
        tc "arity and types" `Quick test_tuple_arity_and_types;
        tc "primary key" `Quick test_tuple_key;
        tc "prefix match" `Quick test_tuple_prefix;
      ] );
    ( "core.timestamp",
      [
        tc "seq ordering" `Quick test_timestamp_ordering;
        tc "par equivalence" `Quick test_timestamp_par_equivalence;
        tc "literal ranks" `Quick test_timestamp_literal_ranks;
        tc "shorter prefix first" `Quick test_timestamp_prefix_shorter_first;
      ] );
    ( "core.delta",
      [
        tc "basics (sequential)" `Quick (run_delta_basics Delta.Sequential);
        tc "basics (concurrent)" `Quick (run_delta_basics Delta.Concurrent);
        tc "class grouping (sequential)" `Quick
          (run_delta_class_grouping Delta.Sequential);
        tc "class grouping (concurrent)" `Quick
          (run_delta_class_grouping Delta.Concurrent);
        tc "par level extraction" `Quick test_delta_par_level;
        tc "literal levels" `Quick test_delta_literal_levels;
        tc "concurrent inserts + drain" `Slow test_delta_concurrent_inserts;
        tc "insert_batch dedup (seq)" `Quick
          (run_delta_insert_batch Delta.Sequential);
        tc "insert_batch dedup (conc)" `Quick
          (run_delta_insert_batch Delta.Concurrent);
      ] );
    ( "core.store",
      [
        tc "tree contract" `Quick test_store_tree;
        tc "skiplist contract" `Quick test_store_skiplist;
        tc "hash index contract" `Quick test_store_hash_index;
        tc "tree ordered prefix" `Quick test_store_tree_ordered_iteration;
        tc "insert_batch dedup (all families)" `Quick test_store_insert_batch;
        tc "native int array" `Quick test_store_native_int;
      ] );
    ( "core.reducer",
      [
        tc "statistics" `Quick test_statistics;
        tc "statistics combine" `Quick test_statistics_combine;
        QCheck_alcotest.to_alcotest prop_statistics_combine_associative;
        tc "sequential scan" `Quick test_scan_sequential;
        tc "parallel scan" `Quick test_scan_parallel;
        tc "parallel statistics reduce" `Quick test_parallel_reduce_array;
      ] );
    ( "core.engine",
      [
        tc "Ship trajectory (§3)" `Quick test_engine_ship_sequential;
        tc "Ship parallel = sequential" `Quick test_engine_ship_parallel_matches;
        tc "divergent rule hits step limit" `Quick
          test_engine_unconditional_rule_diverges;
        tc "set semantics dedup" `Quick test_engine_set_semantics;
        tc "aggregate over the past" `Quick test_engine_query_past;
        tc "-noDelta bypass" `Quick test_engine_no_delta;
        tc "-noGamma trigger-only" `Quick test_engine_no_gamma;
        tc "runtime causality check" `Quick test_engine_runtime_causality;
        tc "store override via config" `Quick test_engine_custom_store_override;
        tc "action handlers" `Quick test_engine_action_handler;
        tc "frozen program locked" `Quick test_engine_frozen_program_rejects_additions;
        QCheck_alcotest.to_alcotest prop_engine_deterministic;
      ] );
  ]
