(* Tests for the CSV substrate: slice parsing, record iteration, chunked
   region alignment (including boundaries landing exactly on newlines),
   parallel reading, and the synthetic PVWatts dataset. *)

module Parse = Jstar_csv.Parse
module Chunked = Jstar_csv.Chunked
module Pvwatts_data = Jstar_csv.Pvwatts_data

let b s = Bytes.of_string s

(* ------------------------------------------------------------------ *)
(* Parse *)

let test_int_of_slice () =
  let data = b "123,-45,0" in
  Alcotest.(check int) "123" 123 (Parse.int_of_slice data 0 3);
  Alcotest.(check int) "-45" (-45) (Parse.int_of_slice data 4 3);
  Alcotest.(check int) "0" 0 (Parse.int_of_slice data 8 1)

let test_int_of_slice_errors () =
  let data = b "12x,-" in
  (match Parse.int_of_slice data 0 3 with
  | exception Parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad digit accepted");
  (match Parse.int_of_slice data 4 1 with
  | exception Parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "lone minus accepted");
  match Parse.int_of_slice data 0 0 with
  | exception Parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "empty accepted"

let test_iter_fields () =
  let data = b "2012,7,14,9,3500" in
  let fields = ref [] in
  let n =
    Parse.iter_fields data 0 (Bytes.length data) (fun i pos len ->
        fields := (i, Parse.int_of_slice data pos len) :: !fields)
  in
  Alcotest.(check int) "count" 5 n;
  Alcotest.(check (list (pair int int)))
    "values"
    [ (0, 2012); (1, 7); (2, 14); (3, 9); (4, 3500) ]
    (List.rev !fields)

let test_iter_fields_empty_field () =
  let data = b "1,,3" in
  let lens = ref [] in
  ignore (Parse.iter_fields data 0 3 (fun _ _ len -> lens := len :: !lens));
  ignore !lens;
  let lens = ref [] in
  ignore
    (Parse.iter_fields data 0 (Bytes.length data) (fun _ _ len ->
         lens := len :: !lens));
  Alcotest.(check (list int)) "middle field empty" [ 1; 0; 1 ] (List.rev !lens)

let test_iter_records () =
  let data = b "a\nbb\n\nccc\n" in
  let recs = ref [] in
  Parse.iter_records data 0 (Bytes.length data) (fun s e ->
      recs := Bytes.sub_string data s (e - s) :: !recs);
  Alcotest.(check (list string)) "records skip empties" [ "a"; "bb"; "ccc" ]
    (List.rev !recs)

let test_iter_records_no_trailing_newline () =
  let data = b "a\nbb" in
  let recs = ref [] in
  Parse.iter_records data 0 (Bytes.length data) (fun s e ->
      recs := Bytes.sub_string data s (e - s) :: !recs);
  Alcotest.(check (list string)) "trailing record" [ "a"; "bb" ] (List.rev !recs)

let test_int_fields_into () =
  let data = b "1,2,3,4,5" in
  let out = Array.make 5 0 in
  let n = Parse.int_fields_into data 0 (Bytes.length data) out in
  Alcotest.(check int) "count" 5 n;
  Alcotest.(check (array int)) "parsed" [| 1; 2; 3; 4; 5 |] out

(* ------------------------------------------------------------------ *)
(* Chunked *)

let lines_of_regions data n =
  Chunked.regions data n
  |> List.concat_map (fun r ->
         let acc = ref [] in
         Chunked.iter_region data r (fun s e ->
             acc := Bytes.sub_string data s (e - s) :: !acc);
         List.rev !acc)

let test_regions_cover_exactly_once () =
  let rows = List.init 100 (fun i -> Printf.sprintf "%d,%d" i (i * i)) in
  let data = b (String.concat "\n" rows ^ "\n") in
  (* every region count from 1 to 10 must see each record exactly once *)
  for n = 1 to 10 do
    let seen = lines_of_regions data n in
    if seen <> rows then
      Alcotest.failf "n=%d: expected %d records, got %d (or wrong order)" n
        (List.length rows) (List.length seen)
  done

let test_regions_boundary_on_newline () =
  (* Craft data where a nominal boundary lands exactly on a line start:
     8 records of 4 bytes each = 32 bytes; n=4 -> boundaries at 8,16,24,
     all of which are line starts. *)
  let data = b "aa\nbb\ncc\ndd\nee\nff\ngg\nhh\n" in
  let seen = lines_of_regions data 4 in
  Alcotest.(check (list string)) "no record lost or duplicated"
    [ "aa"; "bb"; "cc"; "dd"; "ee"; "ff"; "gg"; "hh" ]
    seen

let test_regions_more_regions_than_records () =
  let data = b "only\n" in
  let seen = lines_of_regions data 8 in
  Alcotest.(check (list string)) "single record" [ "only" ] seen

let test_parallel_read () =
  let pool = Jstar_sched.Pool.create ~num_workers:2 () in
  Fun.protect
    ~finally:(fun () -> Jstar_sched.Pool.shutdown pool)
    (fun () ->
      let rows = List.init 10_000 (fun i -> string_of_int i) in
      let data = b (String.concat "\n" rows ^ "\n") in
      let sum = Atomic.make 0 in
      let count = Atomic.make 0 in
      Chunked.parallel_read pool data ~num_regions:8 (fun _region s e ->
          let v = Parse.int_of_slice data s (e - s) in
          ignore (Atomic.fetch_and_add sum v);
          Atomic.incr count);
      Alcotest.(check int) "count" 10_000 (Atomic.get count);
      Alcotest.(check int) "sum" (10_000 * 9_999 / 2) (Atomic.get sum))

let test_file_roundtrip () =
  let path = Filename.temp_file "jstar_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let data = b "x,y\n1,2\n" in
      Chunked.to_file path data;
      Alcotest.(check string) "roundtrip" (Bytes.to_string data)
        (Bytes.to_string (Chunked.of_file path)))

(* ------------------------------------------------------------------ *)
(* PVWatts synthetic data *)

let test_pvwatts_record_count () =
  Alcotest.(check int) "8760 per installation" 8760
    Pvwatts_data.records_per_installation;
  Alcotest.(check int) "paper-scale count" 8_760_000
    (Pvwatts_data.record_count ~installations:1000)

let test_pvwatts_orderings_same_multiset () =
  let collect ordering =
    let acc = ref [] in
    Pvwatts_data.iter ~installations:2 ~ordering
      (fun ~site ~month ~day ~hour ~power ->
        acc := (site, month, day, hour, power) :: !acc);
    List.sort compare !acc
  in
  Alcotest.(check bool) "same records in both orderings" true
    (collect Pvwatts_data.Month_major = collect Pvwatts_data.Round_robin)

let test_pvwatts_month_major_is_sorted () =
  let months = ref [] in
  Pvwatts_data.iter ~installations:1 ~ordering:Pvwatts_data.Month_major
    (fun ~site:_ ~month ~day:_ ~hour:_ ~power:_ -> months := month :: !months);
  let ms = List.rev !months in
  Alcotest.(check bool) "non-decreasing months" true
    (List.for_all2 (fun a b -> a <= b) (List.filteri (fun i _ -> i < List.length ms - 1) ms) (List.tl ms))

let test_pvwatts_round_robin_interleaves () =
  (* the first 12 records of the round-robin ordering with 1 installation
     must touch 12 distinct months *)
  let seen = ref [] in
  (try
     Pvwatts_data.iter ~installations:1 ~ordering:Pvwatts_data.Round_robin
       (fun ~site:_ ~month ~day:_ ~hour:_ ~power:_ ->
         seen := month :: !seen;
         if List.length !seen >= 12 then raise Exit)
   with Exit -> ());
  Alcotest.(check int) "12 distinct months" 12
    (List.length (List.sort_uniq compare !seen))

let test_pvwatts_power_plausible () =
  Pvwatts_data.iter ~installations:1 ~ordering:Pvwatts_data.Month_major
    (fun ~site:_ ~month:_ ~day:_ ~hour ~power ->
      if power < 0 then Alcotest.fail "negative power";
      if hour < 6 || hour > 19 then
        Alcotest.(check int) "night is zero" 0 power;
      if power > 5000 then Alcotest.failf "implausible power %d" power)

let test_pvwatts_csv_parses_back () =
  let data = Pvwatts_data.to_bytes ~installations:1 ~ordering:Pvwatts_data.Month_major in
  let fields = Array.make 6 0 in
  let count = ref 0 in
  let sum = Array.make 13 0 in
  Parse.iter_records data 0 (Bytes.length data) (fun s e ->
      let n = Parse.int_fields_into data s e fields in
      Alcotest.(check int) "6 fields" 6 n;
      Alcotest.(check int) "year" Pvwatts_data.year fields.(0);
      incr count;
      sum.(fields.(1)) <- sum.(fields.(1)) + fields.(5));
  Alcotest.(check int) "all records" 8760 !count;
  (* cross-check against the reference statistics *)
  List.iter
    (fun (m, _cnt, total, _mean) ->
      Alcotest.(check int) (Printf.sprintf "month %d sum" m) total sum.(m))
    (Pvwatts_data.reference_monthly_stats ~installations:1)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "csv.parse",
      [
        tc "int_of_slice" `Quick test_int_of_slice;
        tc "int_of_slice errors" `Quick test_int_of_slice_errors;
        tc "iter_fields" `Quick test_iter_fields;
        tc "empty fields" `Quick test_iter_fields_empty_field;
        tc "iter_records" `Quick test_iter_records;
        tc "no trailing newline" `Quick test_iter_records_no_trailing_newline;
        tc "int_fields_into" `Quick test_int_fields_into;
      ] );
    ( "csv.chunked",
      [
        tc "regions cover exactly once" `Quick test_regions_cover_exactly_once;
        tc "boundary on newline" `Quick test_regions_boundary_on_newline;
        tc "more regions than records" `Quick test_regions_more_regions_than_records;
        tc "parallel read" `Quick test_parallel_read;
        tc "file roundtrip" `Quick test_file_roundtrip;
      ] );
    ( "csv.pvwatts_data",
      [
        tc "record counts" `Quick test_pvwatts_record_count;
        tc "orderings same multiset" `Quick test_pvwatts_orderings_same_multiset;
        tc "month-major sorted" `Quick test_pvwatts_month_major_is_sorted;
        tc "round-robin interleaves" `Quick test_pvwatts_round_robin_interleaves;
        tc "power plausible" `Quick test_pvwatts_power_plausible;
        tc "csv parses back + reference stats" `Quick test_pvwatts_csv_parses_back;
      ] );
  ]
