(* Conway's Game of Life as a JStar program — not one of the paper's
   four case studies, but the style of program its introduction
   motivates: simulation state that "changes over time" recorded as
   immutable timestamped tuples (like the Ship of §3), stepped by rules
   that read one generation and write the next.

     table Cell(int gen, int x, int y)   orderby (Int, seq gen, Cell);
     table Tick(int gen -> int left)     orderby (Int, seq gen, Tick);
     order Cell < Tick;

     foreach (Tick t) {
       // aggregate query over generation t.gen (strictly earlier class)
       put Cell(t.gen+1, x, y) for survivors and births;
       if (t.left > 0) put Tick(t.gen+1, t.left-1);
     }

   The Cell < Tick literal ordering makes the whole of generation g
   visible in Gamma before the tick that reads it executes — the same
   stratification pattern as PvWatts < SumMonth.  Old generations can
   be garbage collected with a windowed store (width 2), exactly the
   Median program's lifetime hint. *)

open Jstar_core

type t = {
  program : Program.t;
  init : Tuple.t list;
  cell : Schema.t;
  alive_at : (Schema.t -> Store.t) -> int -> (int * int) list;
      (* generation's live cells from a gamma accessor, sorted *)
}

let neighbours (x, y) =
  [ (x-1, y-1); (x, y-1); (x+1, y-1); (x-1, y); (x+1, y);
    (x-1, y+1); (x, y+1); (x+1, y+1) ]

(* The reference implementation: one synchronous step on a set. *)
let reference_step alive =
  let module PS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let live = PS.of_list alive in
  let counts = Hashtbl.create 64 in
  PS.iter
    (fun c ->
      List.iter
        (fun n -> Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
        (neighbours c))
    live;
  Hashtbl.fold
    (fun c n acc ->
      if n = 3 || (n = 2 && PS.mem c live) then c :: acc else acc)
    counts []
  |> List.sort compare

let reference ~generations alive =
  let rec go g alive = if g = 0 then alive else go (g - 1) (reference_step alive) in
  go generations (List.sort compare alive)

let make ~generations ~alive () =
  let p = Program.create () in
  let cell =
    Program.table p "Cell"
      ~columns:Schema.[ int_col "gen"; int_col "x"; int_col "y" ]
      ~orderby:Schema.[ Lit "Int"; Seq "gen"; Lit "Cell" ]
      ()
  in
  let tick =
    Program.table p "Tick"
      ~columns:Schema.[ int_col "gen"; int_col "left" ]
      ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "gen"; Lit "Tick" ]
      ()
  in
  Program.order p [ "Cell"; "Tick" ];
  Program.rule p "step" ~trigger:tick
    ~reads:
      [
        (* generation g is an earlier class than Tick(g): Cell < Tick *)
        Spec.read ~kind:Spec.Aggregate "Cell"
          ~ts:[ Spec.bind "gen" (Spec.Field "gen") ];
      ]
    ~puts:
      [
        Spec.put "Cell" ~ts:[ Spec.bind "gen" (Spec.Add (Spec.Field "gen", 1)) ];
        Spec.put "Tick" ~ts:[ Spec.bind "gen" (Spec.Add (Spec.Field "gen", 1)) ]
          ~when_:"left > 0";
      ]
    (fun ctx t ->
      let gen = Tuple.int t "gen" and left = Tuple.int t "left" in
      let live = Hashtbl.create 64 in
      let counts = Hashtbl.create 256 in
      Query.iter ctx cell ~prefix:[| Value.Int gen |] (fun c ->
          let pos = (Tuple.int c "x", Tuple.int c "y") in
          Hashtbl.replace live pos ();
          List.iter
            (fun n ->
              Hashtbl.replace counts n
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
            (neighbours pos));
      if left > 0 then begin
        Hashtbl.iter
          (fun (x, y) n ->
            if n = 3 || (n = 2 && Hashtbl.mem live (x, y)) then
              ctx.Rule.put
                (Tuple.make cell [| Value.Int (gen + 1); Value.Int x; Value.Int y |]))
          counts;
        ctx.Rule.put (Tuple.make tick [| Value.Int (gen + 1); Value.Int (left - 1) |])
      end);
  let init =
    List.map
      (fun (x, y) -> Tuple.make cell [| Value.Int 0; Value.Int x; Value.Int y |])
      alive
    @ [ Tuple.make tick [| Value.Int 0; Value.Int generations |] ]
  in
  {
    program = p;
    init;
    cell;
    alive_at =
      (fun gamma_of gen ->
        let acc = ref [] in
        (gamma_of cell).Store.iter_prefix [| Value.Int gen |] (fun c ->
            acc := (Tuple.int c "x", Tuple.int c "y") :: !acc);
        List.sort compare !acc);
  }

(* Keep only the two generations the rules can still read — the
   windowed lifetime hint; pass [retain_all:true] to keep history. *)
let config ?(threads = 1) ?(retain_all = false) () =
  {
    Config.default with
    threads;
    stores =
      (if retain_all then []
       else
         [ ("Cell", Store.Custom (Store.windowed ~field:"gen" ~width:2 (Store.hash_index ~prefix_len:1))) ]);
  }

let run ?threads ?retain_all ~generations ~alive () =
  let app = make ~generations ~alive () in
  let result, gamma_of =
    Engine.run_with_gamma ~init:app.init
      (Program.freeze app.program)
      (config ?threads ?retain_all ())
  in
  (result, app.alive_at gamma_of generations)

(* Classic patterns for tests and demos. *)
let blinker = [ (1, 0); (1, 1); (1, 2) ]
let block = [ (0, 0); (0, 1); (1, 0); (1, 1) ]
let glider = [ (1, 0); (2, 1); (0, 2); (1, 2); (2, 2) ]
