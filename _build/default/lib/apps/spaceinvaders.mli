(** The Space Invaders Ship example of §3 (Fig 2): time-varying state
    as immutable timestamped tuples. *)

open Jstar_core

type t = { program : Program.t; init : Tuple.t list; ship : Schema.t }

val make : unit -> t

val expected_trajectory : (int * int * int * int * int) list
(** The (frame, x, y, dx, dy) rows of Fig 2. *)

val expected_outputs : string list
(** The same rows in the program's output format. *)
