(* The Space Invaders Ship example of §3 (Fig 2): a ship moves right
   across the screen in 150-pixel jumps, descends twice, then moves back
   left — all recorded as immutable timestamped tuples, one frame each.

   This is the paper's introductory example of "recording data that
   changes over time" by adding timestamps instead of mutating state:

     table Ship(int frame -> int x, int y, int dx, int dy)
         orderby (Int, seq frame)                                      *)

open Jstar_core

type t = { program : Program.t; init : Tuple.t list; ship : Schema.t }

(* The exact trajectory of Fig 2. *)
let expected_trajectory =
  [
    (0, 10, 10, 150, 0);
    (1, 160, 10, 150, 0);
    (2, 310, 10, 150, 0);
    (3, 460, 10, 0, 10);
    (4, 460, 20, 0, 10);
    (5, 460, 30, -150, 0);
    (6, 310, 30, -150, 0);
    (7, 160, 30, -150, 0);
  ]

let make () =
  let p = Program.create () in
  let ship =
    Program.table p "Ship"
      ~columns:
        Schema.
          [ int_col "frame"; int_col "x"; int_col "y"; int_col "dx"; int_col "dy" ]
      ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "frame" ]
      ()
  in
  Program.rule p "move" ~trigger:ship
    ~puts:
      [
        Spec.put "Ship"
          ~ts:[ Spec.bind "frame" (Spec.Add (Spec.Field "frame", 1)) ]
          ~when_:"frame < 7";
      ]
    (fun ctx s ->
      let frame = Tuple.int s "frame" in
      if frame < 7 then begin
        let x = Tuple.int s "x" + Tuple.int s "dx" in
        let y = Tuple.int s "y" + Tuple.int s "dy" in
        let dx, dy =
          if x = 460 && y < 30 then (0, 10) (* hit the right wall: descend *)
          else if y >= 30 && x > 160 then (-150, 0) (* low enough: go left *)
          else (Tuple.int s "dx", Tuple.int s "dy")
        in
        ctx.Rule.put
          (Tuple.make ship
             [|
               Value.Int (frame + 1); Value.Int x; Value.Int y; Value.Int dx;
               Value.Int dy;
             |])
      end);
  Program.output p ship (fun s ->
      Printf.sprintf "%d %d %d %d %d" (Tuple.int s "frame") (Tuple.int s "x")
        (Tuple.int s "y") (Tuple.int s "dx") (Tuple.int s "dy"));
  let f0, x0, y0, dx0, dy0 = List.hd expected_trajectory in
  {
    program = p;
    init =
      [
        Tuple.make ship
          [| Value.Int f0; Value.Int x0; Value.Int y0; Value.Int dx0; Value.Int dy0 |];
      ];
    ship;
  }

let expected_outputs =
  List.map
    (fun (f, x, y, dx, dy) -> Printf.sprintf "%d %d %d %d %d" f x y dx dy)
    expected_trajectory
