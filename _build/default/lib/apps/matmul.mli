(** The MatrixMult case study (§6.4): naive N x N integer matrix
    multiplication, one fork/join task per output row, with the
    "native-arrays" Gamma store for the matrices. *)

open Jstar_core

type variant =
  | Boxed
      (** results written as boxed tuples through [put] — the
          XText-generated 21.9s code path of §6.1 *)
  | Unboxed
      (** results written through the typed native-array handle — the
          hand-corrected 8.1s path *)

type t = {
  program : Program.t;
  init : Tuple.t list;
  result_handle : Store.int_array_handle;
  matrix_table : Schema.t;
}

val generate_matrix : int -> int -> int array array
(** [generate_matrix seed n]: deterministic pseudo-random n x n matrix
    with entries in [0, 100). *)

val make : n:int -> variant:variant -> unit -> t * Store.t
(** The program plus the result matrix's native store (to be injected
    via {!config}). *)

val config : ?threads:int -> Store.t -> Config.t
(** [-noDelta Matrix] (results never trigger rules), [-noGamma
    RowRequest] (trigger-only), and the native store override. *)

val run :
  n:int -> variant:variant -> threads:int -> unit ->
  Engine.result * (int -> int -> int)
(** Run and return an accessor for C[i][j]. *)

val baseline_naive : int array array -> int array array -> int array array
(** The triple loop (7.5s in the paper's Java). *)

val baseline_transposed : int array array -> int array array -> int array array
(** With B transposed first for cache locality (1.0s in Java). *)
