lib/apps/spaceinvaders.mli: Jstar_core Program Schema Tuple
