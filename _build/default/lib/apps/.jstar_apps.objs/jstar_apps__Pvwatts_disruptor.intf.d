lib/apps/pvwatts_disruptor.mli: Bytes Jstar_disruptor
