lib/apps/shortest_path.ml: Array Atomic Config Engine Jstar_core List Printf Program Rule Schema Spec Store Tuple Value
