lib/apps/pvwatts.mli: Bytes Config Engine Jstar_core Program Schema Store Tuple
