lib/apps/pvwatts.ml: Array Atomic Bytes Config Engine Fmt Hashtbl Jstar_core Jstar_csv List Mutex Program Query Reducer Rule Schema Spec Store String Tuple Value
