lib/apps/median.ml: Array Config Engine Float Jstar_core List Printf Program Query Rule Schema Spec Store Tuple Value
