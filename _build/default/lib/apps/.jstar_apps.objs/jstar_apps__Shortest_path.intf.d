lib/apps/shortest_path.mli: Config Engine Jstar_core Program Store Tuple
