lib/apps/spaceinvaders.ml: Jstar_core List Printf Program Rule Schema Spec Tuple Value
