lib/apps/matmul.ml: Array Config Engine Jstar_core Program Rule Schema Spec Store Tuple Value
