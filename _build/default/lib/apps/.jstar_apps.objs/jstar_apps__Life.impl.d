lib/apps/life.ml: Config Engine Hashtbl Jstar_core List Option Program Query Rule Schema Set Spec Store Tuple Value
