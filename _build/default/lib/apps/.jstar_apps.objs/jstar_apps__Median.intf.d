lib/apps/median.mli: Config Engine Jstar_core Program Schema Store Tuple
