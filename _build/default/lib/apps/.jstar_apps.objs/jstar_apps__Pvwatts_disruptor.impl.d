lib/apps/pvwatts_disruptor.ml: Array Bytes Jstar_cds Jstar_core Jstar_csv Jstar_disruptor List Pvwatts Reducer String
