lib/apps/matmul.mli: Config Engine Jstar_core Program Schema Store Tuple
