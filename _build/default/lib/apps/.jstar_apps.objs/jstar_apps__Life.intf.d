lib/apps/life.mli: Config Engine Jstar_core Program Schema Store Tuple
