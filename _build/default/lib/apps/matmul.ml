(* The MatrixMult case study (§6.4, Fig 11): naive N x N integer matrix
   multiplication where "each row of the output matrix is a separate
   task".

   JStar form:

     table MultRequest(int n)        orderby (Req);
     table RowRequest(int row)       orderby (Row, par row);
     table Matrix(int mat, int row, int col -> int value);  // native arrays
     order Req < Row;

     foreach (MultRequest m)  { put RowRequest(row) for each row }
     foreach (RowRequest r)   { for each col: dot product; write C[r][col] }

   The Matrix table uses the "native-arrays" Gamma optimisation: dense
   integer keys over a limited range map to Java 2D arrays in the paper
   and to flat [int array]s here.  Only one tuple per output row goes
   through the Delta set.

   Two variants of the inner write reproduce the §6.1 finding:
   - [Boxed]: the result is written through the generic [put] path, one
     boxed tuple per element — the XText-generated 21.9s code;
   - [Unboxed]: the rule writes through the typed native-array handle —
     the hand-corrected 8.1s code.  Both read A and B unboxed. *)

open Jstar_core

type variant = Boxed | Unboxed

type t = {
  program : Program.t;
  init : Tuple.t list;
  result_handle : Store.int_array_handle;
  matrix_table : Schema.t;
}

(* Deterministic pseudo-random matrix entries. *)
let entry seed i j = ((((i * 7919) + j) * 104729) + seed) mod 100

let generate_matrix seed n =
  Array.init n (fun i -> Array.init n (fun j -> entry seed i j))

let make ~n ~variant () =
  let a = generate_matrix 1 n and b = generate_matrix 2 n in
  let p = Program.create () in
  let req =
    Program.table p "MultRequest" ~columns:Schema.[ int_col "n" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let row_req =
    Program.table p "RowRequest" ~columns:Schema.[ int_col "row" ]
      ~orderby:Schema.[ Lit "Row"; Par "row" ]
      ()
  in
  let matrix =
    Program.table p "Matrix"
      ~columns:Schema.[ int_col "row"; int_col "col"; int_col "value" ]
      ~key:2 ~orderby:[] ()
  in
  Program.order p [ "Req"; "Row" ];
  (* The C matrix's native-array store, shared with the rules through
     the typed handle (the paper's Java 2D array Gamma). *)
  let result_store, result_handle =
    Store.native_int_array ~dims:[| n; n |] matrix
  in
  Program.rule p "split_rows" ~trigger:req
    ~puts:[ Spec.put "RowRequest" ]
    (fun ctx r ->
      for row = 0 to Tuple.int r "n" - 1 do
        ctx.Rule.put (Tuple.make row_req [| Value.Int row |])
      done);
  (match variant with
  | Unboxed ->
      Program.rule p "mult_row" ~trigger:row_req (fun _ctx r ->
          let row = Tuple.int r "row" in
          let arow = a.(row) in
          let key = [| row; 0 |] in
          for col = 0 to n - 1 do
            (* nested loop with a summation reducer (dot product) *)
            let acc = ref 0 in
            for k = 0 to n - 1 do
              acc := !acc + (arow.(k) * b.(k).(col))
            done;
            key.(1) <- col;
            result_handle.Store.ia_set_raw key !acc
          done)
  | Boxed ->
      Program.rule p "mult_row" ~trigger:row_req
        ~puts:[ Spec.put "Matrix" ]
        (fun ctx r ->
          let row = Tuple.int r "row" in
          let arow = a.(row) in
          for col = 0 to n - 1 do
            let acc = ref 0 in
            for k = 0 to n - 1 do
              acc := !acc + (arow.(k) * b.(k).(col))
            done;
            (* every element becomes a boxed tuple through put *)
            ctx.Rule.put
              (Tuple.make matrix
                 [| Value.Int row; Value.Int col; Value.Int !acc |])
          done));
  let app =
    {
      program = p;
      init = [ Tuple.make req [| Value.Int n |] ];
      result_handle;
      matrix_table = matrix;
    }
  in
  (app, result_store)

let config ?(threads = 1) result_store =
  {
    Config.default with
    threads;
    (* Matrix tuples never trigger rules: straight to Gamma.  RowRequest
       tuples are trigger-only: never stored. *)
    no_delta = [ "Matrix" ];
    no_gamma = [ "RowRequest" ];
    stores = [ ("Matrix", Store.Custom (fun _ -> result_store)) ];
  }

(* Run the JStar multiplication; returns the engine result and a getter
   for C[i][j]. *)
let run ~n ~variant ~threads () =
  let app, result_store = make ~n ~variant () in
  let result =
    Engine.run_program ~init:app.init app.program (config ~threads result_store)
  in
  let key = [| 0; 0 |] in
  let get i j =
    key.(0) <- i;
    key.(1) <- j;
    app.result_handle.Store.ia_get key
  in
  (result, get)

(* ------------------------------------------------------------------ *)
(* Hand-coded baselines (§6.1): the naive triple loop (7.5s in Java)
   and the cache-friendly transposed version (1.0s). *)

let baseline_naive a b =
  let n = Array.length a in
  Array.init n (fun i ->
      let arow = a.(i) in
      Array.init n (fun j ->
          let acc = ref 0 in
          for k = 0 to n - 1 do
            acc := !acc + (arow.(k) * b.(k).(j))
          done;
          !acc))

let baseline_transposed a b =
  let n = Array.length a in
  let bt = Array.init n (fun j -> Array.init n (fun k -> b.(k).(j))) in
  Array.init n (fun i ->
      let arow = a.(i) in
      Array.init n (fun j ->
          let btj = bt.(j) in
          let acc = ref 0 in
          for k = 0 to n - 1 do
            acc := !acc + (arow.(k) * btj.(k))
          done;
          !acc))
