(* The Disruptor redesign of PvWatts (§6.3, Fig 9, Table 1).

   A single producer runs the whole CSV read loop, publishing PvWatts
   records into the ring buffer and a sentinel at end of file.  Each
   consumer claims every event (broadcast) but processes only the months
   assigned to it — "we assign a separate month to each consumer" — and
   keeps them in its own local Gamma store, so there is no shared-state
   contention at all.  On the sentinel, the consumer processes its local
   SumMonth work: running the Statistics reducer over its local store
   and emitting the monthly means. *)

open Jstar_core

(* Mutable ring slot, written in place by the producer (the recycled
   event objects of the Disruptor design). *)
type event = {
  mutable year : int;
  mutable month : int;
  mutable power : int;
  mutable sentinel : bool;
}

let fresh_event () = { year = 0; month = 0; power = 0; sentinel = false }

type result = {
  outputs : string list; (* sorted month means, same format as Pvwatts *)
  stats : Jstar_disruptor.Disruptor.stats;
}

(* A consumer's local Gamma: per-month growing buffers of raw powers.
   Exactly Fig 9's "puts these tuples into its own Gamma database"; the
   reducer loop then runs over it at sentinel time. *)
type local_gamma = {
  mutable store : int array array; (* month-1 -> values *)
  mutable used : int array;
}

let make_gamma () =
  { store = Array.init 12 (fun _ -> Array.make 1024 0); used = Array.make 12 0 }

let gamma_add g month power =
  let i = month - 1 in
  let used = g.used.(i) in
  let buf = g.store.(i) in
  let buf =
    if used >= Array.length buf then begin
      let bigger = Array.make (2 * Array.length buf) 0 in
      Array.blit buf 0 bigger 0 used;
      g.store.(i) <- bigger;
      bigger
    end
    else buf
  in
  buf.(used) <- power;
  g.used.(i) <- used + 1

let run ?(options = Jstar_disruptor.Disruptor.pvwatts_options) ~data () =
  let num_consumers = options.Jstar_disruptor.Disruptor.num_consumers in
  let gammas = Array.init num_consumers (fun _ -> make_gamma ()) in
  let year_seen = Array.make num_consumers 0 in
  let outputs = Jstar_cds.Treiber_stack.create () in
  let fields = Array.make 6 0 in
  let stats =
    Jstar_disruptor.Disruptor.run ~options ~init:fresh_event
      ~producer:(fun ~emit ->
        (* the read loop: parse and publish, then the sentinel *)
        Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
            ignore (Jstar_csv.Parse.int_fields_into data s e fields);
            let year = fields.(0)
            and month = fields.(1)
            and power = fields.(5) in
            emit (fun ev ->
                ev.year <- year;
                ev.month <- month;
                ev.power <- power;
                ev.sentinel <- false));
        emit (fun ev -> ev.sentinel <- true))
      ~consumer:(fun me ev ->
        if ev.sentinel then begin
          (* local SumMonth phase: reduce each of my months *)
          let g = gammas.(me) in
          for i = 0 to 11 do
            let month = i + 1 in
            if (month - 1) mod num_consumers = me && g.used.(i) > 0 then begin
              let stats = ref Reducer.Statistics.empty in
              for j = 0 to g.used.(i) - 1 do
                stats :=
                  Reducer.Statistics.add !stats (float_of_int g.store.(i).(j))
              done;
              Jstar_cds.Treiber_stack.push outputs
                (Pvwatts.format_mean year_seen.(me) month
                   (Reducer.Statistics.mean !stats))
            end
          done;
          false
        end
        else begin
          if (ev.month - 1) mod num_consumers = me then begin
            gamma_add gammas.(me) ev.month ev.power;
            year_seen.(me) <- ev.year
          end;
          true
        end)
      ()
  in
  {
    outputs = List.sort String.compare (Jstar_cds.Treiber_stack.pop_all outputs);
    stats;
  }
