(** The ShortestPath case study (§6.5, Fig 5): Dijkstra's algorithm on
    a random connected graph, with the Delta tree acting as the
    priority queue (Estimate tuples ordered by distance). *)

open Jstar_core

type t = {
  program : Program.t;
  init : Tuple.t list;
  distance_of : int -> int option;
      (** final shortest distance per vertex (valid after the run) *)
  reached_count : unit -> int;
}

val edges_for_task :
  seed:int -> vertices:int -> lo:int -> hi:int -> (int * int * int) list
(** The deterministic (from, to, weight) edges one generation task
    produces: a tree edge into each vertex plus one random edge, with
    weights 1..10.  Pure, so the JStar program and the baseline build
    the same graph. *)

val make :
  ?seed:int ->
  ?tasks:int ->
  vertices:int ->
  ?verbose:bool ->
  unit ->
  t * Store.t * Store.t
(** The program plus the custom adjacency (Edge) and dense-array (Done)
    stores.  [tasks] is the number of parallel graph-generation tasks
    (the paper split a serial bottleneck into 24); [verbose] enables the
    per-vertex "shortest path to v is d" output of Fig 5. *)

val config : threads:int -> Store.t -> Store.t -> Config.t
(** [-noDelta Edge/Done], [-noGamma Estimate/GenTask], custom stores. *)

val run :
  ?seed:int ->
  ?tasks:int ->
  vertices:int ->
  threads:int ->
  unit ->
  Engine.result * t

val baseline : ?seed:int -> ?tasks:int -> vertices:int -> unit -> int array
(** Hand-coded Dijkstra with a binary heap (the Java PriorityQueue
    program), on the identical graph. *)
