(** The Median-Finding case study (§6.6): iterative global-pivot
    partitioning — N parallel region partitions per round, a central
    controller focusing on the side containing the median, and a
    two-buffer [double[2][n]] Gamma for the Data table. *)

open Jstar_core

type t = {
  program : Program.t;
  init : Tuple.t list;
  data_table : Schema.t;
}

val value_at : seed:int -> int -> float
(** Deterministic pseudo-random double in [0, 1). *)

val generate : ?seed:int -> int -> float array
(** The array the program conceptually works on. *)

val sequential_cutoff : int
(** Below this size the controller finishes by sorting directly. *)

val make : ?seed:int -> ?regions:int -> n:int -> unit -> t * Store.t
(** The program plus the two-buffer Data store. *)

val config : ?threads:int -> Store.t -> Config.t

val run : ?seed:int -> ?regions:int -> n:int -> threads:int -> unit -> Engine.result
(** Outputs a single ["median = %.9f"] line (the lower median). *)

val baseline_sort : float array -> float
(** Full sort (the paper's Java baseline — 13.4s via Arrays.sort). *)

val baseline_quickselect : float array -> float
(** Sequential three-way-partition selection (the strategy the JStar
    program parallelises). *)
