(** The PvWatts case study (§6.2, Fig 4): monthly solar-power averages
    over a CSV of hourly records, as a JStar program whose
    parallelisation, Delta routing and Gamma data structures are all
    chosen by configuration. *)

open Jstar_core

type t = {
  program : Program.t;
  init : Tuple.t list;
  pv_table : Schema.t;
  sum_table : Schema.t;
}

val make : data:Bytes.t -> chunks:int -> unit -> t
(** Build the Fig 4 program over an in-memory CSV buffer
    ([year,month,day,hour,site,power] records); the input is read by
    [chunks] parallel record-aligned readers (§6.2). *)

type pv_store =
  | Default_store  (** ordered set (skip list when parallel) *)
  | Hash_store  (** hash index on (year, month) *)
  | Month_array_store
      (** the custom array-of-hash store of §6.2 ("array indexed by
          month at the top level") *)

val month_array_store : Schema.t -> Store.t
(** The custom store itself, for direct use. *)

val config :
  ?threads:int -> ?no_delta:bool -> ?store:pv_store -> unit -> Config.t
(** The §6.2 configuration space: [-noDelta PvWatts] (default on),
    [-noGamma Chunk], and the PvWatts store choice (default
    month-array). *)

val run : ?chunks:int -> data:Bytes.t -> Config.t -> Engine.result

val baseline : Bytes.t -> string list
(** The hand-coded program with the paper's Java idiom — readline plus
    String.split — returning the same sorted [year/month: mean] lines. *)

val format_mean : int -> int -> float -> string
(** The output line format shared by all versions. *)
