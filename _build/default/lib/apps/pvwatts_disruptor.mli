(** The Disruptor redesign of PvWatts (§6.3, Fig 9): one producer runs
    the CSV read loop and publishes records into a ring buffer; each
    consumer handles the months assigned to it in its own local Gamma,
    reducing them when the sentinel arrives. *)

type event = {
  mutable year : int;
  mutable month : int;
  mutable power : int;
  mutable sentinel : bool;
}

type result = {
  outputs : string list;
      (** sorted monthly means, same format as {!Pvwatts.format_mean} *)
  stats : Jstar_disruptor.Disruptor.stats;
}

val run :
  ?options:Jstar_disruptor.Disruptor.options -> data:Bytes.t -> unit -> result
(** Defaults to the Table 1 configuration (ring 1024, batch 256,
    blocking waits, 12 consumers). *)
