(** Conway's Game of Life as a JStar program: generations as timestamps
    (the §3 pattern), one tick rule reading the strictly-earlier
    generation class, and a windowed Gamma keeping only the two live
    generations. *)

open Jstar_core

type t = {
  program : Program.t;
  init : Tuple.t list;
  cell : Schema.t;
  alive_at : (Schema.t -> Store.t) -> int -> (int * int) list;
}

val neighbours : int * int -> (int * int) list

val reference_step : (int * int) list -> (int * int) list
(** One synchronous step, engine-free (the test oracle). *)

val reference : generations:int -> (int * int) list -> (int * int) list

val make : generations:int -> alive:(int * int) list -> unit -> t

val config : ?threads:int -> ?retain_all:bool -> unit -> Config.t
(** [retain_all:false] (default) applies the width-2 windowed store;
    [true] keeps every generation queryable. *)

val run :
  ?threads:int ->
  ?retain_all:bool ->
  generations:int ->
  alive:(int * int) list ->
  unit ->
  Engine.result * (int * int) list
(** Run and return the final generation's live cells, sorted. *)

val blinker : (int * int) list
val block : (int * int) list
val glider : (int * int) list
