(** The Disruptor ring buffer: pre-allocated mutable slots, a
    single-producer batched claim strategy, and broadcast consumption
    gated by consumer sequences. *)

type 'a t

val create :
  ?wait:Wait_strategy.kind ->
  ?batch:int ->
  size:int ->
  init:(unit -> 'a) ->
  unit ->
  'a t
(** [size] must be a power of two; [init] pre-allocates each slot. *)

val size : 'a t -> int
val batch_size : 'a t -> int
val wait_strategy_name : 'a t -> string

val add_gating_sequence : 'a t -> Sequence.t -> unit
(** Register a consumer's progress sequence; the producer never claims a
    slot that any gating sequence has not yet passed.  Register all
    consumers before producing. *)

val get : 'a t -> int -> 'a
(** The slot for a sequence number (shared, mutable). *)

val next : 'a t -> int -> int
(** Single producer only: claim the next [n] slots, blocking while the
    ring is full; returns the highest claimed sequence. *)

val publish : 'a t -> int -> unit
(** Make all slots up to the sequence visible and wake consumers. *)

val cursor_value : 'a t -> int
val wait_for : 'a t -> int -> int
(** Block (per the wait strategy) until the cursor reaches the target;
    returns the currently available sequence. *)

val consume : 'a t -> Sequence.t -> ('a -> int -> bool -> bool) -> unit
(** [consume t own f] drives a consumer from sequence 0: calls
    [f event seq end_of_batch], advancing [own] after each event, until
    [f] returns [false]. *)
