lib/disruptor/sequence.mli:
