lib/disruptor/disruptor.ml: Domain List Ring_buffer Sequence Unix Wait_strategy
