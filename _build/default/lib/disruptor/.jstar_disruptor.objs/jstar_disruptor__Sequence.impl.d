lib/disruptor/sequence.ml: Array Atomic List Sys
