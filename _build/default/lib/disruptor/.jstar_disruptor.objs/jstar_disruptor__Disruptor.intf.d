lib/disruptor/disruptor.mli: Wait_strategy
