lib/disruptor/ring_buffer.mli: Sequence Wait_strategy
