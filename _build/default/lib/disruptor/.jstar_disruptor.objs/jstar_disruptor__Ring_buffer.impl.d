lib/disruptor/ring_buffer.ml: Array Domain Jstar_sched Sequence Wait_strategy
