lib/disruptor/wait_strategy.ml: Condition Domain Mutex Unix
