(* Monotone sequence counters — the coordination primitive of the LMAX
   Disruptor [14].  A sequence is the index of the last slot a
   participant has fully processed (producer: published); -1 initially.

   The Java implementation pads sequences to a cache line to avoid false
   sharing.  OCaml gives no layout control over individual atomics, but
   each [Atomic.make] allocates its own boxed cell, and we allocate a
   spacer between consecutive sequences so two counters never share a
   line in the common allocation pattern. *)

type t = { cell : int Atomic.t }

let initial = -1

let create ?(value = initial) () =
  let cell = Atomic.make value in
  (* Spacer allocation: pushes the next allocation out of this line. *)
  let _pad = Array.make 8 0 in
  ignore (Sys.opaque_identity _pad);
  { cell }

let get t = Atomic.get t.cell
let set t v = Atomic.set t.cell v
let incr t = Atomic.fetch_and_add t.cell 1 + 1

(* The slowest of a gating group decides how far a producer may wrap. *)
let minimum = function
  | [] -> max_int
  | seqs -> List.fold_left (fun acc s -> min acc (get s)) max_int seqs
