(* The Disruptor ring buffer: a pre-allocated circular array of mutable
   event slots, a single-producer claim strategy with batching, and
   broadcast consumption — every consumer observes every event, gated so
   the producer never overwrites an unconsumed slot.

   Protocol (single producer):
   - claim [n] slots: spin until [next + n - size <= min(gating)];
   - write the events in place via [get];
   - [publish hi]: advance the cursor to [hi] and wake blocked
     consumers.
   Consumers call [wait_for seq] to learn the highest published
   sequence >= seq, process slots seq..available, then advance their own
   gating sequence — releasing the slots for reuse ("recycle objects
   rather than garbage collecting them"). *)

type 'a t = {
  slots : 'a array;
  mask : int;
  size : int;
  cursor : Sequence.t; (* last published sequence *)
  mutable gating : Sequence.t list; (* consumer progress *)
  mutable cached_gate : int; (* producer-local cache of min(gating) *)
  mutable claimed : int; (* producer-local: last claimed sequence *)
  wait : Wait_strategy.t;
  batch : int; (* preferred claim batch size (Table 1: 256) *)
}

let create ?(wait = Wait_strategy.Blocking) ?(batch = 256) ~size ~init () =
  if not (Jstar_sched.Bits.is_pow2 size) then
    invalid_arg "Ring_buffer.create: size must be a power of two";
  {
    slots = Array.init size (fun _ -> init ());
    mask = size - 1;
    size;
    cursor = Sequence.create ();
    gating = [];
    cached_gate = Sequence.initial;
    claimed = Sequence.initial;
    wait = Wait_strategy.create wait;
    batch = max 1 batch;
  }

let size t = t.size
let batch_size t = t.batch
let wait_strategy_name t = Wait_strategy.name t.wait

let add_gating_sequence t seq = t.gating <- seq :: t.gating

let get t seq = t.slots.(seq land t.mask)

(* Producer side ----------------------------------------------------- *)

let rec wait_for_capacity t wrap_point =
  if wrap_point > t.cached_gate then begin
    let gate = Sequence.minimum t.gating in
    t.cached_gate <- gate;
    if wrap_point > gate then begin
      Domain.cpu_relax ();
      wait_for_capacity t wrap_point
    end
  end

(* Claim the next [n] slots (single producer only); returns the highest
   claimed sequence.  Blocks while the ring is full. *)
let next t n =
  if n < 1 || n > t.size then invalid_arg "Ring_buffer.next: bad batch size";
  let hi = t.claimed + n in
  wait_for_capacity t (hi - t.size);
  t.claimed <- hi;
  hi

let publish t hi =
  Sequence.set t.cursor hi;
  Wait_strategy.signal_all t.wait

(* Consumer side ----------------------------------------------------- *)

let cursor_value t = Sequence.get t.cursor

let wait_for t seq =
  Wait_strategy.wait_for t.wait ~target:seq ~available:(fun () ->
      cursor_value t)

(* Drive a consumer loop: process every event from sequence 0 until
   [f] returns false (consumer-side termination, e.g. on a sentinel).
   [f event sequence end_of_batch] mirrors the Java EventHandler. *)
let consume t own f =
  let rec go next_seq =
    let available = wait_for t next_seq in
    let continue = ref true in
    let seq = ref next_seq in
    while !continue && !seq <= available do
      let keep = f (get t !seq) !seq (!seq = available) in
      Sequence.set own !seq;
      if not keep then continue := false;
      incr seq
    done;
    if !continue then go (available + 1)
  in
  go 0
