(** Monotone sequence counters (consumer progress / producer cursor). *)

type t

val initial : int
(** -1: no slot processed yet. *)

val create : ?value:int -> unit -> t
val get : t -> int
val set : t -> int -> unit

val incr : t -> int
(** Atomic increment; returns the new value. *)

val minimum : t list -> int
(** Smallest current value, or [max_int] for the empty list. *)
