(* High-level single-producer / multi-consumer harness, wiring a ring
   buffer, wait strategy and consumer domains together the way the
   PvWatts Disruptor design does (§6.3, Fig 9): one producer parses the
   input and publishes events; each consumer claims every event and
   processes the subset it is responsible for; a sentinel event tells
   consumers to stop.

   Events are pre-allocated mutable slots: the producer fills a slot in
   place through [emit], and consumers read it — no allocation on the
   hot path ("recycle objects rather than garbage collecting them"). *)

type options = {
  ring_size : int;
  batch : int;
  wait : Wait_strategy.kind;
  num_consumers : int;
}

(* Table 1 of the paper: ring of 1024, batch of 256, blocking waits,
   single producer, 12 consumers. *)
let pvwatts_options =
  {
    ring_size = 1024;
    batch = 256;
    wait = Wait_strategy.Blocking;
    num_consumers = 12;
  }

let default_options = pvwatts_options

type stats = {
  published : int;
  elapsed_producer : float;
  elapsed_total : float;
}

let run ?(options = default_options) ~init ~producer ~consumer () =
  if options.num_consumers < 1 then invalid_arg "Disruptor.run: no consumers";
  let ring =
    Ring_buffer.create ~wait:options.wait ~batch:options.batch
      ~size:options.ring_size ~init ()
  in
  let consumer_seqs =
    List.init options.num_consumers (fun _ ->
        Sequence.create ())
  in
  List.iter (Ring_buffer.add_gating_sequence ring) consumer_seqs;
  let domains =
    List.mapi
      (fun i own ->
        Domain.spawn (fun () ->
            Ring_buffer.consume ring own (fun ev _seq _eob -> consumer i ev)))
      consumer_seqs
  in
  let t0 = Unix.gettimeofday () in
  (* Batched publication: claim [batch] slots at a time, publish when the
     claimed range is exhausted, flush the remainder at the end. *)
  let published = ref 0 in
  let claimed_hi = ref Sequence.initial in
  let written = ref Sequence.initial in
  let emit fill =
    if !written = !claimed_hi then
      claimed_hi := Ring_buffer.next ring options.batch;
    let seq = !written + 1 in
    fill (Ring_buffer.get ring seq);
    written := seq;
    incr published;
    if !written = !claimed_hi then Ring_buffer.publish ring !written
  in
  let flush () =
    if !written >= 0 && !written < !claimed_hi then
      Ring_buffer.publish ring !written
  in
  producer ~emit;
  flush ();
  let t1 = Unix.gettimeofday () in
  List.iter Domain.join domains;
  let t2 = Unix.gettimeofday () in
  {
    published = !published;
    elapsed_producer = t1 -. t0;
    elapsed_total = t2 -. t0;
  }
