(* Consumer wait strategies (Table 1 of the paper lists
   BlockingWaitStrategy as the chosen one; the Disruptor library offers
   these alternatives, all reproduced here):

   - Blocking: mutex + condition variable, signalled on publish.  Lowest
     CPU use, highest latency; the PvWatts configuration.
   - Yielding: spin with cpu_relax.  Low latency, burns a core.
   - Sleeping: spin briefly, then sleep 50us per retry.
   - Busy_spin: pure spin, no relaxation hint. *)

type kind = Blocking | Yielding | Sleeping | Busy_spin

type t = {
  kind : kind;
  mutex : Mutex.t;
  cond : Condition.t;
}

let create kind = { kind; mutex = Mutex.create (); cond = Condition.create () }

let name t =
  match t.kind with
  | Blocking -> "BlockingWaitStrategy"
  | Yielding -> "YieldingWaitStrategy"
  | Sleeping -> "SleepingWaitStrategy"
  | Busy_spin -> "BusySpinWaitStrategy"

(* Wait until [available ()] returns a value >= [target]; returns the
   available sequence (which may be beyond [target] — batching). *)
let wait_for t ~target ~available =
  match t.kind with
  | Busy_spin ->
      let rec go () =
        let a = available () in
        if a >= target then a else go ()
      in
      go ()
  | Yielding ->
      let rec go () =
        let a = available () in
        if a >= target then a
        else begin
          Domain.cpu_relax ();
          go ()
        end
      in
      go ()
  | Sleeping ->
      let rec go spins =
        let a = available () in
        if a >= target then a
        else if spins > 0 then begin
          Domain.cpu_relax ();
          go (spins - 1)
        end
        else begin
          Unix.sleepf 50e-6;
          go 0
        end
      in
      go 100
  | Blocking ->
      let rec go () =
        let a = available () in
        if a >= target then a
        else begin
          Mutex.lock t.mutex;
          (* Re-check under the lock to close the publish race. *)
          let a = available () in
          if a < target then Condition.wait t.cond t.mutex;
          Mutex.unlock t.mutex;
          go ()
        end
      in
      go ()

(* Called by the producer after advancing the cursor. *)
let signal_all t =
  match t.kind with
  | Blocking ->
      Mutex.lock t.mutex;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
  | Yielding | Sleeping | Busy_spin -> ()
