(** Single-producer / multi-consumer Disruptor harness (§6.3, Fig 9).

    The producer fills pre-allocated mutable event slots through [emit];
    every consumer observes every published event (broadcast) and
    decides which to act on.  Consumers stop when their callback returns
    [false] — the producer must therefore publish sentinel events that
    make every consumer stop, or [run] never returns. *)

type options = {
  ring_size : int;  (** power of two *)
  batch : int;  (** producer claim batch *)
  wait : Wait_strategy.kind;
  num_consumers : int;
}

val pvwatts_options : options
(** Table 1 of the paper: ring 1024, batch 256, blocking waits,
    12 consumers. *)

val default_options : options

type stats = {
  published : int;
  elapsed_producer : float;  (** seconds until the producer finished *)
  elapsed_total : float;  (** seconds until all consumers stopped *)
}

val run :
  ?options:options ->
  init:(unit -> 'a) ->
  producer:(emit:(('a -> unit) -> unit) -> unit) ->
  consumer:(int -> 'a -> bool) ->
  unit ->
  stats
(** [run ~init ~producer ~consumer ()] spawns the consumer domains, runs
    [producer] on the calling domain, then joins.  [consumer i ev]
    returns [false] to stop consumer [i]. *)
