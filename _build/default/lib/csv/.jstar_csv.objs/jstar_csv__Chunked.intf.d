lib/csv/chunked.mli: Bytes Jstar_sched
