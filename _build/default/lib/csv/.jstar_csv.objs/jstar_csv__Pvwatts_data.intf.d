lib/csv/pvwatts_data.mli: Bytes
