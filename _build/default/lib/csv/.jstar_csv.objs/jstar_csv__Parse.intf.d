lib/csv/parse.mli: Bytes
