lib/csv/parse.ml: Array Bytes Char Printf
