lib/csv/pvwatts_data.ml: Array Buffer Float List
