lib/csv/chunked.ml: Array Bytes Fun Jstar_sched List Parse
