(** Synthetic stand-in for the paper's 192 MB PVWatts CSV: one year of
    hourly records per installation, 12 months, with the paper's two
    input orderings (month-major "default" and round-robin "sorted"). *)

type ordering = Month_major | Round_robin

val days_in_month : int array
val year : int

val records_per_installation : int
(** 8760 — one year of hourly records (the paper's 1000 installations
    give the original 8,760,000 records). *)

val record_count : installations:int -> int

val power : installation:int -> month:int -> day:int -> hour:int -> int
(** Deterministic pseudo-solar power in watts. *)

val iter :
  installations:int ->
  ordering:ordering ->
  (site:int -> month:int -> day:int -> hour:int -> power:int -> unit) ->
  unit

val to_bytes : installations:int -> ordering:ordering -> Bytes.t
(** Render as CSV: [year,month,day,hour,site,power\n].  The site column
    keeps rows from different installations distinct under JStar's set
    semantics. *)

val reference_monthly_stats :
  installations:int -> (int * int * int * float) list
(** Direct (engine-free) [(month, count, sum, mean)] per month — the
    ground truth the JStar programs must reproduce. *)
