(** Hadoop-style chunked parallel reading over an in-memory buffer:
    each region starts at a record boundary and reads a little past its
    nominal end, so every record is seen exactly once (§6.2). *)

type region = { index : int; start : int; stop : int }

val regions : Bytes.t -> int -> region list
(** Split into at most [n] record-aligned regions (degenerate empty
    regions are dropped).  @raise Invalid_argument when [n < 1]. *)

val iter_region : Bytes.t -> region -> (int -> int -> unit) -> unit
(** Visit each record of a region as [(line_start, line_stop)]. *)

val parallel_read :
  Jstar_sched.Pool.t -> Bytes.t -> num_regions:int -> (int -> int -> int -> unit) -> unit
(** Read all regions in parallel (one task per region); the callback
    receives [region_index line_start line_stop] and must tolerate
    concurrent invocations from different regions. *)

val of_file : string -> Bytes.t
val to_file : string -> Bytes.t -> unit
