(* Chunked parallel reading.

   "the CSV reader library can run several readers in parallel, on
   different parts of the input file.  (Each reader continues reading a
   little way past the end of its region, to ensure that all records
   have been read.  This strategy is also employed by some of the input
   file readers in Hadoop.)" — §6.2.

   We express the same contract over an in-memory byte buffer: region i
   covers bytes [i*size/n, (i+1)*size/n), but a reader *starts* at the
   first record boundary after its region start (except region 0) and
   reads past its region end to the end of the record that straddles
   it.  Every record is therefore processed by exactly one reader. *)

type region = { index : int; start : int; stop : int }

(* Record-aligned regions: [start] is the first line start at or after
   the nominal boundary; [stop] is the first line start at or after the
   next boundary (i.e. the reader runs past its nominal end). *)
let regions bytes n =
  if n < 1 then invalid_arg "Chunked.regions: n < 1";
  let size = Bytes.length bytes in
  (* First line start at or after [from]: [from] itself when it already
     sits on a record boundary, else just past the next newline. *)
  let next_line_start from =
    if from = 0 then 0
    else if from >= size then size
    else if Bytes.unsafe_get bytes (from - 1) = '\n' then from
    else
      let rec go i =
        if i >= size then size
        else if Bytes.unsafe_get bytes i = '\n' then i + 1
        else go (i + 1)
      in
      go from
  in
  List.init n (fun i ->
      let nominal_start = i * size / n in
      let nominal_stop = (i + 1) * size / n in
      {
        index = i;
        start = next_line_start nominal_start;
        stop = (if i = n - 1 then size else next_line_start nominal_stop);
      })
  |> List.filter (fun r -> r.start < r.stop)

let iter_region bytes r f = Parse.iter_records bytes r.start r.stop f

(* Read all records of all regions in parallel, one fork/join task per
   region.  [f] receives the region index and the record slice and must
   be safe to run concurrently with other regions. *)
let parallel_read pool bytes ~num_regions f =
  let rs = Array.of_list (regions bytes num_regions) in
  Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:0 ~hi:(Array.length rs)
    (fun i ->
      let r = rs.(i) in
      iter_region bytes r (fun pos stop -> f r.index pos stop))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let buf = Bytes.create size in
      really_input ic buf 0 size;
      buf)

let to_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc bytes)
