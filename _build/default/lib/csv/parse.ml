(* Byte-oriented CSV parsing.

   The paper credits the JStar PvWatts program's speed to "its own more
   efficient CSV library that keeps lines as byte arrays and avoids
   conversion to strings as much as possible" (§6.1).  This module is
   that library: records are visited as (position, length) slices into
   the underlying bytes, and numeric fields are parsed directly from the
   bytes without allocating any intermediate string. *)

exception Parse_error of string

(* Parse a decimal integer from [bytes.[pos .. pos+len)].  Accepts an
   optional leading minus; anything else raises. *)
let int_of_slice bytes pos len =
  if len = 0 then raise (Parse_error "empty integer field");
  let negative = Bytes.unsafe_get bytes pos = '-' in
  let start = if negative then pos + 1 else pos in
  if start >= pos + len then raise (Parse_error "lone minus sign");
  let v = ref 0 in
  for i = start to pos + len - 1 do
    let c = Bytes.unsafe_get bytes i in
    if c < '0' || c > '9' then
      raise (Parse_error (Printf.sprintf "bad digit %C in integer field" c));
    v := (!v * 10) + (Char.code c - Char.code '0')
  done;
  if negative then - !v else !v

let float_of_slice bytes pos len =
  (* Floats are rare in our workloads; a substring here is acceptable. *)
  match float_of_string_opt (Bytes.sub_string bytes pos len) with
  | Some f -> f
  | None -> raise (Parse_error "bad float field")

let string_of_slice bytes pos len = Bytes.sub_string bytes pos len

(* Visit the fields of one record: calls [f field_index pos len] for
   each comma-separated field in [bytes.[pos .. stop)] (no newline).
   Returns the number of fields. *)
let iter_fields bytes pos stop f =
  let field = ref 0 in
  let start = ref pos in
  for i = pos to stop - 1 do
    if Bytes.unsafe_get bytes i = ',' then begin
      f !field !start (i - !start);
      incr field;
      start := i + 1
    end
  done;
  f !field !start (stop - !start);
  !field + 1

(* Visit records in [bytes.[start .. stop)]: [f line_start line_stop]
   per newline-terminated (or trailing) record.  Skips empty lines. *)
let iter_records bytes start stop f =
  let line_start = ref start in
  for i = start to stop - 1 do
    if Bytes.unsafe_get bytes i = '\n' then begin
      if i > !line_start then f !line_start i;
      line_start := i + 1
    end
  done;
  if stop > !line_start then f !line_start stop

(* Parse all int fields of a record into [out]; returns field count.
   The workhorse for fixed-schema numeric files like the PvWatts data. *)
let int_fields_into bytes pos stop out =
  let n = Array.length out in
  let count =
    iter_fields bytes pos stop (fun i fpos flen ->
        if i < n then out.(i) <- int_of_slice bytes fpos flen)
  in
  count
