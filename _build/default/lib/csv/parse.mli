(** Byte-oriented CSV parsing: records as slices, integers parsed
    without string allocation (the paper's CSV library, §6.1). *)

exception Parse_error of string

val int_of_slice : Bytes.t -> int -> int -> int
(** [int_of_slice b pos len] parses the decimal integer (optionally
    negative) occupying [b.[pos .. pos+len)].
    @raise Parse_error on malformed input. *)

val float_of_slice : Bytes.t -> int -> int -> float
val string_of_slice : Bytes.t -> int -> int -> string

val iter_fields : Bytes.t -> int -> int -> (int -> int -> int -> unit) -> int
(** [iter_fields b pos stop f] calls [f index field_pos field_len] for
    each comma-separated field of the record in [b.[pos .. stop)];
    returns the field count. *)

val iter_records : Bytes.t -> int -> int -> (int -> int -> unit) -> unit
(** [iter_records b start stop f] calls [f line_start line_stop] for
    each non-empty newline-separated record in range. *)

val int_fields_into : Bytes.t -> int -> int -> int array -> int
(** Parse the record's integer fields into the given array (extra
    fields beyond its length are ignored); returns the field count. *)
