(* The tracer's clock: integer nanoseconds since process start.

   Integer timestamps keep the span hot path allocation-free (an OCaml
   [int] is immediate; a [float] result would be boxed) and give the
   exporters exact arithmetic.  The source is [Unix.gettimeofday]
   anchored at module initialisation — the stdlib exposes no
   CLOCK_MONOTONIC and we take no external clock dependency — so the
   clock is monotonic up to NTP slew, which is far below the
   microsecond granularity Chrome-trace viewers display.  [now_ns] is
   clamped to be non-decreasing against the anchor so a backwards step
   can never produce a negative timestamp. *)

let epoch = Unix.gettimeofday ()

let now_ns () =
  let dt = Unix.gettimeofday () -. epoch in
  if dt <= 0.0 then 0 else int_of_float (dt *. 1e9)
