(** Exporters over a tracer and a metrics registry. *)

val chrome_trace : Buffer.t -> Tracer.t -> unit
(** Chrome trace-event JSON (object form, ["traceEvents"]): one track
    per domain (tid = domain id), spans as balanced B/E pairs, instants
    as ['i'] events, thread-name metadata per track.  Loadable in
    Perfetto or chrome://tracing. *)

val write_chrome_trace : string -> Tracer.t -> unit

val metrics_csv : Buffer.t -> Metrics.t -> unit
(** [name,kind,field,value] CSV of a snapshot. *)

val write_metrics_csv : string -> Metrics.t -> unit

val console : Format.formatter -> ?metrics:Metrics.t -> Tracer.t -> unit
(** Pretty report: per-kind span breakdown with percentages, then the
    metrics snapshot — the unified successor of [Phase_timer.pp] and
    [Table_stats.pp_snapshot]. *)
