(* A minimal JSON reader/writer, enough to validate and round-trip the
   tracer's own output (the toolchain has no yojson; taking a new
   dependency for a validator would be out of proportion).  Numbers are
   floats, objects keep insertion order, escapes cover what the
   exporter can emit plus \uXXXX for basic-plane code points. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- writer ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> number_to buf f
  | Str s -> escape_to buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* -- reader ---------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (if c.pos >= String.length c.src then fail c "bad escape";
         let e = c.src.[c.pos] in
         c.pos <- c.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
             let code = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
             c.pos <- c.pos + 4;
             (* Encode the code point as UTF-8 (surrogates untreated —
                the exporter never emits them). *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf
                 (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
         | _ -> fail c "bad escape");
        go ()
    | plain ->
        Buffer.add_char buf plain;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        expect c '}';
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              expect c ',';
              fields ((k, v) :: acc)
          | Some '}' ->
              expect c '}';
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        expect c ']';
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              expect c ',';
              items (v :: acc)
          | Some ']' ->
              expect c ']';
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | _ -> Num (parse_number c)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing input"
      else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors ------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float_opt = function Num f -> Some f | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None
