lib/obs/trace_check.ml: Hashtbl Json List Option Printf
