lib/obs/export.ml: Buffer Fmt Fun Json List Metrics Printf Ring Tracer
