lib/obs/kind.mli:
