lib/obs/level.ml:
