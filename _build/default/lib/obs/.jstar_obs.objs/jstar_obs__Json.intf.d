lib/obs/json.mli: Buffer
