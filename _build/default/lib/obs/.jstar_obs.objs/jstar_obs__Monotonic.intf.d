lib/obs/monotonic.mli:
