lib/obs/phase_timer.ml: Fmt Hashtbl List Unix
