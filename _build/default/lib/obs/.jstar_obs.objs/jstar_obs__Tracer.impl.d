lib/obs/tracer.ml: Array Atomic Domain Fun Kind Level List Monotonic Mutex Printf Ring
