lib/obs/export.mli: Buffer Format Metrics Tracer
