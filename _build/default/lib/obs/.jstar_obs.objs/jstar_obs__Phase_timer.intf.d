lib/obs/phase_timer.mli: Format
