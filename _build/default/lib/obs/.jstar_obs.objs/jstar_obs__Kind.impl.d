lib/obs/kind.ml: Array String
