lib/obs/kind.ml: Array
