lib/obs/ring.mli:
