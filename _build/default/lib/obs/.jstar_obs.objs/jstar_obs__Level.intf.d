lib/obs/level.mli:
