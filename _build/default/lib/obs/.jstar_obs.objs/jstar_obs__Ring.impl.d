lib/obs/ring.ml: Array
