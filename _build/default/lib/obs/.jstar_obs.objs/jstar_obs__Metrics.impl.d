lib/obs/metrics.ml: Array Atomic Buffer Float Fmt List Mutex Printf
