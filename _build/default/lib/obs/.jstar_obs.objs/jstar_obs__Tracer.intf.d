lib/obs/tracer.mli: Kind Level Ring
