lib/obs/monotonic.ml: Unix
