lib/obs/metrics.mli: Buffer Format
