lib/obs/trace_check.mli: Json
