(** Minimal JSON reader/writer used to validate and round-trip the
    tracer's Chrome-trace output without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict parse of a complete document. *)

val member : string -> t -> t option
(** Field lookup on objects; [None] elsewhere. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
