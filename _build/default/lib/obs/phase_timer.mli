(** Named phase timing for breakdowns like §6.3's (16.9% read / 63.7%
    Gamma insert / 3.8% Delta / 15.6% reduce) and the Amdahl bounds
    derived from them.  Accumulation is O(1) per call (Hashtbl-keyed);
    reports keep first-registration order. *)

type t

val create : unit -> t

val add : t -> string -> float -> unit
(** Accumulate seconds into a named phase. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, accumulating its wall-clock time into the phase. *)

val total : t -> float

val phases : t -> (string * float) list
(** In first-registration order. *)

val fractions : t -> (string * float) list
(** Each phase's share of the total. *)

val amdahl_bound : t -> serial:string list -> workers:int -> float
(** Maximum speedup when every phase not named in [serial] parallelises
    over [workers] ways — the paper's 1 / (0.169 + (1-0.169)/12) = 4.2x
    computation. *)

val pp : Format.formatter -> t -> unit
