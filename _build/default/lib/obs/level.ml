(* How much the runtime records about itself.  The levels are ordered:
   each one includes everything below it, so call sites test with the
   [counters_on]/[spans_on] predicates rather than equality. *)

type t = Off | Counters | Spans

let rank = function Off -> 0 | Counters -> 1 | Spans -> 2
let counters_on t = rank t >= 1
let spans_on t = rank t >= 2

let to_string = function
  | Off -> "off"
  | Counters -> "counters"
  | Spans -> "spans"

let of_string = function
  | "off" -> Some Off
  | "counters" -> Some Counters
  | "spans" -> Some Spans
  | _ -> None
