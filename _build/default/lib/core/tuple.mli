(** Immutable tuples — rows of a relation. *)

type t = private {
  schema : Schema.t;
  fields : Value.t array;
  mutable hcache : int;  (** lazily-cached structural hash; use {!hash} *)
}

exception Tuple_error of string

val make : Schema.t -> Value.t array -> t
(** Positional construction; checks arity and field types ([Int] widens
    to a [TFloat] column).  @raise Tuple_error on mismatch. *)

val build : Schema.t -> (string * Value.t) list -> t
(** By-name construction; unassigned fields take their type's default —
    the [new Ship() [x=10; dx=150]] form. *)

val with_fields : t -> (string * Value.t) list -> t
(** Builder copy: a new tuple equal to [t] with some fields replaced. *)

val schema : t -> Schema.t
val fields : t -> Value.t array
val get : t -> int -> Value.t
val get_name : t -> string -> Value.t

val int : t -> string -> int
(** Typed field access by name. @raise Value.Type_error on wrong type. *)

val float : t -> string -> float
val str : t -> string -> string
val bool : t -> string -> bool
val int_at : t -> int -> int
val float_at : t -> int -> float

val key : t -> Value.t array
(** The leading key fields (empty array when the table has no key). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** By table id, then fields lexicographically. *)

val fast_compare : t -> t -> int
(** Same total order as {!compare}, but through the schema-compiled
    monomorphic comparator ({!Schema.fields_compare}) — the only
    comparator the runtime uses on hot paths since the generic path was
    retired. *)

val hash : t -> int
(** Structural hash, computed once per tuple and cached. *)

(** Hash tables keyed by tuples, using the cached hash — the dedup-probe
    fast path for Delta leaves and hash-indexed Gamma stores. *)
module Tbl : Hashtbl.S with type key = t

(** Chained hash set specialised for set-semantics dedup: one hash (a
    cached-field read after the first probe of a tuple) and one bucket
    walk per operation, with stored-vs-probe cached-hash comparison
    short-circuiting the field comparison on non-duplicates. *)
module Dset : sig
  type tuple = t
  type t

  val create : int -> t
  val add_if_absent : t -> tuple -> bool
  (** [true] iff the tuple was absent and has been added. *)

  val mem : t -> tuple -> bool
  val length : t -> int
  val fold : ('a -> tuple -> 'a) -> t -> 'a -> 'a
  val clear : t -> unit
end

val pp : Format.formatter -> t -> unit
val show : t -> string

val matches_prefix : t -> Value.t array -> bool
(** Whether the tuple's leading fields equal the given prefix. *)
