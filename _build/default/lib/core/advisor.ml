(* The adaptive store advisor.

   "Late commitment to data structures" (§6) is a manual knob: someone
   reads the Table_stats report, notices a table is scanned by a prefix
   its store cannot index, and re-runs with a different store.  The
   advisor closes that loop at runtime: it extends the per-table
   [queries] counter into a per-prefix-length histogram (striped like
   every hot-path counter), and at Phase-A barriers — the only points
   where Gamma and its indexes may change — reviews the histogram and
   promotes a hot scan pattern to a secondary index through the table's
   {!Store.indexed} handle.

   Reviews are amortised: a review runs only once the total query count
   crosses [next_review] (warm-up first, then every [warmup/2] or 64
   queries, whichever is larger), so the per-step barrier cost is one
   striped-counter read and a compare.

   Determinism: the engine's class sequence is schedule-independent, so
   the histogram values observed at each barrier are too (Phase B has
   fully completed); promotion decisions therefore replay identically
   across thread counts, and an index only changes *how* a prefix query
   iterates, never which tuples it visits. *)

type table = {
  t_name : string;
  t_handle : Store.indexed_handle option; (* None: not an indexable store *)
  t_counts : Table_stats.counter array; (* queries by prefix length 0..arity *)
  t_size : unit -> int;
}

type t = {
  warmup : int;
  min_queries : int;
  min_size : int;
  tables : table array;
  total : Table_stats.counter;
  mutable next_review : int;
  promotions : int Atomic.t;
}

let make_table ~name ~arity ~handle ~size =
  {
    t_name = name;
    t_handle = handle;
    t_counts = Array.init (arity + 1) (fun _ -> Table_stats.make_counter ());
    t_size = size;
  }

let create ~warmup ~min_queries ~min_size tables =
  {
    warmup;
    min_queries;
    min_size;
    tables;
    total = Table_stats.make_counter ();
    next_review = max warmup 1;
    promotions = Atomic.make 0;
  }

let note_query t id plen =
  let tb = t.tables.(id) in
  if plen < Array.length tb.t_counts then Table_stats.incr tb.t_counts.(plen);
  Table_stats.incr t.total

let promotions_total t = Atomic.get t.promotions

let histogram t id =
  Array.to_list
    (Array.mapi (fun k c -> (k, Table_stats.read c)) t.tables.(id).t_counts)

let table_name t id = t.tables.(id).t_name
let index_lens t id =
  match t.tables.(id).t_handle with
  | Some h -> h.Store.ih_lens ()
  | None -> []

(* A review promotes, per table, the hottest prefix length k >= 1 whose
   scan count clears [min_queries] and which no existing index already
   serves (an index on j <= k answers k-queries from its j-bucket; a
   second, tighter index would only split the same traffic). *)
let review t ~on_promote =
  let total = Table_stats.read t.total in
  if total >= t.next_review then begin
    t.next_review <- total + max 64 (t.warmup / 2);
    Array.iteri
      (fun id tb ->
        match tb.t_handle with
        | None -> ()
        | Some h ->
            if tb.t_size () >= t.min_size then begin
              let lens = h.Store.ih_lens () in
              let best = ref 0 and best_n = ref 0 in
              Array.iteri
                (fun k c ->
                  if k >= 1 && not (List.exists (fun l -> l <= k) lens) then begin
                    let n = Table_stats.read c in
                    if n >= t.min_queries && n > !best_n then begin
                      best := k;
                      best_n := n
                    end
                  end)
                tb.t_counts;
              if !best > 0 && h.Store.ih_promote !best then begin
                Atomic.incr t.promotions;
                on_promote ~table_id:id ~prefix_len:!best
              end
            end)
      t.tables
  end
