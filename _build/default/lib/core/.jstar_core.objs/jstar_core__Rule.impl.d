lib/core/rule.ml: Agg_cache Fmt Schema Spec Store Timestamp Tuple Value
