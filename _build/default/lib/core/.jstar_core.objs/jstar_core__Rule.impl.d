lib/core/rule.ml: Fmt Schema Spec Store Timestamp Tuple Value
