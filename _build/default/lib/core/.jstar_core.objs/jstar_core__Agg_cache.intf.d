lib/core/agg_cache.mli: Tuple
