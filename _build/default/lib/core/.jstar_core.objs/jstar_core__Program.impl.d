lib/core/program.ml: Array List Order_rel Rule Schema Tuple
