lib/core/table_stats.mli: Format
