lib/core/reducer.ml: Array Float Jstar_sched
