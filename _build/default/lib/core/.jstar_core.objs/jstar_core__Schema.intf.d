lib/core/schema.mli: Format Hashtbl Value
