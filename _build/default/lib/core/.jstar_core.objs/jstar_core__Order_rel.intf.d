lib/core/order_rel.mli:
