lib/core/query.mli: Reducer Rule Schema Tuple Value
