lib/core/timestamp.ml: Array Fmt Order_rel Schema Stdlib Tuple Value
