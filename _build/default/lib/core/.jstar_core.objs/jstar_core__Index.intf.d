lib/core/index.mli: Schema Tuple Value
