lib/core/rule.mli: Format Schema Spec Store Timestamp Tuple Value
