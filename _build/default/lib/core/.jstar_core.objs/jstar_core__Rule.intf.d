lib/core/rule.mli: Agg_cache Format Schema Spec Store Timestamp Tuple Value
