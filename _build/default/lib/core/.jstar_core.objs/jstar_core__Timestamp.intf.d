lib/core/timestamp.mli: Format Order_rel Tuple Value
