lib/core/index.ml: Atomic Fmt Jstar_cds List Mutex Schema Tuple Value
