lib/core/spec.ml: Fmt
