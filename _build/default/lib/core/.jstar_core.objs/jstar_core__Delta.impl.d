lib/core/delta.ml: Array Atomic Domain Fun Hashtbl Jstar_cds List Map Mutex Option Timestamp Tuple Value
