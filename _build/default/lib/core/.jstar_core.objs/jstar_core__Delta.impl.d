lib/core/delta.ml: Array Atomic Domain Fun Hashtbl Jstar_cds List Map Mutex Option Schema Timestamp Tuple Value
