lib/core/agg_cache.ml: Array Atomic Fun List Mutex Schema Tuple
