lib/core/tuple.ml: Array Fmt Hashtbl Int List Schema Stdlib Value
