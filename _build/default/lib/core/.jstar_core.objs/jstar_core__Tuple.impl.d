lib/core/tuple.ml: Array Fmt List Schema Stdlib Value
