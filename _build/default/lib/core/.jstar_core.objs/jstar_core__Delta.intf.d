lib/core/delta.mli: Timestamp Tuple
