lib/core/advisor.mli: Store
