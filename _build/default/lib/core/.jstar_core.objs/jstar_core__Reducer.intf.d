lib/core/reducer.mli: Jstar_sched
