lib/core/program.mli: Order_rel Rule Schema Spec Tuple
