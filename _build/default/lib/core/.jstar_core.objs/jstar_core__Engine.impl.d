lib/core/engine.ml: Array Config Delta Domain Fmt Fun Hashtbl Jstar_cds Jstar_obs Jstar_sched List Mutex Order_rel Program Rule Schema Store String Table_stats Timestamp Tuple Unix
