lib/core/engine.ml: Array Config Delta Fmt Fun Jstar_cds Jstar_sched List Order_rel Program Rule Schema Store String Table_stats Timestamp Tuple Unix
