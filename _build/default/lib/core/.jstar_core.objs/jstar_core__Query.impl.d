lib/core/query.ml: Agg_cache Array Atomic Fmt Hashtbl List Option Reducer Rule Schema Stdlib Tuple Value
