lib/core/query.ml: List Reducer Rule Schema Tuple
