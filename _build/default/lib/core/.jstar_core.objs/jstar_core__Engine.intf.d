lib/core/engine.mli: Config Program Schema Store Table_stats Tuple
