lib/core/engine.mli: Config Jstar_obs Program Schema Store Table_stats Tuple
