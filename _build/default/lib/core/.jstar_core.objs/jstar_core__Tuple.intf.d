lib/core/tuple.mli: Format Schema Value
