lib/core/tuple.mli: Format Hashtbl Schema Value
