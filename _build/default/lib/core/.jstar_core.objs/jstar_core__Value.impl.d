lib/core/value.ml: Array Fmt Hashtbl Stdlib String
