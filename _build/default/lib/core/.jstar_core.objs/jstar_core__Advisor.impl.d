lib/core/advisor.ml: Array Atomic List Store Table_stats
