lib/core/config.mli: Delta Store
