lib/core/config.mli: Delta Jstar_obs Store
