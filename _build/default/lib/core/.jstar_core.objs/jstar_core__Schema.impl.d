lib/core/schema.ml: Array Bool Float Fmt Hashtbl Int String Value
