lib/core/schema.ml: Array Fmt Hashtbl Value
