lib/core/store.mli: Schema Tuple Value
