lib/core/table_stats.ml: Array Atomic Domain Fmt List
