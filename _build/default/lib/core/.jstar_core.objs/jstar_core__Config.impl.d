lib/core/config.ml: Delta Store
