lib/core/config.ml: Delta Jstar_obs List Store
