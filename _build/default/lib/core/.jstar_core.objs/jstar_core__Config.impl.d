lib/core/config.ml: Delta Jstar_obs Store
