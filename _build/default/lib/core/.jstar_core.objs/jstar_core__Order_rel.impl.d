lib/core/order_rel.ml: Array Hashtbl Int List Set
