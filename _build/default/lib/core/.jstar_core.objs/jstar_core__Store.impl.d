lib/core/store.ml: Array Atomic Bytes Fmt Fun Hashtbl Index Int Jstar_cds List Mutex Schema Seq Set Tuple Value
