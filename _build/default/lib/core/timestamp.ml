(* Tuple timestamps: the projection of a tuple onto its orderby list.

   The components are compared lexicographically.  A [Par] component is
   an equivalence level: two tuples differing only in [par] fields belong
   to the same equivalence class of the causality order and may execute
   in parallel, so [Par] components compare equal regardless of value.
   A timestamp that exhausts before another with an equal prefix orders
   first (the tuple sits in a leaf above the deeper subtree). *)

type comp =
  | CLit of int * string (* rank in the linear extension, literal name *)
  | CSeq of Value.t
  | CPar of Value.t

type t = comp array

let of_tuple order tuple =
  let schema = Tuple.schema tuple in
  Array.mapi
    (fun i entry ->
      match entry with
      | Schema.Lit l -> CLit (Order_rel.rank order l, l)
      | Schema.Seq _ -> CSeq (Tuple.get tuple schema.Schema.orderby_fields.(i))
      | Schema.Par _ -> CPar (Tuple.get tuple schema.Schema.orderby_fields.(i)))
    schema.Schema.orderby

let comp_rank = function CLit _ -> 0 | CSeq _ -> 1 | CPar _ -> 2

(* Comparison of individual components.  Mixed kinds at the same level
   only arise from programs whose orderby lists disagree about a level's
   nature; we order them by kind so the order stays total, and the
   causality checker flags such programs separately. *)
let compare_comp a b =
  match (a, b) with
  | CLit (ra, _), CLit (rb, _) -> Stdlib.compare ra rb
  | CSeq va, CSeq vb -> Value.compare va vb
  | CPar _, CPar _ -> 0
  | _ -> Stdlib.compare (comp_rank a) (comp_rank b)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = compare_comp a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0
let leq a b = compare a b <= 0
let lt a b = compare a b < 0

let pp_comp ppf = function
  | CLit (_, l) -> Fmt.string ppf l
  | CSeq v -> Fmt.pf ppf "seq:%a" Value.pp v
  | CPar v -> Fmt.pf ppf "par:%a" Value.pp v

let pp ppf (t : t) = Fmt.pf ppf "<%a>" (Fmt.array ~sep:Fmt.comma pp_comp) t
let show t = Fmt.str "%a" pp t
