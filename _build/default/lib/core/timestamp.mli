(** Tuple timestamps under the causality order.

    [Par] components compare equal whatever their values: tuples that
    differ only there form one equivalence class and may run in
    parallel.  A timestamp that is a strict prefix of another orders
    before it. *)

type comp = CLit of int * string | CSeq of Value.t | CPar of Value.t
type t = comp array

val of_tuple : Order_rel.t -> Tuple.t -> t
(** Project a tuple onto its schema's orderby list, ranking literals by
    the program's order declarations. *)

val compare : t -> t -> int
val compare_comp : comp -> comp -> int
val equal : t -> t -> bool
val leq : t -> t -> bool
val lt : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
