(* Immutable tuples: one row of a relation.

   Construction mirrors the three forms in §3 of the paper:
   - by position:        [make schema [| Int 0; Int 10; ... |]]
   - by name + defaults: [build schema ["x", Int 10; "dx", Int 150]]
   - builder copy:       [with_fields t ["x", Int 20]]                 *)

type t = { schema : Schema.t; fields : Value.t array }

exception Tuple_error of string

let check_types schema fields =
  Array.iteri
    (fun i v ->
      let want = Schema.field_ty schema i in
      let got = Value.type_of v in
      (* Int widens to Float implicitly, as OCaml ints do in to_float. *)
      let ok = got = want || (want = Value.TFloat && got = Value.TInt) in
      if not ok then
        raise
          (Tuple_error
             (Fmt.str "%s.%s: expected %s, got %s" schema.Schema.name
                schema.Schema.columns.(i).Schema.col_name
                (Value.ty_name want) (Value.ty_name got))))
    fields

let make schema fields =
  if Array.length fields <> Schema.arity schema then
    raise
      (Tuple_error
         (Fmt.str "%s: expected %d fields, got %d" schema.Schema.name
            (Schema.arity schema) (Array.length fields)));
  check_types schema fields;
  { schema; fields }

let build schema assignments =
  let fields =
    Array.map
      (fun c -> Value.default_of_ty c.Schema.col_ty)
      schema.Schema.columns
  in
  List.iter
    (fun (name, v) -> fields.(Schema.field_pos schema name) <- v)
    assignments;
  make schema fields

let with_fields t assignments =
  let fields = Array.copy t.fields in
  List.iter
    (fun (name, v) -> fields.(Schema.field_pos t.schema name) <- v)
    assignments;
  make t.schema fields

let schema t = t.schema
let fields t = t.fields
let get t i = t.fields.(i)
let get_name t name = t.fields.(Schema.field_pos t.schema name)
let int t name = Value.to_int (get_name t name)
let float t name = Value.to_float (get_name t name)
let str t name = Value.to_string (get_name t name)
let bool t name = Value.to_bool (get_name t name)
let int_at t i = Value.to_int t.fields.(i)
let float_at t i = Value.to_float t.fields.(i)

let key t = Array.sub t.fields 0 t.schema.Schema.key_arity

let equal a b =
  a.schema.Schema.id = b.schema.Schema.id
  && Value.equal_arrays a.fields b.fields

(* Total order within and across tables: by table id, then fields
   lexicographically.  This is the order of the default tree-set Gamma
   store, which also makes leading-prefix queries range queries. *)
let compare a b =
  let c = Stdlib.compare a.schema.Schema.id b.schema.Schema.id in
  if c <> 0 then c else Value.compare_arrays a.fields b.fields

let hash t = (t.schema.Schema.id * 0x01000193) + Value.hash_array t.fields

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.schema.Schema.name
    (Fmt.array ~sep:(Fmt.any ", ") Value.pp)
    t.fields

let show t = Fmt.str "%a" pp t

(* Does the tuple start with the given prefix of field values?  Used by
   leading-field queries such as [get PvWatts(year, month)]. *)
let matches_prefix t prefix =
  let n = Array.length prefix in
  n <= Array.length t.fields
  &&
  let rec go i =
    i >= n || (Value.equal t.fields.(i) prefix.(i) && go (i + 1))
  in
  go 0
