(* Per-table usage counters — the paper's "logging system for recording
   usage statistics about each table during a program run" (§1.5), used
   to choose parallelisation strategies and data structures.

   Counters are striped across 8 cells indexed by the current domain to
   avoid cache-line ping-pong on the hot put path; reads sum the
   stripes (exact at quiescence). *)

let stripes = 8

type counter = int Atomic.t array

let make_counter () = Array.init stripes (fun _ -> Atomic.make 0)

let incr (c : counter) =
  Atomic.incr c.((Domain.self () :> int) land (stripes - 1))

let add (c : counter) k =
  if k > 0 then
    ignore
      (Atomic.fetch_and_add c.((Domain.self () :> int) land (stripes - 1)) k)

let read (c : counter) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

type counters = {
  puts : counter; (* put attempts routed at this table *)
  delta_inserts : counter;
  delta_dups : counter;
  gamma_inserts : counter;
  gamma_dups : counter;
  triggers : counter; (* rule firings triggered by this table *)
  queries : counter; (* prefix/full queries answered *)
}

type t = { tables : (string * counters) array }

let make_counters () =
  {
    puts = make_counter ();
    delta_inserts = make_counter ();
    delta_dups = make_counter ();
    gamma_inserts = make_counter ();
    gamma_dups = make_counter ();
    triggers = make_counter ();
    queries = make_counter ();
  }

let create names =
  { tables = Array.of_list (List.map (fun n -> (n, make_counters ())) names) }

let counters t table_id = snd t.tables.(table_id)

let get t name = List.assoc_opt name (Array.to_list t.tables)

type snapshot = {
  table : string;
  n_puts : int;
  n_delta_inserts : int;
  n_delta_dups : int;
  n_gamma_inserts : int;
  n_gamma_dups : int;
  n_triggers : int;
  n_queries : int;
}

let snapshot_of table c =
  {
    table;
    n_puts = read c.puts;
    n_delta_inserts = read c.delta_inserts;
    n_delta_dups = read c.delta_dups;
    n_gamma_inserts = read c.gamma_inserts;
    n_gamma_dups = read c.gamma_dups;
    n_triggers = read c.triggers;
    n_queries = read c.queries;
  }

let snapshot t =
  Array.to_list t.tables |> List.map (fun (table, c) -> snapshot_of table c)

let pp_snapshot ppf rows =
  Fmt.pf ppf "%-14s %10s %10s %9s %10s %9s %9s %9s@."
    "table" "puts" "delta-ins" "delta-dup" "gamma-ins" "gamma-dup" "triggers"
    "queries";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s %10d %10d %9d %10d %9d %9d %9d@." r.table r.n_puts
        r.n_delta_inserts r.n_delta_dups r.n_gamma_inserts r.n_gamma_dups
        r.n_triggers r.n_queries)
    rows
