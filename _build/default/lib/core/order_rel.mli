(** The programmer-declared partial order over order literals
    ([order Req < PvWatts < SumMonth]), with a deterministic linear
    extension used to rank named Delta-tree branches. *)

type t

exception Cycle of string list
(** Raised by rank queries when the declarations are cyclic; carries the
    literals involved in (or blocked by) the cycle. *)

val create : unit -> t

val declare : t -> string -> unit
(** Register a literal without relating it to any other. *)

val declare_less : t -> string -> string -> unit
(** [declare_less t a b] records [a < b]. *)

val declare_chain : t -> string list -> unit
(** [declare_chain t ["A"; "B"; "C"]] records [A < B] and [B < C] —
    the [order A < B < C] declaration form. *)

val rank : t -> string -> int
(** Position of a literal in the deterministic linear extension (Kahn's
    algorithm, ties broken by registration order).  Unknown literals are
    registered on the fly.  @raise Cycle on cyclic declarations. *)

val provably_less : t -> string -> string -> bool
(** Whether [a < b] follows from the declarations (transitively) — the
    relation the causality checker may rely on, as opposed to the
    arbitrary linear extension. *)

val comparable : t -> string -> string -> bool
(** Equal or related (either way) by the declared order. *)

val literals : t -> string list
(** All registered literals in registration order. *)

val declared_pairs : t -> (string * string) list
(** The raw [a < b] declarations, in declaration order. *)

val count : t -> int
