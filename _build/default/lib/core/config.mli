(** Runtime configuration — the JStar compiler flags as runtime options,
    so strategy and data-structure choices never touch program text. *)

type data_structures =
  | Auto  (** sequential structures iff [threads = 1] *)
  | Sequential_ds  (** the TreeMap/TreeSet family; single-threaded only *)
  | Concurrent_ds  (** skip list / sharded hash family *)

type grain =
  | Auto_grain
      (** adaptive: [max 1 (n / (4 * workers))] per leaf — the "chunked
          leaves" strategy *)
  | Fixed of int  (** fixed leaf size; [Fixed 1] is one task per tuple *)

type t = {
  threads : int;  (** fork/join pool size ([--threads=N]); 1 = caller only *)
  data_structures : data_structures;
  no_delta : string list;
      (** [-noDelta T]: put T straight into Gamma, firing its rules
          immediately (§5.1) *)
  no_gamma : string list;
      (** [-noGamma T]: never store T (trigger-only tables, §5.1) *)
  stores : (string * Store.kind_spec) list;
      (** per-table Gamma store overrides *)
  grain : grain;  (** fork/join leaf granularity at engine call sites *)
  put_batching : bool;
      (** buffer parallel-phase puts per domain, flushing them through
          [Delta.insert_batch] / [Store.insert_batch] at the phase
          barriers that already define class visibility *)
  specialized_compare : bool;
      (** schema-compiled comparators and cached-hash dedup tables on
          the tuple hot path *)
  task_per_rule : bool;
      (** one task per (tuple, rule) pair instead of per tuple (§5.2) *)
  runtime_causality_check : bool;
      (** assert at every put that the tuple is not in the past *)
  max_steps : int option;  (** abort runaway programs *)
  print_directly : bool;  (** bypass deterministic output collection *)
  tracing : Jstar_obs.Level.t;
      (** [Off]: zero-cost; [Counters]: metrics registry only; [Spans]:
          also record per-domain span rings for Chrome-trace export *)
}

val default : t
(** Sequential: one thread, automatic (sequential) data structures, no
    optimisations. *)

val sequential : t
(** Alias of {!default} — the [-sequential] compiler flag. *)

val parallel : ?threads:int -> unit -> t
(** Parallel defaults ([threads] defaults to 4): put batching and
    specialized comparators on — the knobs EXPERIMENTS.md showed
    strictly helping multi-threaded runs.  {!default} keeps both off so
    ablation baselines remain reachable. *)

val effective_mode : t -> Delta.mode
(** Which structure family the configuration resolves to. *)

exception Invalid of string

val validate : t -> unit
(** @raise Invalid for nonsensical combinations (0 threads, sequential
    structures with a multi-threaded pool, grain < 1). *)

val resolve_grain : t -> workers:int -> n:int -> int
(** The fork/join leaf size for an [n]-iteration loop on [workers]
    workers under this configuration's {!field-grain}. *)
