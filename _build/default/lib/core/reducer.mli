(** Reduce and scan with user-defined operators (§1.3): associative
    reductions the runtime may evaluate as trees, in parallel. *)

type 'a monoid = { empty : 'a; combine : 'a -> 'a -> 'a }
(** [combine] must be associative with identity [empty] for results to
    be schedule-independent. *)

val int_sum : int monoid
val float_sum : float monoid
val int_max : int monoid
val int_min : int monoid

(** The standard [Statistics] reducer of the PvWatts program: count,
    sum, min, max, mean and variance, combinable in parallel (Chan et
    al.'s pairwise update). *)
module Statistics : sig
  type t = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    m2 : float;
  }

  val empty : t
  val add : t -> float -> t
  val combine : t -> t -> t
  val monoid : t monoid

  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Population variance; 0 for fewer than two samples. *)

  val std_dev : t -> float
end

val reduce_array : 'a monoid -> ('b -> 'a) -> 'b array -> 'a
(** Sequential reference fold. *)

val parallel_reduce_array :
  Jstar_sched.Pool.t -> 'a monoid -> ('b -> 'a) -> 'b array -> 'a
(** Tree reduction on the pool. *)

val scan_array : 'a monoid -> 'a array -> 'a array
(** Inclusive prefix reduction, sequential reference. *)

val parallel_scan_array :
  Jstar_sched.Pool.t -> 'a monoid -> 'a array -> 'a array
(** Two-level parallel inclusive scan (block scans, block-sum scan,
    fix-up pass); equals {!scan_array} for associative monoids. *)
