(* Reduce and scan with user-defined operators (§1.3): JStar replaces
   sequential accumulation loops with reductions whose operators are
   associative, so the runtime is free to evaluate them as trees in
   parallel.

   [Statistics] is the standard reducer used by the PvWatts program
   (count / sum / mean, plus min/max and variance via the parallel
   Welford/Chan combination). *)

type 'a monoid = { empty : 'a; combine : 'a -> 'a -> 'a }

let int_sum = { empty = 0; combine = ( + ) }
let float_sum = { empty = 0.0; combine = ( +. ) }
let int_max = { empty = min_int; combine = max }
let int_min = { empty = max_int; combine = min }

module Statistics = struct
  type t = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    m2 : float; (* sum of squared deviations from the mean *)
  }

  let empty =
    { count = 0; sum = 0.0; min = infinity; max = neg_infinity; mean = 0.0; m2 = 0.0 }

  let add s x =
    let count = s.count + 1 in
    let delta = x -. s.mean in
    let mean = s.mean +. (delta /. float_of_int count) in
    let m2 = s.m2 +. (delta *. (x -. mean)) in
    {
      count;
      sum = s.sum +. x;
      min = Float.min s.min x;
      max = Float.max s.max x;
      mean;
      m2;
    }

  (* Chan et al. parallel combination of two partial statistics. *)
  let combine a b =
    if a.count = 0 then b
    else if b.count = 0 then a
    else
      let count = a.count + b.count in
      let fa = float_of_int a.count and fb = float_of_int b.count in
      let fc = float_of_int count in
      let delta = b.mean -. a.mean in
      {
        count;
        sum = a.sum +. b.sum;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        mean = a.mean +. (delta *. fb /. fc);
        m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fc);
      }

  let monoid = { empty; combine }
  let mean s = if s.count = 0 then nan else s.mean
  let variance s = if s.count < 2 then 0.0 else s.m2 /. float_of_int s.count
  let std_dev s = sqrt (variance s)
end

(* Sequential fold with a monoid. *)
let reduce_array monoid f arr =
  Array.fold_left (fun acc x -> monoid.combine acc (f x)) monoid.empty arr

(* Parallel tree reduction over an array. *)
let parallel_reduce_array pool monoid f arr =
  Jstar_sched.Forkjoin.parallel_reduce pool ~lo:0 ~hi:(Array.length arr)
    ~init:monoid.empty ~combine:monoid.combine (fun i -> f arr.(i))

(* Inclusive scan (prefix reduction), sequential reference. *)
let scan_array monoid arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n arr.(0) in
    for i = 1 to n - 1 do
      out.(i) <- monoid.combine out.(i - 1) arr.(i)
    done;
    out
  end

(* Parallel inclusive scan: block-local scans, a scan of the block sums,
   then a parallel fix-up pass — the two-level scheme that suits a small
   worker count.  Requires an associative [combine]. *)
let parallel_scan_array pool monoid arr =
  let n = Array.length arr in
  let workers = Jstar_sched.Pool.size pool in
  if n = 0 then [||]
  else if n < 4096 || workers = 1 then scan_array monoid arr
  else begin
    let nblocks = workers * 4 in
    let block = (n + nblocks - 1) / nblocks in
    let out = Array.make n arr.(0) in
    let sums = Array.make nblocks monoid.empty in
    Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:0 ~hi:nblocks (fun b ->
        let lo = b * block and hi = min n ((b + 1) * block) in
        if lo < hi then begin
          out.(lo) <- arr.(lo);
          for i = lo + 1 to hi - 1 do
            out.(i) <- monoid.combine out.(i - 1) arr.(i)
          done;
          sums.(b) <- out.(hi - 1)
        end);
    (* Exclusive scan of the block sums, sequential: nblocks is tiny. *)
    let offsets = Array.make nblocks monoid.empty in
    for b = 1 to nblocks - 1 do
      offsets.(b) <- monoid.combine offsets.(b - 1) sums.(b - 1)
    done;
    Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:1 ~hi:nblocks (fun b ->
        let lo = b * block and hi = min n ((b + 1) * block) in
        for i = lo to hi - 1 do
          out.(i) <- monoid.combine offsets.(b) out.(i)
        done);
    out
  end
