(** Query combinators over a rule context — the [get] forms of §3-§4.

    [prefix] matches leading fields exactly (how stores index);
    [where] is the residual boolean-lambda predicate.  All queries run
    against Gamma; the causality checker verifies per rule that their
    results are already fixed when the rule executes. *)

val iter :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  (Tuple.t -> unit) ->
  unit

val fold :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  init:'a ->
  f:('a -> Tuple.t -> 'a) ->
  unit ->
  'a

val list :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  Tuple.t list
(** Matching tuples in the store's iteration order. *)

val count :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  int
(** Without [where], and when the run carries an aggregate cache
    ([Config.agg_cache]) and the table is cacheable, [count] is served
    from a per-(table, prefix-length) group count maintained at the
    Phase-A barrier — O(1) after the first touch.  [where] or a
    non-cacheable table falls back to the scan; both paths return the
    same number. *)

exception Not_unique of string

val uniq :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  Tuple.t option
(** [get uniq? T(...)]: at most one distinct matching tuple expected.
    @raise Not_unique when several distinct tuples match. *)

val is_empty :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  bool
(** The negative query form ([get uniq? ... == null]). *)

val min_by :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  key:(Tuple.t -> 'a) ->
  unit ->
  Tuple.t option
(** [get min T(...)] under a key function. *)

val reduce :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  monoid:'a Reducer.monoid ->
  f:(Tuple.t -> 'a) ->
  unit ->
  'a
(** Aggregate query with a reducer monoid (the [Statistics] loop of the
    PvWatts program). *)

(** {1 Memoized aggregates}

    A {!memo} token names one grouped aggregate — table, group-by
    prefix length, commutative monoid, projection — declared once next
    to the program.  {!memo_reduce} then answers from the run's
    aggregate cache ({!Agg_cache}): the first touch scans Gamma into
    per-group partials, every later query is a hash lookup, and the
    engine folds each newly inserted class tuple into the partials at
    the Phase-A barrier.  Commutativity makes the maintained partial
    equal to a fresh scan under any schedule; the law of causality
    (§4) makes both stable by the time a rule may read them.  With the
    cache off ([Config.agg_cache = false]), a non-cacheable table
    ([-noDelta]/[-noGamma]/custom stores), or a query prefix of a
    different length, every combinator transparently scans. *)

type 'a memo

val memo :
  Schema.t ->
  prefix_len:int ->
  monoid:'a Reducer.monoid ->
  f:(Tuple.t -> 'a) ->
  'a memo
(** [memo schema ~prefix_len ~monoid ~f]: aggregate [f] over tuples
    grouped by their first [prefix_len] fields, combined with [monoid]
    (which must be commutative for cached and scanned results to
    agree).  @raise Schema.Schema_error when [prefix_len] is outside
    [0..arity]. *)

val memo_min_by : Schema.t -> prefix_len:int -> key:(Tuple.t -> 'k) -> Tuple.t option memo
(** The memoized {!min_by}.  Key ties break by tuple order (what a
    tree-store scan encounters first), making the result independent of
    insertion schedule — an ordered-store scan agrees, a hash-store
    scan may differ on ties. *)

val memo_reduce : Rule.ctx -> 'a memo -> ?prefix:Value.t array -> unit -> 'a
(** The monoid total for the group [prefix] (empty for an absent
    group).  O(1) on cache hit; identical to
    [reduce ~prefix ~monoid ~f] always. *)

val memo_min :
  Rule.ctx -> Tuple.t option memo -> ?prefix:Value.t array -> unit -> Tuple.t option
(** [memo_reduce] under its natural name for {!memo_min_by} tokens. *)
