(** Query combinators over a rule context — the [get] forms of §3-§4.

    [prefix] matches leading fields exactly (how stores index);
    [where] is the residual boolean-lambda predicate.  All queries run
    against Gamma; the causality checker verifies per rule that their
    results are already fixed when the rule executes. *)

val iter :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  (Tuple.t -> unit) ->
  unit

val fold :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  init:'a ->
  f:('a -> Tuple.t -> 'a) ->
  unit ->
  'a

val list :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  Tuple.t list
(** Matching tuples in the store's iteration order. *)

val count :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  int

exception Not_unique of string

val uniq :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  Tuple.t option
(** [get uniq? T(...)]: at most one distinct matching tuple expected.
    @raise Not_unique when several distinct tuples match. *)

val is_empty :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  unit ->
  bool
(** The negative query form ([get uniq? ... == null]). *)

val min_by :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  key:(Tuple.t -> 'a) ->
  unit ->
  Tuple.t option
(** [get min T(...)] under a key function. *)

val reduce :
  Rule.ctx ->
  Schema.t ->
  ?prefix:Value.t array ->
  ?where:(Tuple.t -> bool) ->
  monoid:'a Reducer.monoid ->
  f:(Tuple.t -> 'a) ->
  unit ->
  'a
(** Aggregate query with a reducer monoid (the [Statistics] loop of the
    PvWatts program). *)
