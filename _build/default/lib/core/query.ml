(* Query combinators over a rule context: the [get] forms of §3-§4.

   - [iter]/[list]/[fold]: positive queries ([get T(prefix)] with an
     optional residual predicate, the boolean-lambda part of a query).
   - [uniq]: [get uniq? T(...)] — at most one matching tuple expected.
   - [is_empty]: the negative query form ([get uniq? ... == null]).
   - [count]/[min_by]/[reduce]: aggregate queries.

   All of these run against the Gamma database; the law of causality
   makes their results stable (§4), which the causality checker
   verifies per rule. *)

let iter ctx schema ?(prefix = [||]) ?where f =
  ctx.Rule.iter_prefix schema prefix (fun t ->
      match where with
      | None -> f t
      | Some p -> if p t then f t)

let fold ctx schema ?prefix ?where ~init ~f () =
  let acc = ref init in
  iter ctx schema ?prefix ?where (fun t -> acc := f !acc t);
  !acc

let list ctx schema ?prefix ?where () =
  List.rev (fold ctx schema ?prefix ?where ~init:[] ~f:(fun acc t -> t :: acc) ())

let count ctx schema ?prefix ?where () =
  fold ctx schema ?prefix ?where ~init:0 ~f:(fun n _ -> n + 1) ()

exception Not_unique of string

let uniq ctx schema ?prefix ?where () =
  let found = ref None in
  iter ctx schema ?prefix ?where (fun t ->
      match !found with
      | None -> found := Some t
      | Some prev ->
          if not (Tuple.equal prev t) then
            raise (Not_unique schema.Schema.name));
  !found

let is_empty ctx schema ?prefix ?where () =
  uniq ctx schema ?prefix ?where () = None

let min_by ctx schema ?prefix ?where ~key () =
  fold ctx schema ?prefix ?where ~init:None
    ~f:(fun acc t ->
      match acc with
      | None -> Some t
      | Some best -> if key t < key best then Some t else acc)
    ()

let reduce ctx schema ?prefix ?where ~monoid ~f () =
  fold ctx schema ?prefix ?where ~init:monoid.Reducer.empty
    ~f:(fun acc t -> monoid.Reducer.combine acc (f t))
    ()
