(* Table schemas: the [table Name(cols -> cols) orderby (...)] declaration.

   Columns before the [->] form the primary key (the ShipTable invariant
   that only one Ship exists per frame); the orderby list defines which
   fields and literals make up the tuple's causality timestamp. *)

type orderby_entry =
  | Lit of string (* capitalised literal, ranked by the order declarations *)
  | Seq of string (* [seq f]: this level is processed in field order *)
  | Par of string (* [par f]: subtrees at this level run in parallel *)

type column = { col_name : string; col_ty : Value.ty }

type t = {
  id : int; (* dense unique id, assigned by the program registry *)
  name : string;
  columns : column array;
  key_arity : int; (* leading columns forming the primary key; 0 = none *)
  orderby : orderby_entry array;
  index : (string, int) Hashtbl.t; (* column name -> position *)
  orderby_fields : int array; (* column position per orderby entry; -1 = Lit *)
  mutable fields_cmp : (Value.t array -> Value.t array -> int) option;
      (* schema-specialized field comparator, compiled on first use;
         a racy double compile is benign (both closures are equivalent) *)
}

exception Schema_error of string

let orderby_entry_field = function Lit _ -> None | Seq f | Par f -> Some f

let pp_orderby_entry ppf = function
  | Lit l -> Fmt.string ppf l
  | Seq f -> Fmt.pf ppf "seq %s" f
  | Par f -> Fmt.pf ppf "par %s" f

let column name ty = { col_name = name; col_ty = ty }
let int_col name = column name Value.TInt
let float_col name = column name Value.TFloat
let string_col name = column name Value.TStr
let bool_col name = column name Value.TBool

let make ~id ~name ~columns ~key_arity ~orderby =
  if name = "" then raise (Schema_error "table name must be non-empty");
  let columns = Array.of_list columns in
  if Array.length columns = 0 then
    raise (Schema_error (name ^ ": a table needs at least one column"));
  if key_arity < 0 || key_arity > Array.length columns then
    raise (Schema_error (name ^ ": key arity out of range"));
  let index = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem index c.col_name then
        raise (Schema_error (name ^ ": duplicate column " ^ c.col_name));
      Hashtbl.replace index c.col_name i)
    columns;
  let orderby = Array.of_list orderby in
  let orderby_fields =
    Array.map
      (fun entry ->
        match orderby_entry_field entry with
        | None -> -1
        | Some f -> (
            match Hashtbl.find_opt index f with
            | Some i -> i
            | None ->
                raise
                  (Schema_error
                     (Fmt.str "%s: orderby refers to unknown field %s" name f))))
      orderby
  in
  { id; name; columns; key_arity; orderby; index; orderby_fields;
    fields_cmp = None }

let arity t = Array.length t.columns

let field_pos t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> raise (Schema_error (t.name ^ ": unknown field " ^ name))

let field_ty t i = t.columns.(i).col_ty

let key_columns t = Array.sub t.columns 0 t.key_arity

let has_key t = t.key_arity > 0

(* -- schema-specialized field comparison ----------------------------- *)

(* Per-column monomorphic comparators.  Each must induce exactly the
   order of [Value.compare]: in particular a TFloat column may legally
   hold an [Int] (the widening rule), and [Value.compare] orders mixed
   [Int]/[Float] by constructor rank, so the float fast path only fires
   on a [Float]/[Float] pair. *)
let column_cmp = function
  | Value.TInt -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> Int.compare x y
        | _ -> Value.compare a b)
  | Value.TFloat -> (
      fun a b ->
        match (a, b) with
        | Value.Float x, Value.Float y -> Float.compare x y
        | Value.Int x, Value.Int y -> Int.compare x y
        | _ -> Value.compare a b)
  | Value.TStr -> (
      fun a b ->
        match (a, b) with
        | Value.Str x, Value.Str y -> String.compare x y
        | _ -> Value.compare a b)
  | Value.TBool -> (
      fun a b ->
        match (a, b) with
        | Value.Bool x, Value.Bool y -> Bool.compare x y
        | _ -> Value.compare a b)

let compile_fields_compare columns =
  let n = Array.length columns in
  let all ty = Array.for_all (fun c -> c.col_ty = ty) columns in
  if all Value.TInt then (fun a b ->
    (* The common all-int schema: one tight loop, no per-field closure. *)
    if Array.length a <> n || Array.length b <> n then Value.compare_arrays a b
    else
      let rec go i =
        if i >= n then 0
        else
          match (Array.unsafe_get a i, Array.unsafe_get b i) with
          | Value.Int x, Value.Int y ->
              if x < y then -1 else if x > y then 1 else go (i + 1)
          | va, vb ->
              let c = Value.compare va vb in
              if c <> 0 then c else go (i + 1)
      in
      go 0)
  else
    let cmps = Array.map (fun c -> column_cmp c.col_ty) columns in
    fun a b ->
      if Array.length a <> n || Array.length b <> n then Value.compare_arrays a b
      else
        let rec go i =
          if i >= n then 0
          else
            let c =
              (Array.unsafe_get cmps i) (Array.unsafe_get a i)
                (Array.unsafe_get b i)
            in
            if c <> 0 then c else go (i + 1)
        in
        go 0

let fields_compare t =
  match t.fields_cmp with
  | Some f -> f
  | None ->
      let f = compile_fields_compare t.columns in
      t.fields_cmp <- Some f;
      f

let pp ppf t =
  let pp_col ppf c = Fmt.pf ppf "%s %s" (Value.ty_name c.col_ty) c.col_name in
  let keys = Array.to_list (Array.sub t.columns 0 t.key_arity) in
  let rest =
    Array.to_list (Array.sub t.columns t.key_arity (arity t - t.key_arity))
  in
  (match keys with
  | [] -> Fmt.pf ppf "table %s(%a)" t.name (Fmt.list ~sep:Fmt.comma pp_col) rest
  | _ ->
      Fmt.pf ppf "table %s(%a -> %a)" t.name
        (Fmt.list ~sep:Fmt.comma pp_col)
        keys
        (Fmt.list ~sep:Fmt.comma pp_col)
        rest);
  if Array.length t.orderby > 0 then
    Fmt.pf ppf " orderby (%a)"
      (Fmt.array ~sep:Fmt.comma pp_orderby_entry)
      t.orderby
