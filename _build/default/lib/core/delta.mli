(** The Delta tree: pending tuples of all tables in one multi-level
    priority structure ordered by the causality order, with duplicate
    elimination on insert.

    Concurrency contract (matching the engine's step structure): any
    number of domains may {!insert} concurrently, but
    {!extract_min_class} must run with no concurrent operations. *)

type t

type mode = Sequential | Concurrent
(** Which family of data structures backs the tree levels: stdlib
    [Map]/[Hashtbl] (the paper's TreeMap path, single-threaded only) or
    the concurrent skip list / sharded hash map. *)

val create : mode:mode -> nlits:int -> unit -> t
(** [nlits] is the number of order literals at program freeze time; it
    fixes the width of named-branch arrays. *)

val insert : t -> Tuple.t -> Timestamp.t -> bool
(** Add a pending tuple under its timestamp.  Returns [false] (and
    leaves the tree unchanged) when an equal tuple is already pending. *)

val extract_min_class : t -> Tuple.t list
(** Remove and return all minimal tuples — one equivalence class of the
    causality order, including every subtree of [par] levels.  Returns
    [[]] iff the tree is empty.  Single-threaded. *)

val size : t -> int
(** Number of pending tuples. *)

val is_empty : t -> bool

val inserted_total : t -> int
(** Lifetime count of successful inserts. *)

val deduped_total : t -> int
(** Lifetime count of duplicate tuples dropped on insert. *)
