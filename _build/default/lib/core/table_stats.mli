(** Per-table usage counters — the paper's logging system for recording
    statistics about each table during a run (§1.5), used to choose
    parallelisation strategies and data structures.

    Counters are striped by domain so the hot put path never contends
    on a shared cache line; reads sum the stripes. *)

type counter

val make_counter : unit -> counter
(** A free-standing striped counter, for components that extend the
    per-table set (e.g. the advisor's per-prefix-length histograms). *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Bulk increment, one atomic op for a whole batch. *)

val read : counter -> int

type counters = {
  puts : counter;
  delta_inserts : counter;
  delta_dups : counter;
  gamma_inserts : counter;
  gamma_dups : counter;
  triggers : counter;
  queries : counter;
}

type t

val create : string list -> t
(** One counter set per table name, in id order. *)

val counters : t -> int -> counters
(** The counter set for a table id. *)

val get : t -> string -> counters option

type snapshot = {
  table : string;
  n_puts : int;
  n_delta_inserts : int;
  n_delta_dups : int;
  n_gamma_inserts : int;
  n_gamma_dups : int;
  n_triggers : int;
  n_queries : int;
}

val snapshot : t -> snapshot list
val pp_snapshot : Format.formatter -> snapshot list -> unit
