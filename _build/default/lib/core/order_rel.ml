(* The partial order over capitalised order literals, built from the
   program's [order A < B < C] declarations (e.g.
   [order Req < PvWatts < SumMonth] in the PvWatts program).

   The Delta tree needs a *total* order on the literals that appear at
   each level so it can store named branches in a linear array (§5 of the
   paper: "indexed by a total ordering of the order relationship").  We
   therefore compute a deterministic topological extension of the declared
   partial order: Kahn's algorithm with a stable tie-break on declaration
   order, so that the linear extension is independent of hash order and
   identical across runs.  Cycles in the declarations are rejected. *)

exception Cycle of string list

type t = {
  names : (string, int) Hashtbl.t; (* literal -> registration index *)
  mutable literals : string list; (* reverse registration order *)
  edges : (int, int list ref) Hashtbl.t; (* a -> successors, a < b *)
  mutable ranks : (string, int) Hashtbl.t option; (* memoised extension *)
  mutable pairs : (string * string) list; (* declared a < b, reverse order *)
}

let create () =
  {
    names = Hashtbl.create 16;
    literals = [];
    edges = Hashtbl.create 16;
    ranks = None;
    pairs = [];
  }

let intern t name =
  match Hashtbl.find_opt t.names name with
  | Some i -> i
  | None ->
      let i = Hashtbl.length t.names in
      Hashtbl.replace t.names name i;
      t.literals <- name :: t.literals;
      t.ranks <- None;
      i

let declare t name = ignore (intern t name)

let declare_less t a b =
  let ia = intern t a and ib = intern t b in
  let succs =
    match Hashtbl.find_opt t.edges ia with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.edges ia r;
        r
  in
  if not (List.mem ib !succs) then succs := ib :: !succs;
  t.pairs <- (a, b) :: t.pairs;
  t.ranks <- None

let declare_chain t names =
  let rec go = function
    | a :: (b :: _ as rest) ->
        declare_less t a b;
        go rest
    | [ last ] -> declare t last
    | [] -> ()
  in
  go names

let literals t = List.rev t.literals
let declared_pairs t = List.rev t.pairs

(* Kahn's algorithm with a min-heap keyed by registration index, giving a
   stable deterministic linear extension. *)
let compute_ranks t =
  let n = Hashtbl.length t.names in
  let name_of = Array.make n "" in
  Hashtbl.iter (fun name i -> name_of.(i) <- name) t.names;
  let indegree = Array.make n 0 in
  Hashtbl.iter
    (fun _ succs -> List.iter (fun b -> indegree.(b) <- indegree.(b) + 1) !succs)
    t.edges;
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then ready := IS.add i !ready
  done;
  let ranks = Hashtbl.create n in
  let placed = ref 0 in
  while not (IS.is_empty !ready) do
    let i = IS.min_elt !ready in
    ready := IS.remove i !ready;
    Hashtbl.replace ranks name_of.(i) !placed;
    incr placed;
    (match Hashtbl.find_opt t.edges i with
    | None -> ()
    | Some succs ->
        List.iter
          (fun b ->
            indegree.(b) <- indegree.(b) - 1;
            if indegree.(b) = 0 then ready := IS.add b !ready)
          !succs)
  done;
  if !placed < n then (
    let stuck =
      List.filter (fun name -> not (Hashtbl.mem ranks name)) (literals t)
    in
    raise (Cycle stuck));
  ranks

let ranks t =
  match t.ranks with
  | Some r -> r
  | None ->
      let r = compute_ranks t in
      t.ranks <- Some r;
      r

let rank t name =
  match Hashtbl.find_opt (ranks t) name with
  | Some r -> r
  | None -> intern t name |> fun _ -> Hashtbl.find (ranks t) name

let count t = Hashtbl.length t.names

(* Reachability in the declared partial order (not its extension):
   used by the causality checker, where [A < B] must be *provable*,
   not merely true in the chosen linear extension. *)
let provably_less t a b =
  match (Hashtbl.find_opt t.names a, Hashtbl.find_opt t.names b) with
  | Some ia, Some ib ->
      let visited = Hashtbl.create 16 in
      let rec reach i =
        if i = ib then true
        else if Hashtbl.mem visited i then false
        else (
          Hashtbl.replace visited i ();
          match Hashtbl.find_opt t.edges i with
          | None -> false
          | Some succs -> List.exists reach !succs)
      in
      reach ia
  | _ -> false

let comparable t a b = a = b || provably_less t a b || provably_less t b a
