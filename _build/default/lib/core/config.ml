(* Runtime configuration: the JStar compiler flags, reproduced as runtime
   options so that — exactly as the paper argues — parallelisation
   strategy and data-structure choices change without touching the
   program text. *)

type data_structures =
  | Auto (* sequential structures iff threads = 1 *)
  | Sequential_ds (* TreeMap/TreeSet family, single-threaded only *)
  | Concurrent_ds (* skip list / sharded hash family *)

type grain =
  | Auto_grain (* max 1 (n / (4 * workers)): chunked leaves, adaptive *)
  | Fixed of int (* fixed fork/join leaf size; [Fixed 1] = task per tuple *)

type t = {
  threads : int;
      (* Fork/join pool size (--threads=N); 1 = run on the caller only,
         the "-sequential" code path. *)
  data_structures : data_structures;
  no_delta : string list;
      (* -noDelta T: put T tuples straight into Gamma and fire their
         rules immediately (§5.1). *)
  no_gamma : string list;
      (* -noGamma T: never store T tuples in Gamma (§5.1). *)
  stores : (string * Store.kind_spec) list;
      (* per-table Gamma store overrides *)
  grain : grain; (* fork/join leaf granularity at engine call sites *)
  put_batching : bool;
      (* buffer parallel-phase puts per domain and flush them through
         Delta.insert_batch / Store.insert_batch at the phase barriers *)
  specialized_compare : bool;
      (* schema-compiled comparators + cached-hash dedup tables instead
         of generic polymorphic Value dispatch *)
  task_per_rule : bool;
      (* §5.2: "Even if a tuple triggers more than one rule, we create
         only one task for that tuple - we could create one task per
         rule that is triggered."  This flag enables the latter. *)
  runtime_causality_check : bool;
      (* assert at every put that the new tuple is not in the past *)
  max_steps : int option; (* safety valve for runaway programs *)
  print_directly : bool;
      (* bypass deterministic output collection (debugging only) *)
  tracing : Jstar_obs.Level.t;
      (* Off: zero-cost; Counters: metrics registry only; Spans: also
         record per-domain span rings for Chrome-trace export *)
}

let default =
  {
    threads = 1;
    data_structures = Auto;
    no_delta = [];
    no_gamma = [];
    stores = [];
    grain = Auto_grain;
    put_batching = false;
    specialized_compare = true;
    task_per_rule = false;
    runtime_causality_check = false;
    max_steps = None;
    print_directly = false;
    tracing = Jstar_obs.Level.Off;
  }

let sequential = default

(* Parallel defaults include the hot-path optimisations that EXPERIMENTS.md
   showed strictly helping multi-threaded runs; [default] keeps them off so
   ablations still have a baseline. *)
let parallel ?(threads = 4) () = { default with threads; put_batching = true }

let effective_mode t =
  match t.data_structures with
  | Auto -> if t.threads > 1 then Delta.Concurrent else Delta.Sequential
  | Sequential_ds -> Delta.Sequential
  | Concurrent_ds -> Delta.Concurrent

exception Invalid of string

let validate t =
  if t.threads < 1 then raise (Invalid "threads must be >= 1");
  if t.threads > 1 && t.data_structures = Sequential_ds then
    raise (Invalid "sequential data structures require threads = 1");
  match t.grain with
  | Fixed g when g < 1 -> raise (Invalid "grain must be >= 1")
  | _ -> ()

(* The adaptive all-minimums granularity: coarse enough that fork/join
   overhead amortises, fine enough (4 leaves per worker) that stealing
   can still balance uneven leaf costs. *)
let resolve_grain t ~workers ~n =
  match t.grain with
  | Fixed g -> max 1 g
  | Auto_grain -> max 1 (n / (4 * max 1 workers))
