(** Integer difference-logic decision procedure: the "SMT solver" that
    discharges JStar's causality proof obligations.

    Constraints are conjunctions of [x - y <= c]; satisfiability is
    negative-cycle detection (Bellman-Ford), and entailment is decided
    by refuting the negated goal — sound *and complete* for this
    fragment, which is all the obligations of §4 need. *)

open Jstar_core

type atom = { x : string; y : string; c : int }
(** The constraint [x - y <= c]. *)

val zero_var : string
(** Distinguished variable fixed at 0, for encoding constants. *)

val satisfiable : atom list -> bool
val entails : atom list -> atom -> bool
val pp_atom : Format.formatter -> atom -> unit

val atoms_of_constr : Spec.constr -> atom list
(** Translate a rule assumption; constraints touching
    [Spec.Unknown] translate to no atoms (they assert nothing). *)

val proves_le : Spec.constr list -> Spec.iexpr -> Spec.iexpr -> bool
(** [proves_le assumptions a b]: does [a <= b] hold under the
    assumptions, for every value of the trigger fields?  [Unknown]
    expressions are never provable. *)

val proves_lt : Spec.constr list -> Spec.iexpr -> Spec.iexpr -> bool
val proves_eq : Spec.constr list -> Spec.iexpr -> Spec.iexpr -> bool
