open Jstar_core

(* A decision procedure for integer difference logic — the fragment the
   JStar causality proof obligations live in (§4).

   Constraints have the form [x - y <= c] over integer variables, where
   either side may be the distinguished [zero] variable (so bounds and
   constants are expressible).  A conjunction of such constraints is
   satisfiable iff the constraint graph (edge y --c--> x for x - y <= c)
   has no negative cycle; we detect that with Bellman-Ford.

   Entailment is decided by refutation: [assumptions |= x - y <= c] iff
   [assumptions ∪ {y - x <= -c - 1}] is unsatisfiable (integers make the
   negation's strictness exact). *)

type atom = { x : string; y : string; c : int } (* x - y <= c *)

let zero_var = "$0"

let pp_atom ppf a =
  if a.y = zero_var then Fmt.pf ppf "%s <= %d" a.x a.c
  else if a.x = zero_var then Fmt.pf ppf "-%s <= %d" a.y a.c
  else Fmt.pf ppf "%s - %s <= %d" a.x a.y a.c

(* Bellman-Ford over the constraint graph; distances start at 0 for all
   vertices (equivalent to a virtual source), so any negative cycle is
   found regardless of connectivity. *)
let satisfiable atoms =
  let vars = Hashtbl.create 16 in
  let intern v =
    match Hashtbl.find_opt vars v with
    | Some i -> i
    | None ->
        let i = Hashtbl.length vars in
        Hashtbl.replace vars v i;
        i
  in
  ignore (intern zero_var);
  let edges =
    List.map (fun { x; y; c } -> (intern y, intern x, c)) atoms
  in
  let n = Hashtbl.length vars in
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun (u, v, w) ->
        if dist.(u) + w < dist.(v) then begin
          dist.(v) <- dist.(u) + w;
          changed := true
        end)
      edges
  done;
  (* A relaxation in round n+1 means a negative cycle. *)
  not !changed

let entails assumptions { x; y; c } =
  (* negation of x - y <= c  is  y - x <= -c - 1 *)
  not (satisfiable ({ x = y; y = x; c = -c - 1 } :: assumptions))

(* Convenience forms over Spec.iexpr (expressions in trigger fields). *)

let var_of_field f = "f:" ^ f

(* x <= y + k as atoms, where x and y are flattened expressions. *)
let le_atom ex ey k =
  match (Spec.flatten ex, Spec.flatten ey) with
  | Spec.FUnknown, _ | _, Spec.FUnknown -> None
  | Spec.FField (fx, ax), Spec.FField (fy, ay) ->
      (* fx + ax <= fy + ay + k *)
      Some { x = var_of_field fx; y = var_of_field fy; c = ay + k - ax }
  | Spec.FField (fx, ax), Spec.FConst cy ->
      Some { x = var_of_field fx; y = zero_var; c = cy + k - ax }
  | Spec.FConst cx, Spec.FField (fy, ay) ->
      Some { x = zero_var; y = var_of_field fy; c = ay + k - cx }
  | Spec.FConst cx, Spec.FConst cy ->
      (* constant fact: encode as 0 - 0 <= (satisfied?) *)
      if cx <= cy + k then Some { x = zero_var; y = zero_var; c = 0 }
      else Some { x = zero_var; y = zero_var; c = -1 }

let atoms_of_constr = function
  | Spec.Le (a, b) -> ( match le_atom a b 0 with Some x -> [ x ] | None -> [])
  | Spec.Lt (a, b) -> ( match le_atom a b (-1) with Some x -> [ x ] | None -> [])
  | Spec.Eq (a, b) -> (
      match (le_atom a b 0, le_atom b a 0) with
      | Some x, Some y -> [ x; y ]
      | _ -> [])

(* Entailment of expression comparisons under Spec constraints.
   Unknown on either side is never entailed. *)
let proves assumptions ~strict ea eb =
  match le_atom ea eb (if strict then -1 else 0) with
  | None -> false
  | Some goal ->
      let assumption_atoms = List.concat_map atoms_of_constr assumptions in
      entails assumption_atoms goal

let proves_le assumptions ea eb = proves assumptions ~strict:false ea eb
let proves_lt assumptions ea eb = proves assumptions ~strict:true ea eb

let proves_eq assumptions ea eb =
  proves_le assumptions ea eb && proves_le assumptions eb ea
