(** Symbolic timestamps and the lexicographic proof procedure behind
    the §4 causality obligations. *)

open Jstar_core

type sym_comp = SLit of string | SSeq of Spec.iexpr | SPar of Spec.iexpr
type sym_ts = sym_comp array

val of_trigger : Schema.t -> sym_ts
(** The trigger tuple's own timestamp: each orderby field bound to
    itself. *)

val of_bindings : Schema.t -> Spec.ts_binding list -> sym_ts
(** A put/read timestamp: orderby fields bound per the rule metadata;
    missing fields become [Unknown] (never provable). *)

type verdict = Proved | Failed of string

val prove_leq :
  Order_rel.t -> Spec.constr list -> strict:bool -> sym_ts -> sym_ts -> verdict
(** Prove [a <= b] (or [a < b] when [strict]) for all values of the
    trigger fields, under the rule's assumed constraints. *)

val pp : Format.formatter -> sym_ts -> unit
