(* The per-rule causality check driver (§4).

   For every rule, we discharge:
   - one obligation per declared put:     orderby(trigger) <= orderby(put)
   - one per negative/aggregate read:     orderby(read)   <  orderby(trigger)
   - one per positive read:               orderby(read)   <= orderby(trigger)

   A failed put obligation is a causality warning ("the programmer is
   strongly recommended to change the program"); a failed
   negative/aggregate obligation is a *stratification error*, the
   condition under which the paper's SMT solvers report that a rule is
   not (locally) stratified — e.g. the PvWatts program without
   [order Req < PvWatts < SumMonth].

   Rules without any declared metadata are reported as unchecked. *)

open Jstar_core

type severity = Stratification_error | Causality_warning | Unchecked_rule

type finding = {
  rule : string;
  subject : string; (* "put Ship" / "aggregate read PvWatts" / ... *)
  severity : severity;
  message : string;
}

type report = {
  findings : finding list;
  rules_checked : int;
  obligations : int;
  proved : int;
}

let ok report =
  List.for_all (fun f -> f.severity = Unchecked_rule) report.findings

let errors report =
  List.filter (fun f -> f.severity = Stratification_error) report.findings

let pp_severity ppf = function
  | Stratification_error -> Fmt.string ppf "STRATIFICATION ERROR"
  | Causality_warning -> Fmt.string ppf "causality warning"
  | Unchecked_rule -> Fmt.string ppf "unchecked"

let pp_finding ppf f =
  Fmt.pf ppf "[%a] rule %s, %s: %s" pp_severity f.severity f.rule f.subject
    f.message

let pp_report ppf r =
  Fmt.pf ppf "causality: %d rule(s), %d obligation(s), %d proved@."
    r.rules_checked r.obligations r.proved;
  List.iter (fun f -> Fmt.pf ppf "  %a@." pp_finding f) r.findings

let read_kind_name = function
  | Spec.Positive -> "positive read"
  | Spec.Negative -> "negative read"
  | Spec.Aggregate -> "aggregate read"

let check_rule order find_table (r : Rule.t) =
  let trigger_ts = Obligation.of_trigger r.Rule.trigger in
  let assumptions = r.Rule.assumes in
  let findings = ref [] in
  let obligations = ref 0 in
  let proved = ref 0 in
  let note subject severity message =
    findings := { rule = r.Rule.name; subject; severity; message } :: !findings
  in
  if r.Rule.puts = [] && r.Rule.reads = [] then
    note "rule body" Unchecked_rule
      "no reads/puts metadata declared; causality not verified"
  else begin
    List.iter
      (fun (p : Spec.put_spec) ->
        incr obligations;
        match find_table p.Spec.pt_table with
        | None ->
            note
              ("put " ^ p.Spec.pt_table)
              Causality_warning "puts into an undeclared table"
        | Some schema -> (
            let put_ts = Obligation.of_bindings schema p.Spec.pt_ts in
            match
              Obligation.prove_leq order assumptions ~strict:false trigger_ts
                put_ts
            with
            | Obligation.Proved -> incr proved
            | Obligation.Failed why ->
                let why =
                  match p.Spec.pt_when with
                  | Some cond -> why ^ " (under condition " ^ cond ^ ")"
                  | None -> why
                in
                note ("put " ^ p.Spec.pt_table) Causality_warning why))
      r.Rule.puts;
    List.iter
      (fun (rd : Spec.read_spec) ->
        incr obligations;
        match find_table rd.Spec.rd_table with
        | None ->
            note
              (read_kind_name rd.Spec.rd_kind ^ " " ^ rd.Spec.rd_table)
              Causality_warning "reads an undeclared table"
        | Some schema -> (
            let read_ts = Obligation.of_bindings schema rd.Spec.rd_ts in
            let strict =
              match rd.Spec.rd_kind with
              | Spec.Positive -> false
              | Spec.Negative | Spec.Aggregate -> true
            in
            match
              Obligation.prove_leq order assumptions ~strict read_ts trigger_ts
            with
            | Obligation.Proved -> incr proved
            | Obligation.Failed why ->
                let severity =
                  if strict then Stratification_error else Causality_warning
                in
                note
                  (read_kind_name rd.Spec.rd_kind ^ " " ^ rd.Spec.rd_table)
                  severity why))
      r.Rule.reads
  end;
  (List.rev !findings, !obligations, !proved)

let check_program (p : Program.t) =
  let order = Program.order_rel p in
  let find_table name =
    match Program.find_table p name with
    | schema -> Some schema
    | exception Schema.Schema_error _ -> None
  in
  let rules = Program.rules p in
  let findings, obligations, proved =
    List.fold_left
      (fun (fs, obs, prs) r ->
        let f, o, pr = check_rule order find_table r in
        (fs @ f, obs + o, prs + pr))
      ([], 0, 0) rules
  in
  { findings; rules_checked = List.length rules; obligations; proved }
