(** Global stratification analysis over the table dependency graph:
    recursive components containing negative or aggregate edges need
    *local* (timestamp) stratification — discharged by {!Check}. *)

open Jstar_core

type edge = {
  src : string;
  dst : string;
  kind : Spec.read_kind;  (** [Positive] for plain trigger edges *)
  via_rule : string;
}

type t = {
  tables : string list;
  edges : edge list;
  sccs : string list list;  (** recursive components *)
  needs_local : edge list;
      (** negative/aggregate edges inside a recursive component *)
}

val analyse : Program.t -> t

val globally_stratified : t -> bool
(** No recursion through negation/aggregation at all. *)

val pp : Format.formatter -> t -> unit
