(* Symbolic timestamp comparison: the proof obligations of §4.

   A symbolic timestamp is the orderby list of a table with each seq/par
   field bound to an integer expression over the *trigger* tuple's
   fields.  The trigger's own timestamp binds each field to itself; a
   put or read binds whatever the rule metadata declares, defaulting to
   Unknown (which is never provable — producing the paper's warning).

   Lexicographic proof of [a <= b] (or [a < b]): scan the levels;
   - equal literals, or two par components, continue;
   - provably-ordered literals or a strictly-provable seq comparison
     settle the whole obligation;
   - a seq comparison provable only non-strictly continues, demanding
     the remainder prove the (possibly strict) relation under equality;
   - exhaustion: the shorter timestamp orders strictly first.          *)

open Jstar_core

type sym_comp = SLit of string | SSeq of Spec.iexpr | SPar of Spec.iexpr

type sym_ts = sym_comp array

(* The timestamp of the trigger tuple itself. *)
let of_trigger (schema : Schema.t) : sym_ts =
  Array.map
    (function
      | Schema.Lit l -> SLit l
      | Schema.Seq f -> SSeq (Spec.Field f)
      | Schema.Par f -> SPar (Spec.Field f))
    schema.Schema.orderby

(* The timestamp of a put/read against [schema], with rule-supplied
   bindings (field -> expression over trigger fields). *)
let of_bindings (schema : Schema.t) (bindings : Spec.ts_binding list) : sym_ts =
  let lookup f =
    match
      List.find_opt (fun b -> b.Spec.field = f) bindings
    with
    | Some b -> b.Spec.expr
    | None -> Spec.Unknown
  in
  Array.map
    (function
      | Schema.Lit l -> SLit l
      | Schema.Seq f -> SSeq (lookup f)
      | Schema.Par f -> SPar (lookup f))
    schema.Schema.orderby

let pp_comp ppf = function
  | SLit l -> Fmt.string ppf l
  | SSeq e -> Fmt.pf ppf "seq %a" Spec.pp_iexpr e
  | SPar e -> Fmt.pf ppf "par %a" Spec.pp_iexpr e

let pp ppf (ts : sym_ts) =
  Fmt.pf ppf "<%a>" (Fmt.array ~sep:(Fmt.any ", ") pp_comp) ts

type verdict = Proved | Failed of string

(* Prove [a <= b] ([a < b] when [strict]) under the rule's assumptions,
   for all trigger-field values. *)
let prove_leq order assumptions ~strict (a : sym_ts) (b : sym_ts) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then
      if strict then
        Failed "the two timestamps can be equal, but a strict ordering is required"
      else Proved
    else if i >= la then Proved (* a exhausts first: strictly smaller *)
    else if i >= lb then
      Failed
        "the target's orderby list exhausts first, so it orders strictly \
         before the source"
    else
      match (a.(i), b.(i)) with
      | SLit x, SLit y ->
          if x = y then go (i + 1)
          else if Order_rel.provably_less order x y then Proved
          else if Order_rel.provably_less order y x then
            Failed (Fmt.str "order declarations place %s before %s" y x)
          else
            Failed
              (Fmt.str
                 "literals %s and %s are not related by any order declaration"
                 x y)
      | SPar _, SPar _ ->
          (* par levels are one equivalence class: equal by definition *)
          go (i + 1)
      | SSeq ea, SSeq eb ->
          if Dlsolver.proves_lt assumptions ea eb then Proved
          else if Dlsolver.proves_le assumptions ea eb then go (i + 1)
          else
            Failed
              (Fmt.str "cannot prove %a <= %a at level %d" Spec.pp_iexpr ea
                 Spec.pp_iexpr eb i)
      | x, y ->
          Failed
            (Fmt.str "orderby lists disagree about level %d (%a vs %a)" i
               pp_comp x pp_comp y)
  in
  go 0
