(** The per-rule causality check driver (§4): one obligation per
    declared put (trigger <= put) and per read (read <= trigger,
    strict for negative/aggregate reads). *)

type severity =
  | Stratification_error
      (** an unprovable negative/aggregate read — the paper's
          "Stratification error" *)
  | Causality_warning  (** an unprovable put or positive read *)
  | Unchecked_rule  (** no metadata was declared for the rule *)

type finding = {
  rule : string;
  subject : string;
  severity : severity;
  message : string;
}

type report = {
  findings : finding list;
  rules_checked : int;
  obligations : int;
  proved : int;
}

val check_program : Jstar_core.Program.t -> report

val ok : report -> bool
(** No errors or warnings (unchecked rules are tolerated). *)

val errors : report -> finding list
(** The stratification errors only. *)

val pp_report : Format.formatter -> report -> unit
val pp_finding : Format.formatter -> finding -> unit
