lib/causality/check.ml: Fmt Jstar_core List Obligation Program Rule Schema Spec
