lib/causality/dlsolver.ml: Array Fmt Hashtbl Jstar_core List Spec
