lib/causality/strata.mli: Format Jstar_core Program Spec
