lib/causality/strata.ml: Fmt Hashtbl Jstar_core List Program Rule Schema Spec String
