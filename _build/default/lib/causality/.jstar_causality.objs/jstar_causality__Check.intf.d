lib/causality/check.mli: Format Jstar_core
