lib/causality/obligation.mli: Format Jstar_core Order_rel Schema Spec
