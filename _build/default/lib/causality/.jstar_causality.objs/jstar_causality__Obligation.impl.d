lib/causality/obligation.ml: Array Dlsolver Fmt Jstar_core List Order_rel Schema Spec
