lib/causality/dlsolver.mli: Format Jstar_core Spec
