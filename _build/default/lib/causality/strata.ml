(* Global stratification analysis over the table dependency graph.

   Nodes are tables.  For every rule triggered by T that puts into P we
   add edges T -> P (the trigger dependency) and R -> P for each
   declared read R, labelled with the read kind.  A program is
   *globally* stratifiable when no strongly connected component contains
   a negative or aggregate edge; programs that are not (Dijkstra's
   Estimate/Done recursion, for example) need *local* stratification —
   the timestamp-based causality obligations checked by [Check].

   This analysis feeds the same programmer workflow as the paper's
   dependency-graph visualisation tools (stage 2 of §2). *)

open Jstar_core

type edge = {
  src : string;
  dst : string;
  kind : Spec.read_kind; (* Positive for trigger edges *)
  via_rule : string;
}

type t = {
  tables : string list;
  edges : edge list;
  sccs : string list list; (* components with >1 node or a self-loop *)
  needs_local : edge list; (* negative/aggregate edges inside an SCC *)
}

let edges_of_program p =
  List.concat_map
    (fun (r : Rule.t) ->
      let trigger = r.Rule.trigger.Schema.name in
      List.concat_map
        (fun (put : Spec.put_spec) ->
          let dst = put.Spec.pt_table in
          { src = trigger; dst; kind = Spec.Positive; via_rule = r.Rule.name }
          :: List.map
               (fun (rd : Spec.read_spec) ->
                 {
                   src = rd.Spec.rd_table;
                   dst;
                   kind = rd.Spec.rd_kind;
                   via_rule = r.Rule.name;
                 })
               r.Rule.reads)
        r.Rule.puts)
    (Program.rules p)

(* Tarjan's strongly connected components. *)
let sccs_of nodes edges =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let succs n =
    List.filter_map (fun e -> if e.src = n then Some e.dst else None) edges
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  !components

let analyse p =
  let tables = List.map (fun s -> s.Schema.name) (Program.schemas p) in
  let edges = edges_of_program p in
  let all_sccs = sccs_of tables edges in
  let self_loop n = List.exists (fun e -> e.src = n && e.dst = n) edges in
  let cyclic =
    List.filter
      (fun c -> List.length c > 1 || (match c with [ n ] -> self_loop n | _ -> false))
      all_sccs
  in
  let in_same_scc a b =
    List.exists (fun c -> List.mem a c && List.mem b c) cyclic
  in
  let needs_local =
    List.filter
      (fun e -> e.kind <> Spec.Positive && in_same_scc e.src e.dst)
      edges
  in
  { tables; edges; sccs = cyclic; needs_local }

let globally_stratified t = t.needs_local = []

let pp ppf t =
  Fmt.pf ppf "dependency graph: %d table(s), %d edge(s)@."
    (List.length t.tables) (List.length t.edges);
  List.iter
    (fun c -> Fmt.pf ppf "  recursive component: {%s}@." (String.concat ", " c))
    t.sccs;
  List.iter
    (fun e ->
      Fmt.pf ppf
        "  requires local stratification: %s -> %s (%s, via rule %s)@." e.src
        e.dst
        (match e.kind with
        | Spec.Negative -> "negation"
        | Spec.Aggregate -> "aggregation"
        | Spec.Positive -> "positive")
        e.via_rule)
    t.needs_local
