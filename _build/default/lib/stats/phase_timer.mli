(** Re-export of {!Jstar_obs.Phase_timer} (the phase timer moved into
    the observability library; this alias keeps the historical
    [Jstar_stats.Phase_timer] path alive). *)

include module type of struct
  include Jstar_obs.Phase_timer
end
