(* The dependency-graph visualiser (§1.5, Fig 7): tables and rules as a
   bipartite graph — "blue rectangles are tuples, and red circles are
   tasks executing rules" — exported as Graphviz DOT, optionally
   annotated with per-table usage statistics from a run, which is the
   paper's "tools to visualise those logs as annotated dependency
   graphs of the program execution". *)

open Jstar_core

type node = Table of string | Rule_node of string

type edge = {
  from_node : node;
  to_node : node;
  negative : bool; (* negative/aggregate read dependency *)
}

type t = { nodes : node list; edges : edge list }

let of_program p =
  let tables = List.map (fun s -> Table s.Schema.name) (Program.schemas p) in
  let rules = Program.rules p in
  let rule_nodes = List.map (fun r -> Rule_node r.Rule.name) rules in
  let edges =
    List.concat_map
      (fun (r : Rule.t) ->
        let rn = Rule_node r.Rule.name in
        let trigger_edge =
          {
            from_node = Table r.Rule.trigger.Schema.name;
            to_node = rn;
            negative = false;
          }
        in
        let read_edges =
          List.map
            (fun (rd : Spec.read_spec) ->
              {
                from_node = Table rd.Spec.rd_table;
                to_node = rn;
                negative = rd.Spec.rd_kind <> Spec.Positive;
              })
            r.Rule.reads
        in
        let put_edges =
          List.map
            (fun (put : Spec.put_spec) ->
              { from_node = rn; to_node = Table put.Spec.pt_table; negative = false })
            r.Rule.puts
        in
        (trigger_edge :: read_edges) @ put_edges)
      rules
  in
  { nodes = tables @ rule_nodes; edges }

let node_id = function
  | Table name -> "t_" ^ name
  | Rule_node name -> "r_" ^ name

let table_label stats name =
  match stats with
  | None -> name
  | Some st -> (
      match Table_stats.get st name with
      | None -> name
      | Some c ->
          Fmt.str "%s\\nputs=%d triggers=%d queries=%d" name
            (Table_stats.read c.Table_stats.puts)
            (Table_stats.read c.Table_stats.triggers)
            (Table_stats.read c.Table_stats.queries))

let to_dot ?stats graph =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph jstar {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
      match n with
      | Table name ->
          out "  %s [shape=box, style=filled, fillcolor=lightblue, label=\"%s\"];\n"
            (node_id n) (table_label stats name)
      | Rule_node name ->
          out "  %s [shape=ellipse, style=filled, fillcolor=salmon, label=\"%s\"];\n"
            (node_id n) name)
    graph.nodes;
  List.iter
    (fun e ->
      out "  %s -> %s%s;\n" (node_id e.from_node) (node_id e.to_node)
        (if e.negative then " [style=dashed, label=\"not/agg\"]" else ""))
    graph.edges;
  out "}\n";
  Buffer.contents buf

let write_dot ?stats graph path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_dot ?stats graph))
