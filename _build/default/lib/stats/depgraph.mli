(** The dependency-graph visualiser (§1.5, Fig 7): tables and rules as
    a bipartite graph, exported as Graphviz DOT, optionally annotated
    with per-table usage statistics from a run. *)

type node = Table of string | Rule_node of string

type edge = {
  from_node : node;
  to_node : node;
  negative : bool;  (** a negative/aggregate read dependency *)
}

type t = { nodes : node list; edges : edge list }

val of_program : Jstar_core.Program.t -> t
(** Build the graph from rule triggers and the declared reads/puts. *)

val to_dot : ?stats:Jstar_core.Table_stats.t -> t -> string
(** Render as DOT; with [stats], table nodes carry put/trigger/query
    counts — the "annotated dependency graphs of the program
    execution". *)

val write_dot : ?stats:Jstar_core.Table_stats.t -> t -> string -> unit
