lib/stats/depgraph.mli: Jstar_core
