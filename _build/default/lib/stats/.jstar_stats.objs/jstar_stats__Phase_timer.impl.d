lib/stats/phase_timer.ml: Jstar_obs
