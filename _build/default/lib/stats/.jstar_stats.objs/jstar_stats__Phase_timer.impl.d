lib/stats/phase_timer.ml: Fmt List Unix
