lib/stats/phase_timer.mli: Jstar_obs
