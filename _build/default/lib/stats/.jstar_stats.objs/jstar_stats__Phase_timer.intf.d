lib/stats/phase_timer.mli: Format
