lib/stats/depgraph.ml: Buffer Fmt Fun Jstar_core List Printf Program Rule Schema Spec Table_stats
