(* Named phase timing, for breakdowns like the §6.3 measurement that
   attributes 16.9% of PvWatts' single-thread time to reading/parsing,
   63.7% to Gamma insertion, 3.8% to Delta insertion and 15.6% to the
   reducers — the numbers that motivate the Disruptor redesign and its
   Amdahl bound. *)

type t = {
  mutable phases : (string * float) list; (* reverse registration order *)
}

let create () = { phases = [] }

let add t name seconds =
  if List.mem_assoc name t.phases then
    (* accumulate in place, preserving first-registration order *)
    t.phases <-
      List.map
        (fun (n, s) -> if n = name then (n, s +. seconds) else (n, s))
        t.phases
  else t.phases <- (name, seconds) :: t.phases

let time t name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  add t name (Unix.gettimeofday () -. t0);
  r

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 t.phases

let phases t = List.rev t.phases

let fractions t =
  let tot = total t in
  if tot <= 0.0 then []
  else List.map (fun (n, s) -> (n, s /. tot)) (phases t)

(* Amdahl's law: maximum speedup when everything except the phases named
   in [serial] is parallelised over [workers] ways — the paper's
   1 / (0.169 + (1 - 0.169) / 12) = 4.2x computation. *)
let amdahl_bound t ~serial ~workers =
  let serial_frac =
    List.fold_left
      (fun acc (n, f) -> if List.mem n serial then acc +. f else acc)
      0.0 (fractions t)
  in
  1.0 /. (serial_frac +. ((1.0 -. serial_frac) /. float_of_int workers))

let pp ppf t =
  let tot = total t in
  List.iter
    (fun (name, s) ->
      Fmt.pf ppf "  %-28s %8.3fs  %5.1f%%@." name s
        (if tot > 0.0 then 100.0 *. s /. tot else 0.0))
    (phases t)
