(* Absorbed into the observability layer; re-exported here so existing
   [Jstar_stats.Phase_timer] users keep working. *)
include Jstar_obs.Phase_timer
