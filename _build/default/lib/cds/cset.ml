(* Concurrent navigable set: a thin veneer over the skip list map with
   unit values, matching the role of Java's ConcurrentSkipListSet as the
   default Gamma table store. *)

type 'a t = ('a, unit) Skiplist.t

let create ~compare () = Skiplist.create ~compare ()
let add t x = Skiplist.add t x ()

let add_batch t xs =
  (* Callers pass sorted batches so consecutive searches share their
     upper-level descent path in cache; semantically this is just [add]
     per element, first equal element winning. *)
  Array.map (fun x -> Skiplist.add t x ()) xs

let mem t x = Skiplist.mem t x
let remove t x = Skiplist.remove t x
let length t = Skiplist.length t
let is_empty t = Skiplist.is_empty t
let min_elt_opt t = Option.map fst (Skiplist.min_binding_opt t)
let pop_min_opt t = Option.map fst (Skiplist.pop_min_opt t)
let iter t f = Skiplist.iter t (fun x () -> f x)
let fold t init f = Skiplist.fold t init (fun acc x () -> f acc x)
let to_list t = List.map fst (Skiplist.to_list t)
let iter_from t from f = Skiplist.iter_from t from (fun x () -> f x)
