(* Michael & Scott lock-free FIFO queue (PODC 1996), with the usual
   helping rule: an enqueuer that finds the tail lagging swings it
   forward before retrying, so every operation is lock-free. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = { head : 'a node Atomic.t; tail : 'a node Atomic.t }

let create () =
  let sentinel = { value = None; next = Atomic.make None } in
  { head = Atomic.make sentinel; tail = Atomic.make sentinel }

let push t v =
  let node = { value = Some v; next = Atomic.make None } in
  let backoff = Jstar_sched.Backoff.create () in
  let rec go () =
    let tail = Atomic.get t.tail in
    match Atomic.get tail.next with
    | None ->
        if Atomic.compare_and_set tail.next None (Some node) then
          (* Linearised; tail swing is best-effort. *)
          ignore (Atomic.compare_and_set t.tail tail node)
        else (
          Jstar_sched.Backoff.once backoff;
          go ())
    | Some next ->
        (* Help the lagging enqueuer, then retry. *)
        ignore (Atomic.compare_and_set t.tail tail next);
        go ()
  in
  go ()

let pop t =
  let backoff = Jstar_sched.Backoff.create () in
  let rec go () =
    let head = Atomic.get t.head in
    match Atomic.get head.next with
    | None -> None
    | Some next ->
        if Atomic.compare_and_set t.head head next then next.value
        else (
          Jstar_sched.Backoff.once backoff;
          go ())
  in
  go ()

let is_empty t = Atomic.get (Atomic.get t.head).next = None

let drain t f =
  let rec go () =
    match pop t with
    | None -> ()
    | Some v ->
        f v;
        go ()
  in
  go ()
