(* Sharded concurrent hash map, the stand-in for Java's ConcurrentHashMap
   (which JStar uses for hash-indexed Gamma tables).

   The table is split into [shards] independent (mutex, Hashtbl) pairs
   selected by the key's hash.  Point operations lock one shard; whole-map
   operations ([iter], [length], [fold]) lock shards one at a time, giving
   the same weakly-consistent snapshot semantics as the Java class. *)

type ('k, 'v) shard = { mutex : Mutex.t; table : ('k, 'v) Hashtbl.t }

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  mask : int;
  hash : 'k -> int;
}

let default_shards = 64

let create ?(shards = default_shards) ?(hash = Hashtbl.hash) () =
  let n = Jstar_sched.Bits.next_pow2 (max 1 shards) in
  {
    shards =
      Array.init n (fun _ ->
          { mutex = Mutex.create (); table = Hashtbl.create 16 });
    mask = n - 1;
    hash;
  }

let shard_of t k =
  (* Mix the hash so that consecutive hash values spread across shards. *)
  let h = t.hash k in
  let h = h lxor (h lsr 16) in
  t.shards.(h land t.mask)

let with_shard s f =
  Mutex.lock s.mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock s.mutex)

let find_opt t k =
  let s = shard_of t k in
  with_shard s (fun () -> Hashtbl.find_opt s.table k)

let mem t k =
  let s = shard_of t k in
  with_shard s (fun () -> Hashtbl.mem s.table k)

let set t k v =
  let s = shard_of t k in
  with_shard s (fun () -> Hashtbl.replace s.table k v)

let add_if_absent t k v =
  let s = shard_of t k in
  with_shard s (fun () ->
      if Hashtbl.mem s.table k then false
      else (
        Hashtbl.replace s.table k v;
        true))

let find_or_add t k mk =
  let s = shard_of t k in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.table k with
      | Some v -> v
      | None ->
          let v = mk () in
          Hashtbl.replace s.table k v;
          v)

let update t k f =
  let s = shard_of t k in
  with_shard s (fun () ->
      let cur = Hashtbl.find_opt s.table k in
      match f cur with
      | None -> Hashtbl.remove s.table k
      | Some v -> Hashtbl.replace s.table k v)

let remove t k =
  let s = shard_of t k in
  with_shard s (fun () ->
      if Hashtbl.mem s.table k then (
        Hashtbl.remove s.table k;
        true)
      else false)

let length t =
  Array.fold_left
    (fun acc s -> acc + with_shard s (fun () -> Hashtbl.length s.table))
    0 t.shards

let is_empty t = length t = 0

let iter t f =
  Array.iter
    (fun s ->
      (* Snapshot the shard under its lock, then call back lock-free so
         [f] may itself touch the map without deadlocking. *)
      let entries =
        with_shard s (fun () ->
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table [])
      in
      List.iter (fun (k, v) -> f k v) entries)
    t.shards

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let clear t =
  Array.iter (fun s -> with_shard s (fun () -> Hashtbl.reset s.table)) t.shards
