lib/cds/chashmap.ml: Array Fun Hashtbl Jstar_sched List Mutex
