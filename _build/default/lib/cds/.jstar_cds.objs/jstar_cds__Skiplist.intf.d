lib/cds/skiplist.mli:
