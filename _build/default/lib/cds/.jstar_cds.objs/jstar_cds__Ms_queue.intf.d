lib/cds/ms_queue.mli:
