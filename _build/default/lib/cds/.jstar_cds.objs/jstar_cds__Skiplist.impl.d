lib/cds/skiplist.ml: Array Atomic Domain List Mutex Obj Option
