lib/cds/cset.mli:
