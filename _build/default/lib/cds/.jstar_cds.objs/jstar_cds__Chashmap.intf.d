lib/cds/chashmap.mli:
