lib/cds/treiber_stack.mli:
