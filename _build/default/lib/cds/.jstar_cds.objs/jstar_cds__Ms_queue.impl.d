lib/cds/ms_queue.ml: Atomic Jstar_sched
