lib/cds/treiber_stack.ml: Atomic Jstar_sched List
