lib/cds/cset.ml: List Option Skiplist
