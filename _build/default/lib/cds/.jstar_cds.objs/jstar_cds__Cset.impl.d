lib/cds/cset.ml: Array List Option Skiplist
