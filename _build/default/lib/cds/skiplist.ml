(* Lazy lock-based concurrent skip list map (Herlihy & Shavit, "The Art of
   Multiprocessor Programming", ch. 14), the stand-in for Java's
   ConcurrentSkipListMap/Set used by the original JStar runtime for Delta
   tree levels and Gamma tables.

   Properties:
   - [find_opt] is wait-free (no locks taken).
   - [add]/[remove] lock only the predecessor nodes of the affected node,
     validate, and retry on interference.
   - Deletion is lazy: a node is first [marked] (logically deleted) under
     its own lock, then physically unlinked.
   - Ordered traversal ([iter], [fold], [iter_from]) is weakly consistent
     under concurrency and exact at quiescence, like the Java class.

   OCaml [Mutex] is not reentrant, so when locking the predecessor chain we
   skip physically-equal predecessors that repeat across levels. *)

let max_level = 16

type ('k, 'v) node = {
  key : 'k option; (* None for the head sentinel *)
  value : 'v;
  next : ('k, 'v) node option Atomic.t array; (* None = tail at that level *)
  marked : bool Atomic.t;
  fully_linked : bool Atomic.t;
  top_level : int;
  lock : Mutex.t;
}

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  head : ('k, 'v) node;
  length : int Atomic.t;
  rng : int Atomic.t;
}

let make_node key value top_level =
  {
    key;
    value;
    next = Array.init (top_level + 1) (fun _ -> Atomic.make None);
    marked = Atomic.make false;
    fully_linked = Atomic.make false;
    top_level;
    lock = Mutex.create ();
  }

let create ~compare () =
  let head = make_node None (Obj.magic 0) (max_level - 1) in
  Atomic.set head.fully_linked true;
  { compare; head; length = Atomic.make 0; rng = Atomic.make 0x2545F491 }

(* Geometric level distribution, p = 1/2, from a shared xorshift state.
   The CAS-free fetch-update race only weakens randomness, never safety. *)
let random_level t =
  let x = Atomic.get t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  Atomic.set t.rng x;
  let rec count lvl bits =
    if lvl >= max_level - 1 || bits land 1 = 0 then lvl
    else count (lvl + 1) (bits lsr 1)
  in
  count 0 (x land max_int)

let node_lt t node key =
  match node.key with None -> true | Some k -> t.compare k key < 0

let node_eq t node key =
  match node.key with None -> false | Some k -> t.compare k key = 0

(* Fill [preds]/[succs] with the predecessor and successor of [key] at
   every level; return the highest level at which [key] was found, or -1. *)
let find_node t key preds succs =
  let found = ref (-1) in
  let pred = ref t.head in
  for level = max_level - 1 downto 0 do
    let curr = ref (Atomic.get !pred.next.(level)) in
    let continue = ref true in
    while !continue do
      match !curr with
      | Some c when node_lt t c key ->
          pred := c;
          curr := Atomic.get c.next.(level)
      | _ -> continue := false
    done;
    (match !curr with
    | Some c when !found = -1 && node_eq t c key -> found := level
    | _ -> ());
    preds.(level) <- !pred;
    succs.(level) <- !curr
  done;
  !found

let find_opt t key =
  (* Wait-free search that does not need the preds/succs arrays. *)
  let rec descend pred level =
    let rec walk pred curr =
      match curr with
      | Some c when node_lt t c key -> walk c (Atomic.get c.next.(level))
      | _ -> (pred, curr)
    in
    let _pred, curr = walk pred (Atomic.get pred.next.(level)) in
    match curr with
    | Some c when node_eq t c key ->
        if Atomic.get c.fully_linked && not (Atomic.get c.marked) then
          Some c.value
        else if level = 0 then None
        else descend _pred (level - 1)
    | _ -> if level = 0 then None else descend _pred (level - 1)
  in
  descend t.head (max_level - 1)

let mem t key = Option.is_some (find_opt t key)

(* Lock the distinct predecessors from level 0 up to [top]; returns the
   list of locked nodes (for unlocking) and whether validation passed. *)
let lock_and_validate t preds succs top =
  ignore t;
  let locked = ref [] in
  let valid = ref true in
  (try
     for level = 0 to top do
       let pred = preds.(level) in
       let already =
         List.exists (fun n -> n == pred) !locked
       in
       if not already then (
         Mutex.lock pred.lock;
         locked := pred :: !locked);
       let succ_ok =
         match succs.(level) with
         | None -> true
         | Some s -> not (Atomic.get s.marked)
       in
       let link_ok =
         match (Atomic.get pred.next.(level), succs.(level)) with
         | None, None -> true
         | Some a, Some b -> a == b
         | _ -> false
       in
       if Atomic.get pred.marked || (not succ_ok) || not link_ok then (
         valid := false;
         raise Exit)
     done
   with Exit -> ());
  (!locked, !valid)

let unlock_all locked = List.iter (fun n -> Mutex.unlock n.lock) locked

let rec add t key value =
  let preds = Array.make max_level t.head in
  let succs = Array.make max_level None in
  let top_level = random_level t in
  let l_found = find_node t key preds succs in
  if l_found <> -1 then (
    match succs.(l_found) with
    | Some node_found when not (Atomic.get node_found.marked) ->
        (* Wait until the in-flight insert is visible, then report dup. *)
        while not (Atomic.get node_found.fully_linked) do
          Domain.cpu_relax ()
        done;
        false
    | _ ->
        (* Found but marked: a removal is in flight; retry. *)
        Domain.cpu_relax ();
        add t key value)
  else
    let locked, valid = lock_and_validate t preds succs top_level in
    if not valid then (
      unlock_all locked;
      Domain.cpu_relax ();
      add t key value)
    else (
      let node = make_node (Some key) value top_level in
      for level = 0 to top_level do
        Atomic.set node.next.(level) succs.(level)
      done;
      for level = 0 to top_level do
        Atomic.set preds.(level).next.(level) (Some node)
      done;
      Atomic.set node.fully_linked true;
      unlock_all locked;
      Atomic.incr t.length;
      true)

let rec find_or_add t key mk =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = mk () in
      if add t key v then v else find_or_add t key mk

(* Lock the distinct predecessors and check each still points at [victim]
   at every level up to [top].  Unlike the insert-side validation, the
   victim itself is marked at this point, so succ marks are not checked. *)
let lock_and_validate_remove preds victim top =
  let locked = ref [] in
  let valid = ref true in
  (try
     for level = 0 to top do
       let pred = preds.(level) in
       if not (List.exists (fun n -> n == pred) !locked) then (
         Mutex.lock pred.lock;
         locked := pred :: !locked);
       let link_ok =
         match Atomic.get pred.next.(level) with
         | Some n -> n == victim
         | None -> false
       in
       if Atomic.get pred.marked || not link_ok then (
         valid := false;
         raise Exit)
     done
   with Exit -> ());
  (!locked, !valid)

let remove t key =
  let preds = Array.make max_level t.head in
  let succs = Array.make max_level None in
  (* [victim] is set (and its [marked] bit owned by us) once the logical
     delete has happened; the loop then retries the physical unlink. *)
  let rec loop victim =
    let l_found = find_node t key preds succs in
    match victim with
    | None -> (
        if l_found = -1 then false
        else
          match succs.(l_found) with
          | None -> false
          | Some candidate ->
              if
                (not (Atomic.get candidate.fully_linked))
                || candidate.top_level <> l_found
                || Atomic.get candidate.marked
              then false
              else (
                Mutex.lock candidate.lock;
                if Atomic.get candidate.marked then (
                  Mutex.unlock candidate.lock;
                  false)
                else (
                  Atomic.set candidate.marked true;
                  unlink (Some candidate))))
    | Some _ -> unlink victim
  and unlink victim =
    match victim with
    | None -> assert false
    | Some v ->
        let locked, valid = lock_and_validate_remove preds v v.top_level in
        if not valid then (
          unlock_all locked;
          Domain.cpu_relax ();
          loop victim)
        else (
          for level = v.top_level downto 0 do
            Atomic.set preds.(level).next.(level) (Atomic.get v.next.(level))
          done;
          unlock_all locked;
          Mutex.unlock v.lock;
          Atomic.decr t.length;
          true)
  in
  loop None

let length t = Atomic.get t.length
let is_empty t = length t = 0

let min_binding_opt t =
  let rec go node =
    match Atomic.get node.next.(0) with
    | None -> None
    | Some c ->
        if Atomic.get c.marked || not (Atomic.get c.fully_linked) then go c
        else
          match c.key with
          | Some k -> Some (k, c.value)
          | None -> go c
  in
  go t.head

let rec pop_min_opt t =
  match min_binding_opt t with
  | None -> None
  | Some (k, v) -> if remove t k then Some (k, v) else pop_min_opt t

(* Weakly-consistent ordered traversal from the smallest key. *)
let iter t f =
  let rec go node =
    match Atomic.get node.next.(0) with
    | None -> ()
    | Some c ->
        (if (not (Atomic.get c.marked)) && Atomic.get c.fully_linked then
           match c.key with Some k -> f k c.value | None -> ());
        go c
  in
  go t.head

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t [] (fun acc k v -> (k, v) :: acc))

(* Iterate bindings with key >= from, while [f] keeps returning true. *)
let iter_from t from f =
  (* Descend to the first node >= from using the index levels. *)
  let rec descend pred level =
    let rec walk pred curr =
      match curr with
      | Some c when node_lt t c from -> walk c (Atomic.get c.next.(level))
      | _ -> pred
    in
    let pred = walk pred (Atomic.get pred.next.(level)) in
    if level = 0 then pred else descend pred (level - 1)
  in
  let start = descend t.head (max_level - 1) in
  let rec go node =
    match Atomic.get node.next.(0) with
    | None -> ()
    | Some c ->
        let keep_going =
          if (not (Atomic.get c.marked)) && Atomic.get c.fully_linked then
            match c.key with
            | Some k when t.compare k from >= 0 -> f k c.value
            | _ -> true
          else true
        in
        if keep_going then go c
  in
  go start
