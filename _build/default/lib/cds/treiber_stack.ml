(* Treiber's lock-free stack: the classic CAS-retry LIFO, used by the
   engine for collecting per-step outputs from parallel rule firings. *)

type 'a t = { head : 'a list Atomic.t }

let create () = { head = Atomic.make [] }

let push t v =
  let backoff = Jstar_sched.Backoff.create () in
  let rec go () =
    let cur = Atomic.get t.head in
    if Atomic.compare_and_set t.head cur (v :: cur) then ()
    else (
      Jstar_sched.Backoff.once backoff;
      go ())
  in
  go ()

let pop t =
  let backoff = Jstar_sched.Backoff.create () in
  let rec go () =
    match Atomic.get t.head with
    | [] -> None
    | v :: rest as cur ->
        if Atomic.compare_and_set t.head cur rest then Some v
        else (
          Jstar_sched.Backoff.once backoff;
          go ())
  in
  go ()

let pop_all t = Atomic.exchange t.head []
let is_empty t = Atomic.get t.head = []
let length t = List.length (Atomic.get t.head)
