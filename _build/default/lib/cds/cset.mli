(** Concurrent navigable set (Java's [ConcurrentSkipListSet]): ordered,
    duplicate-free, safe for concurrent insertion and traversal. *)

type 'a t

val create : compare:('a -> 'a -> int) -> unit -> 'a t

val add : 'a t -> 'a -> bool
(** [true] iff the element was absent and has been inserted. *)

val add_batch : 'a t -> 'a array -> bool array
(** Element-wise {!add} over the whole array; slot [i] is [true] iff
    element [i] was newly inserted (of equal elements in one batch, the
    first wins).  Best fed sorted input, so successive descents stay
    cache-warm. *)

val mem : 'a t -> 'a -> bool
val remove : 'a t -> 'a -> bool
val length : 'a t -> int
val is_empty : 'a t -> bool
val min_elt_opt : 'a t -> 'a option
val pop_min_opt : 'a t -> 'a option
val iter : 'a t -> ('a -> unit) -> unit
val fold : 'a t -> 'b -> ('b -> 'a -> 'b) -> 'b
val to_list : 'a t -> 'a list

val iter_from : 'a t -> 'a -> ('a -> bool) -> unit
(** Visit elements >= the given one, in order, while the callback returns
    [true]. *)
