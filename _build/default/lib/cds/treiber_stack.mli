(** Treiber's lock-free stack. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option

val pop_all : 'a t -> 'a list
(** Atomically take every element, newest first.  O(1). *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(n); intended for tests and reporting. *)
