(** Michael-Scott lock-free FIFO queue. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val is_empty : 'a t -> bool

val drain : 'a t -> ('a -> unit) -> unit
(** Pop until empty, applying the callback in FIFO order. *)
