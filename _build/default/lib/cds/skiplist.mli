(** Lazy lock-based concurrent skip list map — the stand-in for Java's
    [ConcurrentSkipListMap].

    Lookups are wait-free; insertion and removal lock only the affected
    predecessor nodes and retry on interference.  Ordered traversals are
    weakly consistent under concurrency and exact at quiescence. *)

type ('k, 'v) t

val create : compare:('k -> 'k -> int) -> unit -> ('k, 'v) t
(** An empty map ordered by [compare]. *)

val add : ('k, 'v) t -> 'k -> 'v -> bool
(** [add t k v] inserts the binding if [k] is absent; returns whether the
    insert happened ([false] = key already present, map unchanged). *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Atomically: return the value bound to [k], inserting [mk ()] first if
    [k] is absent.  [mk] may be called and its result discarded when a
    concurrent insert wins the race, so it must be side-effect free. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

val remove : ('k, 'v) t -> 'k -> bool
(** [remove t k] logically then physically deletes [k]; returns whether
    this call removed it. *)

val min_binding_opt : ('k, 'v) t -> ('k * 'v) option
(** Smallest binding, or [None] when empty. *)

val pop_min_opt : ('k, 'v) t -> ('k * 'v) option
(** Atomically remove and return the smallest binding. *)

val length : ('k, 'v) t -> int
(** Number of bindings (exact at quiescence). *)

val is_empty : ('k, 'v) t -> bool

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** In-order traversal over unmarked bindings. *)

val fold : ('k, 'v) t -> 'a -> ('a -> 'k -> 'v -> 'a) -> 'a
val to_list : ('k, 'v) t -> ('k * 'v) list

val iter_from : ('k, 'v) t -> 'k -> ('k -> 'v -> bool) -> unit
(** [iter_from t k f] visits bindings with key >= [k] in order while [f]
    returns [true] — the substrate for ordered range queries. *)
