(** Sharded concurrent hash map (Java's [ConcurrentHashMap]).

    Point operations lock a single shard; whole-map traversals visit
    shards one at a time and are weakly consistent under concurrent
    mutation. *)

type ('k, 'v) t

val create : ?shards:int -> ?hash:('k -> int) -> unit -> ('k, 'v) t
(** [create ()] uses 64 shards (rounded up to a power of two) and
    [Hashtbl.hash]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. *)

val add_if_absent : ('k, 'v) t -> 'k -> 'v -> bool
(** Atomic put-if-absent; [true] iff the binding was inserted. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Atomically return the existing value or insert and return [mk ()].
    [mk] runs under the shard lock and must not touch this map. *)

val update : ('k, 'v) t -> 'k -> ('v option -> 'v option) -> unit
(** Atomic read-modify-write of one binding; returning [None] deletes. *)

val remove : ('k, 'v) t -> 'k -> bool
val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Weakly-consistent traversal; [f] may safely re-enter the map. *)

val fold : ('k, 'v) t -> 'a -> ('a -> 'k -> 'v -> 'a) -> 'a
val clear : ('k, 'v) t -> unit
