(* Divide-and-conquer parallel iteration on top of Pool, mirroring the
   RecursiveAction/RecursiveTask idioms of the Java Fork/Join framework.

   Ranges are split in half down to [grain] iterations; the left half is
   forked and the right half executed directly, so the task tree has depth
   O(log n) and each worker's deque holds the frontier of its own subtree. *)

let default_grain_for pool n =
  (* Aim for ~8 leaf tasks per worker so stealing can balance. *)
  max 1 (n / (8 * Pool.size pool))

let parallel_for pool ?grain ~lo ~hi f =
  (* Iterates f over [lo, hi) *)
  let n = hi - lo in
  if n <= 0 then ()
  else
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain_for pool n
    in
    let rec go lo hi =
      if hi - lo <= grain then
        for i = lo to hi - 1 do
          f i
        done
      else
        let mid = lo + ((hi - lo) / 2) in
        let left = Pool.fork pool (fun () -> go lo mid) in
        go mid hi;
        Pool.join pool left
    in
    Pool.run pool (fun () -> go lo hi)

let parallel_reduce pool ?grain ~lo ~hi ~init ~combine f =
  (* Tree reduction: leaves fold sequentially with [init]/[combine]; inner
     nodes combine the two halves.  [combine] must be associative and
     [init] its identity for the result to be deterministic. *)
  let n = hi - lo in
  if n <= 0 then init
  else
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain_for pool n
    in
    let rec go lo hi =
      if hi - lo <= grain then (
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := combine !acc (f i)
        done;
        !acc)
      else
        let mid = lo + ((hi - lo) / 2) in
        let left = Pool.fork pool (fun () -> go lo mid) in
        let right = go mid hi in
        combine (Pool.join pool left) right
    in
    Pool.run pool (fun () -> go lo hi)

let parallel_map pool ?grain f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    let out = Array.make n (f arr.(0)) in
    parallel_for pool ?grain ~lo:0 ~hi:n (fun i -> out.(i) <- f arr.(i));
    out

let parallel_init pool ?grain n f =
  if n = 0 then [||]
  else
    let out = Array.make n (f 0) in
    parallel_for pool ?grain ~lo:1 ~hi:n (fun i -> out.(i) <- f i);
    out

let invoke_all pool fs =
  (* Run a list of heterogeneous actions to completion; first exception
     (in list order) is re-raised after all complete or fail. *)
  Pool.run pool (fun () ->
      let futs = List.map (fun f -> Pool.fork pool f) fs in
      let results =
        List.map
          (fun fut ->
            match
              try Ok (Pool.join pool fut) with e -> Error e
            with
            | r -> r)
          futs
      in
      List.iter (function Error e -> raise e | Ok () -> ()) results)

let fork_join2 pool f g =
  Pool.run pool (fun () ->
      let ff = Pool.fork pool f in
      let gv = g () in
      let fv = Pool.join pool ff in
      (fv, gv))
