(* Exponential backoff for contended atomic operations.

   The retry loop of a failed CAS should wait an exponentially growing,
   randomised amount before retrying, otherwise all contenders hammer the
   same cache line in lock step.  The first few rounds spin with
   [Domain.cpu_relax]; beyond [spin_limit] rounds we also yield the
   processor briefly so that an oversubscribed pool still makes progress. *)

type t = {
  mutable step : int;
  max_step : int;
  seed : int ref;
}

let default_max_step = 12

let create ?(max_step = default_max_step) () =
  { step = 0; max_step; seed = ref (Domain.self () :> int) }

(* xorshift PRNG: cheap and good enough to decorrelate contenders. *)
let next_random seed =
  let x = !seed in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  seed := x;
  x land max_int

let spin_limit = 8

let once t =
  let bound = 1 lsl min t.step t.max_step in
  let spins = 1 + (next_random t.seed mod bound) in
  if t.step <= spin_limit then
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done
  else (
    (* Long-running contention: let the OS schedule someone else. *)
    ignore spins;
    Unix.sleepf 1e-6);
  if t.step < t.max_step then t.step <- t.step + 1

let reset t = t.step <- 0
