(** Exponential randomised backoff for contended lock-free operations. *)

type t
(** Mutable backoff state; one per retry loop, never shared. *)

val create : ?max_step:int -> unit -> t
(** [create ()] makes a fresh backoff whose wait doubles on each {!once}
    up to [2^max_step] spin iterations (default [max_step] = 12). *)

val once : t -> unit
(** Wait once and increase the next wait.  The first several rounds spin
    with [Domain.cpu_relax]; later rounds additionally sleep for a
    microsecond so oversubscribed pools do not livelock. *)

val reset : t -> unit
(** Reset the wait back to the minimum. *)
