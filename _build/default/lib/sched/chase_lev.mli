(** Chase-Lev work-stealing deque.

    The owner domain calls {!push} and {!pop} (LIFO end); other domains
    call {!steal} (FIFO end).  All operations are lock-free; [push] and
    [pop] are wait-free apart from buffer growth. *)

type 'a t

val create : ?log_size:int -> unit -> 'a t
(** [create ()] makes an empty deque with initial capacity
    [2^log_size] (default 256).  The buffer grows without bound. *)

val push : 'a t -> 'a -> unit
(** Owner only: push onto the bottom (LIFO) end. *)

val pop : 'a t -> 'a option
(** Owner only: pop from the bottom (LIFO) end. *)

type 'a steal_result = Stolen of 'a | Empty | Retry

val steal : 'a t -> 'a steal_result
(** Thief: attempt to take one element from the top (FIFO) end.
    [Retry] means a concurrent operation interfered; the deque may or
    may not be empty. *)

val steal_blocking : 'a t -> 'a option
(** Like {!steal} but internally retries (with backoff) until it either
    steals an element or observes an empty deque. *)

val size : 'a t -> int
(** Racy snapshot of the number of elements; exact when quiescent. *)

val is_empty : 'a t -> bool
(** Racy emptiness check; exact when quiescent. *)
