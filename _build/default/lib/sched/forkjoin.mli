(** Recursive divide-and-conquer parallel iteration (the
    RecursiveAction/RecursiveTask layer of a fork/join framework). *)

val parallel_for :
  Pool.t -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [lo <= i < hi],
    splitting the range in half recursively down to [grain] iterations
    per leaf (default: about 8 leaves per worker). *)

val parallel_reduce :
  Pool.t ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  init:'a ->
  combine:('a -> 'a -> 'a) ->
  (int -> 'a) ->
  'a
(** Tree reduction over an index range.  Deterministic provided [combine]
    is associative with identity [init]. *)

val parallel_map : Pool.t -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. *)

val parallel_init : Pool.t -> ?grain:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init].  [f 0] is evaluated on the caller first to
    seed the output array. *)

val invoke_all : Pool.t -> (unit -> unit) list -> unit
(** Run all actions to completion; re-raises the first failure (in list
    order) after every action has finished. *)

val fork_join2 : Pool.t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two computations in parallel and return both results. *)
