(** Bit-twiddling helpers for the lock-free structures. *)

val count_leading_zeros : int -> int
(** Leading zero bits of a positive integer viewed as a 64-bit word.
    @raise Invalid_argument on non-positive input. *)

val next_pow2 : int -> int
(** Smallest power of two greater than or equal to the argument
    (and at least 1). *)

val is_pow2 : int -> bool
(** Whether the argument is a positive power of two. *)
