lib/sched/backoff.mli:
