lib/sched/bits.ml:
