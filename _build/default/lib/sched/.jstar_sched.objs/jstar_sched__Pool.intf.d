lib/sched/pool.mli: Jstar_obs
