lib/sched/pool.mli:
