lib/sched/forkjoin.ml: Array List Pool
