lib/sched/chase_lev.ml: Array Atomic Backoff Bits
