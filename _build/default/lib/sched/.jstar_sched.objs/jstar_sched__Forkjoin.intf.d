lib/sched/forkjoin.mli: Pool
