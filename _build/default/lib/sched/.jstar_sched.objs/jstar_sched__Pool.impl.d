lib/sched/pool.ml: Array Atomic Backoff Chase_lev Condition Domain Fun List Mutex Printexc Queue
