lib/sched/pool.ml: Array Atomic Backoff Chase_lev Condition Domain Fun Jstar_obs List Mutex Printexc Queue
