lib/sched/bits.mli:
