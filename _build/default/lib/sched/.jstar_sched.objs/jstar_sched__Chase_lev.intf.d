lib/sched/chase_lev.mli:
