lib/sched/backoff.ml: Domain Unix
