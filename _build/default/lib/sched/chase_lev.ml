(* Chase-Lev work-stealing deque (SPAA 2005, "Dynamic circular
   work-stealing deque"), adapted to the OCaml 5 memory model.

   One owner domain pushes and pops at the bottom; any number of thieves
   steal from the top.  [top] only ever increases (via CAS); [bottom] is
   written only by the owner but read by thieves, so it is an Atomic to
   obtain the required publication ordering.  Cells are individual
   [Atomic.t]s: the OCaml memory model gives no useful ordering guarantees
   for plain array cells under a data race, and the race between a
   concurrent [push] publishing a cell and a [steal] reading it is real.

   Growth: only the owner grows the buffer, copying live cells into a
   buffer of twice the size.  Thieves that raced with a growth re-read
   [buf] after a failed CAS, and the CAS on [top] ensures they never
   return a stale element twice. *)

type 'a buffer = { mask : int; cells : 'a option Atomic.t array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer log_size =
  let size = 1 lsl log_size in
  { mask = size - 1; cells = Array.init size (fun _ -> Atomic.make None) }

let create ?(log_size = 8) () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buffer log_size);
  }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let is_empty t = size t = 0

let buffer_get buf i = Atomic.get buf.cells.(i land buf.mask)
let buffer_set buf i v = Atomic.set buf.cells.(i land buf.mask) v

let grow t buf b tp =
  let old_size = buf.mask + 1 in
  let next = make_buffer (1 + (63 - Bits.count_leading_zeros old_size)) in
  for i = tp to b - 1 do
    buffer_set next i (buffer_get buf i)
  done;
  Atomic.set t.buf next;
  next

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf = if b - tp > buf.mask then grow t buf b tp else buf in
  buffer_set buf b (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then (
    (* Deque was empty; restore canonical form. *)
    Atomic.set t.bottom tp;
    None)
  else
    let buf = Atomic.get t.buf in
    let v = buffer_get buf b in
    if b > tp then (
      (* More than one element: no thief can reach index [b]. *)
      buffer_set buf b None;
      v)
    else if
      (* Exactly one element: race with thieves for it. *)
      Atomic.compare_and_set t.top tp (tp + 1)
    then (
      Atomic.set t.bottom (tp + 1);
      buffer_set buf b None;
      v)
    else (
      (* A thief won the last element. *)
      Atomic.set t.bottom (tp + 1);
      None)

type 'a steal_result = Stolen of 'a | Empty | Retry

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then Empty
  else
    let buf = Atomic.get t.buf in
    match buffer_get buf tp with
    | None ->
        (* The owner popped this cell between our reads. *)
        Retry
    | Some v ->
        if Atomic.compare_and_set t.top tp (tp + 1) then Stolen v else Retry

let steal_blocking t =
  let backoff = Backoff.create () in
  let rec go () =
    match steal t with
    | Stolen v -> Some v
    | Empty -> None
    | Retry ->
        Backoff.once backoff;
        go ()
  in
  go ()
