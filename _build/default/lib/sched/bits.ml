(* Small bit-twiddling helpers shared by the lock-free structures. *)

(* Number of leading zero bits of a positive integer, treating the value
   as a 64-bit word (OCaml's 63-bit int sign bit counts as a zero). *)
let count_leading_zeros n =
  if n <= 0 then invalid_arg "count_leading_zeros";
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc - 1) in
  go n 64

(* Smallest power of two >= n. *)
let next_pow2 n =
  if n <= 1 then 1
  else
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

let is_pow2 n = n > 0 && n land (n - 1) = 0
