(* §6.2: the -noDelta PvWatts optimisation.

   "the sequential execution time is 23.0 seconds without the
   optimisation and 8.44 seconds with the optimisation" — a ~2.7x win
   from not routing 8.76M non-trigger tuples through the Delta tree. *)

let run () =
  let data =
    Jstar_csv.Pvwatts_data.to_bytes
      ~installations:(Util.pvwatts_installations ())
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  let time no_delta =
    Util.time (fun () ->
        Jstar_apps.Pvwatts.run ~data
          (Jstar_apps.Pvwatts.config ~threads:1 ~no_delta
             ~store:Jstar_apps.Pvwatts.Default_store ()))
  in
  let with_delta = time false in
  let without_delta = time true in
  Util.bar_chart ~title:"Sec 6.2: PvWatts with and without -noDelta" ~unit:"s"
    [
      ("every tuple through Delta", with_delta);
      ("-noDelta PvWatts", without_delta);
    ];
  Util.note "speedup from -noDelta: %.2fx (paper: 23.0s -> 8.44s = 2.73x)"
    (with_delta /. without_delta)
