(* Figure 13: speedup of median-finding with varying pool size.
   Paper: quad-CPU Xeon E7-8837 (32 cores), 8.6x at 12 cores and a more
   gradual climb to 14x at 32 — the partition passes are memory-bound
   but nicely parallel, with a short sequential controller between
   rounds. *)

let run () =
  let n = Util.median_n () in
  let time threads =
    Util.time ~repeats:2 (fun () -> Jstar_apps.Median.run ~n ~threads ())
  in
  Util.speedup_table
    ~title:(Printf.sprintf "Fig 13: Median (%d doubles) speedup vs pool size" n)
    ~paper_note:"paper: 8.6x at 12 cores, 14x at 32 cores"
    [ ("median", List.map time Util.thread_counts) ]
