(* Figure 10: execution times of the Disruptor version of PvWatts
   against the sequential JStar program, for the two input orderings.

   Paper (i7-2600, 4 cores + HT): with 8 threads the Disruptor version
   achieves 3.31x over sequential JStar on the default (month-major,
   "unsorted") input and 2.52x on the day/hour-sorted input — the
   sorted input speeds up both versions but gives the Disruptor less
   headroom because its consumers are load-balanced either way. *)

module D = Jstar_disruptor.Disruptor

let run () =
  let installations = Util.pvwatts_installations () in
  let dataset ordering =
    Jstar_csv.Pvwatts_data.to_bytes ~installations ~ordering
  in
  let sequential data =
    Util.time (fun () ->
        Jstar_apps.Pvwatts.run ~data (Jstar_apps.Pvwatts.config ~threads:1 ()))
  in
  let disruptor data consumers =
    Util.time (fun () ->
        Jstar_apps.Pvwatts_disruptor.run
          ~options:{ D.pvwatts_options with D.num_consumers = consumers }
          ~data ())
  in
  Util.heading "Fig 10: Disruptor PvWatts vs sequential JStar";
  List.iter
    (fun (label, ordering) ->
      let data = dataset ordering in
      let seq = sequential data in
      Fmt.pr "  %-22s sequential jstar: %7.3fs@." label seq;
      List.iter
        (fun consumers ->
          let t = disruptor data consumers in
          Fmt.pr "  %-22s %2d consumer(s):   %7.3fs  (%.2fx over sequential)@."
            label consumers t (seq /. t))
        [ 1; 2; 3; 6; 12 ])
    [
      ("unsorted (month-major)", Jstar_csv.Pvwatts_data.Month_major);
      ("sorted (round-robin)", Jstar_csv.Pvwatts_data.Round_robin);
    ];
  Util.note "paper: 3.31x (unsorted) and 2.52x (sorted) at 8 threads";
  Util.note
    "with only %d cores the producer and consumers share hardware threads, \
     so gains cap early"
    Util.cores
