(* Figure 11: speedup of the naive matrix multiplication with varying
   fork/join pool size.  Paper: quad-CPU Xeon E7-8837 (32 cores), good
   speedup to 20 cores — the program is embarrassingly parallel with a
   high computation-to-communication ratio (one tuple per output row
   through the Delta set). *)

let run () =
  let n = Util.matmul_n () in
  let time variant threads =
    Util.time ~repeats:2 (fun () -> Jstar_apps.Matmul.run ~n ~variant ~threads ())
  in
  Util.speedup_table
    ~title:(Printf.sprintf "Fig 11: MatrixMult (%dx%d) speedup vs pool size" n n)
    ~paper_note:
      "paper: near-linear speedup to 20 cores on 32 (embarrassingly parallel)"
    [
      ( "unboxed (native arrays)",
        List.map (time Jstar_apps.Matmul.Unboxed) Util.thread_counts );
      ( "boxed (generic tuples)",
        List.map (time Jstar_apps.Matmul.Boxed) Util.thread_counts );
    ]
