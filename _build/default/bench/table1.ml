(* Table 1: the Disruptor options used for the PvWatts redesign, and
   the tuning alternatives considered. *)

module D = Jstar_disruptor.Disruptor
module W = Jstar_disruptor.Wait_strategy

let run () =
  let o = D.pvwatts_options in
  Util.heading "Table 1: Disruptor options used for PvWatts";
  let row cat param value = Fmt.pr "  %-12s %-28s %s@." cat param value in
  row "Category" "Parameter" "Value";
  row "RingBuffer" "Event" "PvWatts tuples";
  row "RingBuffer" "Size of Ring Buffer" (string_of_int o.D.ring_size);
  row "RingBuffer" "Wait Strategy" (W.name (W.create o.D.wait));
  row "RingBuffer" "Claim Strategy" "SingleThreaded-ClaimStrategy";
  row "Producer" "Total number of Producer" "1";
  row "Producer" "Publish Strategy"
    (Printf.sprintf "Claim slots in a batch of %d." o.D.batch);
  row "Producer" "Task" "Read input, create PvWatts tuples, add to ring";
  row "Consumer" "Total number of Consumer" (string_of_int o.D.num_consumers);
  row "Consumer" "Task" "Process PvWatts tuples and add to local Gamma";
  (* The alternatives the paper tuned over, measured on a small input. *)
  let data =
    Jstar_csv.Pvwatts_data.to_bytes
      ~installations:(max 2 (Util.pvwatts_installations () / 4))
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  let time options =
    Util.time ~repeats:2 (fun () ->
        Jstar_apps.Pvwatts_disruptor.run ~options ~data ())
  in
  Util.heading "Table 1 alternatives: wait strategies and batch sizes";
  List.iter
    (fun wait ->
      let t = time { o with D.wait; num_consumers = 3 } in
      Fmt.pr "  wait=%-24s %7.3fs@." (W.name (W.create wait)) t)
    [ W.Blocking; W.Yielding; W.Sleeping; W.Busy_spin ];
  List.iter
    (fun batch ->
      let t = time { o with D.batch; num_consumers = 3 } in
      Fmt.pr "  batch=%-23d %7.3fs@." batch t)
    [ 1; 16; 256 ];
  List.iter
    (fun ring_size ->
      let t = time { o with D.ring_size; num_consumers = 3 } in
      Fmt.pr "  ring=%-24d %7.3fs@." ring_size t)
    [ 256; 1024; 4096 ]
