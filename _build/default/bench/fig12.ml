(* Figure 12: speedup of Dijkstra's shortest path with varying pool
   size.  Paper: dual-CPU Xeon W5590 (8 cores), mediocre speedup
   topping out at 4.0x — millions of Estimate tuples contend on the
   Delta tree, which "is still not sufficiently scalable to cope with
   a large number of threads contending for the same branches". *)

let run () =
  let vertices = Util.dijkstra_vertices () in
  let time threads =
    Util.time ~repeats:2 (fun () ->
        Jstar_apps.Shortest_path.run ~vertices ~threads ())
  in
  Util.speedup_table
    ~title:
      (Printf.sprintf "Fig 12: Dijkstra (%d vertices, %d edges) speedup vs pool size"
         vertices (2 * vertices))
    ~paper_note:
      "paper: mediocre, max 4.0x on 8 cores (Delta-tree contention); expect \
       the worst scaling of the four programs"
    [ ("dijkstra", List.map time Util.thread_counts) ]
