(* Figure 8: relative speedup of the (optimised) PvWatts program with
   varying fork/join pool size, with alternative data structures for
   the PvWatts Gamma table.

   Paper: dual-CPU Xeon W5590 (8 cores), relative speedup reaching
   ~4x at 8 threads; absolute speedup ~35% lower because sequential
   data structures (TreeMap) beat their concurrent equivalents
   (ConcurrentSkipListMap). *)

open Jstar_core

let run () =
  let data =
    Jstar_csv.Pvwatts_data.to_bytes
      ~installations:(Util.pvwatts_installations ())
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  let time ~threads ~store =
    Util.time (fun () ->
        Jstar_apps.Pvwatts.run ~data (Jstar_apps.Pvwatts.config ~threads ~store ()))
  in
  let rows =
    List.map
      (fun (label, store) ->
        (label, List.map (fun threads -> time ~threads ~store) Util.thread_counts))
      [
        ("skiplist (default)", Jstar_apps.Pvwatts.Default_store);
        ("hash(year,month)", Jstar_apps.Pvwatts.Hash_store);
        ("month-array (custom)", Jstar_apps.Pvwatts.Month_array_store);
      ]
  in
  Util.speedup_table
    ~title:"Fig 8: PvWatts speedup vs pool size x Gamma data structure"
    ~paper_note:
      "paper: ~4x relative speedup at 8 threads (8 cores); custom \
       array-of-hash stores fastest"
    rows;
  (* The absolute-vs-relative gap: the same program, one thread, with
     sequential (TreeSet-family) data structures. *)
  let sequential_ds =
    Util.time (fun () ->
        Jstar_apps.Pvwatts.run ~data
          {
            (Jstar_apps.Pvwatts.config ~threads:1
               ~store:Jstar_apps.Pvwatts.Default_store ())
            with
            Config.data_structures = Config.Sequential_ds;
          })
  in
  let concurrent_ds_1t =
    Util.time (fun () ->
        Jstar_apps.Pvwatts.run ~data
          {
            (Jstar_apps.Pvwatts.config ~threads:1
               ~store:Jstar_apps.Pvwatts.Default_store ())
            with
            Config.data_structures = Config.Concurrent_ds;
          })
  in
  Util.note
    "sequential structures (TreeSet family): %.3fs; concurrent structures at 1 \
     thread: %.3fs (+%.0f%%)"
    sequential_ds concurrent_ds_1t
    (100.0 *. ((concurrent_ds_1t /. sequential_ds) -. 1.0));
  Util.note
    "paper: absolute speedup ~35%% below relative speedup for the same reason"
