(* Ablations of the design decisions DESIGN.md calls out, beyond the
   paper's own figures:
   - Delta tree backing structures: stdlib Map/Hashtbl vs concurrent
     skip list / sharded hash, measured at one thread (the TreeMap vs
     ConcurrentSkipListMap overhead the paper quotes as ~35%);
   - all-minimums task granularity for rule firing;
   - chunked-reader region counts. *)

open Jstar_core

let delta_structures () =
  (* Route many tuples through the Delta tree under both structure
     families: a table whose orderby makes one class per step. *)
  let steps = 200 and per_step = 2_000 in
  let build () =
    let p = Program.create () in
    let t =
      Program.table p "T"
        ~columns:Schema.[ int_col "step"; int_col "i" ]
        ~orderby:Schema.[ Lit "Int"; Seq "step" ]
        ()
    in
    let consumed = ref 0 in
    Program.rule p "consume" ~trigger:t (fun ctx tup ->
        incr consumed;
        let step = Tuple.int tup "step" and i = Tuple.int tup "i" in
        if step < steps && i = 0 then
          for j = 0 to per_step - 1 do
            ctx.Rule.put (Tuple.make t [| Value.Int (step + 1); Value.Int j |])
          done);
    (p, t)
  in
  let time ds =
    Util.time ~repeats:2 (fun () ->
        let p, t = build () in
        Engine.run_program
          ~init:[ Tuple.make t [| Value.Int 0; Value.Int 0 |] ]
          p
          { Config.default with Config.data_structures = ds })
  in
  let seq = time Config.Sequential_ds in
  let conc = time Config.Concurrent_ds in
  Util.bar_chart
    ~title:
      (Printf.sprintf
         "Ablation: Delta/Gamma structure family at 1 thread (%d classes x %d \
          tuples)"
         steps per_step)
    ~unit:"s"
    [
      ("stdlib Map/Hashtbl (TreeMap)", seq);
      ("skiplist/sharded (Concurrent*)", conc);
    ];
  Util.note
    "concurrent-structure overhead at 1 thread: +%.0f%% (paper quotes ~35%% \
     for TreeMap vs ConcurrentSkipListMap)"
    (100.0 *. ((conc /. seq) -. 1.0))

let task_granularity () =
  (* All-minimums firing with different fork/join grains. *)
  let vertices = Util.dijkstra_vertices () / 2 in
  let time grain =
    Util.time ~repeats:2 (fun () ->
        let app, edge_store, done_store =
          Jstar_apps.Shortest_path.make ~vertices ()
        in
        let config =
          {
            (Jstar_apps.Shortest_path.config ~threads:2 edge_store done_store)
            with
            Config.grain;
          }
        in
        Engine.run_program ~init:app.Jstar_apps.Shortest_path.init
          app.Jstar_apps.Shortest_path.program config)
  in
  Util.bar_chart
    ~title:"Ablation: all-minimums task granularity (Dijkstra, 2 threads)"
    ~unit:"s"
    [
      ("grain=1 (task per tuple)", time (Config.Fixed 1));
      ("grain=16", time (Config.Fixed 16));
      ("grain=auto (~4 leaves/worker)", time Config.Auto_grain);
    ];
  Util.note "the paper creates one task per tuple; chunking is the obvious fix"

let reader_regions () =
  let data =
    Jstar_csv.Pvwatts_data.to_bytes
      ~installations:(Util.pvwatts_installations ())
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  let time chunks =
    Util.time (fun () ->
        Jstar_apps.Pvwatts.run ~chunks ~data
          (Jstar_apps.Pvwatts.config ~threads:2 ()))
  in
  Util.bar_chart ~title:"Ablation: chunked-reader region count (2 threads)"
    ~unit:"s"
    (List.map (fun c -> (Printf.sprintf "%d region(s)" c, time c)) [ 1; 2; 4; 16 ]);
  Util.note "1 region = the paper's original serial read-loop bottleneck"

let oversubscription () =
  (* OCaml 5 minor collections are stop-the-world across domains; when
     the pool exceeds the core count, a descheduled domain delays every
     collection, so allocation-heavy rule work falls off a cliff.  This
     is a runtime-specific effect the JVM-based original does not have —
     shown here so readers do not mistake it for a Delta-tree property. *)
  let alloc_item _ =
    let acc = ref [] in
    for k = 1 to 2_000 do
      acc := (k, string_of_int k) :: !acc
    done;
    ignore (List.length !acc)
  in
  let time workers =
    let pool = Jstar_sched.Pool.create ~num_workers:workers () in
    Fun.protect
      ~finally:(fun () -> Jstar_sched.Pool.shutdown pool)
      (fun () ->
        Util.time ~repeats:2 (fun () ->
            Jstar_sched.Forkjoin.parallel_for pool ~lo:0 ~hi:2_000 alloc_item))
  in
  Util.bar_chart
    ~title:"Ablation: oversubscription vs allocation rate (OCaml 5 STW minor GC)"
    ~unit:"s"
    (List.map
       (fun w -> (Printf.sprintf "%d worker(s) on %d core(s)" w Util.cores, time w))
       [ 1; 2; 4; 8 ]);
  Util.note
    "past the core count, every minor collection waits on descheduled      domains; benchmark sweeps therefore stop at %d threads"
    (2 * Util.cores)

let run () =
  delta_structures ();
  task_granularity ();
  reader_regions ();
  oversubscription ()
