(* Bechamel micro-benchmarks of the substrate operations on the hot
   paths of the engine: Delta tree insert/extract, skip list vs stdlib
   Map, the sharded hash map, Chase-Lev deque operations, tuple
   construction and timestamping, and byte-level CSV field parsing. *)

open Bechamel
open Toolkit
open Jstar_core

let fixture () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "step"; int_col "i" ]
      ~orderby:Schema.[ Lit "Int"; Seq "step" ]
      ()
  in
  (p, t)

let tests () =
  let _, schema = fixture () in
  let p2, _ = fixture () in
  let order = Program.order_rel p2 in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter land 0xFFFF
  in
  let tuple_of i = Tuple.make schema [| Value.Int i; Value.Int i |] in
  let prebuilt = tuple_of 1 in
  let csv_line = Bytes.of_string "2012,7,14,9,123,3500" in
  let csv_fields = Array.make 6 0 in
  let sl = Jstar_cds.Skiplist.create ~compare:Int.compare () in
  let module IMap = Map.Make (Int) in
  let imap = ref IMap.empty in
  let chm : (int, int) Jstar_cds.Chashmap.t = Jstar_cds.Chashmap.create () in
  let deque = Jstar_sched.Chase_lev.create () in
  let delta = Delta.create ~mode:Delta.Concurrent ~nlits:2 () in
  let delta_seq = Delta.create ~mode:Delta.Sequential ~nlits:2 () in
  Test.make_grouped ~name:"substrates"
    [
      Test.make ~name:"tuple.make" (Staged.stage (fun () -> tuple_of (next ())));
      Test.make ~name:"timestamp.of_tuple"
        (Staged.stage (fun () -> Timestamp.of_tuple order prebuilt));
      Test.make ~name:"csv.parse-record"
        (Staged.stage (fun () ->
             Jstar_csv.Parse.int_fields_into csv_line 0
               (Bytes.length csv_line) csv_fields));
      Test.make ~name:"skiplist.add+remove"
        (Staged.stage (fun () ->
             let k = next () in
             ignore (Jstar_cds.Skiplist.add sl k k);
             ignore (Jstar_cds.Skiplist.remove sl k)));
      Test.make ~name:"stdlib-map.add+remove"
        (Staged.stage (fun () ->
             let k = next () in
             imap := IMap.add k k !imap;
             imap := IMap.remove k !imap));
      Test.make ~name:"chashmap.set+remove"
        (Staged.stage (fun () ->
             let k = next () in
             Jstar_cds.Chashmap.set chm k k;
             ignore (Jstar_cds.Chashmap.remove chm k)));
      Test.make ~name:"chase_lev.push+pop"
        (Staged.stage (fun () ->
             Jstar_sched.Chase_lev.push deque 1;
             ignore (Jstar_sched.Chase_lev.pop deque)));
      Test.make ~name:"delta.insert+extract (conc)"
        (Staged.stage (fun () ->
             let t = tuple_of (next ()) in
             ignore (Delta.insert delta t (Timestamp.of_tuple order t));
             ignore (Delta.extract_min_class delta)));
      Test.make ~name:"delta.insert+extract (seq)"
        (Staged.stage (fun () ->
             let t = tuple_of (next ()) in
             ignore (Delta.insert delta_seq t (Timestamp.of_tuple order t));
             ignore (Delta.extract_min_class delta_seq)));
    ]

let run () =
  Util.heading "Micro-benchmarks (Bechamel, ns per operation)";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] ->
          Fmt.pr "  %-32s %10.1f ns/op%s@." name ns
            (match Analyze.OLS.r_square est with
            | Some r2 when r2 < 0.9 -> Printf.sprintf "  (noisy, r2=%.2f)" r2
            | _ -> "")
      | _ -> Fmt.pr "  %-32s (no estimate)@." name)
    (List.sort compare rows)
