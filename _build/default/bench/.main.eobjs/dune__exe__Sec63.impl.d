bench/sec63.ml: Array Bytes Delta Fmt Jstar_apps Jstar_core Jstar_csv Jstar_obs Jstar_stats Order_rel Program Reducer Schema Store Timestamp Tuple Util Value
