bench/sec62.ml: Jstar_apps Jstar_csv Util
