bench/fig13.ml: Jstar_apps List Printf Util
