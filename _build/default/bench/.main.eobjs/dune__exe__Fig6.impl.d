bench/fig6.ml: Array Bytes Jstar_apps Jstar_csv List Printf String Util
