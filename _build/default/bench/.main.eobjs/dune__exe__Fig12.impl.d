bench/fig12.ml: Jstar_apps List Printf Util
