bench/util.ml: Domain Float Fmt Gc List Printf String Unix
