bench/ablate.ml: Config Engine Fun Jstar_apps Jstar_core Jstar_csv Jstar_sched List Printf Program Rule Schema Tuple Util Value
