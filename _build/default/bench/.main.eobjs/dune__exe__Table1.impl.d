bench/table1.ml: Fmt Jstar_apps Jstar_csv Jstar_disruptor List Printf Util
