bench/query.ml: Buffer Config Engine Hashtbl Jstar_core List Printf Program Query Reducer Rule Schema Store Tuple Unix Util Value
