bench/hotpath.ml: Array Buffer Config Engine Hashtbl Jstar_core List Printf Program Rule Schema Store Sys Tuple Unix Util Value
