bench/main.ml: Ablate Array Fig10 Fig11 Fig12 Fig13 Fig6 Fig8 Fmt Hotpath List Micro Query Sec62 Sec63 Sys Table1 Unix Util
