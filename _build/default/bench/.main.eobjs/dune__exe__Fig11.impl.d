bench/fig11.ml: Jstar_apps List Printf Util
