bench/fig10.ml: Fmt Jstar_apps Jstar_csv Jstar_disruptor List Util
