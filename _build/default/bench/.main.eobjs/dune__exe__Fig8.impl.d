bench/fig8.ml: Config Jstar_apps Jstar_core Jstar_csv List Util
