bench/main.mli:
