(* Figure 6: absolute sequential speed of the JStar case-study programs
   versus hand-coded versions.

   Paper numbers (seconds, Intel i7-2600):
     PvWatts    : JStar 4.7  vs Java 5.9   (JStar wins: custom CSV lib)
     MatrixMult : JStar 21.9 boxed / 8.1 unboxed vs Java 7.5 naive /
                  1.0 transposed          (JStar loses: boxing; the
                  transposed baseline wins big through cache locality)
     Dijkstra   : JStar 3.8  vs Java 1.8  (JStar loses: Delta tree vs
                  PriorityQueue)
     Median     : JStar 6.8  vs Java 13.4 (JStar wins: selection vs
                  full sort)
   The shape to reproduce: JStar wins PvWatts and Median, loses
   MatrixMult-boxed and Dijkstra; unboxing closes most of the MatrixMult
   gap; transposition makes the hand-coded version far faster. *)


let run () =
  let rows = ref [] in
  let add label v = rows := (label, v) :: !rows in

  (* PvWatts *)
  let installations = Util.pvwatts_installations () in
  let data =
    Jstar_csv.Pvwatts_data.to_bytes ~installations
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  add "PvWatts jstar"
    (Util.time (fun () ->
         Jstar_apps.Pvwatts.run ~data (Jstar_apps.Pvwatts.config ~threads:1 ())));
  add "PvWatts baseline" (Util.time (fun () -> Jstar_apps.Pvwatts.baseline data));
  (* The mechanism behind the paper's PvWatts result, isolated: JStar's
     byte-slice CSV parsing vs the baseline's readline + String.split. *)
  let parse_bytes () =
    let fields = Array.make 6 0 in
    let acc = ref 0 in
    Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
        ignore (Jstar_csv.Parse.int_fields_into data s e fields);
        acc := !acc + fields.(5));
    !acc
  in
  let parse_strings () =
    let acc = ref 0 in
    Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
        let line = Bytes.sub_string data s (e - s) in
        match String.split_on_char ',' line with
        | [ _; _; _; _; _; power ] -> acc := !acc + int_of_string power
        | _ -> failwith "malformed");
    !acc
  in
  add "  csv parse (jstar bytes)" (Util.time parse_bytes);
  add "  csv parse (readline+split)" (Util.time parse_strings);

  (* MatrixMult *)
  let n = Util.matmul_n () in
  add "MatMult jstar boxed"
    (Util.time ~repeats:2 (fun () ->
         Jstar_apps.Matmul.run ~n ~variant:Jstar_apps.Matmul.Boxed ~threads:1 ()));
  add "MatMult jstar unboxed"
    (Util.time (fun () ->
         Jstar_apps.Matmul.run ~n ~variant:Jstar_apps.Matmul.Unboxed ~threads:1 ()));
  let a = Jstar_apps.Matmul.generate_matrix 1 n
  and b = Jstar_apps.Matmul.generate_matrix 2 n in
  add "MatMult naive" (Util.time (fun () -> Jstar_apps.Matmul.baseline_naive a b));
  add "MatMult transposed"
    (Util.time (fun () -> Jstar_apps.Matmul.baseline_transposed a b));

  (* Dijkstra *)
  let vertices = Util.dijkstra_vertices () in
  add "Dijkstra jstar"
    (Util.time ~repeats:2 (fun () ->
         Jstar_apps.Shortest_path.run ~vertices ~threads:1 ()));
  add "Dijkstra heap baseline"
    (Util.time (fun () -> Jstar_apps.Shortest_path.baseline ~vertices ()));

  (* Median *)
  let m = Util.median_n () in
  add "Median jstar"
    (Util.time ~repeats:2 (fun () -> Jstar_apps.Median.run ~n:m ~threads:1 ()));
  let arr = Jstar_apps.Median.generate m in
  add "Median sort baseline"
    (Util.time ~repeats:2 (fun () -> Jstar_apps.Median.baseline_sort arr));
  add "Median quickselect"
    (Util.time (fun () -> Jstar_apps.Median.baseline_quickselect arr));

  Util.bar_chart
    ~title:
      (Printf.sprintf
         "Fig 6: absolute sequential time (PvWatts %d sites, MatMult %dx%d, \
          Dijkstra %d vertices, Median %d doubles)"
         installations n n vertices m)
    ~unit:"s" (List.rev !rows);
  Util.note
    "paper: PvWatts 4.7 vs 5.9 | MatMult 21.9/8.1 vs 7.5/1.0 | Dijkstra 3.8 \
     vs 1.8 | Median 6.8 vs 13.4";
  Util.note
    "shape: jstar wins PvWatts & Median, loses boxed MatMult & Dijkstra; \
     unboxing closes the MatMult gap"
