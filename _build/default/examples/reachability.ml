(* Transitive closure — the canonical Datalog program, written against
   the public API to show the semantic core beneath JStar:

     table Edge(int src, int dst)   orderby (Edge);
     table Reach(int node)          orderby (Reach);
     order Edge < Reach;

     foreach (Reach r) { for (e : get Edge(r.node)) put Reach(e.dst) }

   The recursion puts Reach tuples at the *same* timestamp as their
   trigger (legal: rules may affect the present), and the fixpoint
   terminates purely through set semantics — a Reach tuple already in
   Gamma or Delta is dropped, so each node is visited exactly once
   however many paths lead to it.

   Usage:  dune exec examples/reachability.exe                           *)

open Jstar_core

let edges =
  (* two components: {0..5} reachable from 0, {6..9} not *)
  [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (4, 1); (4, 5); (6, 7); (7, 8);
    (8, 6); (9, 6) ]

let () =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "src"; int_col "dst" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let reach =
    Program.table p "Reach" ~columns:Schema.[ int_col "node" ] ~key:1
      ~orderby:Schema.[ Lit "Reach" ]
      ()
  in
  Program.order p [ "Edge"; "Reach" ];
  Program.rule p "step" ~trigger:reach
    ~reads:[ Spec.read "Edge" ]
    ~puts:[ Spec.put "Reach" ]
    (fun ctx r ->
      Query.iter ctx edge
        ~prefix:[| Tuple.get r 0 |]
        (fun e -> ctx.Rule.put (Tuple.make reach [| Tuple.get e 1 |])));
  Program.output p reach (fun t ->
      Printf.sprintf "reachable: %d" (Tuple.int t "node"));
  let init =
    List.map (fun (s, d) -> Tuple.make edge [| Value.Int s; Value.Int d |]) edges
    @ [ Tuple.make reach [| Value.Int 0 |] ]
  in
  let frozen = Program.freeze p in
  let seq = Engine.run ~init frozen Config.default in
  Fmt.pr "nodes reachable from 0:@.";
  List.iter (Fmt.pr "  %s@.") seq.Engine.outputs;
  Fmt.pr "fixpoint in %d steps; %d duplicate puts dropped by set semantics@."
    seq.Engine.steps seq.Engine.delta_deduped;
  let par = Engine.run ~init frozen (Config.parallel ~threads:2 ()) in
  Fmt.pr "parallel identical: %b@." (par.Engine.outputs = seq.Engine.outputs)
