examples/shortest_path_demo.ml: Array Fmt Jstar_apps Jstar_core List Sys Unix
