examples/median_demo.mli:
