examples/quickstart.mli:
