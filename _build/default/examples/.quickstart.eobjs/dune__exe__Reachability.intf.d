examples/reachability.mli:
