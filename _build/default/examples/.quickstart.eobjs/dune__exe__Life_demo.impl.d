examples/life_demo.ml: Array Jstar_apps Jstar_core List Printf Sys
