examples/reachability.ml: Config Engine Fmt Jstar_core List Printf Program Query Rule Schema Spec Tuple Value
