examples/wordcount.mli:
