examples/pvwatts_monthly.ml: Array Bytes Config Engine Fmt Jstar_apps Jstar_causality Jstar_core Jstar_csv Jstar_obs Jstar_stats List Program Rule Schema Spec Sys Table_stats Tuple
