examples/shortest_path_demo.mli:
