examples/quickstart.ml: Config Engine Fmt Jstar_apps Jstar_causality Jstar_core List
