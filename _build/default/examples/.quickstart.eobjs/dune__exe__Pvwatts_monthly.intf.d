examples/pvwatts_monthly.mli:
