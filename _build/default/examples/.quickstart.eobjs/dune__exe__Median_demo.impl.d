examples/median_demo.ml: Array Fmt Jstar_apps Jstar_core Sys Unix
