examples/life_demo.mli:
