examples/wordcount.ml: Config Engine Fmt Jstar_causality Jstar_core List Printf Program Query Rule Schema Spec String Tuple Value
