examples/sensor_stream.ml: Config Engine Fmt Jstar_core List Printf Program Query Reducer Rule Schema Spec Store Tuple Value
