(* Event-driven execution (§3): "Event-driven programming with external
   input tuples fits elegantly into this framework — the input tuples
   are added to the Delta Set, and can then trigger various rules."

   A sensor produces readings over time; the engine session ingests each
   batch as it arrives, raises alerts when a sensor exceeds a threshold,
   and keeps only a sliding window of raw readings in Gamma (a manual
   lifetime hint).

   Usage:  dune exec examples/sensor_stream.exe                          *)

open Jstar_core

let () =
  let p = Program.create () in
  let reading =
    Program.table p "Reading"
      ~columns:Schema.[ int_col "time"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Int"; Seq "time" ]
      ()
  in
  let avg_req =
    Program.table p "AvgReq"
      ~columns:Schema.[ int_col "time"; int_col "sensor" ]
      ~key:2
      ~orderby:Schema.[ Lit "Int"; Seq "time"; Lit "Avg" ]
      ()
  in
  (* every reading asks for the windowed average of its sensor *)
  Program.rule p "request_avg" ~trigger:reading
    ~puts:[ Spec.put "AvgReq" ~ts:[ Spec.bind "time" (Spec.Field "time") ] ]
    (fun ctx r ->
      ctx.Rule.put (Tuple.make avg_req [| Tuple.get r 0; Tuple.get r 1 |]));
  Program.rule p "alert_on_average" ~trigger:avg_req
    ~reads:[ Spec.read ~kind:Spec.Aggregate "Reading" ]
    (fun ctx req ->
      let sensor = Tuple.int req "sensor" in
      let stats =
        Query.reduce ctx reading
          ~where:(fun t -> Tuple.int t "sensor" = sensor)
          ~monoid:Reducer.Statistics.monoid
          ~f:(fun t ->
            Reducer.Statistics.add Reducer.Statistics.empty
              (float_of_int (Tuple.int t "value")))
          ()
      in
      if Reducer.Statistics.mean stats > 80.0 then
        ctx.Rule.println
          (Printf.sprintf "t=%2d ALERT sensor %d: windowed mean %.1f"
             (Tuple.int req "time") sensor
             (Reducer.Statistics.mean stats)));
  (* Gamma keeps only the last 3 ticks of raw readings *)
  let config =
    {
      Config.default with
      Config.stores =
        [ ("Reading", Store.Custom (Store.windowed ~field:"time" ~width:3 Store.tree)) ];
    }
  in
  let session = Engine.start (Program.freeze p) config in
  (* synthetic stream: sensor 1 spikes around t = 6..8 *)
  let value_of t sensor =
    match sensor with
    | 1 -> if t >= 6 && t <= 8 then 95 + t else 60 + (t mod 5)
    | _ -> 40 + ((t * sensor) mod 20)
  in
  for t = 0 to 11 do
    Engine.feed session
      (List.map
         (fun sensor ->
           Tuple.make reading
             [| Value.Int t; Value.Int sensor; Value.Int (value_of t sensor) |])
         [ 1; 2; 3 ]);
    (* the "device" delivers a batch per tick; drain processes it *)
    match Engine.drain session with
    | [] -> Fmt.pr "t=%2d (quiet)@." t
    | alerts -> List.iter (Fmt.pr "%s@.") alerts
  done;
  let live = (Engine.session_gamma session reading).Store.size () in
  let result = Engine.finish session in
  (* the window keeps at most 3 ticks x 3 sensors of raw readings *)
  Fmt.pr "-- processed %d tuples in %d steps; live readings in Gamma: %d@."
    result.Engine.tuples_processed result.Engine.steps live
