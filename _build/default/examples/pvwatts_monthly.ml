(* The PvWatts solar-power program of §6.2 (Fig 4), end to end:
   synthesise a PVWatts-style CSV, run the JStar program under a chosen
   configuration, and print the monthly means.

   Usage:
     dune exec examples/pvwatts_monthly.exe -- [options]
       --installations N   data size (default 5; paper scale is 1000)
       --threads N         fork/join pool size (default 2)
       --naive             disable the -noDelta optimisation
       --store KIND        skiplist | hash | month-array (default)
       --dot FILE          write the dependency graph (Fig 7 view)
       --trace FILE        record span tracing and write a Chrome
                           trace-event JSON (open in Perfetto)
       --no-order          omit [order Req < ... < SumMonth] and show
                           the resulting stratification error          *)

open Jstar_core

let arg_flag name = Array.exists (( = ) name) Sys.argv

let arg_value name default =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then default
    else if Sys.argv.(i) = name then Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  let installations = int_of_string (arg_value "--installations" "5") in
  let threads = int_of_string (arg_value "--threads" "2") in
  let store =
    match arg_value "--store" "month-array" with
    | "skiplist" -> Jstar_apps.Pvwatts.Default_store
    | "hash" -> Jstar_apps.Pvwatts.Hash_store
    | "month-array" -> Jstar_apps.Pvwatts.Month_array_store
    | other -> failwith ("unknown store: " ^ other)
  in
  if arg_flag "--no-order" then begin
    (* The §6.2 experiment: omitting the order declaration makes the
       SumMonth rule unstratifiable, and the checker reports it. *)
    let p = Jstar_apps.Pvwatts.make ~data:(Bytes.of_string "") ~chunks:1 () in
    ignore p;
    Fmt.pr
      "Without [order Req < Chunk < PvWatts < SumMonth], the aggregate@.";
    Fmt.pr "query of the SumMonth rule cannot be proved stratified:@.@.";
    (* rebuild the same rules minus the order declaration *)
    let p = Program.create () in
    let pv =
      Program.table p "PvWatts"
        ~columns:Schema.[ int_col "year"; int_col "month"; int_col "power" ]
        ~orderby:Schema.[ Lit "PvWatts" ] ()
    in
    let sum =
      Program.table p "SumMonth"
        ~columns:Schema.[ int_col "year"; int_col "month" ]
        ~orderby:Schema.[ Lit "SumMonth" ] ()
    in
    Program.rule p "request_month" ~trigger:pv
      ~puts:[ Spec.put "SumMonth" ]
      (fun ctx t -> ctx.Rule.put (Tuple.make sum [| Tuple.get t 0; Tuple.get t 1 |]));
    Program.rule p "reduce_month" ~trigger:sum
      ~reads:[ Spec.read ~kind:Spec.Aggregate "PvWatts" ]
      (fun _ _ -> ());
    let report = Jstar_causality.Check.check_program p in
    Fmt.pr "%a@." Jstar_causality.Check.pp_report report;
    exit (if Jstar_causality.Check.ok report then 1 else 0)
  end;
  Fmt.pr "generating %d installation-year(s) of hourly data...@."
    installations;
  let data =
    Jstar_csv.Pvwatts_data.to_bytes ~installations
      ~ordering:Jstar_csv.Pvwatts_data.Month_major
  in
  Fmt.pr "%d records (%d bytes)@."
    (Jstar_csv.Pvwatts_data.record_count ~installations)
    (Bytes.length data);
  let app = Jstar_apps.Pvwatts.make ~data ~chunks:(max 2 (threads * 2)) () in
  (match arg_value "--dot" "" with
  | "" -> ()
  | path ->
      let graph = Jstar_stats.Depgraph.of_program app.Jstar_apps.Pvwatts.program in
      Jstar_stats.Depgraph.write_dot graph path;
      Fmt.pr "dependency graph written to %s@." path);
  let trace_path = arg_value "--trace" "" in
  let config =
    Jstar_apps.Pvwatts.config ~threads
      ~no_delta:(not (arg_flag "--naive"))
      ~store ()
  in
  let config =
    if trace_path = "" then config
    else { config with Config.tracing = Jstar_obs.Level.Spans }
  in
  let result =
    Engine.run_program ~init:app.Jstar_apps.Pvwatts.init
      app.Jstar_apps.Pvwatts.program config
  in
  Fmt.pr "@.average power per month:@.";
  List.iter (Fmt.pr "  %s@.") result.Engine.outputs;
  Fmt.pr "@.%.3fs, %d steps, %d tuples; per-table usage:@."
    result.Engine.elapsed result.Engine.steps result.Engine.tuples_processed;
  Fmt.pr "%a@." Table_stats.pp_snapshot (Table_stats.snapshot result.Engine.stats);
  if trace_path <> "" then begin
    Jstar_obs.Export.write_chrome_trace trace_path result.Engine.tracer;
    Jstar_obs.Export.console Fmt.stdout ~metrics:result.Engine.metrics
      result.Engine.tracer;
    Fmt.pr "trace written to %s — open it at https://ui.perfetto.dev@."
      trace_path
  end
