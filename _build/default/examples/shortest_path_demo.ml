(* Dijkstra's shortest path (§6.5, Fig 5) on a random connected graph:
   the Delta tree acts as the priority queue, so the JStar program needs
   no explicit heap at all.

   Usage:
     dune exec examples/shortest_path_demo.exe -- [vertices] [threads]  *)

let () =
  let vertices =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10_000
  in
  let threads =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2
  in
  Fmt.pr "random connected graph: %d vertices, ~%d edges, weights 1..10@."
    vertices (2 * vertices);
  let result, app = Jstar_apps.Shortest_path.run ~vertices ~threads () in
  Fmt.pr "JStar Dijkstra: %.3fs, %d execution steps, %d tuples@."
    result.Jstar_core.Engine.elapsed result.Jstar_core.Engine.steps
    result.Jstar_core.Engine.tuples_processed;
  Fmt.pr "vertices reached: %d@." (app.Jstar_apps.Shortest_path.reached_count ());
  Fmt.pr "sample distances from vertex 0:@.";
  List.iter
    (fun v ->
      if v < vertices then
        match app.Jstar_apps.Shortest_path.distance_of v with
        | Some d -> Fmt.pr "  shortest path to %d is %d@." v d
        | None -> Fmt.pr "  vertex %d unreachable@." v)
    [ 0; 1; 2; vertices / 2; vertices - 1 ];
  (* cross-check against the hand-coded binary-heap baseline *)
  let t0 = Unix.gettimeofday () in
  let baseline = Jstar_apps.Shortest_path.baseline ~vertices () in
  let t1 = Unix.gettimeofday () in
  let agree = ref true in
  for v = 0 to vertices - 1 do
    match app.Jstar_apps.Shortest_path.distance_of v with
    | Some d when d = baseline.(v) -> ()
    | _ -> agree := false
  done;
  Fmt.pr "hand-coded heap baseline: %.3fs — distances %s@." (t1 -. t0)
    (if !agree then "agree" else "DISAGREE (bug!)")
