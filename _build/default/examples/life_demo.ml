(* Conway's Game of Life on the JStar engine: a glider walks across the
   grid, each generation one timestamp class.

   Usage:  dune exec examples/life_demo.exe -- [generations]            *)

let render alive =
  match alive with
  | [] -> print_endline "  (empty)"
  | _ ->
      let xs = List.map fst alive and ys = List.map snd alive in
      let x0 = List.fold_left min max_int xs and x1 = List.fold_left max min_int xs in
      let y0 = List.fold_left min max_int ys and y1 = List.fold_left max min_int ys in
      for y = y0 to y1 do
        print_string "  ";
        for x = x0 to x1 do
          print_char (if List.mem (x, y) alive then '#' else '.')
        done;
        print_newline ()
      done

let () =
  let generations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  Printf.printf "glider, %d generations:\n" generations;
  render Jstar_apps.Life.glider;
  let result, final =
    Jstar_apps.Life.run ~threads:2 ~generations ~alive:Jstar_apps.Life.glider ()
  in
  Printf.printf "after %d generations (%d steps, %d tuples):\n" generations
    result.Jstar_core.Engine.steps result.Jstar_core.Engine.tuples_processed;
  render final;
  let expected = Jstar_apps.Life.reference ~generations Jstar_apps.Life.glider in
  Printf.printf "matches the synchronous reference: %b\n" (final = expected)
