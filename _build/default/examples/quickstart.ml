(* Quickstart: the Space Invaders Ship of §3 of the paper.

   Run with:  dune exec examples/quickstart.exe

   Demonstrates the whole JStar workflow on one screen:
   1. declare a table with an orderby (timestamp) list,
   2. write a rule that reacts to tuples and puts future tuples,
   3. check the rule against the law of causality,
   4. run the program — sequentially and in parallel — and observe the
      identical, deterministic output. *)

open Jstar_core

let () =
  let app = Jstar_apps.Spaceinvaders.make () in
  let program = app.Jstar_apps.Spaceinvaders.program in
  let init = app.Jstar_apps.Spaceinvaders.init in

  (* Stage 2 of the workflow (§2): verify the causality obligations. *)
  let report = Jstar_causality.Check.check_program program in
  Fmt.pr "%a@." Jstar_causality.Check.pp_report report;

  (* Stage 1: run the application logic, sequentially. *)
  let sequential = Engine.run_program ~init program Config.default in
  Fmt.pr "Ship trajectory (frame x y dx dy):@.";
  List.iter (Fmt.pr "  %s@.") sequential.Engine.outputs;

  (* Stage 3: change the parallelism strategy — the program text does
     not change, only the configuration. *)
  let parallel =
    Engine.run_program ~init program (Config.parallel ~threads:2 ())
  in
  Fmt.pr "parallel run (2 threads): %s@."
    (if parallel.Engine.outputs = sequential.Engine.outputs then
       "identical output — deterministic parallel semantics"
     else "MISMATCH (this would be a bug)");
  Fmt.pr "steps: %d, tuples processed: %d@." sequential.Engine.steps
    sequential.Engine.tuples_processed
