(* Word count: a fresh JStar program written against the public API —
   the canonical map-reduce example, not one of the paper's four case
   studies — showing how a user builds their own relational program:

     table Doc(int id, String text)        orderby (Doc, par id);
     table Word(int doc, String word)      orderby (Word);
     table CountReq(String word)           orderby (Count);
     order Doc < Word < Count;

     foreach (Doc d)      { put Word(d.id, w) for each word }
     foreach (Word w)     { put CountReq(w.word) }          // dedup!
     foreach (CountReq c) { println word + ": " + count }

   The middle rule relies on set semantics exactly like the PvWatts
   SumMonth request: many Word tuples collapse into one CountReq per
   distinct word.

   Usage:  dune exec examples/wordcount.exe                              *)

open Jstar_core

let corpus =
  [
    "the quick brown fox jumps over the lazy dog";
    "the dog barks and the fox runs";
    "parallel programs should be deterministic by default";
    "the compiler and runtime get maximum freedom";
  ]

let () =
  let p = Program.create () in
  let doc =
    Program.table p "Doc"
      ~columns:Schema.[ int_col "id"; string_col "text" ]
      ~key:1
      ~orderby:Schema.[ Lit "Doc"; Par "id" ]
      ()
  in
  let word =
    Program.table p "Word"
      ~columns:Schema.[ int_col "doc"; string_col "word" ]
      ~orderby:Schema.[ Lit "Word" ]
      ()
  in
  let count_req =
    Program.table p "CountReq" ~columns:Schema.[ string_col "word" ] ~key:1
      ~orderby:Schema.[ Lit "Count" ]
      ()
  in
  Program.order p [ "Doc"; "Word"; "Count" ];
  Program.rule p "tokenise" ~trigger:doc
    ~puts:[ Spec.put "Word" ]
    (fun ctx d ->
      List.iter
        (fun w ->
          if w <> "" then
            ctx.Rule.put (Tuple.make word [| Tuple.get d 0; Value.Str w |]))
        (String.split_on_char ' ' (Tuple.str d "text")));
  Program.rule p "request_count" ~trigger:word
    ~puts:[ Spec.put "CountReq" ]
    (fun ctx w -> ctx.Rule.put (Tuple.make count_req [| Tuple.get w 1 |]));
  Program.rule p "count" ~trigger:count_req
    ~reads:[ Spec.read ~kind:Spec.Aggregate "Word" ]
    (fun ctx c ->
      let w = Tuple.str c "word" in
      let n =
        Query.count ctx word
          ~where:(fun t -> Tuple.str t "word" = w)
          ()
      in
      ctx.Rule.println (Printf.sprintf "%-13s %d" w n));
  (* causality check: everything flows Doc -> Word -> Count *)
  let report = Jstar_causality.Check.check_program p in
  if not (Jstar_causality.Check.ok report) then
    Fmt.pr "%a@." Jstar_causality.Check.pp_report report;
  let init =
    List.mapi
      (fun i text -> Tuple.make doc [| Value.Int i; Value.Str text |])
      corpus
  in
  let frozen = Program.freeze p in
  let seq = Engine.run ~init frozen Config.default in
  let par = Engine.run ~init frozen (Config.parallel ~threads:2 ()) in
  Fmt.pr "word counts over %d documents:@." (List.length corpus);
  List.iter (Fmt.pr "  %s@.") seq.Engine.outputs;
  Fmt.pr "parallel output identical: %b@." (par.Engine.outputs = seq.Engine.outputs)
