(* Median finding (§6.6): the explicitly parallel global-pivot
   partitioning algorithm, against the sort and quickselect baselines.

   Usage:
     dune exec examples/median_demo.exe -- [n] [threads]                *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_000_000 in
  let threads = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2 in
  Fmt.pr "finding the median of %d random doubles with %d thread(s)@." n threads;
  let result = Jstar_apps.Median.run ~n ~threads () in
  (match result.Jstar_core.Engine.outputs with
  | [ line ] ->
      Fmt.pr "JStar:       %s  (%.3fs, %d steps)@." line
        result.Jstar_core.Engine.elapsed result.Jstar_core.Engine.steps
  | _ -> Fmt.pr "unexpected outputs@.");
  let arr = Jstar_apps.Median.generate n in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let m_sort, t_sort = time (fun () -> Jstar_apps.Median.baseline_sort arr) in
  let m_qs, t_qs = time (fun () -> Jstar_apps.Median.baseline_quickselect arr) in
  Fmt.pr "sort:        median = %.9f  (%.3fs)@." m_sort t_sort;
  Fmt.pr "quickselect: median = %.9f  (%.3fs)@." m_qs t_qs
