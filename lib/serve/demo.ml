(* The sensor stream program shared by jstar-serve, its bench, tests
   and README walkthrough — the same Tick/Reading/Alarm shape as
   jstar-demo's stream command, so serve digests are directly
   comparable with standalone runs. *)

open Jstar_core

let sensor_program () =
  let p = Program.create () in
  let _tick =
    Program.table p "Tick" ~columns:Schema.[ int_col "t" ]
      ~orderby:Schema.[ Lit "Tick"; Seq "t" ]
      ()
  in
  let reading =
    Program.table p "Reading"
      ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Reading"; Seq "t" ]
      ()
  in
  let alarm =
    Program.table p "Alarm"
      ~columns:Schema.[ int_col "t"; int_col "sensor"; int_col "value" ]
      ~orderby:Schema.[ Lit "Alarm"; Seq "t" ]
      ()
  in
  Program.order p [ "Tick"; "Reading"; "Alarm" ];
  Program.rule p "alarm" ~trigger:reading (fun ctx r ->
      if Tuple.int r "value" >= 90 then
        ctx.Rule.put
          (Tuple.make alarm [| Tuple.get r 0; Tuple.get r 1; Tuple.get r 2 |]));
  Program.output p alarm (fun t ->
      Printf.sprintf "alarm t=%d sensor=%d value=%d" (Tuple.int t "t")
        (Tuple.int t "sensor") (Tuple.int t "value"));
  Program.freeze p

let batch frozen ~sensors ~t =
  let table name =
    let found = ref None in
    Array.iter
      (fun s -> if s.Schema.name = name then found := Some s)
      frozen.Program.tables;
    Option.get !found
  in
  let tick = table "Tick" and reading = table "Reading" in
  Tuple.make tick [| Value.Int t |]
  :: List.init sensors (fun s ->
         Tuple.make reading
           [| Value.Int t; Value.Int s; Value.Int (((t * 31) + (s * 17)) mod 100) |])
