(** Blocking client for the jstar-serve {!Protocol}.  One call per
    frame exchange; [Flow] backpressure frames are absorbed
    transparently (counted in {!pauses}), so a throttled feed shows up
    as latency, never as an error. *)

open Jstar_core

exception Server_error of int * string
(** An [Err] frame where a reply was expected: (code, message) — codes
    in {!Protocol}. *)

type t

val connect : ?addr:string -> port:int -> Program.frozen -> t
(** Connect and handshake ([Hello]/[Welcome]), verifying protocol
    version and program schema hash.
    @raise Server_error when the server refuses the handshake. *)

val open_session : t -> string -> string
(** Open-or-recover the named session; returns the server's status line
    (["fresh ..."], ["restored ..."] or ["attached ..."]). *)

val feed : t -> Tuple.t list -> int
(** Feed a batch; returns the session backlog after acceptance.  Blocks
    through any [Flow] pause. *)

val drain : t -> string list * Protocol.watermark
val digest : t -> Protocol.digest_info
val checkpoint : t -> unit

val branch : t -> string -> string
(** Fork the open session's durable state under a new name. *)

val merge : t -> from:string -> string
(** Replay [from]'s divergence into the open session. *)

val pauses : t -> int
(** [Flow] pause frames absorbed so far on this connection. *)

val close : t -> unit
