(* Blocking client for the jstar-serve protocol: connect + handshake,
   then one call per frame exchange.  Flow frames are handled
   transparently — [feed] counts the pause and keeps going once the
   server resumes it — so callers see backpressure only as latency and
   a counter, exactly the contract the server's admission control
   promises. *)

open Jstar_core
module P = Protocol

exception Server_error of int * string
(* An Err frame where a reply was expected: (code, message). *)

type t = {
  fd : Unix.file_descr;
  reader : P.reader;
  mutable pauses : int;  (* Flow pause frames absorbed so far *)
}

let pauses t = t.pauses

let recv t =
  match P.read_frame t.reader with
  | None -> raise (P.Frame_error "server closed the connection")
  | Some (kind, payload) -> P.decode_server kind payload

(* Receive the next non-Flow frame, counting pauses on the way. *)
let rec recv_reply t =
  match recv t with
  | P.Flow { pause; _ } ->
      if pause then t.pauses <- t.pauses + 1;
      recv_reply t
  | f -> f

let fail_on_err = function
  | P.Err { code; msg } -> raise (Server_error (code, msg))
  | f -> f

let connect ?(addr = "127.0.0.1") ~port frozen =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t = { fd; reader = P.reader fd; pauses = 0 } in
  P.send_client fd
    (P.Hello
       {
         version = P.version;
         schema_hash = Jstar_persist.Codec.schema_hash frozen.Program.tables;
       });
  match fail_on_err (recv_reply t) with
  | P.Welcome _ -> t
  | _ -> raise (P.Frame_error "expected Welcome")

let okay t =
  match fail_on_err (recv_reply t) with
  | P.Okay info -> info
  | _ -> raise (P.Frame_error "expected Okay")

let open_session t name =
  P.send_client t.fd (P.Open name);
  okay t

let feed t tuples =
  P.send_client t.fd (P.Feed tuples);
  match fail_on_err (recv_reply t) with
  | P.Fed { backlog; _ } -> backlog
  | _ -> raise (P.Frame_error "expected Fed")

let drain t =
  P.send_client t.fd P.Drain;
  match fail_on_err (recv_reply t) with
  | P.Drained { lines; mark } -> (lines, mark)
  | _ -> raise (P.Frame_error "expected Drained")

let digest t =
  P.send_client t.fd P.Digest;
  match fail_on_err (recv_reply t) with
  | P.Digests d -> d
  | _ -> raise (P.Frame_error "expected Digests")

let checkpoint t =
  P.send_client t.fd P.Checkpoint;
  ignore (okay t)

let branch t name =
  P.send_client t.fd (P.Branch name);
  okay t

let merge t ~from =
  P.send_client t.fd (P.Merge from);
  okay t

let close t =
  (try
     P.send_client t.fd P.Bye;
     ignore (okay t)
   with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
