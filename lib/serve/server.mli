(** The jstar-serve reactor: one process serving many concurrent named
    engine sessions over the binary {!Protocol}.

    One acceptor thread multiplexes the listening socket against a
    shutdown self-pipe; each accepted connection gets a thread that
    decodes frames and posts commands into per-session single-owner
    workers ({!Session}).  Sessions are addressed like branches
    ([proj/main]) and live under [root] as durable directories —
    opening a name that exists on disk recovers it.

    Admission control front-loads every resource decision:
    - [max_connections] connections (excess refused with a capacity
      error at accept);
    - [max_sessions] live sessions (excess [Open]s refused);
    - [feed_quota] queued tuples per session — past it the connection
      gets a [Flow] pause frame and its thread parks until the worker
      catches up, so a slow session slows its clients instead of
      growing the heap;
    - idle sessions (no attached connections, empty backlog) are
      checkpointed and evicted after [idle_timeout] seconds.

    Shutdown is drain-then-checkpoint: {!request_shutdown} (signal-safe)
    stops accepting, {!wait} unblocks and joins every connection, then
    stops each session — applying queued feeds, quiescing,
    checkpointing, closing — before the process exits. *)

type config = {
  root : string;  (** session directories live under here *)
  addr : string;
  port : int;  (** 0 = ephemeral, read back with {!port} *)
  max_sessions : int;
  max_connections : int;
  feed_quota : int;  (** queued-tuple cap per session *)
  idle_timeout : float;  (** seconds; <= 0 disables idle eviction *)
  checkpoint_every : int;  (** auto-checkpoint after N drains; 0 = manual *)
  fsync : Jstar_persist.Wal.fsync_policy;
  engine : Jstar_core.Config.t;
  ops_port : int option;  (** HTTP ops plane (/metrics, /health, ...) *)
  flight_dir : string option;  (** flight-recorder bundles (needs ops) *)
}

val default_config : root:string -> config
(** Loopback, ephemeral port, 64 sessions / 128 connections, 32 Ki tuple
    quota, 5 min idle eviction, [Every_ms 5] group-commit fsync. *)

type t

val start : config -> Jstar_core.Program.frozen -> t
(** Bind and serve.  All sessions share [frozen] — one program, many
    independently evolving databases.
    @raise Unix.Unix_error when the bind fails. *)

val port : t -> int
val ops_port : t -> int option

val request_shutdown : t -> unit
(** Begin graceful shutdown; async-signal-safe (a write to the
    acceptor's self-pipe), so it can run inside a SIGTERM handler. *)

val wait : t -> unit
(** Join the acceptor, then drain: close connections, stop every
    session (apply queue → quiesce → checkpoint → close), stop the ops
    plane.  Returns when the server is fully down. *)

val stop : t -> unit
(** {!request_shutdown} then {!wait}. *)

(** {2 Introspection (tests, bench)} *)

val metrics : t -> Jstar_obs.Metrics.t
val journal : t -> Jstar_obs.Journal.t
val sessions_open : t -> int
val connections : t -> int
val flow_pauses : t -> int
