(* The jstar-serve wire protocol: length-prefixed binary frames in the
   WAL's framing style — [u8 kind][u32 len][payload][u32 crc32], CRC
   over kind + len + payload — carrying tuples through the persist
   Codec.  Both directions use the same frame shape; kinds 1–15 are
   client→server, 16+ server→client.

   Framing errors (bad CRC, oversized length, truncated frame, unknown
   kind, undecodable payload) raise [Frame_error]; the server answers
   with an [Err] frame and closes, never crashes — once framing is
   wrong the byte stream has no trustworthy resynchronisation point. *)

open Jstar_core
module Codec = Jstar_persist.Codec
module Crc32 = Jstar_persist.Crc32

exception Frame_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Frame_error s)) fmt
let version = 1

let max_payload = 1 lsl 22
(* 4 MiB: far above any sane feed batch, far below "attacker asked us
   to allocate the machine". *)

type client_frame =
  | Hello of { version : int; schema_hash : int }
  | Open of string
  | Feed of Tuple.t list
  | Drain
  | Branch of string
  | Merge of string
  | Digest
  | Checkpoint
  | Bye

type watermark = {
  w_steps : int;
  w_outputs : int;
  w_seq_lanes : int * int;
  w_out_lanes : int * int;
}

type digest_info = {
  d_gamma : string;  (** Gamma fingerprint, 32 hex digits *)
  d_outputs : int;
  d_seq_lanes : int * int;
  d_out_lanes : int * int;
}

type server_frame =
  | Welcome of { version : int; schema_hash : int; max_payload : int }
  | Okay of string
  | Fed of { accepted : int; backlog : int }
  | Drained of { lines : string list; mark : watermark }
  | Digests of digest_info
  | Flow of { pause : bool; backlog : int }
  | Err of { code : int; msg : string }

(* Error codes — mnemonic over machinery. *)
let err_bad_frame = 1
let err_no_session = 2
let err_capacity = 3
let err_shutting_down = 4
let err_bad_name = 5
let err_merge = 6
let err_conflict = 7
let err_handshake = 8

(* -- kinds ------------------------------------------------------------- *)

let k_hello = 1
and k_open = 2
and k_feed = 3
and k_drain = 4
and k_branch = 5
and k_merge = 6
and k_digest = 7
and k_checkpoint = 8
and k_bye = 9

let k_welcome = 16
and k_okay = 17
and k_fed = 18
and k_drained = 19
and k_digests = 20
and k_flow = 21
and k_err = 22

(* -- framing ----------------------------------------------------------- *)

let add_frame buf kind payload =
  let framed = Buffer.create (Bytes.length payload + 5) in
  Codec.put_u8 framed kind;
  Codec.put_u32 framed (Bytes.length payload);
  Buffer.add_bytes framed payload;
  let framed = Buffer.to_bytes framed in
  Buffer.add_bytes buf framed;
  Codec.put_u32 buf (Crc32.bytes framed 0 (Bytes.length framed))

(* Pull one frame out of [b] starting at [!pos].  [`Incomplete] means
   the bytes so far are a valid prefix of a frame — read more. *)
let read_frame_bytes b pos =
  let len = Bytes.length b - !pos in
  if len < 5 then `Incomplete
  else begin
    let p = ref !pos in
    let kind = Codec.get_u8 b p in
    let plen = Codec.get_u32 b p in
    if plen > max_payload then fail "oversized frame (%d bytes)" plen;
    if len < 5 + plen + 4 then `Incomplete
    else begin
      let crc_stored =
        let cp = ref (!pos + 5 + plen) in
        Codec.get_u32 b cp
      in
      if Crc32.bytes b !pos (5 + plen) <> crc_stored then
        fail "bad frame CRC";
      let payload = Bytes.sub b (!pos + 5) plen in
      pos := !pos + 5 + plen + 4;
      `Frame (kind, payload)
    end
  end

(* -- encoding ---------------------------------------------------------- *)

let payload_of f =
  let b = Buffer.create 64 in
  f b;
  Buffer.to_bytes b

let write_client buf frame =
  let kind, payload =
    match frame with
    | Hello { version; schema_hash } ->
        ( k_hello,
          payload_of (fun b ->
              Codec.put_u32 b version;
              Codec.put_u32 b (schema_hash land 0xffffffff)) )
    | Open name -> (k_open, payload_of (fun b -> Codec.put_string b name))
    | Feed tuples ->
        ( k_feed,
          payload_of (fun b ->
              Codec.put_u32 b (List.length tuples);
              List.iter (Codec.encode_tuple b) tuples) )
    | Drain -> (k_drain, Bytes.empty)
    | Branch name -> (k_branch, payload_of (fun b -> Codec.put_string b name))
    | Merge name -> (k_merge, payload_of (fun b -> Codec.put_string b name))
    | Digest -> (k_digest, Bytes.empty)
    | Checkpoint -> (k_checkpoint, Bytes.empty)
    | Bye -> (k_bye, Bytes.empty)
  in
  add_frame buf kind payload

let put_watermark b m =
  Codec.put_i64 b m.w_steps;
  Codec.put_i64 b m.w_outputs;
  Codec.put_i64 b (fst m.w_seq_lanes);
  Codec.put_i64 b (snd m.w_seq_lanes);
  Codec.put_i64 b (fst m.w_out_lanes);
  Codec.put_i64 b (snd m.w_out_lanes)

let get_watermark b pos =
  let g () = Codec.get_i64 b pos in
  let w_steps = g () in
  let w_outputs = g () in
  let seq_lo = g () in
  let seq_hi = g () in
  let out_lo = g () in
  let out_hi = g () in
  { w_steps; w_outputs; w_seq_lanes = (seq_lo, seq_hi);
    w_out_lanes = (out_lo, out_hi) }

let write_server buf frame =
  let kind, payload =
    match frame with
    | Welcome { version; schema_hash; max_payload } ->
        ( k_welcome,
          payload_of (fun b ->
              Codec.put_u32 b version;
              Codec.put_u32 b (schema_hash land 0xffffffff);
              Codec.put_u32 b max_payload) )
    | Okay info -> (k_okay, payload_of (fun b -> Codec.put_string b info))
    | Fed { accepted; backlog } ->
        ( k_fed,
          payload_of (fun b ->
              Codec.put_u32 b accepted;
              Codec.put_u32 b backlog) )
    | Drained { lines; mark } ->
        ( k_drained,
          payload_of (fun b ->
              Codec.put_u32 b (List.length lines);
              List.iter (Codec.put_string b) lines;
              put_watermark b mark) )
    | Digests d ->
        ( k_digests,
          payload_of (fun b ->
              Codec.put_string b d.d_gamma;
              Codec.put_i64 b d.d_outputs;
              Codec.put_i64 b (fst d.d_seq_lanes);
              Codec.put_i64 b (snd d.d_seq_lanes);
              Codec.put_i64 b (fst d.d_out_lanes);
              Codec.put_i64 b (snd d.d_out_lanes)) )
    | Flow { pause; backlog } ->
        ( k_flow,
          payload_of (fun b ->
              Codec.put_u8 b (if pause then 1 else 0);
              Codec.put_u32 b backlog) )
    | Err { code; msg } ->
        ( k_err,
          payload_of (fun b ->
              Codec.put_u32 b code;
              Codec.put_string b msg) )
  in
  add_frame buf kind payload

(* -- decoding ---------------------------------------------------------- *)

let wrap_codec f =
  try f () with Jstar_persist.Codec.Codec_error m -> fail "bad payload: %s" m

let decode_client ~tables kind payload =
  wrap_codec (fun () ->
      let pos = ref 0 in
      if kind = k_hello then
        let version = Codec.get_u32 payload pos in
        let schema_hash = Codec.get_u32 payload pos in
        Hello { version; schema_hash }
      else if kind = k_open then Open (Codec.get_string payload pos)
      else if kind = k_feed then begin
        let n = Codec.get_u32 payload pos in
        let out = ref [] in
        for _ = 1 to n do
          out := Codec.decode_tuple ~tables payload pos :: !out
        done;
        Feed (List.rev !out)
      end
      else if kind = k_drain then Drain
      else if kind = k_branch then Branch (Codec.get_string payload pos)
      else if kind = k_merge then Merge (Codec.get_string payload pos)
      else if kind = k_digest then Digest
      else if kind = k_checkpoint then Checkpoint
      else if kind = k_bye then Bye
      else fail "unknown client frame kind %d" kind)

let decode_server kind payload =
  wrap_codec (fun () ->
      let pos = ref 0 in
      if kind = k_welcome then
        let version = Codec.get_u32 payload pos in
        let schema_hash = Codec.get_u32 payload pos in
        let max_payload = Codec.get_u32 payload pos in
        Welcome { version; schema_hash; max_payload }
      else if kind = k_okay then Okay (Codec.get_string payload pos)
      else if kind = k_fed then begin
        let accepted = Codec.get_u32 payload pos in
        let backlog = Codec.get_u32 payload pos in
        Fed { accepted; backlog }
      end
      else if kind = k_drained then begin
        let n = Codec.get_u32 payload pos in
        let lines = List.init n (fun _ -> Codec.get_string payload pos) in
        Drained { lines; mark = get_watermark payload pos }
      end
      else if kind = k_digests then begin
        let d_gamma = Codec.get_string payload pos in
        let d_outputs = Codec.get_i64 payload pos in
        let seq_lo = Codec.get_i64 payload pos in
        let seq_hi = Codec.get_i64 payload pos in
        let out_lo = Codec.get_i64 payload pos in
        let out_hi = Codec.get_i64 payload pos in
        Digests
          {
            d_gamma;
            d_outputs;
            d_seq_lanes = (seq_lo, seq_hi);
            d_out_lanes = (out_lo, out_hi);
          }
      end
      else if kind = k_flow then begin
        let pause = Codec.get_u8 payload pos = 1 in
        let backlog = Codec.get_u32 payload pos in
        Flow { pause; backlog }
      end
      else if kind = k_err then begin
        let code = Codec.get_u32 payload pos in
        let msg = Codec.get_string payload pos in
        Err { code; msg }
      end
      else fail "unknown server frame kind %d" kind)

(* -- socket io --------------------------------------------------------- *)

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;  (* buffered unconsumed bytes *)
  mutable len : int;  (* valid prefix of [buf] *)
}

let reader fd = { fd; buf = Bytes.create 8192; len = 0 }

let refill r =
  if r.len = Bytes.length r.buf then
    r.buf <- Bytes.extend r.buf 0 (Bytes.length r.buf);
  match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
  | 0 -> false
  | n ->
      r.len <- r.len + n;
      true

(* Read one frame; [None] on a clean EOF between frames.  EOF inside a
   frame is a torn stream — an error, not a shutdown. *)
let rec read_frame r =
  let pos = ref 0 in
  match read_frame_bytes (Bytes.sub r.buf 0 r.len) pos with
  | `Frame (kind, payload) ->
      let consumed = !pos in
      Bytes.blit r.buf consumed r.buf 0 (r.len - consumed);
      r.len <- r.len - consumed;
      Some (kind, payload)
  | `Incomplete ->
      if refill r then read_frame r
      else if r.len = 0 then None
      else fail "connection closed mid-frame"

let write_all fd b =
  let off = ref 0 in
  while !off < Bytes.length b do
    let n = Unix.write fd b !off (Bytes.length b - !off) in
    if n = 0 then fail "connection closed mid-write";
    off := !off + n
  done

let send_client fd frame =
  let b = Buffer.create 256 in
  write_client b frame;
  write_all fd (Buffer.to_bytes b)

let send_server fd frame =
  let b = Buffer.create 256 in
  write_server b frame;
  write_all fd (Buffer.to_bytes b)
