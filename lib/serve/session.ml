(* One served session = one durable engine session owned by exactly one
   worker thread — PR 8's single-owner shard discipline lifted to whole
   sessions.  Connection threads never touch the engine; they enqueue
   commands into a lock-free MPSC mailbox (lib/cds Ms_queue) and block
   on a one-shot reply box when they need an answer.

   Backpressure is accounted here: [enqueue_feed] reserves each batch
   against an atomic tuple-backlog counter with a CAS loop before the
   worker sees it, parking on the flow condition until the worker
   (which decrements as it applies) makes room.  Admission is therefore
   atomic across connection threads: the backlog never exceeds
   max (quota, largest single batch) — never unbounded memory,
   whatever the clients do. *)

open Jstar_core
module Durable = Jstar_persist.Durable
module Wal = Jstar_persist.Wal

type 'a box = {
  bm : Mutex.t;
  bc : Condition.t;
  mutable bv : 'a option;
}

let box () = { bm = Mutex.create (); bc = Condition.create (); bv = None }

let box_put b v =
  Mutex.lock b.bm;
  b.bv <- Some v;
  Condition.signal b.bc;
  Mutex.unlock b.bm

let box_take b =
  Mutex.lock b.bm;
  while b.bv = None do
    Condition.wait b.bc b.bm
  done;
  let v = Option.get b.bv in
  Mutex.unlock b.bm;
  v

type cmd =
  | C_feed of Tuple.t list
  | C_drain of (string list * Protocol.watermark, string) result box
  | C_digest of (Protocol.digest_info, string) result box
  | C_checkpoint of (unit, string) result box
  | C_fork of string * (int, string) result box
  | C_harvest of (Wal.record list, string) result box
  | C_replay of Wal.record list * (int * int, string) result box
  | C_stop of (unit, string) result box

type t = {
  name : string;
  dir : string;
  tables : Schema.t array;
  schema_hash : int;
  durable : Durable.t;
  mailbox : cmd Jstar_cds.Ms_queue.t;
  quota : int;
  backlog : int Atomic.t;  (* tuples enqueued, not yet applied *)
  peak_backlog : int Atomic.t;
  tuples_in : int Atomic.t;
  feeds : int Atomic.t;
  drains : int Atomic.t;
  wake_m : Mutex.t;
  wake_c : Condition.t;
  flow_m : Mutex.t;
  flow_c : Condition.t;
  mutable stopped : bool;  (* worker exited; guarded by wake_m *)
  mutable attached : int;  (* connections bound here; server's registry lock *)
  mutable last_active_ns : int;
  mutable thread : Thread.t option;
}

let name t = t.name
let dir t = t.dir
let tables t = t.tables
let quota t = t.quota
let backlog t = Atomic.get t.backlog
let peak_backlog t = Atomic.get t.peak_backlog
let tuples_in t = Atomic.get t.tuples_in
let feeds t = Atomic.get t.feeds
let drains t = Atomic.get t.drains
let durable t = t.durable
let attached t = t.attached
let set_attached t n = t.attached <- n
let touch t = t.last_active_ns <- Jstar_obs.Monotonic.now_ns ()

let idle_seconds t =
  float_of_int (Jstar_obs.Monotonic.now_ns () - t.last_active_ns) *. 1e-9

(* -- the worker -------------------------------------------------------- *)

let watermark_of t =
  let st =
    Engine.session_state ~with_outputs:false (Durable.session t.durable)
  in
  {
    Protocol.w_steps = st.Engine.ss_steps;
    w_outputs = st.Engine.ss_outputs_count;
    w_seq_lanes = st.Engine.ss_seq_lanes;
    w_out_lanes = Durable.output_lanes t.durable;
  }

let digest_of t =
  let session = Durable.session t.durable in
  let st = Engine.session_state ~with_outputs:false session in
  {
    Protocol.d_gamma = Engine.gamma_digest session;
    d_outputs = st.Engine.ss_outputs_count;
    d_seq_lanes = st.Engine.ss_seq_lanes;
    d_out_lanes = Durable.output_lanes t.durable;
  }

let guard f = try Ok (f ()) with e -> Error (Printexc.to_string e)

let apply_feed t tuples =
  let n = List.length tuples in
  Durable.feed t.durable tuples;
  Atomic.incr t.feeds;
  ignore (Atomic.fetch_and_add t.tuples_in n);
  ignore (Atomic.fetch_and_add t.backlog (-n));
  Mutex.lock t.flow_m;
  Condition.broadcast t.flow_c;
  Mutex.unlock t.flow_m

(* Harvest this session's divergence for a merge: its current WAL.
   That log holds the *complete* divergence only while no checkpoint
   has intervened — a checkpoint empties the WAL, so harvesting after
   one would silently drop everything before it.  Provenance makes the
   check exact: a branch carries its fork generation (Durable.fork_base)
   and must still sit at it; a root session's whole history is its
   generation-0 WAL.  Either way the log is re-read and CRC-checked
   from disk, and the final watermark must reproduce the live session's
   digest lanes — a merge never trusts bytes the digests cannot vouch
   for, and never pretends a truncated window is the whole story. *)
let harvest t =
  let pending = Engine.session_pending (Durable.session t.durable) in
  if pending <> 0 then
    failwith
      (Printf.sprintf "%d tuples fed but not drained (drain before merging)"
         pending);
  let gen = Durable.generation t.durable in
  (match Durable.fork_base t.durable with
  | Some base when gen <> base ->
      failwith
        (Printf.sprintf
           "source checkpointed since its fork (gen %d, forked at %d): its \
            WAL no longer holds the full divergence"
           gen base)
  | None when gen > 0 ->
      failwith
        (Printf.sprintf
           "source checkpointed (gen %d): its WAL no longer holds its full \
            history"
           gen)
  | _ -> ());
  let records, tail =
    Wal.read (Durable.wal_path t.durable) ~tables:t.tables
      ~expect_hash:t.schema_hash
  in
  (match tail with
  | Wal.Clean -> ()
  | Wal.Torn _ | Wal.Corrupt _ -> failwith "source WAL tail is not clean");
  let records = List.map fst records in
  (match
     List.fold_left
       (fun acc r -> match r with Wal.Watermark wm -> Some wm | _ -> acc)
       None records
   with
  | None -> ()
  | Some wm ->
      if wm.Wal.wm_out_lanes <> Durable.output_lanes t.durable then
        failwith "source WAL does not reproduce the live output digest");
  records

(* Replay a harvested divergence into this session, preserving the
   source's feed/drain rhythm so the merged step sequence equals the
   single-session oracle's. *)
let replay t records =
  List.fold_left
    (fun (tuples, drains) r ->
      match r with
      | Wal.Feed ts ->
          Durable.feed t.durable ts;
          Atomic.incr t.feeds;
          ignore (Atomic.fetch_and_add t.tuples_in (List.length ts));
          (tuples + List.length ts, drains)
      | Wal.Watermark _ ->
          ignore (Durable.drain t.durable);
          Atomic.incr t.drains;
          (tuples, drains + 1))
    (0, 0) records

let exec t cmd =
  touch t;
  match cmd with
  | C_feed tuples -> apply_feed t tuples
  | C_drain b ->
      box_put b
        (guard (fun () ->
             let fresh = Durable.drain t.durable in
             Atomic.incr t.drains;
             (fresh, watermark_of t)))
  | C_digest b -> box_put b (guard (fun () -> digest_of t))
  | C_checkpoint b -> box_put b (guard (fun () -> Durable.checkpoint t.durable))
  | C_fork (dir, b) -> box_put b (guard (fun () -> Durable.fork t.durable ~dir))
  | C_harvest b -> box_put b (guard (fun () -> harvest t))
  | C_replay (records, b) -> box_put b (guard (fun () -> replay t records))
  | C_stop _ -> assert false (* handled by the loop *)

(* Declare the mailbox closed, then flush it: anything racing in
   behind the close gets an error reply, not silence.  [on_feed]
   decides what a queued feed batch deserves — applied on a graceful
   stop (the client was told it was accepted), dropped on a crash. *)
let close_mailbox t ~err ~on_feed =
  Mutex.lock t.wake_m;
  t.stopped <- true;
  Mutex.unlock t.wake_m;
  Jstar_cds.Ms_queue.drain t.mailbox (fun cmd ->
      let reject : type a. (a, string) result box -> unit =
       fun rb -> box_put rb (Error err)
      in
      match cmd with
      | C_feed tuples -> on_feed tuples
      | C_drain rb -> reject rb
      | C_digest rb -> reject rb
      | C_checkpoint rb -> reject rb
      | C_fork (_, rb) -> reject rb
      | C_harvest rb -> reject rb
      | C_replay (_, rb) -> reject rb
      | C_stop rb -> reject rb)

(* Unpark any flow-control waiters for good ([stopped] is now set). *)
let release_flow_waiters t =
  Mutex.lock t.flow_m;
  Condition.broadcast t.flow_c;
  Mutex.unlock t.flow_m

let worker t () =
  let running = ref true in
  while !running do
    match Jstar_cds.Ms_queue.pop t.mailbox with
    | Some (C_stop b) ->
        running := false;
        close_mailbox t ~err:"session stopped" ~on_feed:(apply_feed t);
        (* Graceful close: quiesce, checkpoint, release the engine. *)
        box_put b
          (guard (fun () ->
               if Engine.session_pending (Durable.session t.durable) > 0 then begin
                 ignore (Durable.drain t.durable);
                 Atomic.incr t.drains
               end;
               Durable.checkpoint t.durable;
               ignore (Durable.finish t.durable)));
        release_flow_waiters t
    | Some cmd -> (
        try exec t cmd
        with e ->
          (* Exception barrier.  [guard] already fences every boxed
             command, so only the fire-and-forget C_feed path can land
             here — a WAL append/fsync failure (ENOSPC, EIO) out of
             Durable.feed.  The engine can no longer be trusted, so the
             session dies *loudly*: declare it stopped, reject whatever
             is queued and unpark flow waiters — clients get Err frames
             instead of hanging forever in box_take, and server
             shutdown can still join this thread.  Backlog accounting
             stays exact (each reservation released exactly once):
             dropped batches are released here, the crashed batch's own
             reservation too (apply_feed decrements only after a
             successful apply), and a reservation still in flight in
             enqueue_feed rolls itself back when its post is refused —
             so the counter drains to 0 and the dead session remains
             evictable. *)
          running := false;
          let drop tuples =
            ignore (Atomic.fetch_and_add t.backlog (-(List.length tuples)))
          in
          (match cmd with C_feed tuples -> drop tuples | _ -> ());
          let msg = "session worker crashed: " ^ Printexc.to_string e in
          close_mailbox t ~err:msg ~on_feed:drop;
          release_flow_waiters t;
          Jstar_obs.Journal.error
            (Engine.session_journal (Durable.session t.durable))
            ~comp:"serve" ~event:"worker-crash"
            [
              ("session", Jstar_obs.Json.Str t.name);
              ("error", Jstar_obs.Json.Str (Printexc.to_string e));
            ];
          (try ignore (Durable.finish t.durable) with _ -> ()))
    | None ->
        Mutex.lock t.wake_m;
        while Jstar_cds.Ms_queue.is_empty t.mailbox && not t.stopped do
          Condition.wait t.wake_c t.wake_m
        done;
        Mutex.unlock t.wake_m
  done

(* -- lifecycle --------------------------------------------------------- *)

let start ~name ~dir ~quota ?checkpoint_every ?fsync frozen config =
  let durable, status = Durable.open_ ?checkpoint_every ?fsync ~dir frozen config in
  let t =
    {
      name;
      dir;
      tables = frozen.Program.tables;
      schema_hash = Jstar_persist.Codec.schema_hash frozen.Program.tables;
      durable;
      mailbox = Jstar_cds.Ms_queue.create ();
      quota;
      backlog = Atomic.make 0;
      peak_backlog = Atomic.make 0;
      tuples_in = Atomic.make 0;
      feeds = Atomic.make 0;
      drains = Atomic.make 0;
      wake_m = Mutex.create ();
      wake_c = Condition.create ();
      flow_m = Mutex.create ();
      flow_c = Condition.create ();
      stopped = false;
      attached = 0;
      last_active_ns = Jstar_obs.Monotonic.now_ns ();
      thread = None;
    }
  in
  t.thread <- Some (Thread.create (worker t) ());
  (t, status)

let post t cmd =
  Mutex.lock t.wake_m;
  if t.stopped then begin
    Mutex.unlock t.wake_m;
    Error "session stopped"
  end
  else begin
    Jstar_cds.Ms_queue.push t.mailbox cmd;
    Condition.signal t.wake_c;
    Mutex.unlock t.wake_m;
    Ok ()
  end

let roundtrip t make =
  let b = box () in
  match post t (make b) with
  | Error _ as e -> e
  | Ok () -> box_take b

(* -- operations (called from connection / server threads) -------------- *)

(* Block until the backlog falls below [limit] (or the session stops). *)
let wait_below t limit =
  Mutex.lock t.flow_m;
  while Atomic.get t.backlog >= limit && not t.stopped do
    Condition.wait t.flow_c t.flow_m
  done;
  Mutex.unlock t.flow_m

(* Admit and enqueue a feed batch.  Admission is atomic: a CAS loop
   reserves the whole batch against the backlog counter, so concurrent
   connections can never jointly drive the backlog past the quota.  A
   batch that would overflow a non-empty backlog parks — [on_pause]
   fires once, the reservation retries after [wait_below] — while a
   batch larger than the whole quota is admitted only into an *empty*
   backlog (refusing it outright would wedge its client).  Peak backlog
   is therefore bounded by max (quota, largest single batch); with
   batches within the quota, by the quota itself. *)
let enqueue_feed t tuples ~on_pause ~on_resume =
  let n = List.length tuples in
  let rec reserve paused =
    if t.stopped then begin
      if paused then on_resume (Atomic.get t.backlog);
      Error "session stopped"
    end
    else
      let cur = Atomic.get t.backlog in
      if cur > 0 && cur + n > t.quota then begin
        if not paused then on_pause cur;
        wait_below t (max 1 (t.quota / 2));
        reserve true
      end
      else
        (* Admission point: backlog empty, or batch fits.  An oversized
           batch (n > quota) only ever lands here alone into an empty
           backlog — it still blew the quota, so the client hears the
           pause/resume pair: the signal that flow control engaged. *)
        let paused =
          if n > t.quota && not paused then begin
            on_pause cur;
            true
          end
          else paused
        in
        if Atomic.compare_and_set t.backlog cur (cur + n) then begin
          let now = cur + n in
          if paused then on_resume now;
          let rec bump_peak () =
            let p = Atomic.get t.peak_backlog in
            if now > p && not (Atomic.compare_and_set t.peak_backlog p now)
            then bump_peak ()
          in
          bump_peak ();
          match post t (C_feed tuples) with
          | Ok () -> Ok now
          | Error _ as e ->
              ignore (Atomic.fetch_and_add t.backlog (-n));
              release_flow_waiters t;
              e
        end
        else reserve paused
  in
  reserve false

let drain t = roundtrip t (fun b -> C_drain b)
let digest t = roundtrip t (fun b -> C_digest b)
let checkpoint t = roundtrip t (fun b -> C_checkpoint b)
let fork t ~dir = roundtrip t (fun b -> C_fork (dir, b))
let harvest t = roundtrip t (fun b -> C_harvest b)
let replay t records = roundtrip t (fun b -> C_replay (records, b))

let stop t =
  let r = roundtrip t (fun b -> C_stop b) in
  (match t.thread with Some th -> Thread.join th | None -> ());
  r
