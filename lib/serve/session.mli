(** One served session: a durable engine session owned by a single
    worker thread, commanded through a lock-free MPSC mailbox — the
    shard ownership discipline of DESIGN.md §13 lifted to sessions.
    Connection threads call the operations below; every engine touch
    happens on the worker.

    Backpressure contract: {!enqueue_feed} accounts the batch against
    an atomic tuple backlog before the worker sees it; callers compare
    the result to {!quota} and park on {!wait_below} when over — so
    queued-but-unapplied tuples are bounded by quota + one in-flight
    batch per connection, and a slow session slows its clients instead
    of growing the heap. *)

open Jstar_core

type t

val start :
  name:string ->
  dir:string ->
  quota:int ->
  ?checkpoint_every:int ->
  ?fsync:Jstar_persist.Wal.fsync_policy ->
  Program.frozen ->
  Config.t ->
  t * Jstar_persist.Durable.status
(** Open (or recover) the durable session under [dir] and spawn its
    worker.  @raise Jstar_persist.Durable.Recovery_error when existing
    state fails validation. *)

val stop : t -> (unit, string) result
(** Drain-then-checkpoint shutdown: the worker applies every queued
    command, quiesces, checkpoints, closes the engine and exits; the
    mailbox rejects everything afterwards.  Joins the worker. *)

(** {2 Operations} *)

val enqueue_feed : t -> Tuple.t list -> (int, string) result
(** Queue a feed batch; returns the tuple backlog {e including} this
    batch.  Completion is asynchronous — durability is confirmed by the
    next {!drain} watermark. *)

val wait_below : t -> int -> unit
(** Block until the backlog is below [limit] or the session stops. *)

val drain : t -> (string list * Protocol.watermark, string) result
val digest : t -> (Protocol.digest_info, string) result
val checkpoint : t -> (unit, string) result

val fork : t -> dir:string -> (int, string) result
(** {!Jstar_persist.Durable.fork} on the worker: quiesce, checkpoint if
    diverged, hard-link the snapshot generation into [dir]. *)

val harvest : t -> (Jstar_persist.Wal.record list, string) result
(** The session's divergence since its last checkpoint (= since its
    fork, for a fresh branch): its current WAL, re-read and CRC-checked,
    with the final watermark verified against the live output digest.
    Requires quiescence. *)

val replay : t -> Jstar_persist.Wal.record list -> (int * int, string) result
(** Feed a harvested divergence into this session, preserving the
    source's feed/drain rhythm.  Returns (tuples, drains) applied. *)

(** {2 Monitoring lanes} *)

val name : t -> string
val dir : t -> string
val tables : t -> Schema.t array
val quota : t -> int
val backlog : t -> int
val peak_backlog : t -> int
val tuples_in : t -> int
val feeds : t -> int
val drains : t -> int
val idle_seconds : t -> float
val touch : t -> unit
(** Reset the idle clock (any client activity). *)

val durable : t -> Jstar_persist.Durable.t
(** Monitoring-lane access (generation, WAL lag, fsync counters); the
    worker owns all state-changing calls. *)

(** {2 Connection bookkeeping (guarded by the server's registry lock)} *)

val attached : t -> int
val set_attached : t -> int -> unit
