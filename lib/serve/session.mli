(** One served session: a durable engine session owned by a single
    worker thread, commanded through a lock-free MPSC mailbox — the
    shard ownership discipline of DESIGN.md §13 lifted to sessions.
    Connection threads call the operations below; every engine touch
    happens on the worker.

    Backpressure contract: {!enqueue_feed} atomically reserves the
    batch against the tuple backlog before the worker sees it, parking
    (with flow-control callbacks) until the worker makes room — so
    queued-but-unapplied tuples are bounded by
    [max (quota, largest single batch)] however many connections feed
    concurrently, and a slow session slows its clients instead of
    growing the heap. *)

open Jstar_core

type t

val start :
  name:string ->
  dir:string ->
  quota:int ->
  ?checkpoint_every:int ->
  ?fsync:Jstar_persist.Wal.fsync_policy ->
  Program.frozen ->
  Config.t ->
  t * Jstar_persist.Durable.status
(** Open (or recover) the durable session under [dir] and spawn its
    worker.  @raise Jstar_persist.Durable.Recovery_error when existing
    state fails validation. *)

val stop : t -> (unit, string) result
(** Drain-then-checkpoint shutdown: the worker applies every queued
    command, quiesces, checkpoints, closes the engine and exits; the
    mailbox rejects everything afterwards.  Joins the worker. *)

(** {2 Operations} *)

val enqueue_feed :
  t ->
  Tuple.t list ->
  on_pause:(int -> unit) ->
  on_resume:(int -> unit) ->
  (int, string) result
(** Atomically admit a feed batch against the quota and queue it;
    returns the tuple backlog {e including} this batch.  When the batch
    would overflow a non-empty backlog the call blocks until the worker
    catches up, invoking [on_pause] once going to sleep and [on_resume]
    once admitted (both receive the backlog at that moment) — the
    caller's Flow frames.  Completion is asynchronous — durability is
    confirmed by the next {!drain} watermark. *)

val drain : t -> (string list * Protocol.watermark, string) result
val digest : t -> (Protocol.digest_info, string) result
val checkpoint : t -> (unit, string) result

val fork : t -> dir:string -> (int, string) result
(** {!Jstar_persist.Durable.fork} on the worker: quiesce, checkpoint if
    diverged, hard-link the snapshot generation into [dir]. *)

val harvest : t -> (Jstar_persist.Wal.record list, string) result
(** The session's complete divergence — since its fork for a branch,
    since creation otherwise: its current WAL, re-read and CRC-checked,
    with the final watermark verified against the live output digest.
    Refused ([Error]) when a checkpoint has truncated that window
    (generation advanced past the {!Jstar_persist.Durable.fork_base},
    or past 0 for a root session): a checkpoint empties the WAL, and a
    partial window must never merge as if it were the whole story.
    Requires quiescence. *)

val replay : t -> Jstar_persist.Wal.record list -> (int * int, string) result
(** Feed a harvested divergence into this session, preserving the
    source's feed/drain rhythm.  Returns (tuples, drains) applied. *)

(** {2 Monitoring lanes} *)

val name : t -> string
val dir : t -> string
val tables : t -> Schema.t array
val quota : t -> int
val backlog : t -> int
val peak_backlog : t -> int
val tuples_in : t -> int
val feeds : t -> int
val drains : t -> int
val idle_seconds : t -> float
val touch : t -> unit
(** Reset the idle clock (any client activity). *)

val durable : t -> Jstar_persist.Durable.t
(** Monitoring-lane access (generation, WAL lag, fsync counters); the
    worker owns all state-changing calls. *)

(** {2 Connection bookkeeping (guarded by the server's registry lock)} *)

val attached : t -> int
val set_attached : t -> int -> unit
