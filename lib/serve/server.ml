(* The jstar-serve reactor: one acceptor thread multiplexing a
   listening socket against a shutdown self-pipe, one thread per client
   connection speaking the binary protocol, and one single-owner worker
   per session (Session).  Admission control front-loads every resource
   decision: connections are counted at accept, sessions at open,
   queued tuples per session at feed — past those gates nothing is
   unbounded.

   Branch and merge are orchestrated here because they span sessions:
   branch = Durable.fork on the source's worker + a fresh Session over
   the linked generation; merge = harvest the source's WAL divergence
   (digest-verified) and replay it into the target, preserving the
   feed/drain rhythm so the merged digests equal the single-session
   oracle's. *)

open Jstar_core
module Json = Jstar_obs.Json
module Journal = Jstar_obs.Journal
module Metrics = Jstar_obs.Metrics
module P = Protocol

type config = {
  root : string;  (** session directories live under here *)
  addr : string;
  port : int;  (** 0 = ephemeral *)
  max_sessions : int;
  max_connections : int;
  feed_quota : int;  (** queued-tuple cap per session mailbox *)
  idle_timeout : float;  (** seconds; <= 0 disables idle eviction *)
  checkpoint_every : int;
  fsync : Jstar_persist.Wal.fsync_policy;
  engine : Config.t;
  ops_port : int option;
  flight_dir : string option;
}

let default_config ~root =
  {
    root;
    addr = "127.0.0.1";
    port = 0;
    max_sessions = 64;
    max_connections = 128;
    feed_quota = 32768;
    idle_timeout = 300.0;
    checkpoint_every = 0;
    fsync = Jstar_persist.Wal.Every_ms 5;
    engine = Config.default;
    ops_port = None;
    flight_dir = None;
  }

type t = {
  cfg : config;
  frozen : Program.frozen;
  schema_hash : int;
  lsock : Unix.file_descr;
  port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  journal : Journal.t;
  metrics : Metrics.t;
  registry : (string, Session.t) Hashtbl.t;
  reg_m : Mutex.t;
  lanes : (string, unit) Hashtbl.t;  (* names with metric lanes registered *)
  mutable conns : (Unix.file_descr * Thread.t) list;  (* under conn_m *)
  conn_m : Mutex.t;
  conn_count : int Atomic.t;
  conns_total : int Atomic.t;
  rejected_conns : int Atomic.t;
  rejected_sessions : int Atomic.t;
  sessions_opened : int Atomic.t;
  sessions_evicted : int Atomic.t;
  branches : int Atomic.t;
  merges : int Atomic.t;
  flow_pauses : int Atomic.t;
  retired_tuples : int Atomic.t;  (* folded in when a session stops *)
  retired_peak : int Atomic.t;
  shutting_down : bool Atomic.t;
  mutable acceptor : Thread.t option;
  mutable ops : Jstar_ops.Httpd.t option;
  mutable recorder : Jstar_obs.Recorder.t option;
  mutable stopped : bool;  (* under conn_m; stop runs once *)
  start_ns : int;
}

(* -- names and directories --------------------------------------------- *)

let name_ok name =
  let seg_ok s =
    s <> "" && s <> "." && s <> ".."
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = '-' || c = '.')
         s
  in
  String.length name <= 128
  && name <> ""
  && List.for_all seg_ok (String.split_on_char '/' name)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let session_dir t name =
  let dir =
    List.fold_left Filename.concat t.cfg.root (String.split_on_char '/' name)
  in
  mkdir_p (Filename.dirname dir);
  dir

(* -- journal ----------------------------------------------------------- *)

let jlog t ~event ?(fields = []) name =
  Journal.info t.journal ~comp:"serve" ~event
    (("session", Json.Str name) :: fields)

let num i = Json.Num (float_of_int i)

(* -- registry helpers -------------------------------------------------- *)

let with_registry t f =
  Mutex.lock t.reg_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_m) f

let live_sessions t =
  with_registry t (fun () ->
      Hashtbl.fold (fun _ s acc -> s :: acc) t.registry [])

(* Per-session metric lanes, registered once per name ever seen; they
   read through the registry so an evicted-then-reopened session keeps
   its lane, and a closed one reads 0. *)
let register_lanes t name =
  if not (Hashtbl.mem t.lanes name) then begin
    Hashtbl.replace t.lanes name ();
    let read f =
      Mutex.lock t.reg_m;
      let v =
        match Hashtbl.find_opt t.registry name with
        | Some s -> f s
        | None -> 0
      in
      Mutex.unlock t.reg_m;
      v
    in
    let g metric f =
      Metrics.register_gauge t.metrics
        ~name:(Printf.sprintf "serve.session.%s.%s" name metric) (fun () ->
          Metrics.Int (read f))
    in
    g "backlog" Session.backlog;
    g "tuples_in" Session.tuples_in;
    g "drains" Session.drains
  end

(* Must hold reg_m.  Opens or recovers [name]'s session. *)
let open_session_locked t name =
  match Hashtbl.find_opt t.registry name with
  | Some s -> Ok (s, `Attached)
  | None ->
      if Hashtbl.length t.registry >= t.cfg.max_sessions then begin
        ignore (Atomic.fetch_and_add t.rejected_sessions 1);
        jlog t ~event:"reject"
          ~fields:[ ("reason", Json.Str "max-sessions") ]
          name;
        Error (P.err_capacity, "session table full")
      end
      else begin
        match
          Session.start ~name ~dir:(session_dir t name)
            ~quota:t.cfg.feed_quota ~checkpoint_every:t.cfg.checkpoint_every
            ~fsync:t.cfg.fsync t.frozen t.cfg.engine
        with
        | s, status ->
            Hashtbl.replace t.registry name s;
            register_lanes t name;
            ignore (Atomic.fetch_and_add t.sessions_opened 1);
            let st =
              match status with
              | Jstar_persist.Durable.Fresh -> `Fresh
              | Jstar_persist.Durable.Restored _ -> `Restored
            in
            jlog t ~event:"open"
              ~fields:
                [
                  ( "state",
                    Json.Str (if st = `Fresh then "fresh" else "restored") );
                  ("gen", num (Jstar_persist.Durable.generation (Session.durable s)));
                ]
              name;
            Ok (s, st)
        | exception e -> Error (P.err_conflict, Printexc.to_string e)
      end

(* Must hold reg_m. *)
let stop_session_locked t ~event s =
  Hashtbl.remove t.registry (Session.name s);
  ignore (Atomic.fetch_and_add t.retired_tuples (Session.tuples_in s));
  let rec fold_peak () =
    let p = Atomic.get t.retired_peak in
    let sp = Session.peak_backlog s in
    if sp > p && not (Atomic.compare_and_set t.retired_peak p sp) then
      fold_peak ()
  in
  fold_peak ();
  (match Session.stop s with
  | Ok () -> jlog t ~event (Session.name s)
  | Error m ->
      jlog t ~event ~fields:[ ("error", Json.Str m) ] (Session.name s))

let evict_idle t =
  with_registry t (fun () ->
      let victims =
        Hashtbl.fold
          (fun _ s acc ->
            if
              Session.attached s = 0
              && Session.backlog s = 0
              && Session.idle_seconds s > t.cfg.idle_timeout
            then s :: acc
            else acc)
          t.registry []
      in
      List.iter
        (fun s ->
          ignore (Atomic.fetch_and_add t.sessions_evicted 1);
          stop_session_locked t ~event:"evict" s)
        victims)

(* -- connection protocol ----------------------------------------------- *)

let send fd frame = try P.send_server fd frame with _ -> ()

let handle_open t conn_session name =
  if not (name_ok name) then Error (P.err_bad_name, "bad session name")
  else if Atomic.get t.shutting_down then
    Error (P.err_shutting_down, "server draining")
  else
    with_registry t (fun () ->
        match open_session_locked t name with
        | Error _ as e -> e
        | Ok (s, st) ->
            (match !conn_session with
            | Some old -> Session.set_attached old (Session.attached old - 1)
            | None -> ());
            Session.set_attached s (Session.attached s + 1);
            Session.touch s;
            conn_session := Some s;
            let state =
              match st with
              | `Fresh -> "fresh"
              | `Restored -> "restored"
              | `Attached -> "attached"
            in
            Ok
              (Printf.sprintf "%s %s gen=%d" state name
                 (Jstar_persist.Durable.generation (Session.durable s))))

let handle_branch t s target =
  if not (name_ok target) then Error (P.err_bad_name, "bad branch name")
  else if Atomic.get t.shutting_down then
    Error (P.err_shutting_down, "server draining")
  else
    with_registry t (fun () ->
        if Hashtbl.mem t.registry target then
          Error (P.err_conflict, "branch name already open")
        else if Hashtbl.length t.registry >= t.cfg.max_sessions then
          Error (P.err_capacity, "session table full")
        else
          let dir = session_dir t target in
          if Sys.file_exists (Filename.concat dir "CURRENT") then
            Error (P.err_conflict, "branch name already on disk")
          else
            match Session.fork s ~dir with
            | Error m -> Error (P.err_conflict, m)
            | Ok gen -> (
                match
                  Session.start ~name:target ~dir ~quota:t.cfg.feed_quota
                    ~checkpoint_every:t.cfg.checkpoint_every
                    ~fsync:t.cfg.fsync t.frozen t.cfg.engine
                with
                | branch, _ ->
                    Hashtbl.replace t.registry target branch;
                    register_lanes t target;
                    ignore (Atomic.fetch_and_add t.branches 1);
                    ignore (Atomic.fetch_and_add t.sessions_opened 1);
                    jlog t ~event:"branch"
                      ~fields:
                        [ ("from", Json.Str (Session.name s)); ("gen", num gen) ]
                      target;
                    Ok (Printf.sprintf "branched %s gen=%d" target gen)
                | exception e -> Error (P.err_conflict, Printexc.to_string e)))

let handle_merge t s from_name =
  if from_name = Session.name s then
    Error (P.err_merge, "cannot merge a session into itself")
  else
    let from =
      with_registry t (fun () ->
          match Hashtbl.find_opt t.registry from_name with
          | Some f ->
              (* pin: the janitor must not evict mid-merge *)
              Session.set_attached f (Session.attached f + 1);
              Some f
          | None -> None)
    in
    match from with
    | None -> Error (P.err_no_session, "no such session: " ^ from_name)
    | Some from ->
        let unpin () =
          with_registry t (fun () ->
              Session.set_attached from (Session.attached from - 1))
        in
        Fun.protect ~finally:unpin (fun () ->
            match Session.harvest from with
            | Error m -> Error (P.err_merge, "harvest: " ^ m)
            | Ok records -> (
                match Session.replay s records with
                | Error m -> Error (P.err_merge, "replay: " ^ m)
                | Ok (tuples, drains) ->
                    ignore (Atomic.fetch_and_add t.merges 1);
                    jlog t ~event:"merge"
                      ~fields:
                        [
                          ("from", Json.Str from_name);
                          ("tuples", num tuples);
                          ("drains", num drains);
                        ]
                      (Session.name s);
                    Ok
                      (Printf.sprintf "merged %s: %d tuples, %d drains"
                         from_name tuples drains)))

let handle_feed t fd s tuples =
  Session.touch s;
  (* Admission lives in Session.enqueue_feed (atomic across connection
     threads); this layer just translates its park/unpark into Flow
     frames on the wire. *)
  match
    Session.enqueue_feed s tuples
      ~on_pause:(fun backlog ->
        ignore (Atomic.fetch_and_add t.flow_pauses 1);
        send fd (P.Flow { pause = true; backlog }))
      ~on_resume:(fun backlog -> send fd (P.Flow { pause = false; backlog }))
  with
  | Ok backlog -> send fd (P.Fed { accepted = List.length tuples; backlog })
  | Error m -> send fd (P.Err { code = P.err_conflict; msg = m })

let conn_main t fd () =
  let reader = P.reader fd in
  let conn_session = ref None in
  let require_session k =
    match !conn_session with
    | None ->
        send fd
          (P.Err { code = P.err_no_session; msg = "open a session first" })
    | Some s -> k s
  in
  let reply_result = function
    | Ok info -> send fd (P.Okay info)
    | Error (code, msg) -> send fd (P.Err { code; msg })
  in
  (try
     (* Handshake: the first frame must be a Hello that matches our
        protocol version and program shape. *)
     (match P.read_frame reader with
     | None -> ()
     | Some (kind, payload) -> (
         match P.decode_client ~tables:t.frozen.Program.tables kind payload with
         | P.Hello { version; schema_hash } ->
             if version <> P.version then
               send fd
                 (P.Err
                    {
                      code = P.err_handshake;
                      msg = Printf.sprintf "protocol version %d, want %d"
                              version P.version;
                    })
             else if schema_hash <> t.schema_hash land 0xffffffff then
               send fd
                 (P.Err
                    {
                      code = P.err_handshake;
                      msg = "schema hash mismatch (different program?)";
                    })
             else begin
               send fd
                 (P.Welcome
                    {
                      version = P.version;
                      schema_hash = t.schema_hash;
                      max_payload = P.max_payload;
                    });
               let bye = ref false in
               while not !bye do
                 match P.read_frame reader with
                 | None -> bye := true
                 | Some (kind, payload) -> (
                     match
                       P.decode_client ~tables:t.frozen.Program.tables kind
                         payload
                     with
                     | P.Hello _ ->
                         send fd
                           (P.Err
                              {
                                code = P.err_bad_frame;
                                msg = "already greeted";
                              })
                     | P.Open name ->
                         reply_result (handle_open t conn_session name)
                     | P.Feed tuples ->
                         require_session (fun s -> handle_feed t fd s tuples)
                     | P.Drain ->
                         require_session (fun s ->
                             Session.touch s;
                             match Session.drain s with
                             | Ok (lines, mark) ->
                                 send fd (P.Drained { lines; mark })
                             | Error m ->
                                 send fd
                                   (P.Err { code = P.err_conflict; msg = m }))
                     | P.Digest ->
                         require_session (fun s ->
                             match Session.digest s with
                             | Ok d -> send fd (P.Digests d)
                             | Error m ->
                                 send fd
                                   (P.Err { code = P.err_conflict; msg = m }))
                     | P.Checkpoint ->
                         require_session (fun s ->
                             match Session.checkpoint s with
                             | Ok () -> send fd (P.Okay "checkpointed")
                             | Error m ->
                                 send fd
                                   (P.Err { code = P.err_conflict; msg = m }))
                     | P.Branch target ->
                         require_session (fun s ->
                             reply_result (handle_branch t s target))
                     | P.Merge from_name ->
                         require_session (fun s ->
                             reply_result (handle_merge t s from_name))
                     | P.Bye ->
                         send fd (P.Okay "bye");
                         bye := true)
               done
             end
         | _ ->
             send fd
               (P.Err { code = P.err_handshake; msg = "expected Hello" })))
   with
  | P.Frame_error msg ->
      (* Torn, oversized, corrupt or undecodable framing: one clean
         error frame, then hang up — never a crash. *)
      send fd (P.Err { code = P.err_bad_frame; msg })
  | Unix.Unix_error _ -> ());
  (match !conn_session with
  | Some s ->
      with_registry t (fun () ->
          Session.set_attached s (Session.attached s - 1);
          Session.touch s)
  | None -> ());
  (* Deregister and close in one conn_m critical section: [wait] issues
     its shutdowns under the same lock, so an fd it finds in [conns] is
     guaranteed not yet closed — its number cannot have been recycled
     for a WAL file or another socket. *)
  Mutex.lock t.conn_m;
  t.conns <- List.filter (fun (cfd, _) -> cfd <> fd) t.conns;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.unlock t.conn_m;
  ignore (Atomic.fetch_and_add t.conn_count (-1))

(* -- acceptor ---------------------------------------------------------- *)

let accept_one t =
  match Unix.accept t.lsock with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      ignore (Atomic.fetch_and_add t.conns_total 1);
      if Atomic.get t.shutting_down then begin
        send fd (P.Err { code = P.err_shutting_down; msg = "server draining" });
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else if Atomic.get t.conn_count >= t.cfg.max_connections then begin
        ignore (Atomic.fetch_and_add t.rejected_conns 1);
        jlog t ~event:"reject"
          ~fields:[ ("reason", Json.Str "max-connections") ]
          "-";
        send fd (P.Err { code = P.err_capacity; msg = "connection table full" });
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        ignore (Atomic.fetch_and_add t.conn_count 1);
        (* Register under conn_m around the spawn: conn_main's exit path
           takes the same lock before deregistering, so even a
           connection that finishes instantly cannot leave a dead entry
           (with an already-closed fd) behind in [conns]. *)
        Mutex.lock t.conn_m;
        let th = Thread.create (conn_main t fd) () in
        t.conns <- (fd, th) :: t.conns;
        Mutex.unlock t.conn_m
      end

let acceptor t () =
  (* The 1 s tick serves two masters: the idle-eviction janitor, and
     signal delivery — a pending OCaml signal handler (SIGTERM →
     request_shutdown) only runs when some thread is executing OCaml
     code, so the acceptor must never sleep in [select] forever. *)
  let running = ref true in
  while !running do
    (match Unix.select [ t.lsock; t.stop_r ] [] [] 1.0 with
    | readable, _, _ ->
        if List.mem t.stop_r readable then running := false
        else if List.mem t.lsock readable then accept_one t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if !running && t.cfg.idle_timeout > 0.0 then evict_idle t
  done

(* -- ops plane --------------------------------------------------------- *)

let session_json s =
  let d = Session.durable s in
  let lag = Jstar_persist.Durable.wal_lag d in
  Json.Obj
    [
      ("name", Json.Str (Session.name s));
      ("gen", num (Jstar_persist.Durable.generation d));
      ("attached", num (Session.attached s));
      ("backlog", num (Session.backlog s));
      ("peak_backlog", num (Session.peak_backlog s));
      ("tuples_in", num (Session.tuples_in s));
      ("feeds", num (Session.feeds s));
      ("drains", num (Session.drains s));
      ("idle_s", Json.Num (Session.idle_seconds s));
      ("wal_lag_records", num lag.Jstar_persist.Wal.lag_records);
      ("fsync", Json.Str (Jstar_persist.Durable.fsync_policy_name d));
    ]

let health_json t =
  let sessions = live_sessions t in
  let degraded =
    List.exists (fun s -> Session.backlog s >= Session.quota s) sessions
  in
  Json.Obj
    [
      ( "status",
        Json.Str
          (if Atomic.get t.shutting_down then "draining"
           else if degraded then "degraded"
           else "ok") );
      ( "uptime_s",
        Json.Num
          (float_of_int (Jstar_obs.Monotonic.now_ns () - t.start_ns) *. 1e-9)
      );
      ("port", num t.port);
      ("connections", num (Atomic.get t.conn_count));
      ("sessions_open", num (List.length sessions));
      ( "sessions",
        Json.Arr
          (List.map session_json
             (List.sort
                (fun a b -> compare (Session.name a) (Session.name b))
                sessions)) );
    ]

let make_recorder t ~dir =
  let r =
    Jstar_obs.Recorder.create ~journal:t.journal ~metrics:t.metrics ~dir ()
  in
  Jstar_obs.Recorder.add_section r "server" (fun () ->
      Json.Obj
        [
          ("connections", num (Atomic.get t.conn_count));
          ("connections_total", num (Atomic.get t.conns_total));
          ("sessions_opened", num (Atomic.get t.sessions_opened));
          ("sessions_evicted", num (Atomic.get t.sessions_evicted));
          ("branches", num (Atomic.get t.branches));
          ("merges", num (Atomic.get t.merges));
          ("flow_pauses", num (Atomic.get t.flow_pauses));
        ]);
  Jstar_obs.Recorder.add_section r "sessions" (fun () ->
      Json.Arr (List.map session_json (live_sessions t)));
  r

let ops_index =
  "jstar-serve ops endpoints:\n\
  \  /metrics    Prometheus text format (server + per-session lanes)\n\
  \  /health     aggregate heartbeat with per-session status\n\
  \  /sessions   per-session detail (JSON)\n\
  \  /dump       write a flight-recorder bundle\n"

let start_ops t =
  match t.cfg.ops_port with
  | None -> ()
  | Some port ->
      t.recorder <-
        Option.map (fun dir -> make_recorder t ~dir) t.cfg.flight_dir;
      let routes =
        [
          ("/", fun _ -> Jstar_ops.Httpd.text ops_index);
          ( "/metrics",
            fun _ ->
              {
                Jstar_ops.Httpd.status = 200;
                content_type = "text/plain; version=0.0.4";
                body = Jstar_obs.Prom.render t.metrics;
              } );
          ( "/health",
            fun _ ->
              Jstar_ops.Httpd.json (Json.to_string (health_json t) ^ "\n") );
          ( "/sessions",
            fun _ ->
              Jstar_ops.Httpd.json
                (Json.to_string
                   (Json.Arr (List.map session_json (live_sessions t)))
                ^ "\n") );
          ( "/dump",
            fun _ ->
              match t.recorder with
              | None ->
                  Jstar_ops.Httpd.json ~status:404
                    "{\"error\": \"no flight recorder (set --flight-dir)\"}\n"
              | Some r ->
                  let path = Jstar_obs.Recorder.dump r ~reason:"ops-dump" in
                  Jstar_ops.Httpd.json
                    (Json.to_string (Json.Obj [ ("path", Json.Str path) ])
                    ^ "\n") );
        ]
      in
      t.ops <- Some (Jstar_ops.Httpd.start ~addr:t.cfg.addr ~port routes)

let register_metrics t =
  let c name read = Metrics.register_counter t.metrics ~name read in
  let g name read =
    Metrics.register_gauge t.metrics ~name (fun () -> Metrics.Int (read ()))
  in
  c "serve.connections_total" (fun () -> Atomic.get t.conns_total);
  c "serve.rejected_connections" (fun () -> Atomic.get t.rejected_conns);
  c "serve.rejected_sessions" (fun () -> Atomic.get t.rejected_sessions);
  c "serve.sessions_opened" (fun () -> Atomic.get t.sessions_opened);
  c "serve.sessions_evicted" (fun () -> Atomic.get t.sessions_evicted);
  c "serve.branches" (fun () -> Atomic.get t.branches);
  c "serve.merges" (fun () -> Atomic.get t.merges);
  c "serve.flow_pauses" (fun () -> Atomic.get t.flow_pauses);
  c "serve.tuples_in_total" (fun () ->
      Atomic.get t.retired_tuples
      + List.fold_left
          (fun acc s -> acc + Session.tuples_in s)
          0 (live_sessions t));
  g "serve.connections_open" (fun () -> Atomic.get t.conn_count);
  g "serve.sessions_open" (fun () ->
      with_registry t (fun () -> Hashtbl.length t.registry));
  g "serve.backlog_total" (fun () ->
      List.fold_left (fun acc s -> acc + Session.backlog s) 0 (live_sessions t));
  g "serve.peak_backlog" (fun () ->
      List.fold_left
        (fun acc s -> max acc (Session.peak_backlog s))
        (Atomic.get t.retired_peak) (live_sessions t));
  g "serve.feed_quota" (fun () -> t.cfg.feed_quota)

(* -- lifecycle --------------------------------------------------------- *)

let start cfg frozen =
  mkdir_p cfg.root;
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.addr, cfg.port));
     Unix.listen lsock 64
   with e ->
     (try Unix.close lsock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      cfg;
      frozen;
      schema_hash = Jstar_persist.Codec.schema_hash frozen.Program.tables;
      lsock;
      port;
      stop_r;
      stop_w;
      journal = Journal.create ();
      metrics = Metrics.create ();
      registry = Hashtbl.create 16;
      reg_m = Mutex.create ();
      lanes = Hashtbl.create 16;
      conns = [];
      conn_m = Mutex.create ();
      conn_count = Atomic.make 0;
      conns_total = Atomic.make 0;
      rejected_conns = Atomic.make 0;
      rejected_sessions = Atomic.make 0;
      sessions_opened = Atomic.make 0;
      sessions_evicted = Atomic.make 0;
      branches = Atomic.make 0;
      merges = Atomic.make 0;
      flow_pauses = Atomic.make 0;
      retired_tuples = Atomic.make 0;
      retired_peak = Atomic.make 0;
      shutting_down = Atomic.make false;
      acceptor = None;
      ops = None;
      recorder = None;
      stopped = false;
      start_ns = Jstar_obs.Monotonic.now_ns ();
    }
  in
  register_metrics t;
  start_ops t;
  t.acceptor <- Some (Thread.create (acceptor t) ());
  Journal.info t.journal ~comp:"serve" ~event:"start"
    [ ("port", num port); ("root", Json.Str cfg.root) ];
  t

let port t = t.port
let metrics t = t.metrics
let journal t = t.journal
let ops_port t = Option.map Jstar_ops.Httpd.port t.ops
let sessions_open t = with_registry t (fun () -> Hashtbl.length t.registry)
let connections t = Atomic.get t.conn_count
let flow_pauses t = Atomic.get t.flow_pauses

let request_shutdown t =
  Atomic.set t.shutting_down true;
  try ignore (Unix.write t.stop_w (Bytes.make 1 '.') 0 1)
  with Unix.Unix_error _ -> ()

let wait t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  let run_cleanup =
    Mutex.lock t.conn_m;
    let first = not t.stopped in
    t.stopped <- true;
    Mutex.unlock t.conn_m;
    first
  in
  if run_cleanup then begin
    (* Unblock every connection thread, then join them: their sessions
       must be detached before the drain below.  The shutdowns happen
       while holding conn_m — conn_main closes fds under the same lock,
       so every fd still in the list is live and is ours. *)
    Mutex.lock t.conn_m;
    let conns = t.conns in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    Mutex.unlock t.conn_m;
    List.iter (fun (_, th) -> Thread.join th) conns;
    (* Graceful drain: every session applies its queue, quiesces,
       checkpoints, closes. *)
    with_registry t (fun () ->
        let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.registry [] in
        List.iter (fun s -> stop_session_locked t ~event:"drain" s) all);
    (match t.ops with Some o -> Jstar_ops.Httpd.stop o | None -> ());
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.lsock; t.stop_r; t.stop_w ];
    Journal.info t.journal ~comp:"serve" ~event:"stopped" []
  end

let stop t =
  request_shutdown t;
  wait t
