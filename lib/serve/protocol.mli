(** The jstar-serve wire protocol: length-prefixed binary frames in the
    WAL's framing style, carrying tuples through the persist codec.

    {v [u8 kind][u32 len][payload: len bytes][u32 crc32] v}

    with the CRC covering kind, len and payload.  Kinds 1–15 are
    client→server, 16 and up server→client.  A connection opens with
    [Hello]/[Welcome] (protocol version + schema hash — a client built
    against a different program shape is refused before it can feed a
    single tuple), then addresses one session at a time by branch-style
    name ([Open "proj/main"]). *)

open Jstar_core

exception Frame_error of string
(** Torn, oversized or CRC-corrupt framing, or an undecodable payload.
    Once raised the stream has no trustworthy resync point: the server
    answers [Err] and closes. *)

val version : int

val max_payload : int
(** Frames advertising a longer payload are rejected before any
    allocation — the oversized-frame guard. *)

type client_frame =
  | Hello of { version : int; schema_hash : int }
  | Open of string  (** open-or-create the named session *)
  | Feed of Tuple.t list
  | Drain
  | Branch of string  (** fork the open session's state under a new name *)
  | Merge of string  (** replay the named session's divergence into this one *)
  | Digest
  | Checkpoint
  | Bye

type watermark = {
  w_steps : int;
  w_outputs : int;
  w_seq_lanes : int * int;  (** class-sequence digest lanes *)
  w_out_lanes : int * int;  (** output-stream digest lanes *)
}

type digest_info = {
  d_gamma : string;
  d_outputs : int;
  d_seq_lanes : int * int;
  d_out_lanes : int * int;
}

type server_frame =
  | Welcome of { version : int; schema_hash : int; max_payload : int }
  | Okay of string
  | Fed of { accepted : int; backlog : int }
  | Drained of { lines : string list; mark : watermark }
  | Digests of digest_info
  | Flow of { pause : bool; backlog : int }
      (** backpressure: the session's mailbox crossed (pause) or fell
          back under (resume) its feed quota *)
  | Err of { code : int; msg : string }

(** {2 Error codes} *)

val err_bad_frame : int
val err_no_session : int
val err_capacity : int
val err_shutting_down : int
val err_bad_name : int
val err_merge : int
val err_conflict : int
val err_handshake : int

(** {2 Encoding / decoding} *)

val write_client : Buffer.t -> client_frame -> unit
val write_server : Buffer.t -> server_frame -> unit

val read_frame_bytes : Bytes.t -> int ref -> [ `Frame of int * Bytes.t | `Incomplete ]
(** Pull one wire frame ((kind, payload)) out of a byte buffer,
    advancing the position past it.  [`Incomplete] means the bytes are
    a valid prefix — read more.  @raise Frame_error on oversize or CRC
    mismatch. *)

val decode_client :
  tables:Schema.t array -> int -> Bytes.t -> client_frame
(** @raise Frame_error on an unknown kind or undecodable payload. *)

val decode_server : int -> Bytes.t -> server_frame

(** {2 Blocking socket transport} *)

type reader

val reader : Unix.file_descr -> reader

val read_frame : reader -> (int * Bytes.t) option
(** One frame, blocking; [None] on clean EOF between frames.
    @raise Frame_error when the stream dies mid-frame. *)

val send_client : Unix.file_descr -> client_frame -> unit
val send_server : Unix.file_descr -> server_frame -> unit
