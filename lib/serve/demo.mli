(** The sensor stream program shared by the jstar-serve binary, bench,
    tests and README walkthrough — the same Tick/Reading/Alarm shape as
    [jstar-demo stream], so serve digests are directly comparable with
    standalone runs. *)

val sensor_program : unit -> Jstar_core.Program.frozen

val batch : Jstar_core.Program.frozen -> sensors:int -> t:int -> Jstar_core.Tuple.t list
(** One timestep of input: a [Tick t] plus one deterministic [Reading]
    per sensor (value = [(31t + 17s) mod 100], alarms at >= 90). *)
