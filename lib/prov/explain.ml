(* The Explain API: reconstruct the derivation tree of a tuple from the
   lineage table an engine run produced (Config.provenance), and render
   it — console tree, JSON, DOT.

   The lineage table maps each tuple to one canonical (deterministic)
   derivation record; [derive] follows parent links recursively under
   depth/width limits.  Because the canonical candidate is the
   minimum-step one, parent chains strictly descend toward the seed
   puts; a path set still guards against cycles (defence in depth —
   e.g. hand-fed lineage), marking any recurrence as a truncated
   leaf rather than looping. *)

open Jstar_core

type kind = Seed | Action | Rule of string

type node = {
  n_tuple : Tuple.t;
  n_kind : kind;
  n_step : int;
  n_domain : int;
  n_children : node list; (* derivation inputs, trigger first *)
  n_elided : int; (* children dropped by the width limit *)
  n_depth_cut : bool; (* children dropped by the depth limit *)
  n_cycle : bool; (* tuple already on the path to the root *)
}

let kind_of frozen rule =
  if rule = Prov_frame.seed_rule then Seed
  else if rule = Prov_frame.action_rule then Action
  else Rule (Program.rule_name frozen rule)

let derive ~lineage ~frozen ?(max_depth = 12) ?(max_width = 16) tuple =
  let on_path : unit Tuple.Tbl.t = Tuple.Tbl.create 64 in
  let leaf ?(cycle = false) ?(cut = false) r =
    {
      n_tuple = r.Lineage.r_tuple;
      n_kind = kind_of frozen r.Lineage.r_rule;
      n_step = r.Lineage.r_step;
      n_domain = r.Lineage.r_domain;
      n_children = [];
      n_elided = 0;
      n_depth_cut = cut;
      n_cycle = cycle;
    }
  in
  let rec build depth r =
    if Tuple.Tbl.mem on_path r.Lineage.r_tuple then leaf ~cycle:true r
    else if depth = 0 then leaf ~cut:(Array.length r.Lineage.r_parents > 0) r
    else begin
      Tuple.Tbl.add on_path r.Lineage.r_tuple ();
      let parents = r.Lineage.r_parents in
      let np = Array.length parents in
      let shown = min np max_width in
      let children = ref [] in
      for i = shown - 1 downto 0 do
        let child =
          match Lineage.find lineage parents.(i) with
          | Some pr -> build (depth - 1) pr
          | None ->
              (* No record: the parent predates provenance capture
                 (shouldn't happen in a full run) — show it as an
                 opaque seed. *)
              {
                n_tuple = parents.(i);
                n_kind = Seed;
                n_step = 0;
                n_domain = 0;
                n_children = [];
                n_elided = 0;
                n_depth_cut = false;
                n_cycle = false;
              }
        in
        children := child :: !children
      done;
      Tuple.Tbl.remove on_path r.Lineage.r_tuple;
      {
        n_tuple = r.Lineage.r_tuple;
        n_kind = kind_of frozen r.Lineage.r_rule;
        n_step = r.Lineage.r_step;
        n_domain = r.Lineage.r_domain;
        n_children = !children;
        n_elided = np - shown;
        n_depth_cut = false;
        n_cycle = false;
      }
    end
  in
  match Lineage.find lineage tuple with
  | None -> None
  | Some r -> Some (build max_depth r)

(* -- rendering ------------------------------------------------------- *)

let kind_label = function
  | Seed -> "seed"
  | Action -> "action"
  | Rule name -> name

let node_suffix n =
  String.concat ""
    [
      (if n.n_cycle then "  [cycle]" else "");
      (if n.n_depth_cut then "  [depth limit]" else "");
      (if n.n_elided > 0 then Printf.sprintf "  [+%d elided]" n.n_elided
       else "");
    ]

let pp ppf root =
  (* Unix tree drawing: the prefix accumulates one "│  "/"   " segment
     per ancestor level depending on whether that ancestor has later
     siblings. *)
  let rec go ~root prefix is_last n =
    let branch, cont =
      if root then ("", "")
      else if is_last then ("└─ ", "   ")
      else ("├─ ", "│  ")
    in
    Fmt.pf ppf "%s%s%a  <- %s @@step %d%s@." prefix branch Tuple.pp n.n_tuple
      (kind_label n.n_kind) n.n_step (node_suffix n);
    let rec children = function
      | [] -> ()
      | [ c ] -> go ~root:false (prefix ^ cont) true c
      | c :: tl ->
          go ~root:false (prefix ^ cont) false c;
          children tl
    in
    children n.n_children
  in
  go ~root:true "" true root

let to_string root = Fmt.str "%a" pp root

let rec to_json root =
  let open Jstar_obs.Json in
  Obj
    [
      ("tuple", Str (Tuple.show root.n_tuple));
      ("table", Str (Tuple.schema root.n_tuple).Schema.name);
      ("rule", Str (kind_label root.n_kind));
      ("step", Num (float_of_int root.n_step));
      ("domain", Num (float_of_int root.n_domain));
      ("elided", Num (float_of_int root.n_elided));
      ("depth_cut", Bool root.n_depth_cut);
      ("cycle", Bool root.n_cycle);
      ("inputs", Arr (List.map to_json root.n_children));
    ]

let json_string root = Jstar_obs.Json.to_string (to_json root)

(* DOT: nodes deduplicated by tuple (the same fact can feed several
   rule firings), edges input -> derived labelled with the rule. *)
let to_dot root =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph derivation {\n";
  Buffer.add_string b "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  let ids : int Tuple.Tbl.t = Tuple.Tbl.create 64 in
  let edges = Hashtbl.create 64 in
  let escape s =
    let eb = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string eb "\\\""
        | '\\' -> Buffer.add_string eb "\\\\"
        | '\n' -> Buffer.add_string eb "\\n"
        | c -> Buffer.add_char eb c)
      s;
    Buffer.contents eb
  in
  let node_id n =
    match Tuple.Tbl.find_opt ids n.n_tuple with
    | Some i -> i
    | None ->
        let i = Tuple.Tbl.length ids in
        Tuple.Tbl.add ids n.n_tuple i;
        let style =
          match n.n_kind with
          | Seed -> ", style=filled, fillcolor=lightgrey"
          | Action -> ", style=filled, fillcolor=lightyellow"
          | Rule _ -> ""
        in
        Buffer.add_string b
          (Printf.sprintf "  n%d [label=\"%s%s\"%s];\n" i
             (escape (Tuple.show n.n_tuple))
             (escape (node_suffix n))
             style);
        i
  in
  let rec walk n =
    let i = node_id n in
    List.iter
      (fun c ->
        let j = node_id c in
        if not (Hashtbl.mem edges (j, i)) then begin
          Hashtbl.add edges (j, i) ();
          Buffer.add_string b
            (Printf.sprintf "  n%d -> n%d [label=\"%s\", fontsize=9];\n" j i
               (escape (kind_label n.n_kind)))
        end;
        walk c)
      n.n_children
  in
  let _ = node_id root in
  walk root;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* -- whole-run checks (used by tests and CI) ------------------------- *)

(* Every merged record must reach seed leaves: well-formed (parents all
   tracked) and well-founded (no cycle, bounded depth).  Returns the
   first offending tuple's description, or [None] when complete. *)
let completeness_error ~lineage =
  let err = ref None in
  (let memo : bool Tuple.Tbl.t = Tuple.Tbl.create 1024 in
   let on_path : unit Tuple.Tbl.t = Tuple.Tbl.create 64 in
   (* true = bottoms out in seeds *)
   let rec ok tuple =
     match Tuple.Tbl.find_opt memo tuple with
     | Some v -> v
     | None ->
         if Tuple.Tbl.mem on_path tuple then false
         else
           let v =
             match Lineage.find lineage tuple with
             | None -> false
             | Some r ->
                 if r.Lineage.r_rule = Prov_frame.seed_rule then true
                 else begin
                   Tuple.Tbl.add on_path tuple ();
                   let v = Array.for_all ok r.Lineage.r_parents in
                   Tuple.Tbl.remove on_path tuple;
                   v
                 end
           in
           Tuple.Tbl.replace memo tuple v;
           v
   in
   try
     Lineage.iter lineage (fun r ->
         if not (ok r.Lineage.r_tuple) then begin
           err :=
             Some
               (Fmt.str "%a has no derivation bottoming out in seeds" Tuple.pp
                  r.Lineage.r_tuple);
           raise Exit
         end)
   with Exit -> ());
  !err
