(** Derivation-tree reconstruction over a run's lineage table
    ([Config.provenance]) — the [explain T(k)] query: why does this
    tuple exist?  Rendered as a console tree, JSON, or DOT. *)

open Jstar_core

type kind =
  | Seed  (** an initial / externally fed put *)
  | Action  (** put by an external-action handler *)
  | Rule of string  (** put by this rule *)

type node = {
  n_tuple : Tuple.t;
  n_kind : kind;  (** how the tuple was produced *)
  n_step : int;  (** engine step of the canonical producing put *)
  n_domain : int;  (** domain that performed it (schedule-dependent) *)
  n_children : node list;  (** derivation inputs, trigger first *)
  n_elided : int;  (** inputs dropped by [max_width] *)
  n_depth_cut : bool;  (** inputs dropped by [max_depth] *)
  n_cycle : bool;  (** tuple already occurs on the path to the root *)
}

val derive :
  lineage:Lineage.t ->
  frozen:Program.frozen ->
  ?max_depth:int ->
  ?max_width:int ->
  Tuple.t ->
  node option
(** The canonical derivation tree of a tuple ([None] if the run never
    put it).  Deterministic: the lineage merge picks a
    schedule-independent candidate per tuple, so the same program and
    input yield the same tree at any thread count.  [max_depth]
    defaults to 12, [max_width] (inputs shown per node) to 16. *)

val pp : Format.formatter -> node -> unit
(** Unix-[tree]-style rendering, one line per node:
    [tuple  <- rule @step N]. *)

val to_string : node -> string

val to_json : node -> Jstar_obs.Json.t
val json_string : node -> string

val to_dot : node -> string
(** Graphviz digraph, nodes deduplicated by tuple, edges
    input → derived labelled with the producing rule. *)

val completeness_error : lineage:Lineage.t -> string option
(** Whole-run lineage check: every tracked tuple must have a derivation
    bottoming out in seed puts.  [None] when complete, otherwise a
    description of the first offender (used by tests/CI). *)
