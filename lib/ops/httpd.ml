(* A dependency-free HTTP/1.1 endpoint over Unix sockets: just enough
   protocol for a Prometheus scraper, a health prober, a curl-driven
   operator and the serve control plane — GET and POST with
   Content-Length bodies, persistent connections by default.

   Architecture: one acceptor thread (threads.posix, not a domain — it
   sleeps in [select] and must not burn a core the engine could use)
   multiplexing the listening socket, a self-pipe, and every live
   persistent connection.  [stop] writes one byte to the pipe, so
   shutdown interrupts a blocked select cleanly, then joins the thread
   and closes everything.  Requests are served serially on the acceptor
   thread: every endpoint renders from in-memory state in microseconds,
   and serial handling means a scrape can never pile up threads behind
   a slow client.  Slow clients are bounded twice over: SO_RCVTIMEO
   caps each read, and a wall-clock deadline caps the whole request —
   a trickler that defeats the per-read timeout one byte at a time is
   cut off at [request_deadline_s] and cannot starve /metrics for the
   other connections.

   Keep-alive framing discipline: a request whose framing we cannot
   trust for the *next* request on the same connection (bad request
   line, unsupported transfer-encoding, malformed or oversized
   Content-Length, POST without a length) gets a 400/405 with
   [Connection: close] — never a guess at where the next request
   starts.

   The handlers run concurrently with the engine's driving thread by
   design — see the determinism caveats in DESIGN.md §12: everything
   they read is either immutable, monotone, or a timing lane that
   tolerates staleness. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  body : string;
}

type handler = request -> response

type conn = { fd : Unix.file_descr; mutable residual : string }

type t = {
  lsock : Unix.file_descr;
  port : int;
  stop_w : Unix.file_descr;
  thread : Thread.t;
}

let head_cap = 16384
let body_cap = 1 lsl 20
let max_conns = 32

(* Total wall-clock budget for reading one request (head + body).
   SO_RCVTIMEO bounds each *read* to 2 s, but a client trickling one
   byte per read would reset that clock forever and park the whole
   single-threaded ops plane behind it — the deadline bounds the sum. *)
let request_deadline_s = 10.0

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let url_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Exit
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | h, l ->
            Buffer.add_char b (Char.chr ((h * 16) + l));
            i := !i + 2
        | exception Exit -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (url_decode kv, "")
             | Some i ->
                 Some
                   ( url_decode (String.sub kv 0 i),
                     url_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* Parse a request line ("GET /path?query HTTP/1.x") into
   (method, path, decoded query, http_11). *)
let parse_request line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when (meth = "GET" || meth = "POST")
         && (version = "HTTP/1.0" || version = "HTTP/1.1") ->
      let path, query =
        match String.index_opt target '?' with
        | None -> (target, [])
        | Some i ->
            ( String.sub target 0 i,
              parse_query
                (String.sub target (i + 1) (String.length target - i - 1)) )
      in
      Some (meth, path, query, version = "HTTP/1.1")
  | _ -> None

(* Header lines after the request line, names lowercased. *)
let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some i ->
          Some
            ( String.lowercase_ascii (String.sub line 0 i),
              String.trim
                (String.sub line (i + 1) (String.length line - i - 1)) ))
    lines

let write_response ~keep_alive fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: %s\r\n\r\n"
      status (reason status) content_type (String.length body)
      (if keep_alive then "keep-alive" else "close")
  in
  let send s =
    let b = Bytes.of_string s in
    let off = ref 0 in
    while !off < Bytes.length b do
      let n = Unix.write fd b !off (Bytes.length b - !off) in
      if n = 0 then raise Exit;
      off := !off + n
    done
  in
  send head;
  send body

(* Read from [c] until [pred] says the buffered prefix is complete, or
   a cap / per-read timeout / [deadline] / EOF intervenes.  Returns the
   buffered string; the caller re-checks [pred] to distinguish success
   from truncation. *)
let read_until c ~deadline ~cap pred =
  let buf = Buffer.create 256 in
  Buffer.add_string buf c.residual;
  c.residual <- "";
  let chunk = Bytes.create 2048 in
  let rec go () =
    if
      pred (Buffer.contents buf)
      || Buffer.length buf >= cap
      || Unix.gettimeofday () > deadline
    then Buffer.contents buf
    else
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Buffer.contents buf
  in
  go ()

let find_terminator s =
  let n = String.length s in
  let rec find i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
    then Some (i + 4)
    else find (i + 1)
  in
  find 0

(* Serve exactly one request on [c].  [`Keep] leaves the connection
   (and any pipelined residual) live; [`Close] ends it. *)
let serve_one routes c =
  let bad ?(status = 400) msg =
    (try
       write_response ~keep_alive:false c.fd
         { status; content_type = "text/plain"; body = msg ^ "\n" }
     with Exit | Unix.Unix_error _ -> ());
    `Close
  in
  (* One budget for the whole request: the clock starts when select
     said bytes were ready, so an idle keep-alive connection is never
     charged — only a connection mid-request. *)
  let deadline = Unix.gettimeofday () +. request_deadline_s in
  let head =
    read_until c ~deadline ~cap:head_cap (fun s -> find_terminator s <> None)
  in
  match find_terminator head with
  | None ->
      if head = "" then `Close (* clean EOF between requests *)
      else bad "malformed request head"
  | Some head_end -> (
      c.residual <- String.sub head head_end (String.length head - head_end);
      let lines =
        String.split_on_char '\n' (String.sub head 0 head_end)
        |> List.map (fun l ->
               if l <> "" && l.[String.length l - 1] = '\r' then
                 String.sub l 0 (String.length l - 1)
               else l)
      in
      match lines with
      | [] -> bad "malformed request head"
      | request_line :: header_lines -> (
          match parse_request request_line with
          | None -> (
              (* distinguish "unsupported method" from garbage *)
              match String.split_on_char ' ' request_line with
              | [ _; _; v ] when v = "HTTP/1.0" || v = "HTTP/1.1" ->
                  bad ~status:405 "GET or POST only"
              | _ -> bad "malformed request line")
          | Some (meth, path, query, http_11) -> (
              let headers = parse_headers header_lines in
              if List.mem_assoc "transfer-encoding" headers then
                bad "transfer-encoding not supported"
              else
                let content_length =
                  match List.assoc_opt "content-length" headers with
                  | None -> Ok 0
                  | Some v -> (
                      match int_of_string_opt v with
                      | Some n when n >= 0 && n <= body_cap -> Ok n
                      | _ -> Error ())
                in
                match content_length with
                | Error () -> bad "malformed Content-Length"
                | Ok 0 when meth = "POST"
                            && not (List.mem_assoc "content-length" headers)
                  ->
                    (* Without a length we cannot find the next request's
                       start on this connection. *)
                    bad "POST requires Content-Length"
                | Ok clen -> (
                    let body =
                      read_until c ~deadline ~cap:clen (fun s ->
                          String.length s >= clen)
                    in
                    if String.length body < clen then
                      bad "truncated request body"
                    else begin
                      if String.length body > clen then
                        c.residual <-
                          String.sub body clen (String.length body - clen);
                      let body = String.sub body 0 clen in
                      let keep_alive =
                        match List.assoc_opt "connection" headers with
                        | Some v ->
                            String.lowercase_ascii v = "keep-alive"
                            || (http_11 && String.lowercase_ascii v <> "close")
                        | None -> http_11
                      in
                      let resp =
                        match List.assoc_opt path routes with
                        | None ->
                            {
                              status = 404;
                              content_type = "application/json";
                              body = "{\"error\": \"no such endpoint\"}\n";
                            }
                        | Some h -> (
                            try h { meth; path; query; body }
                            with e ->
                              {
                                status = 500;
                                content_type = "text/plain";
                                body =
                                  "handler error: " ^ Printexc.to_string e
                                  ^ "\n";
                              })
                      in
                      match write_response ~keep_alive c.fd resp with
                      | () -> if keep_alive then `Keep else `Close
                      | exception (Exit | Unix.Unix_error _) -> `Close
                    end))))

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let acceptor lsock stop_r routes () =
  let conns = ref [] in
  let running = ref true in
  while !running do
    let watched = lsock :: stop_r :: List.map (fun c -> c.fd) !conns in
    match Unix.select watched [] [] (-1.0) with
    | readable, _, _ ->
        if List.mem stop_r readable then running := false
        else begin
          (* Serve pending requests on live connections first, then
             accept.  Pipelined requests may land in [residual] in one
             read — with nothing left in the socket buffer, select
             would never wake for them — so keep serving while the
             residual holds a complete head. *)
          let rec serve c =
            match serve_one routes c with
            | `Keep -> find_terminator c.residual = None || serve c
            | `Close ->
                close_conn c;
                false
            | exception _ ->
                close_conn c;
                false
          in
          conns :=
            List.filter
              (fun c -> (not (List.mem c.fd readable)) || serve c)
              !conns;
          if List.mem lsock readable then begin
            match Unix.accept lsock with
            | fd, _ ->
                Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
                Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
                (* Bound the fd set: shed the oldest idle connection
                   rather than refusing the new one. *)
                (if List.length !conns >= max_conns then
                   match List.rev !conns with
                   | oldest :: _ ->
                       close_conn oldest;
                       conns := List.filter (fun c -> c != oldest) !conns
                   | [] -> ());
                conns := { fd; residual = "" } :: !conns
            | exception Unix.Unix_error _ -> ()
          end
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter close_conn !conns

let start ?(addr = "127.0.0.1") ~port routes =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen lsock 16
   with e ->
     (try Unix.close lsock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  let thread = Thread.create (acceptor lsock stop_r routes) () in
  { lsock; port; stop_w; thread }

let port t = t.port

let stop t =
  (try ignore (Unix.write t.stop_w (Bytes.make 1 '.') 0 1)
   with Unix.Unix_error _ -> ());
  Thread.join t.thread;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.lsock; t.stop_w ]
