(* A dependency-free HTTP/1.0 endpoint over Unix sockets: just enough
   protocol for a Prometheus scraper, a health prober and a curl-driven
   operator — GET only, one request per connection, Connection: close.

   Architecture: one acceptor thread (threads.posix, not a domain — it
   sleeps in [select] and must not burn a core the engine could use)
   multiplexing the listening socket against a self-pipe.  [stop] writes
   one byte to the pipe, so shutdown interrupts a blocked accept
   cleanly, then joins the thread and closes both ends.  Requests are
   served serially on the acceptor thread: every endpoint renders from
   in-memory state in microseconds, and serial handling means a scrape
   can never pile up threads behind a slow client (per-socket timeouts
   bound even that).

   The handlers run concurrently with the engine's driving thread by
   design — see the determinism caveats in DESIGN.md §12: everything
   they read is either immutable, monotone, or a timing lane that
   tolerates staleness. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

type handler = (string * string) list -> response

type t = {
  lsock : Unix.file_descr;
  port : int;
  stop_w : Unix.file_descr;
  thread : Thread.t;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let url_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Exit
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | h, l ->
            Buffer.add_char b (Char.chr ((h * 16) + l));
            i := !i + 2
        | exception Exit -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (url_decode kv, "")
             | Some i ->
                 Some
                   ( url_decode (String.sub kv 0 i),
                     url_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* Parse a request line ("GET /path?query HTTP/1.x"); anything but GET
   maps to [None]. *)
let parse_request line =
  match String.split_on_char ' ' line with
  | [ "GET"; target; _version ] ->
      let path, query =
        match String.index_opt target '?' with
        | None -> (target, [])
        | Some i ->
            ( String.sub target 0 i,
              parse_query
                (String.sub target (i + 1) (String.length target - i - 1)) )
      in
      Some (path, query)
  | _ -> None

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status (reason status) content_type (String.length body)
  in
  let send s =
    let b = Bytes.of_string s in
    let off = ref 0 in
    while !off < Bytes.length b do
      let n = Unix.write fd b !off (Bytes.length b - !off) in
      if n = 0 then raise Exit;
      off := !off + n
    done
  in
  send head;
  send body

(* Read until the end of the request head (blank line) or a size cap —
   the request line is all we use, but consuming the head keeps clients
   from seeing a reset before they finish sending. *)
let read_head fd =
  let cap = 8192 in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf >= cap then Buffer.contents buf
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          let have_terminator =
            let rec find i =
              if i + 3 >= String.length s then false
              else if
                s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                && s.[i + 3] = '\n'
              then true
              else find (i + 1)
            in
            find 0
          in
          if have_terminator then s else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Buffer.contents buf
  in
  go ()

let first_line s =
  match String.index_opt s '\r' with
  | Some i -> String.sub s 0 i
  | None -> ( match String.index_opt s '\n' with
              | Some i -> String.sub s 0 i
              | None -> s)

let handle_conn routes fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
      let head = read_head fd in
      let resp =
        match parse_request (first_line head) with
        | None ->
            { status = 405; content_type = "text/plain"; body = "GET only\n" }
        | Some (path, query) -> (
            match List.assoc_opt path routes with
            | None ->
                {
                  status = 404;
                  content_type = "application/json";
                  body = "{\"error\": \"no such endpoint\"}\n";
                }
            | Some h -> (
                try h query
                with e ->
                  {
                    status = 500;
                    content_type = "text/plain";
                    body = "handler error: " ^ Printexc.to_string e ^ "\n";
                  }))
      in
      try write_response fd resp with Exit | Unix.Unix_error _ -> ())

let acceptor lsock stop_r routes () =
  let running = ref true in
  while !running do
    match Unix.select [ lsock; stop_r ] [] [] (-1.0) with
    | readable, _, _ ->
        if List.mem stop_r readable then running := false
        else if List.mem lsock readable then begin
          match Unix.accept lsock with
          | fd, _ -> handle_conn routes fd
          | exception Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(addr = "127.0.0.1") ~port routes =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen lsock 16
   with e ->
     (try Unix.close lsock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  let thread = Thread.create (acceptor lsock stop_r routes) () in
  { lsock; port; stop_w; thread }

let port t = t.port

let stop t =
  (try ignore (Unix.write t.stop_w (Bytes.make 1 '.') 0 1)
   with Unix.Unix_error _ -> ());
  Thread.join t.thread;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.lsock; t.stop_w ]
