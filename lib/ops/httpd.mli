(** A dependency-free HTTP/1.0 server over Unix sockets — the transport
    under the ops endpoints ({!Ops}).  GET only, one request per
    connection, [Connection: close]: exactly what a Prometheus scraper,
    a health prober or [curl] needs, and nothing more.

    Requests are served serially on a single acceptor thread
    (threads.posix, so it sleeps in [select] rather than occupying a
    domain the engine could use); handlers therefore run concurrently
    with the engine's driving thread and must only read state that
    tolerates staleness. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain] response, status 200 by default. *)

val json : ?status:int -> string -> response
(** [application/json] response, status 200 by default. *)

type handler = (string * string) list -> response
(** Receives the decoded query parameters.  A raised exception becomes
    a 500 with the exception text. *)

type t

val start : ?addr:string -> port:int -> (string * handler) list -> t
(** Bind [addr] (default loopback [127.0.0.1]) on [port] ([0] asks the
    OS for an ephemeral port — read it back with {!port}) and serve the
    routes, keyed by exact path.  Unknown paths get a 404, non-GET
    methods a 405.  @raise Unix.Unix_error when the bind fails. *)

val port : t -> int
(** The bound port (meaningful with [~port:0]). *)

val stop : t -> unit
(** Wake the acceptor via its self-pipe, join it, close the sockets.
    Idempotence is not required of callers — call exactly once. *)

(** {1 Parsing internals}

    Exposed for direct unit testing. *)

val url_decode : string -> string
(** Percent- and plus-decoding; malformed escapes pass through
    verbatim. *)

val parse_request : string -> (string * (string * string) list) option
(** Parse a request line into (path, decoded query params); [None] for
    anything that is not a well-formed GET. *)
