(** A dependency-free HTTP/1.1 server over Unix sockets — the transport
    under the ops endpoints ({!Ops}) and the serve control plane.  GET
    and POST with [Content-Length] bodies, persistent connections by
    default: repeated [/metrics] scrapes and control requests reuse one
    TCP connection instead of paying setup per request.

    Requests are served serially on a single acceptor thread
    (threads.posix, so it sleeps in [select] rather than occupying a
    domain the engine could use) that multiplexes the listening socket
    against every live persistent connection; handlers therefore run
    concurrently with the engine's driving thread and must only read
    state that tolerates staleness.

    Framing is strict because connections are reused: a request whose
    byte boundaries cannot be trusted (malformed request line or
    [Content-Length], unsupported [Transfer-Encoding], POST without a
    length) is answered with a 400/405 carrying [Connection: close] —
    the connection is never left in an ambiguous position. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain] response, status 200 by default. *)

val json : ?status:int -> string -> response
(** [application/json] response, status 200 by default. *)

type request = {
  meth : string;  (** ["GET"] or ["POST"] *)
  path : string;
  query : (string * string) list;  (** decoded query parameters *)
  body : string;  (** request body ([""] without a [Content-Length]) *)
}

type handler = request -> response
(** A raised exception becomes a 500 with the exception text. *)

type t

val start : ?addr:string -> port:int -> (string * handler) list -> t
(** Bind [addr] (default loopback [127.0.0.1]) on [port] ([0] asks the
    OS for an ephemeral port — read it back with {!port}) and serve the
    routes, keyed by exact path.  Unknown paths get a 404, methods
    other than GET/POST a 405.  @raise Unix.Unix_error when the bind
    fails. *)

val port : t -> int
(** The bound port (meaningful with [~port:0]). *)

val stop : t -> unit
(** Wake the acceptor via its self-pipe, join it, close the listening
    socket and every live persistent connection.  Idempotence is not
    required of callers — call exactly once. *)

(** {1 Parsing internals}

    Exposed for direct unit testing. *)

val url_decode : string -> string
(** Percent- and plus-decoding; malformed escapes pass through
    verbatim. *)

val parse_request :
  string -> (string * string * (string * string) list * bool) option
(** Parse a request line into (method, path, decoded query params,
    is-HTTP/1.1); [None] for anything that is not a well-formed
    GET/POST. *)
