(* The introspection endpoints: glue between a running engine session
   and the transport in Httpd.  Everything here reads session state
   through the monitoring-lane accessors (the Engine.session_ family),
   so a scrape observes a consistent-enough snapshot without touching
   the deterministic lanes. *)

open Jstar_core
module Json = Jstar_obs.Json

type t = { server : Httpd.t }

let prom_content_type = "text/plain; version=0.0.4"

let err_json status msg =
  Httpd.json ~status (Json.to_string (Json.Obj [ ("error", Json.Str msg) ]) ^ "\n")

(* -- /metrics ---------------------------------------------------------- *)

let metrics_handler session alerts _q =
  let base = Jstar_obs.Prom.render (Engine.session_metrics session) in
  let body =
    match alerts with
    | None -> base
    | Some a -> base ^ Jstar_obs.Alerts.prom_lines a
  in
  { Httpd.status = 200; content_type = prom_content_type; body }

(* -- /health ----------------------------------------------------------- *)

let health_body session extra ~status ~stuck _q =
  let st = Engine.session_state ~with_outputs:false session in
  let pending = Engine.session_pending session in
  let delta = Engine.session_delta session in
  let gamma =
    List.map
      (fun schema ->
        ( schema.Schema.name,
          (Engine.session_gamma session schema).Store.size () ))
      (Engine.stored_tables session)
  in
  let top_rules, utilization =
    match Engine.session_profiler session with
    | None -> (None, None)
    | Some p ->
        ( Some
            (List.map
               (fun r ->
                 Jstar_obs.Profiler.
                   (r.pr_name, r.pr_ema_self_s, r.pr_fires))
               (Jstar_obs.Profiler.top_rules ~k:5 p)),
          Jstar_obs.Profiler.utilization p )
  in
  let shard_extras =
    match Engine.session_shards session with
    | None -> []
    | Some s ->
        let ints a =
          Json.Arr
            (Array.to_list (Array.map (fun v -> Json.Num (float_of_int v)) a))
        in
        [
          ( "shards",
            Json.Obj
              [
                ("count", Json.Num (float_of_int s.Engine.sh_count));
                ("occupancy", ints s.Engine.sh_occupancy);
                ("mailbox_backlog", ints s.Engine.sh_backlog);
                ( "msgs_posted",
                  Json.Num (float_of_int s.Engine.sh_msgs_posted) );
                ("msgs_cross", Json.Num (float_of_int s.Engine.sh_msgs_cross));
                ( "tuples_shipped",
                  Json.Num (float_of_int s.Engine.sh_tuples_shipped) );
                ( "tuples_cross",
                  Json.Num (float_of_int s.Engine.sh_tuples_cross) );
              ] );
        ]
  in
  let stuck_extras =
    if stuck = [] then []
    else
      [
        ( "stuck_shards",
          Json.Arr (List.map (fun k -> Json.Num (float_of_int k)) stuck) );
      ]
  in
  Httpd.json
    (Jstar_obs.Health.render ~status ~step:st.Engine.ss_step_no
       ~steps:st.Engine.ss_steps ~processed:st.Engine.ss_processed
       ~outputs:st.Engine.ss_outputs_count ~pending ~delta ~gamma ?top_rules
       ?utilization
       ~extra:(stuck_extras @ shard_extras @ extra ())
       ()
    ^ "\n")

(* Backlog degradation needs two consecutive scrapes with no step
   progress (see Health.shard_status); the handler closure owns the
   previous (step, backlogs) reading.  Scrapes are serialized by
   Httpd's single server thread, so a plain ref suffices. *)
let health_handler session extra =
  let prev = ref None in
  fun q ->
    let status, stuck =
      match Engine.session_shards session with
      | None -> ("ok", [])
      | Some s ->
          let st = Engine.session_state ~with_outputs:false session in
          let step = st.Engine.ss_step_no in
          let r =
            Jstar_obs.Health.shard_status ~prev:!prev ~step
              ~backlogs:s.Engine.sh_backlog
          in
          prev := Some (step, s.Engine.sh_backlog);
          r
    in
    health_body session extra ~status ~stuck q

(* -- /profile ---------------------------------------------------------- *)

let profile_handler session q =
  match Engine.session_profiler session with
  | None ->
      err_json 404
        "profiler not enabled for this session (run with --profile or a \
         parallel config)"
  | Some p ->
      let k =
        match List.assoc_opt "k" q with
        | Some s -> ( match int_of_string_opt s with
                      | Some k when k > 0 -> min k 1000
                      | _ -> 10)
        | None -> 10
      in
      Httpd.json (Json.to_string (Jstar_obs.Profiler.to_json ~k p) ^ "\n")

(* -- /explain ---------------------------------------------------------- *)

(* ?table=T&tuple=v1,v2&depth=..&width=..  The tuple is a leading-field
   prefix parsed at the table's column types — the same contract as the
   CLI's [--explain T:v1,v2]. *)

exception Bad_request of string

let parse_prefix schema raw =
  if List.length raw > Schema.arity schema then
    raise
      (Bad_request
         (Printf.sprintf "%d values but %s has arity %d" (List.length raw)
            schema.Schema.name (Schema.arity schema)));
  try
    List.mapi
      (fun j s ->
        match Schema.field_ty schema j with
        | Value.TInt -> Value.Int (int_of_string (String.trim s))
        | Value.TFloat -> Value.Float (float_of_string (String.trim s))
        | Value.TBool -> Value.Bool (bool_of_string (String.trim s))
        | Value.TStr -> Value.Str s)
      raw
    |> Array.of_list
  with Failure _ ->
    raise (Bad_request "tuple value does not parse at its column type")

let int_param q key ~default ~lo ~hi =
  match List.assoc_opt key q with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= lo && v <= hi -> v
      | _ ->
          raise
            (Bad_request
               (Printf.sprintf "%s must be an integer in [%d, %d]" key lo hi)))

let max_trees = 5

let explain_handler session q =
  match Engine.session_lineage session with
  | None ->
      err_json 404
        "provenance not enabled for this session (run with --provenance)"
  | Some lineage -> (
      try
        let frozen = Engine.session_frozen session in
        let tname =
          match List.assoc_opt "table" q with
          | Some t when t <> "" -> t
          | _ -> raise (Bad_request "missing ?table= parameter")
        in
        let schema =
          match Program.find_table frozen.Program.program tname with
          | s -> s
          | exception Schema.Schema_error msg -> raise (Bad_request msg)
        in
        let raw =
          match List.assoc_opt "tuple" q with
          | None | Some "" -> []
          | Some s -> String.split_on_char ',' s
        in
        let prefix = parse_prefix schema raw in
        let depth = int_param q "depth" ~default:12 ~lo:1 ~hi:64 in
        let width = int_param q "width" ~default:16 ~lo:1 ~hi:256 in
        let matches = ref [] in
        (Engine.session_gamma session schema).Store.iter_prefix prefix
          (fun t -> matches := t :: !matches);
        let matches = List.sort Tuple.compare !matches in
        let total = List.length matches in
        let shown =
          List.filteri (fun i _ -> i < max_trees) matches
        in
        let trees =
          List.map
            (fun tuple ->
              match
                Jstar_prov.Explain.derive ~lineage ~frozen ~max_depth:depth
                  ~max_width:width tuple
              with
              | Some node -> Jstar_prov.Explain.to_json node
              | None ->
                  Json.Obj
                    [
                      ("tuple", Json.Str (Format.asprintf "%a" Tuple.pp tuple));
                      ("error", Json.Str "stored but not tracked by lineage");
                    ])
            shown
        in
        Httpd.json
          (Json.to_string
             (Json.Obj
                [
                  ("table", Json.Str tname);
                  ("matches", Json.Num (float_of_int total));
                  ("shown", Json.Num (float_of_int (List.length shown)));
                  ("trees", Json.Arr trees);
                ])
          ^ "\n")
      with Bad_request msg -> err_json 400 msg)

(* -- the flight-recorder glue ------------------------------------------ *)

(* Build a recorder over a session with the standard engine sections.
   The obs-layer Recorder is engine-agnostic; this is where the engine-
   shaped thunks get registered: session scalars, per-shard occupancy
   and backlog, profiler top-k, and — when a causality violation has
   been captured — explain trees for the tuples the failure named.
   Callers add further sections (e.g. WAL generation/lag) with
   [Jstar_obs.Recorder.add_section]. *)
let make_recorder ?journal_tail ~dir session =
  let r =
    Jstar_obs.Recorder.create ?journal_tail
      ~journal:(Engine.session_journal session)
      ~metrics:(Engine.session_metrics session) ~dir ()
  in
  let num i = Json.Num (float_of_int i) in
  Jstar_obs.Recorder.add_section r "session" (fun () ->
      let st = Engine.session_state ~with_outputs:false session in
      let dsize, ddepth = Engine.session_delta session in
      Json.Obj
        [
          ("step", num st.Engine.ss_step_no);
          ("steps", num st.Engine.ss_steps);
          ("processed", num st.Engine.ss_processed);
          ("outputs", num st.Engine.ss_outputs_count);
          ("pending", num (Engine.session_pending session));
          ("delta_size", num dsize);
          ("delta_depth", num ddepth);
        ]);
  Jstar_obs.Recorder.add_section r "shards" (fun () ->
      match Engine.session_shards session with
      | None -> Json.Null
      | Some s ->
          let ints a =
            Json.Arr (Array.to_list (Array.map (fun v -> num v) a))
          in
          Json.Obj
            [
              ("count", num s.Engine.sh_count);
              ("occupancy", ints s.Engine.sh_occupancy);
              ("mailbox_backlog", ints s.Engine.sh_backlog);
              ("msgs_posted", num s.Engine.sh_msgs_posted);
              ("msgs_cross", num s.Engine.sh_msgs_cross);
              ("tuples_shipped", num s.Engine.sh_tuples_shipped);
              ("tuples_cross", num s.Engine.sh_tuples_cross);
            ]);
  Jstar_obs.Recorder.add_section r "profiler" (fun () ->
      match Engine.session_profiler session with
      | None -> Json.Null
      | Some p -> Jstar_obs.Profiler.to_json ~k:10 p);
  Jstar_obs.Recorder.add_section r "violation" (fun () ->
      match Engine.session_violation session with
      | None -> Json.Null
      | Some (msg, tuples) ->
          let explain tuple =
            let pp = Json.Str (Format.asprintf "%a" Tuple.pp tuple) in
            match Engine.session_lineage session with
            | None -> Json.Obj [ ("tuple", pp) ]
            | Some lineage -> (
                let frozen = Engine.session_frozen session in
                match
                  Jstar_prov.Explain.derive ~lineage ~frozen ~max_depth:12
                    ~max_width:16 tuple
                with
                | Some node ->
                    Json.Obj
                      [
                        ("tuple", pp);
                        ("derivation", Jstar_prov.Explain.to_json node);
                      ]
                | None -> Json.Obj [ ("tuple", pp) ])
          in
          Json.Obj
            [
              ("message", Json.Str msg);
              ("tuples", Json.Arr (List.map explain tuples));
            ]);
  r

(* -- /alerts ----------------------------------------------------------- *)

let alerts_handler alerts _q =
  match alerts with
  | None ->
      err_json 404 "alerting not enabled for this session (run with --alert)"
  | Some a -> Httpd.json (Json.to_string (Jstar_obs.Alerts.to_json a) ^ "\n")

(* -- /dump ------------------------------------------------------------- *)

let dump_handler recorder _q =
  match recorder with
  | None ->
      err_json 404
        "flight recorder not enabled for this session (run with --flight-dir)"
  | Some r -> (
      match Jstar_obs.Recorder.dump r ~reason:"ops-dump" with
      | path ->
          Httpd.json
            (Json.to_string
               (Json.Obj
                  [
                    ("path", Json.Str path);
                    ( "dumps",
                      Json.Num (float_of_int (Jstar_obs.Recorder.dumps r)) );
                  ])
            ^ "\n")
      | exception exn -> err_json 500 (Printexc.to_string exn))

(* -- assembly ---------------------------------------------------------- *)

let index_body =
  "jstar ops endpoints:\n\
  \  /metrics                  Prometheus text format (incl. ALERTS)\n\
  \  /health                   JSON heartbeat (degraded on stuck shards)\n\
  \  /profile?k=N              top-K rules by decayed self time\n\
  \  /explain?table=T&tuple=v1,v2[&depth=D&width=W]\n\
  \                            derivation trees for matching tuples\n\
  \  /alerts                   threshold-alert statuses\n\
  \  /dump                     write a flight-recorder bundle\n"

let attach ?addr ~port ?(extra_health = fun () -> []) ?alerts ?recorder
    session =
  (* The ops handlers consume only the decoded query parameters; adapt
     them to the transport's request record. *)
  let q h (req : Httpd.request) = h req.Httpd.query in
  let routes =
    [
      ("/", fun _ -> Httpd.text index_body);
      ("/metrics", q (metrics_handler session alerts));
      ("/health", q (health_handler session extra_health));
      ("/profile", q (profile_handler session));
      ("/explain", q (explain_handler session));
      ("/alerts", q (alerts_handler alerts));
      ("/dump", q (dump_handler recorder));
    ]
  in
  { server = Httpd.start ?addr ~port routes }

let port t = Httpd.port t.server
let stop t = Httpd.stop t.server
