(** The runtime introspection server: HTTP endpoints over a live engine
    session, served from a single background thread.

    {v /                              endpoint index
       /metrics                       Prometheus text format 0.0.4
                                      (+ ALERTS samples when alerting)
       /health                        JSON heartbeat; [status] flips to
                                      "degraded" on stuck shard backlog
       /profile?k=N                   continuous-profiler top-K table
       /explain?table=T&tuple=v1,v2   derivation trees (provenance)
       /alerts                        threshold-alert statuses
       /dump                          write a flight-recorder bundle v}

    Handlers read only the engine's monitoring-lane accessors
    ([Engine.session_*]), which are safe to call concurrently with the
    driving thread; responses may be one step stale, never torn in a
    way that matters.  Attaching a server does not perturb the
    deterministic lanes: digests stay bit-identical with or without a
    scraper attached. *)

type t

val make_recorder :
  ?journal_tail:int ->
  dir:string ->
  Jstar_core.Engine.session ->
  Jstar_obs.Recorder.t
(** A flight recorder over [session] with the standard engine sections
    registered: session scalars, per-shard occupancy/backlog, profiler
    top-k, and explain trees for the tuples named by a captured
    causality violation.  Add subsystem sections (WAL lag…) with
    [Jstar_obs.Recorder.add_section]; triggers (signal, exception
    wrap, [/dump]) are the caller's. *)

val attach :
  ?addr:string ->
  port:int ->
  ?extra_health:(unit -> (string * Jstar_obs.Json.t) list) ->
  ?alerts:Jstar_obs.Alerts.t ->
  ?recorder:Jstar_obs.Recorder.t ->
  Jstar_core.Engine.session ->
  t
(** Start serving [session] on [addr] (default loopback) and [port]
    ([0] = ephemeral; read back with {!port}).  [extra_health] is
    re-evaluated per scrape and merged into the heartbeat — the hook
    by which a durable session reports WAL/fsync lag without this
    library depending on jstar.persist.  [alerts] enables [/alerts]
    and appends [ALERTS] samples to [/metrics]; [recorder] enables
    [/dump].
    @raise Unix.Unix_error when the bind fails. *)

val port : t -> int
val stop : t -> unit
(** Graceful shutdown: wake and join the acceptor, close the socket.
    Call once, after the last drain. *)
