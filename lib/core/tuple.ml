(* Immutable tuples: one row of a relation.

   Construction mirrors the three forms in §3 of the paper:
   - by position:        [make schema [| Int 0; Int 10; ... |]]
   - by name + defaults: [build schema ["x", Int 10; "dx", Int 150]]
   - builder copy:       [with_fields t ["x", Int 20]]                 *)

(* [hcache] memoises the structural hash ([no_hash] = not yet computed).
   Writes are a benign race: every domain computes the same word-sized
   value, so concurrent lazy initialisation cannot tear or diverge. *)
type t = { schema : Schema.t; fields : Value.t array; mutable hcache : int }

let no_hash = min_int

exception Tuple_error of string

let check_types schema fields =
  Array.iteri
    (fun i v ->
      let want = Schema.field_ty schema i in
      let got = Value.type_of v in
      (* Int widens to Float implicitly, as OCaml ints do in to_float. *)
      let ok = got = want || (want = Value.TFloat && got = Value.TInt) in
      if not ok then
        raise
          (Tuple_error
             (Fmt.str "%s.%s: expected %s, got %s" schema.Schema.name
                schema.Schema.columns.(i).Schema.col_name
                (Value.ty_name want) (Value.ty_name got))))
    fields

let make schema fields =
  if Array.length fields <> Schema.arity schema then
    raise
      (Tuple_error
         (Fmt.str "%s: expected %d fields, got %d" schema.Schema.name
            (Schema.arity schema) (Array.length fields)));
  check_types schema fields;
  { schema; fields; hcache = no_hash }

let build schema assignments =
  let fields =
    Array.map
      (fun c -> Value.default_of_ty c.Schema.col_ty)
      schema.Schema.columns
  in
  List.iter
    (fun (name, v) -> fields.(Schema.field_pos schema name) <- v)
    assignments;
  make schema fields

let with_fields t assignments =
  let fields = Array.copy t.fields in
  List.iter
    (fun (name, v) -> fields.(Schema.field_pos t.schema name) <- v)
    assignments;
  make t.schema fields

let schema t = t.schema
let fields t = t.fields
let get t i = t.fields.(i)
let get_name t name = t.fields.(Schema.field_pos t.schema name)
let int t name = Value.to_int (get_name t name)
let float t name = Value.to_float (get_name t name)
let str t name = Value.to_string (get_name t name)
let bool t name = Value.to_bool (get_name t name)
let int_at t i = Value.to_int t.fields.(i)
let float_at t i = Value.to_float t.fields.(i)

let key t = Array.sub t.fields 0 t.schema.Schema.key_arity

let equal a b =
  a == b
  || (a.schema.Schema.id = b.schema.Schema.id
     && Value.equal_arrays a.fields b.fields)

(* Total order within and across tables: by table id, then fields
   lexicographically.  This is the order of the default tree-set Gamma
   store, which also makes leading-prefix queries range queries. *)
let compare a b =
  let c = Stdlib.compare a.schema.Schema.id b.schema.Schema.id in
  if c <> 0 then c else Value.compare_arrays a.fields b.fields

(* Same order as [compare], through the schema-compiled monomorphic
   comparator — the hot-path variant behind [Config.specialized_compare]. *)
let fast_compare a b =
  if a == b then 0
  else
    let c = Int.compare a.schema.Schema.id b.schema.Schema.id in
    if c <> 0 then c else Schema.fields_compare a.schema a.fields b.fields

let compute_hash t =
  let h = (t.schema.Schema.id * 0x01000193) + Value.hash_array t.fields in
  (* [Value.hash_array] is a linear fold with no avalanche; its low bits
     barely move for small-int fields, and [Hashtbl.Make] masks with the
     (power-of-two) table size.  Finalize with an xorshift-multiply mix
     so every input bit reaches the low bits. *)
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  if h = no_hash then h + 1 else h

let hash t =
  let h = t.hcache in
  if h <> no_hash then h
  else
    let h = compute_hash t in
    t.hcache <- h;
    h

(* Dedup tables keyed directly by tuples: probes reuse the cached hash
   instead of re-walking the boxed field array. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* The set-semantics hot path is "add unless present", which a generic
   hashtable spells as mem + replace — two bucket walks and three hash
   calls per probe.  [Dset] is a chained hash set doing it in ONE probe:
   hash once (usually a cached-field read), walk the bucket once, and
   skip the field comparison entirely whenever the stored tuple's cached
   hash differs from the probe's. *)
module Dset = struct
  type tuple = t

  type t = {
    mutable buckets : tuple list array; (* chains; [] = empty *)
    mutable size : int;
  }

  let create n =
    let cap = max 8 n in
    (* round up to a power of two so masking replaces mod *)
    let cap =
      let c = ref 8 in
      while !c < cap do
        c := !c * 2
      done;
      !c
    in
    { buckets = Array.make cap []; size = 0 }

  let resize s =
    let old = s.buckets in
    let ncap = 2 * Array.length old in
    let fresh = Array.make ncap [] in
    Array.iter
      (List.iter (fun t ->
           let i = t.hcache land (ncap - 1) in
           fresh.(i) <- t :: fresh.(i)))
      old;
    s.buckets <- fresh

  let add_if_absent s t =
    let h = hash t in
    let mask = Array.length s.buckets - 1 in
    let i = h land mask in
    let rec found = function
      | [] -> false
      | x :: rest -> x == t || (x.hcache = h && equal x t) || found rest
    in
    if found s.buckets.(i) then false
    else begin
      s.buckets.(i) <- t :: s.buckets.(i);
      s.size <- s.size + 1;
      if s.size > 2 * mask then resize s;
      true
    end

  let mem s t =
    let h = hash t in
    let rec found = function
      | [] -> false
      | x :: rest -> x == t || (x.hcache = h && equal x t) || found rest
    in
    found s.buckets.(h land (Array.length s.buckets - 1))

  let length s = s.size

  let fold f s acc =
    Array.fold_left (fun acc chain -> List.fold_left f acc chain) acc s.buckets

  let clear s =
    Array.fill s.buckets 0 (Array.length s.buckets) [];
    s.size <- 0
end

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.schema.Schema.name
    (Fmt.array ~sep:(Fmt.any ", ") Value.pp)
    t.fields

let show t = Fmt.str "%a" pp t

(* Does the tuple start with the given prefix of field values?  Used by
   leading-field queries such as [get PvWatts(year, month)]. *)
let matches_prefix t prefix =
  let n = Array.length prefix in
  n <= Array.length t.fields
  &&
  let rec go i =
    i >= n || (Value.equal t.fields.(i) prefix.(i) && go (i + 1))
  in
  go 0
