(** Shared-nothing sharded execution: single-owner tuple-space shards
    with cross-shard message passing (the IronFleet sharded-hash-table
    model — SNIPPETS.md snippet 2, ROADMAP item 2).

    Every tuple has exactly one owner shard ([hash mod N]).  Pending
    tuples live in per-shard sequential Delta trees touched only by
    their owner (one drain task per shard between fork/join barriers;
    extraction on the driving domain), so sharded runs need no
    cross-domain locking on the pending structures at all.  Producers
    ship Delta-bound puts as messages onto the owner's lock-free
    mailbox; the engine drains all mailboxes at the step barrier — the
    cross-shard watermark exchange — before the timestamp advances.

    Because the law of causality makes results schedule-independent,
    message reorderings between shards cannot change the class
    sequence: digests, output streams and lineage are bit-identical to
    unsharded runs (asserted by [test_shards] and [bench/shards.ml]). *)

type t

type msg = {
  m_tuples : Tuple.t array;
  m_ts : Timestamp.t array;
  m_len : int;
  m_src : int;  (** producing shard, or [-1] when unknown *)
  m_seq : int;  (** globally unique send stamp, one shared counter *)
}
(** One mailbox message: a batch of tuples and their timestamps (the
    first [m_len] slots), stamped with its producer and a globally
    unique sequence number.  The stamp binds the send/recv halves of
    the trace flow pair and totally orders messages across shards in a
    diagnostic bundle; the arrays belong to the message. *)

val create :
  shards:int -> nlits:int -> ts_of:(Tuple.t -> Timestamp.t) -> unit -> t
(** [shards] is clamped to at least 1; [nlits] sizes the per-shard
    Delta literal arrays; [ts_of] recomputes a pending tuple's
    timestamp during the extraction merge (pass the engine's memoised
    projection so literal-only tables hit the constant-array fast
    path). *)

val count : t -> int
val owner_of : t -> Tuple.t -> int
val delta : t -> int -> Delta.t
(** Shard [k]'s pending tree — for the owner's drain task only. *)

val post : t -> from:int -> dest:int -> Tuple.t array -> Timestamp.t array -> int -> unit
(** Ship a message to [dest]'s mailbox, taking ownership of the
    arrays.  [from] is the producing shard, or [-1] when unknown
    (external feeds, striped put buffers); a known [from <> dest]
    counts as cross-shard traffic.  Every message draws the next
    sequence stamp and is reported to the {!set_on_post} observer. *)

val set_on_post : t -> (src:int -> dest:int -> seq:int -> len:int -> unit) -> unit
(** Install the post observer, called on the producing domain after
    each push with the message's stamp — the engine's flow-send trace
    emission.  Purely observational: it must not touch engine state.
    One observer; installing replaces the previous. *)

val post_partitioned :
  t -> from:int -> Tuple.t array -> Timestamp.t array -> int -> unit
(** Partition the first [len] slots of a caller-owned buffer by owner
    and ship one message per destination (fresh arrays; the buffer can
    be reused immediately). *)

val drain : t -> int -> f:(msg -> unit) -> unit
(** Drain shard [k]'s mailbox FIFO until empty, calling [f] per
    message.  Must run on shard [k]'s owner task. *)

val backlog_total : t -> int
(** Messages currently queued across all mailboxes. *)

val quiesced : t -> bool
(** All mailboxes empty — the watermark condition. *)

val size : t -> int
(** Pending tuples across all shard Deltas. *)

val depth : t -> int
val inserted_total : t -> int
val deduped_total : t -> int

val note_deduped : t -> int -> unit
(** Upstream dedup drops (scratch arenas), folded into
    {!deduped_total} like [Delta.note_deduped]. *)

val occupancy : t -> int array
(** Per-shard pending counts — the occupancy lanes. *)

val backlogs : t -> int array
(** Per-shard queued message counts. *)

val msgs_posted : t -> int
val msgs_posted_to : t -> int -> int
val msgs_cross : t -> int
(** Messages whose producer shard was known and differed from the
    owner. *)

val tuples_shipped : t -> int
val tuples_cross : t -> int

val extract_min_class : t -> Tuple.t list
(** Remove and return the globally minimal equivalence class: each
    non-empty shard surrenders its local minimal class, a recursive
    component-wise select (same descent rules as [Delta.extract])
    keeps the global class, and losers are re-inserted counter-free
    into their owner's tree.  Single-threaded, with all mailboxes
    drained ({!quiesced}). *)

val gamma_router : owner:(Tuple.t -> int) -> Store.t array -> Store.t
(** One logical Gamma store fanned over per-shard sub-stores: point
    operations route by owner, scans and probes visit shards in index
    order (so probe/scan consistency survives sharding), batches are
    repartitioned preserving input order within each shard.  With a
    single sub-store, returns it unchanged. *)
