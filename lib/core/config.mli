(** Runtime configuration — the JStar compiler flags as runtime options,
    so strategy and data-structure choices never touch program text. *)

type data_structures =
  | Auto  (** sequential structures iff [threads = 1] *)
  | Sequential_ds  (** the TreeMap/TreeSet family; single-threaded only *)
  | Concurrent_ds  (** skip list / sharded hash family *)

type grain =
  | Auto_grain
      (** adaptive: [max 1 (n / (4 * workers))] per leaf — the "chunked
          leaves" strategy *)
  | Fixed of int  (** fixed leaf size; [Fixed 1] is one task per tuple *)

type advisor = {
  adv_warmup : int;
      (** total prefix queries (across tables) before the advisor
          reviews scan patterns *)
  adv_min_queries : int;
      (** scans of one (table, prefix length) needed to justify
          promoting an index *)
  adv_min_size : int;  (** tables smaller than this are never indexed *)
  adv_demote_windows : int;
      (** consecutive cold review windows (an index serving fewer than
          [adv_min_queries/8] of the window's scans counts as cold)
          before a promoted index is dropped again; 0 = never demote *)
}

val advisor_default : advisor
(** warmup 512, min queries 128, min size 256, demote after 4 cold
    windows — conservative enough that short runs never pay a
    backfill. *)

type t = {
  threads : int;  (** fork/join pool size ([--threads=N]); 1 = caller only *)
  data_structures : data_structures;
  no_delta : string list;
      (** [-noDelta T]: put T straight into Gamma, firing its rules
          immediately (§5.1) *)
  no_gamma : string list;
      (** [-noGamma T]: never store T (trigger-only tables, §5.1) *)
  stores : (string * Store.kind_spec) list;
      (** per-table Gamma store overrides *)
  grain : grain;  (** fork/join leaf granularity at engine call sites *)
  put_batching : bool;
      (** buffer parallel-phase puts per domain, flushing them through
          [Delta.insert_batch] / [Store.insert_batch] at the phase
          barriers that already define class visibility *)
  batch_fire : bool;
      (** vectorized Phase B: fire each minimal class as batched
          relational-algebra operations — group by (rule, table), sort
          each chunk by the rule's declared join key ({!Spec.read}
          [?prefix]), probe Gamma through a batched hash-join cursor,
          and flush puts from per-task scratch arenas straight through
          [Delta.insert_batch].  Firing order within a class is
          unconstrained by the law of causality, so determinism digests,
          lineage and outputs are bit-identical to the per-tuple path *)
  specialized_compare : bool;
      (** No-op, kept for config compatibility: the generic-comparator
          path it used to toggle was retired (the schema-compiled
          comparators and cached-hash dedup tables are now the only
          path — see EXPERIMENTS.md "Hot-path ablation"). *)
  indexes : (string * int list) list;
      (** declared secondary indexes (table name, prefix lengths),
          built empty at engine start and maintained at the Phase-A
          barrier — see {!Store.indexed} *)
  agg_cache : bool;
      (** memoized monoid aggregates: [Query.count] and
          [Query.memo_reduce] answer from barrier-maintained partials
          instead of re-scanning Gamma *)
  advisor : advisor option;
      (** adaptive store advisor: watches per-prefix-length query
          histograms and promotes hot scan patterns to secondary
          indexes mid-run, reporting through metrics and the
          [advisor-promote] span kind *)
  task_per_rule : bool;
      (** one task per (tuple, rule) pair instead of per tuple (§5.2) *)
  runtime_causality_check : bool;
      (** assert at every put that the tuple is not in the past *)
  max_steps : int option;  (** abort runaway programs *)
  print_directly : bool;  (** bypass deterministic output collection *)
  tracing : Jstar_obs.Level.t;
      (** [Off]: zero-cost; [Counters]: metrics registry only; [Spans]:
          also record per-domain span rings for Chrome-trace export *)
  trace_suppress : string list;
      (** builtin span kinds, by name (e.g. ["rule-fire"]), never
          recorded even at [Spans] — the per-kind mask that keeps
          step/extract spans while dropping per-task events on
          rule-fire-heavy runs *)
  trace_sample : int;
      (** record only every [N]-th span of each unmasked kind at
          [Spans] level (per domain, per kind; 1 = record everything) —
          finer-grained than [trace_suppress] when some per-task signal
          should survive on rule-fire-heavy runs *)
  provenance : bool;
      (** capture tuple lineage: one candidate derivation record per
          put into per-domain arenas, merged at step barriers into a
          deterministic derivation per tuple (read by [Jstar_prov.Explain]
          and the [--explain] CLI flag) *)
  audit_causality : bool;
      (** runtime causality-law auditor: validate every firing
          dynamically — positive queries at timestamps [<= T],
          negative/aggregate strictly [< T], puts [>= T], where [T] is
          the trigger's timestamp — catching unsound [Custom] stores
          and hand-written rules the static checker cannot see.
          Violations raise [Engine.Causality_violation] *)
  digest : bool;
      (** compute order-independent 128-bit digests of the final Gamma
          contents (per table and overall) and of the per-step class
          sequence, exposed in [Engine.result.digest] and the metrics
          snapshot — CI can assert equality across thread counts *)
  profile : bool;
      (** continuous profiler ({!Jstar_obs.Profiler}): self-time
          brackets per rule firing plus a per-step barrier fold of
          table / scheduler / GC deltas into exponentially decayed
          aggregates, served by [/profile] and the [/health] heartbeat.
          Timing lanes are non-deterministic by nature; deterministic
          counters, outputs and digests are unaffected (asserted by
          [test_ops]) *)
  step_hook : (int -> Jstar_obs.Metrics.t -> unit) option;
      (** called on the driving domain at the end of every step with
          the step number and live metrics registry — powers the CLI's
          [--metrics-every] periodic flush so crashed runs still leave
          a trail.  Runs inside the barrier: keep it cheap *)
  shards : int;
      (** shared-nothing sharded execution: partition Gamma and Delta
          by tuple hash into [N] single-owner shards ({!Shard}).  Every
          Delta-bound put is shipped to the owner shard's mailbox as a
          message and drained at the step barrier — a cross-shard
          watermark exchange (all mailboxes empty + all shards quiesced)
          instead of locking shared pending structures.  [0] = unsharded
          (the exact pre-sharding code paths); [1] = sharded machinery
          with a single shard (message path exercised — useful for
          testing).  Determinism digests, output streams and lineage are
          bit-identical to unsharded runs (asserted by [test_shards]) *)
}

val default : t
(** Sequential: one thread, automatic (sequential) data structures, no
    optimisations. *)

val sequential : t
(** Alias of {!default} — the [-sequential] compiler flag. *)

val parallel : ?threads:int -> unit -> t
(** Parallel defaults ([threads] defaults to 4): put batching, the
    aggregate cache, the store advisor and the continuous profiler on —
    the knobs EXPERIMENTS.md showed strictly helping (or costing ≤ 3%
    on) multi-threaded runs.  {!default} keeps them off so ablation
    baselines remain reachable. *)

val effective_mode : t -> Delta.mode
(** Which structure family the configuration resolves to. *)

exception Invalid of string

val validate : t -> unit
(** @raise Invalid for nonsensical combinations (0 threads, sequential
    structures with a multi-threaded pool, grain < 1, empty or
    non-positive index length lists, advisor thresholds out of range,
    unknown kind names in [trace_suppress], [trace_sample < 1],
    [shards < 0]). *)

val resolve_grain : t -> workers:int -> n:int -> int
(** The fork/join leaf size for an [n]-iteration loop on [workers]
    workers under this configuration's {!field-grain}. *)
