(** Tuple lineage capture ([Config.provenance]): per-domain append-only
    arenas of candidate derivation records, merged at the engine's
    step barriers into one deterministic minimum candidate per tuple.
    The chosen derivation of every tuple is identical at any thread
    count; see lineage.ml for the argument. *)

type record = {
  r_tuple : Tuple.t;
  r_rule : int;
      (** producing rule id ([Program.rule_name] resolves it), or
          {!Prov_frame.seed_rule} / {!Prov_frame.action_rule} *)
  r_step : int;  (** 0 for initial puts; classes count from 1 *)
  r_domain : int;  (** putting domain — display only, schedule-dependent *)
  r_parents : Tuple.t array;
      (** input tuples the body literals had bound: trigger first *)
}

type t

val create : stripes:int -> t
(** [stripes] must be a power of two (the engine passes its put-stripe
    count). *)

val record :
  t -> rule:int -> step:int -> parents:Tuple.t array -> Tuple.t -> unit
(** Append a candidate for [tuple].  Called per put, from any domain. *)

val merge : t -> unit
(** Drain the arenas into the per-tuple minimum-candidate table.  Must
    run at a barrier (no concurrent {!record}). *)

val find : t -> Tuple.t -> record option
(** The merged canonical derivation of [tuple], if it was ever put. *)

val tuples_tracked : t -> int
val records_merged : t -> int

val iter : t -> (record -> unit) -> unit
(** Every merged record, in unspecified order. *)
