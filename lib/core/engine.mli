(** The pseudo-naive bottom-up execution engine.

    Each step removes one minimal equivalence class from the Delta tree,
    inserts it into Gamma (parallel barrier), runs deterministic class
    effects (output formatting, action handlers), then fires all
    triggered rules (parallel barrier).  Tuples already present in Gamma
    or Delta are dropped (set semantics). *)

exception Causality_violation of string
(** Raised (when [runtime_causality_check] is on) by a put whose tuple's
    timestamp precedes the executing class — a rule changing the past.
    Also raised by the runtime auditor ([audit_causality]) when a firing
    reads tuples the law forbids: a positive query visiting later than
    its trigger, or a negative/aggregate query visiting at or later. *)

exception Step_limit_exceeded of int
(** Raised when [max_steps] is configured and exceeded. *)

type phase_times = {
  mutable t_extract : float;  (** seconds spent extracting from Delta *)
  mutable t_gamma : float;  (** seconds inserting classes into Gamma *)
  mutable t_rules : float;  (** seconds firing rules *)
}

type digest = {
  d_gamma : string;
      (** 128-bit hex digest of every stored tuple at quiescence,
          order-independent — equal across thread counts iff the final
          databases are equal *)
  d_classes : string;
      (** digest of the per-step class sequence, step-ordered (and
          order-independent within each class, where execution order is
          the one schedule-dependent thing) *)
  d_outputs : string;
      (** print-ordered digest of the output-line stream — outputs are
          sorted within each step, so the stream is schedule-independent
          and this digest is equal across thread counts iff the printed
          lines are *)
  d_tables : (string * string) list;
      (** per stored table, declaration order *)
}

type result = {
  outputs : string list;
      (** println/output lines, deterministic regardless of schedule *)
  steps : int;  (** number of equivalence classes executed *)
  tuples_processed : int;
  elapsed : float;  (** wall-clock seconds *)
  delta_inserted : int;
  delta_deduped : int;
  stats : Table_stats.t;
  phases : phase_times;
  tracer : Jstar_obs.Tracer.t;
      (** the run's span rings ({!Jstar_obs.Tracer.disabled} when
          [tracing = Off]); export with {!Jstar_obs.Export} *)
  metrics : Jstar_obs.Metrics.t;
      (** registry over the engine, Delta and Gamma — gauges and
          histograms alongside the {!Table_stats} counters *)
  lineage : Lineage.t option;
      (** merged derivation records when [Config.provenance] was on —
          feed to [Jstar_prov.Explain] together with the frozen
          program *)
  digest : digest option;  (** when [Config.digest] was on *)
}

val run : ?init:Tuple.t list -> Program.frozen -> Config.t -> result
(** Execute a frozen program from the initial puts to quiescence. *)

val run_with_gamma :
  ?init:Tuple.t list ->
  Program.frozen ->
  Config.t ->
  result * (Schema.t -> Store.t)
(** Like {!run}, additionally returning an accessor for the final Gamma
    stores (for inspecting results). *)

val run_program : ?init:Tuple.t list -> Program.t -> Config.t -> result
(** Freeze and run in one call. *)

(** {1 Event-driven sessions}

    External input tuples arrive over time (§3): a session keeps the
    engine alive between input batches. *)

type session

val start : Program.frozen -> Config.t -> session
val feed : session -> Tuple.t list -> unit
(** Enqueue external input tuples (routed like any put). *)

val drain : session -> string list
(** Run to quiescence; returns the outputs produced by this drain. *)

val session_gamma : session -> Schema.t -> Store.t
(** Inspect a table's Gamma store between drains. *)

val finish : session -> result
(** Shut the session's pool down and summarise.  Idempotent. *)

(** {2 Live introspection}

    Accessors the ops plane ([Jstar_ops], the [--ops-port] server)
    reads from a monitoring thread while the driving thread feeds and
    drains.  Each is either immutable after {!start} or a safe-stale
    read of monotone state: concurrent scrapes can lag the engine by
    in-flight updates but never crash it or perturb evaluation. *)

val session_metrics : session -> Jstar_obs.Metrics.t
(** The live metrics registry (the [/metrics] source). *)

val session_lineage : session -> Lineage.t option
(** The lineage arenas when [Config.provenance] is on — the bridge
    [/explain] uses ({!Jstar_prov.Explain.derive} wants it frozen at a
    drain barrier; between drains reads see the last merge). *)

val session_profiler : session -> Jstar_obs.Profiler.t option
(** The continuous profiler when [Config.profile] is on (the
    [/profile] source). *)

val session_frozen : session -> Program.frozen
(** The frozen program this session runs (schema lookup for query
    parsing). *)

val session_journal : session -> Jstar_obs.Journal.t
(** The always-on structured event journal (step seals, watermark
    rounds, advisor decisions, violations) — the flight recorder's
    first bundle section and a [/dump] input.  Safe-stale monitoring
    reads, like every accessor here. *)

val session_violation : session -> (string * Tuple.t list) option
(** The last causality violation's message and the tuples it names,
    captured just before [Causality_violation] raised — the flight
    recorder resolves these into explain trees.  [None] until a
    violation occurs. *)

val session_delta : session -> int * int
(** Current pending (size, depth) — heartbeat fields.  Under sharded
    execution, summed (size) / maxed (depth) over the shard trees. *)

type shard_stats = {
  sh_count : int;
  sh_occupancy : int array;  (** per-shard pending tuples *)
  sh_backlog : int array;  (** per-shard queued mailbox messages *)
  sh_msgs_posted : int;
  sh_msgs_cross : int;
  sh_tuples_shipped : int;
  sh_tuples_cross : int;
}

val session_shards : session -> shard_stats option
(** Sharded-execution occupancy and message counters ([/health] extras,
    bench assertions); [None] when [Config.shards = 0].  Safe-stale
    reads from a monitoring thread, like every accessor above. *)

(** {1 Durability hooks}

    Just enough session state for a persistence layer (jstar_persist,
    which depends on this library and therefore cannot be called from
    here) to snapshot a quiescent session and rebuild it on restore.
    Everything below assumes quiescence: call only between a {!drain}
    and the next {!feed}. *)

type session_state = {
  ss_step_no : int;  (** global step counter (timestamps lineage) *)
  ss_steps : int;  (** classes executed in this session *)
  ss_processed : int;
  ss_outputs_count : int;  (** total output lines so far *)
  ss_outputs : string list;
      (** all output lines, oldest first; [[]] when elided *)
  ss_seq_lanes : int * int;  (** class-sequence digest lanes *)
}

val session_state : ?with_outputs:bool -> session -> session_state
(** Capture the session state for a checkpoint manifest.
    [~with_outputs:false] (default [true]) elides the output-line list
    (leaving [ss_outputs_count] valid) — per-drain watermark records
    only need the scalars, and copying every line there would make a
    long session's drains quadratic. *)

val restore_session_state : session -> session_state -> unit
(** Overwrite a fresh session's counters/digest with checkpointed
    values.  Restored output lines count as already drained. *)

val load_tuple : session -> Tuple.t -> unit
(** Insert a checkpointed tuple directly into its Gamma store — no
    Delta, no rule firing, no output formatting (all of that already
    happened before the snapshot was taken).  Keeps the aggregate cache
    coherent.  @raise Invalid_argument for [-noGamma] tables, whose
    tuples are never snapshotted. *)

val session_pending : session -> int
(** Tuples waiting in Delta or the put buffers.  Zero after a drain;
    a checkpoint taken while nonzero would silently drop them, so the
    persistence layer refuses. *)

val stored_tables : session -> Schema.t list
(** Tables whose Gamma is retained (not [-noGamma]), declaration
    order — the tables a snapshot serializes. *)

val gamma_digest : session -> string
(** 128-bit hex digest of every stored tuple right now, independent of
    [Config.digest].  Recovery compares this against the snapshot
    manifest to prove the rebuilt database is bit-identical. *)
