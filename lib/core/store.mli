(** Gamma table stores — the pluggable data-structure layer behind each
    relation ("late commitment to data structures", §1.4). *)

type t = {
  kind : string;  (** human-readable store family, for reports *)
  insert : Tuple.t -> bool;
      (** Set-semantics insert: [false] = duplicate, store unchanged. *)
  insert_batch : Tuple.t array -> int -> int -> bool array;
      (** [insert_batch arr lo hi] inserts [arr.(lo)..arr.(hi-1)]; slot
          [i] of the result reports [arr.(lo+i)].  Semantically equal to
          element-wise {!field-insert} (first of equal tuples wins), but
          stores amortise locks and descents over a sorted run — feed it
          runs sorted by tuple order.  Build custom stores' default with
          {!seq_batch}. *)
  mem : Tuple.t -> bool;
  iter_prefix : Value.t array -> (Tuple.t -> unit) -> unit;
      (** Visit every tuple whose leading fields equal the prefix. *)
  probe_prefix : Value.t array -> Tuple.t list option;
      (** Batched hash-join probe: [Some matches] — the tuples
          {!field-iter_prefix} would visit, in the same order, as a
          value the engine's firing cursor can cache across equal
          probes.  Hash stores answer covered prefixes in O(bucket);
          ordered stores ([tree], [skiplist]) and under-specified hash
          prefixes materialise the scan in visit order, so negative and
          aggregate probes amortise one scan per distinct prefix
          instead of one per trigger.  [None] means no access path at
          all (native arrays, windowed/custom stores) — callers then
          fall back to {!field-iter_prefix}.  Build custom stores'
          default with {!no_probe}. *)
  iter : (Tuple.t -> unit) -> unit;
  size : unit -> int;
}

type kind_spec =
  | Tree  (** Ordered set (TreeSet) — sequential default. *)
  | Skiplist
      (** Concurrent ordered set (ConcurrentSkipListSet) — parallel
          default. *)
  | Hash_index of int
      (** Hash map keyed by the first [n] fields (ConcurrentHashMap);
          prefix queries of length >= [n] hit one bucket. *)
  | Custom of (Schema.t -> t)
      (** Application-supplied store — the "override the factory method"
          hook of §6.2. *)

val seq_batch :
  (Tuple.t -> bool) -> Tuple.t array -> int -> int -> bool array
(** Element-wise batch fallback: [seq_batch insert arr lo hi] applies
    [insert] in order.  The default [insert_batch] of every store that
    has nothing to amortise. *)

val no_probe : Value.t array -> Tuple.t list option
(** Always [None]: the [probe_prefix] of stores without an O(bucket)
    prefix access path. *)

(** The builders below always use the schema-compiled comparator and
    the cached-hash dedup tables.  (They once took a [?specialized]
    flag selecting a generic [Value.compare] / polymorphic-hash path;
    that path is retired and [Config.specialized_compare] is a no-op.) *)

val tree : Schema.t -> t
val skiplist : Schema.t -> t

val hash_index : prefix_len:int -> Schema.t -> t
(** @raise Schema.Schema_error when [prefix_len] exceeds the arity. *)

type int_array_handle = {
  ia_get : int array -> int;
  ia_set_raw : int array -> int -> unit;
      (** Direct write bypassing the tuple interface; keeps the presence
          bitmap consistent but skips dedup accounting. *)
  ia_present : int array -> bool;
  ia_data : int array;  (** The backing flat array, row-major in [dims]. *)
}

val native_int_array : dims:int array -> Schema.t -> t * int_array_handle
(** The "native-arrays" optimisation (§6.4): a dense
    [(int keys -> int value)] table stored as a flat [int array] plus a
    presence bitmap.  Returns the store and a typed O(1) handle.
    @raise Schema.Schema_error unless the schema is keys + one value. *)

type float_array_handle = {
  fa_get : int array -> float;
  fa_set_raw : int array -> float -> unit;
  fa_present : int array -> bool;
  fa_data : float array;  (** the backing flat array, row-major *)
}

val native_float_array : dims:int array -> Schema.t -> t * float_array_handle
(** The float twin of {!native_int_array}: a dense
    [(int keys -> double value)] table over a flat [float array] — the
    Median program's [double[2][100000000]] Gamma. *)

val of_spec : kind_spec -> Schema.t -> t
val default_for : parallel:bool -> Schema.t -> t
(** [Skiplist] when parallel, [Tree] otherwise. *)

type indexed_handle = {
  ih_promote : int -> bool;
      (** [ih_promote len] adds a secondary index on the first [len]
          fields, backfilled from the primary; [false] if one with that
          exact length already exists.  Must run with no concurrent
          inserts (the engine calls it at a Phase-A barrier).
          @raise Schema.Schema_error when [len] is outside [1..arity]. *)
  ih_demote : int -> bool;
      (** [ih_demote len] drops the secondary index with exactly that
          prefix length; [false] when none exists.  Queries fall back
          to the primary (or a remaining index).  Same barrier
          contract as {!field-ih_promote}. *)
  ih_lens : unit -> int list;  (** current index prefix lengths, sorted *)
}

val indexed : ?prefix_lens:int list -> Schema.t -> t -> t * indexed_handle
(** [indexed ~prefix_lens schema inner]: the query-acceleration wrapper.
    The primary [inner] keeps ownership of dedup, [mem], [iter] and
    [size]; each {!Index.t} adds a hash access path on a prefix length,
    maintained on every accepted insert and used by [iter_prefix]
    whenever the query prefix covers an index (largest covered length
    wins; shorter prefixes fall back to the primary).  Do not wrap
    evicting stores ({!windowed}) — indexes only ever grow, so they
    would resurrect dropped tuples.
    @raise Schema.Schema_error for declared lengths outside
    [1..arity]. *)

val flat_index : int array -> int array -> int
(** Row-major flattening of a multi-dimensional key; exposed for custom
    stores.  @raise Invalid_argument when out of range. *)

val windowed :
  field:string -> width:int -> (Schema.t -> t) -> Schema.t -> t
(** [windowed ~field ~width inner schema]: a manual tuple-lifetime hint
    (step 4 of the lifecycle, Fig 3).  Tuples are bucketed by the
    integer [field]; only buckets within [width] of the largest value
    seen stay queryable, older buckets are dropped wholesale (the
    Median program's keep-iter-and-iter+1 Gamma, generalised).  Inserts
    older than the window are refused.
    @raise Invalid_argument when [width < 1]. *)
