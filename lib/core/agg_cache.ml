(* Memoized monoid aggregates.

   An aggregate query ([Query.count]/[reduce]/[min_by]) over a prefix
   re-scans Gamma on every rule firing — the SumMonth cost of §6.2.
   This cache keeps, per (table, memo), a hash table from group key
   (the first [prefix_len] fields) to the monoid partial over every
   tuple of that group, and *updates* it on each class insert instead
   of invalidating: commutative monoids absorb new tuples in any order,
   so the partial equals the full re-scan no matter how the schedule
   interleaved the inserts.

   Synchronization rides the engine's phase structure, like the
   secondary indexes:
   - updates run at the Phase-A barrier, single-threaded, over exactly
     the tuples the store accepted (dedup drops never reach a partial);
   - reads and first-touch registrations run during Phase B, when Gamma
     and the partials are frozen; registration of distinct memos from
     concurrent rule bodies is serialized by one mutex, and the entry
     list is published through an [Atomic] so barrier updates observe
     complete entries only.
   Tables whose Gamma can change outside the barrier or can evict
   ([-noDelta], [-noGamma], custom/windowed stores) are declared
   non-cacheable by the engine and always fall back to the scan.

   The typed side lives in {!Query}: a memo token carries its own
   extension constructor of [univ] below, which is how a ['a] lookup
   function crosses the untyped engine-side entry list and comes back
   at the right type. *)

type univ = ..

type entry = {
  e_memo : int;
  e_update : Tuple.t -> unit;
  e_state : univ;
}

type t = {
  mutex : Mutex.t;
  cacheable : bool array; (* by table id *)
  entries : entry list Atomic.t array; (* by table id *)
}

let create ~cacheable =
  {
    mutex = Mutex.create ();
    cacheable;
    entries = Array.init (Array.length cacheable) (fun _ -> Atomic.make []);
  }

let cacheable t table =
  table < Array.length t.cacheable && t.cacheable.(table)

let get_or_register t ~table ~memo_id ~mk =
  if not (cacheable t table) then None
  else
    let find () =
      List.find_opt (fun e -> e.e_memo = memo_id) (Atomic.get t.entries.(table))
    in
    match find () with
    | Some e -> Some e.e_state
    | None ->
        Mutex.lock t.mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.mutex)
          (fun () ->
            match find () with
            | Some e -> Some e.e_state
            | None ->
                let e_update, e_state = mk () in
                Atomic.set t.entries.(table)
                  ({ e_memo = memo_id; e_update; e_state }
                  :: Atomic.get t.entries.(table));
                Some e_state)

let note_inserted t tuple =
  let id = (Tuple.schema tuple).Schema.id in
  if id < Array.length t.entries then
    match Atomic.get t.entries.(id) with
    | [] -> ()
    | es -> List.iter (fun e -> e.e_update tuple) es

let note_batch t tuples n =
  (* Vectorized barrier update: the class arrives grouped by table, so
     one entry-list load covers each contiguous run instead of one per
     tuple.  Same update multiset as [note_inserted] element-wise. *)
  let i = ref 0 in
  while !i < n do
    let id = (Tuple.schema tuples.(!i)).Schema.id in
    let j = ref (!i + 1) in
    while !j < n && (Tuple.schema tuples.(!j)).Schema.id = id do incr j done;
    (if id < Array.length t.entries then
       match Atomic.get t.entries.(id) with
       | [] -> ()
       | es ->
           for k = !i to !j - 1 do
             List.iter (fun e -> e.e_update tuples.(k)) es
           done);
    i := !j
  done

let entries_count t =
  Array.fold_left (fun acc a -> acc + List.length (Atomic.get a)) 0 t.entries
