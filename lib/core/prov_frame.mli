(** Per-domain firing frame: the rule currently executing on this
    domain, its trigger timestamp, and the tuples its body literals have
    bound.  Written by the engine (saved/restored around every firing),
    read by {!Lineage} capture and the runtime causality auditor. *)

type t = {
  mutable rule : int;
  mutable now : Timestamp.t option;
  mutable bound : Tuple.t list;  (** innermost binding first *)
  mutable strict : int;  (** > 0 inside a negative/aggregate query *)
  mutable past : Tuple.t list;
      (** tuples visited by completed positive scans of this firing —
          the rest of the bound-input frame once their scan has popped
          them from [bound].  Lineage appends them (sorted, deduped) to
          every put's parents; strict scans are excluded.  Managed by
          the engine like [bound]. *)
}

val seed_rule : int
(** Pseudo rule id for initial / externally fed puts (no firing). *)

val action_rule : int
(** Pseudo rule id for external-action handlers. *)

val get : unit -> t
(** This domain's frame (allocated on first use, then reused). *)

val with_strict : (unit -> 'a) -> 'a
(** Run [f] with the frame's strict-query depth raised: the auditor
    then requires every visited tuple to be strictly earlier than the
    trigger, per the law's negative/aggregate clause.  Exception-safe;
    nests. *)
