(* Dynamically-typed field values.

   JStar tuples are rows of a relation whose columns carry one of a small
   set of scalar types.  The original compiles each table to a Java class
   with typed fields; our embedded runtime stores rows as [value array],
   which is exactly the boxed representation the paper complains about in
   the MatrixMult study (XText generating boxed Integers) — the
   "native-arrays" Gamma stores recover the unboxed representation. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = TInt | TFloat | TStr | TBool

let type_of = function
  | Int _ -> TInt
  | Float _ -> TFloat
  | Str _ -> TStr
  | Bool _ -> TBool

let ty_name = function
  | TInt -> "int"
  | TFloat -> "double"
  | TStr -> "String"
  | TBool -> "boolean"

(* Total order: values of the same type compare naturally; values of
   different types (ill-typed programs only) order by type tag so that
   comparison stays a total order. *)
let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | _ ->
      let rank = function Int _ -> 0 | Float _ -> 1 | Str _ -> 2 | Bool _ -> 3 in
      Stdlib.compare (rank a) (rank b)

(* Same equivalence as [compare ... = 0] (including nan = nan for
   floats, via the float compare), without the rank detour. *)
let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Stdlib.compare x y = 0
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | _ -> false

let hash = function
  | Int x -> x * 0x9e3779b1
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> if b then 0x5bd1e995 else 0x1b873593

let default_of_ty = function
  | TInt -> Int 0
  | TFloat -> Float 0.0
  | TStr -> Str ""
  | TBool -> Bool false

exception Type_error of string

let to_int = function
  | Int x -> x
  | v -> raise (Type_error ("expected int, got " ^ ty_name (type_of v)))

let to_float = function
  | Float x -> x
  | Int x -> float_of_int x
  | v -> raise (Type_error ("expected double, got " ^ ty_name (type_of v)))

let to_string = function
  | Str s -> s
  | v -> raise (Type_error ("expected String, got " ^ ty_name (type_of v)))

let to_bool = function
  | Bool b -> b
  | v -> raise (Type_error ("expected boolean, got " ^ ty_name (type_of v)))

let pp ppf = function
  | Int x -> Fmt.int ppf x
  | Float x -> Fmt.float ppf x
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b

let show v = Fmt.str "%a" pp v

(* Array helpers used pervasively for tuple fields and query prefixes. *)
let compare_arrays a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_arrays a b =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i =
    i >= la || (equal (Array.unsafe_get a i) (Array.unsafe_get b i) && go (i + 1))
  in
  go 0

let hash_array a =
  let n = Array.length a in
  let h = ref n in
  for i = 0 to n - 1 do
    h := (!h * 31) + hash (Array.unsafe_get a i)
  done;
  !h

(* Same recipe as [hash_array] restricted to the first [k] slots, so
   [hash_prefix a k = hash_array (Array.sub a 0 k)] without the copy. *)
let hash_prefix a k =
  let h = ref k in
  for i = 0 to k - 1 do
    h := (!h * 31) + hash (Array.unsafe_get a i)
  done;
  !h

let equal_prefix a b k =
  let rec go i =
    i >= k || (equal (Array.unsafe_get a i) (Array.unsafe_get b i) && go (i + 1))
  in
  go 0
