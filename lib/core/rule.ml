(* Rules: the [foreach (Table t) { ... }] construct.

   A rule is triggered by one table; its body receives an execution
   context (the window onto the engine: queries against Gamma and [put])
   and the trigger tuple.  The body must follow the law of causality —
   every put into the present or future, every negative/aggregate query
   strictly in the past — which the causality checker verifies from the
   rule's declared [reads]/[puts] metadata, and which the engine can also
   assert dynamically per put. *)

type ctx = {
  put : Tuple.t -> unit;
      (* Add a tuple to the database (routed through Delta unless the
         table is configured -noDelta). *)
  iter_prefix : Schema.t -> Value.t array -> (Tuple.t -> unit) -> unit;
      (* Positive query: visit Gamma tuples matching a leading prefix. *)
  store_of : Schema.t -> Store.t;
      (* Direct access to a table's Gamma store (for custom stores). *)
  println : string -> unit;
      (* Debug output, collected deterministically per step. *)
  class_ts : unit -> Timestamp.t option;
      (* Timestamp of the equivalence class being executed. *)
  par_iter : int -> int -> (int -> unit) -> unit;
      (* [par_iter lo hi f]: run [f] over [lo, hi) using the engine's
         pool when one exists — the §5.2 "embarrassingly parallel for
         loops within rules".  The iterations must be independent (no
         reducer object); falls back to a sequential loop at 1 thread. *)
  agg : Agg_cache.t option;
      (* The run's aggregate cache ([Config.agg_cache]); [None] means
         every aggregate query scans.  Used through [Query.memo_*] and
         the [Query.count] fast path, not directly. *)
}

type t = {
  name : string;
  trigger : Schema.t;
  body : ctx -> Tuple.t -> unit;
  reads : Spec.read_spec list;
  puts : Spec.put_spec list;
  assumes : Spec.constr list;
      (* invariants/guards the causality checker may use *)
  prov : bool;
      (* capture lineage for this rule's puts when Config.provenance is
         on?  [~provenance:false] opts a hot rule out: its puts skip
         the per-put candidate record (the +55% worst case), at the
         price of its tuples showing as untracked in Explain *)
  mutable rid : int;
      (* program-wide rule id in declaration order, assigned at freeze;
         -1 until then.  Lineage records carry it instead of the name *)
}

let make ?(reads = []) ?(puts = []) ?(assumes = []) ?(provenance = true) ~name
    ~trigger body =
  { name; trigger; body; reads; puts; assumes; prov = provenance; rid = -1 }

let pp ppf r =
  Fmt.pf ppf "foreach (%s %s) { ... }" r.trigger.Schema.name r.name
