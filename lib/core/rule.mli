(** Rules — the [foreach (Table t) { ... }] construct — and the
    execution context their bodies receive. *)

type ctx = {
  put : Tuple.t -> unit;
      (** Add a tuple to the database (via Delta unless -noDelta).
          Must respect the law of causality: the tuple's timestamp may
          not precede the executing class. *)
  iter_prefix : Schema.t -> Value.t array -> (Tuple.t -> unit) -> unit;
      (** Positive query: visit Gamma tuples matching a leading prefix
          (used through the {!Query} combinators). *)
  store_of : Schema.t -> Store.t;
      (** Direct access to a table's Gamma store — the hook custom
          stores are reached through. *)
  println : string -> unit;
      (** Debug output; collected and ordered deterministically per
          step ("we allow it for temporary debugging", §6.2). *)
  class_ts : unit -> Timestamp.t option;
      (** Timestamp of the equivalence class being executed. *)
  par_iter : int -> int -> (int -> unit) -> unit;
      (** [par_iter lo hi f]: an intra-rule parallel loop (§5.2) over
          [lo, hi).  Iterations must be independent; runs sequentially
          when the engine has no pool. *)
  agg : Agg_cache.t option;
      (** The run's aggregate cache ([Config.agg_cache]), [None] when
          off.  Consulted by the {!Query} aggregate combinators; rule
          bodies never touch it directly. *)
}

type t = {
  name : string;
  trigger : Schema.t;
  body : ctx -> Tuple.t -> unit;
  reads : Spec.read_spec list;
  puts : Spec.put_spec list;
  assumes : Spec.constr list;
  prov : bool;
      (** capture lineage for this rule's puts under
          [Config.provenance]; [false] = opted out ([~provenance:false]) *)
  mutable rid : int;
      (** program-wide id in declaration order, set by [Program.freeze];
          -1 before.  Identifies the rule in lineage records. *)
}

val make :
  ?reads:Spec.read_spec list ->
  ?puts:Spec.put_spec list ->
  ?assumes:Spec.constr list ->
  ?provenance:bool ->
  name:string ->
  trigger:Schema.t ->
  (ctx -> Tuple.t -> unit) ->
  t
(** [provenance] defaults to [true]; pass [false] to exempt a hot
    rule's puts from lineage capture ([Config.provenance]) — its
    output tuples then report as untracked in [Jstar_prov.Explain]. *)

val pp : Format.formatter -> t -> unit
