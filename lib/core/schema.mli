(** Table schemas — the runtime form of
    [table Name(int k -> int a, int b) orderby (Lit, seq k)]. *)

type orderby_entry =
  | Lit of string
      (** A capitalised order literal, ranked by the [order] declarations. *)
  | Seq of string  (** [seq f]: subtrees at this level execute in field order. *)
  | Par of string  (** [par f]: subtrees at this level are unordered. *)

type column = { col_name : string; col_ty : Value.ty }

type t = private {
  id : int;
  name : string;
  columns : column array;
  key_arity : int;
  orderby : orderby_entry array;
  index : (string, int) Hashtbl.t;
  orderby_fields : int array;
      (** Column position for each orderby entry; [-1] for literals. *)
  mutable fields_cmp : (Value.t array -> Value.t array -> int) option;
      (** Compiled specialized comparator cache; use {!fields_compare}. *)
}

exception Schema_error of string

val column : string -> Value.ty -> column
val int_col : string -> column
val float_col : string -> column
val string_col : string -> column
val bool_col : string -> column

val make :
  id:int ->
  name:string ->
  columns:column list ->
  key_arity:int ->
  orderby:orderby_entry list ->
  t
(** Validates column names, key arity, and that every orderby field
    exists.  Normally called via [Program.table], which assigns the id.
    @raise Schema_error on any inconsistency. *)

val arity : t -> int

val field_pos : t -> string -> int
(** @raise Schema_error for unknown field names. *)

val field_ty : t -> int -> Value.ty
val key_columns : t -> column array
val has_key : t -> bool

(** [fields_compare t] is a field-array comparator compiled once per
    schema from the column types: monomorphic int/float/string/bool fast
    paths instead of the generic per-field [Value.compare] dispatch.
    Induces exactly the same order as {!Value.compare_arrays} on
    well-typed rows of this schema.  Compiled lazily and cached. *)
val fields_compare : t -> Value.t array -> Value.t array -> int
val orderby_entry_field : orderby_entry -> string option
val pp : Format.formatter -> t -> unit
val pp_orderby_entry : Format.formatter -> orderby_entry -> unit
