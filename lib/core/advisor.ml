(* The adaptive store advisor.

   "Late commitment to data structures" (§6) is a manual knob: someone
   reads the Table_stats report, notices a table is scanned by a prefix
   its store cannot index, and re-runs with a different store.  The
   advisor closes that loop at runtime: it extends the per-table
   [queries] counter into a per-prefix-length histogram (striped like
   every hot-path counter), and at Phase-A barriers — the only points
   where Gamma and its indexes may change — reviews the histogram and
   promotes a hot scan pattern to a secondary index through the table's
   {!Store.indexed} handle.

   Reviews are amortised: a review runs only once the total query count
   crosses [next_review] (warm-up first, then every [warmup/2] or 64
   queries, whichever is larger), so the per-step barrier cost is one
   striped-counter read and a compare.

   Demotion closes the other half of the loop: an index the advisor
   promoted but whose traffic has dried up is pure insert overhead.
   Each review computes, per promoted index, how many of the window's
   queries that index actually served (the queries whose prefix length
   it is the best cover for); an index serving fewer than
   [min_queries/8] (floor 1) window queries is "cold", and
   [demote_windows] consecutive cold reviews drop it through
   {!Store.indexed_handle.ih_demote}.  The cumulative count at demotion
   becomes the promotion baseline, so a demoted index must re-earn
   [min_queries] *fresh* scans before it is promoted again — no
   flapping on a workload that merely pauses.

   Determinism: the engine's class sequence is schedule-independent, so
   the histogram values observed at each barrier are too (Phase B has
   fully completed); promotion and demotion decisions therefore replay
   identically across thread counts, and an index only changes *how* a
   prefix query iterates, never which tuples it visits. *)

type table = {
  t_name : string;
  t_handle : Store.indexed_handle option; (* None: not an indexable store *)
  t_counts : Table_stats.counter array; (* queries by prefix length 0..arity *)
  t_last : int array;
      (* histogram snapshot at the previous review; the per-window delta
         is what demotion reasons about *)
  t_baseline : int array;
      (* cumulative count already "spent" by a past promotion of this
         length; promotion requires [count - baseline >= min_queries] *)
  t_promoted : (int, int) Hashtbl.t;
      (* advisor-promoted index lengths -> consecutive cold windows.
         Declared indexes are never tracked here and never demoted. *)
  t_size : unit -> int;
}

type t = {
  warmup : int;
  min_queries : int;
  min_size : int;
  demote_windows : int; (* 0 = demotion off *)
  tables : table array;
  total : Table_stats.counter;
  mutable next_review : int;
  promotions : int Atomic.t;
  demotions : int Atomic.t;
}

let make_table ~name ~arity ~handle ~size =
  {
    t_name = name;
    t_handle = handle;
    t_counts = Array.init (arity + 1) (fun _ -> Table_stats.make_counter ());
    t_last = Array.make (arity + 1) 0;
    t_baseline = Array.make (arity + 1) 0;
    t_promoted = Hashtbl.create 4;
    t_size = size;
  }

let create ~warmup ~min_queries ~min_size ~demote_windows tables =
  {
    warmup;
    min_queries;
    min_size;
    demote_windows;
    tables;
    total = Table_stats.make_counter ();
    next_review = max warmup 1;
    promotions = Atomic.make 0;
    demotions = Atomic.make 0;
  }

let note_query t id plen =
  let tb = t.tables.(id) in
  if plen < Array.length tb.t_counts then Table_stats.incr tb.t_counts.(plen);
  Table_stats.incr t.total

let promotions_total t = Atomic.get t.promotions
let demotions_total t = Atomic.get t.demotions

let histogram t id =
  Array.to_list
    (Array.mapi (fun k c -> (k, Table_stats.read c)) t.tables.(id).t_counts)

let table_name t id = t.tables.(id).t_name
let index_lens t id =
  match t.tables.(id).t_handle with
  | Some h -> h.Store.ih_lens ()
  | None -> []

(* The index a length-[k] query uses: the largest index length <= k
   (mirrors [best_for] in {!Store.indexed}); 0 = primary scan. *)
let serving_len lens k =
  List.fold_left (fun acc l -> if l <= k && l > acc then l else acc) 0 lens

(* Demotion pass for one table: fold the window's per-length query
   deltas onto the index that would have served each length, then age
   or reset each promoted index's cold-window counter. *)
let review_demotions t id tb h ~on_demote =
  if t.demote_windows > 0 && Hashtbl.length tb.t_promoted > 0 then begin
    let lens = h.Store.ih_lens () in
    let arity = Array.length tb.t_counts - 1 in
    let served = Hashtbl.create 4 in
    for k = 1 to arity do
      let delta = Table_stats.read tb.t_counts.(k) - tb.t_last.(k) in
      let l = serving_len lens k in
      if l > 0 then
        Hashtbl.replace served l
          (delta + Option.value ~default:0 (Hashtbl.find_opt served l))
    done;
    let cold_floor = max 1 (t.min_queries lsr 3) in
    let decided =
      Hashtbl.fold (fun l cold acc -> (l, cold) :: acc) tb.t_promoted []
    in
    List.iter
      (fun (l, cold) ->
        let window = Option.value ~default:0 (Hashtbl.find_opt served l) in
        if window >= cold_floor then Hashtbl.replace tb.t_promoted l 0
        else begin
          let cold = cold + 1 in
          if cold >= t.demote_windows && h.Store.ih_demote l then begin
            Hashtbl.remove tb.t_promoted l;
            (* A re-promotion must be justified by fresh traffic. *)
            tb.t_baseline.(l) <- Table_stats.read tb.t_counts.(l);
            Atomic.incr t.demotions;
            on_demote ~table_id:id ~prefix_len:l
          end
          else Hashtbl.replace tb.t_promoted l cold
        end)
      (List.sort compare decided)
  end

(* A review promotes, per table, the hottest prefix length k >= 1 whose
   fresh scan count clears [min_queries] and which no existing index
   already serves (an index on j <= k answers k-queries from its
   j-bucket; a second, tighter index would only split the same
   traffic); then it ages promoted indexes towards demotion. *)
let review t ~on_promote ~on_demote =
  let total = Table_stats.read t.total in
  if total >= t.next_review then begin
    t.next_review <- total + max 64 (t.warmup / 2);
    Array.iteri
      (fun id tb ->
        (match tb.t_handle with
        | None -> ()
        | Some h ->
            if tb.t_size () >= t.min_size then begin
              let lens = h.Store.ih_lens () in
              let best = ref 0 and best_n = ref 0 in
              Array.iteri
                (fun k c ->
                  if k >= 1 && not (List.exists (fun l -> l <= k) lens) then begin
                    let n = Table_stats.read c - tb.t_baseline.(k) in
                    if n >= t.min_queries && n > !best_n then begin
                      best := k;
                      best_n := n
                    end
                  end)
                tb.t_counts;
              if !best > 0 && h.Store.ih_promote !best then begin
                Hashtbl.replace tb.t_promoted !best 0;
                Atomic.incr t.promotions;
                on_promote ~table_id:id ~prefix_len:!best
              end;
              review_demotions t id tb h ~on_demote
            end);
        (* Refresh the window snapshot for every table, indexable or
           not, so deltas stay aligned with review windows. *)
        Array.iteri
          (fun k c -> tb.t_last.(k) <- Table_stats.read c)
          tb.t_counts)
      t.tables
  end
