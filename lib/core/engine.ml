(* The pseudo-naive bottom-up execution engine (§3, §5, Fig 3).

   Lifecycle of a tuple:
     1. a rule (or an initial put) creates it; it enters the Delta tree
        unless its table is configured -noDelta;
     2. when its equivalence class becomes minimal, the engine removes
        the whole class from Delta, inserts the tuples into their Gamma
        tables, runs any registered external-action handlers, and then
        fires every rule triggered by them — all tuples of the class in
        parallel under the all-minimums strategy;
     3. other rules may query it in Gamma;
     4. garbage collection of dead tuples is the responsibility of the
        table's store (manual lifetime hints, as in the Median study).

   Each step is two barriers: first the whole class is inserted into
   Gamma (in parallel), then all rules fire (in parallel).  Rules of the
   same class therefore observe the *entire* class in Gamma, never a
   fraction of it — this is what makes positive queries at the trigger's
   own timestamp deterministic under any schedule.

   Set semantics: a put whose tuple is already in Gamma or already
   pending in Delta is dropped.  Duplicate drops are what terminate
   recursive programs (the SumMonth dedup of §6.2).

   -noDelta T tuples bypass Delta: they are inserted into Gamma and
   their rules fire immediately, inside the putting task (§5.1).
   -noGamma T tuples are never stored (they are trigger-only). *)

exception Causality_violation of string
exception Step_limit_exceeded of int

type phase_times = {
  mutable t_extract : float;
  mutable t_gamma : float;
  mutable t_rules : float;
}

type digest = {
  d_gamma : string;
      (* order-independent 128-bit hex digest of every stored tuple *)
  d_classes : string;
      (* step-ordered digest of the class sequence (order-independent
         within a class, where execution order is schedule-dependent) *)
  d_outputs : string;
      (* print-ordered digest of the output-line stream — the third
         determinism promise (outputs are already sorted within each
         step, so the stream is schedule-independent too) *)
  d_tables : (string * string) list; (* per stored table, declaration order *)
}

type result = {
  outputs : string list; (* deterministic order *)
  steps : int;
  tuples_processed : int;
  elapsed : float;
  delta_inserted : int;
  delta_deduped : int;
  stats : Table_stats.t;
  phases : phase_times;
  tracer : Jstar_obs.Tracer.t;
  metrics : Jstar_obs.Metrics.t;
  lineage : Lineage.t option; (* Config.provenance *)
  digest : digest option; (* Config.digest *)
}

(* One stripe of the put-batching buffer: growable parallel arrays
   (tuples and timestamps separately — no per-entry pair allocation)
   under a mutex.  Each domain lands on its own stripe in steady state,
   so the lock is uncontended; capacity is kept across flushes, so after
   the first step a put costs two plain stores. *)
type put_buf = {
  pb_mutex : Mutex.t;
  mutable pb_tuples : Tuple.t array;
  mutable pb_ts : Timestamp.t array;
  mutable pb_len : int;
}

(* Per-task scratch arena for the batched firing path: pending Delta
   inserts as growable parallel arrays, owned by exactly one (rule,
   table)-chunk task at a time, so pushes are plain stores — no mutex,
   unlike [put_buf_push].  Arenas live on a free list in the engine
   state and keep their capacity across tasks and steps, so after
   warmup a batched put allocates nothing. *)
type scratch = {
  mutable sc_tuples : Tuple.t array;
  mutable sc_ts : Timestamp.t array;
  mutable sc_len : int;
  sc_seen : Tuple.Dset.t;
      (* Task-local dedup: any tuple pushed once this task is already
         pending in Delta for the rest of the class, so later puts of
         it are dropped here with one lock-free probe instead of riding
         through the flush.  Valid across mid-task flushes (flushed
         tuples stay pending until the class barrier); cleared when the
         task releases the arena. *)
  mutable sc_dups : int; (* drops by [sc_seen], reported at task end *)
}

(* Flush a scratch arena into Delta once it holds this many puts (or at
   task end).  Large enough that [Delta.insert_batch]'s grouping and
   per-leaf lock amortisation dominate, small enough to stay resident
   in cache; exposed as the [engine.put_flush_threshold] gauge. *)
let scratch_flush_threshold = 32_768

let scratch_push sc tuple ts =
  let cap = Array.length sc.sc_tuples in
  if sc.sc_len = cap then begin
    let ncap = if cap = 0 then 1024 else 2 * cap in
    let bigger_t = Array.make ncap tuple and bigger_s = Array.make ncap ts in
    Array.blit sc.sc_tuples 0 bigger_t 0 cap;
    Array.blit sc.sc_ts 0 bigger_s 0 cap;
    sc.sc_tuples <- bigger_t;
    sc.sc_ts <- bigger_s
  end;
  sc.sc_tuples.(sc.sc_len) <- tuple;
  sc.sc_ts.(sc.sc_len) <- ts;
  sc.sc_len <- sc.sc_len + 1

let put_buf_push b tuple ts =
  Mutex.lock b.pb_mutex;
  let cap = Array.length b.pb_tuples in
  if b.pb_len = cap then begin
    let ncap = if cap = 0 then 1024 else 2 * cap in
    let bigger_t = Array.make ncap tuple and bigger_s = Array.make ncap ts in
    Array.blit b.pb_tuples 0 bigger_t 0 cap;
    Array.blit b.pb_ts 0 bigger_s 0 cap;
    b.pb_tuples <- bigger_t;
    b.pb_ts <- bigger_s
  end;
  b.pb_tuples.(b.pb_len) <- tuple;
  b.pb_ts.(b.pb_len) <- ts;
  b.pb_len <- b.pb_len + 1;
  Mutex.unlock b.pb_mutex

type state = {
  frozen : Program.frozen;
  config : Config.t;
  order : Order_rel.t;
  delta : Delta.t;
  gamma : Store.t array; (* by table id *)
  no_delta : bool array;
  no_gamma : bool array;
  const_ts : Timestamp.t option array;
      (* memoised timestamp for tables whose orderby is literal-only:
         every tuple of such a table has the same timestamp, so there is
         no need to project it per put (PvWatts-style tables put millions
         of tuples through this path) *)
  stats : Table_stats.t;
  pool : Jstar_sched.Pool.t option;
  out_buf : string Jstar_cds.Treiber_stack.t; (* per-step println sink *)
  outputs : string list ref; (* accumulated, reverse order *)
  outputs_count : int ref; (* length of [outputs], kept incrementally *)
  put_bufs : put_buf array;
      (* Config.put_batching: domain-striped buffers of pending Delta
         inserts, drained through Delta.insert_batch at the phase
         barriers (which already define class visibility, so buffering
         inside a phase cannot change what any rule observes).  Under
         Config.shards the layout becomes [stripe * nshards + dest]:
         each (stripe, destination-shard) buffer flushes as exactly one
         mailbox message, so stripes are sized per shard, not shared
         across the whole grid *)
  put_stripe_mask : int;
      (* stripes - 1 (stripes is a power of two): the domain-id mask
         selecting a stripe, independent of the put_bufs length (which
         is stripes * nshards when sharded) *)
  shard : Shard.t option;
      (* Config.shards >= 1: shared-nothing sharded execution.  Gamma
         and Delta are partitioned by tuple hash into single-owner
         shards; every Delta-bound put ships to the owner's mailbox and
         all mailboxes drain at the step barrier (the cross-shard
         watermark exchange) before the next class is extracted *)
  current_ts : Timestamp.t option ref;
  processed : int ref;
  phases : phase_times;
  agg : Agg_cache.t option;
      (* Config.agg_cache: memoized monoid partials, fed with every
         accepted class tuple at the Phase-A barrier *)
  advisor : Advisor.t option;
      (* Config.advisor: per-prefix-length query histograms, reviewed at
         the end-of-step barrier to promote hot scan patterns *)
  obs : Jstar_obs.Tracer.t;
  metrics : Jstar_obs.Metrics.t;
  trace_spans : bool;
      (* [Tracer.spans_on obs], cached: recording sites test one
         immutable bool instead of chasing the tracer's level *)
  counters_on : bool; (* likewise [Tracer.counters_on obs] *)
  trace_rule_fire : bool;
      (* [Tracer.enabled obs Kind.rule_fire]: the one per-task span kind,
         separately cached so the suppress mask can drop it while
         step/extract spans stay on *)
  h_rule_latency : Jstar_obs.Metrics.histogram; (* seconds per fire *)
  h_class_width : Jstar_obs.Metrics.histogram; (* tuples per class *)
  lineage : Lineage.t option; (* Config.provenance: candidate arenas *)
  prov_mask : bool array;
      (* by rule id: capture lineage for this rule's puts?  All-true
         unless some rule was declared [~provenance:false] — the
         per-rule opt-out from worst-case capture cost.  Seed and
         action pseudo-ids (< 0) are always captured *)
  prov_on : bool; (* lineage <> None, cached for the put path *)
  audit_on : bool; (* Config.audit_causality, cached likewise *)
  prov_or_audit : bool;
      (* either feature needs the per-domain Prov_frame maintained
         around firings; with both off the frame is never touched *)
  digest_on : bool; (* Config.digest *)
  seq_digest : Fingerprint.t;
      (* class-sequence digest, fed one class per step in step order *)
  step_no : int ref;
      (* current step number for lineage records: 0 during initial
         puts, then counts classes from 1.  Monotonic across session
         drains *)
  batch_on : bool; (* Config.batch_fire, cached *)
  probe_ok : bool array;
      (* by table id: may the batched firing path cache this table's
         probe results across a chunk?  Requires Gamma to grow only at
         Phase-A barriers and never evict — the same indexable &&
         Delta-bound && stored condition as the aggregate cache *)
  rule_sort_pos : int array option array;
      (* by rule id: trigger-field positions of the rule's first
         positive read with a declared all-[Field] [Spec.rd_prefix].
         The batch path sorts each (rule, table) chunk by these fields
         so triggers probing the same join key run adjacently and the
         one-entry probe cursor hits *)
  scratch_mutex : Mutex.t;
  scratch_free : scratch list ref;
      (* free list of firing-task scratch arenas; arenas keep capacity *)
  trace_batch_fire : bool; (* [Tracer.enabled obs Kind.batch_fire] *)
  h_batch_width : Jstar_obs.Metrics.histogram;
      (* triggers per (rule, table) run entering the batch firing path *)
  profiler : Jstar_obs.Profiler.t option;
      (* Config.profile: continuous per-rule/per-table cost attribution.
         Firing sites bracket rule bodies with [fire_start]/[fire_stop];
         [run_step] folds table/scheduler/GC deltas at its barrier.
         Purely observational: never read by evaluation, so digests and
         deterministic counters are bit-identical with it on or off *)
  journal : Jstar_obs.Journal.t;
      (* always-on structured event journal (step seals, watermark
         rounds, advisor decisions, violations) — barrier-frequency
         mutex + small alloc, never read by evaluation *)
  last_violation : (string * Tuple.t list) option ref;
      (* set just before a Causality_violation raises: the message and
         the tuples it names, for the flight recorder's explain-tree
         section (raising unwinds the stack, so capture happens here) *)
}

let store_for config ~parallel schema =
  (* Returns the primary store plus whether {!Store.indexed} may wrap
     it: custom stores (windowed, native arrays, application-supplied)
     manage their own lifetime and may evict, which an ever-growing
     index must never witness. *)
  let name = schema.Schema.name in
  match List.assoc_opt name config.Config.stores with
  | Some (Store.Custom _ as spec) -> (Store.of_spec spec schema, false)
  | Some spec -> (Store.of_spec spec schema, true)
  | None -> (Store.default_for ~parallel schema, true)

let null_store schema =
  (* -noGamma: accept and forget.  [mem] is always false, so set-dedup
     for this table relies on Delta alone — the flag is only safe for
     trigger-only tables, as the paper notes. *)
  let cannot_query () =
    raise
      (Schema.Schema_error
         (schema.Schema.name ^ " is -noGamma and cannot be queried"))
  in
  let insert _ = true in
  {
    Store.kind = "none";
    insert;
    insert_batch = Store.seq_batch insert;
    mem = (fun _ -> false);
    iter_prefix = (fun _ _ -> cannot_query ());
    probe_prefix = (fun _ -> cannot_query ());
    iter = (fun _ -> cannot_query ());
    size = (fun () -> 0);
  }

let make_state frozen config =
  Config.validate config;
  let parallel = Config.effective_mode config = Delta.Concurrent in
  let tables = frozen.Program.tables in
  let in_list l s = List.mem s.Schema.name l in
  let no_gamma = Array.map (in_list config.Config.no_gamma) tables in
  let no_delta = Array.map (in_list config.Config.no_delta) tables in
  (* Secondary-index plumbing: wrap a table's primary store in
     {!Store.indexed} when it has declared index lengths or the advisor
     may want to promote one later.  [handles.(i)] keeps the promotion
     hook; [indexable.(i)] also gates the aggregate cache (both need the
     barrier-only-growth guarantee a custom store cannot give). *)
  let nt = Array.length tables in
  let handles = Array.make nt None in
  let indexable = Array.make nt false in
  let advisor_on = config.Config.advisor <> None in
  let order = Program.order_rel frozen.Program.program in
  let const_ts =
    Array.map
      (fun s ->
        if
          Array.for_all
            (function Schema.Lit _ -> true | _ -> false)
            s.Schema.orderby
        then
          (* any tuple projects to the same literal-only timestamp *)
          Some
            (Array.map
               (function
                 | Schema.Lit l -> Timestamp.CLit (Order_rel.rank order l, l)
                 | Schema.Seq _ | Schema.Par _ -> assert false)
               s.Schema.orderby)
        else None)
      tables
  in
  let shard =
    if config.Config.shards >= 1 then begin
      (* The extraction merge recomputes pending tuples' timestamps;
         route it through the same memoised projection as the put path
         so literal-only tables stay O(1). *)
      let ts_of tuple =
        match const_ts.((Tuple.schema tuple).Schema.id) with
        | Some ts -> ts
        | None -> Timestamp.of_tuple order tuple
      in
      Some
        (Shard.create ~shards:config.Config.shards
           ~nlits:frozen.Program.nlits ~ts_of ())
    end
    else None
  in
  let gamma =
    Array.mapi
      (fun i s ->
        if no_gamma.(i) then null_store s
        else begin
          let declared =
            match List.assoc_opt s.Schema.name config.Config.indexes with
            | Some lens -> lens
            | None -> []
          in
          let is_custom =
            match List.assoc_opt s.Schema.name config.Config.stores with
            | Some (Store.Custom _) -> true
            | _ -> false
          in
          match shard with
          | Some sh when not is_custom ->
              (* One sub-store per shard, each individually wrapped, so
                 an owner task touches only its own shard's primary and
                 indexes.  Custom stores keep their single instance —
                 they manage their own lifetime and the router cannot
                 split a handle-backed native array. *)
              indexable.(i) <- true;
              let n = Shard.count sh in
              let wrap = declared <> [] || advisor_on in
              let hsubs = Array.make n None in
              let subs =
                Array.init n (fun k ->
                    let base, _ = store_for config ~parallel s in
                    if wrap then begin
                      let store, h =
                        Store.indexed ~prefix_lens:declared s base
                      in
                      hsubs.(k) <- Some h;
                      store
                    end
                    else base)
              in
              if wrap then begin
                let hs = Array.map (fun h -> Option.get h) hsubs in
                (* The combined handle fans promotions over every
                   shard's index set; lens are uniform across shards by
                   construction, so shard 0 answers for all. *)
                handles.(i) <-
                  Some
                    {
                      Store.ih_promote =
                        (fun len ->
                          Array.fold_left
                            (fun acc h ->
                              let r = h.Store.ih_promote len in
                              acc || r)
                            false hs);
                      ih_demote =
                        (fun len ->
                          Array.fold_left
                            (fun acc h ->
                              let r = h.Store.ih_demote len in
                              acc || r)
                            false hs);
                      ih_lens = (fun () -> hs.(0).Store.ih_lens ());
                    }
              end;
              Shard.gamma_router ~owner:(Shard.owner_of sh) subs
          | _ ->
              let base, wrappable = store_for config ~parallel s in
              indexable.(i) <- wrappable;
              if wrappable && (declared <> [] || advisor_on) then begin
                let store, h = Store.indexed ~prefix_lens:declared s base in
                handles.(i) <- Some h;
                store
              end
              else base
        end)
      tables
  in
  let obs =
    match config.Config.tracing with
    | Jstar_obs.Level.Off -> Jstar_obs.Tracer.disabled
    | level ->
        Jstar_obs.Tracer.create
          ~suppress:
            (List.filter_map Jstar_obs.Kind.of_name
               config.Config.trace_suppress)
          ~sample:config.Config.trace_sample ~level ()
  in
  let agg =
    if config.Config.agg_cache then
      (* Cacheable = Gamma grows only at Phase-A barriers and never
         evicts: Delta-bound, stored, non-custom tables.  -noDelta
         tables insert mid-Phase-B (no safe single-threaded update
         point), -noGamma tables have nothing to aggregate, custom
         stores may drop tuples. *)
      Some
        (Agg_cache.create
           ~cacheable:
             (Array.init nt (fun i ->
                  indexable.(i) && (not no_delta.(i)) && not no_gamma.(i))))
    else None
  in
  let advisor =
    match config.Config.advisor with
    | None -> None
    | Some a ->
        let adv_tables =
          Array.mapi
            (fun i s ->
              Advisor.make_table ~name:s.Schema.name ~arity:(Schema.arity s)
                ~handle:handles.(i)
                ~size:(fun () -> gamma.(i).Store.size ()))
            tables
        in
        Some
          (Advisor.create ~warmup:a.Config.adv_warmup
             ~min_queries:a.Config.adv_min_queries
             ~min_size:a.Config.adv_min_size
             ~demote_windows:a.Config.adv_demote_windows adv_tables)
  in
  let metrics = Jstar_obs.Metrics.create () in
  (* Stripe count scales with the pool so domains rarely share a stripe
     lock.  The floor used to be 16; with batched firing sinking the
     parallel-phase puts into per-task scratch arenas the striped
     buffers mostly serve the per-tuple path and external feeds, and
     fewer stripes shorten the every-barrier flush scan — 2x threads
     with a floor of 8 measures no worse at every pool size. *)
  let put_stripes =
    Jstar_sched.Bits.next_pow2 (max 8 (2 * config.Config.threads))
  in
  (* Sharded layout: [stripe * nshards + dest] — each (stripe, shard)
     buffer becomes one mailbox message at the flush, so stripes are
     sized per shard rather than splitting one stripe set across all
     destinations. *)
  let put_buf_count =
    match shard with
    | Some sh -> put_stripes * Shard.count sh
    | None -> put_stripes
  in
  let lineage =
    if config.Config.provenance then Some (Lineage.create ~stripes:put_stripes)
    else None
  in
  let prov_mask =
    let m = Array.make (Array.length frozen.Program.rule_names) true in
    List.iter
      (fun r -> if r.Rule.rid >= 0 then m.(r.Rule.rid) <- r.Rule.prov)
      (Program.rules frozen.Program.program);
    m
  in
  let probe_ok =
    Array.init nt (fun i ->
        indexable.(i) && (not no_delta.(i)) && not no_gamma.(i))
  in
  let rule_sort_pos =
    (* Resolve each rule's declared hash-join key ([Spec.rd_prefix] of
       its first positive read, when every entry is a plain [Field]) to
       trigger-field positions once, at freeze time. *)
    let arr = Array.make (Array.length frozen.Program.rule_names) None in
    List.iter
      (fun r ->
        if r.Rule.rid >= 0 then
          arr.(r.Rule.rid) <-
            List.find_map
              (fun rd ->
                match (rd.Spec.rd_kind, rd.Spec.rd_prefix) with
                | Spec.Positive, (_ :: _ as pfx) -> (
                    try
                      Some
                        (Array.of_list
                           (List.map
                              (function
                                | Spec.Field f ->
                                    Schema.field_pos r.Rule.trigger f
                                | _ -> raise Exit)
                              pfx))
                    with Exit | Schema.Schema_error _ -> None)
                | _ -> None)
              r.Rule.reads)
      (Program.rules frozen.Program.program);
    arr
  in
  let st = {
    frozen;
    config;
    order;
    delta =
      Delta.create
        ~mode:(Config.effective_mode config)
        ~nlits:frozen.Program.nlits ();
    gamma;
    no_delta;
    no_gamma;
    const_ts;
    stats =
      Table_stats.create
        (Array.to_list (Array.map (fun s -> s.Schema.name) tables));
    pool =
      (if config.Config.threads > 1 then
         Some
           (Jstar_sched.Pool.create ~num_workers:config.Config.threads
              ~tracer:obs ())
       else None);
    out_buf = Jstar_cds.Treiber_stack.create ();
    outputs = ref [];
    outputs_count = ref 0;
    put_bufs =
      Array.init put_buf_count (fun _ ->
          {
            pb_mutex = Mutex.create ();
            pb_tuples = [||];
            pb_ts = [||];
            pb_len = 0;
          });
    put_stripe_mask = put_stripes - 1;
    shard;
    current_ts = ref None;
    processed = ref 0;
    phases = { t_extract = 0.0; t_gamma = 0.0; t_rules = 0.0 };
    agg;
    advisor;
    obs;
    metrics;
    trace_spans = Jstar_obs.Tracer.spans_on obs;
    counters_on = Jstar_obs.Tracer.counters_on obs;
    trace_rule_fire = Jstar_obs.Tracer.enabled obs Jstar_obs.Kind.rule_fire;
    h_rule_latency =
      Jstar_obs.Metrics.histogram metrics ~name:"engine.rule_fire_latency_s";
    h_class_width =
      Jstar_obs.Metrics.histogram metrics ~name:"engine.class_width";
    lineage;
    prov_mask;
    prov_on = lineage <> None;
    audit_on = config.Config.audit_causality;
    prov_or_audit = lineage <> None || config.Config.audit_causality;
    digest_on = config.Config.digest;
    seq_digest = Fingerprint.create ();
    step_no = ref 0;
    batch_on = config.Config.batch_fire;
    probe_ok;
    rule_sort_pos;
    scratch_mutex = Mutex.create ();
    scratch_free = ref [];
    trace_batch_fire = Jstar_obs.Tracer.enabled obs Jstar_obs.Kind.batch_fire;
    h_batch_width =
      Jstar_obs.Metrics.histogram metrics ~name:"engine.batch_width";
    profiler =
      (if config.Config.profile then
         Some
           (Jstar_obs.Profiler.create ~workers:config.Config.threads
              ~rules:frozen.Program.rule_names
              ~tables:(Array.map (fun s -> s.Schema.name) tables)
              ())
       else None);
    journal = Jstar_obs.Journal.create ();
    last_violation = ref None;
  }
  in
  (* Causal stamping observer: every mailbox post emits the send half
     of a flow pair on the producing domain's ring, bound to the recv
     half (emitted by the barrier drain) by the message's stamp. *)
  (match st.shard with
  | Some sh ->
      Shard.set_on_post sh (fun ~src:_ ~dest ~seq ~len:_ ->
          if st.trace_spans then
            Jstar_obs.Tracer.flow_send st.obs
              ~arg:(Jstar_obs.Tracer.shard_arg ~shard:dest ~seq)
              Jstar_obs.Kind.shard_msg)
  | None -> ());
  (* Pull-based registry sources: closures read live engine state only
     when a snapshot is taken, so registration costs nothing per put. *)
  Jstar_obs.Metrics.register_gauge metrics ~name:"delta.size" (fun () ->
      Jstar_obs.Metrics.Int
        (match st.shard with
        | Some sh -> Shard.size sh
        | None -> Delta.size st.delta));
  Jstar_obs.Metrics.register_gauge metrics ~name:"delta.depth" (fun () ->
      Jstar_obs.Metrics.Int
        (match st.shard with
        | Some sh -> Shard.depth sh
        | None -> Delta.depth st.delta));
  Jstar_obs.Metrics.register_gauge metrics ~name:"engine.put_stripes"
    (fun () -> Jstar_obs.Metrics.Int (st.put_stripe_mask + 1));
  (match st.shard with
  | Some sh ->
      let n = Shard.count sh in
      Jstar_obs.Metrics.register_gauge metrics ~name:"shard.count" (fun () ->
          Jstar_obs.Metrics.Int n);
      Jstar_obs.Metrics.register_gauge metrics ~name:"shard.mailbox_backlog"
        (fun () -> Jstar_obs.Metrics.Int (Shard.backlog_total sh));
      Jstar_obs.Metrics.register_counter metrics ~name:"shard.msgs_posted"
        (fun () -> Shard.msgs_posted sh);
      Jstar_obs.Metrics.register_counter metrics ~name:"shard.msgs_cross"
        (fun () -> Shard.msgs_cross sh);
      Jstar_obs.Metrics.register_counter metrics ~name:"shard.tuples_shipped"
        (fun () -> Shard.tuples_shipped sh);
      Jstar_obs.Metrics.register_counter metrics ~name:"shard.tuples_cross"
        (fun () -> Shard.tuples_cross sh);
      for k = 0 to n - 1 do
        Jstar_obs.Metrics.register_gauge metrics
          ~name:(Printf.sprintf "shard.%d.delta_size" k)
          (fun () -> Jstar_obs.Metrics.Int (Delta.size (Shard.delta sh k)));
        Jstar_obs.Metrics.register_gauge metrics
          ~name:(Printf.sprintf "shard.%d.mailbox_backlog" k)
          (fun () -> Jstar_obs.Metrics.Int (Shard.backlogs sh).(k));
        Jstar_obs.Metrics.register_counter metrics
          ~name:(Printf.sprintf "shard.%d.msgs_posted" k)
          (fun () -> Shard.msgs_posted_to sh k)
      done
  | None -> ());
  Jstar_obs.Metrics.register_gauge metrics ~name:"engine.put_buf_fill"
    (fun () ->
      Jstar_obs.Metrics.Int
        (Array.fold_left (fun acc b -> acc + b.pb_len) 0 st.put_bufs));
  Jstar_obs.Metrics.register_gauge metrics ~name:"engine.put_flush_threshold"
    (fun () -> Jstar_obs.Metrics.Int scratch_flush_threshold);
  Array.iteri
    (fun id s ->
      let table = s.Schema.name in
      let c = Table_stats.counters st.stats id in
      let reg field counter =
        Jstar_obs.Metrics.register_counter metrics
          ~name:(String.concat "." [ "table"; table; field ])
          (fun () -> Table_stats.read counter)
      in
      reg "puts" c.Table_stats.puts;
      reg "delta_inserts" c.Table_stats.delta_inserts;
      reg "delta_dups" c.Table_stats.delta_dups;
      reg "gamma_inserts" c.Table_stats.gamma_inserts;
      reg "gamma_dups" c.Table_stats.gamma_dups;
      reg "triggers" c.Table_stats.triggers;
      reg "queries" c.Table_stats.queries;
      if not st.no_gamma.(id) then
        Jstar_obs.Metrics.register_gauge metrics
          ~name:(String.concat "." [ "gamma"; table; "size" ])
          (fun () -> Jstar_obs.Metrics.Int (st.gamma.(id).Store.size ())))
    tables;
  (match st.agg with
  | Some agg ->
      Jstar_obs.Metrics.register_gauge metrics ~name:"agg.entries" (fun () ->
          Jstar_obs.Metrics.Int (Agg_cache.entries_count agg))
  | None -> ());
  (match st.advisor with
  | Some adv ->
      Jstar_obs.Metrics.register_counter metrics ~name:"advisor.promotions"
        (fun () -> Advisor.promotions_total adv);
      Jstar_obs.Metrics.register_counter metrics ~name:"advisor.demotions"
        (fun () -> Advisor.demotions_total adv);
      Array.iteri
        (fun id s ->
          if Option.is_some handles.(id) then
            Jstar_obs.Metrics.register_gauge metrics
              ~name:(String.concat "." [ "advisor"; s.Schema.name; "indexes" ])
              (fun () ->
                Jstar_obs.Metrics.Int (List.length (Advisor.index_lens adv id))))
        tables
  | None -> ());
  (match st.lineage with
  | Some l ->
      Jstar_obs.Metrics.register_gauge metrics ~name:"prov.tuples" (fun () ->
          Jstar_obs.Metrics.Int (Lineage.tuples_tracked l));
      Jstar_obs.Metrics.register_gauge metrics ~name:"prov.records" (fun () ->
          Jstar_obs.Metrics.Int (Lineage.records_merged l))
  | None -> ());
  if st.digest_on then begin
    (* 63-bit lanes, emitted as two Int gauges per digest.  Gamma lanes
       rescan the stores, so reading them is a snapshot-time cost only. *)
    let gamma_lanes () =
      let d = Fingerprint.create () in
      Array.iteri
        (fun id _ ->
          if not st.no_gamma.(id) then
            st.gamma.(id).Store.iter (fun t -> Fingerprint.add_tuple d t))
        st.gamma;
      Fingerprint.lanes d
    in
    let reg name f =
      Jstar_obs.Metrics.register_gauge metrics ~name (fun () ->
          Jstar_obs.Metrics.Int (f ()))
    in
    let output_lanes () =
      let d = Fingerprint.create () in
      List.iter (Fingerprint.mix_string d) (List.rev !(st.outputs));
      Fingerprint.lanes d
    in
    reg "digest.gamma.lo" (fun () -> fst (gamma_lanes ()));
    reg "digest.gamma.hi" (fun () -> snd (gamma_lanes ()));
    reg "digest.classes.lo" (fun () -> fst (Fingerprint.lanes st.seq_digest));
    reg "digest.classes.hi" (fun () -> snd (Fingerprint.lanes st.seq_digest));
    reg "digest.outputs.lo" (fun () -> fst (output_lanes ()));
    reg "digest.outputs.hi" (fun () -> snd (output_lanes ()))
  end;
  (* Scheduler lanes whenever a pool exists: owner-written counters,
     non-deterministic but monotone.  Utilization/GC lanes need the
     profiler's barrier folds. *)
  (match st.pool with
  | Some pool ->
      let reg name f =
        Jstar_obs.Metrics.register_counter metrics ~name (fun () ->
            f (Jstar_sched.Pool.stats pool))
      in
      reg "sched.tasks" (fun s -> s.Jstar_sched.Pool.tasks);
      reg "sched.steals" (fun s -> s.Jstar_sched.Pool.steals);
      reg "sched.parks" (fun s -> s.Jstar_sched.Pool.parks);
      Jstar_obs.Metrics.register_gauge metrics ~name:"sched.idle_s" (fun () ->
          Jstar_obs.Metrics.Float
            (float_of_int (Jstar_sched.Pool.stats pool).Jstar_sched.Pool.idle_ns
            *. 1e-9))
  | None -> ());
  Jstar_obs.Metrics.register_counter metrics ~name:"journal.recorded"
    (fun () -> Jstar_obs.Journal.recorded st.journal);
  Jstar_obs.Metrics.register_counter metrics ~name:"journal.dropped"
    (fun () -> Jstar_obs.Journal.dropped st.journal);
  (match st.profiler with
  | Some p ->
      Jstar_obs.Metrics.register_gauge metrics ~name:"profiler.steps" (fun () ->
          Jstar_obs.Metrics.Int (Jstar_obs.Profiler.steps p));
      Jstar_obs.Metrics.register_gauge metrics ~name:"sched.utilization"
        (fun () ->
          Jstar_obs.Metrics.Float
            (Option.value ~default:1.0 (Jstar_obs.Profiler.utilization p)));
      Jstar_obs.Metrics.register_gauge metrics ~name:"gc.alloc_words" (fun () ->
          Jstar_obs.Metrics.Float (Jstar_obs.Profiler.gc p).Jstar_obs.Profiler.pg_alloc_words);
      Jstar_obs.Metrics.register_gauge metrics ~name:"gc.minor_collections"
        (fun () ->
          Jstar_obs.Metrics.Int (Jstar_obs.Profiler.gc p).Jstar_obs.Profiler.pg_minor);
      Jstar_obs.Metrics.register_gauge metrics ~name:"gc.major_collections"
        (fun () ->
          Jstar_obs.Metrics.Int (Jstar_obs.Profiler.gc p).Jstar_obs.Profiler.pg_major)
  | None -> ());
  st

(* ------------------------------------------------------------------ *)
(* Put routing and rule firing                                         *)

let timestamp_of st id tuple =
  match st.const_ts.(id) with
  | Some ts -> ts
  | None -> Timestamp.of_tuple st.order tuple

(* Lineage capture: one candidate per put, accepted or not — the put
   multiset is schedule-independent, so recording before routing keeps
   the candidate set (and hence the merged minimum) deterministic.
   Rules declared [~provenance:false] skip the record entirely (their
   puts stay untracked); whether a rule is masked is a static program
   property, so the candidate set stays deterministic. *)
let record_lineage st l tuple =
  let fr = Prov_frame.get () in
  let rid = fr.Prov_frame.rule in
  if rid < 0 || st.prov_mask.(rid) then begin
    let parents =
      match (fr.Prov_frame.bound, fr.Prov_frame.past) with
      | [], [] -> [||]
      | [ t ], [] -> [| t |]
      | bound, [] -> Array.of_list (List.rev bound) (* trigger first *)
      | bound, past ->
          (* A put after a positive scan completed still depends on the
             tuples that scan bound (PR-4 recorded only the trigger
             here).  [past] arrives in store-visit order, which is
             schedule-dependent for hash stores — sort and dedup so the
             parent array is a function of the visited *set*, and drop
             tuples already in [bound] (a parent once is a parent). *)
          let past = List.sort_uniq Tuple.fast_compare past in
          let past =
            List.filter
              (fun p -> not (List.exists (Tuple.equal p) bound))
              past
          in
          Array.of_list (List.rev_append bound past)
          (* = List.rev bound @ past: trigger first, then completed
             scans' bindings in tuple order *)
    in
    Lineage.record l ~rule:rid ~step:!(st.step_no) ~parents tuple
  end

let audit_fail st ?(tuples = []) msg =
  Jstar_obs.Tracer.instant st.obs Jstar_obs.Kind.audit;
  (* Capture before raising: the exception unwinds through the firing
     machinery, but the flight recorder needs the offending tuples to
     build explain trees for the bundle.  Merge the lineage arenas too —
     the violating put's record is still domain-local (merges normally
     run at step barriers this raise will never reach), and [merge] is
     arena-mutex-safe against concurrent recording while no barrier
     merge can be running during a firing. *)
  (match st.lineage with Some l -> Lineage.merge l | None -> ());
  st.last_violation := Some (msg, tuples);
  Jstar_obs.Journal.error st.journal ~comp:"engine"
    ~event:"causality-violation"
    [
      ("message", Jstar_obs.Json.Str msg);
      ("step", Jstar_obs.Json.Num (float_of_int !(st.step_no)));
      ( "tuples",
        Jstar_obs.Json.Arr
          (List.map
             (fun t -> Jstar_obs.Json.Str (Fmt.str "%a" Tuple.pp t))
             tuples) );
    ];
  raise (Causality_violation msg)

(* The auditor's put-side check: relative to the *trigger's* timestamp
   (the frame), which is later than the engine's class timestamp inside
   -noDelta chains — exactly where [runtime_causality_check]'s
   class-level test is too lax. *)
let audit_put st tuple ts =
  let fr = Prov_frame.get () in
  match fr.Prov_frame.now with
  | Some now when not (Timestamp.leq now ts) ->
      audit_fail st ~tuples:[ tuple ]
        (Fmt.str "audit: rule %s at %a put %a into the past (%a)"
           (Program.rule_name st.frozen fr.Prov_frame.rule)
           Timestamp.pp now Tuple.pp tuple Timestamp.pp ts)
  | _ -> ()

(* The auditor's read-side check, run per visited tuple: positive
   queries may see [<= T]; inside a strict ([Query] negative/aggregate)
   scope the law demands [< T]. *)
let audit_visit st fr tuple =
  match fr.Prov_frame.now with
  | None -> ()
  | Some now ->
      let ts = timestamp_of st (Tuple.schema tuple).Schema.id tuple in
      let strict = fr.Prov_frame.strict > 0 in
      let ok = if strict then Timestamp.lt ts now else Timestamp.leq ts now in
      if not ok then
        audit_fail st ~tuples:[ tuple ]
          (Fmt.str "audit: rule %s at %a %s query visited %a at %a%s"
             (Program.rule_name st.frozen fr.Prov_frame.rule)
             Timestamp.pp now
             (if strict then "negative/aggregate" else "positive")
             Tuple.pp tuple Timestamp.pp ts
             (if strict then " (must be strictly earlier)" else ""))

let rec route_put st ctx tuple =
  let schema = Tuple.schema tuple in
  let id = schema.Schema.id in
  let c = Table_stats.counters st.stats id in
  Table_stats.incr c.Table_stats.puts;
  let ts = timestamp_of st id tuple in
  (match st.lineage with
  | Some l -> record_lineage st l tuple
  | None -> ());
  if st.audit_on then audit_put st tuple ts;
  if st.config.Config.runtime_causality_check then
    (match !(st.current_ts) with
    | Some now when not (Timestamp.leq now ts) ->
        audit_fail st ~tuples:[ tuple ]
          (Fmt.str "rule at %a put %a into the past (%a)" Timestamp.pp now
             Tuple.pp tuple Timestamp.pp ts)
    | _ -> ());
  if st.no_delta.(id) then (
    (* §5.1: straight to Gamma, fire immediately in this task. *)
    if st.gamma.(id).Store.insert tuple then (
      Table_stats.incr c.Table_stats.gamma_inserts;
      fire_rules st ctx tuple)
    else Table_stats.incr c.Table_stats.gamma_dups)
  else if st.gamma.(id).Store.mem tuple then
    (* Already processed: set semantics drop. *)
    Table_stats.incr c.Table_stats.gamma_dups
  else
    match st.shard with
    | Some sh ->
        (* Sharded mode defers every Delta-bound put, [put_batching] or
           not: the (stripe, owner) buffer ships to the owner's mailbox
           as one message at the barrier flush.  The [mem] precheck
           stays valid — Gamma of a Delta-bound table only changes at
           Phase A. *)
        let stripe = (Domain.self () :> int) land st.put_stripe_mask in
        put_buf_push
          st.put_bufs.((stripe * Shard.count sh) + Shard.owner_of sh tuple)
          tuple ts
    | None ->
        if st.config.Config.put_batching then
          (* Defer to the barrier flush.  Gamma of a Delta-bound table
             only changes at Phase A, so the [mem] precheck above cannot
             go stale between here and the flush. *)
          put_buf_push
            st.put_bufs.((Domain.self () :> int) land st.put_stripe_mask)
            tuple ts
        else if Delta.insert st.delta tuple ts then
          Table_stats.incr c.Table_stats.delta_inserts
        else Table_stats.incr c.Table_stats.delta_dups

and flush_puts st =
  (* Drain the striped put buffers into Delta in one sorted batch.
     Runs only at barriers (after initial puts, at the end of each
     step), never concurrently with rule tasks.  Sharded mode replaces
     the direct Delta flush with the watermark exchange: every
     (stripe, shard) buffer ships as one mailbox message, then each
     owner drains its own mailbox into its own sequential Delta — one
     task per shard, no cross-domain contention on the trees. *)
  match st.shard with
  | Some sh ->
      let flush_t0 =
        if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0
      in
      let pending =
        if st.trace_spans then
          Array.fold_left (fun acc b -> acc + b.pb_len) 0 st.put_bufs
        else 0
      in
      let n = Shard.count sh in
      Array.iteri
        (fun idx b ->
          if b.pb_len > 0 then begin
            (* The message takes ownership of fresh copies; the buffer
               keeps its capacity for the next step, as in the
               unsharded flush. *)
            Shard.post sh ~from:(-1) ~dest:(idx mod n)
              (Array.sub b.pb_tuples 0 b.pb_len)
              (Array.sub b.pb_ts 0 b.pb_len)
              b.pb_len;
            b.pb_len <- 0
          end)
        st.put_bufs;
      (* All producers have posted (Phase B is over — this runs at the
         barrier), so one drain round reaches quiescence: draining only
         inserts into the owner's Delta, never posts. *)
      let ntab = Array.length st.gamma in
      let drain_one k =
        let d0 = if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0 in
        let delta = Shard.delta sh k in
        let ins = Array.make ntab 0 and dup = Array.make ntab 0 in
        let any = ref false and nmsgs = ref 0 in
        Shard.drain sh k ~f:(fun m ->
            any := true;
            incr nmsgs;
            (* the recv half of the causal flow pair, on the draining
               domain's ring; the exporter re-routes it onto shard [k]'s
               named track and binds it to the send by the stamp *)
            if st.trace_spans then
              Jstar_obs.Tracer.flow_recv st.obs
                ~arg:(Jstar_obs.Tracer.shard_arg ~shard:k ~seq:m.Shard.m_seq)
                Jstar_obs.Kind.shard_msg;
            let res =
              Delta.insert_batch delta m.Shard.m_tuples m.Shard.m_ts
                m.Shard.m_len
            in
            for i = 0 to m.Shard.m_len - 1 do
              let id = (Tuple.schema m.Shard.m_tuples.(i)).Schema.id in
              if res.(i) then ins.(id) <- ins.(id) + 1
              else dup.(id) <- dup.(id) + 1
            done);
        if !any then begin
          for id = 0 to ntab - 1 do
            if ins.(id) > 0 || dup.(id) > 0 then begin
              let c = Table_stats.counters st.stats id in
              Table_stats.add c.Table_stats.delta_inserts ins.(id);
              Table_stats.add c.Table_stats.delta_dups dup.(id)
            end
          done;
          if st.trace_spans then
            Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.shard_drain
              ~arg:(Jstar_obs.Tracer.shard_arg ~shard:k ~seq:!nmsgs)
              ~ts:d0
              ~dur:(Jstar_obs.Monotonic.now_ns () - d0)
        end
      in
      (match st.pool with
      | Some pool when n > 1 ->
          Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:0 ~hi:n
            drain_one
      | _ ->
          for k = 0 to n - 1 do
            drain_one k
          done);
      assert (Shard.quiesced sh);
      Jstar_obs.Journal.debug st.journal ~comp:"shard" ~event:"watermark"
        [
          ("step", Jstar_obs.Json.Num (float_of_int !(st.step_no)));
          ( "msgs_posted",
            Jstar_obs.Json.Num (float_of_int (Shard.msgs_posted sh)) );
        ];
      if st.trace_spans then
        Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.barrier_flush
          ~arg:pending ~ts:flush_t0
          ~dur:(Jstar_obs.Monotonic.now_ns () - flush_t0)
  | None ->
  if st.config.Config.put_batching then begin
    (* Stripes hold disjoint items and [Delta.insert_batch] is safe
       under concurrent insertion, so each stripe can flush as its own
       task; which copy of a cross-stripe duplicate wins is then racy,
       but the copies are equal tuples, so nothing observable changes.
       Stats are aggregated per table first — two atomic ops per stripe
       and table instead of one per item. *)
    let flush_t0 = if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0 in
    let pending =
      if st.trace_spans then
        Array.fold_left (fun acc b -> acc + b.pb_len) 0 st.put_bufs
      else 0
    in
    let ntab = Array.length st.gamma in
    let flush_stripe b =
      if b.pb_len > 0 then begin
        let n = b.pb_len in
        let res = Delta.insert_batch st.delta b.pb_tuples b.pb_ts n in
        let ins = Array.make ntab 0 and dup = Array.make ntab 0 in
        for i = 0 to n - 1 do
          let id = (Tuple.schema b.pb_tuples.(i)).Schema.id in
          if res.(i) then ins.(id) <- ins.(id) + 1
          else dup.(id) <- dup.(id) + 1
        done;
        b.pb_len <- 0;
        for id = 0 to ntab - 1 do
          let c = Table_stats.counters st.stats id in
          Table_stats.add c.Table_stats.delta_inserts ins.(id);
          Table_stats.add c.Table_stats.delta_dups dup.(id)
        done
      end
    in
    (match st.pool with
    | Some pool ->
        Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:0
          ~hi:(Array.length st.put_bufs) (fun s ->
            flush_stripe st.put_bufs.(s))
    | None -> Array.iter flush_stripe st.put_bufs);
    if st.trace_spans then
      Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.barrier_flush
        ~arg:pending ~ts:flush_t0
        ~dur:(Jstar_obs.Monotonic.now_ns () - flush_t0)
  end

and fire_rules st ctx tuple =
  let id = (Tuple.schema tuple).Schema.id in
  match st.frozen.Program.rules_by_trigger.(id) with
  | [] -> ()
  | rules ->
      let c = Table_stats.counters st.stats id in
      let t0 = if st.counters_on then Jstar_obs.Monotonic.now_ns () else 0 in
      (if st.prov_or_audit then begin
         (* Save/restore the domain's firing frame rather than just
            setting it: -noDelta puts fire rules synchronously inside
            the putting task, and a blocking fork/join join can run a
            stolen firing — both nest on one domain. *)
         let fr = Prov_frame.get () in
         let s_rule = fr.Prov_frame.rule
         and s_now = fr.Prov_frame.now
         and s_bound = fr.Prov_frame.bound
         and s_past = fr.Prov_frame.past in
         let now = Some (timestamp_of st id tuple) in
         let restore () =
           fr.Prov_frame.rule <- s_rule;
           fr.Prov_frame.now <- s_now;
           fr.Prov_frame.bound <- s_bound;
           fr.Prov_frame.past <- s_past
         in
         try
           List.iter
             (fun r ->
               Table_stats.incr c.Table_stats.triggers;
               fr.Prov_frame.rule <- r.Rule.rid;
               fr.Prov_frame.now <- now;
               fr.Prov_frame.bound <- [ tuple ];
               fr.Prov_frame.past <- [];
               match st.profiler with
               | Some p ->
                   let p0 = Jstar_obs.Profiler.fire_start p in
                   r.Rule.body ctx tuple;
                   Jstar_obs.Profiler.fire_stop p ~rule:r.Rule.rid p0
               | None -> r.Rule.body ctx tuple)
             rules;
           restore ()
         with e ->
           restore ();
           raise e
       end
       else
         match st.profiler with
         | Some p ->
             List.iter
               (fun r ->
                 Table_stats.incr c.Table_stats.triggers;
                 let p0 = Jstar_obs.Profiler.fire_start p in
                 r.Rule.body ctx tuple;
                 Jstar_obs.Profiler.fire_stop p ~rule:r.Rule.rid p0)
               rules
         | None ->
             List.iter
               (fun r ->
                 Table_stats.incr c.Table_stats.triggers;
                 r.Rule.body ctx tuple)
               rules);
      if st.counters_on then begin
        let dur = Jstar_obs.Monotonic.now_ns () - t0 in
        Jstar_obs.Metrics.observe st.h_rule_latency (float_of_int dur *. 1e-9);
        if st.trace_rule_fire then
          Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.rule_fire ~arg:id
            ~ts:t0 ~dur
      end

(* Positive-scan wrapping shared by the per-tuple context and the
   batched cursor: audit each visited tuple, bind it for the duration
   of the body [f], and — once the scan has completed — retain the
   visited set in [fr.past] so later puts of the same firing still see
   the scan's bindings as parents.  Strict (negative/aggregate) scans
   are not retained: their contribution is the aggregate, not the
   tuples, and the visited set would be unbounded. *)
let scan_wrapped st iter f =
  let fr = Prov_frame.get () in
  if fr.Prov_frame.rule = Prov_frame.seed_rule then
    (* outside any firing (inspection after a run) *)
    iter f
  else begin
    let retain = st.prov_on && fr.Prov_frame.strict = 0 in
    let visited = ref [] in
    iter (fun t ->
        if st.audit_on then audit_visit st fr t;
        if st.prov_on then begin
          (* The visited tuple is a binding of this body literal for
             the duration of [f]: any put inside records it as a
             parent. *)
          let saved = fr.Prov_frame.bound in
          fr.Prov_frame.bound <- t :: saved;
          match f t with
          | () ->
              fr.Prov_frame.bound <- saved;
              if retain then visited := t :: !visited
          | exception e ->
              fr.Prov_frame.bound <- saved;
              raise e
        end
        else f t);
    match !visited with
    | [] -> ()
    | vs -> fr.Prov_frame.past <- List.rev_append vs fr.Prov_frame.past
  end

(* ------------------------------------------------------------------ *)
(* Batched rule firing (Config.batch_fire): Phase B as vectorized
   relational algebra.  The accepted class arrives grouped by table;
   each (rule, table) run is optionally sorted by the rule's declared
   hash-join key and split into chunks, and each chunk task fires the
   rule body over its triggers with every fixed cost hoisted out of the
   per-tuple loop: one firing context, one scratch arena for pending
   puts (no stripe mutex), one probe cursor that turns a run of
   equal-key lookups into a single bucket probe, one frame
   save/restore.  Within-class firing order is free under the law of
   causality, so none of this changes what any rule observes. *)

let acquire_scratch st =
  Mutex.lock st.scratch_mutex;
  let sc =
    match !(st.scratch_free) with
    | sc :: rest ->
        st.scratch_free := rest;
        sc
    | [] ->
        {
          sc_tuples = [||];
          sc_ts = [||];
          sc_len = 0;
          sc_seen = Tuple.Dset.create 64;
          sc_dups = 0;
        }
  in
  Mutex.unlock st.scratch_mutex;
  sc

let release_scratch st sc =
  Mutex.lock st.scratch_mutex;
  st.scratch_free := sc :: !(st.scratch_free);
  Mutex.unlock st.scratch_mutex

let flush_scratch st ~home sc =
  if sc.sc_len > 0 then begin
    match st.shard with
    | Some sh ->
        (* Sharded: the arena repartitions by owner and ships one
           message per destination — tuples owned by [home] loop back
           through its own mailbox (cheap, and it keeps the
           single-owner invariant on the trees unconditional).  Stats
           are counted at the drain, where the insert outcome is
           known. *)
        Shard.post_partitioned sh ~from:home sc.sc_tuples sc.sc_ts sc.sc_len;
        sc.sc_len <- 0
    | None ->
    (* [Delta.insert_batch] is safe under concurrent insertion, so
       chunk tasks flush without coordination; stats are aggregated per
       table first, as in the stripe flush. *)
    let n = sc.sc_len in
    let res = Delta.insert_batch st.delta sc.sc_tuples sc.sc_ts n in
    let ntab = Array.length st.gamma in
    let ins = Array.make ntab 0 and dup = Array.make ntab 0 in
    for i = 0 to n - 1 do
      let id = (Tuple.schema sc.sc_tuples.(i)).Schema.id in
      if res.(i) then ins.(id) <- ins.(id) + 1 else dup.(id) <- dup.(id) + 1
    done;
    sc.sc_len <- 0;
    for id = 0 to ntab - 1 do
      if ins.(id) > 0 || dup.(id) > 0 then begin
        let c = Table_stats.counters st.stats id in
        Table_stats.add c.Table_stats.delta_inserts ins.(id);
        Table_stats.add c.Table_stats.delta_dups dup.(id)
      end
    done
  end

(* [route_put] for the batched path: identical head (stats, timestamp,
   lineage, audit, runtime check, -noDelta immediate fire, Gamma
   dedup), but pending Delta inserts sink into the task-owned scratch
   arena with plain stores instead of a striped mutex push. *)
let route_put_batch st bctx scratch ~home tuple =
  let schema = Tuple.schema tuple in
  let id = schema.Schema.id in
  let c = Table_stats.counters st.stats id in
  Table_stats.incr c.Table_stats.puts;
  let ts = timestamp_of st id tuple in
  (match st.lineage with
  | Some l -> record_lineage st l tuple
  | None -> ());
  if st.audit_on then audit_put st tuple ts;
  if st.config.Config.runtime_causality_check then
    (match !(st.current_ts) with
    | Some now when not (Timestamp.leq now ts) ->
        audit_fail st ~tuples:[ tuple ]
          (Fmt.str "rule at %a put %a into the past (%a)" Timestamp.pp now
             Tuple.pp tuple Timestamp.pp ts)
    | _ -> ());
  if st.no_delta.(id) then (
    if st.gamma.(id).Store.insert tuple then (
      Table_stats.incr c.Table_stats.gamma_inserts;
      fire_rules st bctx tuple)
    else Table_stats.incr c.Table_stats.gamma_dups)
  else if st.gamma.(id).Store.mem tuple then
    Table_stats.incr c.Table_stats.gamma_dups
  else if not (Tuple.Dset.add_if_absent scratch.sc_seen tuple) then begin
    (* Duplicate of a put already pending from this task: drop it here
       — same outcome and counter totals as the per-tuple path, which
       would discover the duplicate inside [Delta.insert]. *)
    Table_stats.incr c.Table_stats.delta_dups;
    scratch.sc_dups <- scratch.sc_dups + 1
  end
  else begin
    scratch_push scratch tuple ts;
    if scratch.sc_len >= scratch_flush_threshold then
      flush_scratch st ~home scratch
  end

(* Firing context for one batched chunk task.  Positive queries go
   through a per-table probe cursor: the sorted chunk probes equal join
   keys back to back, so a run of lookups against a hash-indexed table
   costs one bucket probe.  One cursor entry per table (not a single
   shared slot) so a rule alternating probes across two tables — a
   positive join on A plus a negative check on B per trigger — keeps
   both cached instead of thrashing one entry.  Only probe-stable
   tables (Gamma grows at Phase-A barriers only, never evicts —
   [st.probe_ok]) may serve cached items; everything else falls through
   to a plain scan. *)
let make_batch_ctx st base scratch ~home =
  let nt = Array.length st.gamma in
  let cur_prefix : Value.t array option array = Array.make nt None in
  let cur_items : Tuple.t list array = Array.make nt [] in
  let rec bctx =
    {
      Rule.put = (fun tuple -> route_put_batch st bctx scratch ~home tuple);
      iter_prefix =
        (fun schema prefix f ->
          let id = schema.Schema.id in
          let c = Table_stats.counters st.stats id in
          Table_stats.incr c.Table_stats.queries;
          (match st.advisor with
          | Some adv -> Advisor.note_query adv id (Array.length prefix)
          | None -> ());
          let items =
            match cur_prefix.(id) with
            | Some p when Value.equal_arrays prefix p -> Some cur_items.(id)
            | _ ->
                if st.probe_ok.(id) then (
                  match st.gamma.(id).Store.probe_prefix prefix with
                  | Some items ->
                      (* Copy: rule bodies may reuse one prefix buffer
                         across probes, and the cursor must remember
                         the values probed, not alias the live
                         buffer. *)
                      cur_prefix.(id) <- Some (Array.copy prefix);
                      cur_items.(id) <- items;
                      Some items
                  | None -> None)
                else None
          in
          match items with
          | Some items ->
              let iter g = List.iter g items in
              if st.prov_or_audit then scan_wrapped st iter f else iter f
          | None ->
              if st.prov_or_audit then
                scan_wrapped st (st.gamma.(id).Store.iter_prefix prefix) f
              else st.gamma.(id).Store.iter_prefix prefix f);
      store_of = base.Rule.store_of;
      println = base.Rule.println;
      class_ts = base.Rule.class_ts;
      par_iter = base.Rule.par_iter;
      agg = base.Rule.agg;
    }
  in
  bctx

(* Chunk sort order: the rule's declared join-key fields of the trigger,
   tie-broken by total tuple order so the sort is deterministic. *)
let key_cmp pos a b =
  let fa = Tuple.fields a and fb = Tuple.fields b in
  let rec go i =
    if i >= Array.length pos then Tuple.fast_compare a b
    else
      let c = Value.compare fa.(pos.(i)) fb.(pos.(i)) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Fire rule [r] for [chunk.(lo..hi-1)] as one task.  [home] is the
   task's owner shard under sharded execution ([-1] unsharded): scratch
   flushes repartition by owner and ship from [home], so the cross-shard
   message counters attribute traffic to the producing shard. *)
let fire_chunk st base r id ~home chunk lo hi =
  let t0 = if st.trace_batch_fire then Jstar_obs.Monotonic.now_ns () else 0 in
  (* One profiler frame for the whole chunk, credited [hi - lo] firings:
     batching amortises the bracket the same way it amortises every
     other per-firing fixed cost.  Nested immediate (-noDelta) firings
     inside the chunk open their own frames, so they are excluded from
     this rule's self time as usual. *)
  let p0 =
    match st.profiler with
    | Some p -> Jstar_obs.Profiler.fire_start p
    | None -> 0
  in
  let scratch = acquire_scratch st in
  let bctx = make_batch_ctx st base scratch ~home in
  (if st.prov_or_audit then begin
     let fr = Prov_frame.get () in
     let s_rule = fr.Prov_frame.rule
     and s_now = fr.Prov_frame.now
     and s_bound = fr.Prov_frame.bound
     and s_past = fr.Prov_frame.past in
     let restore () =
       fr.Prov_frame.rule <- s_rule;
       fr.Prov_frame.now <- s_now;
       fr.Prov_frame.bound <- s_bound;
       fr.Prov_frame.past <- s_past
     in
     let mk_now =
       match st.const_ts.(id) with
       | Some _ as s -> fun _ -> s
       | None -> fun t -> Some (Timestamp.of_tuple st.order t)
     in
     try
       for i = lo to hi - 1 do
         let t = chunk.(i) in
         fr.Prov_frame.rule <- r.Rule.rid;
         fr.Prov_frame.now <- mk_now t;
         fr.Prov_frame.bound <- [ t ];
         fr.Prov_frame.past <- [];
         r.Rule.body bctx t
       done;
       restore ()
     with e ->
       restore ();
       raise e
   end
   else
     for i = lo to hi - 1 do
       r.Rule.body bctx chunk.(i)
     done);
  flush_scratch st ~home scratch;
  if scratch.sc_dups > 0 then begin
    (match st.shard with
    | Some sh -> Shard.note_deduped sh scratch.sc_dups
    | None -> Delta.note_deduped st.delta scratch.sc_dups);
    scratch.sc_dups <- 0
  end;
  Tuple.Dset.clear scratch.sc_seen;
  release_scratch st scratch;
  (match st.profiler with
  | Some p -> Jstar_obs.Profiler.fire_stop p ~rule:r.Rule.rid ~fires:(hi - lo) p0
  | None -> ());
  if st.trace_batch_fire then
    Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.batch_fire
      ~arg:(hi - lo) ~ts:t0
      ~dur:(Jstar_obs.Monotonic.now_ns () - t0)

(* Phase B over the accepted class, batched: walk the (already grouped)
   class as contiguous per-table runs; for each (rule, run) pair,
   optionally sort a copy of the run by the rule's join key, then fire
   it as coarse chunk tasks. *)
let fire_rules_batch st ctx to_fire =
  let n = Array.length to_fire in
  let lo = ref 0 in
  while !lo < n do
    let id = (Tuple.schema to_fire.(!lo)).Schema.id in
    let hi = ref (!lo + 1) in
    while !hi < n && (Tuple.schema to_fire.(!hi)).Schema.id = id do
      incr hi
    done;
    let rlo = !lo and rhi = !hi in
    (match st.frozen.Program.rules_by_trigger.(id) with
    | [] -> ()
    | rules ->
        let width = rhi - rlo in
        let c = Table_stats.counters st.stats id in
        List.iter
          (fun r ->
            Table_stats.add c.Table_stats.triggers width;
            if st.counters_on then
              Jstar_obs.Metrics.observe st.h_batch_width (float_of_int width);
            let arr, clo, chi =
              match st.rule_sort_pos.(r.Rule.rid) with
              | Some pos when width > 2 ->
                  let copy = Array.sub to_fire rlo width in
                  Array.sort (key_cmp pos) copy;
                  (copy, 0, width)
              | _ -> (to_fire, rlo, rhi)
            in
            let dispatch ~home arr clo chi =
              match st.pool with
              | Some pool when chi - clo > 1 ->
                  let grain = Jstar_sched.Pool.batch_grain pool ~n:width in
                  let nchunks = (chi - clo + grain - 1) / grain in
                  if nchunks <= 1 then fire_chunk st ctx r id ~home arr clo chi
                  else
                    Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:0
                      ~hi:nchunks (fun k ->
                        let tlo = clo + (k * grain) in
                        let thi = min chi (tlo + grain) in
                        fire_chunk st ctx r id ~home arr tlo thi)
              | _ -> fire_chunk st ctx r id ~home arr clo chi
            in
            match st.shard with
            | Some sh when Shard.count sh > 1 ->
                (* Per-(rule, table, shard) tasks: stable-partition the
                   (already join-key-sorted) run by owner shard so each
                   chunk has a home — sorted order survives within each
                   segment, so the probe cursor still sees equal keys
                   back to back. *)
                let nsh = Shard.count sh in
                let starts = Array.make (nsh + 1) 0 in
                for i = clo to chi - 1 do
                  let o = Shard.owner_of sh arr.(i) in
                  starts.(o + 1) <- starts.(o + 1) + 1
                done;
                for k = 0 to nsh - 1 do
                  starts.(k + 1) <- starts.(k) + starts.(k + 1)
                done;
                let part = Array.make width arr.(clo) in
                let fill = Array.copy starts in
                for i = clo to chi - 1 do
                  let o = Shard.owner_of sh arr.(i) in
                  part.(fill.(o)) <- arr.(i);
                  fill.(o) <- fill.(o) + 1
                done;
                (match st.pool with
                | Some pool when width > 1 ->
                    let grain = Jstar_sched.Pool.batch_grain pool ~n:width in
                    let tasks = ref [] in
                    for k = 0 to nsh - 1 do
                      let shi = starts.(k + 1) in
                      let tlo = ref starts.(k) in
                      while !tlo < shi do
                        let thi = min shi (!tlo + grain) in
                        tasks := (k, !tlo, thi) :: !tasks;
                        tlo := thi
                      done
                    done;
                    let tasks = Array.of_list !tasks in
                    if Array.length tasks <= 1 then
                      Array.iter
                        (fun (home, tlo, thi) ->
                          fire_chunk st ctx r id ~home part tlo thi)
                        tasks
                    else
                      Jstar_sched.Forkjoin.parallel_for pool ~grain:1 ~lo:0
                        ~hi:(Array.length tasks) (fun i ->
                          let home, tlo, thi = tasks.(i) in
                          fire_chunk st ctx r id ~home part tlo thi)
                | _ ->
                    for k = 0 to nsh - 1 do
                      if starts.(k + 1) > starts.(k) then
                        fire_chunk st ctx r id ~home:k part starts.(k)
                          starts.(k + 1)
                    done)
            | Some _ -> dispatch ~home:0 arr clo chi
            | None -> dispatch ~home:(-1) arr clo chi)
          rules);
    lo := rhi
  done

let make_ctx st =
  let rec ctx =
    {
      Rule.put = (fun tuple -> route_put st ctx tuple);
      iter_prefix =
        (fun schema prefix f ->
          let id = schema.Schema.id in
          let c = Table_stats.counters st.stats id in
          Table_stats.incr c.Table_stats.queries;
          (match st.advisor with
          | Some adv -> Advisor.note_query adv id (Array.length prefix)
          | None -> ());
          if st.prov_or_audit then
            scan_wrapped st (st.gamma.(id).Store.iter_prefix prefix) f
          else st.gamma.(id).Store.iter_prefix prefix f);
      store_of = (fun schema -> st.gamma.(schema.Schema.id));
      println =
        (fun line ->
          if st.config.Config.print_directly then print_endline line
          else Jstar_cds.Treiber_stack.push st.out_buf line);
      class_ts = (fun () -> !(st.current_ts));
      par_iter =
        (fun lo hi f ->
          match st.pool with
          | Some pool when hi - lo > 1 ->
              let grain =
                Config.resolve_grain st.config
                  ~workers:(Jstar_sched.Pool.size pool) ~n:(hi - lo)
              in
              let f =
                if not st.prov_or_audit then f
                else begin
                  (* Leaves may run on other domains: carry the firing
                     frame (rule, trigger time, bindings so far) to the
                     executing domain for each leaf, restoring whatever
                     firing that domain had in flight. *)
                  let fr = Prov_frame.get () in
                  let rule = fr.Prov_frame.rule
                  and now = fr.Prov_frame.now
                  and bound = fr.Prov_frame.bound
                  and strict = fr.Prov_frame.strict
                  and past = fr.Prov_frame.past in
                  fun i ->
                    let cfr = Prov_frame.get () in
                    let s_rule = cfr.Prov_frame.rule
                    and s_now = cfr.Prov_frame.now
                    and s_bound = cfr.Prov_frame.bound
                    and s_strict = cfr.Prov_frame.strict
                    and s_past = cfr.Prov_frame.past in
                    cfr.Prov_frame.rule <- rule;
                    cfr.Prov_frame.now <- now;
                    cfr.Prov_frame.bound <- bound;
                    cfr.Prov_frame.strict <- strict;
                    cfr.Prov_frame.past <- past;
                    let restore () =
                      cfr.Prov_frame.rule <- s_rule;
                      cfr.Prov_frame.now <- s_now;
                      cfr.Prov_frame.bound <- s_bound;
                      cfr.Prov_frame.strict <- s_strict;
                      cfr.Prov_frame.past <- s_past
                    in
                    (match f i with
                    | () -> restore ()
                    | exception e ->
                        restore ();
                        raise e)
                end
              in
              Jstar_sched.Forkjoin.parallel_for pool ~grain ~lo ~hi f
          | _ ->
              for i = lo to hi - 1 do
                f i
              done);
      agg = st.agg;
    }
  in
  ctx

(* ------------------------------------------------------------------ *)
(* Step execution                                                      *)

let for_range_parallel st n f =
  match st.pool with
  | None ->
      for i = 0 to n - 1 do
        f i
      done
  | Some pool ->
      let grain =
        Config.resolve_grain st.config ~workers:(Jstar_sched.Pool.size pool)
          ~n
      in
      Jstar_sched.Forkjoin.parallel_for pool ~grain ~lo:0 ~hi:n f

(* Deterministic side effects for one class: output-table formatting and
   action handlers run sequentially over the class sorted by tuple
   order. *)
let run_class_effects st ctx tuples =
  let has_effects =
    Array.exists
      (fun t ->
        let id = (Tuple.schema t).Schema.id in
        st.frozen.Program.output_fmt.(id) <> None
        || st.frozen.Program.action_of.(id) <> None)
      tuples
  in
  if has_effects then begin
    let sorted = Array.copy tuples in
    Array.sort Tuple.fast_compare sorted;
    Array.iter
      (fun t ->
        let id = (Tuple.schema t).Schema.id in
        (match st.frozen.Program.output_fmt.(id) with
        | Some fmt -> ctx.Rule.println (fmt t)
        | None -> ());
        match st.frozen.Program.action_of.(id) with
        | Some handler ->
            if st.prov_or_audit then begin
              let fr = Prov_frame.get () in
              let s_rule = fr.Prov_frame.rule
              and s_now = fr.Prov_frame.now
              and s_bound = fr.Prov_frame.bound
              and s_past = fr.Prov_frame.past in
              fr.Prov_frame.rule <- Prov_frame.action_rule;
              fr.Prov_frame.now <- Some (timestamp_of st id t);
              fr.Prov_frame.bound <- [ t ];
              fr.Prov_frame.past <- [];
              let restore () =
                fr.Prov_frame.rule <- s_rule;
                fr.Prov_frame.now <- s_now;
                fr.Prov_frame.bound <- s_bound;
                fr.Prov_frame.past <- s_past
              in
              match handler ctx t with
              | () -> restore ()
              | exception e ->
                  restore ();
                  raise e
            end
            else handler ctx t
        | None -> ())
      sorted
  end

let flush_step_outputs st =
  match Jstar_cds.Treiber_stack.pop_all st.out_buf with
  | [] -> ()
  | lines ->
      (* Sort within the step so the order is schedule-independent. *)
      let lines = List.sort String.compare lines in
      st.outputs := List.rev_append lines !(st.outputs);
      st.outputs_count := !(st.outputs_count) + List.length lines

let now () = Unix.gettimeofday ()

(* Drain the lineage arenas at a barrier (no rule task live). *)
let merge_lineage st =
  match st.lineage with
  | None -> ()
  | Some l ->
      let m0 = if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0 in
      Lineage.merge l;
      if st.trace_spans then
        Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.prov_merge
          ~arg:(Lineage.tuples_tracked l) ~ts:m0
          ~dur:(Jstar_obs.Monotonic.now_ns () - m0)

let run_step st ctx tuples =
  let step_t0 = if st.counters_on then Jstar_obs.Monotonic.now_ns () else 0 in
  let tuples = Array.of_list tuples in
  let n = Array.length tuples in
  st.processed := !(st.processed) + n;
  incr st.step_no;
  if st.digest_on then begin
    (* One class per step: sum the tuples' lanes (commutative — the
       class *set* is schedule-independent, its order is not) and fold
       the sum into the sequence digest in step order. *)
    let lo = ref 0 and hi = ref 0 in
    Array.iter
      (fun t ->
        let l, h = Fingerprint.tuple_lanes t in
        lo := !lo + l;
        hi := !hi + h)
      tuples;
    Fingerprint.mix_seq st.seq_digest ~lo:!lo ~hi:!hi ~n
  end;
  st.current_ts :=
    (if n > 0 then
       Some (timestamp_of st (Tuple.schema tuples.(0)).Schema.id tuples.(0))
     else None);
  (* Phase A: the whole class becomes visible in Gamma. *)
  let gamma_t0 = if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0 in
  let t0 = now () in
  let to_fire =
    if (st.config.Config.put_batching || st.batch_on) && n > 1 then begin
      (* Batched Phase A.  A class usually comes from one table, and
         extraction emits each par-subtree's leaf contiguously, so the
         class is already grouped the way the stores want it: a stable
         partition by table (identity when the class is single-table) is
         enough — no comparator sort. *)
      let first_id = (Tuple.schema tuples.(0)).Schema.id in
      let single = ref true in
      for i = 1 to n - 1 do
        if (Tuple.schema tuples.(i)).Schema.id <> first_id then single := false
      done;
      let grouped =
        if !single then tuples
        else begin
          let by_id : (int, Tuple.t list ref) Hashtbl.t = Hashtbl.create 4 in
          let ids = ref [] in
          for i = n - 1 downto 0 do
            let id = (Tuple.schema tuples.(i)).Schema.id in
            match Hashtbl.find_opt by_id id with
            | Some cell -> cell := tuples.(i) :: !cell
            | None ->
                Hashtbl.replace by_id id (ref [ tuples.(i) ]);
                ids := id :: !ids
          done;
          Array.of_list
            (List.concat_map (fun id -> !(Hashtbl.find by_id id)) !ids)
        end
      in
      let fired = ref [] in
      let lo = ref 0 in
      while !lo < n do
        let id = (Tuple.schema grouped.(!lo)).Schema.id in
        let hi = ref (!lo + 1) in
        while !hi < n && (Tuple.schema grouped.(!hi)).Schema.id = id do
          incr hi
        done;
        let res = st.gamma.(id).Store.insert_batch grouped !lo !hi in
        let c = Table_stats.counters st.stats id in
        Array.iteri
          (fun k inserted ->
            if inserted then begin
              Table_stats.incr c.Table_stats.gamma_inserts;
              fired := grouped.(!lo + k) :: !fired
            end
            else
              (* Raced back into Delta after processing. *)
              Table_stats.incr c.Table_stats.gamma_dups)
          res;
        lo := !hi
      done;
      Array.of_list (List.rev !fired)
    end
    else begin
      let survivors = Array.make n None in
      for_range_parallel st n (fun i ->
          let t = tuples.(i) in
          let id = (Tuple.schema t).Schema.id in
          let c = Table_stats.counters st.stats id in
          if st.gamma.(id).Store.insert t then begin
            Table_stats.incr c.Table_stats.gamma_inserts;
            survivors.(i) <- Some t
          end
          else
            (* Raced back into Delta after processing: set-semantics
               drop. *)
            Table_stats.incr c.Table_stats.gamma_dups);
      Array.of_list (List.filter_map Fun.id (Array.to_list survivors))
    end
  in
  st.phases.t_gamma <- st.phases.t_gamma +. (now () -. t0);
  if st.trace_spans then
    Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.gamma_insert ~arg:n
      ~ts:gamma_t0
      ~dur:(Jstar_obs.Monotonic.now_ns () - gamma_t0);
  (* Still inside the Phase-A barrier (single-threaded): feed every
     newly accepted tuple to the registered aggregate partials, so
     Phase-B reads see partials consistent with the Gamma they query. *)
  (match st.agg with
  | Some agg -> Agg_cache.note_batch agg to_fire (Array.length to_fire)
  | None -> ());
  run_class_effects st ctx tuples;
  (* Phase B: fire all rules of the class in parallel — one task per
     tuple by default, one per (tuple, rule) pair under the §5.2
     [task_per_rule] strategy, or as vectorized (rule, table)-chunk
     tasks under [Config.batch_fire]. *)
  let t1 = now () in
  if st.batch_on && Array.length to_fire > 1 then
    fire_rules_batch st ctx to_fire
  else if st.config.Config.task_per_rule then begin
    let pairs =
      Array.of_list
        (List.concat_map
           (fun t ->
             List.map
               (fun r -> (t, r))
               st.frozen.Program.rules_by_trigger.((Tuple.schema t).Schema.id))
           (Array.to_list to_fire))
    in
    for_range_parallel st (Array.length pairs) (fun i ->
        let t, r = pairs.(i) in
        let id = (Tuple.schema t).Schema.id in
        Table_stats.incr
          (Table_stats.counters st.stats id).Table_stats.triggers;
        let f0 =
          if st.counters_on then Jstar_obs.Monotonic.now_ns () else 0
        in
        let p0 =
          match st.profiler with
          | Some p -> Jstar_obs.Profiler.fire_start p
          | None -> 0
        in
        (if st.prov_or_audit then begin
           let fr = Prov_frame.get () in
           let s_rule = fr.Prov_frame.rule
           and s_now = fr.Prov_frame.now
           and s_bound = fr.Prov_frame.bound
           and s_past = fr.Prov_frame.past in
           fr.Prov_frame.rule <- r.Rule.rid;
           fr.Prov_frame.now <- Some (timestamp_of st id t);
           fr.Prov_frame.bound <- [ t ];
           fr.Prov_frame.past <- [];
           let restore () =
             fr.Prov_frame.rule <- s_rule;
             fr.Prov_frame.now <- s_now;
             fr.Prov_frame.bound <- s_bound;
             fr.Prov_frame.past <- s_past
           in
           match r.Rule.body ctx t with
           | () -> restore ()
           | exception e ->
               restore ();
               raise e
         end
         else r.Rule.body ctx t);
        (match st.profiler with
        | Some p -> Jstar_obs.Profiler.fire_stop p ~rule:r.Rule.rid p0
        | None -> ());
        if st.counters_on then begin
          let dur = Jstar_obs.Monotonic.now_ns () - f0 in
          Jstar_obs.Metrics.observe st.h_rule_latency
            (float_of_int dur *. 1e-9);
          if st.trace_rule_fire then
            Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.rule_fire
              ~arg:id ~ts:f0 ~dur
        end)
  end
  else
    for_range_parallel st (Array.length to_fire) (fun i ->
        fire_rules st ctx to_fire.(i));
  st.phases.t_rules <- st.phases.t_rules +. (now () -. t1);
  (* Barrier: everything the class put becomes pending before the next
     class is extracted. *)
  flush_puts st;
  flush_step_outputs st;
  merge_lineage st;
  (* End-of-step barrier: no rule task is live, so the advisor may
     mutate store index lists.  The histogram it reads is a function of
     the schedule-independent class sequence, so promotion decisions
     replay identically at any thread count. *)
  (match st.advisor with
  | Some adv ->
      let adv_fields table_id prefix_len =
        [
          ( "table",
            Jstar_obs.Json.Str
              st.frozen.Program.tables.(table_id).Schema.name );
          ("prefix_len", Jstar_obs.Json.Num (float_of_int prefix_len));
          ("step", Jstar_obs.Json.Num (float_of_int !(st.step_no)));
        ]
      in
      Advisor.review adv
        ~on_promote:(fun ~table_id ~prefix_len ->
          Jstar_obs.Tracer.instant st.obs ~arg:table_id
            Jstar_obs.Kind.advisor;
          Jstar_obs.Journal.info st.journal ~comp:"advisor" ~event:"promote"
            (adv_fields table_id prefix_len))
        ~on_demote:(fun ~table_id ~prefix_len ->
          Jstar_obs.Tracer.instant st.obs ~arg:table_id
            Jstar_obs.Kind.advisor_demote;
          Jstar_obs.Journal.info st.journal ~comp:"advisor" ~event:"demote"
            (adv_fields table_id prefix_len))
  | None -> ());
  (* Profiler barrier fold: the deterministic Table_stats counters and
     store sizes are re-read here (a handful of striped sums per table),
     so the hot path pays nothing for per-table attribution. *)
  (match st.profiler with
  | Some p ->
      let nt = Array.length st.frozen.Program.tables in
      let puts = Array.make nt 0
      and queries = Array.make nt 0
      and gsize = Array.make nt 0 in
      for id = 0 to nt - 1 do
        let c = Table_stats.counters st.stats id in
        puts.(id) <- Table_stats.read c.Table_stats.puts;
        queries.(id) <- Table_stats.read c.Table_stats.queries;
        gsize.(id) <-
          (if st.no_gamma.(id) then 0 else st.gamma.(id).Store.size ())
      done;
      let sched =
        Option.map
          (fun pool ->
            let s = Jstar_sched.Pool.stats pool in
            {
              Jstar_obs.Profiler.sc_tasks = s.Jstar_sched.Pool.tasks;
              sc_steals = s.Jstar_sched.Pool.steals;
              sc_parks = s.Jstar_sched.Pool.parks;
              sc_idle_ns = s.Jstar_sched.Pool.idle_ns;
            })
          st.pool
      in
      let shards =
        Option.map
          (fun sh ->
            {
              Jstar_obs.Profiler.sh_occupancy = Shard.occupancy sh;
              sh_backlog = Shard.backlogs sh;
              sh_msgs = Shard.msgs_posted sh;
              sh_msgs_cross = Shard.msgs_cross sh;
              sh_tuples = Shard.tuples_shipped sh;
              sh_tuples_cross = Shard.tuples_cross sh;
            })
          st.shard
      in
      Jstar_obs.Profiler.step_barrier p ~puts ~queries ~gamma:gsize ?sched
        ?shards ()
  | None -> ());
  (* Step seal: the step's identity in the journal — Debug severity, so
     a Warn-filtered journal keeps only transitions and violations. *)
  Jstar_obs.Journal.debug st.journal ~comp:"engine" ~event:"step-seal"
    [
      ("step", Jstar_obs.Json.Num (float_of_int !(st.step_no)));
      ("class_width", Jstar_obs.Json.Num (float_of_int n));
      ("processed", Jstar_obs.Json.Num (float_of_int !(st.processed)));
    ];
  (match st.config.Config.step_hook with
  | Some hook -> hook !(st.step_no) st.metrics
  | None -> ());
  if st.counters_on then begin
    Jstar_obs.Metrics.observe st.h_class_width (float_of_int n);
    if st.trace_spans then
      Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.step ~arg:n
        ~ts:step_t0
        ~dur:(Jstar_obs.Monotonic.now_ns () - step_t0)
  end

(* Final digests over Gamma at quiescence (Config.digest). *)
let compute_digest st =
  if not st.digest_on then None
  else begin
    let overall = Fingerprint.create () in
    let d_tables =
      Array.to_list st.frozen.Program.tables
      |> List.filter_map (fun s ->
             let id = s.Schema.id in
             if st.no_gamma.(id) then None
             else begin
               let d = Fingerprint.create () in
               st.gamma.(id).Store.iter (fun t -> Fingerprint.add_tuple d t);
               Fingerprint.add overall d;
               Some (s.Schema.name, Fingerprint.hex d)
             end)
    in
    let d_out = Fingerprint.create () in
    List.iter (Fingerprint.mix_string d_out) (List.rev !(st.outputs));
    Some
      {
        d_gamma = Fingerprint.hex overall;
        d_classes = Fingerprint.hex st.seq_digest;
        d_outputs = Fingerprint.hex d_out;
        d_tables;
      }
  end

(* Pending-structure accessors that dispatch on the execution mode:
   sharded state lives in the per-shard trees, unsharded in the one
   global Delta. *)
let extract_class st =
  match st.shard with
  | Some sh -> Shard.extract_min_class sh
  | None -> Delta.extract_min_class st.delta

let pending_inserted st =
  match st.shard with
  | Some sh -> Shard.inserted_total sh
  | None -> Delta.inserted_total st.delta

let pending_deduped st =
  match st.shard with
  | Some sh -> Shard.deduped_total sh
  | None -> Delta.deduped_total st.delta

let run_state st ~init =
  let t_start = now () in
  let ctx = make_ctx st in
  List.iter (fun t -> route_put st ctx t) init;
  flush_puts st;
  flush_step_outputs st;
  merge_lineage st;
  let steps = ref 0 in
  let rec loop () =
    let e0 = if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0 in
    let t0 = now () in
    let klass = extract_class st in
    st.phases.t_extract <- st.phases.t_extract +. (now () -. t0);
    if st.trace_spans then
      Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.extract
        ~arg:(List.length klass) ~ts:e0
        ~dur:(Jstar_obs.Monotonic.now_ns () - e0);
    match klass with
    | [] -> ()
    | tuples ->
        incr steps;
        (match st.config.Config.max_steps with
        | Some limit when !steps > limit -> raise (Step_limit_exceeded limit)
        | _ -> ());
        run_step st ctx tuples;
        loop ()
  in
  loop ();
  {
    outputs = List.rev !(st.outputs);
    steps = !steps;
    tuples_processed = !(st.processed);
    elapsed = now () -. t_start;
    delta_inserted = pending_inserted st;
    delta_deduped = pending_deduped st;
    stats = st.stats;
    phases = st.phases;
    tracer = st.obs;
    metrics = st.metrics;
    lineage = st.lineage;
    digest = compute_digest st;
  }

let run_with_gamma ?(init = []) frozen config =
  let st = make_state frozen config in
  let finish () =
    match st.pool with Some p -> Jstar_sched.Pool.shutdown p | None -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      let result = run_state st ~init in
      (result, fun schema -> st.gamma.(schema.Schema.id)))

let run ?init frozen config = fst (run_with_gamma ?init frozen config)

let run_program ?init program config = run ?init (Program.freeze program) config


(* ------------------------------------------------------------------ *)
(* Event-driven sessions (§3): "Event-driven programming with external
   input tuples fits elegantly into this framework — the input tuples
   are added to the Delta Set, and can then trigger various rules."
   A session keeps the engine state alive between batches of external
   input; [feed] enqueues tuples and [drain] runs to quiescence,
   returning the outputs produced since the previous drain. *)

type session = {
  st : state;
  ctx : Rule.ctx;
  mutable session_steps : int;
  mutable outputs_seen : int;
  mutable finished : bool;
}

let start frozen config =
  let st = make_state frozen config in
  { st; ctx = make_ctx st; session_steps = 0; outputs_seen = 0; finished = false }

let feed session tuples =
  if session.finished then invalid_arg "Engine.feed: session finished";
  List.iter (fun t -> route_put session.st session.ctx t) tuples

let drain session =
  if session.finished then invalid_arg "Engine.drain: session finished";
  let st = session.st in
  let drain_t0 =
    if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0
  in
  flush_puts st;
  flush_step_outputs st;
  let rec loop () =
    let e0 = if st.trace_spans then Jstar_obs.Monotonic.now_ns () else 0 in
    let klass = extract_class st in
    if st.trace_spans then
      Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.extract
        ~arg:(List.length klass) ~ts:e0
        ~dur:(Jstar_obs.Monotonic.now_ns () - e0);
    match klass with
    | [] -> ()
    | tuples ->
        session.session_steps <- session.session_steps + 1;
        (match st.config.Config.max_steps with
        | Some limit when session.session_steps > limit ->
            raise (Step_limit_exceeded limit)
        | _ -> ());
        run_step st session.ctx tuples;
        loop ()
  in
  loop ();
  merge_lineage st;
  if st.trace_spans then
    Jstar_obs.Tracer.record_span st.obs Jstar_obs.Kind.drain
      ~arg:session.session_steps ~ts:drain_t0
      ~dur:(Jstar_obs.Monotonic.now_ns () - drain_t0);
  (* [outputs] is newest-first and [outputs_count] tracks its length, so
     the lines produced since the last drain are exactly its first
     [count - seen] elements — no full-list [length]/[filteri] rescan
     (which made a drain loop quadratic in total output). *)
  let fresh_n = !(st.outputs_count) - session.outputs_seen in
  let rec take n l acc =
    if n = 0 then acc
    else match l with [] -> acc | x :: tl -> take (n - 1) tl (x :: acc)
  in
  let fresh = take fresh_n !(st.outputs) [] in
  session.outputs_seen <- !(st.outputs_count);
  Jstar_obs.Journal.info st.journal ~comp:"engine" ~event:"drain"
    [
      ("steps", Jstar_obs.Json.Num (float_of_int session.session_steps));
      ("outputs", Jstar_obs.Json.Num (float_of_int fresh_n));
      ("processed", Jstar_obs.Json.Num (float_of_int !(st.processed)));
    ];
  fresh

let session_gamma session schema =
  session.st.gamma.(schema.Schema.id)

(* Live-introspection accessors (the ops plane reads these from a
   monitoring thread while the driving thread feeds and drains; all of
   them are either immutable after [start] or safe-stale reads of
   monotone state). *)
let session_metrics session = session.st.metrics
let session_lineage session = session.st.lineage
let session_profiler session = session.st.profiler
let session_frozen session = session.st.frozen
let session_journal session = session.st.journal
let session_violation session = !(session.st.last_violation)

let session_delta session =
  match session.st.shard with
  | Some sh -> (Shard.size sh, Shard.depth sh)
  | None -> (Delta.size session.st.delta, Delta.depth session.st.delta)

type shard_stats = {
  sh_count : int;
  sh_occupancy : int array;
  sh_backlog : int array;
  sh_msgs_posted : int;
  sh_msgs_cross : int;
  sh_tuples_shipped : int;
  sh_tuples_cross : int;
}

let session_shards session =
  Option.map
    (fun sh ->
      {
        sh_count = Shard.count sh;
        sh_occupancy = Shard.occupancy sh;
        sh_backlog = Shard.backlogs sh;
        sh_msgs_posted = Shard.msgs_posted sh;
        sh_msgs_cross = Shard.msgs_cross sh;
        sh_tuples_shipped = Shard.tuples_shipped sh;
        sh_tuples_cross = Shard.tuples_cross sh;
      })
    session.st.shard

let finish session =
  if not session.finished then begin
    session.finished <- true;
    match session.st.pool with
    | Some p -> Jstar_sched.Pool.shutdown p
    | None -> ()
  end;
  (* Cover tuples fed since the last drain. *)
  merge_lineage session.st;
  {
    outputs = List.rev !(session.st.outputs);
    steps = session.session_steps;
    tuples_processed = !(session.st.processed);
    elapsed = 0.0;
    delta_inserted = pending_inserted session.st;
    delta_deduped = pending_deduped session.st;
    stats = session.st.stats;
    phases = session.st.phases;
    tracer = session.st.obs;
    metrics = session.st.metrics;
    lineage = session.st.lineage;
    digest = compute_digest session.st;
  }

(* ------------------------------------------------------------------ *)
(* Durability hooks.  The persistence layer (jstar_persist) depends on
   jstar_core, so the engine cannot call it; instead it exposes just
   enough session state to snapshot a quiescent session and rebuild it
   on restore.  Everything here assumes quiescence — call only between
   a [drain] and the next [feed]. *)

type session_state = {
  ss_step_no : int;
  ss_steps : int;
  ss_processed : int;
  ss_outputs_count : int;
  ss_outputs : string list;  (* oldest first; [] when elided *)
  ss_seq_lanes : int * int;
}

let session_state ?(with_outputs = true) session =
  let st = session.st in
  {
    ss_step_no = !(st.step_no);
    ss_steps = session.session_steps;
    ss_processed = !(st.processed);
    ss_outputs_count = !(st.outputs_count);
    (* reversing the whole output list is O(lines); watermark-frequency
       callers pass [~with_outputs:false] and use the count alone *)
    ss_outputs = (if with_outputs then List.rev !(st.outputs) else []);
    ss_seq_lanes = Fingerprint.lanes st.seq_digest;
  }

let restore_session_state session s =
  let st = session.st in
  if List.length s.ss_outputs <> s.ss_outputs_count then
    invalid_arg "Engine.restore_session_state: output count mismatch";
  st.step_no := s.ss_step_no;
  session.session_steps <- s.ss_steps;
  st.processed := s.ss_processed;
  st.outputs := List.rev s.ss_outputs;
  st.outputs_count := s.ss_outputs_count;
  session.outputs_seen <- !(st.outputs_count);
  let lo, hi = s.ss_seq_lanes in
  Fingerprint.set_lanes st.seq_digest ~lo ~hi

let load_tuple session tuple =
  let st = session.st in
  let schema = Tuple.schema tuple in
  let id = schema.Schema.id in
  if st.no_gamma.(id) then
    invalid_arg
      ("Engine.load_tuple: table " ^ schema.Schema.name ^ " is -noGamma");
  if st.gamma.(id).Store.insert tuple then begin
    Table_stats.incr
      (Table_stats.counters st.stats id).Table_stats.gamma_inserts;
    match st.agg with
    | Some agg -> Agg_cache.note_inserted agg tuple
    | None -> ()
  end

let session_pending session =
  let st = session.st in
  (match st.shard with
  | Some sh -> Shard.size sh + Shard.backlog_total sh
  | None -> Delta.size st.delta)
  + Array.fold_left (fun acc b -> acc + b.pb_len) 0 st.put_bufs

let stored_tables session =
  let st = session.st in
  Array.to_list st.frozen.Program.tables
  |> List.filter (fun s -> not st.no_gamma.(s.Schema.id))

let gamma_digest session =
  let st = session.st in
  let overall = Fingerprint.create () in
  Array.iter
    (fun s ->
      let id = s.Schema.id in
      if not st.no_gamma.(id) then begin
        let d = Fingerprint.create () in
        st.gamma.(id).Store.iter (fun t -> Fingerprint.add_tuple d t);
        Fingerprint.add overall d
      end)
    st.frozen.Program.tables;
  Fingerprint.hex overall
