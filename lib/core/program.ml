(* A JStar program: tables, order declarations, rules, output tables and
   action handlers, built with combinators and then frozen before
   execution.

   Freezing fixes the table ids, the linear extension of the order
   literals, and the rule dispatch table; the engine and the causality
   checker both operate on frozen programs. *)

type action = Rule.ctx -> Tuple.t -> unit

type t = {
  mutable schemas : Schema.t list; (* reverse declaration order *)
  mutable rules : Rule.t list; (* reverse declaration order *)
  order : Order_rel.t;
  mutable next_id : int;
  mutable frozen : bool;
  mutable outputs : (int * (Tuple.t -> string)) list;
  mutable actions : (int * action) list;
      (* external-action handlers run when tuples leave the Delta set *)
}

exception Frozen of string

let create () =
  {
    schemas = [];
    rules = [];
    order = Order_rel.create ();
    next_id = 0;
    frozen = false;
    outputs = [];
    actions = [];
  }

let check_not_frozen p what =
  if p.frozen then raise (Frozen ("cannot add " ^ what ^ " after freeze"))

let table p name ~columns ?(key = 0) ~orderby () =
  check_not_frozen p ("table " ^ name);
  if List.exists (fun s -> s.Schema.name = name) p.schemas then
    raise (Schema.Schema_error ("duplicate table " ^ name));
  let schema =
    Schema.make ~id:p.next_id ~name ~columns ~key_arity:key ~orderby
  in
  (* Register every literal appearing in the orderby so it has a rank
     even without an order declaration. *)
  List.iter
    (function Schema.Lit l -> Order_rel.declare p.order l | _ -> ())
    orderby;
  p.next_id <- p.next_id + 1;
  p.schemas <- schema :: p.schemas;
  schema

let order p names =
  check_not_frozen p "order declaration";
  Order_rel.declare_chain p.order names

let rule p ?reads ?puts ?assumes ?provenance name ~trigger body =
  check_not_frozen p ("rule " ^ name);
  p.rules <-
    Rule.make ?reads ?puts ?assumes ?provenance ~name ~trigger body :: p.rules

let output p schema fmt =
  check_not_frozen p "output declaration";
  p.outputs <- (schema.Schema.id, fmt) :: p.outputs

let action p schema handler =
  check_not_frozen p "action declaration";
  p.actions <- (schema.Schema.id, handler) :: p.actions

let schemas p = List.rev p.schemas
let rules p = List.rev p.rules
let order_rel p = p.order

let find_table p name =
  match List.find_opt (fun s -> s.Schema.name = name) p.schemas with
  | Some s -> s
  | None -> raise (Schema.Schema_error ("unknown table " ^ name))

(* -- frozen form ----------------------------------------------------- *)

type frozen = {
  program : t;
  tables : Schema.t array; (* indexed by schema id *)
  rules_by_trigger : Rule.t list array; (* declaration order per table *)
  rule_names : string array; (* indexed by Rule.rid *)
  output_fmt : (Tuple.t -> string) option array;
  action_of : action option array;
  nlits : int;
}

let freeze p =
  p.frozen <- true;
  (* Rule ids follow declaration order; re-freezing the same program
     reassigns the same ids, so frozen copies agree. *)
  let all_rules = rules p in
  List.iteri (fun i r -> r.Rule.rid <- i) all_rules;
  let rule_names =
    Array.of_list (List.map (fun r -> r.Rule.name) all_rules)
  in
  let tables = Array.of_list (schemas p) in
  Array.iteri
    (fun i s -> if s.Schema.id <> i then invalid_arg "corrupt table ids")
    tables;
  let n = Array.length tables in
  let rules_by_trigger = Array.make n [] in
  List.iter
    (fun r ->
      let id = r.Rule.trigger.Schema.id in
      rules_by_trigger.(id) <- r :: rules_by_trigger.(id))
    (List.rev (rules p));
  (* Force the linear extension now so cyclic order declarations fail at
     freeze time rather than mid-run. *)
  List.iter
    (fun l -> ignore (Order_rel.rank p.order l))
    (Order_rel.literals p.order);
  let output_fmt = Array.make n None in
  List.iter (fun (id, f) -> output_fmt.(id) <- Some f) p.outputs;
  let action_of = Array.make n None in
  List.iter (fun (id, f) -> action_of.(id) <- Some f) p.actions;
  {
    program = p;
    tables;
    rules_by_trigger;
    rule_names;
    output_fmt;
    action_of;
    nlits = max 1 (Order_rel.count p.order);
  }

let rule_name frozen rid =
  if rid >= 0 && rid < Array.length frozen.rule_names then
    frozen.rule_names.(rid)
  else if rid = Prov_frame.seed_rule then "<seed>"
  else if rid = Prov_frame.action_rule then "<action>"
  else Printf.sprintf "<rule-%d>" rid
