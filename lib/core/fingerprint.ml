(* Cross-run determinism digests (Config.digest).

   Two independent 64-bit lanes per tuple (a splitmix-style mix of the
   schema id and every field under two different seeds), combined with
   *wrapping addition* — a commutative monoid — so a digest over a set
   of tuples is independent of visit order.  128 bits keep accidental
   collision probability negligible at any realistic database size,
   which is what lets CI assert digest equality at 1/2/4 threads
   instead of diffing full outputs.

   Two digests are produced per run:
   - the Gamma digest: the lane-sum over every stored tuple at
     quiescence (per table and overall);
   - the class-sequence digest: per step, the lane-sum over the
     extracted class (within-class order is schedule-dependent, the
     class *set* is not), folded in step order through a non-commutative
     mix — so it distinguishes runs whose final databases agree but
     whose class sequences don't. *)

type t = { mutable lo : int; mutable hi : int }

let create () = { lo = 0; hi = 0 }

(* splitmix64-style finalizer on OCaml's 63-bit ints.  The multiplier
   constants are the splitmix64 ones truncated to fit a 63-bit literal
   (still odd, still high-entropy) — the lanes only need to spread
   well, not match a reference implementation. *)
let mix64 z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let seed_lo = 0x1e3779b97f4a7c15
let seed_hi = 0x3c6ef372fe94f82a

let value_word = function
  | Value.Int i -> i
  | Value.Float f -> Int64.to_int (Int64.bits_of_float f)
  | Value.Bool b -> if b then 1 else 2
  | Value.Str s -> Hashtbl.hash s

let tuple_lanes tuple =
  let fields = Tuple.fields tuple in
  let id = (Tuple.schema tuple).Schema.id in
  let lo = ref (mix64 (seed_lo lxor id))
  and hi = ref (mix64 (seed_hi lxor id)) in
  for i = 0 to Array.length fields - 1 do
    let w = value_word fields.(i) in
    lo := mix64 (!lo lxor (w + (i * 0x232be59bd9b4e019)));
    hi := mix64 (!hi lxor (w * 0x2545f4914f6cdd1d) lxor i)
  done;
  (!lo, !hi)

let add_tuple t tuple =
  let lo, hi = tuple_lanes tuple in
  t.lo <- t.lo + lo;
  t.hi <- t.hi + hi

let add t other =
  t.lo <- t.lo + other.lo;
  t.hi <- t.hi + other.hi

(* Ordered fold: absorb one class's commutative lane-sum into the
   sequence digest.  Multiplying before xoring makes the combination
   position-sensitive, so swapped classes change the result. *)
let mix_seq t ~lo ~hi ~n =
  t.lo <- mix64 ((t.lo * 0x100000001b3) lxor lo lxor n);
  t.hi <- mix64 ((t.hi * 0x32b2ae3d27d4eb4f) lxor hi lxor n)

(* Ordered fold over an output line: FNV-1a over the bytes feeds both
   lanes (one raw, one re-mixed), position-sensitised through [mix_seq]
   so the output *stream* digests differently when lines are reordered —
   unlike Gamma, print order is part of what determinism promises. *)
let mix_string t s =
  (* FNV-1a 64 offset basis, truncated to OCaml's 63-bit int *)
  let h = ref 0x4bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  mix_seq t ~lo:!h ~hi:(mix64 !h) ~n:(String.length s)

let lanes t = (t.lo, t.hi)

let set_lanes t ~lo ~hi =
  t.lo <- lo;
  t.hi <- hi

let hex t = Printf.sprintf "%016Lx%016Lx" (Int64.of_int t.hi) (Int64.of_int t.lo)

let equal a b = a.lo = b.lo && a.hi = b.hi
