(** Dynamically-typed scalar field values of JStar tuples. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = TInt | TFloat | TStr | TBool

exception Type_error of string

val type_of : t -> ty
val ty_name : ty -> string

val compare : t -> t -> int
(** Total order; same-type values compare naturally, mixed types by a
    fixed type-tag order (only reachable from ill-typed programs). *)

val equal : t -> t -> bool
val hash : t -> int

val default_of_ty : ty -> t
(** The value used for fields omitted from a by-name builder:
    [0], [0.0], [""] or [false]. *)

val to_int : t -> int
(** @raise Type_error when the value is not an [Int]. *)

val to_float : t -> float
(** Accepts [Float] and widens [Int].  @raise Type_error otherwise. *)

val to_string : t -> string
val to_bool : t -> bool

val pp : Format.formatter -> t -> unit
val show : t -> string

val compare_arrays : t array -> t array -> int
(** Lexicographic; a strict prefix orders before its extensions. *)

val equal_arrays : t array -> t array -> bool
val hash_array : t array -> int

val hash_prefix : t array -> int -> int
(** [hash_prefix a k] = [hash_array (Array.sub a 0 k)] without
    allocating the sub-array.  Both arguments must satisfy
    [k <= Array.length a]. *)

val equal_prefix : t array -> t array -> int -> bool
(** [equal_prefix a b k]: the first [k] slots of [a] and [b] are equal.
    Both arrays must have at least [k] slots. *)
