(* Shared-nothing sharded execution (ROADMAP item 2): partition the
   tuple space into N shards with *single-owner semantics*, following
   the IronFleet sharded-hash-table model (SNIPPETS.md snippet 2).

   Ownership invariant: every tuple has exactly one owner shard,
   [owner = hash mod N], and a shard's pending structure (its Delta
   tree) is only ever touched by one domain at a time — mailbox drains
   run as one task per shard between fork/join barriers, and
   extraction/re-insertion runs on the driving domain with no
   concurrent work.  The pool's join edges provide the happens-before
   ordering between those owners, so the per-shard Deltas use the
   *sequential* structure family even under a multi-domain pool: the
   whole point of sharding is that the pending structures need no
   cross-domain locking at all.

   Mailbox protocol: a rule firing that produces a tuple owned by a
   remote shard does not lock anything — it ships the put as a message
   (a batch of tuples + timestamps) onto the owner's lock-free MS
   queue.  At the step barrier the engine runs a *watermark exchange*:
   every mailbox is drained into its owner's Delta (one task per
   shard), and only when all mailboxes are empty and all shards have
   quiesced does the timestamp advance.  Because equal tuples hash to
   the same shard, duplicate elimination is exactly as complete as in
   the unsharded tree, and the per-shard insert/dedup counters sum to
   the unsharded totals.

   Extraction merges the shard-local minimal classes: each non-empty
   shard surrenders its own minimal class as candidates, a recursive
   component-wise select keeps exactly the globally minimal class (the
   same descent rules as [Delta.extract] — leaf before subtrees,
   lowest literal rank, least seq value, all par children), and losing
   candidates are re-inserted counter-free into their owner's tree.
   The refinement argument from the snippet applies directly: the law
   of causality already makes results independent of schedule, so
   message reorderings between shards cannot change the class
   sequence — digests, outputs and lineage are bit-identical to
   unsharded runs. *)

type msg = {
  m_tuples : Tuple.t array;
  m_ts : Timestamp.t array;
  m_len : int;
  m_src : int; (* producing shard, or -1 (external feed, striped buffer) *)
  m_seq : int; (* globally unique send stamp — the causal link id *)
}

type t = {
  n : int;
  deltas : Delta.t array;
  mailboxes : msg Jstar_cds.Ms_queue.t array;
  backlog : int Atomic.t array; (* messages queued, per owner shard *)
  ts_of : Tuple.t -> Timestamp.t;
  (* message-rate counters: posts per destination, plus how many were
     cross-shard (producer shard known and different from the owner) *)
  msgs : int Atomic.t array;
  msgs_cross : int Atomic.t;
  tuples_shipped : int Atomic.t;
  tuples_cross : int Atomic.t;
  (* causal stamping: every post draws the next stamp from one shared
     counter, so a (send, recv) trace pair can be bound by stamp alone
     and a recovered bundle can order messages across shards *)
  seq : int Atomic.t;
  mutable on_post : src:int -> dest:int -> seq:int -> len:int -> unit;
      (* observer hook (the engine's flow-send trace emission), called
         on the producing domain after the push *)
}

let no_observer ~src:_ ~dest:_ ~seq:_ ~len:_ = ()

let create ~shards ~nlits ~ts_of () =
  let n = max 1 shards in
  {
    n;
    deltas =
      Array.init n (fun _ -> Delta.create ~mode:Delta.Sequential ~nlits ());
    mailboxes = Array.init n (fun _ -> Jstar_cds.Ms_queue.create ());
    backlog = Array.init n (fun _ -> Atomic.make 0);
    ts_of;
    msgs = Array.init n (fun _ -> Atomic.make 0);
    msgs_cross = Atomic.make 0;
    tuples_shipped = Atomic.make 0;
    tuples_cross = Atomic.make 0;
    seq = Atomic.make 0;
    on_post = no_observer;
  }

let set_on_post t f = t.on_post <- f

let count t = t.n
let owner_of t tuple = (Tuple.hash tuple land max_int) mod t.n
let delta t k = t.deltas.(k)

(* -- the mailbox protocol ------------------------------------------- *)

(* [post] takes ownership of the arrays (messages outlive the
   producer's reusable buffers, so the caller hands over fresh
   storage).  [from] is the producer's shard, or [-1] when unknown
   (external feeds, striped put buffers). *)
let post t ~from ~dest tuples ts len =
  if len > 0 then begin
    Atomic.incr t.backlog.(dest);
    Atomic.incr t.msgs.(dest);
    ignore (Atomic.fetch_and_add t.tuples_shipped len);
    if from >= 0 && from <> dest then begin
      Atomic.incr t.msgs_cross;
      ignore (Atomic.fetch_and_add t.tuples_cross len)
    end;
    let seq = Atomic.fetch_and_add t.seq 1 in
    Jstar_cds.Ms_queue.push t.mailboxes.(dest)
      { m_tuples = tuples; m_ts = ts; m_len = len; m_src = from; m_seq = seq };
    t.on_post ~src:from ~dest ~seq ~len
  end

(* Partition a producer-owned buffer by owner shard and ship one
   message per destination; the buffer stays with the caller (the
   scratch arenas are reused), so each destination gets fresh arrays. *)
let post_partitioned t ~from tuples ts len =
  if len > 0 then
    if t.n = 1 then
      post t ~from ~dest:0 (Array.sub tuples 0 len) (Array.sub ts 0 len) len
    else begin
      let counts = Array.make t.n 0 in
      for i = 0 to len - 1 do
        let d = owner_of t tuples.(i) in
        counts.(d) <- counts.(d) + 1
      done;
      let bufs =
        Array.init t.n (fun d ->
            if counts.(d) = 0 then [||] else Array.make counts.(d) tuples.(0))
      in
      let tsbufs =
        Array.init t.n (fun d ->
            if counts.(d) = 0 then [||] else Array.make counts.(d) ts.(0))
      in
      let fill = Array.make t.n 0 in
      for i = 0 to len - 1 do
        let d = owner_of t tuples.(i) in
        let j = fill.(d) in
        bufs.(d).(j) <- tuples.(i);
        tsbufs.(d).(j) <- ts.(i);
        fill.(d) <- j + 1
      done;
      for d = 0 to t.n - 1 do
        if counts.(d) > 0 then post t ~from ~dest:d bufs.(d) tsbufs.(d) counts.(d)
      done
    end

(* Drain shard [k]'s mailbox on its owner task: FIFO, stopping when
   empty.  The caller inserts each message into [delta t k] (and folds
   per-table statistics); single-owner, so no locking inside. *)
let drain t k ~f =
  let rec go () =
    match Jstar_cds.Ms_queue.pop t.mailboxes.(k) with
    | None -> ()
    | Some m ->
        Atomic.decr t.backlog.(k);
        f m;
        go ()
  in
  go ()

let backlog_total t =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.backlog

let quiesced t = backlog_total t = 0

(* -- aggregate views over the shard Deltas -------------------------- *)

let size t = Array.fold_left (fun acc d -> acc + Delta.size d) 0 t.deltas

let depth t =
  Array.fold_left (fun acc d -> max acc (Delta.depth d)) 0 t.deltas

let inserted_total t =
  Array.fold_left (fun acc d -> acc + Delta.inserted_total d) 0 t.deltas

let deduped_total t =
  Array.fold_left (fun acc d -> acc + Delta.deduped_total d) 0 t.deltas

let note_deduped t k = Delta.note_deduped t.deltas.(0) k
let occupancy t = Array.map Delta.size t.deltas
let backlogs t = Array.map Atomic.get t.backlog
let msgs_posted t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.msgs
let msgs_posted_to t k = Atomic.get t.msgs.(k)
let msgs_cross t = Atomic.get t.msgs_cross
let tuples_shipped t = Atomic.get t.tuples_shipped
let tuples_cross t = Atomic.get t.tuples_cross

(* -- cross-shard extraction merge ----------------------------------- *)

(* Keep, among the shard-local minimal-class candidates, exactly the
   globally minimal class, by replaying [Delta.extract]'s descent over
   the candidates' timestamps: at each depth a timestamp ending here
   (a leaf tuple) beats every deeper one; otherwise the least
   component kind wins (literals before seq before par), literals
   resolve by rank, seq components by value, and par components all
   survive — each par value recursing independently, like the subtrees
   of a par level.  Returns (winners, losers).

   Why the union of shard-local classes covers the global class: the
   global tree is the shard trees merged; along the global extraction
   path every choice is the minimum over the shards, so any shard
   holding tuples on that path makes the same local choices and
   surrenders them in its own class.  Shards whose local minimum lies
   elsewhere contribute only losers, which go back untouched. *)
let rec select d cands =
  let ended, deeper =
    List.partition (fun (_, _, ts) -> Array.length ts = d) cands
  in
  if ended <> [] then (ended, deeper)
  else begin
    let rank (_, _, (ts : Timestamp.t)) =
      match ts.(d) with
      | Timestamp.CLit _ -> 0
      | Timestamp.CSeq _ -> 1
      | Timestamp.CPar _ -> 2
    in
    let minrank =
      List.fold_left (fun acc c -> min acc (rank c)) max_int cands
    in
    let kept, lost = List.partition (fun c -> rank c = minrank) cands in
    match minrank with
    | 0 ->
        let lrank (_, _, (ts : Timestamp.t)) =
          match ts.(d) with Timestamp.CLit (r, _) -> r | _ -> assert false
        in
        let m =
          List.fold_left (fun acc c -> min acc (lrank c)) max_int kept
        in
        let kept, lost2 = List.partition (fun c -> lrank c = m) kept in
        let winners, lost3 = select (d + 1) kept in
        (winners, lost @ lost2 @ lost3)
    | 1 ->
        let sval (_, _, (ts : Timestamp.t)) =
          match ts.(d) with Timestamp.CSeq v -> v | _ -> assert false
        in
        let m =
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some (sval c)
              | Some v -> if Value.compare (sval c) v < 0 then Some (sval c) else acc)
            None kept
        in
        let m = Option.get m in
        let kept, lost2 =
          List.partition (fun c -> Value.compare (sval c) m = 0) kept
        in
        let winners, lost3 = select (d + 1) kept in
        (winners, lost @ lost2 @ lost3)
    | _ ->
        (* par: every value's subtree is extracted; group candidates by
           the par value (structurally, like the tree's par maps) and
           recurse within each subtree independently *)
        let pval (_, _, (ts : Timestamp.t)) =
          match ts.(d) with Timestamp.CPar v -> v | _ -> assert false
        in
        let groups : (Value.t, (int * Tuple.t * Timestamp.t) list ref) Hashtbl.t
            =
          Hashtbl.create 8
        in
        let order = ref [] in
        List.iter
          (fun c ->
            let v = pval c in
            match Hashtbl.find_opt groups v with
            | Some cell -> cell := c :: !cell
            | None ->
                Hashtbl.replace groups v (ref [ c ]);
                order := v :: !order)
          (List.rev kept);
        let winners = ref [] and losers = ref lost in
        List.iter
          (fun v ->
            let group = List.rev !(Hashtbl.find groups v) in
            let w, l = select (d + 1) group in
            winners := !winners @ w;
            losers := !losers @ l)
          (List.rev !order);
        (!winners, !losers)
  end

(* Remove and return the globally minimal equivalence class across all
   shards.  Runs on the driving domain with no concurrent operations
   (the engine's extraction contract); losing candidates re-enter
   their owner's tree counter-free, so every pending tuple is counted
   exactly once over its lifetime. *)
let extract_min_class t =
  let classes = ref [] in
  for k = t.n - 1 downto 0 do
    match Delta.extract_min_class t.deltas.(k) with
    | [] -> ()
    | tuples -> classes := (k, tuples) :: !classes
  done;
  match !classes with
  | [] -> []
  | [ (_, tuples) ] -> tuples
  | shard_classes -> (
      let all =
        List.concat_map
          (fun (k, tuples) ->
            List.map (fun tu -> (k, tu, t.ts_of tu)) tuples)
          shard_classes
      in
      match all with
      | [] -> []
      | (_, _, ts0) :: rest ->
          (* fast path: literal-only orderbys share one memoised
             timestamp array per table, so whole waves compare
             physically equal — they are a single class *)
          if
            List.for_all
              (fun (_, _, ts) -> ts == ts0 || Timestamp.equal ts ts0)
              rest
          then List.map (fun (_, tu, _) -> tu) all
          else begin
            let winners, losers = select 0 all in
            List.iter
              (fun (k, tu, ts) -> Delta.reinsert t.deltas.(k) tu ts)
              losers;
            List.map (fun (_, tu, _) -> tu) winners
          end)

(* -- the partitioned Gamma router ----------------------------------- *)

(* One logical store fanned over per-shard sub-stores: point operations
   (insert / mem) route by owner, scans visit the shards in index
   order, and probes concatenate the per-shard answers in that same
   order so the probe/scan consistency contract survives sharding.
   Batches are repartitioned preserving input order within each shard,
   which keeps first-duplicate-wins semantics: equal tuples share an
   owner. *)
let gamma_router ~owner (subs : Store.t array) : Store.t =
  let n = Array.length subs in
  if n = 1 then subs.(0)
  else
    {
      Store.kind = "sharded:" ^ subs.(0).Store.kind;
      insert = (fun tu -> subs.(owner tu).Store.insert tu);
      insert_batch =
        (fun arr lo hi ->
          let len = hi - lo in
          let res = Array.make (max len 0) false in
          if len > 0 then begin
            let counts = Array.make n 0 in
            for i = lo to hi - 1 do
              let d = owner arr.(i) in
              counts.(d) <- counts.(d) + 1
            done;
            let bufs =
              Array.init n (fun d ->
                  if counts.(d) = 0 then [||]
                  else Array.make counts.(d) arr.(lo))
            in
            let poss =
              Array.init n (fun d ->
                  if counts.(d) = 0 then [||] else Array.make counts.(d) 0)
            in
            let fill = Array.make n 0 in
            for i = lo to hi - 1 do
              let d = owner arr.(i) in
              let j = fill.(d) in
              bufs.(d).(j) <- arr.(i);
              poss.(d).(j) <- i - lo;
              fill.(d) <- j + 1
            done;
            for d = 0 to n - 1 do
              if counts.(d) > 0 then begin
                let sub = subs.(d).Store.insert_batch bufs.(d) 0 counts.(d) in
                for j = 0 to counts.(d) - 1 do
                  res.(poss.(d).(j)) <- sub.(j)
                done
              end
            done
          end;
          res);
      mem = (fun tu -> subs.(owner tu).Store.mem tu);
      iter_prefix =
        (fun prefix f ->
          Array.iter (fun s -> s.Store.iter_prefix prefix f) subs);
      probe_prefix =
        (fun prefix ->
          let rec go d acc =
            if d >= n then Some (List.concat (List.rev acc))
            else
              match subs.(d).Store.probe_prefix prefix with
              | None -> None
              | Some items -> go (d + 1) (items :: acc)
          in
          go 0 []);
      iter = (fun f -> Array.iter (fun s -> s.Store.iter f) subs);
      size =
        (fun () ->
          Array.fold_left (fun acc s -> acc + s.Store.size ()) 0 subs);
    }
