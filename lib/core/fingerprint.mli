(** Order-independent 128-bit content digests ([Config.digest]): two
    64-bit lanes per tuple combined by wrapping addition, so a digest
    over a tuple set is schedule-independent — CI can assert equal
    digests at 1/2/4 threads instead of diffing outputs. *)

type t

val create : unit -> t

val tuple_lanes : Tuple.t -> int * int
(** The tuple's two content lanes (schema id + every field, two
    seeds). *)

val add_tuple : t -> Tuple.t -> unit
(** Commutative: absorb one tuple. *)

val add : t -> t -> unit
(** Commutative: absorb another digest's lanes (per-table into
    overall). *)

val mix_seq : t -> lo:int -> hi:int -> n:int -> unit
(** Non-commutative: fold one step's class lanes (and width [n]) into a
    sequence digest, in step order. *)

val mix_string : t -> string -> unit
(** Non-commutative: fold one output line into a stream digest, in
    print order (reordered lines digest differently). *)

val lanes : t -> int * int

val set_lanes : t -> lo:int -> hi:int -> unit
(** Overwrite the digest state — snapshot restore resuming a
    sequence digest mid-stream. *)

val hex : t -> string  (** 32 hex digits, [hi] lane first. *)

val equal : t -> t -> bool
