(** Symbolic rule metadata for causality checking and dependency graphs
    — the facts the original compiler extracts from rule source. *)

type iexpr =
  | Field of string  (** an int field of the trigger tuple *)
  | Const of int
  | Add of iexpr * int
  | Unknown  (** no information; obligations touching it fail *)

type flat = FField of string * int | FConst of int | FUnknown

val normalise : iexpr -> iexpr
val flatten : iexpr -> flat

type ts_binding = { field : string; expr : iexpr }

type read_kind =
  | Positive  (** plain [get] — allowed at timestamps <= trigger *)
  | Negative  (** absence tests — must be strictly earlier *)
  | Aggregate  (** min / count / reduce queries — strictly earlier *)

type read_spec = {
  rd_table : string;
  rd_kind : read_kind;
  rd_ts : ts_binding list;
  rd_prefix : iexpr list;
      (** leading key fields the body passes as the query prefix,
          as expressions over the trigger tuple; the batched firing
          path sorts (rule, table) chunks by these join keys so equal
          probes coalesce into one cursor hit.  Empty = undeclared. *)
}

type put_spec = {
  pt_table : string;
  pt_ts : ts_binding list;
  pt_when : string option;
}

type constr = Le of iexpr * iexpr | Lt of iexpr * iexpr | Eq of iexpr * iexpr

val read :
  ?kind:read_kind -> ?ts:ts_binding list -> ?prefix:iexpr list -> string ->
  read_spec
val put : ?when_:string -> ?ts:ts_binding list -> string -> put_spec
val bind : string -> iexpr -> ts_binding
val pp_iexpr : Format.formatter -> iexpr -> unit
