(** Secondary hash index: an extra access path over a Gamma store,
    keyed by the integer hash of the first [prefix_len] fields (no key
    arrays are allocated; reads filter residuals and hash collisions
    with [Tuple.matches_prefix]).  An index never dedups or answers
    membership — the primary store owns both; see {!Store.indexed}. *)

type t

val create : prefix_len:int -> Schema.t -> t
(** @raise Schema.Schema_error when [prefix_len] is outside
    [1..arity]. *)

val prefix_len : t -> int

val add : t -> Tuple.t -> unit
(** Record a tuple the primary store just accepted (callers must filter
    duplicates first — the index stores blindly). Thread-safe. *)

val iter_prefix : t -> Value.t array -> (Tuple.t -> unit) -> unit
(** Visit every indexed tuple matching [prefix].  Requires
    [Array.length prefix >= prefix_len] — shorter prefixes cannot pick
    a bucket; callers fall back to the primary store. *)

val probe : t -> Value.t array -> Tuple.t list
(** The filtered matches of [prefix] as a list (the batched hash-join
    entry point): same tuples and order as {!iter_prefix}, but
    returned as a value a scan cursor can cache across equal probes.
    Same precondition on the prefix length. *)

val size : t -> int
(** Tuples indexed so far. *)
