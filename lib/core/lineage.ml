(* Tuple lineage capture (Config.provenance).

   Every put — accepted or deduplicated away — appends one candidate
   derivation record to a per-domain-striped arena: producing rule id,
   step number, firing domain, and the input tuples the rule's body
   literals had bound when it put (trigger last).  The multiset of puts
   a run performs is schedule-independent (it is a function of the
   class sequence, which the law of causality fixes), so the candidate
   multiset is too.

   At each end-of-step barrier the engine drains the arenas into a
   per-tuple table keeping only the *minimum* candidate under a
   deterministic order — (step, rule id, parents lexicographically) —
   which makes the chosen derivation of every tuple identical at any
   thread count, and bounds memory by distinct tuples rather than total
   puts.  Minimum-step also means the chosen candidate is one recorded
   when the tuple was first created, so following parent links always
   moves to tuples created no later — derivations bottom out in seed
   puts (step 0, rule [Prov_frame.seed_rule]) instead of cycling.
   ([Explain] still carries a path guard for defence in depth.)

   Hot-path cost when enabled: one record allocation and one striped
   mutex push per put.  When [Config.provenance] is off the engine never
   calls in here. *)

type record = {
  r_tuple : Tuple.t;
  r_rule : int;  (* >= 0, or Prov_frame.seed_rule / action_rule *)
  r_step : int;  (* 0 = initial puts, classes count from 1 *)
  r_domain : int;  (* domain id that performed the put *)
  r_parents : Tuple.t array;  (* trigger first, then outer-to-inner bindings *)
}

type arena = {
  a_mutex : Mutex.t;
  mutable a_records : record list; (* newest first *)
}

type t = {
  arenas : arena array; (* striped by domain id, like the put buffers *)
  best : record Tuple.Tbl.t; (* merged minimum candidate per tuple *)
  mutable recorded : int; (* candidates appended, lifetime *)
  mutable merged : int; (* candidates drained through [merge] *)
}

let create ~stripes =
  {
    arenas =
      Array.init stripes (fun _ ->
          { a_mutex = Mutex.create (); a_records = [] });
    best = Tuple.Tbl.create 4096;
    recorded = 0;
    merged = 0;
  }

let record t ~rule ~step ~parents tuple =
  let a =
    t.arenas.((Domain.self () :> int) land (Array.length t.arenas - 1))
  in
  let r = { r_tuple = tuple; r_rule = rule; r_step = step;
            r_domain = (Domain.self () :> int); r_parents = parents }
  in
  Mutex.lock a.a_mutex;
  a.a_records <- r :: a.a_records;
  Mutex.unlock a.a_mutex

(* The deterministic candidate order.  Domain id is deliberately not
   part of it — it is the one schedule-dependent field, kept for
   display only. *)
let cmp_candidate a b =
  let c = Int.compare a.r_step b.r_step in
  if c <> 0 then c
  else
    let c = Int.compare a.r_rule b.r_rule in
    if c <> 0 then c
    else begin
      let la = Array.length a.r_parents and lb = Array.length b.r_parents in
      let n = min la lb in
      let rec go i =
        if i = n then Int.compare la lb
        else
          let c = Tuple.fast_compare a.r_parents.(i) b.r_parents.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end

(* Drain every arena into [best].  Runs single-threaded at a barrier;
   min is associative/commutative, so drain order cannot matter. *)
let merge t =
  Array.iter
    (fun a ->
      Mutex.lock a.a_mutex;
      let rs = a.a_records in
      a.a_records <- [];
      Mutex.unlock a.a_mutex;
      List.iter
        (fun r ->
          t.recorded <- t.recorded + 1;
          t.merged <- t.merged + 1;
          (* A candidate listing the tuple among its own parents is a
             re-put of an already-derived tuple — never a minimal
             derivation, and a self-cycle if chosen.  Drop it. *)
          if not (Array.exists (Tuple.equal r.r_tuple) r.r_parents) then
            match Tuple.Tbl.find_opt t.best r.r_tuple with
            | Some cur when cmp_candidate cur r <= 0 -> ()
            | _ -> Tuple.Tbl.replace t.best r.r_tuple r)
        rs)
    t.arenas

let find t tuple = Tuple.Tbl.find_opt t.best tuple
let tuples_tracked t = Tuple.Tbl.length t.best
let records_merged t = t.merged
let iter t f = Tuple.Tbl.iter (fun _ r -> f r) t.best
