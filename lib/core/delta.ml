(* The Delta tree: a single multi-level priority structure holding the
   pending tuples of *all* tables, sorted lexicographically by their
   orderby lists (§5, Fig 3 of the paper).

   Level i of the tree is keyed by the i-th orderby component:
   - literal components  -> a linear array of subtrees indexed by the
     literal's rank in the order declarations' linear extension;
   - [seq f] components  -> an ordered map (TreeMap sequentially,
     ConcurrentSkipListMap-alike in parallel mode) keyed by field value;
   - [par f] components  -> an *unordered* map: all subtrees of a par
     level belong to the same equivalence class and are extracted
     together.
   Tuples whose orderby list is exhausted at a node live in that node's
   leaf set — a deduplicating set, because the Delta tree must also
   "remove duplicate tuples as they are inserted" (a plain priority
   queue is not sufficient, §5).

   Concurrency contract (matching the engine's phase structure): many
   domains may [insert] concurrently; [extract_min_class] runs with no
   concurrent operations.  Each node carries an atomic subtree count
   maintained on insert-unwind, so extraction can skip empty subtrees
   without rescanning them. *)

type mode = Sequential | Concurrent

(* -- leaf sets: deduplicating tuple sets ---------------------------- *)

(* Leaves dedup with {!Tuple.Dset} — member-or-add in a single probe
   against the lazily-cached structural hash.  (A legacy family keyed a
   polymorphic [Hashtbl] by (id, fields) and re-hashed the boxed field
   array on every probe; it was retired once the ablation priced it —
   see EXPERIMENTS.md "Hot-path ablation".) *)

let fold_clear tb acc =
  let items = Tuple.Dset.fold (fun acc t -> t :: acc) tb acc in
  Tuple.Dset.clear tb;
  items

type leaf = {
  l_add : Tuple.t -> bool;
  l_add_many : Tuple.t array -> int list -> (int -> unit) -> int;
      (* Batch entry point: the caller's tuple array plus the positions
         of this run, in input order.  Marks the position of each tuple
         actually inserted (the first occurrence of an in-batch
         duplicate wins) and returns the number inserted.  Takes each
         shard lock at most once. *)
  l_pop_all : unit -> Tuple.t list;
  l_is_empty : unit -> bool;
}

let sequential_leaf () =
  let table = Tuple.Dset.create 8 in
  {
    l_add = (fun t -> Tuple.Dset.add_if_absent table t);
    l_add_many =
      (fun tuples run mark ->
        let added = ref 0 in
        List.iter
          (fun p ->
            if Tuple.Dset.add_if_absent table tuples.(p) then begin
              mark p;
              incr added
            end)
          run;
        !added);
    l_pop_all = (fun () -> fold_clear table []);
    l_is_empty = (fun () -> Tuple.Dset.length table = 0);
  }

(* A few mutex-protected shards balance two costs: insert bursts into
   one equivalence class arrive from every domain at once (the SumMonth
   dedup traffic of §6.2 — a single mutex here serialises the whole
   parallel phase), while extraction scans all shards of the minimal
   class (so a 64-way sharded map makes Dijkstra's many small classes
   ~20x more expensive to extract).  Eight shards keep both ends cheap. *)
let leaf_shards = 8

let concurrent_leaf () =
  let shards =
    Array.init leaf_shards (fun _ -> (Mutex.create (), Tuple.Dset.create 8))
  in
  let count = Atomic.make 0 in
  {
    l_add =
      (fun t ->
        let mutex, table = shards.(Tuple.hash t land (leaf_shards - 1)) in
        Mutex.lock mutex;
        let added = Tuple.Dset.add_if_absent table t in
        Mutex.unlock mutex;
        if added then Atomic.incr count;
        added);
    l_add_many =
      (fun tuples run mark ->
        (* Partition by shard, then take each shard's lock exactly once.
           Prepending while walking forward reverses each bucket, so
           reverse back before inserting: the first in-batch duplicate
           must stay first. *)
        let buckets = Array.make leaf_shards [] in
        List.iter
          (fun p ->
            let s = Tuple.hash tuples.(p) land (leaf_shards - 1) in
            buckets.(s) <- p :: buckets.(s))
          run;
        let added = ref 0 in
        Array.iteri
          (fun s entries ->
            if entries <> [] then begin
              let mutex, table = shards.(s) in
              Mutex.lock mutex;
              List.iter
                (fun p ->
                  if Tuple.Dset.add_if_absent table tuples.(p) then begin
                    mark p;
                    incr added
                  end)
                (List.rev entries);
              Mutex.unlock mutex
            end)
          buckets;
        if !added > 0 then ignore (Atomic.fetch_and_add count !added);
        !added);
    l_pop_all =
      (fun () ->
        let items = ref [] in
        Array.iter
          (fun (mutex, table) ->
            Mutex.lock mutex;
            items := fold_clear table !items;
            Mutex.unlock mutex)
          shards;
        Atomic.set count 0;
        !items);
    l_is_empty = (fun () -> Atomic.get count = 0);
  }

(* -- ordered child maps (seq levels) -------------------------------- *)

type 'v omap = {
  om_find_or_add : Value.t -> (unit -> 'v) -> 'v;
  om_min : unit -> (Value.t * 'v) option;
  om_remove : Value.t -> unit;
  om_is_empty : unit -> bool;
  om_iter : (Value.t -> 'v -> unit) -> unit;
}

module VMap = Map.Make (Value)

let sequential_omap () =
  let map = ref VMap.empty in
  {
    om_find_or_add =
      (fun k mk ->
        match VMap.find_opt k !map with
        | Some v -> v
        | None ->
            let v = mk () in
            map := VMap.add k v !map;
            v);
    om_min = (fun () -> VMap.min_binding_opt !map);
    om_remove = (fun k -> map := VMap.remove k !map);
    om_is_empty = (fun () -> VMap.is_empty !map);
    om_iter = (fun f -> VMap.iter f !map);
  }

let concurrent_omap () =
  let sl = Jstar_cds.Skiplist.create ~compare:Value.compare () in
  {
    om_find_or_add = (fun k mk -> Jstar_cds.Skiplist.find_or_add sl k mk);
    om_min = (fun () -> Jstar_cds.Skiplist.min_binding_opt sl);
    om_remove = (fun k -> ignore (Jstar_cds.Skiplist.remove sl k));
    om_is_empty = (fun () -> Jstar_cds.Skiplist.is_empty sl);
    om_iter = (fun f -> Jstar_cds.Skiplist.iter sl f);
  }

(* -- unordered child maps (par levels) ------------------------------ *)

type 'v pmap = {
  pm_find_or_add : Value.t -> (unit -> 'v) -> 'v;
  pm_entries : unit -> (Value.t * 'v) list;
  pm_remove : Value.t -> unit;
}

let sequential_pmap () =
  let table : (Value.t, 'v) Hashtbl.t = Hashtbl.create 8 in
  {
    pm_find_or_add =
      (fun k mk ->
        match Hashtbl.find_opt table k with
        | Some v -> v
        | None ->
            let v = mk () in
            Hashtbl.replace table k v;
            v);
    pm_entries =
      (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []);
    pm_remove = (fun k -> Hashtbl.remove table k);
  }

let concurrent_pmap () =
  let mutex = Mutex.create () in
  let table = Hashtbl.create 8 in
  let locked f =
    Mutex.lock mutex;
    Fun.protect f ~finally:(fun () -> Mutex.unlock mutex)
  in
  {
    pm_find_or_add =
      (fun k mk ->
        locked (fun () ->
            match Hashtbl.find_opt table k with
            | Some v -> v
            | None ->
                let v = mk () in
                Hashtbl.replace table k v;
                v));
    pm_entries =
      (fun () ->
        locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []));
    pm_remove = (fun k -> locked (fun () -> Hashtbl.remove table k));
  }

(* -- tree nodes ------------------------------------------------------ *)

type node = {
  count : int Atomic.t; (* pending tuples in this subtree *)
  leaf : leaf;
  (* Child maps are created lazily and installed by CAS so that two
     domains inserting the first tuples of a level race safely. *)
  lit : node option Atomic.t array option Atomic.t;
  seq : node omap option Atomic.t;
  par : node pmap option Atomic.t;
}

(* Lifetime statistics are striped by domain: a single atomic here is
   hammered once per put and ping-pongs between cores. *)
type stripe_counter = int Atomic.t array

let stripe_count = 8
let make_stripes () = Array.init stripe_count (fun _ -> Atomic.make 0)

let stripe_incr (c : stripe_counter) =
  Atomic.incr c.((Domain.self () :> int) land (stripe_count - 1))

let stripe_add (c : stripe_counter) k =
  if k > 0 then
    ignore
      (Atomic.fetch_and_add
         c.((Domain.self () :> int) land (stripe_count - 1))
         k)

let stripe_read (c : stripe_counter) =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

type t = {
  mode : mode;
  nlits : int; (* size of literal-rank arrays, fixed at freeze time *)
  root : node;
  inserted : stripe_counter; (* lifetime statistics *)
  deduped : stripe_counter;
}

let make_leaf mode =
  match mode with
  | Sequential -> sequential_leaf ()
  | Concurrent -> concurrent_leaf ()

let make_node_spec mode =
  {
    count = Atomic.make 0;
    leaf = make_leaf mode;
    lit = Atomic.make None;
    seq = Atomic.make None;
    par = Atomic.make None;
  }

let make_node t = make_node_spec t.mode

let create ~mode ~nlits () =
  {
    mode;
    nlits = max nlits 1;
    root = make_node_spec mode;
    inserted = make_stripes ();
    deduped = make_stripes ();
  }

let size t = Atomic.get t.root.count
let is_empty t = size t = 0
let inserted_total t = stripe_read t.inserted
let deduped_total t = stripe_read t.deduped

(* Callers that dedup upstream (the engine's batched-firing scratch
   arenas) report the drops here so [deduped_total] stays comparable
   with the per-tuple path's counts. *)
let note_deduped t k = if k > 0 then stripe_add t.deduped k

(* Depth of the deepest subtree still holding pending tuples — an
   observability gauge for how far timestamps fan out at runtime.
   Subtrees whose count has drained to 0 are skipped, so cost tracks
   live structure, not insertion history.  Racing inserts can skew the
   answer by a level; fine for a gauge read between steps. *)
let depth t =
  let rec go node d acc =
    if Atomic.get node.count = 0 then acc
    else begin
      let deepest = ref (max d acc) in
      let visit child = deepest := go child (d + 1) !deepest in
      (match Atomic.get node.lit with
      | None -> ()
      | Some slots ->
          Array.iter
            (fun slot ->
              match Atomic.get slot with Some c -> visit c | None -> ())
            slots);
      (match Atomic.get node.seq with
      | None -> ()
      | Some om -> om.om_iter (fun _ c -> visit c));
      (match Atomic.get node.par with
      | None -> ()
      | Some pm -> List.iter (fun (_, c) -> visit c) (pm.pm_entries ()));
      !deepest
    end
  in
  go t.root 0 0

(* Install-or-get for the lazily created child containers. *)
let get_or_install atom mk =
  match Atomic.get atom with
  | Some v -> v
  | None ->
      let fresh = mk () in
      if Atomic.compare_and_set atom None (Some fresh) then fresh
      else Option.get (Atomic.get atom)

let lit_children t node =
  get_or_install node.lit (fun () ->
      Array.init t.nlits (fun _ -> Atomic.make None))

let lit_child t slots rank =
  if rank >= Array.length slots then
    invalid_arg "Delta: order literal declared after the program was frozen";
  match Atomic.get slots.(rank) with
  | Some n -> n
  | None ->
      let fresh = make_node t in
      if Atomic.compare_and_set slots.(rank) None (Some fresh) then fresh
      else Option.get (Atomic.get slots.(rank))

let seq_children t node =
  get_or_install node.seq (fun () ->
      match t.mode with
      | Sequential -> sequential_omap ()
      | Concurrent -> concurrent_omap ())

let par_children t node =
  get_or_install node.par (fun () ->
      match t.mode with
      | Sequential -> sequential_pmap ()
      | Concurrent -> concurrent_pmap ())

exception Duplicate

let insert_raw t tuple ts =
  (* Walks down along the timestamp, adding to the final leaf; counts are
     incremented on the unwind only when the tuple was actually new, so a
     dedup hit leaves every count untouched. *)
  let rec go node depth =
    if depth >= Array.length ts then
      if node.leaf.l_add tuple then Atomic.incr node.count else raise Duplicate
    else (
      (match ts.(depth) with
      | Timestamp.CLit (rank, _) ->
          go (lit_child t (lit_children t node) rank) (depth + 1)
      | Timestamp.CSeq v ->
          go ((seq_children t node).om_find_or_add v (fun () -> make_node t))
            (depth + 1)
      | Timestamp.CPar v ->
          go ((par_children t node).pm_find_or_add v (fun () -> make_node t))
            (depth + 1));
      Atomic.incr node.count)
  in
  try
    go t.root 0;
    true
  with Duplicate -> false

let insert t tuple ts =
  if insert_raw t tuple ts then begin
    stripe_incr t.inserted;
    true
  end
  else begin
    stripe_incr t.deduped;
    false
  end

(* Counter-free re-insertion, for the cross-shard extraction merge:
   losing candidates of a class merge go back into their owning shard's
   tree.  They were extracted moments ago with nothing inserted since
   (extraction runs with no concurrent operations), so a duplicate is
   impossible, and the lifetime statistics must not move — every pending
   tuple is counted exactly once at its original insert, keeping
   [inserted_total] / [deduped_total] bit-comparable with unsharded
   runs. *)
let reinsert t tuple ts = ignore (insert_raw t tuple ts)

(* -- batched insertion ---------------------------------------------- *)

(* Descend (creating nodes as needed) along a timestamp; returns every
   node on the path, root first, so counts can be bumped once per run. *)
let node_path t (ts : Timestamp.t) =
  let depth = Array.length ts in
  let path = Array.make (depth + 1) t.root in
  for d = 0 to depth - 1 do
    let node = path.(d) in
    let child =
      match ts.(d) with
      | Timestamp.CLit (rank, _) -> lit_child t (lit_children t node) rank
      | Timestamp.CSeq v ->
          (seq_children t node).om_find_or_add v (fun () -> make_node t)
      | Timestamp.CPar v ->
          (par_children t node).pm_find_or_add v (fun () -> make_node t)
    in
    path.(d + 1) <- child
  done;
  path

let insert_batch t (tuples : Tuple.t array) (tss : Timestamp.t array) n =
  let res = Array.make (max n 0) false in
  if n > 0 then begin
    (* Same-timestamp fast path: literal-only orderbys memoise one
       timestamp array per table (engine [const_ts]), so a batch from
       one such table carries the *same* array in every slot.  Physical
       equality proves structural equality, and the whole batch is one
       leaf run — skip the grouping table entirely. *)
    let ts0 = tss.(0) in
    let uniform = ref true in
    (try
       for i = 1 to n - 1 do
         if not (tss.(i) == ts0) then begin
           uniform := false;
           raise Exit
         end
       done
     with Exit -> ());
    if !uniform then begin
      let run = List.init n Fun.id in
      let path = node_path t ts0 in
      let leaf_node = path.(Array.length path - 1) in
      let added =
        leaf_node.leaf.l_add_many tuples run (fun p -> res.(p) <- true)
      in
      if added > 0 then
        Array.iter
          (fun nd -> ignore (Atomic.fetch_and_add nd.count added))
          path;
      stripe_add t.inserted added;
      stripe_add t.deduped (n - added)
    end
    else begin
    (* Group by timestamp: structural equality of timestamps IS tree-path
       identity ([par] components with different values live in different
       subtrees), so one hash-table pass — O(n), no comparator sort —
       yields the per-leaf runs.  Each run costs one descent and one lock
       round per shard; within a run input order is kept, so the *first*
       occurrence of an in-batch duplicate is the one reported
       inserted. *)
    let groups : (Timestamp.t, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    for i = n - 1 downto 0 do
      (* reverse iteration + prepend = input order inside each group *)
      let ts = tss.(i) in
      match Hashtbl.find_opt groups ts with
      | Some cell -> cell := i :: !cell
      | None ->
          let cell = ref [ i ] in
          Hashtbl.replace groups ts cell;
          order := ts :: !order
    done;
    let inserted = ref 0 in
    List.iter
      (fun ts ->
        let run = !(Hashtbl.find groups ts) in
        let path = node_path t ts in
        let leaf_node = path.(Array.length path - 1) in
        let added =
          leaf_node.leaf.l_add_many tuples run (fun p -> res.(p) <- true)
        in
        if added > 0 then
          Array.iter
            (fun nd -> ignore (Atomic.fetch_and_add nd.count added))
            path;
        inserted := !inserted + added)
      !order;
    stripe_add t.inserted !inserted;
    stripe_add t.deduped (n - !inserted)
    end
  end;
  res

(* Extraction of the minimal equivalence class.  Single-threaded; uses
   the subtree counts to skip empty children in O(1).  Decrements counts
   on the unwind by the number of tuples taken. *)
let rec extract node =
  if Atomic.get node.count = 0 then []
  else
    let taken =
      if not (node.leaf.l_is_empty ()) then node.leaf.l_pop_all ()
      else
        match Atomic.get node.lit with
        | Some slots when lit_any_nonempty slots -> extract_lit slots
        | _ -> (
            match Atomic.get node.seq with
            | Some om when not (om.om_is_empty ()) -> extract_seq om
            | _ -> (
                match Atomic.get node.par with
                | Some pm -> extract_par pm
                | None -> []))
    in
    let n = List.length taken in
    if n > 0 then ignore (Atomic.fetch_and_add node.count (-n));
    taken

and lit_any_nonempty slots =
  Array.exists
    (fun slot ->
      match Atomic.get slot with
      | Some child -> Atomic.get child.count > 0
      | None -> false)
    slots

and extract_lit slots =
  (* First nonempty rank: ranks are the linear extension, so the lowest
     nonempty rank holds the minimal timestamps. *)
  let rec go rank =
    if rank >= Array.length slots then []
    else
      match Atomic.get slots.(rank) with
      | Some child when Atomic.get child.count > 0 -> extract child
      | _ -> go (rank + 1)
  in
  go 0

and extract_seq om =
  let rec go () =
    match om.om_min () with
    | None -> []
    | Some (k, child) ->
        let taken = extract child in
        let emptied = Atomic.get child.count = 0 in
        if emptied then om.om_remove k;
        if taken = [] then (
          (* Only a stale empty child can yield nothing; a non-empty
             child failing to extract would mean corrupted counts. *)
          assert emptied;
          go ())
        else taken
  in
  go ()

and extract_par pm =
  (* All subtrees of a par level are one equivalence class: take the
     minimal class of every child and return the union. *)
  List.concat_map
    (fun (k, child) ->
      let taken = extract child in
      if Atomic.get child.count = 0 then pm.pm_remove k;
      taken)
    (pm.pm_entries ())

let extract_min_class t = extract t.root
