(* The per-domain firing frame: which rule is executing on this domain
   right now, at what timestamp it was triggered, and which Gamma tuples
   its body literals have bound so far.

   The engine maintains one frame per domain through DLS and saves /
   restores it around every rule invocation, so the frame survives the
   two ways firings nest on one domain: -noDelta puts fire rules
   synchronously inside the putting task, and a blocking fork/join
   [join] may execute a stolen task (another tuple's rules) before the
   joiner resumes.  Both provenance capture ([Lineage]) and the runtime
   causality auditor read the frame; with both features off the engine
   never touches it, keeping the put path allocation-free. *)

type t = {
  mutable rule : int;
      (* id of the executing rule (>= 0), [seed_rule] outside any
         firing, [action_rule] inside an external-action handler *)
  mutable now : Timestamp.t option;
      (* timestamp of the trigger tuple — the "T" of the law of
         causality for this firing.  More precise than the engine's
         current class timestamp for -noDelta chains, whose nested
         firings run at the nested trigger's own (later) time. *)
  mutable bound : Tuple.t list;
      (* tuples bound by enclosing body literals, innermost first; the
         trigger tuple is always the last element *)
  mutable strict : int;
      (* > 0 inside a negative/aggregate query, where the law demands
         strictly-earlier timestamps *)
  mutable past : Tuple.t list;
      (* tuples visited by *completed* positive scans of this firing.
         A put after a scan finished still depends on what the scan saw
         (the rule bound them into locals), but [bound] has already
         popped them — [past] keeps them so lineage captures the full
         bound-input frame, not just the trigger.  The visited set of a
         completed positive scan is a function of Gamma at the class
         timestamp, hence schedule-independent; strict (negative /
         aggregate) scans are excluded — their contribution is the
         scanned *aggregate*, and retaining whole scans would make
         parent arrays unbounded.  Reset at each firing entry,
         saved/restored exactly like [bound]. *)
}

let seed_rule = -1
let action_rule = -2

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { rule = seed_rule; now = None; bound = []; strict = 0; past = [] })

let get () = Domain.DLS.get key

(* Strict-query scope: entered by the aggregate/negative Query
   combinators so the auditor can demand [<] instead of [<=] for every
   tuple the scan visits.  Counted, not boolean — aggregate scans can
   nest (a reducer projection may itself query). *)
let enter_strict fr = fr.strict <- fr.strict + 1
let exit_strict fr = fr.strict <- fr.strict - 1

let with_strict f =
  let fr = get () in
  enter_strict fr;
  match f () with
  | v ->
      exit_strict fr;
      v
  | exception e ->
      exit_strict fr;
      raise e
