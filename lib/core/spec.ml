(* Declarative rule metadata: what a rule reads and puts, described
   symbolically in terms of the trigger tuple's fields.

   This is the information the original JStar compiler extracts from the
   rule source and hands to the SMT solvers (§4).  In the embedded
   runtime, rule bodies are opaque OCaml functions, so the programmer
   states the same facts here; the causality checker then discharges the
   proof obligations with a difference-logic solver, and the dependency
   graph tools use the table names. *)

(* Integer-valued symbolic expression over the trigger tuple's fields.
   The difference-logic fragment: a field plus a constant, or a constant.
   [Unknown] means "no information" — obligations mentioning it fail,
   producing the paper's warning. *)
type iexpr =
  | Field of string (* value of a trigger field *)
  | Const of int
  | Add of iexpr * int
  | Unknown

let rec normalise = function
  | Add (e, 0) -> normalise e
  | Add (Add (e, a), b) -> normalise (Add (e, a + b))
  | Add (Const a, b) -> Const (a + b)
  | Add (Unknown, _) -> Unknown
  | e -> e

(* Decompose into (base field, offset): Field f + c, or a pure constant,
   or unknown. *)
type flat = FField of string * int | FConst of int | FUnknown

let flatten e =
  match normalise e with
  | Field f -> FField (f, 0)
  | Const c -> FConst c
  | Add (Field f, c) -> FField (f, c)
  | Add (Const a, c) -> FConst (a + c)
  | Add (Add _, _) | Add (Unknown, _) -> FUnknown
  | Unknown -> FUnknown

(* A symbolic timestamp: for each orderby entry of the target table,
   either the literal (implied by the table) or the int expression the
   rule assigns to that seq/par field. *)
type ts_binding = { field : string; expr : iexpr }

type read_kind =
  | Positive (* plain [get]: allowed at timestamps <= trigger *)
  | Negative (* [get uniq? ... == null] tests: must be < trigger *)
  | Aggregate (* min/count/sum/reduce queries: must be < trigger *)

type read_spec = {
  rd_table : string;
  rd_kind : read_kind;
  rd_ts : ts_binding list;
      (* known bindings for the read's orderby fields; missing fields are
         unconstrained *)
  rd_prefix : iexpr list;
      (* the leading key fields the rule's body passes as the query
         prefix, as expressions over the trigger tuple ([Field] entries
         for a plain hash join).  Purely descriptive for the checker;
         the batched firing path ([Config.batch_fire]) uses it to sort
         each (rule, table) chunk by join key so equal probes become
         one cursor hit.  Empty = undeclared (no sort). *)
}

type put_spec = {
  pt_table : string;
  pt_ts : ts_binding list;
  pt_when : string option; (* human label of the condition guarding it *)
}

(* Extra difference constraints known to hold when the rule fires —
   tuple invariants and rule guards, e.g. "distance >= 0" as
   [Ge (Field "distance", Const 0)]. *)
type constr =
  | Le of iexpr * iexpr (* a <= b *)
  | Lt of iexpr * iexpr
  | Eq of iexpr * iexpr

let read ?(kind = Positive) ?(ts = []) ?(prefix = []) table =
  { rd_table = table; rd_kind = kind; rd_ts = ts; rd_prefix = prefix }

let put ?when_ ?(ts = []) table = { pt_table = table; pt_ts = ts; pt_when = when_ }

let bind field expr = { field; expr }

let pp_iexpr ppf e =
  let rec go ppf = function
    | Field f -> Fmt.string ppf f
    | Const c -> Fmt.int ppf c
    | Add (e, c) when c >= 0 -> Fmt.pf ppf "%a+%d" go e c
    | Add (e, c) -> Fmt.pf ppf "%a-%d" go e (-c)
    | Unknown -> Fmt.string ppf "?"
  in
  go ppf (normalise e)
