(** Memoized monoid aggregates: per-(table, memo) caches of monoid
    partials by group key, updated at the Phase-A barrier instead of
    invalidated, so an aggregate query is O(1) after its first touch.
    Typed access goes through {!Query.memo}; the engine owns the
    lifecycle (creation per run, {!note_inserted} per accepted class
    tuple). *)

type t

type univ = ..
(** Universal type bridging the untyped engine-side entry list and the
    typed lookup closures: each {!Query.memo} token mints a private
    extension constructor and injects/projects through it. *)

val create : cacheable:bool array -> t
(** [cacheable.(id)] = the engine guarantees table [id]'s Gamma grows
    only at Phase-A barriers and never evicts; others always miss. *)

val cacheable : t -> int -> bool

val get_or_register :
  t ->
  table:int ->
  memo_id:int ->
  mk:(unit -> (Tuple.t -> unit) * univ) ->
  univ option
(** The Phase-B read path.  Returns the cached state for
    [(table, memo_id)], running [mk] first if this is the first touch —
    [mk] must scan current Gamma and return the update closure plus the
    injected state.  [None] iff the table is not cacheable.
    Registrations from concurrent rule bodies are serialized. *)

val note_inserted : t -> Tuple.t -> unit
(** The barrier write path: feed one tuple the store newly accepted
    (never a dedup drop) to every registered partial of its table.
    Single-threaded by the engine's phase structure. *)

val note_batch : t -> Tuple.t array -> int -> unit
(** [note_batch t tuples n]: {!note_inserted} over [tuples.(0..n-1)],
    paying one entry-list lookup per contiguous same-table run instead
    of one per tuple — the vectorized Phase-A barrier update.  Same
    single-threaded contract. *)

val entries_count : t -> int
(** Registered (table, memo) partials — exported as a gauge. *)
