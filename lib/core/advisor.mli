(** Adaptive store advisor: per-prefix-length query histograms over
    every table, reviewed at Phase-A barriers, promoting hot scan
    patterns to secondary indexes mid-run through {!Store.indexed}
    handles.  Decisions are deterministic (the histogram at a barrier
    is a function of the schedule-independent class sequence) and only
    change how queries iterate, never their results.  Created by the
    engine from {!Config.advisor}. *)

type t
type table

val make_table :
  name:string ->
  arity:int ->
  handle:Store.indexed_handle option ->
  size:(unit -> int) ->
  table
(** One slot per table id; [handle = None] marks stores the advisor
    may observe but never index (custom, windowed, native, -noGamma). *)

val create :
  warmup:int ->
  min_queries:int ->
  min_size:int ->
  demote_windows:int ->
  table array ->
  t
(** [demote_windows]: consecutive cold review windows before a
    promoted index is dropped again; 0 disables demotion. *)

val note_query : t -> int -> int -> unit
(** [note_query t id plen]: one prefix query of length [plen] hit table
    [id].  Striped; called from concurrent rule bodies. *)

val review :
  t ->
  on_promote:(table_id:int -> prefix_len:int -> unit) ->
  on_demote:(table_id:int -> prefix_len:int -> unit) ->
  unit
(** Barrier hook.  Cheap no-op until the total query count crosses the
    next review threshold; then promotes at most one index per table,
    ages every advisor-promoted index towards demotion (an index
    serving fewer than [min_queries/8] of the window's queries is cold;
    [demote_windows] consecutive cold windows drop it), and reports
    each decision through the callbacks.  A demoted length must re-earn
    [min_queries] fresh scans before re-promotion.  Must run with no
    concurrent store operations (the engine's Phase-A barrier). *)

val promotions_total : t -> int
(** Lifetime promotions — exported as the [advisor.promotions]
    counter. *)

val demotions_total : t -> int
(** Lifetime demotions — exported as the [advisor.demotions]
    counter. *)

val histogram : t -> int -> (int * int) list
(** [(prefix_len, queries)] pairs for a table id, lengths [0..arity] —
    the per-prefix-length query histogram behind the metrics
    registry. *)

val table_name : t -> int -> string

val index_lens : t -> int -> int list
(** Current secondary-index lengths on a table ([] when not
    indexable). *)
