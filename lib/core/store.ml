(* Gamma table stores.

   The paper's point about "late commitment to data structures" is that
   the store behind each relation is chosen *after* the program is
   written, via compiler hints or runtime flags, without touching the
   program text.  We reproduce that with a first-class store interface
   and the paper's four families:

   - [tree]       : ordered set — TreeSet, the sequential default;
   - [skiplist]   : concurrent ordered set — ConcurrentSkipListSet,
                    the parallel default;
   - [hash_index] : hash map keyed by the first [prefix_len] fields —
                    the HashSet / ConcurrentHashMap optimisation used
                    for the PvWatts(year, month) queries;
   - [native_int_array] / [native_float_array]: dense int-keyed tables
     with a single dependent value — the "native-arrays" optimisation of
     §6.4/§6.6 (Java 2D arrays for Matrix, double[2][100M] for Median);
   - [custom]     : anything the application supplies, the equivalent of
     overriding the store factory method by inheritance (§6.2). *)

type t = {
  kind : string;
  insert : Tuple.t -> bool; (* false = duplicate; store unchanged *)
  insert_batch : Tuple.t array -> int -> int -> bool array;
      (* insert arr.(lo..hi-1); slot i reports arr.(lo+i).  Stores that
         can amortise work across a sorted run (one bucket lock, one
         descent) override the element-wise default. *)
  mem : Tuple.t -> bool;
  iter_prefix : Value.t array -> (Tuple.t -> unit) -> unit;
      (* all tuples whose leading fields equal the prefix *)
  probe_prefix : Value.t array -> Tuple.t list option;
      (* [Some matches] — the same tuples (same order) [iter_prefix]
         would visit, as a cacheable value for the batched hash-join
         cursor; [None] = no O(bucket) access path for this prefix,
         fall back to [iter_prefix] *)
  iter : (Tuple.t -> unit) -> unit;
  size : unit -> int;
}

let seq_batch insert arr lo hi = Array.init (hi - lo) (fun k -> insert arr.(lo + k))
let no_probe _ = None

type kind_spec =
  | Tree
  | Skiplist
  | Hash_index of int (* prefix length *)
  | Custom of (Schema.t -> t)

(* ------------------------------------------------------------------ *)
(* Ordered stores: prefix queries become range scans.                  *)

(* Lower bound tuple for a prefix: prefix fields followed by each
   remaining column's minimal value. *)
let min_value_of_ty = function
  | Value.TInt -> Value.Int min_int
  | Value.TFloat -> Value.Float neg_infinity
  | Value.TStr -> Value.Str ""
  | Value.TBool -> Value.Bool false

let lower_bound_fields schema prefix =
  Array.init (Schema.arity schema) (fun i ->
      if i < Array.length prefix then prefix.(i)
      else min_value_of_ty (Schema.field_ty schema i))

(* The comparator is bound once at store creation: the schema-compiled
   field comparator, so the per-comparison cost is one closure call with
   monomorphic fast paths — no option lookup, no per-field dispatch.
   (The generic [Tuple.compare] alternative was retired after the
   hot-path ablation priced it; [Config.specialized_compare] is a
   no-op kept for config compatibility.) *)
let tuple_cmp schema =
  let fc = Schema.fields_compare schema in
  fun a b ->
    if a == b then 0
    else
      let c =
        Int.compare (Tuple.schema a).Schema.id (Tuple.schema b).Schema.id
      in
      if c <> 0 then c else fc (Tuple.fields a) (Tuple.fields b)

let tree schema =
  let module TSet = Set.Make (struct
    type t = Tuple.t

    let compare = tuple_cmp schema
  end) in
  let set = ref TSet.empty in
  let insert t =
    if TSet.mem t !set then false
    else (
      set := TSet.add t !set;
      true)
  in
  {
    kind = "tree";
    insert;
    insert_batch = seq_batch insert;
    mem = (fun t -> TSet.mem t !set);
    iter_prefix =
      (fun prefix f ->
        let low =
          (* The lower bound needs no type check, so build it unsafely
             through the same constructor path as ordinary tuples. *)
          Tuple.make schema (lower_bound_fields schema prefix)
        in
        let seq = TSet.to_seq_from low !set in
        let rec go s =
          match s () with
          | Seq.Nil -> ()
          | Seq.Cons (t, rest) ->
              if Tuple.matches_prefix t prefix then (
                f t;
                go rest)
        in
        go seq);
    probe_prefix =
      (fun prefix ->
        (* Ordered stores batch too: materialise the range scan in
           visit order as a cacheable value, so negative/aggregate
           probes pay one scan per distinct prefix instead of one per
           trigger. *)
        let low = Tuple.make schema (lower_bound_fields schema prefix) in
        let seq = TSet.to_seq_from low !set in
        let rec go s acc =
          match s () with
          | Seq.Cons (t, rest) when Tuple.matches_prefix t prefix ->
              go rest (t :: acc)
          | _ -> List.rev acc
        in
        Some (go seq []));
    iter = (fun f -> TSet.iter f !set);
    size = (fun () -> TSet.cardinal !set);
  }

let skiplist schema =
  let set = Jstar_cds.Cset.create ~compare:(tuple_cmp schema) () in
  {
    kind = "skiplist";
    insert = (fun t -> Jstar_cds.Cset.add set t);
    insert_batch =
      (fun arr lo hi -> Jstar_cds.Cset.add_batch set (Array.sub arr lo (hi - lo)));
    mem = (fun t -> Jstar_cds.Cset.mem set t);
    iter_prefix =
      (fun prefix f ->
        let low = Tuple.make schema (lower_bound_fields schema prefix) in
        Jstar_cds.Cset.iter_from set low (fun t ->
            if Tuple.matches_prefix t prefix then (
              f t;
              true)
            else false));
    probe_prefix =
      (fun prefix ->
        (* Same materialised range scan as [tree]: the engine only
           probes stores whose Gamma is static for the phase, so the
           snapshot is a safe cacheable value. *)
        let low = Tuple.make schema (lower_bound_fields schema prefix) in
        let acc = ref [] in
        Jstar_cds.Cset.iter_from set low (fun t ->
            if Tuple.matches_prefix t prefix then (
              acc := t :: !acc;
              true)
            else false);
        Some (List.rev !acc));
    iter = (fun f -> Jstar_cds.Cset.iter set f);
    size = (fun () -> Jstar_cds.Cset.length set);
  }

(* ------------------------------------------------------------------ *)
(* Hash-indexed store                                                  *)

(* Buckets are keyed by the *hash* of the first [prefix_len] fields —
   an immediate int, so neither inserts nor probes allocate a key
   sub-array (the old keys copied the prefix with [Array.sub] on every
   [insert]/[mem]).  Two prefixes colliding into one bucket is safe:
   dedup probes the full-tuple [seen] set and every read filters with
   [Tuple.matches_prefix]. *)
type bucket = {
  b_mutex : Mutex.t;
  b_seen : Tuple.Dset.t; (* full-tuple dedup, cached structural hash *)
  mutable b_items : Tuple.t list; (* reverse insertion order *)
}

let hash_index ~prefix_len schema =
  if prefix_len < 1 || prefix_len > Schema.arity schema then
    raise
      (Schema.Schema_error
         (Fmt.str "%s: hash index prefix length %d out of range"
            schema.Schema.name prefix_len));
  let buckets : (int, bucket) Jstar_cds.Chashmap.t =
    Jstar_cds.Chashmap.create ~hash:(fun (h : int) -> h) ()
  in
  let total = Atomic.make 0 in
  let bucket_of h =
    Jstar_cds.Chashmap.find_or_add buckets h (fun () ->
        {
          b_mutex = Mutex.create ();
          b_seen = Tuple.Dset.create 16;
          b_items = [];
        })
  in
  let with_bucket b f =
    Mutex.lock b.b_mutex;
    Fun.protect f ~finally:(fun () -> Mutex.unlock b.b_mutex)
  in
  let key_of_tuple t = Value.hash_prefix (Tuple.fields t) prefix_len in
  (* Unlocked primitive; callers hold [b.b_mutex]. *)
  let bucket_insert b t =
    if Tuple.Dset.add_if_absent b.b_seen t then (
      b.b_items <- t :: b.b_items;
      Atomic.incr total;
      true)
    else false
  in
  {
    kind = Fmt.str "hash[%d]" prefix_len;
    insert =
      (fun t ->
        let b = bucket_of (key_of_tuple t) in
        with_bucket b (fun () -> bucket_insert b t));
    insert_batch =
      (fun arr lo hi ->
        (* Batches arrive sorted, so equal prefixes are contiguous: pay
           one bucket lookup and one lock acquisition per run instead of
           one per tuple. *)
        let res = Array.make (hi - lo) false in
        let k = ref lo in
        while !k < hi do
          let pf = Tuple.fields arr.(!k) in
          let e = ref (!k + 1) in
          while
            !e < hi
            && Value.equal_prefix (Tuple.fields arr.(!e)) pf prefix_len
          do
            incr e
          done;
          let b = bucket_of (Value.hash_prefix pf prefix_len) in
          with_bucket b (fun () ->
              for j = !k to !e - 1 do
                if bucket_insert b arr.(j) then res.(j - lo) <- true
              done);
          k := !e
        done;
        res);
    mem =
      (fun t ->
        match Jstar_cds.Chashmap.find_opt buckets (key_of_tuple t) with
        | None -> false
        | Some b -> with_bucket b (fun () -> Tuple.Dset.mem b.b_seen t));
    iter_prefix =
      (fun prefix f ->
        if Array.length prefix >= prefix_len then (
          (* Exact or over-specified prefix: one bucket (+ filter). *)
          match
            Jstar_cds.Chashmap.find_opt buckets
              (Value.hash_prefix prefix prefix_len)
          with
          | None -> ()
          | Some b ->
              let items = with_bucket b (fun () -> b.b_items) in
              List.iter
                (fun t -> if Tuple.matches_prefix t prefix then f t)
                items)
        else
          (* Under-specified prefix: full scan.  Legal but defeats the
             index — the case a secondary index (or the advisor) fixes
             without re-keying the primary. *)
          Jstar_cds.Chashmap.iter buckets (fun _ b ->
              let items = with_bucket b (fun () -> b.b_items) in
              List.iter
                (fun t -> if Tuple.matches_prefix t prefix then f t)
                items));
    probe_prefix =
      (fun prefix ->
        (* The batched hash-join path: exactly [iter_prefix]'s bucket
           case, returned as a value.  [b_items] is immutable once read
           (inserts cons a fresh head), so no copy is needed. *)
        if Array.length prefix < prefix_len then begin
          (* Under-specified prefix: the same full scan [iter_prefix]
             takes, materialised in the same traversal order — one scan
             per distinct prefix amortised by the firing cursor rather
             than one per trigger (the negative/aggregate batch path). *)
          let acc = ref [] in
          Jstar_cds.Chashmap.iter buckets (fun _ b ->
              let items = with_bucket b (fun () -> b.b_items) in
              List.iter
                (fun t -> if Tuple.matches_prefix t prefix then acc := t :: !acc)
                items);
          Some (List.rev !acc)
        end
        else
          match
            Jstar_cds.Chashmap.find_opt buckets
              (Value.hash_prefix prefix prefix_len)
          with
          | None -> Some []
          | Some b ->
              let items = with_bucket b (fun () -> b.b_items) in
              Some
                (List.filter (fun t -> Tuple.matches_prefix t prefix) items));
    iter =
      (fun f ->
        Jstar_cds.Chashmap.iter buckets (fun _ b ->
            let items = with_bucket b (fun () -> b.b_items) in
            List.iter f items));
    size = (fun () -> Atomic.get total);
  }

(* ------------------------------------------------------------------ *)
(* Native dense arrays                                                 *)

(* A table (int k1, ..., int kn -> int v) whose keys are dense within
   known dimensions maps to a flat int array plus a presence bitmap.
   The returned [handle] gives the application O(1) unboxed access —
   the equivalent of the Java 2D-array Gamma stores of §6.4. *)

type int_array_handle = {
  ia_get : int array -> int;
  ia_set_raw : int array -> int -> unit; (* bypasses the store interface *)
  ia_present : int array -> bool;
  ia_data : int array;
}

let flat_index dims keys =
  let n = Array.length dims in
  if Array.length keys <> n then invalid_arg "native store: key arity";
  let rec go i acc =
    if i >= n then acc
    else
      let k = keys.(i) in
      if k < 0 || k >= dims.(i) then
        invalid_arg
          (Fmt.str "native store: key %d out of range [0,%d)" k dims.(i))
      else go (i + 1) ((acc * dims.(i)) + k)
  in
  go 0 0

let total_size dims = Array.fold_left ( * ) 1 dims

let native_int_array ~dims schema =
  let nkeys = Array.length dims in
  if Schema.arity schema <> nkeys + 1 then
    raise
      (Schema.Schema_error
         (schema.Schema.name
        ^ ": native int store needs one dependent value column"));
  let data = Array.make (total_size dims) 0 in
  let present = Bytes.make (total_size dims) '\000' in
  let count = Atomic.make 0 in
  let keys_of_tuple t =
    Array.init nkeys (fun i -> Tuple.int_at t i)
  in
  let handle =
    {
      ia_get = (fun keys -> data.(flat_index dims keys));
      ia_set_raw =
        (fun keys v ->
          let i = flat_index dims keys in
          data.(i) <- v;
          if Bytes.get present i = '\000' then (
            Bytes.set present i '\001';
            Atomic.incr count));
      ia_present = (fun keys -> Bytes.get present (flat_index dims keys) <> '\000');
      ia_data = data;
    }
  in
  let tuple_at idx =
    let keys = Array.make nkeys 0 in
    let rec unflatten i rem =
      if i >= 0 then (
        keys.(i) <- rem mod dims.(i);
        unflatten (i - 1) (rem / dims.(i)))
    in
    unflatten (nkeys - 1) idx;
    Tuple.make schema
      (Array.append
         (Array.map (fun k -> Value.Int k) keys)
         [| Value.Int data.(idx) |])
  in
  let insert t =
    let keys = keys_of_tuple t in
    let i = flat_index dims keys in
    if Bytes.get present i <> '\000' then false
    else (
      data.(i) <- Tuple.int_at t nkeys;
      Bytes.set present i '\001';
      Atomic.incr count;
      true)
  in
  let store =
    {
      kind = "native-int";
      insert;
      insert_batch = seq_batch insert;
      mem =
        (fun t ->
          let i = flat_index dims (keys_of_tuple t) in
          Bytes.get present i <> '\000' && data.(i) = Tuple.int_at t nkeys);
      iter_prefix =
        (fun prefix f ->
          (* Reconstructs tuples on the fly; applications needing speed
             use the typed handle instead. *)
          let n = total_size dims in
          for i = 0 to n - 1 do
            if Bytes.get present i <> '\000' then
              let t = tuple_at i in
              if Tuple.matches_prefix t prefix then f t
          done);
      probe_prefix = no_probe;
      iter =
        (fun f ->
          let n = total_size dims in
          for i = 0 to n - 1 do
            if Bytes.get present i <> '\000' then f (tuple_at i)
          done);
      size = (fun () -> Atomic.get count);
    }
  in
  (store, handle)

(* The float twin of [native_int_array]: (int keys -> double value)
   over a flat [float array] — the Median program's double[2][100M]. *)
type float_array_handle = {
  fa_get : int array -> float;
  fa_set_raw : int array -> float -> unit;
  fa_present : int array -> bool;
  fa_data : float array;
}

let native_float_array ~dims schema =
  let nkeys = Array.length dims in
  if Schema.arity schema <> nkeys + 1 then
    raise
      (Schema.Schema_error
         (schema.Schema.name
        ^ ": native float store needs one dependent value column"));
  let data = Array.make (total_size dims) 0.0 in
  let present = Bytes.make (total_size dims) '\000' in
  let count = Atomic.make 0 in
  let keys_of_tuple t = Array.init nkeys (fun i -> Tuple.int_at t i) in
  let handle =
    {
      fa_get = (fun keys -> data.(flat_index dims keys));
      fa_set_raw =
        (fun keys v ->
          let i = flat_index dims keys in
          data.(i) <- v;
          if Bytes.get present i = '\000' then (
            Bytes.set present i '\001';
            Atomic.incr count));
      fa_present =
        (fun keys -> Bytes.get present (flat_index dims keys) <> '\000');
      fa_data = data;
    }
  in
  let tuple_at idx =
    let keys = Array.make nkeys 0 in
    let rec unflatten i rem =
      if i >= 0 then (
        keys.(i) <- rem mod dims.(i);
        unflatten (i - 1) (rem / dims.(i)))
    in
    unflatten (nkeys - 1) idx;
    Tuple.make schema
      (Array.append
         (Array.map (fun k -> Value.Int k) keys)
         [| Value.Float data.(idx) |])
  in
  let insert t =
    let keys = keys_of_tuple t in
    let i = flat_index dims keys in
    if Bytes.get present i <> '\000' then false
    else (
      data.(i) <- Tuple.float_at t nkeys;
      Bytes.set present i '\001';
      Atomic.incr count;
      true)
  in
  let store =
    {
      kind = "native-float";
      insert;
      insert_batch = seq_batch insert;
      mem =
        (fun t ->
          let i = flat_index dims (keys_of_tuple t) in
          Bytes.get present i <> '\000' && data.(i) = Tuple.float_at t nkeys);
      iter_prefix =
        (fun prefix f ->
          let n = total_size dims in
          for i = 0 to n - 1 do
            if Bytes.get present i <> '\000' then
              let t = tuple_at i in
              if Tuple.matches_prefix t prefix then f t
          done);
      probe_prefix = no_probe;
      iter =
        (fun f ->
          let n = total_size dims in
          for i = 0 to n - 1 do
            if Bytes.get present i <> '\000' then f (tuple_at i)
          done);
      size = (fun () -> Atomic.get count);
    }
  in
  (store, handle)

let of_spec spec schema =
  match spec with
  | Tree -> tree schema
  | Skiplist -> skiplist schema
  | Hash_index k -> hash_index ~prefix_len:k schema
  | Custom f -> f schema

let default_for ~parallel schema =
  if parallel then skiplist schema else tree schema

(* ------------------------------------------------------------------ *)
(* Indexed wrapper: secondary access paths over a primary store        *)

type indexed_handle = {
  ih_promote : int -> bool;
  ih_demote : int -> bool;
  ih_lens : unit -> int list;
}

let indexed ?(prefix_lens = []) schema inner =
  let mk len = Index.create ~prefix_len:len schema in
  let indexes =
    Atomic.make (List.map mk (List.sort_uniq Int.compare prefix_lens))
  in
  (* Largest index still covered by the query prefix: the tightest
     bucket, fewest residual filters. *)
  let best_for plen ixs =
    List.fold_left
      (fun acc ix ->
        let l = Index.prefix_len ix in
        if l > plen then acc
        else
          match acc with
          | Some b when Index.prefix_len b >= l -> acc
          | _ -> Some ix)
      None ixs
  in
  let store =
    {
      kind = "indexed:" ^ inner.kind;
      insert =
        (fun t ->
          if inner.insert t then (
            List.iter (fun ix -> Index.add ix t) (Atomic.get indexes);
            true)
          else false);
      insert_batch =
        (fun arr lo hi ->
          let res = inner.insert_batch arr lo hi in
          (match Atomic.get indexes with
          | [] -> ()
          | ixs ->
              Array.iteri
                (fun k fresh ->
                  if fresh then
                    List.iter (fun ix -> Index.add ix arr.(lo + k)) ixs)
                res);
          res);
      mem = inner.mem;
      iter_prefix =
        (fun prefix f ->
          match best_for (Array.length prefix) (Atomic.get indexes) with
          | Some ix -> Index.iter_prefix ix prefix f
          | None -> inner.iter_prefix prefix f);
      probe_prefix =
        (fun prefix ->
          (* Must route exactly like [iter_prefix] so a batched probe
             visits the same tuples in the same order as a scan. *)
          match best_for (Array.length prefix) (Atomic.get indexes) with
          | Some ix -> Some (Index.probe ix prefix)
          | None -> inner.probe_prefix prefix);
      iter = inner.iter;
      size = inner.size;
    }
  in
  let promote len =
    if List.exists (fun ix -> Index.prefix_len ix = len) (Atomic.get indexes)
    then false
    else begin
      (* Build complete, then publish: readers either still scan the
         primary or see the fully backfilled index, never a partial one.
         Callers run this at a barrier (no concurrent inserts), so the
         backfill cannot miss tuples either. *)
      let ix = mk len in
      inner.iter (fun t -> Index.add ix t);
      Atomic.set indexes (ix :: Atomic.get indexes);
      true
    end
  in
  let demote len =
    (* Drop the index with exactly this length.  Publishing the shorter
       list is a single atomic store; readers mid-query keep iterating
       the removed index (it stays consistent, just unreferenced), new
       queries fall back to the primary or a remaining index.  Like
       [promote], callers run this at a barrier. *)
    let ixs = Atomic.get indexes in
    if List.exists (fun ix -> Index.prefix_len ix = len) ixs then begin
      Atomic.set indexes
        (List.filter (fun ix -> Index.prefix_len ix <> len) ixs);
      true
    end
    else false
  in
  ( store,
    {
      ih_promote = promote;
      ih_demote = demote;
      ih_lens =
        (fun () ->
          List.sort Int.compare (List.map Index.prefix_len (Atomic.get indexes)));
    } )


(* ------------------------------------------------------------------ *)
(* Windowed stores: manual lifetime hints                              *)

(* Step 4 of the tuple lifecycle (Fig 3) is garbage collection of tuples
   that can never be queried again.  "Currently, this program analysis
   is not automated, so we simply retain all tuples, or use manual
   lifetime hints from the user" — [windowed] is that hint, generalised
   from the Median program's keep-only-iter-and-iter+1 trick: tuples are
   bucketed by an integer field, and only the buckets within [width] of
   the largest value seen remain queryable; older buckets are dropped
   wholesale. *)

let windowed ~field ~width inner schema =
  if width < 1 then invalid_arg "Store.windowed: width < 1";
  let pos = Schema.field_pos schema field in
  let buckets : (int, t) Hashtbl.t = Hashtbl.create 8 in
  let mutex = Mutex.create () in
  let high = ref min_int in
  let with_lock f =
    Mutex.lock mutex;
    Fun.protect f ~finally:(fun () -> Mutex.unlock mutex)
  in
  let evict_older_than keep_from =
    Hashtbl.iter
      (fun k _ -> if k < keep_from then Hashtbl.remove buckets k)
      (Hashtbl.copy buckets)
  in
  let bucket_of v =
    match Hashtbl.find_opt buckets v with
    | Some b -> b
    | None ->
        let b = inner schema in
        Hashtbl.replace buckets v b;
        b
  in
  let live () =
    Hashtbl.fold (fun _ b acc -> b :: acc) buckets []
  in
  let insert t =
    let v = Value.to_int (Tuple.get t pos) in
    with_lock (fun () ->
        if !high <> min_int && v <= !high - width then
          (* The tuple is already outside the window: dropping it is
             the caller's declared intent, and [false] keeps the
             set-semantics contract ("not newly stored"). *)
          false
        else begin
          if v > !high then begin
            high := v;
            evict_older_than (v - width + 1)
          end;
          (bucket_of v).insert t
        end)
  in
  {
    kind = Fmt.str "windowed[%s,%d]" field width;
    insert;
    insert_batch = seq_batch insert;
    mem =
      (fun t ->
        let v = Value.to_int (Tuple.get t pos) in
        with_lock (fun () ->
            match Hashtbl.find_opt buckets v with
            | Some b -> b.mem t
            | None -> false));
    iter_prefix =
      (fun prefix f ->
        let bs = with_lock live in
        List.iter (fun b -> b.iter_prefix prefix f) bs);
    probe_prefix = no_probe;
    iter =
      (fun f ->
        let bs = with_lock live in
        List.iter (fun b -> b.iter f) bs);
    size =
      (fun () ->
        with_lock (fun () ->
            Hashtbl.fold (fun _ b acc -> acc + b.size ()) buckets 0));
  }
