(** The Delta tree: pending tuples of all tables in one multi-level
    priority structure ordered by the causality order, with duplicate
    elimination on insert.

    Concurrency contract (matching the engine's step structure): any
    number of domains may {!insert} concurrently, but
    {!extract_min_class} must run with no concurrent operations. *)

type t

type mode = Sequential | Concurrent
(** Which family of data structures backs the tree levels: stdlib
    [Map]/[Hashtbl] (the paper's TreeMap path, single-threaded only) or
    the concurrent skip list / sharded hash map. *)

val create : mode:mode -> nlits:int -> unit -> t
(** [nlits] is the number of order literals at program freeze time; it
    fixes the width of named-branch arrays.  Leaf dedup tables are keyed
    directly by tuples with their cached structural hash
    ({!Tuple.Dset}); the legacy polymorphic (id, fields) tables are
    retired. *)

val insert : t -> Tuple.t -> Timestamp.t -> bool
(** Add a pending tuple under its timestamp.  Returns [false] (and
    leaves the tree unchanged) when an equal tuple is already pending. *)

val insert_batch : t -> Tuple.t array -> Timestamp.t array -> int -> bool array
(** [insert_batch t tuples tss n] inserts items [0..n-1] of the two
    parallel arrays at once (parallel arrays, not pairs, so batching
    buffers allocate nothing per put).  The batch is grouped by
    timestamp internally (one hash pass, no sort) so that tuples sharing
    a tree path become one run that pays a single descent and takes each
    leaf-shard lock at most once.  Result slot [i] is [true] iff item
    [i] was newly inserted; of several equal tuples in one batch, the
    first by input position wins.  Safe to run concurrently with
    {!insert}. *)

val reinsert : t -> Tuple.t -> Timestamp.t -> unit
(** Counter-free re-insertion for tuples just removed by
    {!extract_min_class} that lost a cross-shard class merge
    ({!Shard.extract_min_class}): puts the tuple back under its
    timestamp without touching {!inserted_total} / {!deduped_total} —
    every pending tuple is counted exactly once, at its original insert.
    Single-threaded, like extraction. *)

val extract_min_class : t -> Tuple.t list
(** Remove and return all minimal tuples — one equivalence class of the
    causality order, including every subtree of [par] levels.  Returns
    [[]] iff the tree is empty.  Single-threaded. *)

val size : t -> int
(** Number of pending tuples. *)

val is_empty : t -> bool

val inserted_total : t -> int
(** Lifetime count of successful inserts. *)

val deduped_total : t -> int
(** Lifetime count of duplicate tuples dropped on insert. *)

val note_deduped : t -> int -> unit
(** Add [k] duplicates dropped by an upstream dedup stage (a batched
    put buffer that filtered them before insert) to the
    {!deduped_total} count, keeping the counter comparable across
    batched and per-tuple put paths. *)

val depth : t -> int
(** Depth of the deepest subtree still holding pending tuples (0 when
    empty) — a gauge for how far timestamps fan out at runtime.  Reads
    racing concurrent inserts may be off by a level; intended for
    metrics snapshots between steps. *)
