(* Query combinators over a rule context: the [get] forms of §3-§4.

   - [iter]/[list]/[fold]: positive queries ([get T(prefix)] with an
     optional residual predicate, the boolean-lambda part of a query).
   - [uniq]: [get uniq? T(...)] — at most one matching tuple expected.
   - [is_empty]: the negative query form ([get uniq? ... == null]).
   - [count]/[min_by]/[reduce]: aggregate queries.

   All of these run against the Gamma database; the law of causality
   makes their results stable (§4), which the causality checker
   verifies per rule. *)

let iter ctx schema ?(prefix = [||]) ?where f =
  (* Branch on [where] once, outside the scan: the [None] case passes
     [f] straight through, so an unfiltered scan (the hash-join hot
     path) allocates no wrapper closure and tests nothing per tuple. *)
  match where with
  | None -> ctx.Rule.iter_prefix schema prefix f
  | Some p -> ctx.Rule.iter_prefix schema prefix (fun t -> if p t then f t)

let fold ctx schema ?prefix ?where ~init ~f () =
  let acc = ref init in
  iter ctx schema ?prefix ?where (fun t -> acc := f !acc t);
  !acc

let list ctx schema ?prefix ?where () =
  List.rev (fold ctx schema ?prefix ?where ~init:[] ~f:(fun acc t -> t :: acc) ())

(* Aggregate and negative queries run inside a [Prov_frame] strict
   scope: the law demands their matches be strictly earlier than the
   trigger, and the runtime auditor ([Config.audit_causality]) enforces
   [<] instead of [<=] for tuples visited inside the scope.  Answers
   served from the aggregate cache never visit tuples, so the auditor
   can only witness scan paths — cached hits are validated by the scan
   that built the partial. *)

let reduce ctx schema ?prefix ?where ~monoid ~f () =
  Prov_frame.with_strict (fun () ->
      fold ctx schema ?prefix ?where ~init:monoid.Reducer.empty
        ~f:(fun acc t -> monoid.Reducer.combine acc (f t))
        ())

(* -- memoized aggregates -------------------------------------------- *)

(* A memo token names one (table, group-by prefix length, monoid,
   projection) aggregate.  Created once per program; each engine run
   keeps its own partials keyed by the token's id (plus negative ids
   for the transparent [count] path below), so tokens are safely shared
   across runs and threads.

   The ['a]-typed lookup closure crosses the untyped {!Agg_cache}
   through a private [univ] extension constructor minted per token —
   the standard universal-type construction, so no [Obj] anywhere. *)

type 'a memo = {
  m_id : int;
  m_schema : Schema.t;
  m_prefix_len : int;
  m_monoid : 'a Reducer.monoid;
  m_f : Tuple.t -> 'a;
  m_inj : (Value.t array -> 'a option) -> Agg_cache.univ;
  m_proj : Agg_cache.univ -> (Value.t array -> 'a option) option;
}

let memo_ids = Atomic.make 0

let memo (type v) schema ~prefix_len ~(monoid : v Reducer.monoid) ~f : v memo =
  if prefix_len < 0 || prefix_len > Schema.arity schema then
    raise
      (Schema.Schema_error
         (Fmt.str "%s: memo group prefix length %d out of range"
            schema.Schema.name prefix_len));
  let module M = struct
    type Agg_cache.univ += S of (Value.t array -> v option)
  end in
  {
    m_id = Atomic.fetch_and_add memo_ids 1;
    m_schema = schema;
    m_prefix_len = prefix_len;
    m_monoid = monoid;
    m_f = f;
    m_inj = (fun l -> M.S l);
    m_proj = (function M.S l -> Some l | _ -> None);
  }

let memo_min_by (type k) schema ~prefix_len ~(key : Tuple.t -> k) :
    Tuple.t option memo =
  let combine a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y ->
        let c = Stdlib.compare (key x) (key y) in
        (* Key ties break by tuple order — the order a tree store's scan
           would encounter them — so the memo is insertion-order-free. *)
        if c < 0 then a
        else if c > 0 then b
        else if Tuple.fast_compare x y <= 0 then a
        else b
  in
  memo schema ~prefix_len
    ~monoid:{ Reducer.empty = None; combine }
    ~f:(fun t -> Some t)

(* First touch of a (table, memo) pair: scan current Gamma into a
   group-key table of partials; afterwards the engine feeds every newly
   accepted tuple through [update] at the barrier. *)
let build ctx (m : 'a memo) () : (Tuple.t -> unit) * Agg_cache.univ =
  let tbl : (Value.t array, 'a) Hashtbl.t = Hashtbl.create 64 in
  let update t =
    let key = Array.sub (Tuple.fields t) 0 m.m_prefix_len in
    let cur =
      match Hashtbl.find_opt tbl key with
      | Some v -> v
      | None -> m.m_monoid.Reducer.empty
    in
    Hashtbl.replace tbl key (m.m_monoid.Reducer.combine cur (m.m_f t))
  in
  Prov_frame.with_strict (fun () ->
      ctx.Rule.iter_prefix m.m_schema [||] update);
  (update, m.m_inj (fun p -> Hashtbl.find_opt tbl p))

let memo_reduce ctx (m : 'a memo) ?(prefix = [||]) () =
  let scan () = reduce ctx m.m_schema ~prefix ~monoid:m.m_monoid ~f:m.m_f () in
  if Array.length prefix <> m.m_prefix_len then scan ()
  else
    match ctx.Rule.agg with
    | None -> scan ()
    | Some cache -> (
        match
          Agg_cache.get_or_register cache ~table:m.m_schema.Schema.id
            ~memo_id:m.m_id ~mk:(build ctx m)
        with
        | None -> scan ()
        | Some u -> (
            match m.m_proj u with
            | Some lookup -> (
                match lookup prefix with
                | Some v -> v
                | None -> m.m_monoid.Reducer.empty)
            | None -> scan ()))

let memo_min ctx m ?prefix () = memo_reduce ctx m ?prefix ()

(* [count] needs no user token: its partial is always an [int], so one
   shared constructor serves every (table, prefix length), keyed by
   negative memo ids disjoint from token ids. *)
type Agg_cache.univ += Count_state of (Value.t array -> int option)

let count ctx schema ?(prefix = [||]) ?where () =
  let scan () =
    Prov_frame.with_strict (fun () ->
        fold ctx schema ~prefix ?where ~init:0 ~f:(fun n _ -> n + 1) ())
  in
  let plen = Array.length prefix in
  match (where, ctx.Rule.agg) with
  | Some _, _ | _, None -> scan ()
  | None, Some _ when plen > Schema.arity schema -> scan ()
  | None, Some cache -> (
      let mk () =
        let tbl : (Value.t array, int) Hashtbl.t = Hashtbl.create 64 in
        let update t =
          let key = Array.sub (Tuple.fields t) 0 plen in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        in
        Prov_frame.with_strict (fun () ->
            ctx.Rule.iter_prefix schema [||] update);
        (update, Count_state (fun p -> Hashtbl.find_opt tbl p))
      in
      match
        Agg_cache.get_or_register cache ~table:schema.Schema.id
          ~memo_id:(-plen - 1) ~mk
      with
      | Some (Count_state lookup) -> Option.value ~default:0 (lookup prefix)
      | Some _ | None -> scan ())

exception Not_unique of string

let uniq ctx schema ?prefix ?where () =
  let found = ref None in
  iter ctx schema ?prefix ?where (fun t ->
      match !found with
      | None -> found := Some t
      | Some prev ->
          if not (Tuple.equal prev t) then
            raise (Not_unique schema.Schema.name));
  !found

let is_empty ctx schema ?prefix ?where () =
  (* The negative query form: any match refutes it, so matches must be
     strictly in the past (a same-time match would make the answer
     schedule-dependent). *)
  Prov_frame.with_strict (fun () -> uniq ctx schema ?prefix ?where () = None)

let min_by ctx schema ?prefix ?where ~key () =
  Prov_frame.with_strict (fun () ->
      fold ctx schema ?prefix ?where ~init:None
        ~f:(fun acc t ->
          match acc with
          | None -> Some t
          | Some best -> if key t < key best then Some t else acc)
        ())
