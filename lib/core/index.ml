(* Secondary hash indexes over a Gamma store.

   A primary store fixes one access path (the tree order, or the hash
   prefix the table was declared with); every other prefix query falls
   back to a scan.  An [Index.t] is the extra access path: buckets of
   tuples keyed by the *hash* of the first [prefix_len] fields.  Keying
   by the integer hash instead of a copied field sub-array means probes
   and inserts allocate nothing; hash collisions are harmless because
   every read filters with [Tuple.matches_prefix] and the primary store
   owns dedup (an index never answers membership, only iteration).

   Maintenance contract (engine): for Delta-bound tables every [add]
   happens at the Phase-A barrier via the store's [insert_batch], so
   index updates piggyback on the existing synchronization; [-noDelta]
   tables add from concurrent rule bodies, which the per-bucket mutex
   covers.  Promotion ([Store.indexed]) backfills from the primary at a
   barrier, so an index is always a complete projection of the store. *)

type bucket = { b_mutex : Mutex.t; mutable b_items : Tuple.t list }

type t = {
  prefix_len : int;
  buckets : (int, bucket) Jstar_cds.Chashmap.t;
  count : int Atomic.t;
}

let create ~prefix_len schema =
  if prefix_len < 1 || prefix_len > Schema.arity schema then
    raise
      (Schema.Schema_error
         (Fmt.str "%s: secondary index prefix length %d out of range"
            schema.Schema.name prefix_len));
  {
    prefix_len;
    buckets = Jstar_cds.Chashmap.create ~hash:(fun (h : int) -> h) ();
    count = Atomic.make 0;
  }

let prefix_len ix = ix.prefix_len
let size ix = Atomic.get ix.count

let bucket_of ix h =
  Jstar_cds.Chashmap.find_or_add ix.buckets h (fun () ->
      { b_mutex = Mutex.create (); b_items = [] })

let add ix t =
  let b = bucket_of ix (Value.hash_prefix (Tuple.fields t) ix.prefix_len) in
  Mutex.lock b.b_mutex;
  b.b_items <- t :: b.b_items;
  Mutex.unlock b.b_mutex;
  Atomic.incr ix.count

let iter_prefix ix prefix f =
  (* Callers guarantee [Array.length prefix >= ix.prefix_len]; the
     residual fields (and colliding keys) are filtered here. *)
  match
    Jstar_cds.Chashmap.find_opt ix.buckets
      (Value.hash_prefix prefix ix.prefix_len)
  with
  | None -> ()
  | Some b ->
      Mutex.lock b.b_mutex;
      let items = b.b_items in
      Mutex.unlock b.b_mutex;
      List.iter (fun t -> if Tuple.matches_prefix t prefix then f t) items

let probe ix prefix =
  (* Batched hash-join entry point: the filtered match list as a value,
     so a firing cursor can cache it across equal probes.  The bucket's
     item list is immutable once read (inserts cons a new head), so the
     snapshot needs no copy; matches come back in the same order
     [iter_prefix] would visit them. *)
  match
    Jstar_cds.Chashmap.find_opt ix.buckets
      (Value.hash_prefix prefix ix.prefix_len)
  with
  | None -> []
  | Some b ->
      Mutex.lock b.b_mutex;
      let items = b.b_items in
      Mutex.unlock b.b_mutex;
      List.filter (fun t -> Tuple.matches_prefix t prefix) items
