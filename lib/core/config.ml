(* Runtime configuration: the JStar compiler flags, reproduced as runtime
   options so that — exactly as the paper argues — parallelisation
   strategy and data-structure choices change without touching the
   program text. *)

type data_structures =
  | Auto (* sequential structures iff threads = 1 *)
  | Sequential_ds (* TreeMap/TreeSet family, single-threaded only *)
  | Concurrent_ds (* skip list / sharded hash family *)

type grain =
  | Auto_grain (* max 1 (n / (4 * workers)): chunked leaves, adaptive *)
  | Fixed of int (* fixed fork/join leaf size; [Fixed 1] = task per tuple *)

type advisor = {
  adv_warmup : int;
      (* total prefix queries across all tables before the advisor
         reviews scan patterns at all *)
  adv_min_queries : int;
      (* scans of one (table, prefix length) needed to justify an index *)
  adv_min_size : int; (* don't index tables smaller than this *)
  adv_demote_windows : int;
      (* consecutive cold review windows (an index serving fewer than
         min_queries/8 of the window's scans is cold) before a promoted
         index is dropped again; 0 = never demote *)
}

let advisor_default =
  {
    adv_warmup = 512;
    adv_min_queries = 128;
    adv_min_size = 256;
    adv_demote_windows = 4;
  }

type t = {
  threads : int;
      (* Fork/join pool size (--threads=N); 1 = run on the caller only,
         the "-sequential" code path. *)
  data_structures : data_structures;
  no_delta : string list;
      (* -noDelta T: put T tuples straight into Gamma and fire their
         rules immediately (§5.1). *)
  no_gamma : string list;
      (* -noGamma T: never store T tuples in Gamma (§5.1). *)
  stores : (string * Store.kind_spec) list;
      (* per-table Gamma store overrides *)
  grain : grain; (* fork/join leaf granularity at engine call sites *)
  put_batching : bool;
      (* buffer parallel-phase puts per domain and flush them through
         Delta.insert_batch / Store.insert_batch at the phase barriers *)
  batch_fire : bool;
      (* vectorized Phase B: group the class by (rule, table), sort each
         chunk by the rule's declared join key, probe Gamma through a
         batched hash-join cursor, and sink puts into per-task scratch
         arenas flushed straight through Delta.insert_batch — one
         amortized firing pipeline instead of one closure round-trip per
         tuple.  Within-class firing order is free under the law of
         causality, so digests/lineage/outputs are unchanged *)
  specialized_compare : bool;
      (* no-op, kept so existing configs build: the generic-comparator
         path it used to toggle is retired and the schema-compiled
         comparators + cached-hash dedup tables are the only path *)
  indexes : (string * int list) list;
      (* declared secondary indexes: table name -> prefix lengths,
         maintained at the Phase-A barrier (Store.indexed) *)
  agg_cache : bool;
      (* memoized monoid aggregates: serve Query.count / memo_reduce
         from barrier-maintained partials instead of Gamma scans *)
  advisor : advisor option;
      (* adaptive store advisor: watch per-prefix-length query
         histograms and promote hot scan patterns to secondary indexes
         mid-run *)
  task_per_rule : bool;
      (* §5.2: "Even if a tuple triggers more than one rule, we create
         only one task for that tuple - we could create one task per
         rule that is triggered."  This flag enables the latter. *)
  runtime_causality_check : bool;
      (* assert at every put that the new tuple is not in the past *)
  max_steps : int option; (* safety valve for runaway programs *)
  print_directly : bool;
      (* bypass deterministic output collection (debugging only) *)
  tracing : Jstar_obs.Level.t;
      (* Off: zero-cost; Counters: metrics registry only; Spans: also
         record per-domain span rings for Chrome-trace export *)
  trace_suppress : string list;
      (* builtin span kinds (by name, e.g. "rule-fire") dropped even at
         Spans level — the per-kind mask for rule-fire-heavy runs *)
  trace_sample : int;
      (* 1-in-N sampling of unmasked span kinds at Spans level (1 =
         record everything) — the finer-grained companion to
         trace_suppress for rule-fire-heavy runs *)
  provenance : bool;
      (* record a lineage candidate per put into per-domain arenas,
         merged at step barriers into one deterministic derivation per
         tuple (Lineage; the Explain API and --explain read it) *)
  audit_causality : bool;
      (* runtime causality-law auditor: validate every firing's queries
         (positive <= T, negative/aggregate < T) and puts (>= T)
         against the trigger's timestamp — the dynamic check that
         catches unsound Custom stores and hand-written rules the
         static pass can't see.  Implies the per-put check of
         runtime_causality_check and extends it to reads *)
  digest : bool;
      (* cross-run determinism digests: order-independent 128-bit
         hashes of final Gamma contents and of the per-step class
         sequence, exposed in the result and the metrics snapshot *)
  profile : bool;
      (* continuous profiler (Jstar_obs.Profiler): per-rule self-time
         brackets on the firing hot path plus a per-step barrier fold of
         table/scheduler/GC deltas into decayed aggregates — the lane
         /profile and the heartbeat read.  Timing lanes are
         non-deterministic; deterministic counters and digests are
         unaffected *)
  step_hook : (int -> Jstar_obs.Metrics.t -> unit) option;
      (* called at the end of every engine step with the step number and
         the live metrics registry — the CLI's --metrics-every periodic
         flush; keep it cheap, it runs on the driving domain inside the
         barrier *)
  shards : int;
      (* shared-nothing sharded execution: partition Gamma and Delta by
         tuple hash into N single-owner shards; every Delta-bound put is
         shipped to the owner shard's mailbox as a message and drained
         at the step barrier (a cross-shard watermark exchange), so the
         pending structures need no cross-domain locking at all.  0 =
         unsharded (the pre-sharding code paths, unchanged); 1 = the
         sharded machinery with a single shard (message path exercised,
         useful for testing).  The causality law makes the class
         sequence — and hence digests, outputs and lineage —
         bit-identical to unsharded runs *)
}

let default =
  {
    threads = 1;
    data_structures = Auto;
    no_delta = [];
    no_gamma = [];
    stores = [];
    grain = Auto_grain;
    put_batching = false;
    batch_fire = false;
    specialized_compare = true;
    indexes = [];
    agg_cache = false;
    advisor = None;
    task_per_rule = false;
    runtime_causality_check = false;
    max_steps = None;
    print_directly = false;
    tracing = Jstar_obs.Level.Off;
    trace_suppress = [];
    trace_sample = 1;
    provenance = false;
    audit_causality = false;
    digest = false;
    profile = false;
    step_hook = None;
    shards = 0;
  }

let sequential = default

(* Parallel defaults include the hot-path optimisations that EXPERIMENTS.md
   showed strictly helping multi-threaded runs; [default] keeps them off so
   ablations still have a baseline. *)
let parallel ?(threads = 4) () =
  {
    default with
    threads;
    put_batching = true;
    batch_fire = true;
    agg_cache = true;
    advisor = Some advisor_default;
    profile = true;
  }

let effective_mode t =
  match t.data_structures with
  | Auto -> if t.threads > 1 then Delta.Concurrent else Delta.Sequential
  | Sequential_ds -> Delta.Sequential
  | Concurrent_ds -> Delta.Concurrent

exception Invalid of string

let validate t =
  if t.threads < 1 then raise (Invalid "threads must be >= 1");
  if t.threads > 1 && t.data_structures = Sequential_ds then
    raise (Invalid "sequential data structures require threads = 1");
  (match t.grain with
  | Fixed g when g < 1 -> raise (Invalid "grain must be >= 1")
  | _ -> ());
  List.iter
    (fun (table, lens) ->
      if lens = [] then
        raise (Invalid ("empty index length list for table " ^ table));
      List.iter
        (fun l ->
          if l < 1 then
            raise (Invalid ("index prefix length must be >= 1 for " ^ table)))
        lens)
    t.indexes;
  (match t.advisor with
  | Some a ->
      if
        a.adv_warmup < 0 || a.adv_min_queries < 1 || a.adv_min_size < 0
        || a.adv_demote_windows < 0
      then raise (Invalid "advisor thresholds out of range")
  | None -> ());
  List.iter
    (fun name ->
      match Jstar_obs.Kind.of_name name with
      | Some _ -> ()
      | None -> raise (Invalid ("unknown span kind in trace_suppress: " ^ name)))
    t.trace_suppress;
  if t.trace_sample < 1 then raise (Invalid "trace_sample must be >= 1");
  if t.shards < 0 then raise (Invalid "shards must be >= 0")

(* The adaptive all-minimums granularity: coarse enough that fork/join
   overhead amortises, fine enough (4 leaves per worker) that stealing
   can still balance uneven leaf costs. *)
let resolve_grain t ~workers ~n =
  match t.grain with
  | Fixed g -> max 1 g
  | Auto_grain -> max 1 (n / (4 * max 1 workers))
