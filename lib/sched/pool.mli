(** Work-stealing fork/join pool on OCaml 5 domains.

    This substrate plays the role of the Java Fork/Join framework in the
    original JStar runtime: a fixed set of workers with per-worker
    Chase-Lev deques, random stealing, an injector queue for external
    submissions, and help-first joining.

    A pool of [num_workers] = n uses n-1 spawned domains plus the caller:
    call {!run} to execute a computation with the calling domain occupying
    worker slot 0.  [num_workers = 1] therefore runs everything on the
    caller with no domains spawned — the "-sequential" configuration. *)

type t

exception Shutdown
(** Raised by {!submit} and {!fork} after {!shutdown}. *)

val create : num_workers:int -> ?tracer:Jstar_obs.Tracer.t -> unit -> t
(** [create ~num_workers ()] spawns [num_workers - 1] worker domains.
    When [tracer] records spans, the pool emits pool-spawn / pool-steal
    instants and a pool-idle span per parked wait; the default
    {!Jstar_obs.Tracer.disabled} costs one dead branch per steal.
    @raise Invalid_argument if [num_workers < 1]. *)

val size : t -> int
(** Total parallelism of the pool, including the caller slot. *)

val batch_grain : t -> n:int -> int
(** Leaf size for batched (rule, table)-chunk firing tasks:
    [max 64 (n / (2 * size))].  Coarser than the per-tuple grain —
    each iteration is a whole firing whose fixed costs the chunk
    amortises, so leaves must be wide enough to pay for a fork. *)

type stats = {
  tasks : int;  (** tasks executed by registered workers *)
  steals : int;  (** successful Chase-Lev steals *)
  parks : int;  (** condition-variable waits (real sleeps only) *)
  idle_ns : int;  (** total wall time spent in those waits *)
}
(** Cumulative scheduler counters, summed over worker slots.  Each field
    is owner-written by its worker's domain (no atomics on the hot
    path), so a concurrent read may lag by a few events — a monitoring
    lane, {e not} a deterministic one.  Spin-waiting and steal scans
    count as busy time: [idle_ns] only accumulates across parked
    condition waits.  Work executed by an unregistered caller inside
    {!join} (the temporary-thief path) is not counted. *)

val stats : t -> stats
(** Snapshot of the pool's scheduler counters since {!create}. *)

val shutdown : t -> unit
(** Stop all workers and join their domains.  Idempotent.  Tasks still
    queued are dropped. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget task submission.  Exceptions raised by the task are
    swallowed; use {!fork} when the result or failure matters. *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] executes [f] with the calling domain registered as
    worker 0 of the pool, so that {!fork} inside [f] uses a local deque.
    Re-entrant from a domain already registered with this pool. *)

(** {1 Futures} *)

type 'a future

val fork : t -> (unit -> 'a) -> 'a future
(** Schedule a computation; its result (or exception) is captured in the
    returned future. *)

val join : t -> 'a future -> 'a
(** Wait for a future, executing other pool tasks while it is pending
    (help-first joining).  Re-raises the task's exception with its
    original backtrace. *)

val peek : 'a future -> ('a, exn) result option
(** Non-blocking check of a future's state. *)
