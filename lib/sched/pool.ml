(* A work-stealing fork/join pool on OCaml 5 domains, playing the role the
   Java Fork/Join framework plays in the original JStar runtime.

   Layout: [size] worker slots, each with a Chase-Lev deque.  Slot 0 is
   reserved for the *caller* domain (the domain that created the pool and
   drives the computation); slots 1..size-1 are owned by spawned domains.
   Tasks forked from a worker go to that worker's own deque (LIFO helps
   locality, exactly as in Java F/J); tasks submitted from outside go to a
   mutex-protected injector queue.

   Joining uses the "help-first" policy: a domain waiting on an unfinished
   promise executes other tasks from its own deque, steals, or drains the
   injector.  For strict fork/join DAGs (all our uses) this is
   deadlock-free: an unfinished promise's task is either in some deque, in
   the injector, or running on another domain that itself makes progress.

   Idle workers park on a condition variable.  The sleep/wake handshake is
   the standard Dekker-style protocol: a parking worker increments
   [idlers] (seq_cst) *before* its final emptiness re-check, and a
   producer reads [idlers] *after* publishing its task, so one of the two
   always observes the other. *)

type task = unit -> unit

type worker = {
  wid : int;
  deque : task Chase_lev.t;
  mutable rng : int; (* xorshift state for victim selection *)
  (* Owner-written scheduler counters (plain ints: each field is only
     ever written by the domain running as this worker, so there are no
     lost updates; cross-domain reads by [stats] may observe a slightly
     stale value, which is fine for a monitoring lane). *)
  mutable w_tasks : int; (* tasks executed *)
  mutable w_steals : int; (* successful steals by this worker *)
  mutable w_parks : int; (* condition-variable waits *)
  mutable w_idle_ns : int; (* total parked time *)
}

type t = {
  pool_id : int;
  workers : worker array;
  caller_slot : int Atomic.t; (* 0 when free, 1 when slot 0 is claimed *)
  injector : task Queue.t;
  inj_mutex : Mutex.t;
  inj_cond : Condition.t;
  idlers : int Atomic.t;
  live : int Atomic.t; (* spawned domains still running *)
  shutdown : bool Atomic.t;
  mutable domains : unit Domain.t list;
  size : int;
  tracer : Jstar_obs.Tracer.t;
      (* spawn/steal/idle events; [Tracer.disabled] unless the creator
         passes one, so untraced pools take a single dead branch per
         steal *)
}

exception Shutdown

let next_pool_id = Atomic.make 0

(* Per-domain stack of (pool, worker) contexts, innermost first. *)
let context_key : (t * worker) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let my_worker pool =
  let stack = Domain.DLS.get context_key in
  List.find_map
    (fun (p, w) -> if p.pool_id = pool.pool_id then Some w else None)
    !stack

let size pool = pool.size

(* Grain for batched (rule, table)-chunk tasks: coarser than the
   per-tuple Auto_grain because each iteration is a whole firing whose
   setup (frame save, cursor, scratch acquisition) is amortised across
   the chunk — a floor of 64 keeps small classes from forking tasks
   that cost more than they cover, while n / (2 * workers) still yields
   enough chunks for stealing to balance skewed rules. *)
let batch_grain pool ~n = max 64 (n / (2 * pool.size))

(* ------------------------------------------------------------------ *)
(* Task acquisition                                                    *)

let next_random w =
  let x = w.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  w.rng <- x;
  x land max_int

let try_pop_injector pool =
  if Mutex.try_lock pool.inj_mutex then (
    let v = Queue.take_opt pool.injector in
    Mutex.unlock pool.inj_mutex;
    v)
  else None

(* One full round of steal attempts over the other workers, starting from
   a random victim.  Returns the first stolen task, or None after a pass
   in which every deque looked empty. *)
let try_steal pool w =
  let n = Array.length pool.workers in
  let start = next_random w mod n in
  let rec go i retry =
    if i >= n then if retry then go 0 false else None
    else
      let victim = pool.workers.((start + i) mod n) in
      if victim.wid = w.wid then go (i + 1) retry
      else
        match Chase_lev.steal victim.deque with
        | Chase_lev.Stolen t ->
            w.w_steals <- w.w_steals + 1;
            if Jstar_obs.Tracer.spans_on pool.tracer then
              Jstar_obs.Tracer.instant pool.tracer Jstar_obs.Kind.steal
                ~arg:victim.wid;
            Some t
        | Chase_lev.Empty -> go (i + 1) retry
        | Chase_lev.Retry -> go (i + 1) true
  in
  go 0 false

let find_task pool w =
  match Chase_lev.pop w.deque with
  | Some _ as t -> t
  | None -> (
      match try_steal pool w with
      | Some _ as t -> t
      | None -> try_pop_injector pool)

(* ------------------------------------------------------------------ *)
(* Sleep/wake handshake                                                *)

let any_work_visible pool =
  (not (Queue.is_empty pool.injector))
  || Array.exists (fun w -> not (Chase_lev.is_empty w.deque)) pool.workers

(* Wake a single idler per new task: broadcasting stampedes every
   parked worker through a futile steal scan, which is especially
   costly when the pool is larger than the core count.  A woken worker
   that finds work propagates the wakeup (see [worker_loop]). *)
let wake_idlers pool =
  if Atomic.get pool.idlers > 0 then (
    Mutex.lock pool.inj_mutex;
    Condition.signal pool.inj_cond;
    Mutex.unlock pool.inj_mutex)

let park pool w =
  Atomic.incr pool.idlers;
  if any_work_visible pool || Atomic.get pool.shutdown then
    Atomic.decr pool.idlers
  else (
    Mutex.lock pool.inj_mutex;
    if (not (any_work_visible pool)) && not (Atomic.get pool.shutdown) then begin
      (* Only a real wait is worth an idle span: the fast re-check
         paths above return in nanoseconds and would flood the ring.
         The clock reads are unconditional — unlike spans they feed the
         always-on utilization lane, and a parked wait is already two
         syscalls deep, so two [now_ns] calls are noise. *)
      let t0 = Jstar_obs.Tracer.start pool.tracer in
      let p0 = Jstar_obs.Monotonic.now_ns () in
      Condition.wait pool.inj_cond pool.inj_mutex;
      w.w_parks <- w.w_parks + 1;
      w.w_idle_ns <- w.w_idle_ns + (Jstar_obs.Monotonic.now_ns () - p0);
      Jstar_obs.Tracer.stop pool.tracer Jstar_obs.Kind.idle t0
    end;
    Mutex.unlock pool.inj_mutex;
    Atomic.decr pool.idlers)

(* ------------------------------------------------------------------ *)
(* Task submission                                                     *)

let run_task task =
  (* Worker-loop tasks must never let an exception escape: promise tasks
     capture their own exceptions; bare submitted tasks that raise would
     otherwise kill a worker domain. *)
  try task () with _ -> ()

let push_local_or_inject pool task =
  match my_worker pool with
  | Some w ->
      Chase_lev.push w.deque task;
      wake_idlers pool
  | None ->
      Mutex.lock pool.inj_mutex;
      Queue.add task pool.injector;
      Condition.signal pool.inj_cond;
      Mutex.unlock pool.inj_mutex

let submit pool task =
  if Atomic.get pool.shutdown then raise Shutdown;
  push_local_or_inject pool task

(* ------------------------------------------------------------------ *)
(* Worker main loop                                                    *)

let with_context pool w f =
  let stack = Domain.DLS.get context_key in
  stack := (pool, w) :: !stack;
  Fun.protect f ~finally:(fun () ->
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> assert false)

let worker_loop pool w =
  with_context pool w (fun () ->
      if Jstar_obs.Tracer.spans_on pool.tracer then
        Jstar_obs.Tracer.instant pool.tracer Jstar_obs.Kind.spawn ~arg:w.wid;
      let backoff = Backoff.create () in
      while not (Atomic.get pool.shutdown) do
        match find_task pool w with
        | Some task ->
            Backoff.reset backoff;
            (* propagate the wakeup chain while work remains *)
            if
              Atomic.get pool.idlers > 0
              && not (Chase_lev.is_empty w.deque)
            then wake_idlers pool;
            w.w_tasks <- w.w_tasks + 1;
            run_task task
        | None ->
            Backoff.once backoff;
            park pool w
      done);
  Atomic.decr pool.live

let create ~num_workers ?(tracer = Jstar_obs.Tracer.disabled) () =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers < 1";
  let pool =
    {
      pool_id = Atomic.fetch_and_add next_pool_id 1;
      workers =
        Array.init num_workers (fun wid ->
            {
              wid;
              deque = Chase_lev.create ();
              rng = (wid * 2654435761) + 1;
              w_tasks = 0;
              w_steals = 0;
              w_parks = 0;
              w_idle_ns = 0;
            });
      caller_slot = Atomic.make 0;
      injector = Queue.create ();
      inj_mutex = Mutex.create ();
      inj_cond = Condition.create ();
      idlers = Atomic.make 0;
      live = Atomic.make (num_workers - 1);
      shutdown = Atomic.make false;
      domains = [];
      size = num_workers;
      tracer;
    }
  in
  pool.domains <-
    List.init (num_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool pool.workers.(i + 1)));
  pool

(* ------------------------------------------------------------------ *)
(* Scheduler statistics                                                *)

type stats = { tasks : int; steals : int; parks : int; idle_ns : int }

let stats pool =
  Array.fold_left
    (fun acc w ->
      {
        tasks = acc.tasks + w.w_tasks;
        steals = acc.steals + w.w_steals;
        parks = acc.parks + w.w_parks;
        idle_ns = acc.idle_ns + w.w_idle_ns;
      })
    { tasks = 0; steals = 0; parks = 0; idle_ns = 0 }
    pool.workers

let shutdown pool =
  if not (Atomic.exchange pool.shutdown true) then (
    Mutex.lock pool.inj_mutex;
    (* shutdown wakes everyone *)
    Condition.broadcast pool.inj_cond;
    Mutex.unlock pool.inj_mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- [])

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace
type 'a future = 'a state Atomic.t

let fulfill fut f =
  let result =
    try Done (f ())
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Failed (e, bt)
  in
  Atomic.set fut result

let fork pool f =
  let fut = Atomic.make Pending in
  submit pool (fun () -> fulfill fut f);
  fut

let peek fut =
  match Atomic.get fut with
  | Done v -> Some (Ok v)
  | Failed (e, _) -> Some (Error e)
  | Pending -> None

(* Help-first join: while the future is pending, execute other tasks.
   Works both on worker domains and on an unregistered caller (which
   then only drains the injector and steals). *)
let join pool fut =
  let backoff = Backoff.create () in
  let helper_worker =
    match my_worker pool with
    | Some w -> w
    | None ->
        (* Temporary thief identity: deque stays empty, only steals.
           Its counters are not part of any pool, so tasks it helps
           with are invisible to [stats] — a documented blind spot. *)
        {
          wid = -1;
          deque = Chase_lev.create ();
          rng = 0x9e3779b9;
          w_tasks = 0;
          w_steals = 0;
          w_parks = 0;
          w_idle_ns = 0;
        }
  in
  let rec wait () =
    match Atomic.get fut with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
        (match find_task pool helper_worker with
        | Some task ->
            Backoff.reset backoff;
            helper_worker.w_tasks <- helper_worker.w_tasks + 1;
            run_task task
        | None -> Backoff.once backoff);
        wait ()
  in
  wait ()

let run pool f =
  match my_worker pool with
  | Some _ -> f ()
  | None ->
      (* Claim the caller slot so forks from [f] go to a real deque. *)
      let rec claim () =
        if Atomic.compare_and_set pool.caller_slot 0 1 then ()
        else (
          Domain.cpu_relax ();
          claim ())
      in
      claim ();
      Fun.protect
        (fun () -> with_context pool pool.workers.(0) f)
        ~finally:(fun () -> Atomic.set pool.caller_slot 0)
