(** Durable sessions: an {!Jstar_core.Engine} session wrapped in a
    write-ahead log and snapshot checkpoints, so a crashed process can
    restart exactly where it left off.

    The contract, in terms of the engine's determinism promises: after
    a crash at {e any} point, [open_] rebuilds a session whose Gamma
    fingerprint, class-sequence digest and output-stream digest equal
    those of an uninterrupted run over the durable prefix of the input
    — and it proves it, by checking the rebuilt database against the
    snapshot manifest and each replayed drain against its watermark.

    Directory layout:
    {v dir/CURRENT     "gen <n>" — atomically flipped pointer
       dir/wal-<n>.log  feeds + drain watermarks since snapshot <n>
       dir/snap-<n>/    MANIFEST, seg-<table>.dat, outputs.dat v}
    Generation 0 has no snapshot directory (empty database + log). *)

exception Recovery_error of string
(** A digest, schema or manifest check failed during restore — the
    on-disk state cannot reproduce the session it claims to hold. *)

type t

type restore_info = {
  r_gen : int;  (** snapshot generation recovery started from *)
  r_feeds : int;  (** WAL feed records replayed *)
  r_drains : int;  (** WAL watermark records replayed (and verified) *)
  r_pending : int;  (** tuples re-fed but not yet drained at the crash *)
  r_wal_tail : Wal.tail;  (** how the recovered log ended *)
}

type status = Fresh | Restored of restore_info

val open_ :
  ?checkpoint_every:int ->
  ?fsync:Wal.fsync_policy ->
  dir:string ->
  Jstar_core.Program.frozen ->
  Jstar_core.Config.t ->
  t * status
(** Open (creating [dir] if needed) or recover a durable session.
    [checkpoint_every] (default 0 = only explicit {!checkpoint} calls)
    takes a checkpoint automatically after every N drains.  [fsync]
    (default [Always]) sets the WAL durability policy.
    @raise Recovery_error when existing state fails validation. *)

val feed : t -> Jstar_core.Tuple.t list -> unit
(** Append the batch to the WAL (durably, per the fsync policy), then
    feed it to the engine. *)

val drain : t -> string list
(** Drain the engine, fold the fresh output lines into the running
    output-stream digest, and append + commit a watermark record.  May
    trigger an automatic checkpoint. *)

val checkpoint : t -> unit
(** Write snapshot generation [n+1], start a fresh log, flip [CURRENT],
    delete generation [n].  Requires quiescence.
    @raise Invalid_argument when tuples are still pending. *)

val finish : t -> Jstar_core.Engine.result
(** Sync and close the log, then finish the engine session. *)

val session : t -> Jstar_core.Engine.session
(** The underlying engine session (for gamma inspection in tests). *)

val generation : t -> int

val fork_base : t -> int option
(** [Some g] when this session was created by {!fork} at generation
    [g] (recorded in an on-disk [FORK] marker).  Its WAL holds the
    complete post-fork divergence exactly while {!generation} still
    equals [g]; any checkpoint since the fork empties the log and
    advances the generation, so a consumer of the divergence window
    (serve's merge) must refuse once they differ. *)

val dir : t -> string
(** The session's durable directory. *)

val wal_path : t -> string
(** Current log file — exposed for the fault-injection harness. *)

val wal_records : t -> int
(** Complete records (feeds + watermarks) written to the current
    generation's log — 0 right after a checkpoint or fork. *)

val fork : t -> dir:string -> int
(** Branch this session's durable state into [dir] without copying
    segments: checkpoint first if the log has diverged from the
    snapshot (always at generation 0), then hard-link the snapshot
    generation's files into [dir], give the branch a fresh empty WAL,
    record the shared generation in a [FORK] provenance marker (see
    {!fork_base}), and flip its [CURRENT].  The branch is opened like
    any other durable directory with {!open_}, whose recovery
    re-verifies the linked snapshot's fingerprint.  Returns the shared
    generation.
    Requires quiescence, like {!checkpoint}.
    @raise Invalid_argument when tuples are pending or [dir] already
    holds a session. *)

val output_lanes : t -> int * int
(** Running output-stream digest lanes (matches the last watermark). *)

val wal_lag : t -> Wal.lag
(** Current WAL durability exposure (records not yet fsynced, seconds
    since the last fsync) — the heartbeat's [wal] block. *)

val wal_fsyncs : t -> int
(** fsync calls across all generations of this session's log. *)

val wal_coalesced_syncs : t -> int
(** Commits whose records rode a later group-commit sync instead of
    paying their own fsync — exported as [wal.coalesced_syncs]. *)

val fsync_policy_name : t -> string
(** ["always"], ["every-<n>"], ["every-ms-<n>"] or ["never"] — for
    monitoring output. *)
