(** Schema-aware binary codec for tuples and the primitive fields of
    WAL / snapshot frames.

    All integers are little-endian.  A tuple serialises as its table id
    followed by its field values; each value carries a one-byte type tag
    so that an [Int] living in a widened [TFloat] column round-trips to
    the exact same {!Jstar_core.Value.t} (digests hash the
    representation, so recovery must preserve it bit-for-bit).  Nothing
    here uses [Marshal]: frames are stable across builds and compiler
    versions, and every byte is validated on the way in. *)

exception Codec_error of string
(** Raised by the decoders on truncated input, unknown tags, out-of-range
    table ids, or a field that fails the schema's type check. *)

val schema_hash : Jstar_core.Schema.t array -> int
(** CRC-32 of a canonical description of every table (names, columns,
    types, key arity, orderby).  Stored in file headers; restore-time
    validation refuses files written under a different program shape. *)

(** {1 Primitive writers (onto a [Buffer.t])} *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit
(** u32 length + raw bytes. *)

(** {1 Primitive readers (from [bytes] at a mutable position)} *)

val get_u8 : Bytes.t -> int ref -> int
val get_u32 : Bytes.t -> int ref -> int
val get_i64 : Bytes.t -> int ref -> int
val get_string : Bytes.t -> int ref -> string

(** {1 Tuples} *)

val encode_tuple : Buffer.t -> Jstar_core.Tuple.t -> unit

val decode_tuple :
  tables:Jstar_core.Schema.t array -> Bytes.t -> int ref -> Jstar_core.Tuple.t
(** Rebuilds through {!Jstar_core.Tuple.make}, so arity and field types
    are re-checked against the schema.  @raise Codec_error *)
