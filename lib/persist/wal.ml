(* Write-ahead log: append-only frames over the Codec, group-commit
   buffering, and a reader that classifies how the file ends (clean /
   torn / corrupt) so recovery can pick the right prefix to trust. *)

exception Wal_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Wal_error s)) fmt

let magic = "JSTARWAL"
let version = 1
let header_len = String.length magic + 4 + 4 (* magic, version, schema hash *)

type fsync_policy = Always | Every of int | Every_ms of int | Never

type watermark = {
  wm_step_no : int;
  wm_steps : int;
  wm_processed : int;
  wm_outputs_count : int;
  wm_seq_lanes : int * int;
  wm_out_lanes : int * int;
}

type record = Feed of Jstar_core.Tuple.t list | Watermark of watermark

let kind_feed = 1
and kind_watermark = 2

(* -- low-level io ---------------------------------------------------- *)

let write_all fd b off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !off !remaining in
    off := !off + n;
    remaining := !remaining - n
  done

let fsync_dir path =
  (* Make a create/rename durable: fsync the containing directory. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* -- writer ---------------------------------------------------------- *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  buf : Buffer.t;  (* frames accumulated since the last commit *)
  policy : fsync_policy;
  mutable unsynced : int;  (* records committed but not yet fsynced *)
  mutable pending : int;  (* records sitting in [buf] *)
  mutable last_sync_ns : int;  (* when the file was last fsynced *)
  mutable fsyncs : int;  (* fsync calls since open *)
  mutable coalesced : int;  (* commits that left records unsynced *)
}

type lag = { lag_records : int; lag_seconds : float }

let lag w =
  {
    lag_records = w.unsynced + w.pending;
    lag_seconds =
      float_of_int (Jstar_obs.Monotonic.now_ns () - w.last_sync_ns) *. 1e-9;
  }

let header schema_hash =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Codec.put_u32 b version;
  Codec.put_u32 b schema_hash;
  Buffer.to_bytes b

let create path ~schema_hash ~policy =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let h = header schema_hash in
  write_all fd h 0 (Bytes.length h);
  Unix.fsync fd;
  fsync_dir path;
  {
    path;
    fd;
    buf = Buffer.create 4096;
    policy;
    unsynced = 0;
    pending = 0;
    last_sync_ns = Jstar_obs.Monotonic.now_ns ();
    fsyncs = 0;
    coalesced = 0;
  }

let reopen path ~valid_to ~policy =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd valid_to;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  Unix.fsync fd;
  {
    path;
    fd;
    buf = Buffer.create 4096;
    policy;
    unsynced = 0;
    pending = 0;
    last_sync_ns = Jstar_obs.Monotonic.now_ns ();
    fsyncs = 0;
    coalesced = 0;
  }

let frame w kind payload =
  let b = Buffer.create (Bytes.length payload + 9) in
  Codec.put_u8 b kind;
  Codec.put_u32 b (Bytes.length payload);
  Buffer.add_bytes b payload;
  let framed = Buffer.to_bytes b in
  let crc = Crc32.bytes framed 0 (Bytes.length framed) in
  Buffer.add_bytes w.buf framed;
  Codec.put_u32 w.buf crc;
  w.pending <- w.pending + 1

let append_feed w tuples =
  let b = Buffer.create 128 in
  Codec.put_u32 b (List.length tuples);
  List.iter (Codec.encode_tuple b) tuples;
  frame w kind_feed (Buffer.to_bytes b)

let append_watermark w wm =
  let b = Buffer.create 72 in
  Codec.put_i64 b wm.wm_step_no;
  Codec.put_i64 b wm.wm_steps;
  Codec.put_i64 b wm.wm_processed;
  Codec.put_i64 b wm.wm_outputs_count;
  Codec.put_i64 b (fst wm.wm_seq_lanes);
  Codec.put_i64 b (snd wm.wm_seq_lanes);
  Codec.put_i64 b (fst wm.wm_out_lanes);
  Codec.put_i64 b (snd wm.wm_out_lanes);
  frame w kind_watermark (Buffer.to_bytes b)

let commit w =
  if w.pending > 0 then begin
    let b = Buffer.to_bytes w.buf in
    write_all w.fd b 0 (Bytes.length b);
    Buffer.clear w.buf;
    w.unsynced <- w.unsynced + w.pending;
    w.pending <- 0
  end;
  let fsync_now () =
    Unix.fsync w.fd;
    w.unsynced <- 0;
    w.fsyncs <- w.fsyncs + 1;
    w.last_sync_ns <- Jstar_obs.Monotonic.now_ns ()
  and skip () = if w.unsynced > 0 then w.coalesced <- w.coalesced + 1 in
  match w.policy with
  | Always -> if w.unsynced > 0 then fsync_now ()
  | Every n -> if w.unsynced >= n then fsync_now () else skip ()
  | Every_ms n ->
      (* Group-commit window: at most one fsync per [n] ms, however many
         sessions or records land inside the window. *)
      if
        w.unsynced > 0
        && Jstar_obs.Monotonic.now_ns () - w.last_sync_ns >= n * 1_000_000
      then fsync_now ()
      else skip ()
  | Never -> ()

let sync w =
  commit w;
  if w.unsynced > 0 then begin
    Unix.fsync w.fd;
    w.unsynced <- 0;
    w.fsyncs <- w.fsyncs + 1
  end;
  w.last_sync_ns <- Jstar_obs.Monotonic.now_ns ()

let fsyncs w = w.fsyncs
let coalesced_syncs w = w.coalesced

let close w =
  sync w;
  Unix.close w.fd

(* -- reader ---------------------------------------------------------- *)

type tail = Clean | Torn of int | Corrupt of int

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create len in
      let off = ref 0 in
      while !off < len do
        let n = Unix.read fd b !off (len - !off) in
        if n = 0 then fail "%s: short read" path;
        off := !off + n
      done;
      b)

let decode_watermark payload =
  let pos = ref 0 in
  let g () = Codec.get_i64 payload pos in
  let wm_step_no = g () in
  let wm_steps = g () in
  let wm_processed = g () in
  let wm_outputs_count = g () in
  let seq_lo = g () in
  let seq_hi = g () in
  let out_lo = g () in
  let out_hi = g () in
  {
    wm_step_no;
    wm_steps;
    wm_processed;
    wm_outputs_count;
    wm_seq_lanes = (seq_lo, seq_hi);
    wm_out_lanes = (out_lo, out_hi);
  }

let decode_feed ~tables payload =
  let pos = ref 0 in
  let n = Codec.get_u32 payload pos in
  let out = ref [] in
  for _ = 1 to n do
    out := Codec.decode_tuple ~tables payload pos :: !out
  done;
  List.rev !out

let read path ~tables ~expect_hash =
  let b = read_file path in
  let len = Bytes.length b in
  if len < header_len then fail "%s: missing header" path;
  if Bytes.sub_string b 0 (String.length magic) <> magic then
    fail "%s: bad magic" path;
  let pos = ref (String.length magic) in
  let v = Codec.get_u32 b pos in
  if v <> version then fail "%s: unsupported WAL version %d" path v;
  let h = Codec.get_u32 b pos in
  if h <> expect_hash land 0xffffffff then
    fail "%s: schema hash mismatch (program changed?)" path;
  let records = ref [] in
  let tail = ref Clean in
  let p = ref header_len in
  (try
     while !p < len do
       let start = !p in
       if len - start < 5 then begin
         tail := Torn start;
         raise Exit
       end;
       let pos = ref start in
       let kind = Codec.get_u8 b pos in
       let plen = Codec.get_u32 b pos in
       if start + 5 + plen + 4 > len then begin
         tail := Torn start;
         raise Exit
       end;
       let crc_stored =
         let cp = ref (start + 5 + plen) in
         Codec.get_u32 b cp
       in
       if Crc32.bytes b start (5 + plen) <> crc_stored then begin
         tail := Corrupt start;
         raise Exit
       end;
       let payload = Bytes.sub b (start + 5) plen in
       let record =
         if kind = kind_feed then Feed (decode_feed ~tables payload)
         else if kind = kind_watermark then Watermark (decode_watermark payload)
         else begin
           (* CRC valid but unknown kind: written by a future version —
              treat like corruption and stop trusting the file here. *)
           tail := Corrupt start;
           raise Exit
         end
       in
       p := start + 5 + plen + 4;
       records := (record, !p) :: !records
     done
   with
  | Exit -> ()
  | Codec.Codec_error m ->
      (* frame intact but payload undecodable *)
      tail := Corrupt !p;
      ignore m);
  (List.rev !records, !tail)
