(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.

    Every durable frame the persistence layer writes — WAL records,
    snapshot segment records, the manifest — carries one of these so
    that recovery can tell a torn or bit-flipped record from a valid
    one without trusting file lengths. *)

val bytes : Bytes.t -> int -> int -> int
(** [bytes b off len] — CRC of the slice, in [0, 2{^32}). *)

val string : string -> int
(** CRC of a whole string. *)

val update : int -> Bytes.t -> int -> int -> int
(** [update crc b off len] extends a running CRC (start from 0), so a
    frame's header and payload can be checksummed without copying. *)
