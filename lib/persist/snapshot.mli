(** Snapshot checkpoints: one directory per generation holding a
    CRC-guarded text [MANIFEST], one binary segment per stored table,
    and the output lines produced so far.

    A checkpoint is written complete and fsynced {e before} the
    [CURRENT] pointer flips to it, so a crash at any point leaves either
    the old generation or the new one fully intact — never a half
    state.  The manifest records the database fingerprint at checkpoint
    time; restore rebuilds the stores from the segments and refuses to
    proceed unless the rebuilt database digests to the same value. *)

exception Snapshot_error of string

type manifest = {
  m_gen : int;
  m_schema_hash : int;
  m_step_no : int;
  m_steps : int;
  m_processed : int;
  m_outputs_count : int;
  m_seq_lanes : int * int;
  m_out_lanes : int * int;
  m_gamma_digest : string;  (** hex fingerprint of every stored tuple *)
  m_wal : string;  (** the log file this snapshot pairs with *)
  m_segments : (string * int) list;  (** table name, tuple count *)
}

val dir_name : int -> string
(** ["snap-<gen>"]. *)

val write :
  dir:string ->
  gen:int ->
  schema_hash:int ->
  manifest_of:(segments:(string * int) list -> manifest) ->
  outputs:string list ->
  segments:(Jstar_core.Schema.t * ((Jstar_core.Tuple.t -> unit) -> unit)) list ->
  unit
(** Write [dir/snap-<gen>] from scratch (any leftover from an earlier
    crashed attempt is removed first).  [segments] pairs each stored
    table with its iterator; [manifest_of] receives the per-table tuple
    counts once the segments are on disk.  Everything, including the
    snapshot directory entry, is fsynced before returning. *)

val read_manifest : dir:string -> gen:int -> expect_hash:int -> manifest
(** Parse and CRC-check [MANIFEST]; validates the schema hash.
    @raise Snapshot_error *)

val load :
  dir:string ->
  gen:int ->
  manifest:manifest ->
  tables:Jstar_core.Schema.t array ->
  (Jstar_core.Tuple.t -> unit) ->
  string list
(** Stream every segment tuple through the callback (CRC-checking each
    record) and return the output lines.  Counts are verified against
    the manifest.  @raise Snapshot_error *)

val remove : dir:string -> gen:int -> unit
(** Best-effort recursive delete of a superseded generation. *)
