(* Durable sessions: WAL + snapshots around an engine session.

   Ordering invariants:
   - a feed batch reaches the log before its tuples enter Delta;
   - every drain appends a watermark carrying the session's scalar
     state and digests, and commits the log (fsync per policy);
   - a checkpoint writes the complete next generation (snapshot + fresh
     log), fsyncs it, and only then flips CURRENT — so every possible
     crash point leaves one fully-valid generation on disk.

   Recovery trusts nothing it can avoid trusting: the manifest is
   CRC-checked, the rebuilt database must reproduce the manifest's
   fingerprint, and every replayed drain must reproduce its watermark's
   class-sequence and output-stream digests. *)

open Jstar_core

exception Recovery_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Recovery_error s)) fmt

type t = {
  dir : string;
  session : Engine.session;
  tables : Schema.t array;
  schema_hash : int;
  policy : Wal.fsync_policy;
  checkpoint_every : int;  (* drains between automatic checkpoints; 0 = off *)
  out_digest : Fingerprint.t;  (* running output-stream digest *)
  fork_base : int option;
      (* the generation this session was forked at, if it was created by
         [fork] — merge provenance: its WAL holds the full post-fork
         divergence exactly while [gen] still equals this *)
  mutable gen : int;
  mutable wal : Wal.writer;
  mutable drains_since_ckpt : int;
  mutable wal_records : int;  (* records in the current generation's WAL *)
  mutable syncs_base : int * int;  (* (fsyncs, coalesced) of retired writers *)
}

type restore_info = {
  r_gen : int;
  r_feeds : int;
  r_drains : int;
  r_pending : int;
  r_wal_tail : Wal.tail;
}

type status = Fresh | Restored of restore_info

let wal_name gen = Printf.sprintf "wal-%d.log" gen
let wal_path_of dir gen = Filename.concat dir (wal_name gen)
let current_path dir = Filename.concat dir "CURRENT"
let fork_path dir = Filename.concat dir "FORK"

let write_current dir gen =
  (* temp + rename + dir fsync: the flip is the commit point *)
  let tmp = Filename.concat dir "CURRENT.tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let s = Printf.sprintf "gen %d\n" gen in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done;
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp (current_path dir);
  let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  (try Unix.fsync dfd with Unix.Unix_error _ -> ());
  Unix.close dfd

let read_current dir =
  match open_in (current_path dir) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Scanf.sscanf_opt (input_line ic) "gen %d" (fun g -> g) with
          | Some g -> Some g
          | None | (exception End_of_file) ->
              fail "%s: malformed CURRENT" dir)

(* The FORK marker pins a branch's provenance: the generation its
   divergence window starts at.  Written before the CURRENT flip (a
   visible branch always carries its marker); a stale marker without a
   CURRENT is deleted by a fresh open. *)
let write_fork_base dir base =
  let fd =
    Unix.openfile (fork_path dir)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let b = Bytes.unsafe_of_string (Printf.sprintf "base %d\n" base) in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done;
  Unix.fsync fd;
  Unix.close fd

let read_fork_base dir =
  match open_in (fork_path dir) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Scanf.sscanf_opt (input_line ic) "base %d" (fun g -> g) with
          | Some g -> Some g
          | None | (exception End_of_file) -> fail "%s: malformed FORK" dir)

let mkdir_p dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* -- watermark plumbing ---------------------------------------------- *)

let watermark_of t =
  let s = Engine.session_state ~with_outputs:false t.session in
  {
    Wal.wm_step_no = s.Engine.ss_step_no;
    wm_steps = s.Engine.ss_steps;
    wm_processed = s.Engine.ss_processed;
    wm_outputs_count = s.Engine.ss_outputs_count;
    wm_seq_lanes = s.Engine.ss_seq_lanes;
    wm_out_lanes = Fingerprint.lanes t.out_digest;
  }

let check_watermark t wm ~at =
  let have = watermark_of t in
  if have <> wm then
    fail
      "%s: replayed drain %d diverged from its watermark (recovered \
       state does not reproduce the logged run)"
      t.dir at

(* -- the session operations ------------------------------------------ *)

let feed t tuples =
  Wal.append_feed t.wal tuples;
  Wal.commit t.wal;
  t.wal_records <- t.wal_records + 1;
  Engine.feed t.session tuples

let drain_no_ckpt t =
  let fresh = Engine.drain t.session in
  List.iter (Fingerprint.mix_string t.out_digest) fresh;
  Wal.append_watermark t.wal (watermark_of t);
  Wal.commit t.wal;
  t.wal_records <- t.wal_records + 1;
  fresh

let checkpoint t =
  let pending = Engine.session_pending t.session in
  if pending <> 0 then
    invalid_arg
      (Printf.sprintf
         "Durable.checkpoint: %d tuples still pending (drain first)" pending);
  let next = t.gen + 1 in
  let state = Engine.session_state t.session in
  let out_lanes = Fingerprint.lanes t.out_digest in
  let gamma_digest = Engine.gamma_digest t.session in
  Snapshot.write ~dir:t.dir ~gen:next ~schema_hash:t.schema_hash
    ~manifest_of:(fun ~segments ->
      {
        Snapshot.m_gen = next;
        m_schema_hash = t.schema_hash;
        m_step_no = state.Engine.ss_step_no;
        m_steps = state.Engine.ss_steps;
        m_processed = state.Engine.ss_processed;
        m_outputs_count = state.Engine.ss_outputs_count;
        m_seq_lanes = state.Engine.ss_seq_lanes;
        m_out_lanes = out_lanes;
        m_gamma_digest = gamma_digest;
        m_wal = wal_name next;
        m_segments = segments;
      })
    ~outputs:state.Engine.ss_outputs
    ~segments:
      (List.map
         (fun schema ->
           (schema, (Engine.session_gamma t.session schema).Store.iter))
         (Engine.stored_tables t.session));
  (* Drain any unsynced WAL bytes of the old generation before the flip
     makes it garbage (paranoia: nothing after the flip reads it). *)
  Wal.sync t.wal;
  let new_wal =
    Wal.create (wal_path_of t.dir next) ~schema_hash:t.schema_hash
      ~policy:t.policy
  in
  write_current t.dir next;
  (* Commit point passed: retire the old generation. *)
  Wal.close t.wal;
  (try Unix.unlink (wal_path_of t.dir t.gen) with Unix.Unix_error _ -> ());
  Snapshot.remove ~dir:t.dir ~gen:t.gen;
  let fb, cb = t.syncs_base in
  t.syncs_base <- (fb + Wal.fsyncs t.wal, cb + Wal.coalesced_syncs t.wal);
  t.gen <- next;
  t.wal <- new_wal;
  t.drains_since_ckpt <- 0;
  t.wal_records <- 0;
  Jstar_obs.Journal.info
    (Engine.session_journal t.session)
    ~comp:"persist" ~event:"checkpoint"
    [
      ("gen", Jstar_obs.Json.Num (float_of_int next));
      ( "step_no",
        Jstar_obs.Json.Num (float_of_int state.Engine.ss_step_no) );
      ("gamma_digest", Jstar_obs.Json.Str gamma_digest);
    ]

let drain t =
  let fresh = drain_no_ckpt t in
  t.drains_since_ckpt <- t.drains_since_ckpt + 1;
  if t.checkpoint_every > 0 && t.drains_since_ckpt >= t.checkpoint_every then
    checkpoint t;
  fresh

let finish t =
  Wal.close t.wal;
  Engine.finish t.session

let session t = t.session
let generation t = t.gen
let fork_base t = t.fork_base
let dir t = t.dir
let wal_path t = wal_path_of t.dir t.gen
let wal_records t = t.wal_records
let output_lanes t = Fingerprint.lanes t.out_digest
let wal_lag t = Wal.lag t.wal
let wal_fsyncs t = fst t.syncs_base + Wal.fsyncs t.wal
let wal_coalesced_syncs t = snd t.syncs_base + Wal.coalesced_syncs t.wal

let fsync_policy_name t =
  match t.policy with
  | Wal.Always -> "always"
  | Wal.Every n -> Printf.sprintf "every-%d" n
  | Wal.Every_ms n -> Printf.sprintf "every-ms-%d" n
  | Wal.Never -> "never"

let register_wal_metrics t =
  let m = Engine.session_metrics t.session in
  Jstar_obs.Metrics.register_counter m ~name:"wal.fsyncs" (fun () ->
      wal_fsyncs t);
  Jstar_obs.Metrics.register_counter m ~name:"wal.coalesced_syncs" (fun () ->
      wal_coalesced_syncs t);
  Jstar_obs.Metrics.register_gauge m ~name:"wal.policy_window_ms" (fun () ->
      Jstar_obs.Metrics.Int
        (match t.policy with Wal.Every_ms n -> n | _ -> 0))

(* -- open / recovery ------------------------------------------------- *)

let fresh_session ~checkpoint_every ~policy ~dir ~tables ~schema_hash frozen
    config =
  let wal = Wal.create (wal_path_of dir 0) ~schema_hash ~policy in
  {
    dir;
    session = Engine.start frozen config;
    tables;
    schema_hash;
    policy;
    checkpoint_every;
    fork_base = None;
    out_digest = Fingerprint.create ();
    gen = 0;
    wal;
    drains_since_ckpt = 0;
    wal_records = 0;
    syncs_base = (0, 0);
  }

let recover ~checkpoint_every ~policy ~dir ~tables ~schema_hash frozen config
    gen =
  let session = Engine.start frozen config in
  let out_digest = Fingerprint.create () in
  (* 1. Rebuild the database from the snapshot (generation 0 = empty). *)
  if gen > 0 then begin
    let manifest =
      try Snapshot.read_manifest ~dir ~gen ~expect_hash:schema_hash
      with Snapshot.Snapshot_error m -> fail "%s" m
    in
    let outputs =
      try
        Snapshot.load ~dir ~gen ~manifest ~tables (fun tuple ->
            Engine.load_tuple session tuple)
      with Snapshot.Snapshot_error m -> fail "%s" m
    in
    Engine.restore_session_state session
      {
        Engine.ss_step_no = manifest.Snapshot.m_step_no;
        ss_steps = manifest.Snapshot.m_steps;
        ss_processed = manifest.Snapshot.m_processed;
        ss_outputs_count = manifest.Snapshot.m_outputs_count;
        ss_outputs = outputs;
        ss_seq_lanes = manifest.Snapshot.m_seq_lanes;
      };
    let lo, hi = manifest.Snapshot.m_out_lanes in
    Fingerprint.set_lanes out_digest ~lo ~hi;
    (* The restore oracle: the rebuilt stores must reproduce the
       fingerprint recorded when the snapshot was taken. *)
    let got = Engine.gamma_digest session in
    if got <> manifest.Snapshot.m_gamma_digest then
      fail
        "%s: restored database fingerprint %s does not match snapshot \
         manifest %s"
        dir got manifest.Snapshot.m_gamma_digest
  end;
  (* 2. Decide how much of the WAL to trust. *)
  let path = wal_path_of dir gen in
  let records, tail =
    try Wal.read path ~tables ~expect_hash:schema_hash with
    | Wal.Wal_error m -> fail "%s" m
    | Unix.Unix_error (e, _, p) -> fail "%s: %s" p (Unix.error_message e)
  in
  let kept, valid_to =
    match tail with
    | Wal.Clean | Wal.Torn _ ->
        (* A torn tail is the expected residue of a crash mid-append:
           every complete record before it — including trailing feeds
           not yet covered by a watermark — was durably logged, so all
           of it replays.  [valid_to] drops only the partial frame. *)
        let valid_to =
          List.fold_left (fun _ (_, off) -> off) Wal.header_len records
        in
        (records, valid_to)
    | Wal.Corrupt _ ->
        (* Mid-log corruption (a flipped bit, not a torn write): roll
           back to the last watermark — records beyond it may be
           arbitrarily damaged, and the watermark is the last point
           whose digests can vouch for the state. *)
        let kept_to =
          List.fold_left
            (fun acc (r, off) ->
              match r with Wal.Watermark _ -> off | Wal.Feed _ -> acc)
            Wal.header_len records
        in
        (List.filter (fun (_, off) -> off <= kept_to) records, kept_to)
  in
  (* 3. Replay through the normal feed/drain path, verifying each
     watermark. *)
  let feeds = ref 0 and drains = ref 0 and pending = ref 0 in
  let t =
    {
      dir;
      session;
      tables;
      schema_hash;
      policy;
      checkpoint_every;
      fork_base = read_fork_base dir;
      out_digest;
      gen;
      wal = Wal.reopen path ~valid_to ~policy;
      drains_since_ckpt = 0;
      wal_records = List.length kept;
      syncs_base = (0, 0);
    }
  in
  List.iter
    (fun (record, off) ->
      match record with
      | Wal.Feed tuples ->
          incr feeds;
          pending := !pending + List.length tuples;
          Engine.feed session tuples
      | Wal.Watermark wm ->
          incr drains;
          pending := 0;
          let fresh = Engine.drain session in
          List.iter (Fingerprint.mix_string out_digest) fresh;
          check_watermark t wm ~at:off)
    kept;
  let tail_name =
    match tail with
    | Wal.Clean -> "clean"
    | Wal.Torn _ -> "torn"
    | Wal.Corrupt _ -> "corrupt"
  in
  Jstar_obs.Journal.info
    (Engine.session_journal session)
    ~comp:"persist" ~event:"recovery"
    [
      ("gen", Jstar_obs.Json.Num (float_of_int gen));
      ("feeds_replayed", Jstar_obs.Json.Num (float_of_int !feeds));
      ("drains_replayed", Jstar_obs.Json.Num (float_of_int !drains));
      ("pending", Jstar_obs.Json.Num (float_of_int !pending));
      ("wal_tail", Jstar_obs.Json.Str tail_name);
    ];
  ( t,
    Restored
      {
        r_gen = gen;
        r_feeds = !feeds;
        r_drains = !drains;
        r_pending = !pending;
        r_wal_tail = tail;
      } )

let open_ ?(checkpoint_every = 0) ?(fsync = Wal.Always) ~dir frozen config =
  mkdir_p dir;
  let tables = frozen.Program.tables in
  let schema_hash = Codec.schema_hash tables in
  let policy = fsync in
  match read_current dir with
  | None ->
      (* no CURRENT — any FORK marker here is the residue of a fork
         that crashed before its commit point, not provenance *)
      (try Unix.unlink (fork_path dir) with Unix.Unix_error _ -> ());
      let t =
        fresh_session ~checkpoint_every ~policy ~dir ~tables ~schema_hash
          frozen config
      in
      write_current dir 0;
      register_wal_metrics t;
      (t, Fresh)
  | Some gen ->
      let t, status =
        recover ~checkpoint_every ~policy ~dir ~tables ~schema_hash frozen
          config gen
      in
      register_wal_metrics t;
      (t, status)

(* -- branching -------------------------------------------------------- *)

let link_or_copy src dst =
  (* Snapshot files are immutable once written, so a hard link is a
     zero-copy fork; fall back to a byte copy on filesystems without
     link support. *)
  try Unix.link src dst
  with Unix.Unix_error ((Unix.EXDEV | Unix.EPERM | Unix.ENOSYS), _, _) ->
    let b = Bytes.create 65536 in
    let ifd = Unix.openfile src [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close ifd)
      (fun () ->
        let ofd =
          Unix.openfile dst [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        Fun.protect
          ~finally:(fun () -> Unix.close ofd)
          (fun () ->
            let rec loop () =
              let n = Unix.read ifd b 0 (Bytes.length b) in
              if n > 0 then begin
                let off = ref 0 in
                while !off < n do
                  off := !off + Unix.write ofd b !off (n - !off)
                done;
                loop ()
              end
            in
            loop ();
            Unix.fsync ofd))

let fork t ~dir =
  let pending = Engine.session_pending t.session in
  if pending <> 0 then
    invalid_arg
      (Printf.sprintf "Durable.fork: %d tuples still pending (drain first)"
         pending);
  if Sys.file_exists (current_path dir) then
    invalid_arg (Printf.sprintf "Durable.fork: %s already holds a session" dir);
  (* Bring the snapshot up to date only when the WAL actually diverged
     from it — a fork right after a checkpoint (or another fork) links
     the existing generation untouched. *)
  if t.wal_records > 0 || t.gen = 0 then checkpoint t;
  mkdir_p dir;
  let gen = t.gen in
  let src_snap = Filename.concat t.dir (Snapshot.dir_name gen) in
  let dst_snap = Filename.concat dir (Snapshot.dir_name gen) in
  mkdir_p dst_snap;
  Array.iter
    (fun f ->
      link_or_copy (Filename.concat src_snap f) (Filename.concat dst_snap f))
    (Sys.readdir src_snap);
  (let dfd = Unix.openfile dst_snap [ Unix.O_RDONLY ] 0 in
   (try Unix.fsync dfd with Unix.Unix_error _ -> ());
   Unix.close dfd);
  (* A fresh, empty WAL: the branch's future diverges here. *)
  Wal.close
    (Wal.create (wal_path_of dir gen) ~schema_hash:t.schema_hash
       ~policy:t.policy);
  write_fork_base dir gen;
  write_current dir gen;
  Jstar_obs.Journal.info
    (Engine.session_journal t.session)
    ~comp:"persist" ~event:"fork"
    [
      ("gen", Jstar_obs.Json.Num (float_of_int gen));
      ("into", Jstar_obs.Json.Str dir);
    ];
  gen
