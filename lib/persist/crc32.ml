(* CRC-32/IEEE, table-driven, bit-reflected (the zlib variant).  OCaml
   ints are 63-bit here, so the running value fits natively; the table
   entries and results are always masked to 32 bits. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b off len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff land 0xffffffff

let bytes b off len = update 0 b off len
let string s = bytes (Bytes.unsafe_of_string s) 0 (String.length s)
