(* Snapshot checkpoints.

   Layout: dir/snap-<gen>/
     MANIFEST        CRC-guarded text: counters, digests, segment list
     seg-<table>.dat framed tuples, one record per tuple
     outputs.dat     framed output lines, print order

   Segment record framing matches the WAL ([u32 len][payload][u32 crc])
   minus the kind byte; file headers carry magic, version and the
   program's schema hash. *)

open Jstar_core

exception Snapshot_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Snapshot_error s)) fmt

let seg_magic = "JSTARSEG"
let out_magic = "JSTAROUT"
let version = 1

type manifest = {
  m_gen : int;
  m_schema_hash : int;
  m_step_no : int;
  m_steps : int;
  m_processed : int;
  m_outputs_count : int;
  m_seq_lanes : int * int;
  m_out_lanes : int * int;
  m_gamma_digest : string;
  m_wal : string;
  m_segments : (string * int) list;
}

let dir_name gen = Printf.sprintf "snap-%d" gen
let seg_name table = Printf.sprintf "seg-%s.dat" table

(* -- io helpers ------------------------------------------------------ *)

let write_file path content =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.unsafe_of_string content in
      let off = ref 0 in
      while !off < Bytes.length b do
        off := !off + Unix.write fd b !off (Bytes.length b - !off)
      done;
      Unix.fsync fd)

let read_whole path =
  match open_in_bin path with
  | exception Sys_error m -> fail "%s" m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> rm_rf (Filename.concat path e))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let remove ~dir ~gen = rm_rf (Filename.concat dir (dir_name gen))

(* -- framed record files --------------------------------------------- *)

let add_record buf payload =
  let b = Buffer.create (Bytes.length payload + 8) in
  Codec.put_u32 b (Bytes.length payload);
  Buffer.add_bytes b payload;
  let framed = Buffer.to_bytes b in
  Buffer.add_bytes buf framed;
  Codec.put_u32 buf (Crc32.bytes framed 0 (Bytes.length framed))

let iter_records ~what src pos f =
  let len = Bytes.length src in
  while !pos < len do
    let start = !pos in
    let plen = Codec.get_u32 src pos in
    if start + 4 + plen + 4 > len then fail "%s: truncated record" what;
    let crc_stored =
      let cp = ref (start + 4 + plen) in
      Codec.get_u32 src cp
    in
    if Crc32.bytes src start (4 + plen) <> crc_stored then
      fail "%s: record CRC mismatch" what;
    let payload = Bytes.sub src (start + 4) plen in
    pos := start + 4 + plen + 4;
    f payload
  done

let file_header file_magic ~schema_hash ~arg =
  let b = Buffer.create 20 in
  Buffer.add_string b file_magic;
  Codec.put_u32 b version;
  Codec.put_u32 b schema_hash;
  Codec.put_u32 b arg;
  b

let check_header ~what file_magic ~expect_hash src pos =
  if Bytes.length src < String.length file_magic + 12 then
    fail "%s: missing header" what;
  if Bytes.sub_string src 0 (String.length file_magic) <> file_magic then
    fail "%s: bad magic" what;
  pos := String.length file_magic;
  let v = Codec.get_u32 src pos in
  if v <> version then fail "%s: unsupported version %d" what v;
  let h = Codec.get_u32 src pos in
  if h <> expect_hash land 0xffffffff then fail "%s: schema hash mismatch" what;
  Codec.get_u32 src pos

(* -- manifest -------------------------------------------------------- *)

let manifest_to_string m =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "jstar-snapshot 1";
  line "gen %d" m.m_gen;
  line "schema %d" m.m_schema_hash;
  line "step_no %d" m.m_step_no;
  line "steps %d" m.m_steps;
  line "processed %d" m.m_processed;
  line "outputs %d" m.m_outputs_count;
  line "seq %d %d" (fst m.m_seq_lanes) (snd m.m_seq_lanes);
  line "out %d %d" (fst m.m_out_lanes) (snd m.m_out_lanes);
  line "gamma %s" m.m_gamma_digest;
  line "wal %s" m.m_wal;
  List.iter (fun (t, n) -> line "segment %s %d" t n) m.m_segments;
  let body = Buffer.contents b in
  body ^ Printf.sprintf "crc %08x\n" (Crc32.string body)

let manifest_of_string ~what s =
  (* split the trailing crc line off and verify it first *)
  let body, crc_line =
    match String.rindex_opt (String.trim s) '\n' with
    | None -> fail "%s: malformed manifest" what
    | Some i ->
        let t = String.trim s in
        (String.sub t 0 (i + 1), String.sub t (i + 1) (String.length t - i - 1))
  in
  (match Scanf.sscanf_opt crc_line "crc %x" (fun c -> c) with
  | Some c when c = Crc32.string body -> ()
  | Some _ -> fail "%s: manifest CRC mismatch" what
  | None -> fail "%s: manifest missing CRC line" what);
  let kv = Hashtbl.create 16 in
  let segments = ref [] in
  String.split_on_char '\n' body
  |> List.iter (fun l ->
         match String.index_opt l ' ' with
         | None -> ()
         | Some i ->
             let k = String.sub l 0 i
             and v = String.sub l (i + 1) (String.length l - i - 1) in
             if k = "segment" then (
               match String.rindex_opt v ' ' with
               | Some j ->
                   let t = String.sub v 0 j
                   and n = String.sub v (j + 1) (String.length v - j - 1) in
                   segments := (t, int_of_string n) :: !segments
               | None -> fail "%s: malformed segment line" what)
             else Hashtbl.replace kv k v);
  let get k =
    match Hashtbl.find_opt kv k with
    | Some v -> v
    | None -> fail "%s: manifest missing %s" what k
  in
  let geti k = try int_of_string (get k) with _ -> fail "%s: bad %s" what k in
  let lanes k =
    match Scanf.sscanf_opt (get k) "%d %d" (fun a b -> (a, b)) with
    | Some l -> l
    | None -> fail "%s: bad %s lanes" what k
  in
  {
    m_gen = geti "gen";
    m_schema_hash = geti "schema";
    m_step_no = geti "step_no";
    m_steps = geti "steps";
    m_processed = geti "processed";
    m_outputs_count = geti "outputs";
    m_seq_lanes = lanes "seq";
    m_out_lanes = lanes "out";
    m_gamma_digest = get "gamma";
    m_wal = get "wal";
    m_segments = List.rev !segments;
  }

(* -- write ----------------------------------------------------------- *)

let write ~dir ~gen ~schema_hash ~manifest_of ~outputs ~segments =
  let snap = Filename.concat dir (dir_name gen) in
  rm_rf snap;
  (try Unix.mkdir snap 0o755
   with Unix.Unix_error (e, _, _) ->
     fail "mkdir %s: %s" snap (Unix.error_message e));
  let counts =
    List.map
      (fun (schema, iter) ->
        let name = schema.Schema.name in
        let buf = file_header seg_magic ~schema_hash ~arg:schema.Schema.id in
        let count = ref 0 in
        let rec_buf = Buffer.create 64 in
        iter (fun t ->
            Buffer.clear rec_buf;
            Codec.encode_tuple rec_buf t;
            add_record buf (Buffer.to_bytes rec_buf);
            incr count);
        write_file (Filename.concat snap (seg_name name)) (Buffer.contents buf);
        (name, !count))
      segments
  in
  let ob = file_header out_magic ~schema_hash ~arg:(List.length outputs) in
  List.iter
    (fun line ->
      let pb = Buffer.create (String.length line + 4) in
      Codec.put_string pb line;
      add_record ob (Buffer.to_bytes pb))
    outputs;
  write_file (Filename.concat snap "outputs.dat") (Buffer.contents ob);
  let m = manifest_of ~segments:counts in
  write_file (Filename.concat snap "MANIFEST") (manifest_to_string m);
  fsync_path snap;
  fsync_path dir

(* -- read ------------------------------------------------------------ *)

let read_manifest ~dir ~gen ~expect_hash =
  let path = Filename.concat dir (Filename.concat (dir_name gen) "MANIFEST") in
  let m = manifest_of_string ~what:path (read_whole path) in
  if m.m_schema_hash <> expect_hash land 0xffffffff then
    fail "%s: schema hash mismatch (program changed?)" path;
  if m.m_gen <> gen then fail "%s: generation mismatch" path;
  m

let load ~dir ~gen ~manifest ~tables f =
  let snap = Filename.concat dir (dir_name gen) in
  let expect_hash = manifest.m_schema_hash in
  List.iter
    (fun (tname, expected) ->
      let path = Filename.concat snap (seg_name tname) in
      let src = Bytes.unsafe_of_string (read_whole path) in
      let pos = ref 0 in
      let _table_id = check_header ~what:path seg_magic ~expect_hash src pos in
      let n = ref 0 in
      iter_records ~what:path src pos (fun payload ->
          let p = ref 0 in
          (match Codec.decode_tuple ~tables payload p with
          | t -> f t
          | exception Codec.Codec_error m -> fail "%s: %s" path m);
          incr n);
      if !n <> expected then
        fail "%s: expected %d tuples, found %d" path expected !n)
    manifest.m_segments;
  let path = Filename.concat snap "outputs.dat" in
  let src = Bytes.unsafe_of_string (read_whole path) in
  let pos = ref 0 in
  let count = check_header ~what:path out_magic ~expect_hash src pos in
  let lines = ref [] in
  iter_records ~what:path src pos (fun payload ->
      let p = ref 0 in
      match Codec.get_string payload p with
      | s -> lines := s :: !lines
      | exception Codec.Codec_error m -> fail "%s: %s" path m);
  let lines = List.rev !lines in
  if List.length lines <> count then fail "%s: output count mismatch" path;
  if count <> manifest.m_outputs_count then
    fail "%s: outputs disagree with manifest" path;
  lines
