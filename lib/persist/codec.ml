(* Schema-aware binary tuple codec.

   Design constraints, in order:
   - No [Marshal]: the on-disk form must be stable across builds and
     validated byte-by-byte (Marshal segfaults on corrupt input).
   - Representation-preserving: the engine digests hash Value.t
     constructors, so an [Int] stored in a widened [TFloat] column must
     come back as that same [Int] — hence a one-byte type tag per field
     rather than encoding purely by column type.
   - Schema-checked: decode goes through [Tuple.make], which re-runs the
     arity/type validation, and file headers carry [schema_hash] so a
     WAL or snapshot written under a different program shape is refused
     outright rather than misread. *)

open Jstar_core

exception Codec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codec_error s)) fmt

(* -- canonical schema hash ------------------------------------------- *)

let schema_hash tables =
  let b = Buffer.create 256 in
  Array.iter
    (fun s ->
      Buffer.add_string b s.Schema.name;
      Buffer.add_char b '(';
      Array.iter
        (fun c ->
          Buffer.add_string b c.Schema.col_name;
          Buffer.add_char b ':';
          Buffer.add_string b (Value.ty_name c.Schema.col_ty);
          Buffer.add_char b ',')
        s.Schema.columns;
      Buffer.add_string b (Printf.sprintf "|key=%d|" s.Schema.key_arity);
      Array.iter
        (fun e ->
          (match e with
          | Schema.Lit l -> Buffer.add_string b ("L" ^ l)
          | Schema.Seq f -> Buffer.add_string b ("S" ^ f)
          | Schema.Par f -> Buffer.add_string b ("P" ^ f));
          Buffer.add_char b ',')
        s.Schema.orderby;
      Buffer.add_char b ';')
    tables;
  Crc32.string (Buffer.contents b)

(* -- primitives ------------------------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let put_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let need src pos n =
  if !pos + n > Bytes.length src then fail "truncated frame (need %d bytes)" n

let get_u8 src pos =
  need src pos 1;
  let v = Char.code (Bytes.get src !pos) in
  incr pos;
  v

let get_u32 src pos =
  need src pos 4;
  let v =
    Char.code (Bytes.get src !pos)
    lor (Char.code (Bytes.get src (!pos + 1)) lsl 8)
    lor (Char.code (Bytes.get src (!pos + 2)) lsl 16)
    lor (Char.code (Bytes.get src (!pos + 3)) lsl 24)
  in
  pos := !pos + 4;
  v

let get_i64 src pos =
  need src pos 8;
  let v = Int64.to_int (Bytes.get_int64_le src !pos) in
  pos := !pos + 8;
  v

let get_string src pos =
  let n = get_u32 src pos in
  need src pos n;
  let s = Bytes.sub_string src !pos n in
  pos := !pos + n;
  s

(* -- values ---------------------------------------------------------- *)

let tag_int = 0
and tag_float = 1
and tag_str = 2
and tag_bool = 3

let put_value b = function
  | Value.Int i ->
      put_u8 b tag_int;
      put_i64 b i
  | Value.Float f ->
      put_u8 b tag_float;
      Buffer.add_int64_le b (Int64.bits_of_float f)
  | Value.Str s ->
      put_u8 b tag_str;
      put_string b s
  | Value.Bool v ->
      put_u8 b tag_bool;
      put_u8 b (if v then 1 else 0)

let get_value src pos =
  match get_u8 src pos with
  | 0 -> Value.Int (get_i64 src pos)
  | 1 ->
      need src pos 8;
      let bits = Bytes.get_int64_le src !pos in
      pos := !pos + 8;
      Value.Float (Int64.float_of_bits bits)
  | 2 -> Value.Str (get_string src pos)
  | 3 -> Value.Bool (get_u8 src pos <> 0)
  | t -> fail "unknown value tag %d" t

(* -- tuples ---------------------------------------------------------- *)

let encode_tuple b t =
  let schema = Tuple.schema t in
  put_u32 b schema.Schema.id;
  Array.iter (put_value b) (Tuple.fields t)

let decode_tuple ~tables src pos =
  let id = get_u32 src pos in
  if id < 0 || id >= Array.length tables then fail "table id %d out of range" id;
  let schema = tables.(id) in
  let arity = Schema.arity schema in
  (* explicit loop: field decode order matters and [Array.init]'s
     application order is unspecified *)
  let fields = Array.make arity (Value.Int 0) in
  for i = 0 to arity - 1 do
    fields.(i) <- get_value src pos
  done;
  match Tuple.make schema fields with
  | t -> t
  | exception Tuple.Tuple_error m -> fail "tuple rejected by schema: %s" m
