(** The write-ahead log.

    Input tuples are appended here (a [Feed] record) before they enter
    the Delta set; every drain writes a [Watermark] record carrying the
    session's scalar state and its determinism digests.  On restart the
    log is replayed through the normal feed/drain path, and each
    replayed drain is checked against its watermark's digests.

    Frame format (all integers little-endian):
    {v [u8 kind][u32 len][payload: len bytes][u32 crc32] v}
    with the CRC covering kind, len and payload.  The file starts with
    a magic + version + schema-hash header.  A record that stops short
    of a full frame is a {e torn tail} (the expected shape of a crash
    mid-append); a complete frame whose CRC fails is {e corruption}. *)

exception Wal_error of string
(** Bad magic, unsupported version, or schema-hash mismatch. *)

type fsync_policy =
  | Always  (** fsync on every commit — full durability *)
  | Every of int  (** fsync once per [n] records — bounded loss window *)
  | Every_ms of int
      (** group-commit window: fsync at most once per [n] milliseconds,
          coalescing every commit that lands inside the window into the
          next sync — bounded-time loss window, amortized across
          co-located sessions *)
  | Never  (** leave durability to the OS page cache *)

type watermark = {
  wm_step_no : int;
  wm_steps : int;
  wm_processed : int;
  wm_outputs_count : int;
  wm_seq_lanes : int * int;  (** class-sequence digest after this drain *)
  wm_out_lanes : int * int;  (** output-stream digest after this drain *)
}

type record = Feed of Jstar_core.Tuple.t list | Watermark of watermark

val header_len : int
(** Byte length of the file header — the truncation offset that keeps
    nothing. *)

(** {1 Writing} *)

type writer

val create : string -> schema_hash:int -> policy:fsync_policy -> writer
(** Create (truncating) and write the header, fsync it, and fsync the
    containing directory so the file name itself is durable. *)

val reopen : string -> valid_to:int -> policy:fsync_policy -> writer
(** Open an existing log for appending after recovery, truncating any
    torn or corrupt suffix at byte offset [valid_to] first. *)

val append_feed : writer -> Jstar_core.Tuple.t list -> unit
(** Buffer a [Feed] record (group commit: frames accumulate and reach
    the file in one write at the next {!commit}). *)

val append_watermark : writer -> watermark -> unit

val commit : writer -> unit
(** Write buffered frames and apply the fsync policy. *)

val sync : writer -> unit
(** Commit and force an fsync regardless of policy (checkpoint edge). *)

val close : writer -> unit

type lag = { lag_records : int; lag_seconds : float }
(** Durability exposure right now: records appended but not yet
    fsynced (buffered or written), and seconds since the file was last
    fsynced (since open when it never was).  A monitoring lane for the
    ops heartbeat — under [Never] the age grows without bound, which is
    exactly the signal. *)

val lag : writer -> lag

val fsyncs : writer -> int
(** fsync calls issued since open (policy-driven and forced). *)

val coalesced_syncs : writer -> int
(** Commits that left records unsynced because the policy coalesced
    them into a later sync — the group-commit win: each one is an fsync
    (~27 µs/tuple under [Always] on the bench box) not paid. *)

(** {1 Reading} *)

type tail =
  | Clean  (** file ends exactly on a frame boundary *)
  | Torn of int  (** incomplete final frame starting at this offset *)
  | Corrupt of int  (** complete frame with a bad CRC at this offset *)

val read :
  string ->
  tables:Jstar_core.Schema.t array ->
  expect_hash:int ->
  (record * int) list * tail
(** Parse the log: every fully-valid record paired with the byte offset
    just past its frame (the truncation point that keeps it), plus how
    the file ends.  Stops at the first bad frame; the caller decides how
    far to trust the prefix (torn tail: keep everything; corruption:
    fall back to the last watermark).  @raise Wal_error on a bad
    header. *)
