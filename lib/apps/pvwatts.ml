(* The PvWatts case study (§6.2, Fig 4): a map-reduce style program that
   reads a CSV of hourly solar measurements and prints the average power
   generated during each month.

   JStar form (Fig 4, plus the chunked parallel reader of §6.2):

     table PvWattsRequest(int chunks)                 orderby (Req);
     table Chunk(int id, int start, int stop)         orderby (Chunk, par id);
     table PvWatts(year, month, day, hour, power)     orderby (PvWatts);
     table SumMonth(int year, int month)              orderby (SumMonth);
     order Req < Chunk < PvWatts < SumMonth;

     foreach (PvWattsRequest req) { put Chunk(i) ... }       // split file
     foreach (Chunk c)  { ...parse region, put PvWatts... }  // parallel read
     foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month); }
     foreach (SumMonth s) { reduce Statistics over PvWatts(s.year, s.month) }

   The same program text runs under every configuration of §6.2:
   - naive: every PvWatts tuple through the Delta tree;
   - [-noDelta PvWatts]: tuples straight into Gamma (the 23.0s -> 8.44s
     optimisation);
   - alternative Gamma stores for PvWatts: skip list (default), hash
     index on (year, month), or the custom month-array store. *)

open Jstar_core

type t = {
  program : Program.t;
  init : Tuple.t list;
  pv_table : Schema.t;
  sum_table : Schema.t;
}

(* The custom 'array-of-hashsets' Gamma store of §6.2: a 12-entry array
   indexed by month, each entry holding that month's tuples.  Built by
   "using inheritance to override one factory method" in the paper; here
   it is a Store.Custom factory. *)
let month_array_store schema =
  let month_pos = Schema.field_pos schema "month" in
  (* Each month entry is itself sharded ("either a HashSet or
     ConcurrentHashMap within each entry of the array"): month-major
     input means neighbouring readers insert into the *same* month for
     long stretches, so a single mutex per month serialises them. *)
  let month_shards = 8 in
  let buckets =
    Array.init 12 (fun _ ->
        Array.init month_shards (fun _ ->
            (Mutex.create (), (Hashtbl.create 256 : (Value.t array, Tuple.t) Hashtbl.t))))
  in
  let total = Atomic.make 0 in
  let shard_of t =
    let fields = Tuple.fields t in
    (buckets.(Tuple.int_at t month_pos - 1), fields)
  in
  let iter_month month f =
    Array.iter
      (fun (mutex, table) ->
        Mutex.lock mutex;
        let snapshot = Hashtbl.fold (fun _ t acc -> t :: acc) table [] in
        Mutex.unlock mutex;
        List.iter f snapshot)
      buckets.(month - 1)
  in
  let insert t =
    let month_bucket, fields = shard_of t in
    let mutex, table =
      month_bucket.(Value.hash_array fields land (month_shards - 1))
    in
    Mutex.lock mutex;
    let added =
      if Hashtbl.mem table fields then false
      else begin
        Hashtbl.replace table fields t;
        true
      end
    in
    Mutex.unlock mutex;
    if added then Atomic.incr total;
    added
  in
  {
    Store.kind = "month-array";
    insert;
    insert_batch = Store.seq_batch insert;
    mem =
      (fun t ->
        let month_bucket, fields = shard_of t in
        let mutex, table =
          month_bucket.(Value.hash_array fields land (month_shards - 1))
        in
        Mutex.lock mutex;
        let found = Hashtbl.mem table fields in
        Mutex.unlock mutex;
        found);
    probe_prefix = Store.no_probe;
    iter_prefix =
      (fun prefix f ->
        (* queries always supply (year, month); month picks the bucket *)
        if Array.length prefix >= 2 then
          iter_month (Value.to_int prefix.(1)) (fun t ->
              if Tuple.matches_prefix t prefix then f t)
        else
          for month = 1 to 12 do
            iter_month month (fun t ->
                if Tuple.matches_prefix t prefix then f t)
          done);
    iter =
      (fun f ->
        for month = 1 to 12 do
          iter_month month f
        done);
    size = (fun () -> Atomic.get total);
  }

let format_mean year month mean = Fmt.str "%d/%d: %.2f" year month mean

(* Build the JStar program over an in-memory CSV buffer. *)
let make ~data ~chunks () =
  let p = Program.create () in
  let req =
    Program.table p "PvWattsRequest" ~columns:Schema.[ int_col "chunks" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let chunk =
    Program.table p "Chunk"
      ~columns:Schema.[ int_col "id"; int_col "start"; int_col "stop" ]
      ~orderby:Schema.[ Lit "Chunk"; Par "id" ]
      ()
  in
  let pv =
    Program.table p "PvWatts"
      ~columns:
        Schema.
          [
            int_col "year"; int_col "month"; int_col "day"; int_col "hour";
            int_col "site"; int_col "power";
          ]
      ~orderby:Schema.[ Lit "PvWatts" ]
      ()
  in
  let sum_month =
    Program.table p "SumMonth"
      ~columns:Schema.[ int_col "year"; int_col "month" ]
      ~key:2
      ~orderby:Schema.[ Lit "SumMonth" ]
      ()
  in
  Program.order p [ "Req"; "Chunk"; "PvWatts"; "SumMonth" ];
  (* Split the file into record-aligned regions, one Chunk tuple each;
     the Chunk class is par-ordered, so all readers run in parallel. *)
  Program.rule p "split_input" ~trigger:req
    ~puts:[ Spec.put "Chunk" ]
    (fun ctx r ->
      let n = Tuple.int r "chunks" in
      List.iter
        (fun (reg : Jstar_csv.Chunked.region) ->
          ctx.Rule.put
            (Tuple.make chunk
               [|
                 Value.Int reg.Jstar_csv.Chunked.index;
                 Value.Int reg.Jstar_csv.Chunked.start;
                 Value.Int reg.Jstar_csv.Chunked.stop;
               |]))
        (Jstar_csv.Chunked.regions data n));
  (* Parse one region: the byte-oriented CSV read loop of §6.1. *)
  Program.rule p "read_chunk" ~trigger:chunk
    ~puts:[ Spec.put "PvWatts" ]
    (fun ctx c ->
      let fields = Array.make 6 0 in
      Jstar_csv.Parse.iter_records data (Tuple.int c "start")
        (Tuple.int c "stop") (fun s e ->
          ignore (Jstar_csv.Parse.int_fields_into data s e fields);
          ctx.Rule.put
            (Tuple.make pv
               [|
                 Value.Int fields.(0);
                 Value.Int fields.(1);
                 Value.Int fields.(2);
                 Value.Int fields.(3);
                 Value.Int fields.(4);
                 Value.Int fields.(5);
               |])));
  Program.rule p "request_month" ~trigger:pv
    ~puts:[ Spec.put "SumMonth" ]
    (fun ctx t ->
      ctx.Rule.put
        (Tuple.make sum_month [| Tuple.get t 0; Tuple.get t 1 |]));
  Program.rule p "reduce_month" ~trigger:sum_month
    ~reads:[ Spec.read ~kind:Spec.Aggregate "PvWatts" ]
    (fun ctx s ->
      let year = Tuple.int s "year" and month = Tuple.int s "month" in
      let stats =
        Query.reduce ctx pv
          ~prefix:[| Value.Int year; Value.Int month |]
          ~monoid:Reducer.Statistics.monoid
          ~f:(fun t ->
            Reducer.Statistics.add Reducer.Statistics.empty
              (float_of_int (Tuple.int t "power")))
          ()
      in
      ctx.Rule.println
        (format_mean year month (Reducer.Statistics.mean stats)));
  {
    program = p;
    init = [ Tuple.make req [| Value.Int chunks |] ];
    pv_table = pv;
    sum_table = sum_month;
  }

(* Store selection for the PvWatts Gamma table, as studied in Fig 8. *)
type pv_store = Default_store | Hash_store | Month_array_store

let store_config = function
  | Default_store -> []
  | Hash_store -> [ ("PvWatts", Store.Hash_index 2) ]
  | Month_array_store -> [ ("PvWatts", Store.Custom month_array_store) ]

let config ?(threads = 1) ?(no_delta = true) ?(store = Month_array_store) () =
  {
    Config.default with
    threads;
    no_delta = (if no_delta then [ "PvWatts" ] else []);
    no_gamma = [ "Chunk" ];
    stores = store_config store;
  }

let run ?(chunks = 8) ~data config =
  let app = make ~data ~chunks () in
  Engine.run_program ~init:app.init app.program config

(* ------------------------------------------------------------------ *)
(* Hand-coded baseline: the straightforward imperative program a Java
   programmer would write.  The paper is explicit that "the Java
   program uses the typical input reading style of
   BufferedReader.readline plus String.split" while JStar's CSV library
   "keeps lines as byte arrays and avoids conversion to strings" — so
   the baseline deliberately materialises each line and splits it into
   strings, and that allocation cost is why the JStar version wins this
   benchmark (§6.1). *)

let baseline data =
  let counts = Hashtbl.create 16 in
  Jstar_csv.Parse.iter_records data 0 (Bytes.length data) (fun s e ->
      (* readline: materialise the line as a string *)
      let line = Bytes.sub_string data s (e - s) in
      (* String.split(",") *)
      match String.split_on_char ',' line with
      | [ year; month; _day; _hour; _site; power ] ->
          let key = (int_of_string year, int_of_string month) in
          let count, sum =
            match Hashtbl.find_opt counts key with
            | Some (c, sm) -> (c, sm)
            | None -> (0, 0)
          in
          Hashtbl.replace counts key (count + 1, sum + int_of_string power)
      | _ -> failwith ("malformed record: " ^ line));
  Hashtbl.fold
    (fun (year, month) (count, sum) acc ->
      format_mean year month (float_of_int sum /. float_of_int count) :: acc)
    counts []
  |> List.sort String.compare
