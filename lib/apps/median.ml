(* The Median-Finding case study (§6.6, Fig 13): find the median of a
   large array of random doubles with an explicitly parallel algorithm:

     "It chooses a global pivot value, divides the array into N
      consecutive regions, partitions each of those regions using the
      pivot value (similar to a Quicksort) and reports the size of
      those partitions back to a central controller.  The controller
      then repeats this process (each time focusing on the partitions
      that must contain the median value) until only one value is left
      in the partition, which is the median."

   Tables (each iteration advances the [iter] timestamp, literals order
   the phases within an iteration):

     table Data(int iter, int index -> double value)
                                 orderby (Int, seq iter, Data, seq index);
     table GenTask(region,lo,hi)            orderby (Gen, par region);
     table Pivot(iter -> pivot,size,k)      orderby (Int, seq iter, Ctrl);
     table PartTask(iter,region,lo,hi,pivot) orderby (Int, seq iter, Task, par region);
     table Counts(iter,region -> less,equal) orderby (Int, seq iter, Counts);
     table Gather(iter)                     orderby (Int, seq iter, Gather);
     table Compact(iter,region,src,len,dst) orderby (Int, seq iter, Cmp, par region);
     order Gen < Int;  order Ctrl < Task < Counts < Gather < Cmp;

   The Data table's Gamma uses the two-buffer native-array optimisation:
   "a custom subclass that stored all the values in a 2D array
   double[2][100000000], and used iter modulo 2 as the index for the
   outer dimension" — rules only ever touch iter and iter+1, so two
   copies suffice (a manual-lifetime Gamma garbage collection hint). *)

open Jstar_core

(* Deterministic pseudo-random doubles in [0, 1). *)
let value_at ~seed i =
  let x = (i + seed) * 2654435761 in
  let x = x lxor (x lsr 16) in
  let x = x * 2246822519 in
  let x = x lxor (x lsr 13) in
  float_of_int (x land 0xFFFFFF) /. 16777216.0

let sequential_cutoff = 4096

type t = {
  program : Program.t;
  init : Tuple.t list;
  data_table : Schema.t;
}

let make ?(seed = 7) ?(regions = 8) ~n () =
  if n < 1 then invalid_arg "Median.make: empty array";
  let p = Program.create () in
  let req =
    Program.table p "MedianRequest" ~columns:Schema.[ int_col "n" ]
      ~orderby:Schema.[ Lit "Req" ] ()
  in
  let gen =
    Program.table p "GenTask"
      ~columns:Schema.[ int_col "region"; int_col "lo"; int_col "hi" ]
      ~orderby:Schema.[ Lit "Gen"; Par "region" ]
      ()
  in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "iter"; int_col "index"; float_col "value" ]
      ~key:2
      ~orderby:Schema.[ Lit "Int"; Seq "iter"; Lit "Data"; Seq "index" ]
      ()
  in
  let pivot_t =
    Program.table p "Pivot"
      ~columns:Schema.[ int_col "iter"; int_col "size"; int_col "k" ]
      ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "iter"; Lit "Ctrl" ]
      ()
  in
  let task =
    Program.table p "PartTask"
      ~columns:
        Schema.
          [
            int_col "iter"; int_col "region"; int_col "lo"; int_col "hi";
            float_col "pivot";
          ]
      ~orderby:Schema.[ Lit "Int"; Seq "iter"; Lit "Task"; Par "region" ]
      ()
  in
  let counts =
    Program.table p "Counts"
      ~columns:
        Schema.
          [
            int_col "iter"; int_col "region"; int_col "lo"; int_col "less";
            int_col "equal"; int_col "total"; float_col "pivot";
          ]
      ~key:2
      ~orderby:Schema.[ Lit "Int"; Seq "iter"; Lit "Counts" ]
      ()
  in
  let gather =
    Program.table p "Gather" ~columns:Schema.[ int_col "iter" ] ~key:1
      ~orderby:Schema.[ Lit "Int"; Seq "iter"; Lit "Gather" ]
      ()
  in
  let compact =
    Program.table p "Compact"
      ~columns:
        Schema.
          [
            int_col "iter"; int_col "region"; int_col "src"; int_col "len";
            int_col "dst";
          ]
      ~orderby:Schema.[ Lit "Int"; Seq "iter"; Lit "Cmp"; Par "region" ]
      ()
  in
  Program.order p [ "Req"; "Gen"; "Int" ];
  Program.order p [ "Ctrl"; "Task"; "Counts"; "Gather"; "Cmp" ];
  (* The two-buffer Gamma for Data: double[2][n], outer index iter mod 2. *)
  let bufs = [| Array.make n 0.0; Array.make n 0.0 |] in
  let buf iter = bufs.(iter land 1) in
  let data_store _schema =
    let insert t =
      (buf (Tuple.int_at t 0)).(Tuple.int_at t 1) <- Tuple.float_at t 2;
      true
    in
    {
      Store.kind = "double[2][n]";
      insert;
      insert_batch = Store.seq_batch insert;
      mem = (fun _ -> false);
      probe_prefix = Store.no_probe;
      iter_prefix =
        (fun prefix f ->
          (* only prefix [iter] or [iter; index] queries are meaningful *)
          match Array.length prefix with
          | 2 ->
              let iter = Value.to_int prefix.(0)
              and i = Value.to_int prefix.(1) in
              f
                (Tuple.make data
                   [| prefix.(0); prefix.(1); Value.Float (buf iter).(i) |])
          | _ -> invalid_arg "Data store: query needs (iter, index)");
      iter = (fun _ -> invalid_arg "Data store: full scans unsupported");
      size = (fun () -> n);
    }
  in
  let region_ranges size =
    List.init regions (fun r ->
        (r, r * size / regions, (r + 1) * size / regions))
    |> List.filter (fun (_, lo, hi) -> lo < hi)
  in
  let v_int i = Value.Int i and v_flt x = Value.Float x in
  let put_pivot ctx ~iter ~size ~k =
    ctx.Rule.put (Tuple.make pivot_t [| v_int iter; v_int size; v_int k |])
  in
  (* median-of-three probe into the live buffer *)
  let derive_pivot iter size =
    let b = buf iter in
    let a = b.(0) and m = b.(size / 2) and z = b.(size - 1) in
    Float.max (Float.min a m) (Float.min (Float.max a m) z)
  in
  (* Request: fan out parallel data-generation tasks, then start the
     controller at iteration 0 seeking rank k = (n-1)/2 (lower median). *)
  Program.rule p "start" ~trigger:req
    ~puts:[ Spec.put "GenTask" ]
    (fun ctx r ->
      let size = Tuple.int r "n" in
      List.iter
        (fun (reg, lo, hi) ->
          ctx.Rule.put
            (Tuple.make gen [| v_int reg; v_int lo; v_int hi |]))
        (region_ranges size));
  Program.rule p "generate" ~trigger:gen
    ~puts:
      [
        Spec.put "Data" ~ts:[ Spec.bind "iter" (Spec.Const 0) ];
        Spec.put "Pivot" ~ts:[ Spec.bind "iter" (Spec.Const 0) ];
      ]
    (fun ctx g ->
      let lo = Tuple.int g "lo" and hi = Tuple.int g "hi" in
      let b = buf 0 in
      for i = lo to hi - 1 do
        b.(i) <- value_at ~seed i
      done;
      (* the region starting at index 0 also seeds the controller (for
         tiny n, low-numbered regions can be empty and filtered out) *)
      if lo = 0 then put_pivot ctx ~iter:0 ~size:n ~k:((n - 1) / 2));
  (* Controller: either finish sequentially or fan out partition tasks. *)
  Program.rule p "control" ~trigger:pivot_t
    ~puts:
      [
        Spec.put "PartTask" ~ts:[ Spec.bind "iter" (Spec.Field "iter") ]
          ~when_:"size > cutoff";
        Spec.put "Gather" ~ts:[ Spec.bind "iter" (Spec.Field "iter") ]
          ~when_:"size > cutoff";
      ]
    (fun ctx pv ->
      let iter = Tuple.int pv "iter"
      and size = Tuple.int pv "size"
      and k = Tuple.int pv "k" in
      if size <= sequential_cutoff then begin
        let slice = Array.sub (buf iter) 0 size in
        Array.sort Float.compare slice;
        ctx.Rule.println (Printf.sprintf "median = %.9f" slice.(k))
      end
      else begin
        (* the buffer for this iteration is complete (generation or the
           previous iteration's compaction class has run), so the pivot
           probe is deterministic *)
        let pivot = derive_pivot iter size in
        List.iter
          (fun (reg, lo, hi) ->
            ctx.Rule.put
              (Tuple.make task
                 [| v_int iter; v_int reg; v_int lo; v_int hi; v_flt pivot |]))
          (region_ranges size);
        ctx.Rule.put (Tuple.make gather [| v_int iter |])
      end);
  (* Parallel three-way partition of one region, in place. *)
  Program.rule p "partition" ~trigger:task
    ~puts:[ Spec.put "Counts" ~ts:[ Spec.bind "iter" (Spec.Field "iter") ] ]
    (fun ctx t ->
      let iter = Tuple.int t "iter"
      and reg = Tuple.int t "region"
      and lo = Tuple.int t "lo"
      and hi = Tuple.int t "hi"
      and pivot = Tuple.float t "pivot" in
      let b = buf iter in
      (* Dutch national flag: [lo,lt) < pivot, [lt,gt) = pivot, [gt,hi) > *)
      let lt = ref lo and gt = ref hi and i = ref lo in
      while !i < !gt do
        let x = b.(!i) in
        if x < pivot then begin
          b.(!i) <- b.(!lt);
          b.(!lt) <- x;
          incr lt;
          incr i
        end
        else if x > pivot then begin
          decr gt;
          b.(!i) <- b.(!gt);
          b.(!gt) <- x
        end
        else incr i
      done;
      ctx.Rule.put
        (Tuple.make counts
           [|
             v_int iter; v_int reg; v_int lo; v_int (!lt - lo);
             v_int (!gt - !lt); v_int (hi - lo); v_flt pivot;
           |]));
  (* Central controller gather: decide which side holds the median and
     issue the compaction copies plus the next iteration's pivot. *)
  Program.rule p "gather" ~trigger:gather
    ~reads:
      [
        Spec.read ~kind:Spec.Aggregate "Counts"
          ~ts:[ Spec.bind "iter" (Spec.Field "iter") ];
        Spec.read "Pivot" ~ts:[ Spec.bind "iter" (Spec.Field "iter") ];
      ]
    ~puts:
      [
        Spec.put "Compact" ~ts:[ Spec.bind "iter" (Spec.Field "iter") ];
        Spec.put "Pivot" ~ts:[ Spec.bind "iter" (Spec.Add (Spec.Field "iter", 1)) ];
      ]
    (fun ctx g ->
      let iter = Tuple.int g "iter" in
      let pv =
        match Query.uniq ctx pivot_t ~prefix:[| v_int iter |] () with
        | Some t -> t
        | None -> failwith "gather: missing Pivot tuple"
      in
      let k = Tuple.int pv "k" in
      let cs =
        Query.list ctx counts ~prefix:[| v_int iter |] ()
        |> List.sort (fun x y ->
               compare (Tuple.int x "region") (Tuple.int y "region"))
      in
      let pivot =
        match cs with
        | c :: _ -> Tuple.float c "pivot"
        | [] -> failwith "gather: no Counts tuples"
      in
      let total_less =
        List.fold_left (fun acc c -> acc + Tuple.int c "less") 0 cs
      in
      let total_equal =
        List.fold_left (fun acc c -> acc + Tuple.int c "equal") 0 cs
      in
      if k >= total_less && k < total_less + total_equal then
        (* the median is the pivot itself *)
        ctx.Rule.println (Printf.sprintf "median = %.9f" pivot)
      else begin
        let choose_less = k < total_less in
        let dst = ref 0 in
        List.iter
          (fun c ->
            let lo = Tuple.int c "lo"
            and less = Tuple.int c "less"
            and equal = Tuple.int c "equal"
            and total = Tuple.int c "total" in
            let src, len =
              if choose_less then (lo, less)
              else (lo + less + equal, total - less - equal)
            in
            if len > 0 then begin
              ctx.Rule.put
                (Tuple.make compact
                   [|
                     v_int iter; Tuple.get c 1; v_int src; v_int len; v_int !dst;
                   |]);
              dst := !dst + len
            end)
          cs;
        let size' = !dst in
        let k' = if choose_less then k else k - total_less - total_equal in
        ctx.Rule.put
          (Tuple.make pivot_t [| v_int (iter + 1); v_int size'; v_int k' |])
      end);
  (* Compaction copies run in parallel; they write iteration iter+1's
     buffer, read iteration iter's. *)
  Program.rule p "compact" ~trigger:compact
    ~puts:[ Spec.put "Data" ~ts:[ Spec.bind "iter" (Spec.Add (Spec.Field "iter", 1)) ] ]
    (fun _ctx c ->
      let iter = Tuple.int c "iter" in
      Array.blit (buf iter) (Tuple.int c "src")
        (buf (iter + 1))
        (Tuple.int c "dst") (Tuple.int c "len"));
  let app =
    {
      program = p;
      init = [ Tuple.make req [| v_int n |] ];
      data_table = data;
    }
  in
  (app, data_store data)

(* Pivot and Gather tuples are real triggers whose class ordering drives
   the controller, so they go through the Delta tree; Counts and Data
   never trigger anything and bypass it; the task tables are
   trigger-only and are never stored. *)
let config ?(threads = 1) data_store =
  {
    Config.default with
    threads;
    no_delta = [ "Data"; "Counts" ];
    no_gamma = [ "GenTask"; "PartTask"; "Compact" ];
    stores = [ ("Data", Store.Custom (fun _ -> data_store)) ];
  }

let run ?seed ?regions ~n ~threads () =
  let app, data_store = make ?seed ?regions ~n () in
  Engine.run_program ~init:app.init app.program (config ~threads data_store)

(* ------------------------------------------------------------------ *)
(* Baselines (§6.1): full sort (the Java program, "Arrays.sort"), and a
   sequential quickselect — "a median-specific variant of quicksort
   that partitions the whole array, but then recurses only into the
   half of the array that contains the median". *)

let generate ?(seed = 7) n = Array.init n (fun i -> value_at ~seed i)

let baseline_sort arr =
  let copy = Array.copy arr in
  Array.sort Float.compare copy;
  copy.((Array.length copy - 1) / 2)

let baseline_quickselect arr =
  let a = Array.copy arr in
  let k = (Array.length a - 1) / 2 in
  let rec select lo hi k =
    if hi - lo <= 1 then a.(lo)
    else begin
      let x = a.(lo) and m = a.((lo + hi) / 2) and z = a.(hi - 1) in
      let pivot = Float.max (Float.min x m) (Float.min (Float.max x m) z) in
      let lt = ref lo and gt = ref hi and i = ref lo in
      while !i < !gt do
        let v = a.(!i) in
        if v < pivot then begin
          a.(!i) <- a.(!lt);
          a.(!lt) <- v;
          incr lt;
          incr i
        end
        else if v > pivot then begin
          decr gt;
          a.(!i) <- a.(!gt);
          a.(!gt) <- v
        end
        else incr i
      done;
      if k < !lt - lo then select lo !lt k
      else if k < !gt - lo then pivot
      else select !gt hi (k - (!gt - lo))
    end
  in
  select 0 (Array.length a) k
