(** Validator for the exporter's Chrome trace-event JSON: required
    [ph]/[ts]/[pid]/[tid] (and [name]) fields, balanced, name-matched
    B/E pairs per (pid, tid) track, and flow halves ([ph s]/[f]) that
    carry an [id] with every finish bound to some start. *)

type summary = {
  events : int;
  tracks : int;
  spans : int;  (** balanced B/E pairs seen *)
  instants : int;
  flows : int;  (** bound s/f flow pairs seen *)
  by_name : (string * int) list;  (** event count per name *)
}

val name_count : summary -> string -> int

val validate : Json.t -> (summary, string) result
val validate_string : string -> (summary, string) result
