(* Prometheus text exposition format (version 0.0.4) over the metrics
   registry.

   The registry uses dotted names with table names embedded
   ("table.Row.puts", "gamma.Sum.size"); Prometheus wants a flat metric
   family per *kind* of number with the table as a label, so families
   stay bounded while tables come and go.  The mapping:

     table.<T>.<field>    ->  <ns>_table_<field>{table="<T>"}
     gamma.<T>.size       ->  <ns>_gamma_size{table="<T>"}
     advisor.<T>.indexes  ->  <ns>_advisor_indexes{table="<T>"}
     anything else        ->  <ns>_<name with [^a-zA-Z0-9_:] -> '_'>

   Histograms render as cumulative buckets plus the mandatory [+Inf]
   lane, [_sum] and [_count]; bucket bounds are the registry's
   power-of-two uppers.  One [# TYPE] line is emitted per family even
   when several labeled series share it. *)

type labeled = { family : string; labels : (string * string) list }

let name_ok_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name s =
  let b = Bytes.of_string s in
  for i = 0 to Bytes.length b - 1 do
    if not (name_ok_char (Bytes.get b i)) then Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else if
    (* metric names must not start with a digit *)
    match s.[0] with '0' .. '9' -> true | _ -> false
  then "_" ^ s
  else s

(* Label values escape backslash, double-quote and newline — the three
   characters the exposition format reserves inside quoted values. *)
let escape_label v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let classify name =
  match String.split_on_char '.' name with
  | [ "table"; t; field ] ->
      { family = "table_" ^ sanitize_name field; labels = [ ("table", t) ] }
  | [ "gamma"; t; "size" ] -> { family = "gamma_size"; labels = [ ("table", t) ] }
  | [ "advisor"; t; "indexes" ] ->
      { family = "advisor_indexes"; labels = [ ("table", t) ] }
  | _ -> { family = sanitize_name name; labels = [] }

let render_labels b labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (sanitize_name k);
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label v);
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let add_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let sample b name labels value =
  Buffer.add_string b name;
  render_labels b labels;
  Buffer.add_char b ' ';
  add_float b value;
  Buffer.add_char b '\n'

let render ?(namespace = "jstar") metrics =
  let b = Buffer.create 4096 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let emit_type family kind =
    if not (Hashtbl.mem typed family) then begin
      Hashtbl.add typed family ();
      Buffer.add_string b "# TYPE ";
      Buffer.add_string b family;
      Buffer.add_char b ' ';
      Buffer.add_string b kind;
      Buffer.add_char b '\n'
    end
  in
  let exported = Metrics.export metrics in
  (* Group rows by family so all series of one family sit under a single
     TYPE line, as the format requires. *)
  let order = ref [] and groups : (string, 'a list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (name, x) ->
      let { family; labels } = classify name in
      let family = namespace ^ "_" ^ family in
      (match Hashtbl.find_opt groups family with
      | Some l -> l := (labels, x) :: !l
      | None ->
          order := family :: !order;
          Hashtbl.add groups family (ref [ (labels, x) ])))
    exported;
  List.iter
    (fun family ->
      let rows = List.rev !(Hashtbl.find groups family) in
      List.iteri
        (fun i (labels, x) ->
          match x with
          | Metrics.X_counter v ->
              if i = 0 then emit_type family "counter";
              sample b family labels (float_of_int v)
          | Metrics.X_gauge (Metrics.Int v) ->
              if i = 0 then emit_type family "gauge";
              sample b family labels (float_of_int v)
          | Metrics.X_gauge (Metrics.Float v) ->
              if i = 0 then emit_type family "gauge";
              sample b family labels v
          | Metrics.X_hist { x_count; x_sum; x_buckets } ->
              if i = 0 then emit_type family "histogram";
              List.iter
                (fun (upper, cum) ->
                  let le = Printf.sprintf "%.9g" upper in
                  sample b (family ^ "_bucket")
                    (labels @ [ ("le", le) ])
                    (float_of_int cum))
                x_buckets;
              sample b (family ^ "_bucket")
                (labels @ [ ("le", "+Inf") ])
                (float_of_int x_count);
              sample b (family ^ "_sum") labels x_sum;
              sample b (family ^ "_count") labels (float_of_int x_count))
        rows)
    (List.rev !order);
  Buffer.contents b
