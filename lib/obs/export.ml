(* Exporters over a tracer + metrics registry:

   - Chrome trace-event JSON (the object form with "traceEvents"),
     loadable in Perfetto / chrome://tracing — one track per domain,
     balanced B/E duration pairs, instants as 'i' events;
   - CSV metrics dump (delegates to Metrics.to_csv);
   - a console reporter: the per-kind span breakdown with percentages
     (what Phase_timer.pp used to print for bench phases) followed by
     the metrics snapshot (which covers Table_stats.pp_snapshot once
     the engine registers its per-table counters). *)

(* -- Chrome trace ---------------------------------------------------- *)

let us_of_ns ns = float_of_int ns /. 1e3

type emitter = { buf : Buffer.t; mutable first : bool }

let event em fields =
  if em.first then em.first <- false else Buffer.add_char em.buf ',';
  Buffer.add_char em.buf '\n';
  Json.to_buffer em.buf (Json.Obj fields)

let duration_event em ~name ~ph ~ts_ns ~tid ~arg =
  event em
    [
      ("name", Json.Str name);
      ("ph", Json.Str ph);
      ("ts", Json.Num (us_of_ns ts_ns));
      ("pid", Json.Num 0.0);
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("arg", Json.Num (float_of_int arg)) ]);
    ]

let instant_event em ~name ~ts_ns ~tid ~arg =
  event em
    [
      ("name", Json.Str name);
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Num (us_of_ns ts_ns));
      ("pid", Json.Num 0.0);
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("arg", Json.Num (float_of_int arg)) ]);
    ]

let metadata_event em ~name ~tid ~value =
  event em
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Num 0.0);
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

(* Shards get named tracks above the domain tids so a cross-shard
   derivation reads as one causal flow: sends sit on the producing
   domain's track, drain spans and recv halves on the owning shard's.
   Domain tids are small OS-assigned ids; 10000 leaves them room. *)
let shard_tid_base = 10000
let shard_tid shard = shard_tid_base + shard

(* Chrome flow events bind s/f halves by (cat, id, name); the message
   sequence stamp is globally unique, so it serves as the id. *)
let flow_event em ~name ~ph ~ts_ns ~tid ~id ~binding ~arg =
  event em
    ([
       ("name", Json.Str name);
       ("cat", Json.Str "shard");
       ("ph", Json.Str ph);
       ("id", Json.Num (float_of_int id));
       ("ts", Json.Num (us_of_ns ts_ns));
       ("pid", Json.Num 0.0);
       ("tid", Json.Num (float_of_int tid));
     ]
    @ (if binding then [ ("bp", Json.Str "e") ] else [])
    @ [ ("args", Json.Obj [ ("arg", Json.Num (float_of_int arg)) ]) ])

(* One ring = one track.  Spans are stored as complete (start, dur)
   records, so B/E pairs are balanced by construction: sort spans by
   (start asc, dur desc) and replay them against a stack, closing every
   span that ends before the next one starts.  A child crossing its
   parent's end (possible only if the writer broke stack discipline) is
   clipped to the parent, keeping the output well-formed regardless.
   Instants are merged in timestamp order.

   Shard-routed events leave the domain track entirely: [shard_drain]
   spans become direct B/E pairs on the owning shard's track (each
   shard is drained by exactly one domain per round, so its track never
   self-overlaps), flow-recv halves land there too, and flow-send
   halves stay on the producing domain's track so the arrow crosses
   tracks. *)
let emit_ring em tracer ring =
  let tid = Ring.tid ring in
  let drain_kind = Kind.to_int Kind.shard_drain in
  let spans = ref []
  and instants = ref []
  and drains = ref []
  and sends = ref []
  and recvs = ref [] in
  Ring.iter ring (fun ~kind ~ts ~dur ~arg ->
      if dur >= 0 then
        if kind = drain_kind then drains := (ts, dur, kind, arg) :: !drains
        else spans := (ts, dur, kind, arg) :: !spans
      else if dur = Tracer.flow_dur_send then sends := (ts, kind, arg) :: !sends
      else if dur = Tracer.flow_dur_recv then recvs := (ts, kind, arg) :: !recvs
      else instants := (ts, kind, arg) :: !instants);
  let spans =
    List.sort
      (fun (ts1, d1, _, _) (ts2, d2, _, _) ->
        if ts1 <> ts2 then compare ts1 ts2 else compare d2 d1)
      !spans
  and instants =
    List.sort (fun (ts1, _, _) (ts2, _, _) -> compare ts1 ts2) !instants
  in
  let pending = ref instants in
  let flush_instants upto =
    let rec go = function
      | (ts, kind, arg) :: tl when ts <= upto ->
          instant_event em ~name:(Tracer.kind_name tracer kind) ~ts_ns:ts ~tid
            ~arg;
          go tl
      | rest -> pending := rest
    in
    go !pending
  in
  (* stack of (end_ns, kind, arg) for open spans *)
  let stack = ref [] in
  let close_until limit =
    let rec go = function
      | (e, kind, arg) :: tl when e <= limit ->
          flush_instants e;
          duration_event em ~name:(Tracer.kind_name tracer kind) ~ph:"E"
            ~ts_ns:e ~tid ~arg;
          go tl
      | rest -> stack := rest
    in
    go !stack
  in
  List.iter
    (fun (ts, dur, kind, arg) ->
      close_until ts;
      flush_instants ts;
      let e =
        match !stack with
        | (parent_end, _, _) :: _ -> min (ts + dur) parent_end
        | [] -> ts + dur
      in
      duration_event em ~name:(Tracer.kind_name tracer kind) ~ph:"B" ~ts_ns:ts
        ~tid ~arg;
      stack := (e, kind, arg) :: !stack)
    spans;
  close_until max_int;
  flush_instants max_int;
  (* shard tracks: drain spans, then the flow halves (viewers order by
     ts, so emission order here is free) *)
  List.iter
    (fun (ts, dur, kind, arg) ->
      let name = Tracer.kind_name tracer kind in
      let stid = shard_tid (Tracer.arg_shard arg) in
      duration_event em ~name ~ph:"B" ~ts_ns:ts ~tid:stid
        ~arg:(Tracer.arg_seq arg);
      duration_event em ~name ~ph:"E" ~ts_ns:(ts + dur) ~tid:stid
        ~arg:(Tracer.arg_seq arg))
    !drains;
  List.iter
    (fun (ts, kind, arg) ->
      flow_event em
        ~name:(Tracer.kind_name tracer kind)
        ~ph:"s" ~ts_ns:ts ~tid ~id:(Tracer.arg_seq arg) ~binding:false
        ~arg:(Tracer.arg_shard arg))
    !sends;
  List.iter
    (fun (ts, kind, arg) ->
      flow_event em
        ~name:(Tracer.kind_name tracer kind)
        ~ph:"f" ~ts_ns:ts
        ~tid:(shard_tid (Tracer.arg_shard arg))
        ~id:(Tracer.arg_seq arg) ~binding:true
        ~arg:(Tracer.arg_shard arg))
    !recvs

let chrome_trace buf tracer =
  let em = { buf; first = true } in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  metadata_event em ~name:"process_name" ~tid:0 ~value:"jstar";
  let rings = Tracer.rings tracer in
  List.iter
    (fun r ->
      metadata_event em ~name:"thread_name" ~tid:(Ring.tid r)
        ~value:(Printf.sprintf "domain-%d" (Ring.tid r)))
    rings;
  (* pre-pass: name a track for every shard that appears in a routed
     event, so the viewer labels them before any event lands *)
  let drain_kind = Kind.to_int Kind.shard_drain in
  let shards = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Ring.iter r (fun ~kind ~ts:_ ~dur ~arg ->
          if (dur >= 0 && kind = drain_kind) || dur = Tracer.flow_dur_recv then
            Hashtbl.replace shards (Tracer.arg_shard arg) ()))
    rings;
  Hashtbl.fold (fun s () acc -> s :: acc) shards []
  |> List.sort compare
  |> List.iter (fun s ->
         metadata_event em ~name:"thread_name" ~tid:(shard_tid s)
           ~value:(Printf.sprintf "shard-%d" s));
  List.iter (emit_ring em tracer) rings;
  Buffer.add_string buf "\n]}\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    (fun () -> output_string oc contents)
    ~finally:(fun () -> close_out oc)

let write_chrome_trace path tracer =
  let buf = Buffer.create 65536 in
  chrome_trace buf tracer;
  write_file path (Buffer.contents buf)

(* -- metrics CSV ----------------------------------------------------- *)

let metrics_csv buf metrics = Metrics.to_csv buf (Metrics.snapshot metrics)

let write_metrics_csv path metrics =
  let buf = Buffer.create 4096 in
  metrics_csv buf metrics;
  write_file path (Buffer.contents buf)

(* -- console reporter ------------------------------------------------ *)

let console ppf ?metrics tracer =
  (match Tracer.aggregate tracer with
  | [] -> ()
  | rows ->
      let total =
        List.fold_left (fun acc (_, _, ns) -> acc + ns) 0 rows
      in
      Fmt.pf ppf "spans (%d domain track(s), %d dropped):@."
        (List.length (Tracer.rings tracer))
        (Tracer.dropped tracer);
      List.iter
        (fun (name, count, ns) ->
          Fmt.pf ppf "  %-28s %9d ev %10.3fms  %5.1f%%@." name count
            (float_of_int ns /. 1e6)
            (if total > 0 then 100.0 *. float_of_int ns /. float_of_int total
             else 0.0))
        rows);
  match metrics with
  | None -> ()
  | Some m ->
      (match Metrics.snapshot m with
      | [] -> ()
      | rows ->
          Fmt.pf ppf "metrics:@.";
          Metrics.pp ppf rows)
