(** Structured event journal: severity-tagged, ring-buffered JSON-line
    events (step seals, watermark rounds, checkpoint/recovery, advisor
    decisions, audit violations) — the narrative companion to the
    numeric {!Metrics} registry, and the first section of every flight
    recorder bundle ({!Recorder}).

    Observational only: nothing reads the journal back into evaluation,
    so recording leaves every deterministic digest lane bit-identical
    (the same argument as the profiler's). *)

type severity = Debug | Info | Warn | Error

val severity_rank : severity -> int
val severity_name : severity -> string
val severity_of_name : string -> severity option

type entry = {
  j_seq : int;  (** monotonic sequence number, 0-based, never reused *)
  j_ts_ns : int;  (** {!Monotonic} timestamp at record time *)
  j_sev : severity;
  j_comp : string;  (** emitting layer: ["engine"], ["shard"], ["persist"]… *)
  j_event : string;  (** event name: ["step-seal"], ["checkpoint"]… *)
  j_fields : (string * Json.t) list;
}

type t

val create : ?capacity:int -> ?min_severity:severity -> unit -> t
(** [capacity] (default 2048, rounded up to a power of two) bounds the
    retained window; older entries are overwritten and counted in
    {!dropped}.  Events below [min_severity] (default [Debug]) are
    counted in {!offered} but never stored. *)

val capacity : t -> int
val min_severity : t -> severity
val set_min_severity : t -> severity -> unit

val log :
  t ->
  severity ->
  comp:string ->
  event:string ->
  (string * Json.t) list ->
  unit

val debug : t -> comp:string -> event:string -> (string * Json.t) list -> unit
val info : t -> comp:string -> event:string -> (string * Json.t) list -> unit
val warn : t -> comp:string -> event:string -> (string * Json.t) list -> unit
val error : t -> comp:string -> event:string -> (string * Json.t) list -> unit

val recorded : t -> int
(** Entries accepted past the severity filter, ever. *)

val offered : t -> int
(** Entries offered, including filtered ones. *)

val dropped : t -> int
(** Accepted entries lost to ring wrap. *)

val entries : t -> entry list
(** Retained entries, oldest first — a consistent copy taken under the
    journal mutex, safe from a monitoring thread. *)

val tail : ?n:int -> t -> entry list
(** The last [n] retained entries (all of them when [n] is omitted). *)

val entry_json : entry -> Json.t
val to_json : ?n:int -> t -> Json.t

val to_lines : ?n:int -> t -> string
(** One JSON object per line, oldest first — the on-disk form. *)
