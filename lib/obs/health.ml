(* The /health heartbeat: a compact JSON summary of a live session —
   cheap enough to poll every second, structured enough to alert on.

   This module is a pure builder over engine-agnostic inputs (the obs
   layer cannot see lib/core); the engine-facing glue in lib/ops and
   bin/ fills the fields and passes subsystem extras (e.g. WAL/fsync
   lag from a Durable session) through [extra]. *)

let started_ns = Monotonic.now_ns ()

let make ?(status = "ok") ?step ?steps ?processed ?outputs ?pending ?delta
    ?(gamma = []) ?(top_rules = []) ?utilization ?(extra = []) () =
  let open Json in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let num i = Num (float_of_int i) in
  Obj
    ([
       ("status", Str status);
       ( "uptime_s",
         Num (float_of_int (Monotonic.now_ns () - started_ns) *. 1e-9) );
     ]
    @ opt "step" num step @ opt "steps" num steps
    @ opt "processed" num processed
    @ opt "outputs" num outputs
    @ opt "pending" num pending
    @ opt "delta"
        (fun (size, depth) -> Obj [ ("size", num size); ("depth", num depth) ])
        delta
    @ (match gamma with
      | [] -> []
      | g -> [ ("gamma", Obj (List.map (fun (t, n) -> (t, num n)) g)) ])
    @ (match top_rules with
      | [] -> []
      | rs ->
          [
            ( "top_rules",
              Arr
                (List.map
                   (fun (name, ema_self_s, fires) ->
                     Obj
                       [
                         ("rule", Str name);
                         ("ema_self_s", Num ema_self_s);
                         ("fires", num fires);
                       ])
                   rs) );
          ])
    @ opt "utilization" (fun u -> Num u) utilization
    @ extra)

let render ?status ?step ?steps ?processed ?outputs ?pending ?delta ?gamma
    ?top_rules ?utilization ?extra () =
  Json.to_string
    (make ?status ?step ?steps ?processed ?outputs ?pending ?delta ?gamma
       ?top_rules ?utilization ?extra ())
