(* The /health heartbeat: a compact JSON summary of a live session —
   cheap enough to poll every second, structured enough to alert on.

   This module is a pure builder over engine-agnostic inputs (the obs
   layer cannot see lib/core); the engine-facing glue in lib/ops and
   bin/ fills the fields and passes subsystem extras (e.g. WAL/fsync
   lag from a Durable session) through [extra]. *)

let started_ns = Monotonic.now_ns ()

(* Shard-backlog degradation, as a pure decision over two scrapes: a
   mailbox with queued batches is normal mid-step, so one reading says
   nothing.  A shard is stuck — and the heartbeat degraded — only when
   its backlog is non-zero at two consecutive scrapes with the step
   counter unchanged between them: no barrier completed, nothing
   drained.  The caller (the /health handler) holds the previous
   scrape; this stays unit-testable. *)
let shard_status ~prev ~step ~backlogs =
  let offenders =
    match prev with
    | Some (prev_step, prev_backlogs) when prev_step = step ->
        let off = ref [] in
        let n = Array.length backlogs in
        for k = n - 1 downto 0 do
          if
            backlogs.(k) > 0
            && k < Array.length prev_backlogs
            && prev_backlogs.(k) > 0
          then off := k :: !off
        done;
        !off
    | _ -> []
  in
  ((if offenders = [] then "ok" else "degraded"), offenders)

let make ?(status = "ok") ?step ?steps ?processed ?outputs ?pending ?delta
    ?(gamma = []) ?(top_rules = []) ?utilization ?(extra = []) () =
  let open Json in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let num i = Num (float_of_int i) in
  Obj
    ([
       ("status", Str status);
       ( "uptime_s",
         Num (float_of_int (Monotonic.now_ns () - started_ns) *. 1e-9) );
     ]
    @ opt "step" num step @ opt "steps" num steps
    @ opt "processed" num processed
    @ opt "outputs" num outputs
    @ opt "pending" num pending
    @ opt "delta"
        (fun (size, depth) -> Obj [ ("size", num size); ("depth", num depth) ])
        delta
    @ (match gamma with
      | [] -> []
      | g -> [ ("gamma", Obj (List.map (fun (t, n) -> (t, num n)) g)) ])
    @ (match top_rules with
      | [] -> []
      | rs ->
          [
            ( "top_rules",
              Arr
                (List.map
                   (fun (name, ema_self_s, fires) ->
                     Obj
                       [
                         ("rule", Str name);
                         ("ema_self_s", Num ema_self_s);
                         ("fires", num fires);
                       ])
                   rs) );
          ])
    @ opt "utilization" (fun u -> Num u) utilization
    @ extra)

let render ?status ?step ?steps ?processed ?outputs ?pending ?delta ?gamma
    ?top_rules ?utilization ?extra () =
  Json.to_string
    (make ?status ?step ?steps ?processed ?outputs ?pending ?delta ?gamma
       ?top_rules ?utilization ?extra ())
